package deepsea_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 10). Each benchmark runs its experiment at
// CI scale (bench.Short) and reports the paper's headline quantity as a
// custom metric; `go test -bench . -benchtime 1x -v` additionally prints
// the full result tables. Run `cmd/deepsea-bench -params full` for the
// paper-scale versions.

import (
	"io"
	"os"
	"testing"

	"deepsea/internal/bench"
)

// benchOut returns where experiment tables go: stdout under -v, else
// discarded (the metrics still report).
func benchOut(b *testing.B) io.Writer {
	b.Helper()
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func runExperiment(b *testing.B, id string) bench.Printable {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res bench.Printable
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run(bench.Short())
		if err != nil {
			b.Fatal(err)
		}
	}
	res.Print(benchOut(b))
	return res
}

// BenchmarkFig1SDSSHistogram regenerates Figure 1: the multi-modal
// histogram of selection ranges in the (synthetic) SDSS trace.
func BenchmarkFig1SDSSHistogram(b *testing.B) {
	res := runExperiment(b, "fig1").(*bench.Fig1Result)
	b.ReportMetric(res.Hist.Total(), "hits")
}

// BenchmarkFig2SDSSEvolution regenerates Figure 2: the evolving
// selection-range midpoints over the query sequence.
func BenchmarkFig2SDSSEvolution(b *testing.B) {
	res := runExperiment(b, "fig2").(*bench.Fig2Result)
	b.ReportMetric(float64(len(res.Windows)), "windows")
}

// BenchmarkTable1ParameterSweep exercises the full Table 1 grid
// (pool size x selectivity x skew) under DeepSea.
func BenchmarkTable1ParameterSweep(b *testing.B) {
	res := runExperiment(b, "tab1").(*bench.Tab1Result)
	b.ReportMetric(float64(len(res.Rows)), "cells")
}

// BenchmarkFig5aOverall regenerates Figure 5a: DeepSea vs
// non-partitioned materialization vs vanilla Hive on the SDSS-modelled
// workload. Reports DS elapsed time as a percentage of Hive's.
func BenchmarkFig5aOverall(b *testing.B) {
	res := runExperiment(b, "fig5a").(*bench.Fig5aResult)
	var hive, ds float64
	for _, a := range res.Arms {
		switch a.Name {
		case "H":
			hive = a.Total()
		case "DS":
			ds = a.Total()
		}
	}
	b.ReportMetric(ds/hive*100, "DS_pct_of_Hive")
}

// BenchmarkFig5bSelectionStrategies regenerates Figure 5b: Nectar vs
// Nectar+ vs DeepSea across pool-size limits. Reports DS/N elapsed at
// the 10% pool.
func BenchmarkFig5bSelectionStrategies(b *testing.B) {
	res := runExperiment(b, "fig5b").(*bench.Fig5bResult)
	b.ReportMetric(res.Totals["DS"][1]/res.Totals["N"][1], "DS_over_N_at_10pct")
}

// BenchmarkFig6aCreationCost regenerates Figure 6a: instrumented view
// creation cost for DS and E-6..E-60. Reports the E-60/DS creation ratio
// (creation grows with fragment count).
func BenchmarkFig6aCreationCost(b *testing.B) {
	res := runExperiment(b, "fig6").(*bench.Fig6Result)
	b.ReportMetric(res.Creation(res.Arms[4])/res.Creation(res.Arms[0]), "E60_over_DS_create")
}

// BenchmarkFig6bReuseTime regenerates Figure 6b: the average time of the
// reusing queries Q30_2..n. Reports the E-6/DS reuse ratio (same
// fragment count, adaptive boundaries win).
func BenchmarkFig6bReuseTime(b *testing.B) {
	res := runExperiment(b, "fig6").(*bench.Fig6Result)
	b.ReportMetric(res.AvgReuse(res.Arms[1])/res.AvgReuse(res.Arms[0]), "E6_over_DS_reuse")
}

// BenchmarkFig6cCumulative regenerates Figure 6c: cumulative workload
// time per arm. Reports DS's cumulative seconds.
func BenchmarkFig6cCumulative(b *testing.B) {
	res := runExperiment(b, "fig6").(*bench.Fig6Result)
	b.ReportMetric(res.Arms[0].Total(), "DS_cumulative_s")
}

// BenchmarkFig7aSelectivitySkew regenerates Figure 7a: projected
// 100-query time as a fraction of Hive across the 9 selectivity x skew
// settings. Reports DS's fraction under heavy skew, small selectivity.
func BenchmarkFig7aSelectivitySkew(b *testing.B) {
	res := runExperiment(b, "fig7").(*bench.Fig7Result)
	b.ReportMetric(res.Projection["DS"][8], "DS_SH_frac_of_Hive")
}

// BenchmarkFig7bRecoupPoint regenerates Figure 7b: queries needed to
// recoup the materialization cost. Reports DS's recoup point averaged
// over the settings.
func BenchmarkFig7bRecoupPoint(b *testing.B) {
	res := runExperiment(b, "fig7").(*bench.Fig7Result)
	var sum float64
	for _, v := range res.Recoup["DS"] {
		sum += float64(v)
	}
	b.ReportMetric(sum/float64(len(res.Recoup["DS"])), "DS_recoup_queries")
}

// BenchmarkFig8aCorrelationNormal regenerates Figure 8a: DeepSea's
// MLE-smoothed fragment selection vs Nectar (and the raw-hits ablation)
// under a 7 GB pool. Reports DS/DS-raw final cumulative time (the
// correlation model's gain).
func BenchmarkFig8aCorrelationNormal(b *testing.B) {
	res := runExperiment(b, "fig8a").(*bench.Fig8aResult)
	ds := res.Arms[1].Total()
	raw := res.Arms[2].Total()
	b.ReportMetric(ds/raw, "DS_over_raw")
}

// BenchmarkFig8bCorrelationZipf regenerates Figure 8b: the same
// comparison under Zipf-distributed selections — DS must not lose.
// Reports DS/N at the middle pool size.
func BenchmarkFig8bCorrelationZipf(b *testing.B) {
	res := runExperiment(b, "fig8b").(*bench.Fig8bResult)
	b.ReportMetric(res.Totals["DS"][1]/res.Totals["N"][1], "DS_over_N")
}

// BenchmarkFig9Overlapping regenerates Figure 9: overlapping vs
// horizontal partitioning over the 20k/40k/60k shifting workload.
// Reports overlapping/horizontal final cumulative time (< 1 means
// overlap wins).
func BenchmarkFig9Overlapping(b *testing.B) {
	res := runExperiment(b, "fig9").(*bench.Fig9Result)
	b.ReportMetric(res.Overlapping.Total()/res.Horizontal.Total(), "overlap_over_horizontal")
}

// BenchmarkFig10aAdaptation regenerates Figure 10a: post-shift elapsed
// time for NP, E-5, NR and DS. Reports DS/NP on the post-shift tail.
func BenchmarkFig10aAdaptation(b *testing.B) {
	res := runExperiment(b, "fig10").(*bench.Fig10Result)
	var np, ds float64
	for _, a := range res.Arms {
		switch a.Name {
		case "NP":
			np = res.TailTotal(a)
		case "DS":
			ds = res.TailTotal(a)
		}
	}
	b.ReportMetric(ds/np, "DS_over_NP_tail")
}

// BenchmarkFig10bAdaptationRatio regenerates Figure 10b: the DS/NR
// cumulative ratio after the shift. Reports the final ratio (declining
// toward and below 1 as repartitioning amortizes).
func BenchmarkFig10bAdaptationRatio(b *testing.B) {
	res := runExperiment(b, "fig10").(*bench.Fig10Result)
	ratio := res.Ratio()
	b.ReportMetric(ratio[len(ratio)-1], "final_DS_over_NR")
}

// BenchmarkAblation runs the design-choice ablation (guards, by-product
// pricing, MLE smoothing, overlap, merging) and reports the full system's
// advantage over the weakest ablated arm.
func BenchmarkAblation(b *testing.B) {
	res := runExperiment(b, "ablation").(*bench.AblationResult)
	full := res.Arms[0].Total()
	worst := full
	for _, a := range res.Arms[1:] {
		if a.Total() > worst {
			worst = a.Total()
		}
	}
	b.ReportMetric(worst/full, "worst_over_full")
}

// BenchmarkParallelSpeedup runs the same workload sequentially and with
// the full worker pool, for the vanilla engine and DeepSea, and reports
// the vanilla arm's wall-clock speedup. The experiment also asserts the
// determinism guarantee: identical per-query results and final file
// system at every parallelism level.
func BenchmarkParallelSpeedup(b *testing.B) {
	res := runExperiment(b, "parspeed").(*bench.ParspeedResult)
	if !res.Identical {
		b.Fatal("parallel execution changed query results or pool contents")
	}
	b.ReportMetric(res.Speedup("H"), "H_speedup_x")
	b.ReportMetric(res.Speedup("DS"), "DS_speedup_x")
}

// BenchmarkSensitivity reruns the Figure 6 comparison under perturbed
// cost models and reports how many of them preserve DeepSea's win — the
// robustness check for the simulated cost model.
func BenchmarkSensitivity(b *testing.B) {
	res := runExperiment(b, "sensitivity").(*bench.SensitivityResult)
	wins := 0
	for _, row := range res.Rows {
		if row.DSWins {
			wins++
		}
	}
	b.ReportMetric(float64(wins)/float64(len(res.Rows)), "DS_win_fraction")
}
