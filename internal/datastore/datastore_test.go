package datastore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"deepsea/internal/faults"
	"deepsea/internal/interval"
)

func openT(t *testing.T, dir string) *FileStore {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func appendT(t *testing.T, s *FileStore, recs ...Record) {
	t.Helper()
	for i := range recs {
		if err := s.Append(&recs[i]); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestFileStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	appendT(t, s,
		Record{Op: "ensure_view", View: "v1"},
		Record{Op: "add_frag", View: "v1", Attr: "item",
			Iv: interval.New(0, 99), Path: "frag/v1", Size: 4096},
		Record{Op: "clock", T: 12.5},
	)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	snap, tail, err := s2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot: %q", snap)
	}
	if len(tail) != 3 {
		t.Fatalf("got %d records, want 3", len(tail))
	}
	if tail[0].Op != "ensure_view" || tail[0].View != "v1" || tail[0].Seq != 1 {
		t.Errorf("record 0 = %+v", tail[0])
	}
	f := tail[1]
	if f.Op != "add_frag" || f.Iv != interval.New(0, 99) || f.Path != "frag/v1" || f.Size != 4096 {
		t.Errorf("record 1 = %+v", f)
	}
	if tail[2].T != 12.5 {
		t.Errorf("record 2 clock = %v, want 12.5", tail[2].T)
	}
	// New appends continue the sequence after the reopened history.
	appendT(t, s2, Record{Op: "remove_view", View: "v1"})
	if got := s2.Stats().LastSeq; got != 4 {
		t.Errorf("LastSeq after reopen+append = %d, want 4", got)
	}
}

func TestFileStoreSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	appendT(t, s, Record{Op: "a"}, Record{Op: "b"})
	if err := s.WriteSnapshot([]byte(`{"state":1}`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendT(t, s, Record{Op: "c"}, Record{Op: "d"})

	snap, tail, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(snap, []byte(`{"state":1}`)) {
		t.Errorf("snapshot = %q", snap)
	}
	if len(tail) != 2 || tail[0].Op != "c" || tail[1].Op != "d" {
		t.Errorf("tail = %+v, want [c d]", tail)
	}
	st := s.Stats()
	if st.SnapshotSeq != 2 || st.LastSeq != 4 || st.Snapshots != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFileStoreTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	appendT(t, s, Record{Op: "a"}, Record{Op: "b"})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: a partial line with no newline.
	jpath := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":3,"op":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	if got := s2.Stats().TornTailRepairs; got != 1 {
		t.Errorf("TornTailRepairs = %d, want 1", got)
	}
	_, tail, err := s2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tail) != 2 || tail[0].Op != "a" || tail[1].Op != "b" {
		t.Fatalf("tail after repair = %+v, want [a b]", tail)
	}
	// The torn bytes are gone: a new append lands on a clean boundary and
	// survives another reopen.
	appendT(t, s2, Record{Op: "c"})
	s2.Close()
	s3 := openT(t, dir)
	defer s3.Close()
	_, tail, err = s3.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tail) != 3 || tail[2].Op != "c" {
		t.Fatalf("tail after repair+append = %+v, want [a b c]", tail)
	}
}

func TestFileStoreCorruptLineStopsScan(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	appendT(t, s, Record{Op: "a"}, Record{Op: "b"}, Record{Op: "c"})
	s.Close()

	// Flip a payload byte of the second line: its checksum no longer
	// matches, so the intact prefix ends after record one.
	raw, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want >= 3", len(lines))
	}
	lines[1][len(lines[1])-3] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "journal.log"),
		bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	_, tail, err := s2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tail) != 1 || tail[0].Op != "a" {
		t.Fatalf("tail = %+v, want [a]", tail)
	}
	if got := s2.Stats().TornTailRepairs; got != 1 {
		t.Errorf("TornTailRepairs = %d, want 1", got)
	}
}

func TestFileStoreSnapshotJournalOverlap(t *testing.T) {
	// A crash between snapshot publication and journal truncation leaves
	// a journal whose prefix the snapshot already covers. Simulate it by
	// snapshotting and then restoring the pre-snapshot journal bytes.
	dir := t.TempDir()
	s := openT(t, dir)
	appendT(t, s, Record{Op: "a"}, Record{Op: "b"})
	preSnap, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte(`"covered"`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendT(t, s, Record{Op: "c"})
	postSnap, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Journal as the crash would leave it: old prefix + new tail.
	if err := os.WriteFile(filepath.Join(dir, "journal.log"),
		append(preSnap, postSnap...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	snap, tail, err := s2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(snap, []byte(`"covered"`)) {
		t.Errorf("snapshot = %q", snap)
	}
	if len(tail) != 1 || tail[0].Op != "c" || tail[0].Seq != 3 {
		t.Fatalf("tail = %+v, want only the post-snapshot record c", tail)
	}
}

func TestFileStoreFaultInjection(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.SetFaults(faults.New(faults.Config{Seed: 1, JournalAppend: 1, SnapshotWrite: 1}))

	if err := s.Append(&Record{Op: "a"}); err == nil {
		t.Fatal("Append with JournalAppend=1 succeeded")
	}
	if err := s.WriteSnapshot([]byte("x")); err == nil {
		t.Fatal("WriteSnapshot with SnapshotWrite=1 succeeded")
	}
	st := s.Stats()
	if st.AppendErrors != 1 || st.SnapshotErrors != 1 {
		t.Errorf("stats = %+v, want 1 append error and 1 snapshot error", st)
	}
	// The failed append consumed a sequence number; replay tolerates the
	// gap, and the store keeps working once faults are cleared.
	s.SetFaults(nil)
	appendT(t, s, Record{Op: "b"})
	_, tail, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tail) != 1 || tail[0].Op != "b" || tail[0].Seq != 2 {
		t.Fatalf("tail = %+v, want [b] at seq 2", tail)
	}
}

func TestFileStoreAppendAfterClose(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if err := s.Append(&Record{Op: "a"}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestNullStore(t *testing.T) {
	var n Null
	if err := n.Append(&Record{Op: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteSnapshot([]byte("x")); err != nil {
		t.Fatal(err)
	}
	snap, tail, err := n.Load()
	if err != nil || snap != nil || tail != nil {
		t.Fatalf("Null.Load = %v %v %v, want all nil", snap, tail, err)
	}
	if st := n.Stats(); st != (StoreStats{}) {
		t.Errorf("Null.Stats = %+v, want zeros", st)
	}
}
