package datastore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"deepsea/internal/faults"
)

const (
	journalName  = "journal.log"
	snapshotName = "snapshot.json"
)

// snapshotFile is the on-disk snapshot envelope: the caller's opaque
// payload plus the journal sequence it covers through, so Load can drop
// any journal prefix the snapshot already contains.
type snapshotFile struct {
	Seq  uint64          `json:"seq"`
	Data json.RawMessage `json:"data"`
}

// FileStore is the file-backed Store: one directory holding an
// append-only journal of CRC-protected JSON lines plus a snapshot file
// replaced atomically via write-temp + fsync + rename. Appends are
// buffered by the OS but written synchronously by the process, so a
// kill -9 loses at most what the kernel had not flushed — and a machine
// that stays up loses nothing. Flush (called on drain) forces an fsync
// for machine-crash durability.
//
// Journal line format, one record per line:
//
//	<crc32c-hex> <json>\n
//
// The checksum covers the JSON payload. A crash mid-append leaves a torn
// final line, which Open repairs by truncating the journal back to its
// last intact record.
type FileStore struct {
	dir    string
	faults *faults.Injector

	mu      sync.Mutex
	journal *os.File
	seq     uint64 // last assigned sequence number
	snapSeq uint64 // sequence the durable snapshot covers through

	records  uint64
	bytes    int64
	appendE  uint64
	snaps    uint64
	snapE    uint64
	tornFix  uint64
	lastErr  error
	journalW *bufio.Writer
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Open opens (creating if needed) a file-backed store rooted at dir. It
// repairs a torn journal tail left by a crash and positions the sequence
// counter after the last durable record, so new appends continue the
// existing history.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: open %s: %w", dir, err)
	}
	s := &FileStore{dir: dir}

	if snap, err := s.readSnapshotFile(); err != nil {
		return nil, err
	} else if snap != nil {
		s.snapSeq = snap.Seq
		s.seq = snap.Seq
	}

	jpath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jpath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open journal: %w", err)
	}
	// Scan the existing journal to find the end of the intact prefix and
	// the highest sequence number; truncate away a torn tail so new
	// appends don't land behind an unparseable line.
	validEnd, lastSeq, _, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("datastore: repair torn journal tail: %w", err)
		}
		s.tornFix++
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("datastore: seek journal end: %w", err)
	}
	if lastSeq > s.seq {
		s.seq = lastSeq
	}
	s.journal = f
	s.journalW = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// SetFaults attaches a fault injector; nil runs fault-free.
func (s *FileStore) SetFaults(in *faults.Injector) { s.faults = in }

// Append assigns the record the next sequence number and writes it to
// the journal. On error (including an injected JournalAppend fault) the
// record is dropped and the error counted; the sequence number is still
// consumed, which is harmless — replay tolerates gaps.
func (s *FileStore) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		s.appendE++
		return fmt.Errorf("datastore: append to closed store")
	}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	// Hand the line to the kernel immediately: process death (kill -9)
	// then loses nothing, only an OS crash can drop unflushed bytes.
	if err := s.journalW.Flush(); err != nil {
		s.appendE++
		s.lastErr = err
		return fmt.Errorf("datastore: append: %w", err)
	}
	return nil
}

// AppendGroup journals a batch under one lock acquisition with a single
// trailing flush, so a maintenance drain cycle pays the syscall once for
// the whole batch instead of once per record. Failed records are counted
// and skipped like in Append; the first error is returned after the rest
// of the group has been attempted.
func (s *FileStore) AppendGroup(recs []*Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		s.appendE += uint64(len(recs))
		return fmt.Errorf("datastore: append to closed store")
	}
	var first error
	for _, rec := range recs {
		if err := s.appendLocked(rec); err != nil && first == nil {
			first = err
		}
	}
	if err := s.journalW.Flush(); err != nil {
		s.appendE++
		s.lastErr = err
		if first == nil {
			first = fmt.Errorf("datastore: append: %w", err)
		}
	}
	return first
}

// appendLocked encodes and buffers one record; the caller holds s.mu,
// has checked the store is open, and flushes afterwards.
func (s *FileStore) appendLocked(rec *Record) error {
	s.seq++
	rec.Seq = s.seq
	if err := s.faults.Check(faults.JournalAppend, rec.Op); err != nil {
		s.appendE++
		s.lastErr = err
		return fmt.Errorf("datastore: append: %w", err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.appendE++
		s.lastErr = err
		return fmt.Errorf("datastore: encode record: %w", err)
	}
	sum := crc32.Checksum(payload, crcTable)
	line := make([]byte, 0, len(payload)+12)
	line = append(line, []byte(fmt.Sprintf("%08x ", sum))...)
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := s.journalW.Write(line); err != nil {
		s.appendE++
		s.lastErr = err
		return fmt.Errorf("datastore: append: %w", err)
	}
	s.records++
	s.bytes += int64(len(line))
	return nil
}

// WriteSnapshot atomically replaces the snapshot with data, covering
// every record appended so far, then truncates the journal. A crash
// between the rename and the truncate is safe: the journal's surviving
// prefix holds only sequence numbers the snapshot already covers, which
// Load filters out.
func (s *FileStore) WriteSnapshot(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.faults.Check(faults.SnapshotWrite, "snapshot"); err != nil {
		s.snapE++
		s.lastErr = err
		return fmt.Errorf("datastore: snapshot: %w", err)
	}
	env, err := json.Marshal(snapshotFile{Seq: s.seq, Data: data})
	if err != nil {
		s.snapE++
		s.lastErr = err
		return fmt.Errorf("datastore: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	final := filepath.Join(s.dir, snapshotName)
	if err := writeFileSync(tmp, env); err != nil {
		s.snapE++
		s.lastErr = err
		return fmt.Errorf("datastore: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		s.snapE++
		s.lastErr = err
		return fmt.Errorf("datastore: publish snapshot: %w", err)
	}
	syncDir(s.dir)
	// The snapshot is durable; the journaled prefix is now redundant.
	if s.journal != nil {
		if err := s.journal.Truncate(0); err != nil {
			s.snapE++
			s.lastErr = err
			return fmt.Errorf("datastore: truncate journal: %w", err)
		}
		if _, err := s.journal.Seek(0, 0); err != nil {
			s.snapE++
			s.lastErr = err
			return fmt.Errorf("datastore: rewind journal: %w", err)
		}
	}
	s.snapSeq = s.seq
	s.snaps++
	return nil
}

// Load returns the durable snapshot payload (nil if none) and the
// journal records appended after it, in order. It is tolerant of the
// snapshot/journal overlap a crash can leave: records with sequence
// numbers the snapshot covers are dropped.
func (s *FileStore) Load() ([]byte, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var data []byte
	var snapSeq uint64
	if snap, err := s.readSnapshotFile(); err != nil {
		return nil, nil, err
	} else if snap != nil {
		data = snap.Data
		snapSeq = snap.Seq
	}
	if s.journal == nil {
		return data, nil, nil
	}
	if _, err := s.journal.Seek(0, 0); err != nil {
		return nil, nil, fmt.Errorf("datastore: rewind journal: %w", err)
	}
	_, _, recs, err := scanJournal(s.journal)
	if err != nil {
		return nil, nil, err
	}
	if _, err := s.journal.Seek(0, 2); err != nil {
		return nil, nil, fmt.Errorf("datastore: seek journal end: %w", err)
	}
	tail := recs[:0]
	for _, r := range recs {
		if r.Seq > snapSeq {
			tail = append(tail, r)
		}
	}
	return data, tail, nil
}

// Flush forces journal bytes to stable storage (fsync).
func (s *FileStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	if err := s.journalW.Flush(); err != nil {
		return err
	}
	return s.journal.Sync()
}

// Close flushes and releases the journal; further appends fail.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	ferr := s.journalW.Flush()
	serr := s.journal.Sync()
	cerr := s.journal.Close()
	s.journal = nil
	s.journalW = nil
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// Stats returns a snapshot of the store's counters.
func (s *FileStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Records:         s.records,
		Bytes:           s.bytes,
		AppendErrors:    s.appendE,
		Snapshots:       s.snaps,
		SnapshotErrors:  s.snapE,
		TornTailRepairs: s.tornFix,
		LastSeq:         s.seq,
		SnapshotSeq:     s.snapSeq,
	}
}

// readSnapshotFile reads and decodes the snapshot envelope, returning
// nil if no snapshot exists yet.
func (s *FileStore) readSnapshotFile() (*snapshotFile, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("datastore: read snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("datastore: decode snapshot: %w", err)
	}
	return &snap, nil
}

// scanJournal reads the journal from the current offset, returning the
// byte offset of the end of the intact prefix, the highest sequence seen
// and the decoded records. It stops — without error — at the first torn
// or corrupt line, which is the expected shape of a crashed journal.
func scanJournal(f *os.File) (validEnd int64, lastSeq uint64, recs []Record, err error) {
	if _, err := f.Seek(0, 0); err != nil {
		return 0, 0, nil, fmt.Errorf("datastore: rewind journal: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			// EOF with a partial line (no trailing newline) is a torn
			// append: stop at the last intact record.
			return off, lastSeq, recs, nil
		}
		rec, ok := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
		if !ok {
			return off, lastSeq, recs, nil
		}
		off += int64(len(line))
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		recs = append(recs, rec)
	}
}

// decodeLine checks one journal line's checksum and decodes its record.
func decodeLine(line []byte) (Record, bool) {
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return Record{}, false
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[sp+1:]
	if crc32.Checksum(payload, crcTable) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if json.Unmarshal(payload, &rec) != nil {
		return Record{}, false
	}
	return rec, true
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file survives a machine
// crash. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
