// Package datastore is the persistence boundary of the view manager:
// everything DeepSea learns online — pool contents, fragment boundaries,
// per-view Φ statistics, the simulated clock — funnels through a Store
// as a write-ahead journal of mutation records plus periodic opaque
// snapshots. The Store itself is deliberately dumb: it orders, checksums
// and replays records, but never interprets them; building and applying
// snapshots and records is the caller's job (see core's recovery).
//
// Two implementations ship: Null, the in-memory no-op that preserves the
// historical volatile behaviour, and FileStore, a directory holding a
// CRC-protected JSON-lines journal plus an atomically replaced snapshot
// file. Recovery is snapshot load + journal tail replay; records carry
// monotone sequence numbers so a tail overlapping the snapshot (a crash
// between snapshot publication and journal truncation) replays each
// mutation exactly once.
package datastore

import (
	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/relation"
	"deepsea/internal/signature"
)

// Record is one journaled mutation. Op discriminates which of the
// optional fields are meaningful; Seq is assigned by the Store on append
// and is strictly increasing within one journal. The ops mirror the
// mutation APIs they are emitted from:
//
//	pool:    ensure_view, remove_view, set_view_file, drop_view_file,
//	         ensure_part, add_frag, remove_frag, inval_view
//	engine:  put_file (Rows nil in estimate-only mode), del_file,
//	         append_file (Rows carries the appended suffix; Size is the
//	         new total), clock
//	stats:   part, use, hit, refine, frag_drop, vstat, fstat
//	index:   track_view (signature-index entry for view matching)
//	ingest:  append_rows (Rows carries appended base rows, the table
//	         named by their schema; Size is the table's new count),
//	         ingest_marks (View's content is consistent with Tables at
//	         the row counts in Marks), ingest_stale (View's content
//	         lags its base tables)
type Record struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`

	View string `json:"v,omitempty"`
	Attr string `json:"a,omitempty"`
	Path string `json:"p,omitempty"`
	Size int64  `json:"n,omitempty"`

	Iv  interval.Interval `json:"iv"`
	Dom interval.Interval `json:"dom"`
	// Overlapping carries ensure_part's partition mode.
	Overlapping bool `json:"ov,omitempty"`

	// Schema carries ensure_view's output schema; Rows carries put_file's
	// materialized table in exec mode, so a warm restart can serve rows.
	Schema *relation.Schema `json:"sch,omitempty"`
	Rows   *relation.Table  `json:"rows,omitempty"`

	// Sig carries track_view's view signature, so recovery can rebuild
	// the matching index without re-deriving signatures from queries.
	Sig *signature.Signature `json:"sig,omitempty"`

	// Tables and Marks carry ingest_marks' consistency point: the base
	// tables a view reads and the row count of each at which the view's
	// stored content is exact. A warm restart keeps a view only if its
	// marks match the recovered base counts.
	Tables []string         `json:"tbls,omitempty"`
	Marks  map[string]int64 `json:"marks,omitempty"`

	// T is a simulated timestamp (clock, use, hit); Saving and Cost are
	// benefit/cost figures (use, vstat); Measured mirrors the statistics
	// records' estimated-vs-actual flag (vstat, fstat).
	T        float64 `json:"t,omitempty"`
	Saving   float64 `json:"sv,omitempty"`
	Cost     float64 `json:"c,omitempty"`
	Measured bool    `json:"m,omitempty"`
}

// StoreStats counts one store handle's activity plus its durable
// positions, for the health surface.
type StoreStats struct {
	// Records and Bytes count journal appends through this handle.
	Records uint64
	Bytes   int64
	// AppendErrors and SnapshotErrors count failed durability operations
	// (injected faults included). Appends are best-effort: an error
	// degrades durability, never correctness, but it belongs on /healthz.
	AppendErrors   uint64
	Snapshots      uint64
	SnapshotErrors uint64
	// TornTailRepairs counts journal tails dropped at open because their
	// last line was incomplete or failed its checksum (the expected
	// aftermath of a crash mid-append).
	TornTailRepairs uint64
	// LastSeq is the highest sequence number assigned; SnapshotSeq is the
	// sequence the latest snapshot covers through.
	LastSeq     uint64
	SnapshotSeq uint64
}

// Store is the persistence boundary. Implementations must be safe for
// concurrent use: appends may arrive from any goroutine holding its own
// component lock, and WriteSnapshot runs while the caller quiesces the
// system.
type Store interface {
	// Append assigns the record its sequence number and journals it. An
	// error means the record is not durable; the in-memory state it
	// describes is already applied, so callers count the error and keep
	// going.
	Append(rec *Record) error
	// AppendGroup journals a batch of records as one store call:
	// sequence numbers are assigned contiguously in slice order and the
	// batch reaches the kernel with a single flush, amortizing the
	// per-record flush cost across a maintenance drain cycle. Appends
	// are best-effort record by record, like Append: a failed record is
	// counted and skipped, the rest of the group still lands, and the
	// first error is returned.
	AppendGroup(recs []*Record) error
	// WriteSnapshot atomically replaces the stored snapshot with data
	// (opaque to the store) covering every record appended so far, then
	// discards the now-redundant journal prefix.
	WriteSnapshot(data []byte) error
	// Load returns the current snapshot (nil if none) and the journal
	// records appended after it, in append order.
	Load() (snapshot []byte, tail []Record, err error)
	// Flush forces buffered journal bytes to stable storage.
	Flush() error
	// Close flushes and releases the store.
	Close() error
	// Stats returns a snapshot of the store's counters.
	Stats() StoreStats
	// SetFaults attaches a fault injector (JournalAppend/SnapshotWrite
	// sites); nil runs fault-free. Set before concurrent use.
	SetFaults(in *faults.Injector)
}

// Null is the in-memory no-op store: nothing is journaled, Load finds
// nothing, and every operation succeeds. It is the explicit spelling of
// the historical volatile behaviour.
type Null struct{}

// Append discards the record.
func (Null) Append(*Record) error { return nil }

// AppendGroup discards the records.
func (Null) AppendGroup([]*Record) error { return nil }

// WriteSnapshot discards the snapshot.
func (Null) WriteSnapshot([]byte) error { return nil }

// Load finds nothing.
func (Null) Load() ([]byte, []Record, error) { return nil, nil, nil }

// Flush is a no-op.
func (Null) Flush() error { return nil }

// Close is a no-op.
func (Null) Close() error { return nil }

// Stats returns zeros.
func (Null) Stats() StoreStats { return StoreStats{} }

// SetFaults is a no-op.
func (Null) SetFaults(*faults.Injector) {}
