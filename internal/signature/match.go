package signature

import (
	"deepsea/internal/interval"
	"deepsea/internal/query"
)

// Compensation describes the operations that must be applied on top of a
// matched view to produce exactly the query subtree's result.
type Compensation struct {
	// Ranges are extra range selections (query range strictly inside the
	// view's range for that column).
	Ranges []query.RangePred
	// Residuals are extra residual predicates present in the query but
	// not in the view.
	Residuals []query.CmpPred
	// Project lists the query's output columns when the view exposes
	// more columns than the query needs; nil when outputs are identical
	// as sets.
	Project []string
}

// Match checks the sufficient condition for the view signature to answer
// the query signature and, on success, returns the required
// compensation. The condition (after Goldstein–Larson, restricted to the
// operator shapes this engine supports) is:
//
//  1. equal relation multisets,
//  2. equal join predicate sets,
//  3. equal aggregation shape (group-by and aggregate lists), and both
//     sides either aggregated or not,
//  4. the view's residual predicates are a subset of the query's, and
//     every compensating residual references a view output column,
//  5. per column, the view's range contains the query's range, and every
//     compensating range selection references a view output column,
//  6. the query's output columns are a subset of the view's.
//
// Compensating a range or residual above an aggregation is sound here
// because condition 3 forces equal group-by lists: a retained predicate
// column is necessarily a group-by column, and filtering groups on it
// commutes with the aggregation.
func Match(view, q *Signature) (Compensation, bool) {
	var comp Compensation
	if !equalStrings(view.Relations, q.Relations) {
		return comp, false
	}
	if !equalStrings(view.JoinPairs, q.JoinPairs) {
		return comp, false
	}
	if view.HasAgg != q.HasAgg {
		return comp, false
	}
	if view.HasAgg {
		if !equalStrings(view.GroupBy, q.GroupBy) || !equalStrings(view.Aggs, q.Aggs) {
			return comp, false
		}
	}

	viewOut := make(map[string]bool, len(view.Output))
	for _, c := range view.Output {
		viewOut[c] = true
	}

	// Condition 4: residuals.
	qres := make(map[string]query.CmpPred, len(q.Residuals))
	for _, r := range q.Residuals {
		qres[r.Key] = r.Pred
	}
	for _, r := range view.Residuals {
		if _, ok := qres[r.Key]; !ok {
			return comp, false // view more restrictive than query
		}
		delete(qres, r.Key)
	}
	for _, r := range q.Residuals {
		p, remaining := qres[r.Key]
		if !remaining {
			continue
		}
		if !viewOut[p.Col] {
			return comp, false // cannot compensate: column projected away
		}
		comp.Residuals = append(comp.Residuals, p)
		delete(qres, r.Key)
	}

	// Condition 5: ranges. Missing entries mean "unrestricted"; a view
	// range with no matching query range only matches if the view range
	// covers the column's whole domain.
	for col, vr := range view.Ranges {
		qr, ok := q.Ranges[col]
		if !ok {
			dom, known := domainOf(view, q, col)
			if !known || !vr.ContainsInterval(dom) {
				return comp, false
			}
			continue
		}
		if !vr.ContainsInterval(qr) {
			return comp, false
		}
		if vr != qr {
			if !viewOut[col] {
				return comp, false
			}
			comp.Ranges = append(comp.Ranges, query.RangePred{Col: col, Iv: qr})
		}
	}
	for col, qr := range q.Ranges {
		if _, ok := view.Ranges[col]; ok {
			continue // handled above
		}
		if !viewOut[col] {
			return comp, false
		}
		comp.Ranges = append(comp.Ranges, query.RangePred{Col: col, Iv: qr})
	}

	// Condition 6: output columns.
	sameOut := len(view.Output) == len(q.Output)
	for _, c := range q.Output {
		if !viewOut[c] {
			return comp, false
		}
	}
	if sameOut {
		qOut := make(map[string]bool, len(q.Output))
		for _, c := range q.Output {
			qOut[c] = true
		}
		for _, c := range view.Output {
			if !qOut[c] {
				sameOut = false
				break
			}
		}
	}
	if !sameOut {
		comp.Project = append([]string(nil), q.Output...)
	}
	return comp, true
}

// domainOf looks up the domain of an ordered column from either
// signature's schema.
func domainOf(view, q *Signature, col string) (interval.Interval, bool) {
	for _, s := range [...]*Signature{view, q} {
		sch := s.Schema()
		if i := sch.ColIndex(col); i >= 0 && sch.Cols[i].Ordered {
			return interval.New(sch.Cols[i].Lo, sch.Cols[i].Hi), true
		}
	}
	return interval.Interval{}, false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
