package signature

import (
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

func salesSchema() relation.Schema {
	return relation.Schema{
		Name: "store_sales",
		Cols: []relation.Column{
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 1000},
			{Name: "ss_quantity", Type: relation.Int},
			{Name: "ss_price", Type: relation.Float},
		},
	}
}

func itemSchema() relation.Schema {
	return relation.Schema{
		Name: "item",
		Cols: []relation.Column{
			{Name: "i_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 1000},
			{Name: "i_category", Type: relation.String},
		},
	}
}

// joinPlan builds join(store_sales, item) on item_sk.
func joinPlan() *query.Join {
	return &query.Join{
		Left:  query.NewScan("store_sales", salesSchema()),
		Right: query.NewScan("item", itemSchema()),
		LCol:  "ss_item_sk",
		RCol:  "i_item_sk",
	}
}

func TestSignatureOfScan(t *testing.T) {
	s := Of(query.NewScan("store_sales", salesSchema()))
	if len(s.Relations) != 1 || s.Relations[0] != "store_sales" {
		t.Errorf("Relations = %v", s.Relations)
	}
	if len(s.Output) != 3 {
		t.Errorf("Output = %v", s.Output)
	}
	if s.HasAgg {
		t.Error("scan signature claims aggregation")
	}
}

func TestSignatureJoinOrderIndependence(t *testing.T) {
	a := Of(joinPlan())
	b := Of(&query.Join{
		Left:  query.NewScan("item", itemSchema()),
		Right: query.NewScan("store_sales", salesSchema()),
		LCol:  "i_item_sk",
		RCol:  "ss_item_sk",
	})
	if a.FamilyKey() != b.FamilyKey() {
		t.Errorf("join order changed family key:\n%s\n%s", a.FamilyKey(), b.FamilyKey())
	}
}

func TestSignatureRangeIntersection(t *testing.T) {
	inner := &query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 500)}}}
	outer := &query.Select{Child: inner,
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(200, 800)}}}
	s := Of(outer)
	if got := s.Ranges["ss_item_sk"]; got != interval.New(200, 500) {
		t.Errorf("intersected range = %v, want [200,500]", got)
	}
}

func TestKeyDistinguishesRanges(t *testing.T) {
	a := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 10)}}})
	b := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 20)}}})
	if a.Key() == b.Key() {
		t.Error("signatures with different ranges share a key")
	}
	if a.FamilyKey() != b.FamilyKey() {
		t.Error("signatures with different ranges should share a family")
	}
}

func TestMatchIdenticalJoin(t *testing.T) {
	v := Of(joinPlan())
	q := Of(joinPlan())
	comp, ok := Match(v, q)
	if !ok {
		t.Fatal("identical joins did not match")
	}
	if len(comp.Ranges) != 0 || len(comp.Residuals) != 0 || comp.Project != nil {
		t.Errorf("unexpected compensation: %+v", comp)
	}
}

func TestMatchSelectionOverView(t *testing.T) {
	v := Of(joinPlan())
	q := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(100, 200)}}})
	comp, ok := Match(v, q)
	if !ok {
		t.Fatal("selection over join did not match unrestricted join view")
	}
	if len(comp.Ranges) != 1 || comp.Ranges[0].Col != "ss_item_sk" ||
		comp.Ranges[0].Iv != interval.New(100, 200) {
		t.Errorf("compensation ranges = %v", comp.Ranges)
	}
}

func TestMatchViewRangeContainsQueryRange(t *testing.T) {
	v := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 500)}}})
	q := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(100, 200)}}})
	comp, ok := Match(v, q)
	if !ok {
		t.Fatal("containing view range did not match")
	}
	if len(comp.Ranges) != 1 || comp.Ranges[0].Iv != interval.New(100, 200) {
		t.Errorf("compensation = %v", comp.Ranges)
	}
}

func TestMatchRejectsNarrowerView(t *testing.T) {
	v := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(100, 200)}}})
	q := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 500)}}})
	if _, ok := Match(v, q); ok {
		t.Error("narrower view matched wider query")
	}
}

func TestMatchViewRangeEqualsDomain(t *testing.T) {
	// A view restricted to the full domain is equivalent to no restriction.
	v := Of(&query.Select{Child: joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 1000)}}})
	q := Of(joinPlan())
	if _, ok := Match(v, q); !ok {
		t.Error("domain-wide view range did not match unrestricted query")
	}
}

func TestMatchRejectsDifferentRelations(t *testing.T) {
	v := Of(query.NewScan("store_sales", salesSchema()))
	q := Of(query.NewScan("item", itemSchema()))
	if _, ok := Match(v, q); ok {
		t.Error("different relations matched")
	}
}

func TestMatchProjectionCompensation(t *testing.T) {
	v := Of(joinPlan())
	q := Of(&query.Project{Child: joinPlan(), Cols: []string{"ss_item_sk", "i_category"}})
	comp, ok := Match(v, q)
	if !ok {
		t.Fatal("projection over join did not match join view")
	}
	if len(comp.Project) != 2 || comp.Project[0] != "ss_item_sk" {
		t.Errorf("compensation projection = %v", comp.Project)
	}
}

func TestMatchRejectsMissingOutput(t *testing.T) {
	v := Of(&query.Project{Child: joinPlan(), Cols: []string{"i_category"}})
	q := Of(&query.Project{Child: joinPlan(), Cols: []string{"ss_item_sk"}})
	if _, ok := Match(v, q); ok {
		t.Error("view lacking required output matched")
	}
}

func TestMatchRangeCompensationNeedsColumn(t *testing.T) {
	// View projects away ss_item_sk; query restricts it: no match.
	v := Of(&query.Project{Child: joinPlan(), Cols: []string{"i_category"}})
	q := Of(&query.Select{
		Child:  &query.Project{Child: joinPlan(), Cols: []string{"i_category"}},
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 10)}}})
	if _, ok := Match(v, q); ok {
		t.Error("range compensation on projected-away column matched")
	}
}

func TestMatchResidualSubset(t *testing.T) {
	pred := query.CmpPred{Col: "i_category", Op: query.Eq,
		Val: relation.StringVal("books"), Typ: relation.String}
	v := Of(joinPlan())
	q := Of(&query.Select{Child: joinPlan(), Residuals: []query.CmpPred{pred}})
	comp, ok := Match(v, q)
	if !ok {
		t.Fatal("residual compensation failed")
	}
	if len(comp.Residuals) != 1 || comp.Residuals[0].Col != "i_category" {
		t.Errorf("compensation residuals = %v", comp.Residuals)
	}
	// Reverse direction: view has residual the query lacks -> reject.
	if _, ok := Match(q, v); ok {
		t.Error("view with extra residual matched unrestricted query")
	}
}

func aggPlan(iv interval.Interval) *query.Aggregate {
	return &query.Aggregate{
		Child: &query.Select{Child: joinPlan(),
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: iv}}},
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "total"}},
	}
}

func TestMatchAggregateShape(t *testing.T) {
	v := Of(aggPlan(interval.New(0, 1000)))
	q := Of(aggPlan(interval.New(0, 1000)))
	if _, ok := Match(v, q); !ok {
		t.Error("identical aggregates did not match")
	}
	// Aggregate view vs plain join query must not match.
	if _, ok := Match(v, Of(joinPlan())); ok {
		t.Error("aggregate view matched non-aggregate query")
	}
	if _, ok := Match(Of(joinPlan()), v); ok {
		t.Error("join view matched aggregate query")
	}
}

func TestMatchAggregateRangeCompensationRejected(t *testing.T) {
	// ss_item_sk is not in the aggregate's output (group-by is
	// i_category), so a narrower query range cannot be compensated.
	v := Of(aggPlan(interval.New(0, 1000)))
	q := Of(aggPlan(interval.New(100, 200)))
	if _, ok := Match(v, q); ok {
		t.Error("uncompensatable post-aggregation range matched")
	}
}

func TestMatchAggregateDifferentGroupBy(t *testing.T) {
	v := Of(&query.Aggregate{Child: joinPlan(), GroupBy: []string{"i_category"},
		Aggs: []query.AggSpec{{Func: query.Count, As: "n"}}})
	q := Of(&query.Aggregate{Child: joinPlan(), GroupBy: []string{"ss_item_sk"},
		Aggs: []query.AggSpec{{Func: query.Count, As: "n"}}})
	if _, ok := Match(v, q); ok {
		t.Error("different group-by lists matched")
	}
}

func TestKeyDistinguishesAggregates(t *testing.T) {
	a := Of(&query.Aggregate{Child: joinPlan(), GroupBy: []string{"i_category"},
		Aggs: []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "x"}}})
	b := Of(&query.Aggregate{Child: joinPlan(), GroupBy: []string{"i_category"},
		Aggs: []query.AggSpec{{Func: query.Avg, Col: "ss_price", As: "x"}}})
	if a.Key() == b.Key() {
		t.Error("different aggregate functions share a key")
	}
	if a.FamilyKey() == b.FamilyKey() {
		t.Error("different aggregate functions share a family")
	}
}

func TestKeyDistinguishesResiduals(t *testing.T) {
	p1 := query.CmpPred{Col: "i_category", Op: query.Eq,
		Val: relation.StringVal("books"), Typ: relation.String}
	p2 := query.CmpPred{Col: "i_category", Op: query.Eq,
		Val: relation.StringVal("music"), Typ: relation.String}
	a := Of(&query.Select{Child: joinPlan(), Residuals: []query.CmpPred{p1}})
	b := Of(&query.Select{Child: joinPlan(), Residuals: []query.CmpPred{p2}})
	if a.Key() == b.Key() {
		t.Error("different residual constants share a key")
	}
}

func TestKeyDistinguishesProjections(t *testing.T) {
	a := Of(&query.Project{Child: joinPlan(), Cols: []string{"ss_item_sk"}})
	b := Of(&query.Project{Child: joinPlan(), Cols: []string{"ss_item_sk", "i_category"}})
	if a.Key() == b.Key() {
		t.Error("different projections share a key")
	}
	// Projections share the family (ranges/output differ, shape does not).
	if a.FamilyKey() != b.FamilyKey() {
		t.Error("projections of the same join should share a family")
	}
}

func TestMatchSelfIsIdentity(t *testing.T) {
	// Every signature must match itself with empty compensation.
	plans := []query.Node{
		joinPlan(),
		&query.Select{Child: joinPlan(),
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(5, 9)}}},
		&query.Project{Child: joinPlan(), Cols: []string{"i_category"}},
		aggPlan(interval.New(0, 1000)),
	}
	for i, p := range plans {
		s := Of(p)
		comp, ok := Match(s, Of(p))
		if !ok {
			t.Errorf("plan %d does not match itself", i)
			continue
		}
		if len(comp.Ranges)+len(comp.Residuals) != 0 || comp.Project != nil {
			t.Errorf("plan %d self-match has compensation %+v", i, comp)
		}
	}
}
