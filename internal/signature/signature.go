// Package signature implements the query/view signatures of Goldstein
// and Larson ("Optimizing queries using materialized views: a practical,
// scalable solution", SIGMOD 2001) as adapted by DeepSea: a mostly
// syntax-independent description of a (sub)query consisting of its
// relation multiset, join predicate pairs, per-attribute range
// restrictions, residual predicates, output columns and aggregation
// shape. A sufficient condition over two signatures decides whether a
// view can answer a query and, if so, which compensation (extra
// selection + projection) must be applied on top of the view.
package signature

import (
	"fmt"
	"sort"
	"strings"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// Signature abstracts a query subtree. Column names are globally unique
// across base schemas, so attributes appear unqualified.
type Signature struct {
	// Relations is the sorted multiset of base tables accessed.
	Relations []string
	// JoinPairs holds normalized "a=b" strings (a < b lexically), sorted.
	JoinPairs []string
	// Ranges maps an ordered column to the intersection of all explicit
	// range predicates on it. A missing entry means the column is
	// unrestricted.
	Ranges map[string]interval.Interval
	// Residuals holds canonical strings of non-range predicates, sorted,
	// with the parsed predicate retained for compensation.
	Residuals []ResidualPred
	// Output is the list of output columns in schema order.
	Output []string
	// GroupBy is the sorted group-by column list; nil when the subtree
	// contains no aggregation.
	GroupBy []string
	// Aggs is the sorted list of canonical aggregate strings; nil when
	// the subtree contains no aggregation.
	Aggs []string
	// HasAgg distinguishes an aggregation with empty group-by from no
	// aggregation.
	HasAgg bool

	// schema is the output schema, kept for domain lookups.
	schema relation.Schema
}

// ResidualPred pairs a canonical string with the predicate it denotes.
type ResidualPred struct {
	Key  string
	Pred query.CmpPred
}

// Of computes the signature of a plan subtree. It panics on ViewScan
// nodes: signatures are computed over unrewritten plans only.
func Of(n query.Node) *Signature {
	sig := of(n)
	sort.Strings(sig.Relations)
	sort.Strings(sig.JoinPairs)
	sort.Slice(sig.Residuals, func(i, j int) bool {
		return sig.Residuals[i].Key < sig.Residuals[j].Key
	})
	sort.Strings(sig.GroupBy)
	sort.Strings(sig.Aggs)
	sig.schema = n.Schema()
	return sig
}

func of(n query.Node) *Signature {
	switch t := n.(type) {
	case *query.Scan:
		s := &Signature{
			Relations: []string{t.Table},
			Ranges:    make(map[string]interval.Interval),
		}
		for _, c := range t.Schema().Cols {
			s.Output = append(s.Output, c.Name)
		}
		return s
	case *query.Select:
		s := of(t.Child)
		for _, r := range t.Ranges {
			if cur, ok := s.Ranges[r.Col]; ok {
				// Workload generators never emit contradictory
				// conjunctions, so a non-empty intersection always
				// exists; if it did not we keep the first range, which
				// is sound for matching (it only widens the signature).
				if x, nonEmpty := cur.Intersect(r.Iv); nonEmpty {
					s.Ranges[r.Col] = x
				}
			} else {
				s.Ranges[r.Col] = r.Iv
			}
		}
		for _, p := range t.Residuals {
			s.Residuals = append(s.Residuals, ResidualPred{Key: p.String(), Pred: p})
		}
		return s
	case *query.Project:
		s := of(t.Child)
		s.Output = append([]string(nil), t.Cols...)
		return s
	case *query.Join:
		l, r := of(t.Left), of(t.Right)
		s := &Signature{
			Relations: append(l.Relations, r.Relations...),
			JoinPairs: append(l.JoinPairs, r.JoinPairs...),
			Ranges:    l.Ranges,
			Residuals: append(l.Residuals, r.Residuals...),
			Output:    append(l.Output, r.Output...),
		}
		for col, iv := range r.Ranges {
			s.Ranges[col] = iv
		}
		a, b := t.LCol, t.RCol
		if a > b {
			a, b = b, a
		}
		s.JoinPairs = append(s.JoinPairs, a+"="+b)
		return s
	case *query.Aggregate:
		s := of(t.Child)
		s.HasAgg = true
		s.GroupBy = append([]string(nil), t.GroupBy...)
		s.Aggs = nil
		for _, sp := range t.Aggs {
			s.Aggs = append(s.Aggs, sp.String())
		}
		s.Output = append([]string(nil), t.GroupBy...)
		for _, sp := range t.Aggs {
			s.Output = append(s.Output, sp.As)
		}
		return s
	default:
		panic(fmt.Sprintf("signature: unsupported node type %T", n))
	}
}

// Schema returns the output schema of the subtree the signature was
// computed from.
func (s *Signature) Schema() relation.Schema { return s.schema }

// SetSchema re-attaches the output schema after a signature crossed a
// serialization boundary (the schema field does not marshal; recovery
// restores it from the persisted view schema).
func (s *Signature) SetSchema(sch relation.Schema) { s.schema = sch }

// Key returns a canonical string identifying the signature. Two subtrees
// with equal signatures produce equal keys. The key is used as the view
// identity in the pool and statistics.
func (s *Signature) Key() string {
	var b strings.Builder
	b.WriteString("R{")
	b.WriteString(strings.Join(s.Relations, ","))
	b.WriteString("}J{")
	b.WriteString(strings.Join(s.JoinPairs, ","))
	b.WriteString("}S{")
	cols := make([]string, 0, len(s.Ranges))
	for c := range s.Ranges {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for i, c := range cols {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s:%s", c, s.Ranges[c])
	}
	b.WriteString("}P{")
	keys := make([]string, len(s.Residuals))
	for i, r := range s.Residuals {
		keys[i] = r.Key
	}
	b.WriteString(strings.Join(keys, ","))
	b.WriteString("}O{")
	out := append([]string(nil), s.Output...)
	sort.Strings(out)
	b.WriteString(strings.Join(out, ","))
	b.WriteString("}")
	if s.HasAgg {
		b.WriteString("G{")
		b.WriteString(strings.Join(s.GroupBy, ","))
		b.WriteString("}A{")
		b.WriteString(strings.Join(s.Aggs, ","))
		b.WriteString("}")
	}
	return b.String()
}

// FamilyKey identifies the signature modulo range restrictions and
// output: all instances of a query template share a family. The filter
// tree groups views by family before detailed matching.
func (s *Signature) FamilyKey() string {
	var b strings.Builder
	b.WriteString("R{")
	b.WriteString(strings.Join(s.Relations, ","))
	b.WriteString("}J{")
	b.WriteString(strings.Join(s.JoinPairs, ","))
	b.WriteString("}")
	if s.HasAgg {
		b.WriteString("G{")
		b.WriteString(strings.Join(s.GroupBy, ","))
		b.WriteString("}A{")
		b.WriteString(strings.Join(s.Aggs, ","))
		b.WriteString("}")
	}
	return b.String()
}
