package core

import (
	"context"
	"math/rand"
	"testing"

	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// appendRows builds a deterministic batch of new sales rows, disjoint
// from the seed batches for other calls (seed selects the stream).
func appendRows(seed int64, n int) []relation.Row {
	rng := rand.New(rand.NewSource(1000 + seed))
	rows := make([]relation.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, relation.Row{
			relation.IntVal(rng.Int63n(testDomHi + 1)),
			relation.IntVal(rng.Int63n(50) + 1),
			relation.StringVal(""),
		})
	}
	return rows
}

// freshWithAppends builds a baseline instance whose sales table contains
// the seed rows plus all the given append batches from the start — the
// rematerialize-from-scratch ground truth.
func freshWithAppends(t *testing.T, batches ...[]relation.Row) *DeepSea {
	t.Helper()
	d := New(testConfig())
	addTestTables(d)
	for _, b := range batches {
		tbl := d.Eng.BaseTable("sales")
		tbl.Rows = append(tbl.Rows, b...)
	}
	return d
}

// resultJSON is the repo's result-identity oracle: the order-independent
// fingerprint (rewritten plans are row-set identical to the original
// plan; row order follows the chosen fragment cover). View CONTENT
// byte-identity of incremental refresh vs remat is asserted at the
// engine layer (delta_test.go) and in the ingestspeed experiment.
func resultJSON(t *testing.T, rep QueryReport) string {
	t.Helper()
	if rep.Result == nil {
		t.Fatal("query returned no rows")
	}
	return rep.Result.Fingerprint()
}

// TestAppendRefreshMatchesFresh is the tentpole identity: interleaved
// appends and queries produce byte-identical results to a fresh
// instance whose base tables held the appended rows from the start.
func TestAppendRefreshMatchesFresh(t *testing.T) {
	d := newTestSystem(t, nil)
	persistWorkload(t, d) // warm: views materialize
	b1, b2 := appendRows(1, 300), appendRows(2, 500)

	if _, err := d.Append("sales", b1); err != nil {
		t.Fatalf("Append: %v", err)
	}
	run(t, d, q30(0, 4999))
	rep, err := d.Append("sales", b2)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if rep.NewCount != 20000+300+500 {
		t.Fatalf("NewCount = %d, want %d", rep.NewCount, 20000+800)
	}

	base := freshWithAppends(t, b1, b2)
	for _, q := range []struct{ lo, hi int64 }{{0, 4999}, {1000, 2999}, {500, 1499}, {0, 9999}} {
		got := resultJSON(t, run(t, d, q30(q.lo, q.hi)))
		want := resultJSON(t, run(t, base, q30(q.lo, q.hi)))
		if got != want {
			t.Errorf("q30(%d,%d) after appends diverges from fresh baseline:\n got %s\nwant %s", q.lo, q.hi, got, want)
		}
	}

	is := d.IngestStats()
	if is.Appends != 2 || is.AppendedRows != 800 {
		t.Errorf("IngestStats appends = %d/%d rows, want 2/800", is.Appends, is.AppendedRows)
	}
	if is.StaleViews != 0 {
		t.Errorf("IngestStats.StaleViews = %d after inline refresh, want 0", is.StaleViews)
	}
	if is.Refreshes == 0 && is.Drops == 0 {
		t.Error("append over a warmed pool neither refreshed nor dropped any view")
	}
}

// TestEmptyAppendIsNoop: appending zero rows changes nothing and marks
// nothing stale.
func TestEmptyAppendIsNoop(t *testing.T) {
	d := newTestSystem(t, nil)
	persistWorkload(t, d)
	before := resultJSON(t, run(t, d, q30(0, 4999)))
	rep, err := d.Append("sales", nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if rep.NewCount != 20000 || len(rep.StaleViews) != 0 {
		t.Fatalf("empty append report = %+v", rep)
	}
	if is := d.IngestStats(); is.Appends != 0 {
		t.Errorf("empty append counted: %+v", is)
	}
	if after := resultJSON(t, run(t, d, q30(0, 4999))); after != before {
		t.Error("empty append changed query result")
	}
}

// TestCacheInvalidationOnAppend: a cached result must miss after the
// base grows (the appended rows change the answer), and re-hit once the
// new result is cached — never serving pre-append bytes.
func TestCacheInvalidationOnAppend(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.CacheBytes = 1 << 40 })
	q := q30(0, 4999)
	first := resultJSON(t, run(t, d, q))

	h0 := d.Health()
	second := resultJSON(t, run(t, d, q))
	h1 := d.Health()
	if h1.CacheHits != h0.CacheHits+1 {
		t.Fatalf("repeat query did not hit the cache: hits %d -> %d", h0.CacheHits, h1.CacheHits)
	}
	if second != first {
		t.Fatal("cache hit returned different bytes")
	}

	b := appendRows(3, 400)
	if _, err := d.Append("sales", b); err != nil {
		t.Fatalf("Append: %v", err)
	}
	third := resultJSON(t, run(t, d, q))
	h2 := d.Health()
	if h2.CacheHits != h1.CacheHits {
		t.Error("post-append query hit the cache: stale bytes served")
	}
	want := resultJSON(t, run(t, freshWithAppends(t, b), q))
	if third != want {
		t.Errorf("post-append result:\n got %s\nwant %s", third, want)
	}
	fourth := resultJSON(t, run(t, d, q))
	h3 := d.Health()
	if h3.CacheHits != h2.CacheHits+1 {
		t.Errorf("post-append repeat did not re-hit: hits %d -> %d", h2.CacheHits, h3.CacheHits)
	}
	if fourth != third {
		t.Error("re-hit returned different bytes")
	}
}

// TestRematOnAppendDropsViews: the invalidate-and-recompute baseline
// drops every dependent view instead of refreshing, and still answers
// correctly.
func TestRematOnAppendDropsViews(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.RematOnAppend = true })
	persistWorkload(t, d)
	b := appendRows(4, 300)
	rep, err := d.Append("sales", b)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if len(rep.StaleViews) == 0 {
		t.Fatal("warmed pool had no sales-dependent views to invalidate")
	}
	is := d.IngestStats()
	if is.Refreshes != 0 {
		t.Errorf("RematOnAppend refreshed %d views, want 0", is.Refreshes)
	}
	if is.Drops == 0 {
		t.Error("RematOnAppend dropped no views")
	}
	got := resultJSON(t, run(t, d, q30(0, 4999)))
	want := resultJSON(t, run(t, freshWithAppends(t, b), q30(0, 4999)))
	if got != want {
		t.Errorf("post-drop result:\n got %s\nwant %s", got, want)
	}
}

// TestBackgroundRefresh: with maintenance workers, Append defers the
// refresh to the KindRefresh band; queries issued before the drain are
// still correct (the stale view is skipped), and after the drain no
// view is stale.
func TestBackgroundRefresh(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.MaintWorkers = 2 })
	defer d.CloseMaintenance()
	persistWorkload(t, d)
	if err := d.DrainMaintenance(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := appendRows(5, 300)
	rep, err := d.Append("sales", b)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if len(rep.StaleViews) > 0 && !rep.Deferred {
		t.Error("background mode applied refresh inline")
	}
	base := freshWithAppends(t, b)
	// Before the drain: the refresh may or may not have run, but the
	// result must already reflect the append.
	got := resultJSON(t, run(t, d, q30(0, 4999)))
	want := resultJSON(t, run(t, base, q30(0, 4999)))
	if got != want {
		t.Errorf("pre-drain result:\n got %s\nwant %s", got, want)
	}
	if err := d.DrainMaintenance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if is := d.IngestStats(); is.StaleViews != 0 {
		t.Errorf("stale views after drain: %+v", is)
	}
	got = resultJSON(t, run(t, d, q30(1000, 2999)))
	want = resultJSON(t, run(t, base, q30(1000, 2999)))
	if got != want {
		t.Errorf("post-drain result:\n got %s\nwant %s", got, want)
	}
}

// TestAppendRecoveryWarmRestart: appends journal through the datastore;
// a warm restart re-adds the base catalog, replays the appends, and
// serves byte-identical results. Views whose marks match survive; the
// rest are dropped, never served stale.
func TestAppendRecoveryWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir)
	d1 := newTestSystem(t, func(c *Config) { c.Datastore = s1 })
	persistWorkload(t, d1)
	b := appendRows(6, 300)
	if _, err := d1.Append("sales", b); err != nil {
		t.Fatalf("Append: %v", err)
	}
	want := resultJSON(t, run(t, d1, q30(0, 4999)))
	// No Snapshot: the appends must recover from the journal tail alone.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	d2 := newTestSystem(t, func(c *Config) { c.Datastore = s2 })
	if rec := d2.Recovery(); !rec.Ran || rec.Err != "" {
		t.Fatalf("recovery = %+v", rec)
	}
	info, err := d2.ApplyRecoveredAppends()
	if err != nil {
		t.Fatalf("ApplyRecoveredAppends: %v", err)
	}
	if info.Rows != 300 {
		t.Errorf("recovered %d appended rows, want 300", info.Rows)
	}
	if n := d2.Eng.BaseCounts([]string{"sales"})["sales"]; n != 20300 {
		t.Errorf("recovered sales count = %d, want 20300", n)
	}
	if got := resultJSON(t, run(t, d2, q30(0, 4999))); got != want {
		t.Errorf("recovered result diverges:\n got %s\nwant %s", got, want)
	}

	// And again with a snapshot covering the appends.
	if err := d2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir)
	defer s3.Close()
	d3 := newTestSystem(t, func(c *Config) { c.Datastore = s3 })
	if _, err := d3.ApplyRecoveredAppends(); err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, run(t, d3, q30(0, 4999))); got != want {
		t.Errorf("snapshot-recovered result diverges:\n got %s\nwant %s", got, want)
	}
}

// appendMaintainedView finds the warmed pool's append-maintained view
// (non-aggregate root, fragment-partitioned — the DeltaAppend refresh
// path) and returns its id plus its fragment paths in partition order.
func appendMaintainedView(t *testing.T, d *DeepSea) (string, []string) {
	t.Helper()
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, m := range s.views {
		if _, isAgg := m.plan.(*query.Aggregate); isAgg {
			continue
		}
		pv := d.Pool.View(id)
		if pv == nil {
			continue
		}
		var paths []string
		for _, attr := range pv.PartAttrs() {
			for _, fr := range pv.Parts[attr].Fragments() {
				paths = append(paths, fr.Path)
			}
		}
		if len(paths) > 1 {
			return id, paths
		}
	}
	t.Fatal("warmed pool has no fragment-partitioned append-maintained view")
	return "", nil
}

// TestAppendPartialApplyDropsView: a write fault partway through a
// multi-file DeltaAppend apply leaves fragments extended before the
// fault already holding the delta, so the refresh must DROP the view —
// re-running the apply would append the delta to those files a second
// time. The instance comes out with no stale views, no retry backlog,
// and query results identical to a fresh baseline.
func TestAppendPartialApplyDropsView(t *testing.T) {
	d := newTestSystem(t, nil)
	persistWorkload(t, d)
	id, frags := appendMaintainedView(t, d)

	// Sabotage the last fragment's backing file: the apply extends every
	// earlier fragment, then faults — a genuine partial apply.
	d.Eng.DeleteMaterialized(frags[len(frags)-1])

	b := appendRows(8, 300)
	rep, err := d.Append("sales", b)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	dropped := false
	for _, v := range rep.Dropped {
		dropped = dropped || v == id
	}
	if !dropped {
		t.Fatalf("partially applied view not dropped: %+v", rep)
	}
	for _, v := range rep.Refreshed {
		if v == id {
			t.Fatal("partially applied view reported refreshed")
		}
	}
	is := d.IngestStats()
	if is.Drops == 0 || is.StaleViews != 0 || is.RetryBacklog != 0 {
		t.Fatalf("post-fault stats = %+v, want the view dropped cleanly", is)
	}

	base := freshWithAppends(t, b)
	for _, q := range []struct{ lo, hi int64 }{{0, 4999}, {1000, 2999}} {
		got := resultJSON(t, run(t, d, q30(q.lo, q.hi)))
		want := resultJSON(t, run(t, base, q30(q.lo, q.hi)))
		if got != want {
			t.Errorf("q30(%d,%d) after partial-apply drop diverges (delta applied twice?):\n got %s\nwant %s",
				q.lo, q.hi, got, want)
		}
	}
}

// TestInlineRetryBacklogDrains: when a faulted view's drop is blocked by
// a pinned file in inline mode, the view joins the retry backlog (the
// operator-visible degraded signal) instead of being stuck forever, and
// the next Append — after the pin releases — drains the backlog.
func TestInlineRetryBacklogDrains(t *testing.T) {
	d := newTestSystem(t, nil)
	persistWorkload(t, d)
	id, frags := appendMaintainedView(t, d)

	// A concurrent query holds the first fragment pinned; the last
	// fragment's backing file is gone, so the refresh faults mid-apply
	// and the pin blocks the only safe completion (the drop).
	d.pin(frags[:1])
	d.Eng.DeleteMaterialized(frags[len(frags)-1])

	b1 := appendRows(9, 300)
	rep1, err := d.Append("sales", b1)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	for _, v := range append(rep1.Refreshed, rep1.Dropped...) {
		if v == id {
			t.Fatalf("pinned faulted view reported resolved: %+v", rep1)
		}
	}
	is := d.IngestStats()
	if is.RetryBacklog != 1 || is.StaleViews != 1 {
		t.Fatalf("stuck view not in retry backlog: %+v", is)
	}
	if h := d.Health(); h.IngestRetryBacklog != 1 {
		t.Fatalf("Health.IngestRetryBacklog = %d, want 1", h.IngestRetryBacklog)
	}

	// Pin released: the next append (same or different dependents) drains
	// the backlog, and the poisoned marks force the drop.
	d.unpin(frags[:1])
	b2 := appendRows(10, 200)
	rep2, err := d.Append("sales", b2)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	dropped := false
	for _, v := range rep2.Dropped {
		dropped = dropped || v == id
	}
	if !dropped {
		t.Fatalf("backlog view not dropped on the next append: %+v", rep2)
	}
	is = d.IngestStats()
	if is.RetryBacklog != 0 || is.StaleViews != 0 || is.Drops == 0 {
		t.Fatalf("backlog did not drain: %+v", is)
	}

	base := freshWithAppends(t, b1, b2)
	got := resultJSON(t, run(t, d, q30(0, 4999)))
	want := resultJSON(t, run(t, base, q30(0, 4999)))
	if got != want {
		t.Errorf("post-drain result diverges:\n got %s\nwant %s", got, want)
	}
}

// TestAppendUnknownTable: appending to a table the engine does not know
// fails cleanly.
func TestAppendUnknownTable(t *testing.T) {
	d := newTestSystem(t, nil)
	if _, err := d.Append("nope", appendRows(7, 1)); err == nil {
		t.Fatal("append to unknown table succeeded")
	}
}
