package core

import (
	"math/rand"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// q30OnDate is the same join/aggregate as q30 but selecting on a second
// ordered attribute (ss_date), exercising the paper's "multiple
// partitions of a view ... on different attributes" (Definition 3).
func q30OnDate(lo, hi int64) query.Node {
	return &query.Aggregate{
		Child: &query.Select{
			Child: &query.Project{
				Child: &query.Join{
					Left:  query.NewScan("sales2", sales2Schema()),
					Right: query.NewScan("item", itemSchema()),
					LCol:  "ss_item_sk",
					RCol:  "i_item_sk",
				},
				Cols: []string{"ss_item_sk", "ss_date", "ss_qty", "i_category"},
			},
			Ranges: []query.RangePred{{Col: "ss_date", Iv: interval.New(lo, hi)}},
		},
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_qty", As: "total"}},
	}
}

func q30OnItem2(lo, hi int64) query.Node {
	return &query.Aggregate{
		Child: &query.Select{
			Child: &query.Project{
				Child: &query.Join{
					Left:  query.NewScan("sales2", sales2Schema()),
					Right: query.NewScan("item", itemSchema()),
					LCol:  "ss_item_sk",
					RCol:  "i_item_sk",
				},
				Cols: []string{"ss_item_sk", "ss_date", "ss_qty", "i_category"},
			},
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(lo, hi)}},
		},
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_qty", As: "total"}},
	}
}

func sales2Schema() relation.Schema {
	return relation.Schema{
		Name: "sales2",
		Cols: []relation.Column{
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: testDomLo, Hi: testDomHi, Width: 1 << 18},
			{Name: "ss_date", Type: relation.Int, Ordered: true, Lo: 0, Hi: 3649, Width: 1 << 18},
			{Name: "ss_qty", Type: relation.Int, Width: 1 << 18},
			{Name: "ss_pad", Type: relation.String, Width: 3 << 19},
		},
	}
}

// newTestSystem2 is newTestSystem plus the two-key sales2 fact table.
func newTestSystem2(t *testing.T, mutate func(*Config)) *DeepSea {
	t.Helper()
	d := newTestSystem(t, mutate)
	rng := rand.New(rand.NewSource(13))
	sales2 := relation.NewTable(sales2Schema())
	for i := 0; i < 20000; i++ {
		sales2.Append(relation.Row{
			relation.IntVal(rng.Int63n(testDomHi + 1)),
			relation.IntVal(rng.Int63n(3650)),
			relation.IntVal(rng.Int63n(9) + 1),
			relation.StringVal(""),
		})
	}
	d.AddBaseTable(sales2)
	return d
}

func TestMultiAttributePartitions(t *testing.T) {
	vanilla := newTestSystem2(t, func(c *Config) { c.Materialize = false })
	d := newTestSystem2(t, nil)

	type q struct {
		onDate bool
		lo, hi int64
	}
	workload := []q{
		{false, 1000, 1999}, {false, 1100, 1899}, // item_sk regime
		{true, 100, 299}, {true, 150, 349}, // date regime
		{false, 1200, 1700}, {true, 120, 310},
	}
	build := func(w q) query.Node {
		if w.onDate {
			return q30OnDate(w.lo, w.hi)
		}
		return q30OnItem2(w.lo, w.hi)
	}
	for i, w := range workload {
		want := run(t, vanilla, build(w)).Result.Fingerprint()
		rep := run(t, d, build(w))
		if rep.Result.Fingerprint() != want {
			t.Fatalf("query %d wrong result", i)
		}
	}

	// The join view must now hold partitions on BOTH attributes.
	attrs := make(map[string]bool)
	for _, pv := range d.Pool.Views() {
		for attr, part := range pv.Parts {
			if part.NumFragments() > 0 {
				attrs[attr] = true
			}
		}
	}
	if !attrs["ss_item_sk"] || !attrs["ss_date"] {
		t.Errorf("partitions on %v, want both ss_item_sk and ss_date", attrs)
	}

	// Repeats in each regime must be answered from fragments of the
	// matching partition.
	for _, w := range []q{{false, 1150, 1800}, {true, 160, 300}} {
		rep := run(t, d, build(w))
		if !rep.Rewritten || rep.FragmentsRead == 0 {
			t.Errorf("regime onDate=%v not served from fragments (rewritten=%v frags=%d)",
				w.onDate, rep.Rewritten, rep.FragmentsRead)
		}
	}
}
