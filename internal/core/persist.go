package core

import (
	"encoding/json"
	"fmt"

	"deepsea/internal/datastore"
	"deepsea/internal/interval"
	"deepsea/internal/lockcheck"
	"deepsea/internal/matching"
	"deepsea/internal/partition"
	"deepsea/internal/relation"
	"deepsea/internal/stats"
)

// This file is the manager side of the persistence boundary: building
// snapshots of everything DeepSea learned online, journaling the
// statistics writes the components cannot see (measured sizes and
// costs are plain field assignments, not method calls), and recovery —
// snapshot load plus journal tail replay through the very same mutation
// APIs the live system uses, so a recovered instance is byte-identical
// to the crashed one up to the journal's last durable record.

// coreSnapshot is the JSON payload handed to the datastore: the full
// durable state of one instance. Base tables are absent by design — they
// are workload input the host re-adds on boot, not learned state.
type coreSnapshot struct {
	// Clock is the simulated time; restoring it keeps decay weights
	// monotone across the restart.
	Clock float64 `json:"clock"`
	// Files is the simulated file system's contents — every materialized
	// view file and fragment, with rows when running in exec mode.
	Files []fileSnap `json:"files,omitempty"`
	// Views is the pool manifest; Gens the cache-generation counters
	// (kept for all ids, including views evicted before the snapshot —
	// a re-created view must not resurrect stale cached results).
	Views []poolViewSnap    `json:"views,omitempty"`
	Gens  map[string]uint64 `json:"gens,omitempty"`
	// Stats is the full statistics registry (Φ bookkeeping).
	Stats *stats.RegistrySnap `json:"stats,omitempty"`
	// Entries is the signature index — without it a recovered pool holds
	// views no query could ever match.
	Entries []*matching.Entry `json:"entries,omitempty"`
	// Appends is the accumulated ingest suffix of each base table (base
	// originals are workload input the host re-adds; the appends are
	// learned state only this snapshot holds). Ingest is the per-view
	// refresh metadata — tables read, consistency marks, staleness.
	Appends []appendSnap `json:"appends,omitempty"`
	Ingest  []ingestSnap `json:"ingest,omitempty"`
}

type fileSnap struct {
	Path string          `json:"path"`
	Size int64           `json:"size"`
	Rows *relation.Table `json:"rows,omitempty"`
}

type poolViewSnap struct {
	ID     string          `json:"id"`
	Schema relation.Schema `json:"schema"`
	Path   string          `json:"path,omitempty"`
	Size   int64           `json:"size,omitempty"`
	Parts  []poolPartSnap  `json:"parts,omitempty"`
}

type poolPartSnap struct {
	Attr        string               `json:"attr"`
	Dom         interval.Interval    `json:"dom"`
	Overlapping bool                 `json:"overlapping,omitempty"`
	Frags       []partition.Fragment `json:"frags,omitempty"`
}

// RecoveryInfo reports what recovery did at construction time, for the
// health surface.
type RecoveryInfo struct {
	// Ran reports that the datastore held previous state and recovery
	// processed it. FromSnapshot reports a snapshot was loaded (as
	// opposed to a journal-only recovery).
	Ran          bool
	FromSnapshot bool
	// Replayed counts journal tail records applied; Skipped counts
	// records that could not be applied (and were dropped).
	Replayed int
	Skipped  int
	// Err is the fatal-recovery error, if any. A fatal error resets the
	// instance to a cold start and overwrites the stored state with a
	// cold snapshot, so the corrupt history cannot replay again.
	Err string
}

// appendRecord forwards one mutation record to the datastore. Append
// errors degrade durability, never correctness: the store counts them
// and they surface via Health. While a background drain cycle has a
// journal group open, records buffer into it and reach the store as
// one AppendGroup call when the cycle commits (see applyMaintBatch).
func (d *DeepSea) appendRecord(rec datastore.Record) {
	if d.store == nil {
		return
	}
	d.groupMu.Lock()
	if d.grouping {
		r := rec
		d.groupBuf = append(d.groupBuf, &r)
		d.groupMu.Unlock()
		return
	}
	d.groupMu.Unlock()
	_ = d.store.Append(&rec)
}

// journalVStat journals a view statistic's measured size/cost fields —
// the one class of statistics write that is a plain field assignment at
// the call sites rather than a registry mutation, so the registry's own
// journal hooks cannot see it.
func (d *DeepSea) journalVStat(vs *stats.ViewStat) {
	if d.store == nil {
		return
	}
	d.appendRecord(datastore.Record{Op: "vstat", View: vs.ID, Size: vs.Size, Cost: vs.Cost, Measured: vs.Measured})
}

// journalFStat is journalVStat for a fragment statistic.
func (d *DeepSea) journalFStat(viewID, attr string, fs *stats.FragStat) {
	if d.store == nil {
		return
	}
	d.appendRecord(datastore.Record{Op: "fstat", View: viewID, Attr: attr, Iv: fs.Iv, Size: fs.Size, Measured: fs.Measured})
}

// Datastore returns the attached store (nil when the instance runs
// without persistence).
func (d *DeepSea) Datastore() datastore.Store { return d.store }

// Recovery returns what recovery did when this instance was built.
func (d *DeepSea) Recovery() RecoveryInfo { return d.recovered }

// Snapshot persists the full durable state to the attached datastore and
// truncates the journal. It quiesces the instance exactly like a
// planning pass (planning lock + every view stripe shared), so no
// mutation — pool, statistics, engine files, clock — is in flight while
// the state is captured, and no journal record can slip between the
// capture and the snapshot's covering sequence number. A nil datastore
// makes it a no-op.
func (d *DeepSea) Snapshot() error {
	if d.store == nil {
		return nil
	}
	lockcheck.Acquire(lockcheck.RankPlan, 0, "planMu")
	d.planMu.Lock()
	d.views.rlockAll()
	defer func() {
		d.views.runlockAll()
		d.planMu.Unlock()
		lockcheck.Release(lockcheck.RankPlan, 0, "planMu")
	}()
	data, err := json.Marshal(d.buildSnapshot())
	if err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return d.store.WriteSnapshot(data)
}

// buildSnapshot captures the durable state. Caller holds the planning
// lock and every view stripe (shared), so the walk is consistent.
func (d *DeepSea) buildSnapshot() *coreSnapshot {
	snap := &coreSnapshot{
		Clock:   d.Eng.Now(),
		Gens:    d.Pool.Generations(),
		Stats:   d.Stats.Snapshot(),
		Entries: d.Tree.Entries(),
	}
	for _, f := range d.Eng.FS().List() {
		snap.Files = append(snap.Files, fileSnap{
			Path: f.Path, Size: f.Size, Rows: d.Eng.Materialized(f.Path),
		})
	}
	for _, v := range d.Pool.Views() {
		vs := poolViewSnap{ID: v.ID, Schema: v.Schema, Path: v.Path, Size: v.Size}
		for _, attr := range v.PartAttrs() {
			part := v.Parts[attr]
			vs.Parts = append(vs.Parts, poolPartSnap{
				Attr: attr, Dom: part.Dom, Overlapping: part.Overlapping,
				Frags: part.Fragments(),
			})
		}
		snap.Views = append(snap.Views, vs)
	}
	snap.Appends, snap.Ingest = d.ingestSnapshot()
	return snap
}

// recoverFromStore loads the snapshot and journal tail and replays them
// into the freshly built (empty) components. Per-record replay failures
// are skipped and counted; a structural failure (unreadable store,
// undecodable snapshot, a pool that fails its consistency walk) is
// returned as fatal and the caller discards the half-restored instance.
// Journals must not be attached yet: replay goes through the same
// mutation APIs as live traffic and would otherwise journal its echoes.
func (d *DeepSea) recoverFromStore() error {
	data, tail, err := d.store.Load()
	if err != nil {
		return fmt.Errorf("core: load datastore: %w", err)
	}
	if data == nil && len(tail) == 0 {
		return nil // cold start
	}
	d.recovered.Ran = true
	if data != nil {
		var snap coreSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("core: decode snapshot: %w", err)
		}
		d.applySnapshot(&snap)
		d.recovered.FromSnapshot = true
	}
	for i := range tail {
		if err := d.applyRecord(&tail[i]); err != nil {
			d.recovered.Skipped++
		} else {
			d.recovered.Replayed++
		}
	}
	// The recovered pool must pass the same consistency walk the live
	// system is held to: the incremental size counter replayed through
	// the mutation API has to agree with a full walk of the contents.
	if err := d.Pool.VerifySize(); err != nil {
		return fmt.Errorf("core: recovered pool failed consistency walk: %w", err)
	}
	return nil
}

// applySnapshot rebuilds the components from a snapshot, in dependency
// order: files first (fragment adds do not check storage, but keeping
// storage ahead of the manifest preserves the live system's invariant
// that the pool never names a missing file), then the pool manifest
// through its mutation API, then the generation counters (the rebuild's
// own bumps are always covered by the snapshot's recorded values), then
// statistics.
func (d *DeepSea) applySnapshot(snap *coreSnapshot) {
	for _, f := range snap.Files {
		d.Eng.RestoreFile(f.Path, f.Size, f.Rows)
	}
	d.Eng.SetClock(snap.Clock)
	for _, v := range snap.Views {
		d.Pool.Ensure(v.ID, v.Schema)
		if v.Path != "" {
			d.Pool.SetViewFile(v.ID, v.Path, v.Size)
		}
		for _, pt := range v.Parts {
			d.Pool.EnsurePartition(v.ID, pt.Attr, pt.Dom, pt.Overlapping)
			for _, fr := range pt.Frags {
				d.Pool.AddFragment(v.ID, pt.Attr, fr)
			}
		}
	}
	d.Pool.RestoreGenerations(snap.Gens)
	d.Stats.Restore(snap.Stats)
	for _, e := range snap.Entries {
		if e == nil || e.Sig == nil {
			continue
		}
		e.Sig.SetSchema(e.Schema)
		d.Tree.Add(e)
	}
	for _, a := range snap.Appends {
		d.bufferRecoveredAppend(a.Table, a.Rows)
	}
	for _, m := range snap.Ingest {
		d.restoreIngestMeta(m.View, m.Tables, m.Marks, m.Stale)
	}
}

// applyRecord replays one journal record through the live mutation
// APIs. The pool treats some impossible sequences as panics (mutating
// an unknown view); replay converts those into per-record errors so one
// bad record costs itself, not the boot.
func (d *DeepSea) applyRecord(rec *datastore.Record) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: replay %s: %v", rec.Op, r)
		}
	}()
	switch rec.Op {
	case "ensure_view":
		var sch relation.Schema
		if rec.Schema != nil {
			sch = *rec.Schema
		}
		d.Pool.Ensure(rec.View, sch)
	case "remove_view":
		d.Pool.Remove(rec.View)
	case "set_view_file":
		d.Pool.SetViewFile(rec.View, rec.Path, rec.Size)
	case "drop_view_file":
		d.Pool.DropViewFile(rec.View)
	case "ensure_part":
		d.Pool.EnsurePartition(rec.View, rec.Attr, rec.Dom, rec.Overlapping)
	case "add_frag":
		d.Pool.AddFragment(rec.View, rec.Attr, partition.Fragment{Iv: rec.Iv, Path: rec.Path, Size: rec.Size})
	case "remove_frag":
		d.Pool.RemoveFragment(rec.View, rec.Attr, rec.Iv)
	case "put_file":
		d.Eng.RestoreFile(rec.Path, rec.Size, rec.Rows)
	case "del_file":
		d.Eng.DeleteMaterialized(rec.Path)
	case "append_file":
		// Rows carries the appended suffix; combine with whatever the file
		// held when the record was written (snapshot state or an earlier
		// put_file/append_file replay) and restore at the new total size.
		var combined *relation.Table
		if rec.Rows != nil {
			if prev := d.Eng.Materialized(rec.Path); prev != nil {
				combined = &relation.Table{Schema: prev.Schema}
				combined.Rows = append(append([]relation.Row(nil), prev.Rows...), rec.Rows.Rows...)
			} else {
				combined = rec.Rows
			}
		}
		d.Eng.RestoreFile(rec.Path, rec.Size, combined)
	case "inval_view":
		d.Pool.Invalidate(rec.View)
	case "append_rows":
		// Base-table appends replay after the host re-adds the originals:
		// buffer until ApplyRecoveredAppends.
		if rec.Rows == nil {
			return fmt.Errorf("core: replay append_rows: missing rows")
		}
		d.bufferRecoveredAppend(rec.Rows.Schema.Name, rec.Rows)
	case "ingest_marks":
		d.restoreIngestMeta(rec.View, rec.Tables, rec.Marks, false)
	case "ingest_stale":
		d.markIngestStale(rec.View)
	case "clock":
		d.Eng.SetClock(rec.T)
	case "track_view":
		if rec.Sig == nil || rec.Schema == nil {
			return fmt.Errorf("core: replay track_view %s: missing signature", rec.View)
		}
		rec.Sig.SetSchema(*rec.Schema)
		d.Tree.Add(&matching.Entry{ID: rec.View, Sig: rec.Sig, Schema: *rec.Schema})
	case "part":
		d.Stats.Partition(rec.View, rec.Attr, rec.Dom)
	case "use":
		d.Stats.View(rec.View).RecordUse(rec.T, rec.Saving)
	case "vstat":
		vs := d.Stats.View(rec.View)
		vs.Size, vs.Cost, vs.Measured = rec.Size, rec.Cost, rec.Measured
	case "hit", "refine", "frag_drop", "fstat":
		p, ok := d.Stats.LookupPartition(rec.View, rec.Attr)
		if !ok {
			return fmt.Errorf("core: replay %s: unknown partition %s.%s", rec.Op, rec.View, rec.Attr)
		}
		switch rec.Op {
		case "hit":
			p.Frag(rec.Iv).RecordHit(rec.T)
		case "refine":
			p.RefineCand(rec.Iv)
		case "frag_drop":
			p.Drop(rec.Iv)
		case "fstat":
			f := p.Frag(rec.Iv)
			f.Size, f.Measured = rec.Size, rec.Measured
		}
	default:
		return fmt.Errorf("core: replay unknown op %q (seq %d)", rec.Op, rec.Seq)
	}
	return nil
}
