package core

import (
	"math/rand"
	"testing"

	"deepsea/internal/interval"
)

// TestEvictionThenRemainderCorrectness force-evicts fragments mid-workload
// and checks every later query still returns exactly the vanilla result
// (remainder plans fill the holes).
func TestEvictionThenRemainderCorrectness(t *testing.T) {
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	d := newTestSystem(t, nil)

	type qr struct{ lo, hi int64 }
	queries := []qr{{1000, 2999}, {1200, 2500}, {1500, 3500}, {800, 1800}}
	var want []string
	for _, q := range queries {
		want = append(want, run(t, vanilla, q30(q.lo, q.hi)).Result.Fingerprint())
	}

	if got := run(t, d, q30(queries[0].lo, queries[0].hi)).Result.Fingerprint(); got != want[0] {
		t.Fatal("query 0 wrong before any eviction")
	}

	// Force-evict every other fragment of every partition.
	evicted := 0
	for _, pv := range d.Pool.Views() {
		for attr, part := range pv.Parts {
			frags := append([]interval.Interval(nil), part.Intervals()...)
			for i, iv := range frags {
				if i%2 == 0 {
					if f, ok := part.Lookup(iv); ok {
						d.Eng.DeleteMaterialized(f.Path)
						d.Pool.RemoveFragment(pv.ID, attr, iv)
						evicted++
					}
				}
			}
		}
	}
	if evicted == 0 {
		t.Fatal("nothing to evict; test setup broken")
	}

	for i := 1; i < len(queries); i++ {
		rep := run(t, d, q30(queries[i].lo, queries[i].hi))
		if rep.Result.Fingerprint() != want[i] {
			t.Fatalf("query %d wrong after forced eviction", i)
		}
	}
	// FS and pool must agree after the churn.
	if d.Eng.FS().TotalSize() != d.Pool.TotalSize() {
		t.Errorf("FS size %d != pool size %d", d.Eng.FS().TotalSize(), d.Pool.TotalSize())
	}
}

// TestGapRecoveryRefillsHole: after a hole is evicted, repeated queries
// over it eventually re-materialize the missing range from the remainder
// execution (the gap-recovery path), without ever re-running the view's
// defining query as a standalone job.
func TestGapRecoveryRefillsHole(t *testing.T) {
	d := newTestSystem(t, nil)
	run(t, d, q30(1000, 2999))

	// Evict exactly the fragments covering [1000,2999].
	for _, pv := range d.Pool.Views() {
		for attr, part := range pv.Parts {
			for _, iv := range append([]interval.Interval(nil), part.Intervals()...) {
				if iv.Overlaps(interval.New(1000, 2999)) && iv.Len() < 5000 {
					if f, ok := part.Lookup(iv); ok {
						d.Eng.DeleteMaterialized(f.Path)
						d.Pool.RemoveFragment(pv.ID, attr, iv)
					}
				}
			}
		}
	}

	covered := func() bool {
		for _, pv := range d.Pool.Views() {
			for _, part := range pv.Parts {
				if _, _, gaps := part.Cover(interval.New(1000, 2990)); len(gaps) == 0 {
					return true
				}
			}
		}
		return false
	}
	if covered() {
		t.Fatal("eviction did not open a hole; test setup broken")
	}
	for i := 0; i < 10 && !covered(); i++ {
		run(t, d, q30(1000, 2999-int64(i))) // jitter avoids the agg-view shortcut
	}
	if !covered() {
		t.Error("hole never refilled (gap recovery / partial re-materialization)")
	}
}

// TestLongRandomWorkloadInvariants runs a longer randomized workload
// under a tight pool and checks structural invariants after every query.
func TestLongRandomWorkloadInvariants(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.Smax = 3 << 30 })
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 40; i++ {
		width := rng.Int63n(2000) + 100
		lo := rng.Int63n(testDomHi - width)
		run(t, d, q30(lo, lo+width))

		for _, pv := range d.Pool.Views() {
			for _, part := range pv.Parts {
				if err := part.Validate(); err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				for _, f := range part.Fragments() {
					if !d.Eng.FS().Exists(f.Path) {
						t.Fatalf("query %d: pool references missing file %s", i, f.Path)
					}
				}
			}
		}
		if fs, pool := d.Eng.FS().TotalSize(), d.Pool.TotalSize(); fs != pool {
			t.Fatalf("query %d: FS %d != pool %d", i, fs, pool)
		}
	}
}
