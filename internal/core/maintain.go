package core

import (
	"context"
	"fmt"
	"sort"

	"deepsea/internal/engine"
	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/maintain"
	"deepsea/internal/matching"
	"deepsea/internal/partition"
	"deepsea/internal/pool"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// This file is the background maintenance dataflow (Config.MaintWorkers
// > 0): queries enqueue Φ-ranked per-unit maintenance tasks after
// execution and return immediately — they never pay for
// materialization, splits, merges or eviction. A bounded worker pool
// (internal/maintain) drains the queue in batches; one drain cycle
// commits all its pool mutations under a single acquisition of the
// union of the batch's view stripes, and journals its records as one
// group append.
//
// Correctness rests on the same property the batch planner already
// leans on: every maintenance mutation re-validates against the live
// pool (pins, cover checks, idempotent writes), so a task applied
// against a pool newer than the one it was planned on either does the
// same work or skips as stale. Results are unaffected either way —
// rewrites are exact, so query output is byte-identical whether
// maintenance ran inline, later, or not at all.

// maintBatchMax bounds how many tasks one drain cycle commits under a
// single stripe acquisition.
const maintBatchMax = 64

// matViewTask materializes a selected view (whole or its admitted
// initial fragments). captured carries the rows computed as a
// by-product of the proposing query's execution (nil in estimate-only
// mode, or when the rows must be reconstructed from an existing
// partition at apply time).
type matViewTask struct {
	sv       selectedView
	captured *relation.Table
	// baseCounts is the proposing query's planning-time base-table row
	// counts — the ingest consistency point the captured rows register
	// under (see registerIngestView).
	baseCounts map[string]int64
}

// matFragTask materializes one selected fragment candidate: a gap
// recovery (fromGap, rows captured from the remainder execution) or a
// refinement split over existing fragments.
type matFragTask struct {
	fc         fragCandidate
	captured   *relation.Table
	baseCounts map[string]int64
}

// mergeTask merges co-accessed adjacent fragments of the rewriting the
// proposing query executed (Section 11 extension).
type mergeTask struct {
	rw *matching.Rewriting
}

// measuredSize carries a step-9 size measurement: the candidate's
// captured output size, applied to its ViewStat under the view stripe.
type measuredSize struct {
	id    string
	bytes int64
}

// sweepTask applies the low-priority bookkeeping of one query's
// maintenance round: precise size measurements for captured candidates
// and the eviction of selection-rejected pool items.
type sweepTask struct {
	measure []measuredSize
	evict   []pool.Candidate
}

// rematTask speculatively re-materializes a quarantined file: the rows
// were intact in the simulated store when the read fault quarantined
// the path, so the pool can be healed in the background instead of
// waiting for a future query to re-derive the range.
type rematTask struct {
	viewID string
	path   string
	schema relation.Schema
	// isView marks a whole-view file; otherwise attr/iv/dom/overlapping
	// describe the lost fragment.
	isView      bool
	attr        string
	iv          interval.Interval
	dom         interval.Interval
	overlapping bool
	rows        *relation.Table // nil in estimate-only mode
	size        int64
}

// maintTaskViews lists the views a task's apply may touch — the drain
// cycle locks the union of these exclusively.
func maintTaskViews(t *maintain.Task) []string {
	switch p := t.Payload.(type) {
	case *matViewTask:
		return []string{p.sv.vc.id}
	case *matFragTask:
		return []string{p.fc.viewID}
	case *mergeTask:
		return []string{p.rw.ViewID}
	case *sweepTask:
		ids := make([]string, 0, len(p.measure)+len(p.evict))
		for _, m := range p.measure {
			ids = append(ids, m.id)
		}
		for _, c := range p.evict {
			ids = append(ids, c.ViewID)
		}
		return ids
	case *rematTask:
		return []string{p.viewID}
	case *refreshTask:
		return []string{p.viewID}
	}
	return nil
}

// enqueueMaintenance converts one planned query's maintenance decisions
// into per-unit background tasks, deduplicated by view id and pool
// generation: the same candidate proposed twice against an unchanged
// pool queues once; after the pool moved, it may queue again (and the
// apply-side re-validation makes the second application a no-op).
// Returns how many tasks were accepted.
func (d *DeepSea) enqueueMaintenance(pq *plannedQuery, captured map[query.Node]*relation.Table) int {
	n := 0
	push := func(t *maintain.Task) {
		if d.maint.Push(t) {
			n++
		}
	}
	gen := d.Pool.GenFn()
	for _, sv := range pq.selViews {
		if !d.backoff.allowed(sv.vc.id) {
			continue
		}
		push(&maintain.Task{
			Key:      fmt.Sprintf("mat:%s:%s@%d", sv.vc.id, sv.attr, gen(sv.vc.id)),
			Kind:     maintain.KindMaterialize,
			Priority: sv.value,
			Payload:  &matViewTask{sv: sv, captured: captured[sv.vc.node], baseCounts: pq.baseCounts},
		})
	}
	for _, fc := range pq.selFrags {
		if !d.backoff.allowed(fc.viewID) {
			continue
		}
		kind, prefix := maintain.KindSplit, "split"
		var rows *relation.Table
		if fc.fromGap {
			// Gap recoveries are materializations of fresh ranges, not
			// rewrites of existing fragments: they carry their captured
			// rows and rank in the materialize band.
			kind, prefix = maintain.KindMaterialize, "frag"
			rows = captured[fc.gapNode]
		}
		push(&maintain.Task{
			Key:      fmt.Sprintf("%s:%s:%s:%s@%d", prefix, fc.viewID, fc.attr, fc.iv, gen(fc.viewID)),
			Kind:     kind,
			Priority: fc.value,
			Payload:  &matFragTask{fc: fc, captured: rows, baseCounts: pq.baseCounts},
		})
	}
	if d.Cfg.MergeFragments && pq.bestRW != nil && pq.bestRW.PartAttr != "" {
		push(&maintain.Task{
			Key:     fmt.Sprintf("merge:%s:%s@%d", pq.bestRW.ViewID, pq.bestRW.PartAttr, gen(pq.bestRW.ViewID)),
			Kind:    maintain.KindMerge,
			Payload: &mergeTask{rw: pq.bestRW},
		})
	}
	var sweep sweepTask
	if d.Cfg.ExecuteRows {
		for _, vc := range pq.vcands {
			if tbl := captured[vc.node]; tbl != nil {
				sweep.measure = append(sweep.measure, measuredSize{id: vc.id, bytes: tbl.Bytes()})
			}
		}
	}
	sweep.evict = pq.evict
	if len(sweep.measure) > 0 || len(sweep.evict) > 0 {
		push(&maintain.Task{Kind: maintain.KindSweep, Payload: &sweep})
	}
	return n
}

// enqueueRemat queues a speculative re-materialization of a quarantined
// file. No-op without a background pool (inline mode keeps the
// historical behaviour: the range is re-derived by a future query).
func (d *DeepSea) enqueueRemat(p *rematTask) {
	if d.maint == nil {
		return
	}
	d.maint.Push(&maintain.Task{
		Key:     fmt.Sprintf("remat:%s@%d", p.path, d.Pool.Generation(p.viewID)),
		Kind:    maintain.KindRematerialize,
		Payload: p,
	})
}

// applyMaintBatch is the worker pool's executor: it commits one drain
// cycle. All pool mutations of the batch happen under a single
// acquisition of the union of the batch's view stripes, and every
// journal record the cycle emits is group-appended in one store call.
// maintCommitMu serializes cycles — the journal group buffer is global,
// so concurrent committers would interleave their records.
func (d *DeepSea) applyMaintBatch(batch []*maintain.Task) {
	d.maintCommitMu.Lock()
	defer d.maintCommitMu.Unlock()

	seen := make(map[string]bool)
	var ids []string
	for _, t := range batch {
		for _, id := range maintTaskViews(t) {
			if id == "" || seen[id] {
				continue
			}
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	held := d.views.lockViews(ids)
	if d.OnMaintain != nil {
		d.OnMaintain(ids, true)
	}
	d.beginJournalGroup()
	var matCost engine.Cost
	for _, t := range batch {
		c, err := d.applyMaintTask(t)
		matCost.Add(c)
		t.Err = err
	}
	d.Pool.GCViews(ids...)
	if matCost.Seconds > 0 {
		// Charge the cycle's materialization work to the clock while the
		// stripes are held, exactly where the inline path advances it.
		d.Eng.Advance(matCost.Seconds)
	}
	// Flush the group while the stripes are still held: Snapshot
	// quiesces under planMu + every stripe shared and then truncates the
	// journal, so a record flushed after the release could land after a
	// snapshot that already covers its state and replay twice.
	d.endJournalGroup()
	if d.OnMaintain != nil {
		d.OnMaintain(ids, false)
	}
	d.views.unlockViews(held)
}

// applyMaintTask applies one task under the drain cycle's stripes. A
// stale task — its view or partition left the pool since enqueue — is
// skipped silently; injected faults feed the owning view's backoff and
// mark the task failed without affecting any query.
func (d *DeepSea) applyMaintTask(t *maintain.Task) (engine.Cost, error) {
	switch p := t.Payload.(type) {
	case *matViewTask:
		return d.applyMatView(p)
	case *matFragTask:
		return d.applyMatFrag(p)
	case *mergeTask:
		cost, _, err := d.maybeMergeFragments(p.rw)
		if err != nil {
			if f, ok := faults.AsFault(err); ok {
				d.backoff.noteFailure(p.rw.ViewID, f.Permanent)
			}
			return cost, err
		}
		return cost, nil
	case *sweepTask:
		for _, m := range p.measure {
			vs := d.Stats.View(m.id)
			if !vs.Measured {
				vs.Size = m.bytes
				d.journalVStat(vs)
			}
		}
		for _, item := range p.evict {
			d.evict(item)
		}
		return engine.Cost{}, nil
	case *rematTask:
		return d.applyRemat(p)
	case *refreshTask:
		// The drain cycle already holds the view's stripe (maintTaskViews
		// listed it); a still-stale outcome re-enqueued a retry inside
		// applyRefreshLocked.
		cost, _ := d.applyRefreshLocked(p.viewID)
		return cost, nil
	}
	return engine.Cost{}, fmt.Errorf("core: unknown maintenance payload %T", t.Payload)
}

func (d *DeepSea) applyMatView(p *matViewTask) (engine.Cost, error) {
	id := p.sv.vc.id
	if !d.backoff.allowed(id) {
		return engine.Cost{}, nil
	}
	cost, created, err := d.materializeView(p.sv, p.captured, false, p.baseCounts)
	if err != nil {
		if f, ok := faults.AsFault(err); ok {
			d.backoff.noteFailure(id, f.Permanent)
		}
		return cost, err
	}
	if created {
		d.backoff.noteSuccess(id)
	}
	return cost, nil
}

func (d *DeepSea) applyMatFrag(p *matFragTask) (engine.Cost, error) {
	fc := p.fc
	if !d.backoff.allowed(fc.viewID) {
		return engine.Cost{}, nil
	}
	// Stale guard: unlike the inline path (which materializes views
	// before fragments within one locked section), a background fragment
	// task can outlive its view or partition.
	pv := d.Pool.View(fc.viewID)
	if pv == nil || pv.Parts[fc.attr] == nil {
		return engine.Cost{}, nil
	}
	var captured map[query.Node]*relation.Table
	if fc.fromGap && p.captured != nil {
		captured = map[query.Node]*relation.Table{fc.gapNode: p.captured}
	}
	cost, created, err := d.materializeFrag(fc, captured, p.baseCounts)
	if err != nil {
		if f, ok := faults.AsFault(err); ok {
			d.backoff.noteFailure(fc.viewID, f.Permanent)
		}
		return cost, err
	}
	if len(created) > 0 {
		d.backoff.noteSuccess(fc.viewID)
	}
	return cost, nil
}

// applyRemat re-materializes a quarantined file from the rows captured
// at quarantine time. Transient failures re-enqueue while the view's
// backoff allows; a blacklisted view drops the task.
func (d *DeepSea) applyRemat(p *rematTask) (engine.Cost, error) {
	id := p.viewID
	if !d.backoff.allowed(id) {
		return engine.Cost{}, nil
	}
	// Ingest guard: the quarantined rows predate any append that dropped
	// the view; healing them back would resurrect pre-append content
	// with no refresh metadata. Stale views skip too — the pending
	// refresh (or drop) supersedes the heal.
	if d.ingestDropped(id) || d.staleView(id) {
		return engine.Cost{}, nil
	}
	// Stale guard: skip if the lost range was re-covered meanwhile (a
	// later query re-materialized it, or a retry already applied).
	if pv := d.Pool.View(id); pv != nil {
		if p.isView && pv.Path != "" {
			return engine.Cost{}, nil
		}
		if !p.isView {
			if part := pv.Parts[p.attr]; part != nil {
				if _, _, gaps := part.Cover(p.iv); len(gaps) == 0 {
					return engine.Cost{}, nil
				}
			}
		}
	}
	fail := func(err error) (engine.Cost, error) {
		f, ok := faults.AsFault(err)
		if ok {
			d.backoff.noteFailure(id, f.Permanent)
			if d.backoff.allowed(id) {
				d.enqueueRemat(p)
			}
		}
		return engine.Cost{}, fmt.Errorf("core: rematerialize %s: %w", shortID(id), err)
	}
	// One Materialize-site injection decision, like any materialization.
	if err := d.faults.Check(faults.Materialize, id); err != nil {
		return fail(err)
	}
	var cost engine.Cost
	var err error
	bytes := p.size
	if p.rows != nil {
		cost, err = d.Eng.WriteMaterialized(p.path, p.rows)
		bytes = p.rows.Bytes()
	} else {
		cost, err = d.Eng.WriteMaterializedSize(p.path, p.size)
	}
	if err != nil {
		return fail(err)
	}
	d.Pool.Ensure(id, p.schema)
	if p.isView {
		d.Pool.SetViewFile(id, p.path, bytes)
	} else {
		d.Pool.EnsurePartition(id, p.attr, p.dom, p.overlapping)
		d.Pool.AddFragment(id, p.attr, partition.Fragment{Iv: p.iv, Path: p.path, Size: bytes})
	}
	d.backoff.noteSuccess(id)
	return cost, nil
}

// beginJournalGroup starts buffering journal records instead of
// appending them one by one; endJournalGroup flushes the buffer as one
// AppendGroup call. Concurrent appends from finishing queries (clock
// advances) buffer into the open group too — their durability is
// delayed to the group flush, which is safe: the flush completes before
// the cycle's stripes release, and Snapshot cannot run while they are
// held.
func (d *DeepSea) beginJournalGroup() {
	if d.store == nil {
		return
	}
	d.groupMu.Lock()
	d.grouping = true
	d.groupMu.Unlock()
}

func (d *DeepSea) endJournalGroup() {
	if d.store == nil {
		return
	}
	d.groupMu.Lock()
	buf := d.groupBuf
	d.groupBuf = nil
	d.grouping = false
	d.groupMu.Unlock()
	if len(buf) > 0 {
		_ = d.store.AppendGroup(buf)
	}
}

// DrainMaintenance blocks until every queued background maintenance
// task (including tasks re-enqueued while draining) has been applied.
// No-op in inline mode. Returns ctx.Err() if the context expires first.
func (d *DeepSea) DrainMaintenance(ctx context.Context) error {
	if d.maint == nil {
		return nil
	}
	return d.maint.Drain(ctx)
}

// CloseMaintenance stops the background workers after the queue
// empties. Idempotent; no-op in inline mode. Call before Snapshot on
// shutdown so the checkpoint includes every applied task.
func (d *DeepSea) CloseMaintenance() {
	if d.maint != nil {
		d.maint.Close()
	}
}

// MaintStats returns the background pool's counter snapshot (zero
// value in inline mode).
func (d *DeepSea) MaintStats() maintain.Stats {
	if d.maint == nil {
		return maintain.Stats{}
	}
	return d.maint.Stats()
}

// MaintSaturated reports whether the background queue is at capacity —
// the degraded signal for health surfaces. Always false in inline mode.
func (d *DeepSea) MaintSaturated() bool {
	return d.maint != nil && d.maint.Saturated()
}
