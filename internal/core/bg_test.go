package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"deepsea/internal/faults"
	"deepsea/internal/leakcheck"
)

// poolShape describes the pool's logical contents independent of file
// paths (background workers may number files in a different order than
// inline maintenance): per view, the view-file size and each attribute's
// sorted fragment intervals with sizes.
func poolShape(d *DeepSea) []string {
	var out []string
	for _, pv := range d.Pool.Views() {
		if pv.Path != "" {
			out = append(out, fmt.Sprintf("view %s size=%d", shortID(pv.ID), pv.Size))
		}
		for attr, part := range pv.Parts {
			for _, f := range part.Fragments() {
				out = append(out, fmt.Sprintf("frag %s.%s %s size=%d",
					shortID(pv.ID), attr, f.Iv, f.Size))
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestBackgroundMatchesInlineResultsAndPool is the background mode's
// equivalence proof: over an evolving workload, every result is
// byte-identical to inline maintenance, queries are charged execution
// only, and — with a drain after each query — the pool converges to the
// exact fragment set inline maintenance builds.
func TestBackgroundMatchesInlineResultsAndPool(t *testing.T) {
	leakcheck.Check(t)

	type qr struct{ lo, hi int64 }
	rng := rand.New(rand.NewSource(41))
	var queries []qr
	for i := 0; i < 16; i++ {
		center := int64(2000)
		if i >= 8 {
			center = 7000
		}
		lo := center + rng.Int63n(800) - 400
		queries = append(queries, qr{lo, lo + 500})
	}

	inline := newTestSystem(t, nil)
	var want []string
	for _, q := range queries {
		want = append(want, run(t, inline, q30(q.lo, q.hi)).Result.Fingerprint())
	}

	bg := newTestSystem(t, func(c *Config) { c.MaintWorkers = 2 })
	defer bg.CloseMaintenance()
	for i, q := range queries {
		rep := run(t, bg, q30(q.lo, q.hi))
		if got := rep.Result.Fingerprint(); got != want[i] {
			t.Fatalf("query %d (%d-%d): background result differs from inline", i, q.lo, q.hi)
		}
		if !rep.DeferredMaintenance {
			t.Fatalf("query %d not marked deferred", i)
		}
		if rep.TotalSeconds != rep.ExecCost.Seconds {
			t.Fatalf("query %d charged %.1fs, exec alone is %.1fs — maintenance leaked onto the query",
				i, rep.TotalSeconds, rep.ExecCost.Seconds)
		}
		// Drain between queries so each plans against the same pool state
		// inline maintenance would have left — the convergence contract.
		if err := bg.DrainMaintenance(context.Background()); err != nil {
			t.Fatalf("drain after query %d: %v", i, err)
		}
		assertPoolInvariants(t, bg, "after drain")
	}

	wantShape, gotShape := poolShape(inline), poolShape(bg)
	if len(wantShape) != len(gotShape) {
		t.Fatalf("pool diverged: inline %d entries, background %d\ninline: %v\nbackground: %v",
			len(wantShape), len(gotShape), wantShape, gotShape)
	}
	for i := range wantShape {
		if wantShape[i] != gotShape[i] {
			t.Errorf("pool entry %d: inline %q vs background %q", i, wantShape[i], gotShape[i])
		}
	}

	ms := bg.MaintStats()
	if ms.Completed == 0 {
		t.Fatal("background run completed no maintenance tasks; the test proved nothing")
	}
	if ms.Enqueued != ms.Completed+ms.Failed+ms.Deduped+ms.Dropped {
		t.Errorf("task accounting leak after drain: %+v", ms)
	}
}

// TestBackgroundRematerializesQuarantined: with every stored read
// failing, a rewriting query quarantines the files it touches and still
// answers from base tables; the quarantine enqueues speculative
// re-materialization tasks that restore the lost files from the
// captured rows once the queue drains.
func TestBackgroundRematerializesQuarantined(t *testing.T) {
	leakcheck.Check(t)
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	want := run(t, vanilla, q30(1000, 2999)).Result.Fingerprint()

	d := newTestSystem(t, func(c *Config) {
		c.MaintWorkers = 2
		c.FaultRetries = 64
		c.Faults = &faults.Config{Seed: 1, StorageRead: 1}
	})
	defer d.CloseMaintenance()

	// Query 1: empty pool, no stored reads. Drain so its materializations
	// land before query 2 tries to use them.
	rep1 := run(t, d, q30(1000, 2999))
	if rep1.Result.Fingerprint() != want {
		t.Fatal("query 1 wrong")
	}
	if err := d.DrainMaintenance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Pool.TotalSize() == 0 {
		t.Fatal("drain left the pool empty; test setup broken")
	}

	// Query 2: every stored read faults; the manager quarantines its way
	// back to a base plan but keeps the captured rows for restoration.
	rep2, err := d.ProcessQueryContext(context.Background(), q30(1000, 2999))
	if err != nil {
		t.Fatalf("query 2 did not degrade: %v", err)
	}
	if rep2.Result.Fingerprint() != want {
		t.Fatal("degraded answer differs from the base-table answer")
	}
	if len(rep2.Quarantined) == 0 {
		t.Fatal("no quarantines; test setup broken")
	}

	if err := d.DrainMaintenance(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertPoolInvariants(t, d, "after rematerialization drain")
	restored := 0
	for _, p := range rep2.Quarantined {
		if d.Eng.FS().Exists(p) && poolReferences(d, p) {
			restored++
		}
	}
	if restored == 0 {
		t.Fatalf("none of %d quarantined paths rematerialized", len(rep2.Quarantined))
	}
	var rematDone uint64
	for _, ks := range d.MaintStats().Kinds {
		if ks.Kind == "rematerialize" {
			rematDone = ks.Completed
		}
	}
	if rematDone == 0 {
		t.Error("no rematerialize task completed")
	}
}

// TestBackgroundQueueBoundsAndClose: a capacity-1 queue under a real
// workload must drop candidates rather than block queries, results stay
// correct, the accounting identity holds, and CloseMaintenance is
// idempotent and leak-free.
func TestBackgroundQueueBoundsAndClose(t *testing.T) {
	leakcheck.Check(t)
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	d := newTestSystem(t, func(c *Config) {
		c.MaintWorkers = 1
		c.MaintQueue = 1
	})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10; i++ {
		lo := rng.Int63n(8000)
		q := q30(lo, lo+999)
		want := run(t, vanilla, q30(lo, lo+999)).Result.Fingerprint()
		if got := run(t, d, q).Result.Fingerprint(); got != want {
			t.Fatalf("query %d wrong under a saturated queue", i)
		}
	}
	d.CloseMaintenance()
	d.CloseMaintenance() // idempotent
	ms := d.MaintStats()
	if ms.Enqueued != ms.Completed+ms.Failed+ms.Deduped+ms.Dropped {
		t.Errorf("task accounting leak after close: %+v", ms)
	}
	if ms.Dropped+ms.Deduped == 0 {
		t.Log("capacity-1 queue never dropped or deduped; workload drained faster than it enqueued")
	}
	// Queries after close still answer (maintenance is simply off).
	if got := run(t, d, q30(100, 599)).Result; got == nil {
		t.Fatal("query after CloseMaintenance returned no rows")
	}
}
