package core

import (
	"context"
	"math/rand"
	"testing"

	"deepsea/internal/faults"
	"deepsea/internal/leakcheck"
)

// assertPoolInvariants checks the structural invariants that must
// survive any amount of fault churn: partitions valid, every pool path
// present in the FS, FS and pool agreeing on total size.
func assertPoolInvariants(t *testing.T, d *DeepSea, when string) {
	t.Helper()
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			if err := part.Validate(); err != nil {
				t.Fatalf("%s: %v", when, err)
			}
			for _, f := range part.Fragments() {
				if !d.Eng.FS().Exists(f.Path) {
					t.Fatalf("%s: pool references missing file %s", when, f.Path)
				}
			}
		}
	}
	if fs, pool := d.Eng.FS().TotalSize(), d.Pool.TotalSize(); fs != pool {
		t.Fatalf("%s: FS %d != pool %d", when, fs, pool)
	}
}

// poolReferences reports whether any pool view or fragment points at
// the given storage path.
func poolReferences(d *DeepSea, path string) bool {
	for _, pv := range d.Pool.Views() {
		if pv.Path == path {
			return true
		}
		for _, part := range pv.Parts {
			for _, f := range part.Fragments() {
				if f.Path == path {
					return true
				}
			}
		}
	}
	return false
}

// assertQuarantineGone checks that quarantined paths are truly gone:
// not in the FS, and not referenced by any pool view or fragment. Only
// valid when re-materialization cannot recreate the path.
func assertQuarantineGone(t *testing.T, d *DeepSea, paths []string) {
	t.Helper()
	for _, p := range paths {
		if d.Eng.FS().Exists(p) {
			t.Fatalf("quarantined path %s still in FS", p)
		}
		if poolReferences(d, p) {
			t.Fatalf("quarantined path %s still referenced by the pool", p)
		}
	}
}

// assertQuarantineConsistent is the steady-state form: a quarantined
// path may legitimately reappear when a later maintenance phase
// re-materializes the same view from base data (self-healing), but it
// must then be a pool-referenced fresh copy — never an orphaned file,
// and never a pool reference to a missing file.
func assertQuarantineConsistent(t *testing.T, d *DeepSea, paths []string) {
	t.Helper()
	for _, p := range paths {
		inFS, inPool := d.Eng.FS().Exists(p), poolReferences(d, p)
		if inFS != inPool {
			t.Fatalf("quarantined path %s inconsistent: inFS=%v inPool=%v", p, inFS, inPool)
		}
	}
}

// TestChaosStress is the headline failure-model proof: a seeded mix of
// storage-read, storage-write, worker and materialization faults over a
// randomized workload. Every query that succeeds must be byte-identical
// (by order-independent fingerprint) to the fault-free run, failed
// materializations never fail queries, quarantined files vanish from
// pool and FS, structural invariants hold after every query, and no
// goroutines leak.
func TestChaosStress(t *testing.T) {
	leakcheck.Check(t)

	type qr struct{ lo, hi int64 }
	rng := rand.New(rand.NewSource(99))
	var queries []qr
	for i := 0; i < 30; i++ {
		width := rng.Int63n(2000) + 100
		lo := rng.Int63n(testDomHi - width)
		queries = append(queries, qr{lo, lo + width})
	}

	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = run(t, vanilla, q30(q.lo, q.hi)).Result.Fingerprint()
	}

	d := newTestSystem(t, func(c *Config) {
		// Fixed parallelism: the worker-site check count depends on the
		// join bucket count, which follows Parallelism — pinning it keeps
		// the fault schedule machine-independent.
		c.Parallelism = 4
		c.CacheBytes = 64 << 20
		c.FaultRetries = 8
		c.Faults = &faults.Config{
			Seed:              4242,
			StorageRead:       0.05,
			StorageWrite:      0.05,
			Worker:            0.01,
			Materialize:       0.15,
			PermanentFraction: 0.3,
		}
	})

	succeeded, failed, matFailures := 0, 0, 0
	for i, q := range queries {
		rep, err := d.ProcessQueryContext(context.Background(), q30(q.lo, q.hi))
		if err != nil {
			// Permissible: retries exhausted or a permanent worker fault.
			// The system must still be structurally sound.
			if _, ok := faults.AsFault(err); !ok {
				t.Fatalf("query %d failed with a non-fault error: %v", i, err)
			}
			failed++
			assertPoolInvariants(t, d, "after failed query")
			continue
		}
		succeeded++
		matFailures += len(rep.MatFailed)
		if rep.Result.Fingerprint() != want[i] {
			t.Fatalf("query %d: successful result differs from the fault-free run", i)
		}
		assertQuarantineConsistent(t, d, rep.Quarantined)
		assertPoolInvariants(t, d, "after successful query")
	}

	st := d.Faults().Stats()
	if d.Faults().TotalInjected() == 0 {
		t.Fatal("chaos run injected no faults; the test proved nothing")
	}
	if st[faults.Materialize].Injected > 0 && succeeded == 0 {
		t.Fatal("no query survived; fault rates are too hostile to prove degradation")
	}
	t.Logf("chaos: %d ok / %d failed, %d materialization failures swallowed, injected: %+v",
		succeeded, failed, matFailures, st)
}

// TestFragmentReadFaultQuarantinesAndDegrades forces every stored read
// to fail: the second query (which rewrites to the freshly materialized
// view) must quarantine the unreadable files one by one, re-plan, and
// still return the exact base-table answer.
func TestFragmentReadFaultQuarantinesAndDegrades(t *testing.T) {
	leakcheck.Check(t)
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	want := run(t, vanilla, q30(1000, 2999)).Result.Fingerprint()

	d := newTestSystem(t, func(c *Config) {
		c.FaultRetries = 64
		c.Faults = &faults.Config{Seed: 1, StorageRead: 1}
	})

	// Query 1: empty pool, pure base plan — no stored reads, no faults.
	rep1 := run(t, d, q30(1000, 2999))
	if rep1.Result.Fingerprint() != want {
		t.Fatal("query 1 wrong")
	}
	if len(rep1.MaterializedViews)+len(rep1.MaterializedFrags) == 0 {
		t.Fatal("query 1 materialized nothing; test setup broken")
	}

	// Blacklist every pool view so the successful attempt's maintenance
	// phase cannot re-materialize the quarantined paths — that isolates
	// the removal itself for the strong absence assertion below.
	for _, pv := range d.Pool.Views() {
		d.backoff.noteFailure(pv.ID, true)
	}

	// Query 2: the rewriting reads stored files, every read fails. The
	// manager must quarantine its way back to a base-table plan.
	rep2, err := d.ProcessQueryContext(context.Background(), q30(1000, 2999))
	if err != nil {
		t.Fatalf("query 2 did not degrade: %v", err)
	}
	if rep2.Result.Fingerprint() != want {
		t.Fatal("degraded answer differs from the base-table answer")
	}
	if len(rep2.Quarantined) == 0 || rep2.Retries == 0 {
		t.Fatalf("expected quarantines and retries, got %+v / %d retries", rep2.Quarantined, rep2.Retries)
	}
	assertQuarantineGone(t, d, rep2.Quarantined)
	assertPoolInvariants(t, d, "after degradation")
}

// TestMaterializeFaultsNeverFailQueries: with every materialization
// attempt failing (transiently), queries keep succeeding with correct
// results, nothing lands in the pool, and after matMaxFailures failed
// attempts a view is blacklisted — later queries stop attempting it.
func TestMaterializeFaultsNeverFailQueries(t *testing.T) {
	leakcheck.Check(t)
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	d := newTestSystem(t, func(c *Config) {
		c.Faults = &faults.Config{Seed: 2, Materialize: 1}
	})

	var blacklisted string
	for i := 0; i < matMaxFailures+2; i++ {
		q := q30(1000, 2999)
		want := run(t, vanilla, q).Result.Fingerprint()
		rep := run(t, d, q)
		if rep.Result.Fingerprint() != want {
			t.Fatalf("query %d wrong under materialization faults", i)
		}
		for _, id := range rep.MatFailed {
			if d.backoff.blacklisted(id) {
				blacklisted = id
			}
		}
		if i >= matMaxFailures && len(rep.MatFailed) != 0 {
			t.Fatalf("query %d still attempts blacklisted views: %v", i, rep.MatFailed)
		}
	}
	if blacklisted == "" {
		t.Fatal("no view reached the blacklist after repeated failures")
	}
	if d.Eng.FS().NumFiles() != 0 || d.Pool.TotalSize() != 0 {
		t.Errorf("failed materializations left files behind: %d files, pool %d bytes",
			d.Eng.FS().NumFiles(), d.Pool.TotalSize())
	}
}

// TestPermanentMaterializeFaultBlacklistsImmediately: a permanent fault
// on the first attempt blacklists the view without burning the
// remaining retry budget.
func TestPermanentMaterializeFaultBlacklistsImmediately(t *testing.T) {
	d := newTestSystem(t, func(c *Config) {
		c.Faults = &faults.Config{Seed: 3, Materialize: 1, PermanentFraction: 1}
	})
	rep := run(t, d, q30(1000, 2999))
	if len(rep.MatFailed) == 0 {
		t.Fatal("no materialization attempt failed; test setup broken")
	}
	for _, id := range rep.MatFailed {
		if !d.backoff.blacklisted(id) {
			t.Errorf("view %s not blacklisted after a permanent fault", shortID(id))
		}
	}
	rep2 := run(t, d, q30(1000, 2999))
	if len(rep2.MatFailed) != 0 {
		t.Errorf("second query re-attempted blacklisted views: %v", rep2.MatFailed)
	}
}
