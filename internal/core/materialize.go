package core

import (
	"fmt"
	"sort"

	"deepsea/internal/engine"
	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/partition"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// materializeView stores a captured candidate view according to the
// configured partitioning mode and returns the charged cost. captured is
// nil in estimate-only mode; sizes then come from statistics. When the
// selection admitted only some initial fragments (sv.pieces), only those
// are written — partial materialization under a tight pool.
//
// When the defining node did not execute (the query was rewritten) but a
// complete partition of the view already exists, the rows are
// reconstructed from that partition instead — this is how a view gains a
// partition on a second attribute: re-partitioning the fragments the
// rewriting just read (usedByQuery charges the reads only when the
// executed plan did not already pay for them).
func (d *DeepSea) materializeView(sv selectedView, captured *relation.Table, usedByQuery bool, planCounts map[string]int64) (engine.Cost, bool, error) {
	vc := sv.vc
	// One Materialize-site injection decision per view materialization
	// attempt; a fault here fails the attempt before anything is written.
	if err := d.faults.Check(faults.Materialize, vc.id); err != nil {
		return engine.Cost{}, false, fmt.Errorf("core: materialize view %s: %w", shortID(vc.id), err)
	}
	vs := d.Stats.View(vc.id)
	var reconstructCost engine.Cost
	fromFiles := false
	if captured == nil && d.Cfg.ExecuteRows {
		var ok bool
		captured, reconstructCost, ok = d.reconstructView(vc.id, usedByQuery)
		if !ok {
			return engine.Cost{}, false, nil // no row source this round
		}
		fromFiles = true
	}
	viewBytes := vs.Size
	if captured != nil {
		viewBytes = captured.Bytes()
	}

	mode := d.Cfg.Partition
	attr, dom := sv.attr, sv.dom
	if mode != PartitionNone && attr == "" {
		// No usable partition key: fall back to unpartitioned storage.
		mode = PartitionNone
	}

	var cost engine.Cost
	d.Pool.Ensure(vc.id, vc.schema)
	switch mode {
	case PartitionNone:
		path := d.viewPath(vc.id)
		var err error
		if captured != nil {
			cost, err = d.Eng.WriteMaterialized(path, captured)
		} else {
			cost, err = d.Eng.WriteMaterializedSize(path, viewBytes)
		}
		if err != nil {
			return cost, false, fmt.Errorf("core: materialize view %s: %w", shortID(vc.id), err)
		}
		d.Pool.SetViewFile(vc.id, path, viewBytes)

	default:
		ivs, err := d.initialPartitioning(vc, attr, dom, viewBytes, captured, sv.pieces)
		if err != nil {
			return engine.Cost{}, false, err
		}
		// Partial materialization may extend an existing partition.
		part := d.Pool.EnsurePartition(vc.id, attr, dom, d.Cfg.overlapping())
		for _, piece := range ivs {
			// Write only the parts of the piece not already covered by
			// existing fragments: coalesced proposals can span a
			// materialized fragment plus a hole, and a horizontal
			// partition must stay disjoint.
			writes := []interval.Interval{piece}
			if part.NumFragments() > 0 {
				writes = part.Intervals().Gaps(piece)
			}
			for _, iv := range writes {
				fragBytes, fragTbl := d.fragmentData(captured, attr, iv, viewBytes, dom)
				path := d.fragPath(vc.id, attr, iv)
				var wc engine.Cost
				var err error
				if fragTbl != nil {
					wc, err = d.Eng.WriteMaterialized(path, fragTbl)
				} else {
					wc, err = d.Eng.WriteMaterializedSize(path, fragBytes)
				}
				if err != nil {
					// Fragments from earlier iterations are already
					// registered in the pool and stay: a partial
					// partition is valid (gaps fall back to remainder
					// plans), and the FS and pool still agree.
					return cost, false, fmt.Errorf("core: materialize view %s: %w", shortID(vc.id), err)
				}
				cost.Add(wc)
				d.Pool.AddFragment(vc.id, attr, partition.Fragment{Iv: iv, Path: path, Size: fragBytes})
				fs := d.Stats.Partition(vc.id, attr, dom).Frag(iv)
				fs.Size = fragBytes
				fs.Measured = fragTbl != nil
				d.journalFStat(vc.id, attr, fs)
			}
		}
	}

	cost.Add(reconstructCost)
	vs.Size = viewBytes
	// vs.Cost keeps the recompute estimate (Section 7.1's COST(V));
	// the charged materialization overhead is returned to the caller.
	vs.Measured = captured != nil
	d.journalVStat(vs)
	// Register the view's ingest consistency point: captured content is
	// exact at the proposing query's planning-time base counts (or
	// registers stale if an append raced the execution); reconstructed
	// content keeps the existing metadata's consistency point.
	d.registerIngestView(vc.id, vc.node, planCounts, fromFiles)
	return cost, true, nil
}

// reconstructView rebuilds a view's rows from a partition that fully
// covers its domain (clipped so overlapping fragments contribute each
// range once). free marks reads already paid for by the executed query.
func (d *DeepSea) reconstructView(id string, free bool) (*relation.Table, engine.Cost, bool) {
	pv := d.Pool.View(id)
	if pv == nil {
		return nil, engine.Cost{}, false
	}
	for _, attr := range pv.PartAttrs() {
		part := pv.Parts[attr]
		frags, reads, gaps := part.Cover(part.Dom)
		if len(gaps) > 0 || len(frags) == 0 {
			continue
		}
		out := relation.NewTable(pv.Schema)
		ai := pv.Schema.ColIndex(part.Attr)
		if ai < 0 {
			continue
		}
		var cost engine.Cost
		ok := true
		for i, f := range frags {
			tbl := d.Eng.Materialized(f.Path)
			if tbl == nil {
				ok = false
				break
			}
			for _, row := range tbl.Rows {
				if reads[i].Contains(row[ai].I) {
					out.Append(row)
				}
			}
			if !free {
				sec, tasks := d.Eng.CostModel().ReadCost(f.Size, 1)
				cost.Add(engine.Cost{Seconds: sec, ReadBytes: f.Size, MapTasks: tasks})
			}
		}
		if ok {
			return out, cost, true
		}
	}
	return nil, engine.Cost{}, false
}

// partitionKey picks the partition attribute for a new view: the ordered
// attribute with tracked partition statistics (selection evidence),
// preferring the one with the most recorded hits. It returns ok=false if
// the view has no such attribute.
func (d *DeepSea) partitionKey(vc viewCandidate) (string, interval.Interval, bool) {
	type cand struct {
		attr string
		dom  interval.Interval
		hits int
	}
	var cands []cand
	for _, pstat := range d.Stats.Partitions(vc.id) {
		if i := vc.schema.ColIndex(pstat.Attr); i < 0 || !vc.schema.Cols[i].Ordered {
			continue
		}
		n := 0
		for _, f := range pstat.Fragments() {
			n += len(f.Hits)
		}
		cands = append(cands, cand{attr: pstat.Attr, dom: pstat.Dom, hits: n})
	}
	if len(cands) == 0 {
		return "", interval.Interval{}, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		return cands[i].attr < cands[j].attr
	})
	return cands[0].attr, cands[0].dom, true
}

// initialPartitioning derives the fragment intervals for a view being
// materialized: equi-depth boundaries for the E-k baseline, or the
// workload-derived candidate partitioning (PSTAT) for the adaptive
// modes, bounded per Section 9 (split fragments above φ·S(V), never
// below the block size). A non-nil pieces list restricts the adaptive
// partitioning to the selection-admitted fragments.
func (d *DeepSea) initialPartitioning(vc viewCandidate, attr string, dom interval.Interval, viewBytes int64, captured *relation.Table, pieces []interval.Interval) ([]interval.Interval, error) {
	if d.Cfg.Partition == PartitionEquiDepth {
		k := d.Cfg.EquiDepthK
		if k < 1 {
			return nil, fmt.Errorf("core: equi-depth partitioning requires EquiDepthK >= 1")
		}
		if captured != nil {
			return equiDepthFromData(captured, attr, k, dom), nil
		}
		return interval.EquiDepth(dom, k), nil
	}

	pstat := d.Stats.Partition(vc.id, attr, dom)
	var ivs []interval.Interval
	if pieces != nil {
		ivs = append(ivs, pieces...)
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	} else {
		ivs = []interval.Interval(pstat.Cand.Clone())
	}
	if len(ivs) == 0 {
		ivs = []interval.Interval{dom}
	}

	// Guard fragments: carve medium-sized fragments out of the cold
	// pieces bordering hot (query-derived) pieces. The paper's
	// fragment-correlation analysis says exactly this — domain parts
	// close to hot spots have a high chance of being hit — and its
	// Figure 6 run produces six fragments from a single observed query,
	// which a bare three-way split cannot explain. Guards keep the
	// inevitable spill of drifting selection ranges off the huge cold
	// fragments.
	if !d.Cfg.NoGuards {
		isHot := func(iv interval.Interval) bool {
			f, ok := pstat.Lookup(iv)
			return ok && len(f.Hits) > 0
		}
		ivs = guardSplit(ivs, isHot, 2)
	}

	sizeOf := d.fragmentSizer(captured, attr, viewBytes, dom)
	// Lower bound: coalesce runs of too-small fragments (block size).
	ivs = coalesceMin(ivs, sizeOf, d.Cfg.minFragBytes())
	// Upper bound: split fragments above φ·S(V).
	if d.Cfg.MaxFragFraction > 0 {
		maxBytes := int64(d.Cfg.MaxFragFraction * float64(viewBytes))
		ivs = partition.Bound(ivs, sizeOf, maxBytes, d.Cfg.minFragBytes())
	}
	return ivs, nil
}

// guardSplit cuts guard fragments of guardFactor times the hot piece's
// width out of cold pieces adjacent to hot pieces. ivs must be sorted and
// disjoint; the result partitions the same region.
func guardSplit(ivs []interval.Interval, isHot func(interval.Interval) bool, guardFactor int64) []interval.Interval {
	var out []interval.Interval
	for i, iv := range ivs {
		if isHot(iv) {
			out = append(out, iv)
			continue
		}
		var cuts []int64
		if i > 0 && isHot(ivs[i-1]) && ivs[i-1].Hi+1 == iv.Lo {
			cuts = append(cuts, iv.Lo+ivs[i-1].Len()*guardFactor)
		}
		if i+1 < len(ivs) && isHot(ivs[i+1]) && iv.Hi+1 == ivs[i+1].Lo {
			cuts = append(cuts, iv.Hi+1-ivs[i+1].Len()*guardFactor)
		}
		out = append(out, iv.SplitAt(cuts...)...)
	}
	return out
}

// fragmentSizer returns a fast interval-size estimator: in exec mode it
// sorts the captured partition-key column once and answers each interval
// by binary search; in estimate-only mode it falls back to the uniform
// share. (fragmentData would build a whole table per probe — quadratic
// when bounding/coalescing probe many intervals.)
func (d *DeepSea) fragmentSizer(captured *relation.Table, attr string, viewBytes int64, dom interval.Interval) func(interval.Interval) int64 {
	if captured == nil {
		return func(iv interval.Interval) int64 {
			return int64(float64(viewBytes) * float64(iv.Len()) / float64(dom.Len()))
		}
	}
	ai := captured.Schema.ColIndex(attr)
	vals := make([]int64, len(captured.Rows))
	for i, row := range captured.Rows {
		vals[i] = row[ai].I
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	width := captured.Schema.RowWidth()
	return func(iv interval.Interval) int64 {
		lo := sort.Search(len(vals), func(i int) bool { return vals[i] >= iv.Lo })
		hi := sort.Search(len(vals), func(i int) bool { return vals[i] > iv.Hi })
		return int64(hi-lo) * width
	}
}

// fragmentData returns the byte size of a fragment and, in exec mode, its
// row data. In estimate-only mode the size is the uniform share of the
// view's bytes.
func (d *DeepSea) fragmentData(captured *relation.Table, attr string, iv interval.Interval, viewBytes int64, dom interval.Interval) (int64, *relation.Table) {
	if captured == nil {
		return int64(float64(viewBytes) * float64(iv.Len()) / float64(dom.Len())), nil
	}
	ai := captured.Schema.ColIndex(attr)
	frag := relation.NewTable(captured.Schema)
	for _, row := range captured.Rows {
		if iv.Contains(row[ai].I) {
			frag.Append(row)
		}
	}
	return frag.Bytes(), frag
}

// equiDepthFromData computes k fragment intervals holding approximately
// equal row counts (true equi-depth boundaries from the data's quantiles).
func equiDepthFromData(tbl *relation.Table, attr string, k int, dom interval.Interval) []interval.Interval {
	ai := tbl.Schema.ColIndex(attr)
	vals := make([]int64, 0, len(tbl.Rows))
	for _, row := range tbl.Rows {
		vals = append(vals, row[ai].I)
	}
	if len(vals) == 0 || k <= 1 {
		return []interval.Interval{dom}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	cuts := make([]int64, 0, k-1)
	prev := dom.Lo
	for i := 1; i < k; i++ {
		q := vals[i*len(vals)/k]
		if q > prev && q <= dom.Hi {
			cuts = append(cuts, q)
			prev = q
		}
	}
	return dom.SplitAt(cuts...)
}

// coalesceMin merges adjacent intervals until each merged run reaches
// minBytes (the block-size lower bound for fragments). The last run may
// stay below the bound if the whole domain does.
func coalesceMin(ivs []interval.Interval, sizeOf func(interval.Interval) int64, minBytes int64) []interval.Interval {
	if minBytes <= 0 || len(ivs) == 0 {
		return ivs
	}
	var out []interval.Interval
	cur := ivs[0]
	curBytes := sizeOf(cur)
	for _, iv := range ivs[1:] {
		if curBytes < minBytes && iv.Lo == cur.Hi+1 {
			cur = interval.Interval{Lo: cur.Lo, Hi: iv.Hi}
			curBytes = sizeOf(cur)
			continue
		}
		out = append(out, cur)
		cur = iv
		curBytes = sizeOf(iv)
	}
	out = append(out, cur)
	// A too-small final run merges backwards.
	if len(out) >= 2 {
		last := out[len(out)-1]
		if sizeOf(last) < minBytes && out[len(out)-2].Hi+1 == last.Lo {
			out[len(out)-2] = interval.Interval{Lo: out[len(out)-2].Lo, Hi: last.Hi}
			out = out[:len(out)-1]
		}
	}
	return out
}

// materializeFrag materializes one selected fragment candidate: either
// from a captured remainder (gap recovery) or by a refinement plan over
// the existing fragments (split or overlapping creation). It returns the
// charged cost and the intervals actually written.
func (d *DeepSea) materializeFrag(fc fragCandidate, captured map[query.Node]*relation.Table, planCounts map[string]int64) (engine.Cost, []interval.Interval, error) {
	// One Materialize-site decision per fragment-materialization attempt,
	// keyed by the view so a view's backoff covers its fragments too.
	if err := d.faults.Check(faults.Materialize, fc.viewID); err != nil {
		return engine.Cost{}, nil, fmt.Errorf("core: materialize fragment %s.%s%s: %w", shortID(fc.viewID), fc.attr, fc.iv, err)
	}
	pv := d.Pool.View(fc.viewID)
	if pv == nil {
		return engine.Cost{}, nil, fmt.Errorf("core: fragment candidate for unknown pool view %s", shortID(fc.viewID))
	}
	part := pv.Parts[fc.attr]
	if part == nil {
		return engine.Cost{}, nil, fmt.Errorf("core: fragment candidate for missing partition %s.%s", shortID(fc.viewID), fc.attr)
	}
	pstat := d.Stats.Partition(fc.viewID, fc.attr, part.Dom)

	var cost engine.Cost
	if fc.fromGap {
		// The captured gap rows were computed by a query planned at
		// planCounts; storing them is only consistent if the view's
		// marks certify exactly that point. Refinements below need no
		// guard — they rearrange file content already at the marks.
		if !d.ingestFragGuard(fc.viewID, planCounts) {
			return cost, nil, nil
		}
		// The remainder execution already computed the gap's rows;
		// only the write is charged.
		var tbl *relation.Table
		if d.Cfg.ExecuteRows {
			tbl = captured[fc.gapNode]
			if tbl == nil {
				return engine.Cost{}, nil, fmt.Errorf("core: remainder output for gap %s not captured", fc.iv)
			}
		}
		path := d.fragPath(fc.viewID, fc.attr, fc.iv)
		var bytes int64
		var wc engine.Cost
		var err error
		if tbl != nil {
			wc, err = d.Eng.WriteMaterialized(path, tbl)
			bytes = tbl.Bytes()
		} else {
			wc, err = d.Eng.WriteMaterializedSize(path, fc.estSize)
			bytes = fc.estSize
		}
		if err != nil {
			return cost, nil, fmt.Errorf("core: materialize fragment %s.%s%s: %w", shortID(fc.viewID), fc.attr, fc.iv, err)
		}
		cost.Add(wc)
		d.Pool.AddFragment(fc.viewID, fc.attr, partition.Fragment{Iv: fc.iv, Path: path, Size: bytes})
		fs := pstat.Frag(fc.iv)
		fs.Size = bytes
		fs.Measured = tbl != nil
		d.journalFStat(fc.viewID, fc.attr, fs)
		return cost, []interval.Interval{fc.iv}, nil
	}

	ref := part.PlanRefinement(fc.iv)
	if len(ref.Write) == 0 {
		return cost, nil, nil // candidate coincides with existing boundaries
	}
	// A horizontal refinement replaces its parents. If a concurrent
	// execution still reads one of them, skip the whole refinement (a
	// partial one would leave the partition overlapping); a later query
	// can retry once the reader finishes.
	for _, f := range ref.Drop {
		if d.isPinned(f.Path) {
			return cost, nil, nil
		}
	}
	// The candidate was derived against the pool as it stood during
	// selection; a concurrent query may have evicted a parent since. If
	// the surviving parents no longer cover what would be written, skip
	// the refinement — the candidate regenerates on a later query.
	readIvs := make(interval.Set, len(ref.Read))
	for i, f := range ref.Read {
		readIvs[i] = f.Iv
	}
	for _, iv := range ref.Write {
		if _, _, full := interval.ClippedCover(iv, readIvs); !full {
			return cost, nil, nil
		}
	}

	// Read the parents. By-product refinements reuse the rows the
	// executed query already streamed past, so the reads are free —
	// the partition operator forks the stream into a file sink.
	parents := make([]*relation.Table, len(ref.Read))
	for i, f := range ref.Read {
		if fc.byproduct {
			parents[i] = d.Eng.Materialized(f.Path)
			continue
		}
		tbl, rc, err := d.Eng.ReadMaterialized(f.Path)
		if err != nil {
			return engine.Cost{}, nil, fmt.Errorf("core: refinement of %s.%s%s: %w", shortID(fc.viewID), fc.attr, fc.iv, err)
		}
		cost.Add(rc)
		parents[i] = tbl
	}

	// Write the new fragments. Pool registration happens after the loop
	// so size estimates keep seeing only the pre-refinement fragments.
	var written []interval.Interval
	var pending []partition.Fragment
	// undoPending deletes fragments written by this refinement but not
	// yet pool-registered; on a mid-loop write failure it restores the
	// FS/pool agreement (registration only happens after the loop).
	undoPending := func(pending []partition.Fragment) {
		for _, f := range pending {
			d.Eng.DeleteMaterialized(f.Path)
		}
	}
	for _, iv := range ref.Write {
		path := d.fragPath(fc.viewID, fc.attr, iv)
		var bytes int64
		var wc engine.Cost
		var werr error
		if d.Cfg.ExecuteRows {
			tbl, err := extractRows(parents, ref.Read, fc.attr, iv, pv.Schema)
			if err != nil {
				undoPending(pending)
				return engine.Cost{}, nil, err
			}
			wc, werr = d.Eng.WriteMaterialized(path, tbl)
			bytes = tbl.Bytes()
		} else {
			bytes = part.EstimateCandidateSize(iv)
			wc, werr = d.Eng.WriteMaterializedSize(path, bytes)
		}
		if werr != nil {
			undoPending(pending)
			return cost, nil, fmt.Errorf("core: refinement of %s.%s%s: %w", shortID(fc.viewID), fc.attr, fc.iv, werr)
		}
		cost.Add(wc)
		fs := pstat.Frag(iv)
		fs.Size = bytes
		fs.Measured = d.Cfg.ExecuteRows
		d.journalFStat(fc.viewID, fc.attr, fs)
		written = append(written, iv)
		pending = append(pending, partition.Fragment{Iv: iv, Path: path, Size: bytes})
	}
	for _, f := range pending {
		d.Pool.AddFragment(fc.viewID, fc.attr, f)
	}

	// Drop replaced parents (horizontal splits).
	for _, f := range ref.Drop {
		d.Eng.DeleteMaterialized(f.Path)
		d.Pool.RemoveFragment(fc.viewID, fc.attr, f.Iv)
	}
	return cost, written, nil
}

// extractRows collects the rows of the new fragment interval from the
// parent fragments, reading each key subrange from exactly one parent so
// overlapping parents contribute no duplicates.
func extractRows(parents []*relation.Table, read []partition.Fragment, attr string, iv interval.Interval, schema relation.Schema) (*relation.Table, error) {
	ivs := make(interval.Set, len(read))
	for i, f := range read {
		ivs[i] = f.Iv
	}
	idx, clips, full := interval.ClippedCover(iv, ivs)
	if !full {
		return nil, fmt.Errorf("core: parents do not cover new fragment %s", iv)
	}
	out := relation.NewTable(schema)
	for k, pi := range idx {
		tbl := parents[pi]
		if tbl == nil {
			return nil, fmt.Errorf("core: parent fragment %s has no rows in exec mode", read[pi].Iv)
		}
		ai := tbl.Schema.ColIndex(attr)
		for _, row := range tbl.Rows {
			if clips[k].Contains(row[ai].I) {
				out.Append(row)
			}
		}
	}
	return out, nil
}
