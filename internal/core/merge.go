package core

import (
	"fmt"

	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/matching"
	"deepsea/internal/partition"
	"deepsea/internal/relation"
	"deepsea/internal/stats"
)

// coAccessThreshold is how many shared hit timestamps two adjacent
// fragments need before they are merged.
const coAccessThreshold = 3

// maybeMergeFragments implements the paper's Section 11 extension:
// "merge consecutive fragments that are mostly accessed together".
// After a query executed a fragment cover, adjacent cover members that
// have been co-accessed repeatedly are merged into a single fragment,
// trading one write (a by-product of the read that just happened) for
// all future per-file overheads. Merges respect the largest-fragment
// bound φ·S(V).
func (d *DeepSea) maybeMergeFragments(bestRW *matching.Rewriting) (engine.Cost, []string, error) {
	var cost engine.Cost
	if !d.Cfg.MergeFragments || bestRW == nil || bestRW.PartAttr == "" {
		return cost, nil, nil
	}
	pv := d.Pool.View(bestRW.ViewID)
	if pv == nil {
		return cost, nil, nil
	}
	part := pv.Parts[bestRW.PartAttr]
	if part == nil {
		return cost, nil, nil
	}
	pstat := d.Stats.Partition(bestRW.ViewID, bestRW.PartAttr, part.Dom)
	vs := d.Stats.View(bestRW.ViewID)
	maxBytes := int64(0)
	if d.Cfg.MaxFragFraction > 0 && vs.Size > 0 {
		maxBytes = int64(d.Cfg.MaxFragFraction * float64(vs.Size))
	}

	var merged []string
	cover := bestRW.CoverFrags
	for i := 0; i+1 < len(cover); i++ {
		a, b := cover[i], cover[i+1]
		if a.Hi+1 != b.Lo {
			continue
		}
		fa, okA := part.Lookup(a)
		fb, okB := part.Lookup(b)
		if !okA || !okB {
			continue
		}
		if d.isPinned(fa.Path) || d.isPinned(fb.Path) {
			continue // a concurrent execution still reads one of the pair
		}
		if maxBytes > 0 && fa.Size+fb.Size > maxBytes {
			continue
		}
		sa, oka := pstat.Lookup(a)
		sb, okb := pstat.Lookup(b)
		if !oka || !okb || sharedHits(sa.Hits, sb.Hits) < coAccessThreshold {
			continue
		}
		c, err := d.mergePair(pv.ID, part, pstat, fa, fb)
		if err != nil {
			return cost, merged, err
		}
		cost.Add(c)
		mergedIv := interval.Interval{Lo: a.Lo, Hi: b.Hi}
		merged = append(merged, fmt.Sprintf("%s.%s%s", shortID(pv.ID), bestRW.PartAttr, mergedIv))
		// The merged fragment replaces both cover entries for the next
		// pair inspection.
		cover = append(append(append([]interval.Interval{}, cover[:i]...), mergedIv), cover[i+2:]...)
		i--
	}
	return cost, merged, nil
}

// mergePair writes the concatenation of two adjacent fragments and drops
// the originals. The rows just flowed through the executing query, so
// only the write is charged.
func (d *DeepSea) mergePair(viewID string, part *partition.Partition, pstat *stats.PartitionStat, fa, fb partition.Fragment) (engine.Cost, error) {
	mergedIv := interval.Interval{Lo: fa.Iv.Lo, Hi: fb.Iv.Hi}
	path := d.fragPath(viewID, part.Attr, mergedIv)
	var cost engine.Cost
	var bytes int64
	if d.Cfg.ExecuteRows {
		ta := d.Eng.Materialized(fa.Path)
		tb := d.Eng.Materialized(fb.Path)
		if ta == nil || tb == nil {
			return cost, fmt.Errorf("core: merge of %s/%s lost row data", fa.Iv, fb.Iv)
		}
		tbl := relation.NewTable(ta.Schema)
		tbl.Rows = append(append(tbl.Rows, ta.Rows...), tb.Rows...)
		wc, err := d.Eng.WriteMaterialized(path, tbl)
		if err != nil {
			// Nothing was dropped yet, so a failed merge write leaves the
			// pair untouched — the merge simply did not happen.
			return cost, fmt.Errorf("core: merge of %s/%s: %w", fa.Iv, fb.Iv, err)
		}
		cost.Add(wc)
		bytes = tbl.Bytes()
	} else {
		bytes = fa.Size + fb.Size
		wc, err := d.Eng.WriteMaterializedSize(path, bytes)
		if err != nil {
			return cost, fmt.Errorf("core: merge of %s/%s: %w", fa.Iv, fb.Iv, err)
		}
		cost.Add(wc)
	}
	d.Eng.DeleteMaterialized(fa.Path)
	d.Eng.DeleteMaterialized(fb.Path)
	d.Pool.RemoveFragment(viewID, part.Attr, fa.Iv)
	d.Pool.RemoveFragment(viewID, part.Attr, fb.Iv)
	d.Pool.AddFragment(viewID, part.Attr, partition.Fragment{Iv: mergedIv, Path: path, Size: bytes})

	fs := pstat.Frag(mergedIv)
	fs.Size = bytes
	fs.Measured = d.Cfg.ExecuteRows
	d.journalFStat(viewID, part.Attr, fs)
	fs.RecordHit(d.Eng.Now())
	return cost, nil
}

// sharedHits counts timestamps present in both sorted hit lists.
func sharedHits(a, b []float64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
