package core

import (
	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/matching"
	"deepsea/internal/signature"
	"deepsea/internal/stats"
)

// updateUseStats implements UPDATESTATS over Rewr(Q) (Section 8.4): for
// every view that could answer the query — materialized or not — record a
// benefit use, and record hits on the fragments the rewriting would
// access.
func (d *DeepSea) updateUseStats(rewritings []matching.Rewriting, orig engine.Cost) {
	now := d.Eng.Now()

	// One use per view per query: the best saving among its rewritings.
	bestSaving := make(map[string]float64)
	targets := make(map[string]*signature.Signature)
	for i := range rewritings {
		rw := &rewritings[i]
		saving := orig.Seconds - rw.EstCost.Seconds
		if saving < 0 {
			saving = 0
		}
		if cur, ok := bestSaving[rw.ViewID]; !ok || saving > cur {
			bestSaving[rw.ViewID] = saving
		}
		if _, ok := targets[rw.ViewID]; !ok {
			targets[rw.ViewID] = signature.Of(rw.Target)
		}
	}
	for id, saving := range bestSaving {
		d.Stats.View(id).RecordUse(now, saving)
	}

	// Fragment hits, at most one per fragment per query. Materialized
	// fragments are hit when Algorithm 2 chooses them;
	// tracked-but-unmaterialized fragments are hit when they overlap the
	// range the query needs ("could have been used").
	type fragKey struct {
		view, attr string
		iv         interval.Interval
	}
	hit := make(map[fragKey]bool)
	recordHit := func(view, attr string, f *stats.FragStat) {
		k := fragKey{view, attr, f.Iv}
		if hit[k] {
			return
		}
		hit[k] = true
		f.RecordHit(now)
	}

	for i := range rewritings {
		rw := &rewritings[i]
		if !rw.UsesPool || rw.PartAttr == "" {
			continue
		}
		pstat, ok := d.Stats.LookupPartition(rw.ViewID, rw.PartAttr)
		if !ok {
			continue
		}
		for _, iv := range rw.CoverFrags {
			recordHit(rw.ViewID, rw.PartAttr, pstat.Frag(iv))
		}
	}

	for id := range bestSaving {
		tsig := targets[id]
		for _, pstat := range d.Stats.Partitions(id) {
			needed := pstat.Dom
			if r, ok := tsig.Ranges[pstat.Attr]; ok {
				x, overlap := r.Intersect(pstat.Dom)
				if !overlap {
					continue
				}
				needed = x
			}
			for _, f := range pstat.Fragments() {
				if !f.Iv.Overlaps(needed) {
					continue
				}
				if d.fragMaterialized(id, pstat.Attr, f.Iv) {
					continue // hit only when actually chosen (above)
				}
				recordHit(id, pstat.Attr, f)
			}
		}
	}
}

// fragMaterialized reports whether the exact fragment interval is stored
// in the pool.
func (d *DeepSea) fragMaterialized(view, attr string, iv interval.Interval) bool {
	pv := d.Pool.View(view)
	if pv == nil {
		return false
	}
	part := pv.Parts[attr]
	if part == nil {
		return false
	}
	_, ok := part.Lookup(iv)
	return ok
}
