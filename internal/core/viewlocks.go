package core

import (
	"hash/fnv"
	"sort"
	"sync"

	"deepsea/internal/lockcheck"
)

// defaultLockStripes is the view-lock stripe count when the config does
// not override it. Stripes bound memory (no per-view lock object churn)
// while keeping the collision probability of small lock sets low.
const defaultLockStripes = 64

// viewLocks is the per-view lock striping behind ProcessQuery's
// maintenance section: view ids hash onto a fixed array of RW stripes.
// Planning holds every stripe shared, so it sees a stable pool and can
// mutate any view's statistics records; a query's maintenance holds
// only its own views' stripes exclusive, so mutating queries over
// disjoint views (different stripes) proceed in parallel. Two views
// that collide on a stripe merely serialize — never a correctness
// problem, only lost parallelism.
//
// Deadlock freedom: every multi-stripe acquisition — the planning
// read-all and each maintenance lock set — takes stripes in ascending
// index order, so circular waits cannot form. The lockcheck build tag
// asserts this at runtime.
type viewLocks struct {
	stripes []sync.RWMutex
}

// newViewLocks returns a stripe set of size n (<= 0 selects the
// default).
func newViewLocks(n int) *viewLocks {
	if n <= 0 {
		n = defaultLockStripes
	}
	return &viewLocks{stripes: make([]sync.RWMutex, n)}
}

// stripeOf maps a view id to its stripe index.
func (l *viewLocks) stripeOf(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(l.stripes)))
}

// stripeSet maps view ids (any order, duplicates allowed) to the sorted
// deduplicated stripe indices that cover them — the canonical
// acquisition order.
func (l *viewLocks) stripeSet(ids []string) []int {
	seen := make(map[int]bool, len(ids))
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		s := l.stripeOf(id)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// lockViews exclusively locks the stripes covering ids, in ascending
// stripe order, and returns the held stripe indices for unlockViews.
func (l *viewLocks) lockViews(ids []string) []int {
	set := l.stripeSet(ids)
	for _, s := range set {
		lockcheck.Acquire(lockcheck.RankView, s, "view stripe (write)")
		l.stripes[s].Lock()
	}
	return set
}

// unlockViews releases a lock set taken by lockViews.
func (l *viewLocks) unlockViews(set []int) {
	for i := len(set) - 1; i >= 0; i-- {
		l.stripes[set[i]].Unlock()
		lockcheck.Release(lockcheck.RankView, set[i], "view stripe (write)")
	}
}

// rlockAll takes every stripe shared, in ascending order — the planning
// phase's view of the world: no maintenance in flight anywhere, while
// other planners and executing queries proceed.
func (l *viewLocks) rlockAll() {
	for i := range l.stripes {
		lockcheck.Acquire(lockcheck.RankView, i, "view stripe (read)")
		l.stripes[i].RLock()
	}
}

// runlockAll releases rlockAll.
func (l *viewLocks) runlockAll() {
	for i := len(l.stripes) - 1; i >= 0; i-- {
		l.stripes[i].RUnlock()
		lockcheck.Release(lockcheck.RankView, i, "view stripe (read)")
	}
}
