package core

import (
	"math/rand"
	"sync"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// storeSchema is a third base table for tests that need a second,
// unrelated view: item ⋈ store shares no signature with sales ⋈ item, so
// the matcher cannot answer one template from the other's view.
func storeSchema() relation.Schema {
	return relation.Schema{
		Name: "store",
		Cols: []relation.Column{
			{Name: "s_store_sk", Type: relation.Int, Ordered: true, Lo: testDomLo, Hi: testDomHi, Width: 1 << 18},
			{Name: "s_name", Type: relation.String, Width: 1 << 18},
			// Wide payload the test queries never project, so the
			// project-over-join view is far cheaper to scan than the base
			// tables — same reason q30's view pays off against ss_pad.
			{Name: "s_pad", Type: relation.String, Width: 3 << 19},
		},
	}
}

func addStoreTable(d *DeepSea) {
	store := relation.NewTable(storeSchema())
	names := []string{"north", "south", "east", "west", "central", "outlet"}
	for i := 0; i <= testDomHi; i++ {
		store.Append(relation.Row{
			relation.IntVal(int64(i)),
			relation.StringVal(names[i%len(names)]),
			relation.StringVal("pad"),
		})
	}
	d.AddBaseTable(store)
}

// qStore is a second template whose view (item ⋈ store) is disjoint from
// q30's (sales ⋈ item), so cache-dependency tests can hold entries over
// two distinct views at once.
func qStore(lo, hi int64) query.Node {
	return &query.Aggregate{
		Child: &query.Select{
			Child: &query.Project{
				Child: &query.Join{
					Left:  query.NewScan("item", itemSchema()),
					Right: query.NewScan("store", storeSchema()),
					LCol:  "i_item_sk",
					RCol:  "s_store_sk",
				},
				Cols: []string{"i_item_sk", "i_category", "s_name"},
			},
			Ranges: []query.RangePred{{Col: "i_item_sk", Iv: interval.New(lo, hi)}},
		},
		GroupBy: []string{"s_name"},
		Aggs:    []query.AggSpec{{Func: query.Count, As: "n"}},
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.CacheBytes = 1 << 30 })
	first := run(t, d, q30(100, 600))
	if first.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	again := run(t, d, q30(100, 600))
	if !again.CacheHit {
		t.Fatal("identical repeat missed the cache")
	}
	if again.TotalSeconds != 0 {
		t.Errorf("cache hit charged %v simulated seconds, want 0", again.TotalSeconds)
	}
	if again.Result.Fingerprint() != first.Result.Fingerprint() {
		t.Error("cached result differs from computed result")
	}
	if other := run(t, d, q30(100, 601)); other.CacheHit {
		t.Error("different query hit the cache")
	}
	// Vanilla mode caches too.
	h := newTestSystem(t, func(c *Config) {
		c.Materialize = false
		c.CacheBytes = 1 << 30
	})
	run(t, h, q30(100, 600))
	if rep := run(t, h, q30(100, 600)); !rep.CacheHit {
		t.Error("vanilla repeat missed the cache")
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	d := newTestSystem(t, nil)
	if d.Cache != nil {
		t.Fatal("cache exists without CacheBytes")
	}
	run(t, d, q30(100, 600))
	if rep := run(t, d, q30(100, 600)); rep.CacheHit {
		t.Error("cache hit with caching disabled")
	}
}

// TestCachePreciseInvalidation holds cached entries over two distinct
// views plus a base-only vanilla entry, evicts one view, and demands
// that exactly the entries over that view miss (the acceptance
// criterion: invalidation is per-view, not a cache flush).
func TestCachePreciseInvalidation(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.CacheBytes = 1 << 30 })
	addStoreTable(d)

	// First executions materialize each template's view; the subset
	// queries then rewrite over the views, so their cached entries carry
	// view dependencies.
	run(t, d, q30(1000, 3000))
	repA := run(t, d, q30(1200, 2800))
	if !repA.Rewritten || repA.UsedView == "" {
		t.Fatal("q30 subset did not rewrite over its view; test needs a view-dependent entry")
	}
	va := repA.UsedView
	run(t, d, qStore(5000, 7000))
	repB := run(t, d, qStore(5200, 6800))
	if !repB.Rewritten || repB.UsedView == "" {
		t.Fatal("qStore subset did not rewrite over its view")
	}
	vb := repB.UsedView
	if va == vb {
		t.Fatalf("templates share view %s; test needs two distinct views", va)
	}

	// Both entries (and their parents) currently hit.
	if rep := run(t, d, q30(1200, 2800)); !rep.CacheHit {
		t.Fatal("q30 subset entry not cached")
	}
	if rep := run(t, d, qStore(5200, 6800)); !rep.CacheHit {
		t.Fatal("qStore subset entry not cached")
	}

	// Evict view A's content: generation bumps, so only fingerprints
	// over view A may miss.
	evicted := false
	if pv := d.Pool.View(va); pv != nil {
		if pv.Path != "" {
			d.Eng.DeleteMaterialized(pv.Path)
		}
		for _, part := range pv.Parts {
			for _, f := range part.Fragments() {
				d.Eng.DeleteMaterialized(f.Path)
			}
		}
		d.Pool.Remove(va)
		evicted = true
	}
	if !evicted {
		t.Fatalf("view %s not in pool; cannot evict", va)
	}

	repA2 := run(t, d, q30(1200, 2800))
	if repA2.CacheHit {
		t.Error("entry over evicted view still hit")
	}
	if repA2.Result.Fingerprint() != repA.Result.Fingerprint() {
		t.Error("recomputed result differs after eviction")
	}
	if rep := run(t, d, qStore(5200, 6800)); !rep.CacheHit {
		t.Error("entry over untouched view missed after unrelated eviction")
	}
	inv := d.Cache.Stats().Invalidations
	if inv != 1 {
		t.Errorf("invalidations = %d, want exactly 1 (precise, not a flush)", inv)
	}
}

// TestCacheRaceWithEvictions hammers ProcessQuery on a cache-enabled
// system from several goroutines while a churn goroutine drives
// materialization, eviction and merging through a tight pool. Every
// answer — cached or computed — must equal the vanilla reference; a
// cache hit over an evicted view would return a stale or wrong table
// and fail the comparison. Run under -race this also proves the lock
// split (planMu/view stripes/pinMu + cache) is sound.
func TestCacheRaceWithEvictions(t *testing.T) {
	const (
		goroutines = 4
		perG       = 12
	)
	type qr struct{ lo, hi int64 }
	rng := rand.New(rand.NewSource(42))
	distinct := make([]qr, 8)
	for i := range distinct {
		width := rng.Int63n(1500) + 300
		lo := rng.Int63n(testDomHi - width)
		distinct[i] = qr{lo, lo + width}
	}

	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	want := make([]string, len(distinct))
	for i, q := range distinct {
		want[i] = run(t, vanilla, q30(q.lo, q.hi)).Result.Fingerprint()
	}

	d := newTestSystem(t, func(c *Config) {
		c.Smax = 2 << 30 // tight: selection keeps evicting
		c.MergeFragments = true
		c.CacheBytes = 1 << 30
	})

	var queriesWg, churnWg sync.WaitGroup
	errs := make(chan error, goroutines*perG*2+64)
	stop := make(chan struct{})
	// Churn: shifting wide queries force continuous materialize / evict /
	// merge traffic on the shared view.
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		churn := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			width := churn.Int63n(4000) + 2000
			lo := churn.Int63n(testDomHi - width)
			if _, err := d.ProcessQuery(q30(lo, lo+width)); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		queriesWg.Add(1)
		go func(g int) {
			defer queriesWg.Done()
			grng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < perG; i++ {
				k := grng.Intn(len(distinct))
				// Issue the same query twice back-to-back: the second run
				// exercises the hit path whenever no mutation interleaves.
				for rep := 0; rep < 2; rep++ {
					r, err := d.ProcessQuery(q30(distinct[k].lo, distinct[k].hi))
					if err != nil {
						errs <- err
						return
					}
					if got := r.Result.Fingerprint(); got != want[k] {
						t.Errorf("goroutine %d query %d (hit=%v): result differs from vanilla",
							g, k, r.CacheHit)
					}
				}
			}
		}(g)
	}
	// Wait for the query goroutines, then stop the churn.
	queriesWg.Wait()
	close(stop)
	churnWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Deterministic hit check after the storm: compute once, repeat once.
	q := q30(distinct[0].lo, distinct[0].hi)
	first, err := d.ProcessQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := d.ProcessQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("sequential repeat after the storm missed the cache")
	}
	if again.Result.Fingerprint() != first.Result.Fingerprint() ||
		again.Result.Fingerprint() != want[0] {
		t.Error("post-storm cached result differs from vanilla")
	}

	if err := d.Pool.VerifySize(); err != nil {
		t.Error(err)
	}
	if len(d.pinned) != 0 {
		t.Errorf("pins leaked: %v", d.pinned)
	}
}
