package core

// Health is a consistent operational snapshot of one DeepSea instance —
// the data behind a serving frontend's /healthz and /statz endpoints.
// It is self-contained (plain counters and id lists, no internal types)
// so callers outside internal/ can consume it directly.
//
// Each group is internally consistent (taken under the owning
// component's lock); groups are collected in sequence, so counters from
// different groups may be offset by queries that complete during the
// snapshot. That is the usual contract for health surfaces.
type Health struct {
	// InFlight is the number of queries currently executing; Queries is
	// the cumulative count started; PlanAcquisitions counts planning-lock
	// acquisitions (batch processing plans many queries per acquisition,
	// so PlanAcquisitions < Queries under template-coalesced load).
	InFlight         int64
	Queries          uint64
	PlanAcquisitions uint64

	// Pool occupancy: bytes stored vs the Smax limit (0 = unlimited) and
	// entry counts.
	PoolBytes     int64
	PoolLimit     int64
	PoolViews     int
	PoolViewFiles int
	PoolFragments int

	// Degradation state: storage paths ever quarantined after a failed
	// read (cumulative — quarantined files stay interesting after
	// removal), views currently under materialization backoff, and views
	// blacklisted after repeated materialization failures.
	Quarantined []string
	Backoff     []string
	Blacklisted []string

	// Result-cache traffic and occupancy; all zero when caching is off.
	// CacheEnabled distinguishes a configured-off cache from an enabled
	// one that happens to be idle; DisabledPuts counts results a disabled
	// cache declined (reported separately from AdmissionRejects, which
	// only an enabled cache increments).
	CacheEnabled          bool
	CacheHits             int64
	CacheMisses           int64
	CacheInsertions       int64
	CacheEvictions        int64
	CacheInvalidations    int64
	CacheAdmissionRejects int64
	CacheDisabledPuts     int64
	CacheBytes            int64
	CacheCapacity         int64
	CacheEntries          int

	// Statistics-registry sizes, read from one epoch-published snapshot
	// (views, partitions and fragments are mutually consistent — they
	// describe the same epoch). StatsEpoch is the snapshot's mutation
	// count; StatsShards is the configured shard count.
	StatsViews      int
	StatsPartitions int
	StatsFragments  int
	StatsEpoch      uint64
	StatsShards     int

	// Background maintenance (all zero in inline mode). MaintSaturated
	// is the degraded signal: the queue is at capacity and new
	// candidates are being dropped. The counters obey
	// Enqueued == Completed + Failed + Deduped + Dropped + Depth + InFlight.
	MaintEnabled    bool
	MaintWorkers    int
	MaintQueueDepth int
	MaintQueueCap   int
	MaintInFlight   int
	MaintEnqueued   uint64
	MaintCompleted  uint64
	MaintFailed     uint64
	MaintDeduped    uint64
	MaintDropped    uint64
	MaintSaturated  bool
	// MaintKinds breaks completed tasks down by task type with mean
	// queue-wait and apply latencies (wall-clock seconds).
	MaintKinds []MaintKindHealth

	// Ingest path: batched appends and the incremental refresh of
	// dependent views. IngestStaleViews counts views currently
	// unreadable while their refresh is pending (transient in background
	// mode). IngestRetryBacklog is the degraded signal: views stuck
	// still-stale in inline mode, with no retry pending until a later
	// append happens to land.
	IngestAppends        uint64
	IngestAppendedRows   uint64
	IngestTrackedViews   int
	IngestStaleViews     int
	IngestRetryBacklog   int
	IngestRefreshes      uint64
	IngestEmptyRefreshes uint64
	IngestPrimes         uint64
	IngestDrops          uint64
	IngestRefreshSeconds float64

	// FaultsInjected is the cumulative injected-fault count (zero when
	// fault injection is off).
	FaultsInjected uint64

	// Journal health: all zero without a datastore. JournalAppendErrors
	// and JournalSnapshotErrors are the degraded-durability signals a
	// serving frontend should alarm on.
	JournalEnabled        bool
	JournalRecords        uint64
	JournalBytes          int64
	JournalAppendErrors   uint64
	JournalSnapshots      uint64
	JournalSnapshotErrors uint64
	JournalTornRepairs    uint64
	JournalLastSeq        uint64
	JournalSnapshotSeq    uint64

	// Range ownership, for instances serving as one shard of a
	// scatter-gather cluster. RangeOwned false means standalone (the
	// other three fields are zero). The epoch is the fencing token of
	// the latest ownership handoff applied to this instance.
	RangeOwned bool
	OwnedLo    int64
	OwnedHi    int64
	RangeEpoch uint64

	// Recovery outcome of this instance's construction (see
	// core.RecoveryInfo). RecoveryError non-empty means the stored state
	// was unusable and the instance started cold.
	Recovered         bool
	RecoveredSnapshot bool
	RecoveredRecords  int
	RecoverySkipped   int
	RecoveryError     string
}

// MaintKindHealth is one task type's completion and latency summary,
// self-contained for consumers outside internal/.
type MaintKindHealth struct {
	// Kind is the task type ("materialize", "split", "merge", "sweep",
	// "rematerialize").
	Kind string
	// Completed counts applied tasks of this kind (failed ones
	// included).
	Completed uint64
	// AvgWaitSeconds is the mean enqueue-to-pop latency;
	// AvgRunSeconds the mean apply latency. Both wall-clock.
	AvgWaitSeconds float64
	AvgRunSeconds  float64
}

// Health assembles the snapshot. Safe to call concurrently with query
// processing from any goroutine: every group is read under its owning
// component's own lock (pool mutex, cache mutex, backoff mutex, the
// quarantine-log mutex) or from atomics, and no manager lock is taken.
func (d *DeepSea) Health() Health {
	h := Health{
		InFlight:         d.inflight.Load(),
		Queries:          d.queries.Load(),
		PlanAcquisitions: d.planAcq.Load(),
	}

	oc := d.Pool.Occupancy()
	h.PoolBytes = oc.Bytes
	h.PoolLimit = oc.Limit
	h.PoolViews = oc.Views
	h.PoolViewFiles = oc.ViewFiles
	h.PoolFragments = oc.Fragments

	d.quarMu.Lock()
	h.Quarantined = append([]string(nil), d.quarLog...)
	d.quarMu.Unlock()
	h.Backoff, h.Blacklisted = d.backoff.snapshot()

	cs := d.Cache.Stats()
	h.CacheEnabled = !d.Cache.Disabled()
	h.CacheHits = cs.Hits
	h.CacheMisses = cs.Misses
	h.CacheInsertions = cs.Insertions
	h.CacheEvictions = cs.Evictions
	h.CacheInvalidations = cs.Invalidations
	h.CacheAdmissionRejects = cs.AdmissionRejects
	h.CacheDisabledPuts = cs.DisabledPuts
	h.CacheBytes = d.Cache.Bytes()
	h.CacheCapacity = d.Cache.Capacity()
	h.CacheEntries = d.Cache.Len()

	sc := d.Stats.Counters()
	h.StatsViews = sc.Views
	h.StatsPartitions = sc.Partitions
	h.StatsFragments = sc.Fragments
	h.StatsEpoch = sc.Epoch
	h.StatsShards = d.Stats.NumShards()

	if d.maint != nil {
		ms := d.maint.Stats()
		h.MaintEnabled = true
		h.MaintWorkers = ms.Workers
		h.MaintQueueDepth = ms.Depth
		h.MaintQueueCap = ms.Capacity
		h.MaintInFlight = ms.InFlight
		h.MaintEnqueued = ms.Enqueued
		h.MaintCompleted = ms.Completed
		h.MaintFailed = ms.Failed
		h.MaintDeduped = ms.Deduped
		h.MaintDropped = ms.Dropped
		h.MaintSaturated = ms.Depth >= ms.Capacity
		for _, ks := range ms.Kinds {
			k := MaintKindHealth{Kind: ks.Kind, Completed: ks.Completed}
			if ks.Completed > 0 {
				k.AvgWaitSeconds = ks.WaitSeconds / float64(ks.Completed)
				k.AvgRunSeconds = ks.RunSeconds / float64(ks.Completed)
			}
			h.MaintKinds = append(h.MaintKinds, k)
		}
	}

	is := d.IngestStats()
	h.IngestAppends = is.Appends
	h.IngestAppendedRows = is.AppendedRows
	h.IngestTrackedViews = is.TrackedViews
	h.IngestStaleViews = is.StaleViews
	h.IngestRetryBacklog = is.RetryBacklog
	h.IngestRefreshes = is.Refreshes
	h.IngestEmptyRefreshes = is.EmptyRefreshes
	h.IngestPrimes = is.Primes
	h.IngestDrops = is.Drops
	h.IngestRefreshSeconds = is.RefreshSeconds

	if d.faults != nil {
		h.FaultsInjected = d.faults.TotalInjected()
	}

	if d.store != nil {
		ss := d.store.Stats()
		h.JournalEnabled = true
		h.JournalRecords = ss.Records
		h.JournalBytes = ss.Bytes
		h.JournalAppendErrors = ss.AppendErrors
		h.JournalSnapshots = ss.Snapshots
		h.JournalSnapshotErrors = ss.SnapshotErrors
		h.JournalTornRepairs = ss.TornTailRepairs
		h.JournalLastSeq = ss.LastSeq
		h.JournalSnapshotSeq = ss.SnapshotSeq
	}
	if or := d.ownedRange.Load(); or != nil {
		h.RangeOwned = true
		h.OwnedLo = or.Lo
		h.OwnedHi = or.Hi
		h.RangeEpoch = or.Epoch
	}

	h.Recovered = d.recovered.Ran
	h.RecoveredSnapshot = d.recovered.FromSnapshot
	h.RecoveredRecords = d.recovered.Replayed
	h.RecoverySkipped = d.recovered.Skipped
	h.RecoveryError = d.recovered.Err
	return h
}

// PlanAcquisitions returns the cumulative planning-lock acquisition
// count — the denominator of the batch-coalescing ratio.
func (d *DeepSea) PlanAcquisitions() uint64 { return d.planAcq.Load() }

// InFlight returns the number of queries currently executing.
func (d *DeepSea) InFlight() int64 { return d.inflight.Load() }

// SetOwnedRange publishes the partition-key range this instance owns as
// a shard, with its handoff epoch. The serving layer rejects queries
// outside the owned range (or carrying a stale epoch) so a coordinator
// with an outdated routing table fails fast instead of reading rows the
// shard no longer answers for.
func (d *DeepSea) SetOwnedRange(lo, hi int64, epoch uint64) {
	d.ownedRange.Store(&OwnedRange{Lo: lo, Hi: hi, Epoch: epoch})
}

// OwnedRange returns the published shard range, or ok=false when the
// instance is standalone.
func (d *DeepSea) OwnedRange() (r OwnedRange, ok bool) {
	p := d.ownedRange.Load()
	if p == nil {
		return OwnedRange{}, false
	}
	return *p, true
}
