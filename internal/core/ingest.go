package core

import (
	"fmt"
	"sort"
	"sync"

	"deepsea/internal/datastore"
	"deepsea/internal/engine"
	"deepsea/internal/maintain"
	"deepsea/internal/partition"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// This file is the ingest path: batched base-table appends that mark
// dependent materialized views stale and bring them fresh again by
// incremental delta propagation (internal/engine's DeltaApply) instead
// of rematerialization.
//
// The invariants the path maintains:
//
//   - A query planned after Append returns never reads stale view
//     content: Append flips every dependent view's stale flag before
//     returning, the rewriter skips stale views (their virtual
//     rewritings still accumulate statistics), and result-cache keys
//     embed per-table base row counts, so a pre-append cached result is
//     unreachable by any post-append lookup.
//   - A refreshed view is byte-identical to rematerializing it from the
//     grown base tables: refresh drops the view whenever delta
//     propagation cannot guarantee that (join build-side growth,
//     orientation flips, a plan recovered without its node identity).
//   - Appends are durable: the appended rows journal as append_rows
//     records and ride along in snapshots, and every refresh journals
//     its new consistency point (ingest_marks) so a warm restart keeps
//     exactly the views whose stored content matches the recovered base
//     counts.
//
// Lock discipline: ingestMu (d.ingest.mu) is an untracked leaf lock like
// groupMu — it guards only the registry maps and the stale flags, and
// nothing acquires a ranked lock while holding it. Everything else about
// a meta (plan, marks, refresh plan, retained states) mutates only under
// the owning view's exclusive stripe, which serializes refresh,
// registration and drop for one view.

// ingestMeta is one registered view's refresh state.
type ingestMeta struct {
	// plan is the view's defining plan over base tables; nil after a
	// warm restart (plans are not journaled), which makes the view
	// unrefreshable — the first refresh drops it instead.
	plan query.Node
	// tables lists the base tables the plan reads, sorted.
	tables []string
	// marks is the consistency point: per-table row counts at which the
	// stored content is exact. nil means unknown (content captured while
	// an append raced the materialization) — the refresh drops the view.
	marks map[string]int64
	// rp is the primed refresh state (per-node sizes, retained aggregate
	// states); nil until the first refresh primes it lazily.
	rp *engine.RefreshPlan
	// stale marks content lagging its base tables. Guarded by ingestMu;
	// every other field is guarded by the view's stripe.
	stale bool
}

// ingestState is the instance-wide ingest registry.
type ingestState struct {
	// appendMu serializes one append's base-table apply, its append_rows
	// journal record, and its append-log entry as a single atomic step:
	// concurrent Appends to the same table would otherwise journal (and
	// snapshot) in a different order than they applied in memory, and a
	// warm restart — which replays in journal order — would rebuild the
	// table with a different row order than the live instance, breaking
	// the byte-identical-to-remat invariant of surviving views. Acquired
	// before mu and before the engine/datastore locks; nothing acquires
	// it while holding any other lock.
	appendMu sync.Mutex

	mu      sync.Mutex
	views   map[string]*ingestMeta
	byTable map[string]map[string]bool
	// dropped tombstones views the ingest path dropped, so a concurrent
	// speculative re-materialization cannot resurrect their pre-append
	// content.
	dropped map[string]bool
	// appLog accumulates the rows appended to each base table since the
	// original catalog load — the snapshot payload that lets a warm
	// restart rebuild the grown tables from the host's re-added
	// originals.
	appLog map[string]*relation.Table
	// retry is the inline-mode retry backlog: views a refresh left
	// still-stale (pinned files blocked a drop, a write fault poisoned
	// an apply). Inline mode has no maintenance pool to re-enqueue them,
	// so every later Append — to any table — drains this set.
	retry map[string]bool

	appends        uint64
	appendRows     uint64
	refreshes      uint64
	emptyRefreshes uint64
	primes         uint64
	drops          uint64
	refreshCost    engine.Cost
}

func newIngestState() *ingestState {
	return &ingestState{
		views:   make(map[string]*ingestMeta),
		byTable: make(map[string]map[string]bool),
		dropped: make(map[string]bool),
		appLog:  make(map[string]*relation.Table),
		retry:   make(map[string]bool),
	}
}

// IngestStats is the ingest surface of the health endpoints and the
// ingestspeed experiment.
type IngestStats struct {
	// Appends counts Append calls that landed rows; AppendedRows the
	// rows they carried.
	Appends      uint64 `json:"appends"`
	AppendedRows uint64 `json:"appended_rows"`
	// TrackedViews is the number of views with refresh metadata;
	// StaleViews how many of them currently lag their base tables.
	TrackedViews int `json:"tracked_views"`
	StaleViews   int `json:"stale_views"`
	// RetryBacklog is the number of views stuck still-stale in inline
	// mode (no maintenance pool to retry them); they stay unreadable
	// until a later append drains the backlog, so a persistently
	// nonzero value is an operator signal.
	RetryBacklog int `json:"retry_backlog"`
	// Refreshes counts applied refreshes (incremental, including
	// empty-delta fast paths, counted separately in EmptyRefreshes);
	// Primes counts lazy refresh-state builds (each linear in the base,
	// paid once per view per life); Drops counts views dropped because
	// the delta could not be applied incrementally.
	Refreshes      uint64 `json:"refreshes"`
	EmptyRefreshes uint64 `json:"empty_refreshes"`
	Primes         uint64 `json:"primes"`
	Drops          uint64 `json:"drops"`
	// RefreshSeconds/ReadBytes/WriteBytes accumulate the simulated cost
	// of all refresh work (priming included) — the numerator of the
	// ingestspeed sublinearity check.
	RefreshSeconds    float64 `json:"refresh_seconds"`
	RefreshReadBytes  int64   `json:"refresh_read_bytes"`
	RefreshWriteBytes int64   `json:"refresh_write_bytes"`
}

// IngestStats returns a consistent snapshot of the ingest counters.
func (d *DeepSea) IngestStats() IngestStats {
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	st := IngestStats{
		Appends:           s.appends,
		AppendedRows:      s.appendRows,
		TrackedViews:      len(s.views),
		RetryBacklog:      len(s.retry),
		Refreshes:         s.refreshes,
		EmptyRefreshes:    s.emptyRefreshes,
		Primes:            s.primes,
		Drops:             s.drops,
		RefreshSeconds:    s.refreshCost.Seconds,
		RefreshReadBytes:  s.refreshCost.ReadBytes,
		RefreshWriteBytes: s.refreshCost.WriteBytes,
	}
	for _, m := range s.views {
		if m.stale {
			st.StaleViews++
		}
	}
	return st
}

// staleView is the rewriter's staleness hook: stale view content must
// not serve queries.
func (d *DeepSea) staleView(id string) bool {
	d.ingest.mu.Lock()
	defer d.ingest.mu.Unlock()
	m := d.ingest.views[id]
	return m != nil && m.stale
}

// ingestDropped reports whether the ingest path dropped the view (its
// stored content predates an append); speculative re-materialization
// checks it before healing a quarantined file.
func (d *DeepSea) ingestDropped(id string) bool {
	d.ingest.mu.Lock()
	defer d.ingest.mu.Unlock()
	return d.ingest.dropped[id]
}

// AppendReport summarises how one batched append was processed.
type AppendReport struct {
	// Table is the grown base table; NewCount its post-append row count.
	Table    string
	NewCount int64
	// StaleViews lists the dependent views marked stale.
	StaleViews []string
	// Refreshed and Dropped list the views brought fresh incrementally /
	// dropped during the synchronous (inline-mode) refresh: this
	// append's dependents, plus any retry-backlog views earlier inline
	// rounds left still-stale. Both empty when Deferred.
	Refreshed []string
	Dropped   []string
	// Deferred reports the refreshes were enqueued to the background
	// maintenance pool (Config.MaintWorkers > 0) instead of applied
	// inline.
	Deferred bool
	// RefreshCost is the simulated cost of the inline refresh work.
	RefreshCost engine.Cost
}

// Append journals a batch of new rows for a base table, marks every
// dependent materialized view stale, invalidates their cached results,
// and brings them fresh — synchronously in inline mode, via the
// maintenance pool's refresh band in background mode. Requires row
// execution (Config.ExecuteRows); estimate-only instances have no rows
// to propagate.
func (d *DeepSea) Append(table string, rows []relation.Row) (AppendReport, error) {
	if !d.Cfg.ExecuteRows {
		return AppendReport{}, fmt.Errorf("core: ingest requires row execution (Config.ExecuteRows)")
	}
	if len(rows) == 0 {
		counts := d.Eng.BaseCounts([]string{table})
		return AppendReport{Table: table, NewCount: counts[table]}, nil
	}
	// appendMu makes apply + journal + append-log one atomic step, so
	// journal replay order always matches in-memory apply order (see the
	// field comment).
	d.ingest.appendMu.Lock()
	newCount, err := d.Eng.AppendBase(table, rows)
	if err != nil {
		d.ingest.appendMu.Unlock()
		return AppendReport{}, err
	}
	schema := d.Eng.BaseTable(table).Schema
	deltaTbl := &relation.Table{Schema: schema, Rows: rows}
	d.appendRecord(datastore.Record{Op: "append_rows", Rows: deltaTbl, Size: newCount})

	ids := d.markDependentsStale(table, deltaTbl)
	d.ingest.appendMu.Unlock()
	for _, id := range ids {
		// Generation bump: unreaches every cached result whose plan read
		// the view (defense in depth next to the count-qualified keys).
		d.Pool.Invalidate(id)
	}
	rep := AppendReport{Table: table, NewCount: newCount, StaleViews: ids}
	if d.maint != nil {
		for _, id := range ids {
			d.enqueueRefresh(id)
		}
		rep.Deferred = len(ids) > 0
		return rep, nil
	}
	// Inline refresh covers this append's dependents plus the retry
	// backlog: views an earlier inline round left still-stale have no
	// other retry trigger.
	for _, id := range d.inlineRefreshSet(ids) {
		held := d.views.lockViews([]string{id})
		cost, outcome := d.applyRefreshLocked(id)
		d.views.unlockViews(held)
		rep.RefreshCost.Add(cost)
		switch outcome {
		case refreshApplied:
			rep.Refreshed = append(rep.Refreshed, id)
		case refreshDropped:
			rep.Dropped = append(rep.Dropped, id)
		}
	}
	if rep.RefreshCost.Seconds > 0 {
		d.Eng.Advance(rep.RefreshCost.Seconds)
	}
	return rep, nil
}

// markDependentsStale records the append in the ingest log and flips the
// stale flag of every dependent view, journaling each transition.
// Returns the dependents sorted by id. Must not be called with any
// ranked lock held (it takes only the ingest leaf lock).
func (d *DeepSea) markDependentsStale(table string, delta *relation.Table) []string {
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appends++
	s.appendRows += uint64(len(delta.Rows))
	if cur := s.appLog[table]; cur == nil {
		cp := &relation.Table{Schema: delta.Schema}
		cp.Rows = append([]relation.Row(nil), delta.Rows...)
		s.appLog[table] = cp
	} else {
		cur.Rows = append(cur.Rows, delta.Rows...)
	}
	var ids []string
	for id := range s.byTable[table] {
		ids = append(ids, id)
		m := s.views[id]
		if m != nil && !m.stale {
			m.stale = true
			d.appendRecord(datastore.Record{Op: "ingest_stale", View: id})
		}
	}
	sort.Strings(ids)
	return ids
}

// refreshTask is the maintenance payload of one view's refresh.
type refreshTask struct{ viewID string }

// enqueueRefresh queues a background refresh of one stale view,
// deduplicated by view × pool generation (Invalidate bumped the
// generation, so successive appends enqueue distinct keys and the
// apply-side fast path makes the extras no-ops).
func (d *DeepSea) enqueueRefresh(id string) {
	if d.maint == nil {
		return
	}
	d.maint.Push(&maintain.Task{
		Key:     fmt.Sprintf("refresh:%s@%d", id, d.Pool.Generation(id)),
		Kind:    maintain.KindRefresh,
		Payload: &refreshTask{viewID: id},
	})
}

// refreshOutcome classifies one applyRefreshLocked call.
type refreshOutcome int

const (
	// refreshNoop: the view was not registered or already fresh.
	refreshNoop refreshOutcome = iota
	// refreshApplied: the view is fresh again (incrementally, or the
	// delta produced no content change).
	refreshApplied
	// refreshDropped: the view (files and metadata) was dropped.
	refreshDropped
	// refreshStillStale: the view is still stale (pinned files blocked a
	// drop, a write fault interrupted the apply, or appends kept racing
	// past the retry bound). In background mode a retry is enqueued; in
	// inline mode the view joins the retry backlog, drained by the next
	// Append to any table.
	refreshStillStale
)

// maxRefreshRounds bounds how many times one refresh call chases
// concurrent appends before handing back (still stale, retried later).
const maxRefreshRounds = 8

// applyRefreshLocked brings one stale view fresh. Caller holds the
// view's exclusive stripe. The returned cost covers delta computation,
// priming and the writes that applied the result; the caller advances
// the clock.
func (d *DeepSea) applyRefreshLocked(id string) (engine.Cost, refreshOutcome) {
	var total engine.Cost
	defer func() {
		if total.Seconds > 0 || total.ReadBytes > 0 || total.WriteBytes > 0 {
			d.ingest.mu.Lock()
			d.ingest.refreshCost.Add(total)
			d.ingest.mu.Unlock()
		}
	}()
	for round := 0; ; round++ {
		d.ingest.mu.Lock()
		m := d.ingest.views[id]
		stale := m != nil && m.stale
		d.ingest.mu.Unlock()
		if m == nil || !stale {
			return total, refreshNoop
		}
		if d.Cfg.RematOnAppend || m.plan == nil || m.marks == nil {
			if d.dropStaleView(id) {
				return total, refreshDropped
			}
			return total, d.refreshRetry(id)
		}
		snaps, err := d.Eng.BaseSnapshots(m.tables)
		if err != nil {
			// A table left the catalog: the plan is unanswerable.
			if d.dropStaleView(id) {
				return total, refreshDropped
			}
			return total, d.refreshRetry(id)
		}
		counts := make(map[string]int64, len(snaps))
		prefixes := make(map[string]*relation.Table, len(snaps))
		deltas := make(map[string]*relation.Table)
		valid := true
		for t, snap := range snaps {
			n := int64(len(snap.Rows))
			counts[t] = n
			mark := m.marks[t]
			if mark > n {
				valid = false
				break
			}
			prefixes[t] = &relation.Table{Schema: snap.Schema, Rows: snap.Rows[:mark]}
			if mark < n {
				deltas[t] = &relation.Table{Schema: snap.Schema, Rows: snap.Rows[mark:]}
			}
		}
		if !valid {
			if d.dropStaleView(id) {
				return total, refreshDropped
			}
			return total, d.refreshRetry(id)
		}
		if len(deltas) == 0 {
			// Marked stale but nothing actually grew past the marks (a
			// raced refresh already consumed the delta).
			if d.finalizeRefresh(id, m, counts, true) {
				return total, refreshApplied
			}
			if round >= maxRefreshRounds {
				return total, d.refreshRetry(id)
			}
			continue
		}
		if m.rp == nil {
			// Lazy priming: evaluate the plan once over the old base
			// prefixes to learn per-node sizes (and retained aggregate
			// states). Linear in the base, paid once per view per life;
			// steady-state refreshes after it are delta-sized.
			rp, pc, perr := d.Eng.PrimeRefresh(m.plan, prefixes)
			total.Add(pc)
			if perr != nil {
				if d.dropStaleView(id) {
					return total, refreshDropped
				}
				return total, d.refreshRetry(id)
			}
			m.rp = rp
			d.ingest.mu.Lock()
			d.ingest.primes++
			d.ingest.mu.Unlock()
		}
		res, derr := d.Eng.DeltaApply(m.rp, snaps, deltas)
		if derr != nil {
			if d.dropStaleView(id) {
				return total, refreshDropped
			}
			return total, d.refreshRetry(id)
		}
		total.Add(res.Cost)
		empty := false
		switch res.Kind {
		case engine.DeltaRemat:
			if d.dropStaleView(id) {
				return total, refreshDropped
			}
			return total, d.refreshRetry(id)
		case engine.DeltaEmpty:
			empty = true
		case engine.DeltaAppend:
			c, aerr := d.applyViewAppend(id, res.Rows)
			total.Add(c)
			if aerr != nil {
				// A write fault mid-apply is not retryable: each
				// AppendMaterialized is atomic per file, but the
				// multi-file apply is not — files extended before the
				// fault already hold the delta, and re-running the apply
				// (marks unchanged, same delta) would append it to them a
				// second time. The only safe completion is dropping the
				// view. Poison the marks first so that if pinned files
				// block the drop, every later attempt drops instead of
				// re-applying. (Crash recovery is safe the same way: the
				// view was journaled stale, and recovery drops stale
				// views.)
				m.marks = nil
				m.rp = nil
				if d.dropStaleView(id) {
					return total, refreshDropped
				}
				return total, d.refreshRetry(id)
			}
		case engine.DeltaAgg:
			c, aerr := d.applyViewReplace(id, res.Rows)
			total.Add(c)
			if aerr != nil {
				// Unlike the append path, a partial replace IS retryable:
				// WriteMaterialized rewrites whole files, the retained
				// states only advance on success (MergeAggStates copies),
				// so a retry recomputes the same content and overwrites
				// every file idempotently.
				return total, d.refreshRetry(id)
			}
			m.rp.States = res.States
		}
		if res.Sizes != nil {
			if _, ok := res.Sizes[m.rp.Plan]; !ok {
				// The aggregate root's size is absent from an empty-delta
				// result; carry the old value forward.
				if old, ok := m.rp.Sizes[m.rp.Plan]; ok {
					res.Sizes[m.rp.Plan] = old
				}
			}
			m.rp.Sizes = res.Sizes
		}
		if d.finalizeRefresh(id, m, counts, empty) {
			return total, refreshApplied
		}
		if round >= maxRefreshRounds {
			return total, d.refreshRetry(id)
		}
	}
}

// refreshRetry re-enqueues a still-stale view in background mode; in
// inline mode it joins the retry backlog the next Append drains.
func (d *DeepSea) refreshRetry(id string) refreshOutcome {
	if d.maint != nil {
		d.enqueueRefresh(id)
	} else {
		s := d.ingest
		s.mu.Lock()
		s.retry[id] = true
		s.mu.Unlock()
	}
	return refreshStillStale
}

// inlineRefreshSet merges one append's dependent views with the inline
// retry backlog (drained here; a view that stays stale re-enters it via
// refreshRetry). Returns the union sorted by id.
func (d *DeepSea) inlineRefreshSet(ids []string) []string {
	s := d.ingest
	s.mu.Lock()
	if len(s.retry) == 0 {
		s.mu.Unlock()
		return ids
	}
	set := make(map[string]bool, len(ids)+len(s.retry))
	for _, id := range ids {
		set[id] = true
	}
	for id := range s.retry {
		set[id] = true
	}
	s.retry = make(map[string]bool)
	s.mu.Unlock()
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// finalizeRefresh publishes a refresh's new consistency point: marks
// move to the refreshed counts (journaled), and the stale flag clears
// only if no further append landed meanwhile — the count re-read and the
// flag write share the ingest lock with Append's stale-marking, so a
// racing append either moves the counts first (the flag stays set) or
// marks stale after (overwriting the clear). Reports whether the view
// came out fresh. Counts the refresh.
func (d *DeepSea) finalizeRefresh(id string, m *ingestMeta, counts map[string]int64, empty bool) bool {
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	m.marks = counts
	d.appendRecord(datastore.Record{Op: "ingest_marks", View: id, Tables: m.tables, Marks: counts})
	cur := d.Eng.BaseCounts(m.tables)
	fresh := countsEqual(cur, counts, m.tables)
	if fresh {
		m.stale = false
		delete(s.retry, id)
		s.refreshes++
		if empty {
			s.emptyRefreshes++
		}
	}
	return fresh
}

// countsEqual reports whether two per-table count maps agree on every
// listed table.
func countsEqual(a, b map[string]int64, tables []string) bool {
	for _, t := range tables {
		if a[t] != b[t] {
			return false
		}
	}
	return true
}

// applyViewAppend extends the view's stored files with the delta output
// rows: the whole-view file gains all of them, each fragment gains the
// rows falling in its interval. Caller holds the view's stripe.
func (d *DeepSea) applyViewAppend(id string, delta *relation.Table) (engine.Cost, error) {
	var cost engine.Cost
	pv := d.Pool.View(id)
	if pv == nil || delta == nil || len(delta.Rows) == 0 {
		return cost, nil
	}
	if pv.Path != "" {
		c, err := d.Eng.AppendMaterialized(pv.Path, delta.Rows)
		cost.Add(c)
		if err != nil {
			return cost, err
		}
		newBytes := pv.Size + delta.Bytes()
		d.Pool.SetViewFile(id, pv.Path, newBytes)
		vs := d.Stats.View(id)
		vs.Size = newBytes
		vs.Measured = true
		d.journalVStat(vs)
	}
	for _, attr := range pv.PartAttrs() {
		part := pv.Parts[attr]
		ai := delta.Schema.ColIndex(attr)
		if ai < 0 {
			continue
		}
		pstat := d.Stats.Partition(id, attr, part.Dom)
		for _, fr := range part.Fragments() {
			var sub []relation.Row
			for _, row := range delta.Rows {
				if fr.Iv.Contains(row[ai].I) {
					sub = append(sub, row)
				}
			}
			if len(sub) == 0 {
				continue
			}
			c, err := d.Eng.AppendMaterialized(fr.Path, sub)
			cost.Add(c)
			if err != nil {
				return cost, err
			}
			newBytes := fr.Size + (&relation.Table{Schema: delta.Schema, Rows: sub}).Bytes()
			d.Pool.AddFragment(id, attr, partition.Fragment{Iv: fr.Iv, Path: fr.Path, Size: newBytes})
			fs := pstat.Frag(fr.Iv)
			fs.Size = newBytes
			fs.Measured = true
			d.journalFStat(id, attr, fs)
		}
	}
	return cost, nil
}

// applyViewReplace rewrites the view's stored files with the merged
// content (aggregate roots: group states changed in place, so the files
// cannot be extended). Caller holds the view's stripe.
func (d *DeepSea) applyViewReplace(id string, content *relation.Table) (engine.Cost, error) {
	var cost engine.Cost
	pv := d.Pool.View(id)
	if pv == nil || content == nil {
		return cost, nil
	}
	if pv.Path != "" {
		c, err := d.Eng.WriteMaterialized(pv.Path, content)
		cost.Add(c)
		if err != nil {
			return cost, err
		}
		d.Pool.SetViewFile(id, pv.Path, content.Bytes())
		vs := d.Stats.View(id)
		vs.Size = content.Bytes()
		vs.Measured = true
		d.journalVStat(vs)
	}
	for _, attr := range pv.PartAttrs() {
		part := pv.Parts[attr]
		ai := content.Schema.ColIndex(attr)
		if ai < 0 {
			continue
		}
		pstat := d.Stats.Partition(id, attr, part.Dom)
		for _, fr := range part.Fragments() {
			sub := relation.NewTable(content.Schema)
			for _, row := range content.Rows {
				if fr.Iv.Contains(row[ai].I) {
					sub.Append(row)
				}
			}
			c, err := d.Eng.WriteMaterialized(fr.Path, sub)
			cost.Add(c)
			if err != nil {
				return cost, err
			}
			d.Pool.AddFragment(id, attr, partition.Fragment{Iv: fr.Iv, Path: fr.Path, Size: sub.Bytes()})
			fs := pstat.Frag(fr.Iv)
			fs.Size = sub.Bytes()
			fs.Measured = true
			d.journalFStat(id, attr, fs)
		}
	}
	return cost, nil
}

// dropStaleView removes a view the refresh cannot maintain: files,
// pool entries and ingest metadata, with a tombstone so a concurrent
// heal cannot resurrect the pre-append content. Files pinned by an
// in-flight execution block the drop (that query planned against them);
// the view then stays stale — unreadable by new queries — until a retry
// finds the pins released. Caller holds the view's stripe. Reports
// whether the drop completed.
func (d *DeepSea) dropStaleView(id string) bool {
	pv := d.Pool.View(id)
	if pv != nil {
		if pv.Path != "" && d.isPinned(pv.Path) {
			return false
		}
		for _, attr := range pv.PartAttrs() {
			for _, fr := range pv.Parts[attr].Fragments() {
				if d.isPinned(fr.Path) {
					return false
				}
			}
		}
		if pv.Path != "" {
			d.Eng.DeleteMaterialized(pv.Path)
			d.Pool.DropViewFile(id)
		}
		for _, attr := range pv.PartAttrs() {
			for _, fr := range pv.Parts[attr].Fragments() {
				d.Eng.DeleteMaterialized(fr.Path)
				d.Pool.RemoveFragment(id, attr, fr.Iv)
			}
		}
		d.Pool.GCViews(id)
	}
	s := d.ingest
	s.mu.Lock()
	if m := s.views[id]; m != nil {
		for _, t := range m.tables {
			delete(s.byTable[t], id)
		}
		delete(s.views, id)
	}
	s.dropped[id] = true
	delete(s.retry, id)
	s.drops++
	s.mu.Unlock()
	return true
}

// registerIngestView records refresh metadata for a freshly
// materialized view. planCounts are the base-table row counts captured
// during the proposing query's planning; if they still match the
// current counts, no append landed between planning and now (counts are
// monotone), so the captured content is exactly consistent at
// planCounts. Otherwise an append raced the materialization and the
// content's consistency point is unknowable — the view registers stale
// with invalid marks, and its first refresh drops it. fromFiles marks
// content rebuilt from the view's own stored files (re-partitioning),
// whose consistency point is whatever the existing metadata says.
// Caller holds the view's stripe.
func (d *DeepSea) registerIngestView(id string, plan query.Node, planCounts map[string]int64, fromFiles bool) {
	if !d.Cfg.ExecuteRows || plan == nil {
		return
	}
	tables := append([]string(nil), query.BaseTables(plan)...)
	sort.Strings(tables)
	if len(tables) == 0 {
		return
	}
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dropped, id)
	if m := s.views[id]; m != nil && fromFiles {
		// Content rebuilt from this view's own files: same rows, same
		// consistency point; the plan (absent after recovery) is now
		// known again.
		m.plan = plan
		m.rp = nil
		for _, t := range tables {
			if s.byTable[t] == nil {
				s.byTable[t] = make(map[string]bool)
			}
			s.byTable[t][id] = true
		}
		return
	}
	m := &ingestMeta{plan: plan, tables: tables}
	cur := d.Eng.BaseCounts(tables)
	if countsEqual(cur, planCounts, tables) {
		marks := make(map[string]int64, len(tables))
		for _, t := range tables {
			marks[t] = planCounts[t]
		}
		m.marks = marks
		d.appendRecord(datastore.Record{Op: "ingest_marks", View: id, Tables: tables, Marks: marks})
	} else {
		m.stale = true
		d.appendRecord(datastore.Record{Op: "ingest_stale", View: id})
	}
	s.views[id] = m
	for _, t := range tables {
		if s.byTable[t] == nil {
			s.byTable[t] = make(map[string]bool)
		}
		s.byTable[t][id] = true
	}
	if m.stale {
		if d.maint != nil {
			d.enqueueRefresh(id)
		} else {
			// Inline mode: without a backlog entry this view's first
			// refresh (which will drop it — no valid marks) would only
			// ever trigger on an append to one of its own tables.
			s.retry[id] = true
		}
	}
}

// ingestFragGuard reports whether a captured-sourced fragment write for
// the view is consistent: the view is untracked, or it is fresh and its
// marks equal the proposing query's planning-time counts (so the
// captured rows describe exactly the content the marks certify).
// File-sourced writes (refinement splits, merges) need no guard — they
// rearrange content already at the marks.
func (d *DeepSea) ingestFragGuard(id string, planCounts map[string]int64) bool {
	d.ingest.mu.Lock()
	defer d.ingest.mu.Unlock()
	m := d.ingest.views[id]
	if m == nil {
		return true
	}
	if m.stale || m.marks == nil {
		return false
	}
	return countsEqual(m.marks, planCounts, m.tables)
}

// ingestSnap is a view's refresh metadata in a snapshot (plans and
// primed state are rebuilt lazily, not persisted).
type ingestSnap struct {
	View   string           `json:"view"`
	Tables []string         `json:"tables,omitempty"`
	Marks  map[string]int64 `json:"marks,omitempty"`
	Stale  bool             `json:"stale,omitempty"`
}

// appendSnap is one base table's accumulated appended rows in a
// snapshot.
type appendSnap struct {
	Table string          `json:"table"`
	Rows  *relation.Table `json:"rows"`
}

// ingestSnapshot captures the registry for a snapshot. Caller quiesced
// the instance (Snapshot's locks).
func (d *DeepSea) ingestSnapshot() (appends []appendSnap, metas []ingestSnap) {
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	tables := make([]string, 0, len(s.appLog))
	for t := range s.appLog {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		appends = append(appends, appendSnap{Table: t, Rows: s.appLog[t]})
	}
	ids := make([]string, 0, len(s.views))
	for id := range s.views {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := s.views[id]
		metas = append(metas, ingestSnap{View: id, Tables: m.tables, Marks: m.marks, Stale: m.stale})
	}
	return appends, metas
}

// restoreIngestMeta rebuilds one view's refresh metadata during
// recovery. Recovered metas are plan-less: a view whose tables grow
// after the restart cannot be refreshed and is dropped instead, which
// is the self-healing contract of the journal-only refresh state.
func (d *DeepSea) restoreIngestMeta(id string, tables []string, marks map[string]int64, stale bool) {
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.views[id]
	if m == nil {
		m = &ingestMeta{}
		s.views[id] = m
	}
	if len(tables) > 0 {
		m.tables = append([]string(nil), tables...)
		for _, t := range m.tables {
			if s.byTable[t] == nil {
				s.byTable[t] = make(map[string]bool)
			}
			s.byTable[t][id] = true
		}
	}
	m.marks = marks
	m.stale = stale
	m.plan, m.rp = nil, nil
}

// markIngestStale flips a recovered view's stale flag (journal replay
// of an ingest_stale record).
func (d *DeepSea) markIngestStale(id string) {
	s := d.ingest
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.views[id]
	if m == nil {
		m = &ingestMeta{}
		s.views[id] = m
	}
	m.stale = true
}

// bufferRecoveredAppend stashes a recovered append (snapshot payload or
// append_rows journal record) until the host re-adds the base catalog;
// ApplyRecoveredAppends replays the stash.
func (d *DeepSea) bufferRecoveredAppend(table string, rows *relation.Table) {
	if rows == nil || len(rows.Rows) == 0 {
		return
	}
	if cur := d.recoveredAppends[table]; cur == nil {
		cp := &relation.Table{Schema: rows.Schema}
		cp.Rows = append([]relation.Row(nil), rows.Rows...)
		d.recoveredAppends[table] = cp
		d.recoveredAppendOrder = append(d.recoveredAppendOrder, table)
	} else {
		cur.Rows = append(cur.Rows, rows.Rows...)
	}
}

// RecoveredIngest reports what ApplyRecoveredAppends did.
type RecoveredIngest struct {
	// Tables and Rows count the base tables grown and rows re-appended
	// from recovered state.
	Tables int
	Rows   int
	// Dropped lists views removed because their stored content could not
	// be proven consistent with the recovered base counts (stale at
	// crash time, marks mismatching, or untracked while appends exist).
	Dropped []string
}

// ApplyRecoveredAppends replays the appends recovered from the
// datastore onto the host-re-added base tables and reconciles the view
// pool against the result: a view survives only if its journaled marks
// match the recovered counts exactly — anything stale, mismatched or
// untracked is dropped (recovered metas carry no plan, so incremental
// refresh is impossible and dropping is the only safe completion).
// Call after every AddBaseTable and before serving traffic; recovered
// rows are already durable, so the replay journals nothing.
func (d *DeepSea) ApplyRecoveredAppends() (RecoveredIngest, error) {
	var info RecoveredIngest
	hadAppends := len(d.recoveredAppendOrder) > 0
	for _, table := range d.recoveredAppendOrder {
		rows := d.recoveredAppends[table]
		if _, err := d.Eng.AppendBase(table, rows.Rows); err != nil {
			return info, fmt.Errorf("core: replay recovered append for %s: %w", table, err)
		}
		info.Tables++
		info.Rows += len(rows.Rows)
		// The replayed rows flow into the append log so the next snapshot
		// carries the full accumulated suffix.
		s := d.ingest
		s.mu.Lock()
		if cur := s.appLog[table]; cur == nil {
			s.appLog[table] = rows
		} else {
			cur.Rows = append(cur.Rows, rows.Rows...)
		}
		s.mu.Unlock()
	}
	d.recoveredAppends = make(map[string]*relation.Table)
	d.recoveredAppendOrder = nil

	// Reconcile: collect the verdicts under the ingest lock, then drop
	// under the view stripes.
	s := d.ingest
	s.mu.Lock()
	var drop []string
	for id, m := range s.views {
		counts := d.Eng.BaseCounts(m.tables)
		if m.stale || m.marks == nil || len(m.tables) == 0 || !countsEqual(counts, m.marks, m.tables) {
			drop = append(drop, id)
		}
	}
	s.mu.Unlock()
	if hadAppends {
		// Pool views with no refresh metadata at all: their base tables
		// are unknown, so with any recovered appends in play their
		// content cannot be trusted.
		for _, pv := range d.Pool.Views() {
			d.ingest.mu.Lock()
			_, tracked := d.ingest.views[pv.ID]
			d.ingest.mu.Unlock()
			if !tracked {
				drop = append(drop, pv.ID)
			}
		}
	}
	sort.Strings(drop)
	for _, id := range drop {
		held := d.views.lockViews([]string{id})
		if d.dropStaleView(id) {
			info.Dropped = append(info.Dropped, id)
		}
		d.views.unlockViews(held)
	}
	return info, nil
}
