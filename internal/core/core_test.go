package core

import (
	"fmt"
	"math/rand"
	"testing"

	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

const (
	testDomLo = 0
	testDomHi = 9999
)

func salesSchema() relation.Schema {
	return relation.Schema{
		Name: "sales",
		Cols: []relation.Column{
			// Width scales rows so that byte costs are paper-scale: the
			// 20k-row table models ~40 GB, most of it in the padding
			// column that projections drop (like the real generator).
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: testDomLo, Hi: testDomHi, Width: 1 << 18},
			{Name: "ss_qty", Type: relation.Int, Width: 1 << 18},
			{Name: "ss_pad", Type: relation.String, Width: 3 << 19},
		},
	}
}

func itemSchema() relation.Schema {
	return relation.Schema{
		Name: "item",
		Cols: []relation.Column{
			{Name: "i_item_sk", Type: relation.Int, Ordered: true, Lo: testDomLo, Hi: testDomHi, Width: 1 << 18},
			{Name: "i_category", Type: relation.String, Width: 1 << 18},
		},
	}
}

func addTestTables(d *DeepSea) {
	rng := rand.New(rand.NewSource(7))
	sales := relation.NewTable(salesSchema())
	for i := 0; i < 20000; i++ {
		sales.Append(relation.Row{
			relation.IntVal(rng.Int63n(testDomHi + 1)),
			relation.IntVal(rng.Int63n(50) + 1),
			relation.StringVal(""),
		})
	}
	d.AddBaseTable(sales)
	item := relation.NewTable(itemSchema())
	cats := []string{"books", "music", "video", "games", "food"}
	for i := 0; i <= testDomHi; i++ {
		item.Append(relation.Row{
			relation.IntVal(int64(i)),
			relation.StringVal(cats[i%len(cats)]),
		})
	}
	d.AddBaseTable(item)
}

// q30 builds the canonical template: aggregate over a range selection
// over a projected join — the selection deliberately NOT pushed below
// the join, the projection fused map-side like the real templates.
func q30(lo, hi int64) query.Node {
	return &query.Aggregate{
		Child: &query.Select{
			Child: &query.Project{
				Child: &query.Join{
					Left:  query.NewScan("sales", salesSchema()),
					Right: query.NewScan("item", itemSchema()),
					LCol:  "ss_item_sk",
					RCol:  "i_item_sk",
				},
				Cols: []string{"ss_item_sk", "ss_qty", "i_category"},
			},
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(lo, hi)}},
		},
		GroupBy: []string{"i_category"},
		Aggs: []query.AggSpec{
			{Func: query.Count, As: "n"},
			{Func: query.Sum, Col: "ss_qty", As: "total_qty"},
		},
	}
}

// testConfig returns a DeepSea config tuned for the small test tables: a
// small block size so fragments can form.
func testConfig() Config {
	cfg := DefaultConfig()
	cm := engine.DefaultCostModel()
	cfg.CostModel = &cm
	cfg.MinFragBytes = 64 << 20 // 64 MB at paper scale
	return cfg
}

func newTestSystem(t *testing.T, mutate func(*Config)) *DeepSea {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d := New(cfg)
	addTestTables(d)
	return d
}

func run(t *testing.T, d *DeepSea, q query.Node) QueryReport {
	t.Helper()
	rep, err := d.ProcessQuery(q)
	if err != nil {
		t.Fatalf("ProcessQuery: %v", err)
	}
	return rep
}

func TestHiveModeNeverMaterializes(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.Materialize = false })
	for i := 0; i < 3; i++ {
		rep := run(t, d, q30(100, 600))
		if rep.Rewritten || len(rep.MaterializedViews) > 0 {
			t.Fatal("vanilla mode materialized or rewrote")
		}
	}
	if d.Pool.TotalSize() != 0 {
		t.Error("vanilla mode stored data")
	}
}

func TestNPMaterializesAndReuses(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.Partition = PartitionNone })
	r1 := run(t, d, q30(100, 600))
	if len(r1.MaterializedViews) == 0 {
		t.Fatal("first query did not materialize the join view")
	}
	r2 := run(t, d, q30(2000, 2500))
	if !r2.Rewritten {
		t.Fatal("second query did not reuse the view")
	}
	if r2.ExecCost.Seconds >= r1.ExecCost.Seconds {
		t.Errorf("reuse cost %.1f >= first cost %.1f", r2.ExecCost.Seconds, r1.ExecCost.Seconds)
	}
}

func TestAdaptivePartitioningAlignsToQuery(t *testing.T) {
	d := newTestSystem(t, nil)
	r1 := run(t, d, q30(1000, 1999)) // 10% selectivity
	if len(r1.MaterializedViews) == 0 {
		t.Fatal("view not materialized")
	}
	// The join view must be partitioned with boundaries at 1000/2000.
	var found bool
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			for _, f := range part.Fragments() {
				if f.Iv == interval.New(1000, 1999) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no fragment aligned to the query range [1000,1999]")
	}

	// A query over a subrange must read exactly one fragment, no
	// remainder. (An exact repeat would be answered by the materialized
	// aggregate view instead — also correct, but not what we probe here.)
	r2 := run(t, d, q30(1100, 1899))
	if !r2.Rewritten || r2.FragmentsRead != 1 || r2.RemainderGaps != 0 {
		t.Errorf("subrange query: rewritten=%v frags=%d gaps=%d",
			r2.Rewritten, r2.FragmentsRead, r2.RemainderGaps)
	}
	if r2.ExecCost.Seconds >= r1.ExecCost.Seconds/2 {
		t.Errorf("fragment reuse not cheap enough: %.1f vs %.1f",
			r2.ExecCost.Seconds, r1.ExecCost.Seconds)
	}
}

func TestProgressiveRefinementSplitsFragments(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.Partition = PartitionAdaptive })
	run(t, d, q30(0, 4999)) // creates view partitioned at 5000
	fragsBefore := totalFragments(d)
	// Repeated queries inside the cold half accumulate benefit until the
	// split cost is offset (Section 7.2's filter); the refinement must
	// eventually trigger — the paper's Figure 10 shows the same
	// multi-query amortization.
	fragsAfter := fragsBefore
	for i := 0; i < 15 && fragsAfter <= fragsBefore; i++ {
		run(t, d, q30(7000, 7999+int64(i))) // slight jitter avoids the aggregate-view shortcut
		fragsAfter = totalFragments(d)
	}
	if fragsAfter <= fragsBefore {
		t.Errorf("no refinement after 15 queries: %d -> %d fragments", fragsBefore, fragsAfter)
	}
	// Horizontal mode must keep fragments disjoint.
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			if err := part.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestOverlappingRefinementKeepsParents(t *testing.T) {
	d := newTestSystem(t, nil) // default overlap mode
	run(t, d, q30(0, 4999))
	run(t, d, q30(7000, 7999))
	run(t, d, q30(7000, 7999))
	// Overlap mode: some partition may now be non-disjoint but must
	// still validate as overlapping.
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			if !part.Overlapping {
				t.Error("partition not marked overlapping in overlap mode")
			}
			if err := part.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
}

func totalFragments(d *DeepSea) int {
	n := 0
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			n += part.NumFragments()
		}
	}
	return n
}

func TestEquiDepthPartitioning(t *testing.T) {
	d := newTestSystem(t, func(c *Config) {
		c.Partition = PartitionEquiDepth
		c.EquiDepthK = 6
		c.MaxFragFraction = 0
	})
	run(t, d, q30(100, 600))
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			if part.NumFragments() != 6 {
				t.Errorf("equi-depth fragments = %d, want 6", part.NumFragments())
			}
			// Fragment sizes should be roughly equal (true equi-depth).
			var mn, mx int64 = 1 << 62, 0
			for _, f := range part.Fragments() {
				if f.Size < mn {
					mn = f.Size
				}
				if f.Size > mx {
					mx = f.Size
				}
			}
			if mn == 0 || float64(mx)/float64(mn) > 1.5 {
				t.Errorf("equi-depth sizes too skewed: min=%d max=%d", mn, mx)
			}
		}
	}
	// Equi-depth never refines.
	before := totalFragments(d)
	run(t, d, q30(3000, 3100))
	run(t, d, q30(3000, 3100))
	if totalFragments(d) != before {
		t.Error("equi-depth refined its partitioning")
	}
}

func TestPoolLimitEnforcedEventually(t *testing.T) {
	// Tiny pool: after each query's settlement the pool must respect
	// Smax (transient overshoot during a query is allowed).
	d := newTestSystem(t, func(c *Config) { c.Smax = 2 << 30 })
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		lo := rng.Int63n(9000)
		run(t, d, q30(lo, lo+999))
		if got := d.Pool.TotalSize(); got > d.Cfg.Smax {
			// The selection is a strict prefix under Smax, so after
			// eviction the pool is within the limit except for items
			// created this round that the next selection will handle.
			t.Logf("pool size %d exceeds Smax %d at query %d (transient)", got, d.Cfg.Smax, i)
		}
	}
	// Run one more query; afterwards the pool must be within 2x Smax
	// (strict-prefix selection can keep at most Smax of ranked items
	// plus this round's creations).
	run(t, d, q30(0, 999))
	if got := d.Pool.TotalSize(); got > 2*d.Cfg.Smax {
		t.Errorf("pool size %d far exceeds Smax %d", got, d.Cfg.Smax)
	}
}

func TestEvictionRemovesFiles(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.Smax = 1 << 30 })
	var evicted int
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		lo := rng.Int63n(9000)
		rep := run(t, d, q30(lo, lo+999))
		evicted += len(rep.Evicted)
	}
	if evicted == 0 {
		t.Skip("no evictions triggered; pool larger than workload footprint")
	}
	// FS and pool accounting must agree.
	if d.Eng.FS().TotalSize() != d.Pool.TotalSize() {
		t.Errorf("FS size %d != pool size %d", d.Eng.FS().TotalSize(), d.Pool.TotalSize())
	}
}

// The heavyweight correctness property: across an evolving workload, every
// strategy returns exactly the rows a vanilla execution returns.
func TestAllStrategiesProduceCorrectResults(t *testing.T) {
	strategies := map[string]func(*Config){
		"NP":      func(c *Config) { c.Partition = PartitionNone },
		"E-6":     func(c *Config) { c.Partition = PartitionEquiDepth; c.EquiDepthK = 6; c.MaxFragFraction = 0 },
		"DS-H":    func(c *Config) { c.Partition = PartitionAdaptive },
		"DS":      nil,
		"NR":      func(c *Config) { c.Partition = PartitionAdaptiveNoRepartition },
		"N":       func(c *Config) { c.Selection = SelectNectar },
		"N+":      func(c *Config) { c.Selection = SelectNectarPlus },
		"DS-raw":  func(c *Config) { c.Selection = SelectDeepSeaRawHits },
		"DS-4GB":  func(c *Config) { c.Smax = 4 << 30 },
		"DS-tiny": func(c *Config) { c.Smax = 1 << 28 },
	}
	// Evolving workload: hot spot moves.
	type qr struct{ lo, hi int64 }
	var workload []qr
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		center := int64(2000)
		if i >= 6 {
			center = 7000
		}
		lo := center + rng.Int63n(800) - 400
		workload = append(workload, qr{lo, lo + 500})
	}

	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	var want []string
	for _, w := range workload {
		rep := run(t, vanilla, q30(w.lo, w.hi))
		want = append(want, rep.Result.Fingerprint())
	}

	for name, mutate := range strategies {
		t.Run(name, func(t *testing.T) {
			d := newTestSystem(t, mutate)
			for i, w := range workload {
				rep := run(t, d, q30(w.lo, w.hi))
				if got := rep.Result.Fingerprint(); got != want[i] {
					t.Fatalf("query %d (%d-%d): wrong result", i, w.lo, w.hi)
				}
			}
		})
	}
}

func TestEstimateOnlyModeRuns(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.ExecuteRows = false })
	for i := 0; i < 5; i++ {
		rep := run(t, d, q30(int64(i*500), int64(i*500+999)))
		if rep.Result != nil {
			t.Fatal("estimate-only mode returned rows")
		}
		if rep.TotalSeconds <= 0 {
			t.Fatal("estimate-only mode accounted no time")
		}
	}
	if d.Pool.TotalSize() == 0 {
		t.Error("estimate-only mode materialized nothing")
	}
}

func TestEstimateModeMatchesExecModeShape(t *testing.T) {
	// The two modes must agree on the broad outcome: total workload time
	// within a factor, and the same views materialized.
	mkWorkload := func() []query.Node {
		var qs []query.Node
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 8; i++ {
			lo := rng.Int63n(8000)
			qs = append(qs, q30(lo, lo+999))
		}
		return qs
	}
	exec := newTestSystem(t, nil)
	est := newTestSystem(t, func(c *Config) { c.ExecuteRows = false })
	var execTotal, estTotal float64
	for _, q := range mkWorkload() {
		execTotal += run(t, exec, q).TotalSeconds
	}
	for _, q := range mkWorkload() {
		estTotal += run(t, est, q).TotalSeconds
	}
	ratio := estTotal / execTotal
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("estimate-mode total %.0fs vs exec-mode %.0fs (ratio %.2f)",
			estTotal, execTotal, ratio)
	}
}

func TestDeepSeaBeatsHiveOnRepeatedWorkload(t *testing.T) {
	hive := newTestSystem(t, func(c *Config) { c.Materialize = false })
	ds := newTestSystem(t, nil)
	rng := rand.New(rand.NewSource(23))
	var hiveTotal, dsTotal float64
	for i := 0; i < 10; i++ {
		lo := 3000 + rng.Int63n(500)
		q := q30(lo, lo+499)
		hiveTotal += run(t, hive, q30(lo, lo+499)).TotalSeconds
		dsTotal += run(t, ds, q).TotalSeconds
	}
	if dsTotal >= hiveTotal {
		t.Errorf("DeepSea total %.0fs >= Hive total %.0fs on a skewed repeated workload",
			dsTotal, hiveTotal)
	}
}

func TestReportFields(t *testing.T) {
	d := newTestSystem(t, nil)
	r1 := run(t, d, q30(100, 1099))
	if r1.TotalSeconds != r1.ExecCost.Seconds+r1.MatCost.Seconds {
		t.Error("TotalSeconds != ExecCost + MatCost")
	}
	if r1.MatCost.Seconds <= 0 {
		t.Error("creation charged no cost")
	}
	r2 := run(t, d, q30(100, 1099))
	if !r2.Rewritten || r2.UsedView == "" {
		t.Error("second query report missing rewriting info")
	}
	fmt.Fprintln(nopWriter{}, r2) // exercise String paths indirectly
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestHiveBaselineUsesPushdown: the vanilla arm must run the
// pushed-down plan, making it cheaper than DeepSea's unpushed first
// query (before materialization overhead is even added).
func TestHiveBaselineUsesPushdown(t *testing.T) {
	hive := newTestSystem(t, func(c *Config) { c.Materialize = false })
	ds := newTestSystem(t, nil)
	q := q30(1000, 1099) // 1% selectivity: pushdown saves a lot of shuffle
	h := run(t, hive, q30(1000, 1099))
	d := run(t, ds, q)
	if h.ExecCost.Seconds >= d.ExecCost.Seconds {
		t.Errorf("pushed-down Hive (%.1fs) not cheaper than DeepSea's unpushed first run (%.1fs)",
			h.ExecCost.Seconds, d.ExecCost.Seconds)
	}
	if h.ExecCost.ShuffleBytes >= d.ExecCost.ShuffleBytes {
		t.Errorf("pushdown did not shrink shuffle: %d vs %d",
			h.ExecCost.ShuffleBytes, d.ExecCost.ShuffleBytes)
	}
}

// TestEstimateOnlyAcrossStrategies: the simulator mode must run every
// strategy without row data.
func TestEstimateOnlyAcrossStrategies(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.ExecuteRows = false },
		func(c *Config) { c.ExecuteRows = false; c.Partition = PartitionNone },
		func(c *Config) {
			c.ExecuteRows = false
			c.Partition = PartitionEquiDepth
			c.EquiDepthK = 5
			c.MaxFragFraction = 0
		},
		func(c *Config) { c.ExecuteRows = false; c.Selection = SelectNectar },
		func(c *Config) { c.ExecuteRows = false; c.Smax = 2 << 30 },
	} {
		d := newTestSystem(t, mutate)
		for i := 0; i < 6; i++ {
			rep := run(t, d, q30(int64(1000+i*50), int64(1999+i*50)))
			if rep.TotalSeconds <= 0 {
				t.Fatal("no cost accounted in estimate mode")
			}
		}
	}
}

func TestStringersAndDefaults(t *testing.T) {
	modes := map[PartitionMode]string{
		PartitionNone: "NP", PartitionEquiDepth: "E",
		PartitionAdaptive: "DS-H", PartitionAdaptiveOverlap: "DS",
		PartitionAdaptiveNoRepartition: "NR", PartitionMode(99): "?",
	}
	for m, want := range modes {
		if m.String() != want {
			t.Errorf("PartitionMode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	policies := map[SelectionPolicy]string{
		SelectDeepSea: "DS", SelectDeepSeaRawHits: "DS-raw",
		SelectNectar: "N", SelectNectarPlus: "N+", SelectionPolicy(99): "?",
	}
	for p, want := range policies {
		if p.String() != want {
			t.Errorf("SelectionPolicy(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
	// minFragBytes fallbacks: explicit > cost model block > default block.
	c := Config{MinFragBytes: 42}
	if c.minFragBytes() != 42 {
		t.Error("explicit MinFragBytes ignored")
	}
	c = Config{}
	if c.minFragBytes() <= 0 {
		t.Error("default minFragBytes not positive")
	}
	d := newTestSystem(t, nil)
	if d.Now() != 1 {
		t.Errorf("fresh clock = %g", d.Now())
	}
}

// TestNoDuplicateCoverageWrites is the regression test for the
// constrained-pool churn bug: partial re-materialization must write only
// the UNCOVERED gaps of a proposed piece, never duplicate ranges that
// existing fragments already cover (duplicates re-written every query
// ballooned materialization cost ~3x in the Figure 5b regime).
func TestNoDuplicateCoverageWrites(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.Smax = 3 << 30 })
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		lo := 2000 + rng.Int63n(500)
		run(t, d, q30(lo, lo+400))
	}
	// Overlapping partitioning legitimately stores extra copies of hot
	// ranges (Example 2 trades storage for write avoidance), so some
	// amplification is expected; the bug this guards against re-wrote
	// whole pieces every query, amplifying storage and writes without
	// bound (~25x in the Figure 5b regime).
	for _, pv := range d.Pool.Views() {
		for attr, part := range pv.Parts {
			var stored, covered int64
			frags, reads, _ := part.Cover(interval.New(testDomLo, testDomHi))
			for i, f := range frags {
				covered += int64(float64(f.Size) * float64(reads[i].Len()) / float64(f.Iv.Len()))
			}
			for _, f := range part.Fragments() {
				stored += f.Size
			}
			if covered > 0 && float64(stored) > 5*float64(covered) {
				t.Errorf("%s.%s: stored %d bytes vs minimal cover %d — duplicated coverage",
					shortID(pv.ID), attr, stored, covered)
			}
		}
	}
}
