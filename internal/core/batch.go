package core

import (
	"context"
	"sync"

	"deepsea/internal/faults"
	"deepsea/internal/lockcheck"
	"deepsea/internal/query"
)

// BatchItem is one query of a batch, with its own context: items keep
// independent deadlines and cancellation even when planned together.
type BatchItem struct {
	Ctx   context.Context // nil means context.Background()
	Query query.Node
}

// ProcessBatchContext processes the items as one planning batch: every
// live item runs Algorithm 1 steps 1–7 back-to-back under a single
// acquisition of the planning lock, then all items execute and maintain
// concurrently exactly as independent ProcessQueryContext calls would.
// The result and error slices are index-aligned with items.
//
// Correctness is inherited from the concurrent schedule it imitates: a
// batch is indistinguishable from n queries whose planning sections
// happened to run back-to-back before any of them executed — a legal
// interleaving of the existing model. Later items plan against the pool
// state left by earlier items' planning (not their maintenance), and
// the maintenance section's re-validation (pins, cover checks,
// idempotent pool mutations) already handles plans built against an
// older pool. Results are byte-identical to serial processing because
// view rewrites are exact.
//
// What batching buys is the serving layer's plan amortization: a burst
// of same-template queries pays one planning-lock acquisition instead
// of one per query (observable via PlanAcquisitions).
//
// Cache hits and already-cancelled items are settled before planning.
// An item whose execution hits a recoverable fault falls back to the
// standard per-query retry loop, which re-plans it from scratch.
func (d *DeepSea) ProcessBatchContext(items []BatchItem) ([]QueryReport, []error) {
	reports := make([]QueryReport, len(items))
	errs := make([]error, len(items))

	type liveItem struct {
		idx int
		ctx context.Context
		key string
		pq  *plannedQuery
	}
	var live []*liveItem
	for i, it := range items {
		ctx := it.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		d.queries.Add(1)
		var key string
		if d.Cache != nil && d.Cfg.ExecuteRows {
			key = d.cacheKey(it.Query)
			if tbl, ok := d.Cache.Get(key, d.Pool.GenFn()); ok {
				reports[i] = QueryReport{Result: tbl, CacheHit: true}
				continue
			}
		}
		live = append(live, &liveItem{idx: i, ctx: ctx, key: key})
	}
	if len(live) == 0 {
		return reports, errs
	}
	d.inflight.Add(int64(len(live)))

	// settle finishes one live item on its own goroutine: execution,
	// maintenance, and the recoverable-fault fallback.
	var wg sync.WaitGroup
	settle := func(l *liveItem) {
		defer wg.Done()
		defer d.inflight.Add(-1)
		q := items[l.idx].Query
		if l.pq == nil {
			// Not planned as part of the batch (the vanilla-engine
			// configuration has no planning section): full per-query path.
			reports[l.idx], errs[l.idx] = d.processWithRetries(l.ctx, q, l.key)
			return
		}
		rep, quar, err := d.finishPlanned(l.ctx, l.pq)
		if err == nil {
			rep.Quarantined = quar
			reports[l.idx] = rep
			return
		}
		if ctxErr := l.ctx.Err(); ctxErr != nil {
			errs[l.idx] = ctxErr
			return
		}
		if f, ok := faults.AsFault(err); ok &&
			(f.Site == faults.StorageRead || (f.Site == faults.Worker && !f.Permanent)) {
			// Same recoverable faults ProcessQueryContext retries; the
			// fallback re-plans from scratch (its own lock acquisition) and
			// carries the batch attempt's quarantines and retry count.
			rep, rerr := d.processWithRetries(l.ctx, q, l.key)
			if rerr == nil {
				rep.Quarantined = append(quar, rep.Quarantined...)
				rep.Retries++
				reports[l.idx] = rep
				return
			}
			errs[l.idx] = rerr
			return
		}
		errs[l.idx] = err
	}

	if !d.Cfg.Materialize {
		for _, l := range live {
			wg.Add(1)
			go settle(l)
		}
		wg.Wait()
		return reports, errs
	}

	// One planning-lock acquisition for the whole batch: steps 1–7 for
	// every live item, back-to-back, under planMu with all view stripes
	// shared. Each item pins the paths its plan reads before the locks
	// drop, exactly like the single-query path.
	lockcheck.Acquire(lockcheck.RankPlan, 0, "planMu")
	d.planAcq.Add(1)
	d.planMu.Lock()
	d.views.rlockAll()
	for _, l := range live {
		pq, err := d.planLocked(items[l.idx].Query, l.key)
		if err != nil {
			errs[l.idx] = err
			continue
		}
		l.pq = pq
	}
	d.views.runlockAll()
	d.planMu.Unlock()
	lockcheck.Release(lockcheck.RankPlan, 0, "planMu")

	for _, l := range live {
		if l.pq != nil && d.OnPlanned != nil {
			d.OnPlanned(l.pq.lockIDs)
		}
	}
	for _, l := range live {
		if errs[l.idx] != nil {
			// Planning failed; nothing to execute.
			d.inflight.Add(-1)
			continue
		}
		wg.Add(1)
		go settle(l)
	}
	wg.Wait()
	return reports, errs
}
