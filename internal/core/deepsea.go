package core

import (
	"fmt"
	"hash/fnv"

	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/matching"
	"deepsea/internal/pool"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/stats"
)

// DeepSea is one instance of the system: an engine plus the pool,
// statistics, signature index and configuration that drive Algorithm 1.
type DeepSea struct {
	Cfg   Config
	Eng   *engine.Engine
	Pool  *pool.Pool
	Stats *stats.Registry
	Tree  *matching.FilterTree

	rewriter *matching.Rewriter

	// mleCache memoizes MLE fits within one selection pass.
	mleCache     map[string]stats.NormalModel
	mleCacheTime float64
}

// New assembles a DeepSea instance (or a baseline, depending on cfg).
func New(cfg Config) *DeepSea {
	cm := engine.DefaultCostModel()
	if cfg.CostModel != nil {
		cm = *cfg.CostModel
	}
	eng := engine.New(cm)
	eng.ExecuteRows = cfg.ExecuteRows
	p := pool.New(cfg.Smax)
	st := stats.NewRegistry(stats.Decay{TMax: cfg.DecayTMax})
	tree := matching.NewFilterTree()
	return &DeepSea{
		Cfg:   cfg,
		Eng:   eng,
		Pool:  p,
		Stats: st,
		Tree:  tree,
		rewriter: &matching.Rewriter{
			Eng:          eng,
			Pool:         p,
			Stats:        st,
			Tree:         tree,
			PhysicalOnly: cfg.PhysicalMatch,
		},
	}
}

// AddBaseTable registers a base table with the engine.
func (d *DeepSea) AddBaseTable(t *relation.Table) { d.Eng.AddBaseTable(t) }

// Now returns the simulated clock.
func (d *DeepSea) Now() float64 { return d.Eng.Now() }

// ProcessQuery implements Algorithm 1 for one query and returns a report
// of how it was answered and what the pool did in response.
func (d *DeepSea) ProcessQuery(q query.Node) (QueryReport, error) {
	if !d.Cfg.Materialize {
		// Vanilla engine: the optimizer pushes selections down to the
		// scans (DeepSea deliberately does not, Section 10.2); execute
		// and account time, nothing else.
		res, err := d.Eng.Run(query.PushDownRanges(q), nil)
		if err != nil {
			return QueryReport{}, err
		}
		d.Eng.Advance(res.Cost.Seconds)
		return QueryReport{
			Result:       res.Table,
			ExecCost:     res.Cost,
			TotalSeconds: res.Cost.Seconds,
		}, nil
	}

	// Step 1-2: compute rewritings and update statistics (Section 8.4).
	rewritings, origCost, err := d.rewriter.ComputeRewritings(q)
	if err != nil {
		return QueryReport{}, err
	}
	d.updateUseStats(rewritings, origCost)

	// Step 3: SELECTREWRITING — cheapest executable plan.
	qbest := q
	var bestRW *matching.Rewriting
	bestSeconds := origCost.Seconds
	for i := range rewritings {
		rw := &rewritings[i]
		if rw.UsesPool && rw.EstCost.Seconds < bestSeconds {
			bestSeconds = rw.EstCost.Seconds
			qbest = rw.Plan
			bestRW = rw
		}
	}

	// Steps 4-5: candidate generation (Definitions 6 and 7) and
	// registration (ADDCANDIDATES).
	vcands := d.viewCandidates(q, qbest)
	fcands := d.fragCandidates(q, bestRW)

	// Step 6: VIEWSELECTION — filter (7.2) and greedy selection (7.3).
	selViews, selFrags, evict := d.selectConfiguration(vcands, fcands)

	// Step 7: INSTRUMENTQUERY — capture candidate intermediates.
	capture := make(map[query.Node]bool)
	for _, vc := range vcands {
		capture[vc.node] = true
	}
	for _, fc := range selFrags {
		if fc.fromGap {
			capture[fc.gapNode] = true
		}
	}

	// Step 8: EXECUTEQUERY.
	res, err := d.Eng.Run(qbest, capture)
	if err != nil {
		return QueryReport{}, err
	}

	// Step 9: UPDATESTATS — precise sizes for captured candidates.
	if d.Cfg.ExecuteRows {
		for _, vc := range vcands {
			if tbl := res.Captured[vc.node]; tbl != nil {
				vs := d.Stats.View(vc.id)
				if !vs.Measured {
					vs.Size = tbl.Bytes()
				}
			}
		}
	}

	report := QueryReport{
		Result:   res.Table,
		ExecCost: res.Cost,
	}
	if bestRW != nil {
		report.Rewritten = true
		report.UsedView = bestRW.ViewID
		report.FragmentsRead = len(bestRW.CoverFrags)
		report.RemainderGaps = len(bestRW.Gaps)
	}

	// Materialize selected views and fragments.
	var matCost engine.Cost
	for _, sv := range selViews {
		usedByQuery := bestRW != nil && bestRW.ViewID == sv.vc.id
		c, created, err := d.materializeView(sv, res.Captured[sv.vc.node], usedByQuery)
		if err != nil {
			return QueryReport{}, err
		}
		if !created {
			continue
		}
		matCost.Add(c)
		report.MaterializedViews = append(report.MaterializedViews, sv.vc.id)
	}
	for _, fc := range selFrags {
		c, created, err := d.materializeFrag(fc, res.Captured)
		if err != nil {
			return QueryReport{}, err
		}
		matCost.Add(c)
		for _, iv := range created {
			report.MaterializedFrags = append(report.MaterializedFrags,
				fmt.Sprintf("%s.%s%s", shortID(fc.viewID), fc.attr, iv))
		}
	}

	// Optional extension: merge co-accessed adjacent fragments.
	mergeCost, mergedFrags, err := d.maybeMergeFragments(bestRW)
	if err != nil {
		return QueryReport{}, err
	}
	matCost.Add(mergeCost)
	report.MergedFrags = mergedFrags

	// Evict what the selection rejected.
	for _, item := range evict {
		d.evict(item)
		report.Evicted = append(report.Evicted, item.Key())
	}
	d.Pool.GC()

	report.MatCost = matCost
	report.TotalSeconds = res.Cost.Seconds + matCost.Seconds
	d.Eng.Advance(report.TotalSeconds)
	return report, nil
}

// evict removes one pool item and its storage.
func (d *DeepSea) evict(item pool.Candidate) {
	pv := d.Pool.View(item.ViewID)
	if pv == nil {
		return
	}
	switch item.Kind {
	case pool.WholeView:
		if pv.Path != "" {
			d.Eng.DeleteMaterialized(pv.Path)
			pv.Path = ""
			pv.Size = 0
		}
	case pool.Frag:
		part := pv.Parts[item.Attr]
		if part == nil {
			return
		}
		if f, ok := part.Lookup(item.Iv); ok {
			d.Eng.DeleteMaterialized(f.Path)
			part.Remove(item.Iv)
		}
	}
}

// shortID returns a compact stable hash of a view id for paths and logs.
func shortID(id string) string {
	h := fnv.New32a()
	h.Write([]byte(id))
	return fmt.Sprintf("v%08x", h.Sum32())
}

func (d *DeepSea) viewPath(id string) string {
	return "views/" + shortID(id) + "/full"
}

func (d *DeepSea) fragPath(id, attr string, iv interval.Interval) string {
	return fmt.Sprintf("views/%s/%s/%s", shortID(id), attr, iv)
}
