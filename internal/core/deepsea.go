package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"deepsea/internal/cache"
	"deepsea/internal/datastore"
	"deepsea/internal/engine"
	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/lockcheck"
	"deepsea/internal/maintain"
	"deepsea/internal/matching"
	"deepsea/internal/pool"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/stats"
)

// DeepSea is one instance of the system: an engine plus the pool,
// statistics, signature index and configuration that drive Algorithm 1.
//
// ProcessQuery may be called from multiple goroutines. Queries answered
// from the result cache take no manager lock at all. The manager steps
// of Algorithm 1 split across two layers: planMu, a short-lived planning
// lock that serializes the read-mostly bookkeeping of steps 1–7
// (matching statistics, candidate generation, the signature tree), and a
// per-view striped lock set under which maintenance (steps 9+:
// materialize, evict, split, merge, refinement) runs holding only the
// stripes of the views the query reads or mutates — so mutating queries
// over disjoint views proceed in parallel. Planning holds every stripe
// shared, which both stabilizes the pool it plans against and licenses
// its statistics writes. Step 8 — the row execution itself, where the
// time goes — runs outside all manager locks, so concurrent queries
// overlap on the data path. Lock order: planMu before view stripes
// (ascending index) before pinMu. See DESIGN.md, "Concurrency model".
type DeepSea struct {
	Cfg   Config
	Eng   *engine.Engine
	Pool  *pool.Pool
	Stats *stats.Registry
	Tree  *matching.FilterTree

	// Cache is the fingerprint-keyed result cache; nil unless
	// Config.CacheBytes is positive.
	Cache *cache.ResultCache

	// OnPlanned, when set, observes the end of the planning section: it
	// is called with the query's sorted view lock set right after the
	// planning locks are released, before execution. The caller holds no
	// manager lock at that point, so the hook may block without stalling
	// other queries' planning. Test and benchmark observability only —
	// set it before any concurrent use and never call back into the
	// manager from it.
	OnPlanned func(viewIDs []string)

	// OnMaintain, when set, observes the maintenance section: it is
	// called with the query's sorted view lock set right after the view
	// stripes are acquired (enter=true) and right before they are
	// released (enter=false). The hook runs holding the query's write
	// stripes — planning (which reads every stripe) stalls for as long
	// as it blocks. Test and benchmark observability only — set it
	// before any concurrent use and never call back into the manager
	// from it.
	OnMaintain func(viewIDs []string, enter bool)

	rewriter *matching.Rewriter

	// faults is the configured injector (nil when fault-free); the same
	// instance is attached to the engine and its file system.
	faults *faults.Injector

	// backoff tracks per-view materialization failures: failed
	// materializations never fail queries, they count toward the view's
	// blacklist instead.
	backoff *matBackoff

	// planMu is the planning lock: it serializes Algorithm 1's steps
	// 1–7 — statistics and filter-tree mutation, candidate generation,
	// the mleCache — across queries. It is held only for planning,
	// never across execution or maintenance, so it stays short-lived.
	planMu sync.Mutex

	// views is the per-view striped lock set. Planning (under planMu)
	// holds every stripe shared; maintenance holds the stripes of the
	// query's own views exclusive. Pool *content* (fragment lists, view
	// files) and per-view statistics records change only under the
	// owning view's exclusive stripe, or under planMu with every stripe
	// held shared.
	views *viewLocks

	// pinned counts, per storage path, the in-flight executions whose
	// plan reads the path. Eviction, merging and horizontal-split drops
	// skip pinned paths so a concurrent query never loses a file it was
	// planned against. Guarded by pinMu (innermost manager lock).
	pinMu  sync.Mutex
	pinned map[string]int

	// mleCache memoizes MLE fits within one selection pass. Guarded by
	// planMu.
	mleCache     map[string]stats.NormalModel
	mleCacheTime float64

	// planAcq counts planMu acquisitions; inflight and queries count
	// in-flight and started queries. Batch processing acquires planMu
	// once for many queries, so planAcq < queries proves coalescing.
	planAcq  atomic.Uint64
	inflight atomic.Int64
	queries  atomic.Uint64

	// quarMu guards quarLog, the cumulative list of storage paths ever
	// quarantined (leaf lock: never held while acquiring another).
	quarMu  sync.Mutex
	quarLog []string

	// store is the persistence boundary (nil without a datastore): every
	// pool/engine/stats mutation journals through it, and Snapshot
	// checkpoints into it. recovered reports what recovery did when the
	// instance was built.
	store     datastore.Store
	recovered RecoveryInfo

	// maint is the background maintenance pool (nil in inline mode).
	// maintCommitMu serializes drain-cycle commits: the journal group
	// buffer below is instance-global, so one committer runs at a time
	// (untracked leaf lock, acquired before any view stripe).
	maint         *maintain.Pool
	maintCommitMu sync.Mutex

	// groupMu guards the journal group buffer: while a drain cycle has a
	// group open (grouping), appendRecord buffers records into groupBuf
	// instead of appending them individually (leaf lock).
	groupMu  sync.Mutex
	grouping bool
	groupBuf []*datastore.Record

	// ownedRange is the partition-key range this instance owns when it
	// serves as one shard of a scatter-gather cluster (nil when
	// standalone). Published atomically so Health and the serving layer
	// read it without a lock; the epoch fences stale coordinator routing
	// across handoffs.
	ownedRange atomic.Pointer[OwnedRange]

	// ingest is the append-path registry: which views depend on which
	// base tables, each view's refresh consistency point, and the
	// accumulated append log for snapshots (see ingest.go).
	ingest *ingestState

	// recoveredAppends buffers appends found during recovery (snapshot
	// payload + append_rows journal tail) until the host re-adds the
	// base catalog and calls ApplyRecoveredAppends; the order slice
	// keeps replay deterministic.
	recoveredAppends     map[string]*relation.Table
	recoveredAppendOrder []string
}

// OwnedRange is the contiguous partition-key range a sharded instance
// is responsible for, plus the handoff epoch it was assigned under.
type OwnedRange struct {
	Lo, Hi int64
	Epoch  uint64
}

// New assembles a DeepSea instance (or a baseline, depending on cfg).
// With a datastore configured it first recovers the previous life's
// state (snapshot load + journal tail replay), then attaches the
// journal hooks so new mutations are durable. A fatal recovery failure
// (corrupt snapshot, a recovered pool that fails its consistency walk)
// never fails construction: the instance starts cold, the failure is
// reported via Recovery()/Health, and a cold snapshot overwrites the
// stored state so the bad history cannot replay again.
func New(cfg Config) *DeepSea {
	d := build(cfg)
	if cfg.Datastore != nil {
		d.store = cfg.Datastore
		if err := d.recoverFromStore(); err != nil {
			info := d.recovered
			info.Err = err.Error()
			d.CloseMaintenance()
			d = build(cfg)
			d.store = cfg.Datastore
			d.recovered = info
			_ = d.Snapshot()
		}
		d.Pool.SetJournal(d.appendRecord)
		d.Eng.SetJournal(d.appendRecord)
		d.Stats.SetJournal(d.appendRecord)
		if d.faults != nil {
			d.store.SetFaults(d.faults)
		}
	}
	return d
}

// build assembles the in-memory components; recovery and journaling are
// layered on by New.
func build(cfg Config) *DeepSea {
	cm := engine.DefaultCostModel()
	if cfg.CostModel != nil {
		cm = *cfg.CostModel
	}
	eng := engine.New(cm)
	eng.ExecuteRows = cfg.ExecuteRows
	if cfg.Parallelism > 0 {
		eng.Parallelism = cfg.Parallelism
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.New(*cfg.Faults)
		eng.SetFaults(inj)
	}
	p := pool.New(cfg.Smax)
	st := stats.NewShardedRegistry(stats.Decay{TMax: cfg.DecayTMax}, cfg.StatsShards)
	tree := matching.NewFilterTree()
	var rc *cache.ResultCache
	if cfg.CacheBytes > 0 {
		rc = cache.NewWithEntryLimit(cfg.CacheBytes, cfg.cacheMaxEntryBytes())
	}
	d := &DeepSea{
		Cache:   rc,
		Cfg:     cfg,
		Eng:     eng,
		Pool:    p,
		Stats:   st,
		Tree:    tree,
		views:   newViewLocks(cfg.LockStripes),
		pinned:  make(map[string]int),
		faults:  inj,
		backoff: newMatBackoff(),
		rewriter: &matching.Rewriter{
			Eng:          eng,
			Pool:         p,
			Stats:        st,
			Tree:         tree,
			PhysicalOnly: cfg.PhysicalMatch,
		},
		ingest:           newIngestState(),
		recoveredAppends: make(map[string]*relation.Table),
	}
	d.rewriter.Stale = d.staleView
	if cfg.background() {
		d.maint = maintain.NewPool(cfg.MaintWorkers, cfg.maintQueue(), maintBatchMax, d.applyMaintBatch)
	}
	return d
}

// AddBaseTable registers a base table with the engine.
func (d *DeepSea) AddBaseTable(t *relation.Table) { d.Eng.AddBaseTable(t) }

// Now returns the simulated clock.
func (d *DeepSea) Now() float64 { return d.Eng.Now() }

// cacheKey builds the result-cache key for a user query: the canonical
// plan fingerprint qualified by the base-catalog version and by the row
// count of every base table the plan reads. A catalog change orphans
// every earlier entry; an append moves the counts (they are monotone),
// so a result cached before the append is unreachable by any lookup
// planned after it — the cache needs no explicit invalidation on
// ingest.
func (d *DeepSea) cacheKey(q query.Node) string {
	var b strings.Builder
	b.WriteString(query.Fingerprint(q))
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(d.Eng.BaseVersion(), 10))
	tables := append([]string(nil), query.BaseTables(q)...)
	sort.Strings(tables)
	counts := d.Eng.BaseCounts(tables)
	for _, t := range tables {
		b.WriteByte('|')
		b.WriteString(t)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(counts[t], 10))
	}
	return b.String()
}

// viewDeps lists the materialized views a plan reads, each pinned to
// its pool generation from one epoch-published snapshot. On the inline
// path the caller holds the stripes of every view the plan reads (they
// are part of the maintenance lock set), so the generations are exactly
// the post-maintenance state; on the deferred path the snapshot may lag
// a concurrent background commit, which at worst invalidates the entry
// immediately — never serves a stale one.
func (d *DeepSea) viewDeps(plan query.Node) []cache.Dep {
	gen := d.Pool.GenFn()
	seen := make(map[string]bool)
	var deps []cache.Dep
	query.Walk(plan, func(n query.Node) {
		vs, ok := n.(*query.ViewScan)
		if !ok || seen[vs.ViewID] {
			return
		}
		seen[vs.ViewID] = true
		deps = append(deps, cache.Dep{ViewID: vs.ViewID, Gen: gen(vs.ViewID)})
	})
	return deps
}

// maintenanceViews computes the query's view lock set: every view its
// plan may read or mutate — ViewScans of the executed plan (cache-entry
// generations and merge sources), view candidates (step 9 measures their
// sizes; selected ones materialize), fragment candidates (refinement
// targets), eviction victims, and the merge target. Returned sorted by
// id (the canonical order) and deduplicated.
func maintenanceViews(qbest query.Node, vcands []viewCandidate, selFrags []fragCandidate, evict []pool.Candidate, bestRW *matching.Rewriting) []string {
	seen := make(map[string]bool)
	var ids []string
	add := func(id string) {
		if id == "" || seen[id] {
			return
		}
		seen[id] = true
		ids = append(ids, id)
	}
	query.Walk(qbest, func(n query.Node) {
		if vs, ok := n.(*query.ViewScan); ok {
			add(vs.ViewID)
		}
	})
	for _, vc := range vcands {
		add(vc.id)
	}
	for _, fc := range selFrags {
		add(fc.viewID)
	}
	for _, c := range evict {
		add(c.ViewID)
	}
	if bestRW != nil {
		add(bestRW.ViewID)
	}
	sort.Strings(ids)
	return ids
}

// Faults exposes the configured fault injector (nil when fault-free) —
// chaos-test and bench observability.
func (d *DeepSea) Faults() *faults.Injector { return d.faults }

// ProcessQuery implements Algorithm 1 for one query and returns a report
// of how it was answered and what the pool did in response.
func (d *DeepSea) ProcessQuery(q query.Node) (QueryReport, error) {
	return d.ProcessQueryContext(context.Background(), q)
}

// ProcessQueryContext is ProcessQuery with cancellation and graceful
// degradation. A cancelled or expired ctx makes the call return
// promptly with ctx.Err(), with every view stripe released, all pins
// dropped and the pool consistent. Recoverable faults degrade instead
// of failing the query: a failed fragment or view-file read quarantines
// that file (pool removal, which also bumps the view's generation and
// so invalidates cached results over it) and the query is re-planned
// against the shrunken pool — falling back to base tables when nothing
// usable remains; a transient worker fault re-executes the query. Both
// are bounded by Config.FaultRetries. Failed materializations never
// fail the query (see processOnce).
func (d *DeepSea) ProcessQueryContext(ctx context.Context, q query.Node) (QueryReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return QueryReport{}, err
	}
	d.queries.Add(1)
	d.inflight.Add(1)
	defer d.inflight.Add(-1)

	// Result-cache lookup — before planning and off every manager lock.
	// Generation checks read one epoch-published snapshot of the pool's
	// generation map (no lock at all), so a hit is consistent: no entry
	// over an evicted or split view survives.
	var key string
	if d.Cache != nil && d.Cfg.ExecuteRows {
		key = d.cacheKey(q)
		if tbl, ok := d.Cache.Get(key, d.Pool.GenFn()); ok {
			return QueryReport{Result: tbl, CacheHit: true}, nil
		}
	}

	return d.processWithRetries(ctx, q, key)
}

// processWithRetries is the retry loop of ProcessQueryContext, shared
// with batch processing (whose items fall back here after a recoverable
// first-attempt failure).
func (d *DeepSea) processWithRetries(ctx context.Context, q query.Node, key string) (QueryReport, error) {
	maxRetries := d.Cfg.faultRetries()
	var quarantined []string
	for attempt := 0; ; attempt++ {
		rep, quar, err := d.processOnce(ctx, q, key)
		quarantined = append(quarantined, quar...)
		if err == nil {
			rep.Quarantined = quarantined
			rep.Retries = attempt
			return rep, nil
		}
		// Cancellation always wins: do not spend retries on a dead query.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return QueryReport{}, ctxErr
		}
		f, ok := faults.AsFault(err)
		if !ok || attempt >= maxRetries {
			return QueryReport{}, err
		}
		switch {
		case f.Site == faults.StorageRead:
			// The unreadable file was quarantined above (or is pinned by
			// a concurrent query and left in place); re-plan against the
			// current pool — with the file gone the new plan answers the
			// lost range from base tables.
		case f.Site == faults.Worker && !f.Permanent:
			// Transient worker fault (lost container, timeout): the plan
			// is fine, re-execute it.
		default:
			return QueryReport{}, err
		}
	}
}

// processOnce runs one attempt of Algorithm 1. It returns the paths it
// quarantined while handling an execution failure (the caller
// accumulates them across retries).
func (d *DeepSea) processOnce(ctx context.Context, q query.Node, key string) (QueryReport, []string, error) {
	if !d.Cfg.Materialize {
		// Vanilla engine: the optimizer pushes selections down to the
		// scans (DeepSea deliberately does not, Section 10.2); execute
		// and account time, nothing else.
		res, err := d.Eng.RunContext(ctx, query.PushDownRanges(q), nil)
		if err != nil {
			return QueryReport{}, nil, err
		}
		d.Eng.Advance(res.Cost.Seconds)
		if key != "" && res.Table != nil {
			d.Cache.Put(key, res.Table, nil)
		}
		return QueryReport{
			Result:       res.Table,
			ExecCost:     res.Cost,
			TotalSeconds: res.Cost.Seconds,
		}, nil, nil
	}

	// Planning section: Algorithm 1 steps 1-7. planMu serializes the
	// statistics and candidate bookkeeping; every view stripe is held
	// shared, so no maintenance runs anywhere while this query plans —
	// the pool it matches against is stable, and its statistics writes
	// (use records, candidate refinement) cannot race a maintainer.
	// Pinning before release guarantees no concurrent query evicts a
	// path between planning and execution.
	lockcheck.Acquire(lockcheck.RankPlan, 0, "planMu")
	d.planAcq.Add(1)
	d.planMu.Lock()
	d.views.rlockAll()
	pq, err := d.planLocked(q, key)
	d.views.runlockAll()
	d.planMu.Unlock()
	lockcheck.Release(lockcheck.RankPlan, 0, "planMu")
	if err != nil {
		return QueryReport{}, nil, err
	}
	if d.OnPlanned != nil {
		d.OnPlanned(pq.lockIDs)
	}
	return d.finishPlanned(ctx, pq)
}

// plannedQuery carries one query's planning output (Algorithm 1 steps
// 1–7) from the planning section to execution and maintenance. Pins on
// every materialized path the plan reads are already taken; finishPlanned
// drops them on every path.
type plannedQuery struct {
	key      string
	qbest    query.Node
	bestRW   *matching.Rewriting
	vcands   []viewCandidate
	selViews []selectedView
	selFrags []fragCandidate
	evict    []pool.Candidate
	capture  map[query.Node]bool
	lockIDs  []string
	pins     []string
	// baseCounts is the per-table row count of every base table the
	// query reads, captured at planning time. Materialization uses it as
	// the proposed view's ingest consistency point: if the counts still
	// match when the captured rows register, no append raced the
	// execution (counts are monotone), so the content is exact at these
	// counts.
	baseCounts map[string]int64
}

// planLocked runs Algorithm 1 steps 1–7 for one query and pins the
// materialized paths its chosen plan reads. The caller holds planMu and
// every view stripe shared; batch processing calls it once per query
// under a single acquisition, which is why the lock handling lives in
// the callers.
func (d *DeepSea) planLocked(q query.Node, key string) (*plannedQuery, error) {
	// Step 1-2: compute rewritings and update statistics (Section 8.4).
	rewritings, origCost, err := d.rewriter.ComputeRewritings(q)
	if err != nil {
		return nil, err
	}
	d.updateUseStats(rewritings, origCost)

	// Step 3: SELECTREWRITING — cheapest executable plan.
	qbest := q
	var bestRW *matching.Rewriting
	bestSeconds := origCost.Seconds
	for i := range rewritings {
		rw := &rewritings[i]
		if rw.UsesPool && rw.EstCost.Seconds < bestSeconds {
			bestSeconds = rw.EstCost.Seconds
			qbest = rw.Plan
			bestRW = rw
		}
	}

	// Steps 4-5: candidate generation (Definitions 6 and 7) and
	// registration (ADDCANDIDATES).
	vcands := d.viewCandidates(q, qbest)
	fcands := d.fragCandidates(q, bestRW)

	// Step 6: VIEWSELECTION — filter (7.2) and greedy selection (7.3).
	selViews, selFrags, evict := d.selectConfiguration(vcands, fcands)

	// Step 7: INSTRUMENTQUERY — capture candidate intermediates.
	capture := make(map[query.Node]bool)
	for _, vc := range vcands {
		capture[vc.node] = true
	}
	for _, fc := range selFrags {
		if fc.fromGap {
			capture[fc.gapNode] = true
		}
	}

	// The maintenance lock set is fixed while the pool is still stable:
	// every view the plan reads or the maintenance below may touch.
	mergeRW := bestRW
	if !d.Cfg.MergeFragments {
		mergeRW = nil
	}
	lockIDs := maintenanceViews(qbest, vcands, selFrags, evict, mergeRW)

	// Pin every materialized path the plan reads, then release the
	// planning locks for the long step: concurrent queries may plan and
	// execute while this one runs, but cannot evict what it reads.
	pins := planPins(qbest)
	d.pin(pins)
	tables := append([]string(nil), query.BaseTables(q)...)
	sort.Strings(tables)
	return &plannedQuery{
		key:        key,
		qbest:      qbest,
		bestRW:     bestRW,
		vcands:     vcands,
		selViews:   selViews,
		selFrags:   selFrags,
		evict:      evict,
		capture:    capture,
		lockIDs:    lockIDs,
		pins:       pins,
		baseCounts: d.Eng.BaseCounts(tables),
	}, nil
}

// finishPlanned runs Algorithm 1 steps 8+ for a planned query: execution
// outside every manager lock, then maintenance under the query's view
// stripes. It returns the paths it quarantined while handling an
// execution failure.
func (d *DeepSea) finishPlanned(ctx context.Context, pq *plannedQuery) (QueryReport, []string, error) {
	qbest, bestRW := pq.qbest, pq.bestRW
	vcands, selViews, selFrags, evict := pq.vcands, pq.selViews, pq.selFrags, pq.evict
	lockIDs, pins, key := pq.lockIDs, pq.pins, pq.key

	// Step 8: EXECUTEQUERY — outside every manager lock.
	res, runErr := d.Eng.RunContext(ctx, qbest, pq.capture)
	if runErr != nil {
		// Failed executions skip maintenance entirely: drop the pins,
		// quarantine the unreadable file if the failure was an injected
		// storage-read fault, and let the caller decide whether to
		// re-plan. No view stripe is held on this path.
		d.unpin(pins)
		return QueryReport{}, d.quarantineFromError(qbest, runErr), runErr
	}

	// Background mode: the query is done — hand steps 9+ to the worker
	// pool as Φ-ranked per-unit tasks and return without touching a
	// single view stripe. The query pays execution cost only; the
	// deferred mutations re-validate against the live pool when a drain
	// cycle applies them.
	if d.maint != nil {
		d.unpin(pins)
		report := QueryReport{
			Result:              res.Table,
			ExecCost:            res.Cost,
			TotalSeconds:        res.Cost.Seconds,
			DeferredMaintenance: true,
		}
		if bestRW != nil {
			report.Rewritten = true
			report.UsedView = bestRW.ViewID
			report.FragmentsRead = len(bestRW.CoverFrags)
			report.RemainderGaps = len(bestRW.Gaps)
		}
		report.MaintTasksEnqueued = d.enqueueMaintenance(pq, res.Captured)
		d.Eng.Advance(res.Cost.Seconds)
		if key != "" && res.Table != nil {
			d.Cache.Put(key, res.Table, d.viewDeps(qbest))
		}
		return report, nil, nil
	}

	// Maintenance section: steps 9+ (stats, pool maintenance, clock)
	// under only this query's view stripes, exclusive. Queries whose
	// lock sets cover disjoint stripes run their maintenance — including
	// materialization, refinement and eviction — in parallel; the
	// selection above was computed against a possibly older pool, so
	// every mutation below re-validates against the live pool (pins,
	// cover checks) exactly as a stale selection requires.
	held := d.views.lockViews(lockIDs)
	if d.OnMaintain != nil {
		d.OnMaintain(lockIDs, true)
	}
	defer func() {
		if d.OnMaintain != nil {
			d.OnMaintain(lockIDs, false)
		}
		d.views.unlockViews(held)
	}()
	d.unpin(pins)

	// Step 9: UPDATESTATS — precise sizes for captured candidates.
	if d.Cfg.ExecuteRows {
		for _, vc := range vcands {
			if tbl := res.Captured[vc.node]; tbl != nil {
				vs := d.Stats.View(vc.id)
				if !vs.Measured {
					vs.Size = tbl.Bytes()
					d.journalVStat(vs)
				}
			}
		}
	}

	report := QueryReport{
		Result:   res.Table,
		ExecCost: res.Cost,
	}
	if bestRW != nil {
		report.Rewritten = true
		report.UsedView = bestRW.ViewID
		report.FragmentsRead = len(bestRW.CoverFrags)
		report.RemainderGaps = len(bestRW.Gaps)
	}

	// Materialize selected views and fragments. Materialization is a
	// best-effort side effect: an injected fault in an attempt charges
	// whatever cost was already spent, records the failure against the
	// view's backoff (bounded retries, then blacklist) and moves on —
	// the query itself never fails because of it. Non-fault errors are
	// logic bugs and still propagate.
	var matCost engine.Cost
	noteMatFault := func(viewID string, err error) bool {
		f, ok := faults.AsFault(err)
		if !ok {
			return false
		}
		d.backoff.noteFailure(viewID, f.Permanent)
		report.MatFailed = append(report.MatFailed, viewID)
		return true
	}
	for _, sv := range selViews {
		if !d.backoff.allowed(sv.vc.id) {
			continue
		}
		usedByQuery := bestRW != nil && bestRW.ViewID == sv.vc.id
		c, created, err := d.materializeView(sv, res.Captured[sv.vc.node], usedByQuery, pq.baseCounts)
		matCost.Add(c)
		if err != nil {
			if noteMatFault(sv.vc.id, err) {
				continue
			}
			return QueryReport{}, nil, err
		}
		if !created {
			continue
		}
		d.backoff.noteSuccess(sv.vc.id)
		report.MaterializedViews = append(report.MaterializedViews, sv.vc.id)
	}
	for _, fc := range selFrags {
		if !d.backoff.allowed(fc.viewID) {
			continue
		}
		c, created, err := d.materializeFrag(fc, res.Captured, pq.baseCounts)
		matCost.Add(c)
		if err != nil {
			if noteMatFault(fc.viewID, err) {
				continue
			}
			return QueryReport{}, nil, err
		}
		if len(created) > 0 {
			d.backoff.noteSuccess(fc.viewID)
		}
		for _, iv := range created {
			report.MaterializedFrags = append(report.MaterializedFrags,
				fmt.Sprintf("%s.%s%s", shortID(fc.viewID), fc.attr, iv))
		}
	}

	// Optional extension: merge co-accessed adjacent fragments. A merge
	// is a materialization too: injected faults back off, never fail the
	// query.
	mergeCost, mergedFrags, err := d.maybeMergeFragments(bestRW)
	matCost.Add(mergeCost)
	if err != nil {
		if bestRW == nil || !noteMatFault(bestRW.ViewID, err) {
			return QueryReport{}, nil, err
		}
	}
	report.MergedFrags = mergedFrags

	// Evict what the selection rejected. Items pinned by a concurrent
	// execution are skipped; the selection will reject them again next
	// query if they stay unattractive.
	for _, item := range evict {
		if d.evict(item) {
			report.Evicted = append(report.Evicted, item.Key())
		}
	}
	// GC only the views this query touched: emptying a view requires
	// mutating it, and every mutation above stayed inside the lock set.
	d.Pool.GCViews(lockIDs...)

	report.MatCost = matCost
	report.TotalSeconds = res.Cost.Seconds + matCost.Seconds
	d.Eng.Advance(report.TotalSeconds)

	// Publish the result, pinned to the post-maintenance generations of
	// every view the plan read — so this query's own refinements do not
	// immediately invalidate its entry, while any later mutation of
	// those views does. The read views' stripes are still held, so the
	// recorded generations cannot move before the entry is in.
	if key != "" && res.Table != nil {
		d.Cache.Put(key, res.Table, d.viewDeps(qbest))
	}
	return report, nil, nil
}

// quarantineFromError quarantines the stored file named by an injected
// storage-read fault in runErr: the file is removed from the engine and
// the pool (bumping the owning view's generation, which invalidates
// every cached result over it), so the retry's planning cannot choose
// it again. Returns the quarantined paths (nil when runErr is not a
// read fault, the path is not in the executed plan, or the file is
// pinned by a concurrent query — which keeps it alive until that query
// drains).
func (d *DeepSea) quarantineFromError(plan query.Node, runErr error) []string {
	f, ok := faults.AsFault(runErr)
	if !ok || f.Site != faults.StorageRead || f.Key == "" {
		return nil
	}
	// Resolve the owning view from the failing attempt's own plan — the
	// fault's key is a path the plan read, so one of its ViewScans names
	// it.
	viewID := ""
	query.Walk(plan, func(n query.Node) {
		vs, ok := n.(*query.ViewScan)
		if !ok || viewID != "" {
			return
		}
		if vs.ViewPath == f.Key {
			viewID = vs.ViewID
			return
		}
		for _, p := range vs.FragIDs {
			if p == f.Key {
				viewID = vs.ViewID
				return
			}
		}
	})
	if viewID == "" {
		return nil
	}
	if d.quarantine(viewID, f.Key) {
		d.quarMu.Lock()
		d.quarLog = append(d.quarLog, f.Key)
		d.quarMu.Unlock()
		return []string{f.Key}
	}
	return nil
}

// quarantine removes one stored file of a view from the engine and the
// pool, under the view's exclusive stripe. Files still pinned by a
// concurrent execution are left alone: that query planned against them,
// and dropping them now would turn its read into a missing-file logic
// error. Reports whether the file was removed.
//
// In background mode the rows are captured before the delete and a
// speculative re-materialization task is enqueued: the read fault was
// transient (the simulated store still holds the rows), so the pool can
// be healed without waiting for a future query to re-derive the range.
func (d *DeepSea) quarantine(viewID, path string) bool {
	held := d.views.lockViews([]string{viewID})
	defer d.views.unlockViews(held)
	if d.isPinned(path) {
		return false
	}
	pv := d.Pool.View(viewID)
	if pv == nil {
		return false
	}
	if pv.Path == path {
		var rows *relation.Table
		if d.maint != nil {
			rows = d.Eng.Materialized(path)
		}
		size, schema := pv.Size, pv.Schema
		d.Eng.DeleteMaterialized(path)
		d.Pool.DropViewFile(viewID)
		d.Pool.GCViews(viewID)
		d.enqueueRemat(&rematTask{
			viewID: viewID, path: path, schema: schema,
			isView: true, rows: rows, size: size,
		})
		return true
	}
	for attr, part := range pv.Parts {
		for _, fr := range part.Fragments() {
			if fr.Path == path {
				var rows *relation.Table
				if d.maint != nil {
					rows = d.Eng.Materialized(path)
				}
				d.Eng.DeleteMaterialized(path)
				d.Pool.RemoveFragment(viewID, attr, fr.Iv)
				d.Pool.GCViews(viewID)
				d.enqueueRemat(&rematTask{
					viewID: viewID, path: path, schema: pv.Schema,
					attr: attr, iv: fr.Iv, dom: part.Dom,
					overlapping: part.Overlapping,
					rows:        rows, size: fr.Size,
				})
				return true
			}
		}
	}
	return false
}

// evict removes one pool item and its storage. It reports whether the
// item was actually removed: items missing from the pool or pinned by a
// concurrent execution are left alone. The caller holds the item's view
// stripe exclusively.
func (d *DeepSea) evict(item pool.Candidate) bool {
	pv := d.Pool.View(item.ViewID)
	if pv == nil {
		return false
	}
	switch item.Kind {
	case pool.WholeView:
		if pv.Path == "" || d.isPinned(pv.Path) {
			return false
		}
		d.Eng.DeleteMaterialized(pv.Path)
		d.Pool.DropViewFile(item.ViewID)
		return true
	case pool.Frag:
		part := pv.Parts[item.Attr]
		if part == nil {
			return false
		}
		f, ok := part.Lookup(item.Iv)
		if !ok || d.isPinned(f.Path) {
			return false
		}
		d.Eng.DeleteMaterialized(f.Path)
		d.Pool.RemoveFragment(item.ViewID, item.Attr, item.Iv)
		return true
	}
	return false
}

// planPins collects the materialized paths a plan reads: every
// ViewScan's fragment files, or its whole-view file when unpartitioned.
// Walk descends into remainder subplans, so nested ViewScans are
// covered.
func planPins(plan query.Node) []string {
	var paths []string
	query.Walk(plan, func(n query.Node) {
		vs, ok := n.(*query.ViewScan)
		if !ok {
			return
		}
		if len(vs.FragIDs) > 0 {
			paths = append(paths, vs.FragIDs...)
		} else if vs.ViewPath != "" {
			paths = append(paths, vs.ViewPath)
		}
	})
	return paths
}

// pin increments the in-flight read count of each path. Called only
// from the planning section (planMu + all stripes shared).
func (d *DeepSea) pin(paths []string) {
	lockcheck.Acquire(lockcheck.RankPin, 0, "pinMu")
	d.pinMu.Lock()
	for _, p := range paths {
		d.pinned[p]++
	}
	d.pinMu.Unlock()
	lockcheck.Release(lockcheck.RankPin, 0, "pinMu")
}

// unpin reverses pin.
func (d *DeepSea) unpin(paths []string) {
	lockcheck.Acquire(lockcheck.RankPin, 0, "pinMu")
	d.pinMu.Lock()
	for _, p := range paths {
		if d.pinned[p] <= 1 {
			delete(d.pinned, p)
		} else {
			d.pinned[p]--
		}
	}
	d.pinMu.Unlock()
	lockcheck.Release(lockcheck.RankPin, 0, "pinMu")
}

// isPinned reports whether a concurrent execution still reads path.
// Mutators call it before dropping a file; they hold the owning view's
// stripe exclusively, so a pin observed as zero cannot reappear for a
// path the mutator is about to drop: new pins are taken only during
// planning, which holds every stripe shared and is therefore excluded
// while the mutator runs.
func (d *DeepSea) isPinned(path string) bool {
	lockcheck.Acquire(lockcheck.RankPin, 0, "pinMu")
	d.pinMu.Lock()
	p := d.pinned[path] > 0
	d.pinMu.Unlock()
	lockcheck.Release(lockcheck.RankPin, 0, "pinMu")
	return p
}

// shortID returns a compact stable hash of a view id for paths and logs.
func shortID(id string) string {
	h := fnv.New32a()
	h.Write([]byte(id))
	return fmt.Sprintf("v%08x", h.Sum32())
}

func (d *DeepSea) viewPath(id string) string {
	return "views/" + shortID(id) + "/full"
}

func (d *DeepSea) fragPath(id, attr string, iv interval.Interval) string {
	return fmt.Sprintf("views/%s/%s/%s", shortID(id), attr, iv)
}
