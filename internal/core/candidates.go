package core

import (
	"deepsea/internal/datastore"
	"deepsea/internal/interval"
	"deepsea/internal/matching"
	"deepsea/internal/partition"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/signature"
	"deepsea/internal/stats"
)

// viewCandidate is one Definition 6 candidate: a join, aggregation or
// projection subquery of the executed plan that does not exist in the
// pool.
type viewCandidate struct {
	id     string
	node   query.Node // node of qbest whose output can be captured
	schema relation.Schema
	// estBytes is the candidate's current size estimate (from
	// statistics).
	estBytes int64
	// matCost is the estimated *marginal* cost of materializing the
	// candidate — the write, since the rows are computed as a by-product
	// of the query. The admission filter compares this against the
	// accumulated benefit. (ViewStat.Cost, by contrast, holds the full
	// recompute cost per Section 7.1.)
	matCost float64
}

// viewCandidates implements COMPUTEVIEWCAND + ADDCANDIDATES for views:
// it registers every Definition 6 subquery in the statistics and the
// signature index and returns the creatable candidates. Candidates come
// from the ORIGINAL plan: when the executed plan was rewritten, a
// candidate's rows are either captured from a remainder execution or
// reconstructed from an existing complete partition of the view
// (materializeView), so the defining node need not execute itself.
func (d *DeepSea) viewCandidates(q, qbest query.Node) []viewCandidate {
	// Track pure subtrees of the executed plan too (remainder plans can
	// contain candidates of their own).
	for _, n := range query.CandidateNodes(qbest) {
		if containsViewScan(n) {
			continue
		}
		d.trackViewCandidate(qbest, n)
	}

	var out []viewCandidate
	seen := make(map[string]bool)
	for _, n := range query.CandidateNodes(q) {
		if containsViewScan(n) {
			continue
		}
		id := d.trackViewCandidate(q, n)
		if seen[id] {
			continue
		}
		seen[id] = true
		// Definition 6: Q' must not exist in V. Under adaptive
		// partitioning a view may be only PARTIALLY materialized (the
		// pool admitted some initial fragments); its unmaterialized
		// pieces remain candidates, so only an unpartitioned copy makes
		// the view "exist". Non-adaptive modes materialize
		// whole-or-nothing and any content excludes the view.
		if d.Cfg.adaptive() {
			if pv := d.Pool.View(id); pv != nil && pv.Path != "" {
				continue
			}
		} else if d.poolHasContent(id) {
			continue
		}
		vs := d.Stats.View(id)
		out = append(out, viewCandidate{
			id:       id,
			node:     n,
			schema:   n.Schema(),
			estBytes: vs.Size,
			matCost:  d.writeCostEstimate(vs.Size, 1),
		})
	}
	return out
}

// trackViewCandidate ensures statistics and a signature-index entry exist
// for the subquery of root and returns its id. A first-time candidate
// receives an initial benefit use — the saving it would have given the
// current query (ADDCANDIDATES' "initial rough estimate of their costs
// and benefits"); this is what lets a high-value view materialize during
// the very query that first produces it, as in the paper's Figure 6a.
//
// ViewStat.Cost is set to the view's full *recompute* cost (running its
// defining query plus writing the result): Section 7.1 defines a
// fragment's creation cost as the cost of recomputing and repartitioning
// its view, and both Φ and the fragment benefits scale with it.
func (d *DeepSea) trackViewCandidate(root, n query.Node) string {
	sig := signature.Of(n)
	id := sig.Key()
	if _, ok := d.Stats.LookupView(id); !ok {
		vs := d.Stats.View(id)
		_, bytes, err := d.Eng.EstimateSize(n)
		if err == nil {
			vs.Size = bytes
		}
		recompute := 0.0
		if c, err := d.Eng.EstimateCost(n); err == nil {
			recompute = c.Seconds
		}
		vs.Cost = recompute + d.writeCostEstimate(vs.Size, 1)
		// The initial size/cost estimates are set exactly once per tracked
		// view; journal them so a recovered registry does not hold the
		// view at Φ = 0 forever (this path never re-runs once the record
		// exists).
		d.journalVStat(vs)
		// The signature index is in-memory-only state the pool manifest
		// cannot reproduce (signatures come from query plans); journal the
		// entry once so a warm restart matches views without having seen
		// their defining queries.
		if d.store != nil {
			sch := n.Schema()
			d.appendRecord(datastore.Record{Op: "track_view", View: id, Sig: sig, Schema: &sch})
		}
		if saving := d.initialSaving(root, n, vs.Size); saving > 0 {
			vs.RecordUse(d.Eng.Now(), saving)
		}
	}
	d.Tree.Add(&matching.Entry{ID: id, Sig: sig, Schema: n.Schema()})
	return id
}

// initialSaving estimates the cost the current query would have saved had
// the candidate already been materialized: original cost minus the cost
// of the plan with the subtree replaced by a (virtual) view read.
func (d *DeepSea) initialSaving(root, n query.Node, viewBytes int64) float64 {
	if viewBytes <= 0 {
		return 0
	}
	orig, err := d.Eng.EstimateCost(root)
	if err != nil {
		return 0
	}
	vs := &query.ViewScan{
		ViewID:     "candidate",
		ViewPath:   "virtual://candidate",
		ViewBytes:  viewBytes,
		ViewSchema: n.Schema(),
	}
	rewritten, err := d.Eng.EstimateCost(query.Replace(root, n, vs))
	if err != nil {
		return 0
	}
	saving := orig.Seconds - rewritten.Seconds
	if saving < 0 {
		return 0
	}
	return saving
}

// writeCostEstimate is the estimated creation cost of materializing bytes
// into the given number of files (the paper's initial COST(V) estimate —
// the materialization overhead, since the result itself is computed as a
// by-product of query execution).
func (d *DeepSea) writeCostEstimate(bytes, files int64) float64 {
	return d.Eng.CostModel().WriteCost(bytes, files)
}

// poolHasContent reports whether the view exists in the pool with any
// materialized data.
func (d *DeepSea) poolHasContent(id string) bool {
	pv := d.Pool.View(id)
	if pv == nil {
		return false
	}
	if pv.Path != "" {
		return true
	}
	for _, part := range pv.Parts {
		if part.NumFragments() > 0 {
			return true
		}
	}
	return false
}

func containsViewScan(n query.Node) bool {
	found := false
	query.Walk(n, func(m query.Node) {
		if _, ok := m.(*query.ViewScan); ok {
			found = true
		}
	})
	return found
}

// fragCandidate is one Definition 7 candidate fragment, or a "gap"
// candidate recoverable from a remainder computation of the executed
// query.
type fragCandidate struct {
	viewID string
	attr   string
	iv     interval.Interval
	// estSize is the estimated stored size.
	estSize int64
	// createCost is the estimated cost of materializing the fragment
	// (Section 7.2; for gap candidates, the write cost only — the rows
	// are captured from the remainder execution for free).
	createCost float64
	// fromGap marks candidates materializable from a captured remainder.
	fromGap bool
	// gapNode is the remainder plan node whose output holds the
	// fragment's rows (fromGap only).
	gapNode query.Node
	// byproduct marks overlap-mode candidates whose rows flow through
	// the executed query anyway (the query reads a cover of the
	// candidate), so only the write is charged — the paper's
	// "repartitioning as a by-product of query answering" (Section 2,
	// Example 2). Horizontal splits never qualify: their complement
	// pieces are not in the query's stream.
	byproduct bool
	// value is the selection's Φ ranking of the admitted candidate —
	// background maintenance orders its queue by it. Set by
	// selectConfiguration on the candidates it returns.
	value float64
}

// fragCandidates implements Definition 7 (partition candidates) plus the
// gap-recovery extension. For each selection σ_{l<=A<=u}(Q') of the
// original plan over a tracked view:
//
//   - the candidate partitioning in PSTAT is refined at the selection's
//     end points (and at guard boundaries one query-width to each side);
//     unmaterialized pieces of it are what the pool-selection step can
//     admit, and it seeds the initial partitioning at materialization;
//   - if the view's partition on A is materialized and the strategy
//     refines, the end points additionally induce split candidates of
//     existing fragments (priced write-only when the executed query
//     already streams their rows — by-product repartitioning);
//   - if the executed rewriting computed remainder gaps whose content
//     equals the view's content over the gap, each gap becomes a
//     candidate creatable by capturing the remainder output.
func (d *DeepSea) fragCandidates(q query.Node, bestRW *matching.Rewriting) []fragCandidate {
	if !d.Cfg.Materialize {
		return nil
	}
	now := d.Eng.Now()
	var out []fragCandidate
	seen := make(map[string]bool)

	// inExecutedStream reports whether the rows of iv flow through the
	// executed plan: the chosen rewriting reads this (view, attr)
	// partition and fully covers iv.
	inExecutedStream := func(viewID, attr string, iv interval.Interval) bool {
		if bestRW == nil || bestRW.ViewID != viewID || bestRW.PartAttr != attr {
			return false
		}
		if !bestRW.Needed.ContainsInterval(iv) {
			return false
		}
		for _, g := range bestRW.Gaps {
			if g.Overlaps(iv) {
				return false
			}
		}
		return true
	}

	add := func(fc fragCandidate) {
		key := fc.viewID + "/" + fc.attr + "/" + fc.iv.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, fc)
	}

	query.Walk(q, func(n query.Node) {
		sel, ok := n.(*query.Select)
		if !ok {
			return
		}
		child := sel.Child
		switch child.(type) {
		case *query.Join, *query.Aggregate, *query.Project:
		default:
			return
		}
		if containsViewScan(child) {
			return
		}
		csig := signature.Of(child)
		viewID := csig.Key()
		if _, tracked := d.Stats.LookupView(viewID); !tracked {
			return
		}
		childSchema := child.Schema()
		for _, rp := range sel.Ranges {
			ci := childSchema.ColIndex(rp.Col)
			if ci < 0 || !childSchema.Cols[ci].Ordered {
				continue
			}
			if d.Cfg.PartitionAttrs != nil && !d.Cfg.PartitionAttrs[rp.Col] {
				continue
			}
			col := childSchema.Cols[ci]
			dom := interval.New(col.Lo, col.Hi)
			r, overlap := rp.Iv.Intersect(dom)
			if !overlap {
				continue
			}
			pstat := d.Stats.Partition(viewID, rp.Col, dom)

			pv := d.Pool.View(viewID)
			// Bound the tracked-fragment population: expired candidates
			// carry no benefit signal and only slow the MLE fit.
			pstat.PruneExpired(now, d.Stats.Decay, func(iv interval.Interval) bool {
				return d.fragMaterialized(viewID, rp.Col, iv)
			})
			var materializedPart = false
			if pv != nil && pv.Parts[rp.Col] != nil && pv.Parts[rp.Col].NumFragments() > 0 {
				materializedPart = true
			}

			// The candidate partitioning keeps refining regardless of
			// materialization state: under partial materialization it
			// describes the pieces a future query may still admit. Guard
			// boundaries at twice the query width on each side carve
			// medium pieces next to the hot range (fragment correlation:
			// neighbours of hot spots are likely future hits), so
			// slightly drifted queries land on small fragments instead
			// of huge cold ones.
			if d.Cfg.adaptive() {
				created := pstat.RefineCand(r)
				if !d.Cfg.NoGuards {
					w := r.Len()
					for _, g := range []interval.Interval{
						{Lo: r.Lo - w, Hi: r.Lo - 1},
						{Lo: r.Hi + 1, Hi: r.Hi + w},
					} {
						if gc, ok := g.Intersect(dom); ok {
							created = append(created, pstat.RefineCand(gc)...)
						}
					}
				}
				for _, iv := range created {
					fs := pstat.Frag(iv)
					if fs.Size == 0 {
						fs.Size = d.uniformFragSize(viewID, dom, iv)
					}
				}
				// The query hits every candidate fragment overlapping
				// its range; these hits seed the benefit model.
				for _, iv := range pstat.Cand {
					if iv.Overlaps(r) {
						recordCandidateHit(pstat.Frag(iv), now)
					}
				}
			}

			if materializedPart {
				if !d.Cfg.refines() {
					continue
				}
				part := pv.Parts[rp.Col]
				for _, cand := range interval.CandidatesForQuery(dom, part.Intervals(), r) {
					// Only the split pieces the query actually touches
					// are materialization candidates; the complement
					// pieces exist solely as forced siblings of a
					// horizontal split (Example 2: overlapping mode
					// exists precisely to avoid writing them).
					if !cand.Overlaps(r) {
						continue
					}
					if coverIsFineGrained(part, cand, 1.5) {
						continue // refinement has converged here
					}
					size := part.EstimateCandidateSize(cand)
					if size < d.Cfg.minFragBytes() {
						continue // lower bound: file-system block size
					}
					fs := pstat.Frag(cand)
					if fs.Size == 0 {
						fs.Size = size
					}
					recordCandidateHit(fs, now)
					fc := fragCandidate{
						viewID:     viewID,
						attr:       rp.Col,
						iv:         cand,
						estSize:    size,
						createCost: d.refinementCostEstimate(part, cand),
					}
					if d.Cfg.overlapping() && !d.Cfg.NoByproduct && inExecutedStream(viewID, rp.Col, cand) {
						fc.byproduct = true
						fc.createCost = d.writeCostEstimate(size, 1)
					}
					add(fc)
				}
			}
		}
	})

	// Gap recovery from the executed rewriting's remainders.
	if bestRW != nil && bestRW.HasRemainder && bestRW.GapsArePure && d.Cfg.refines() {
		pv := d.Pool.View(bestRW.ViewID)
		if pv != nil {
			if vs, ok := d.Stats.LookupView(bestRW.ViewID); ok {
				part := pv.Parts[bestRW.PartAttr]
				for i, g := range bestRW.Gaps {
					size := d.uniformFragSize(bestRW.ViewID, part.Dom, g)
					if size < d.Cfg.minFragBytes() {
						continue
					}
					pstat := d.Stats.Partition(bestRW.ViewID, bestRW.PartAttr, part.Dom)
					fs := pstat.Frag(g)
					if fs.Size == 0 {
						fs.Size = size
					}
					recordCandidateHit(fs, now)
					add(fragCandidate{
						viewID:     bestRW.ViewID,
						attr:       bestRW.PartAttr,
						iv:         g,
						estSize:    size,
						createCost: d.writeCostEstimate(size, 1),
						fromGap:    true,
						gapNode:    bestRW.Remainders[i],
					})
				}
				_ = vs
			}
		}
	}
	return out
}

// refinementCostEstimate prices the materialization of a candidate
// fragment: read every overlapping parent, write either the split pieces
// (horizontal) or just the candidate (overlapping mode). This is the
// paper's COST(Icand) generalised to account for sibling writes forced by
// horizontal splitting.
func (d *DeepSea) refinementCostEstimate(part *partition.Partition, cand interval.Interval) float64 {
	ref := part.PlanRefinement(cand)
	cm := d.Eng.CostModel()
	var cost float64
	var readBytes int64
	for _, f := range ref.Read {
		readBytes += f.Size
	}
	sec, _ := cm.ReadCost(readBytes, int64(len(ref.Read)))
	cost += sec
	var writeBytes int64
	for _, iv := range ref.Write {
		writeBytes += part.EstimateCandidateSize(iv)
	}
	if len(ref.Write) > 0 {
		cost += cm.WriteCost(writeBytes, int64(len(ref.Write)))
	}
	return cost
}

// coverIsFineGrained reports whether the candidate's range is already
// fully covered by fragments no more than factor times its own width —
// in which case a further refinement would buy (almost) nothing and only
// churn storage. This is the convergence condition of progressive
// partitioning: once the hot region is tiled at query granularity, the
// stream of slightly-shifted candidates stops producing work.
func coverIsFineGrained(part *partition.Partition, cand interval.Interval, factor float64) bool {
	frags, _, gaps := part.Cover(cand)
	if len(gaps) > 0 {
		return false
	}
	for _, f := range frags {
		if float64(f.Iv.Len()) > factor*float64(cand.Len()) {
			return false
		}
	}
	return true
}

// uniformFragSize estimates a fragment's size as the view-size share of
// its interval length (uniform-distribution assumption).
func (d *DeepSea) uniformFragSize(viewID string, dom, iv interval.Interval) int64 {
	vs, ok := d.Stats.LookupView(viewID)
	if !ok || vs.Size <= 0 {
		return 0
	}
	return int64(float64(vs.Size) * float64(iv.Len()) / float64(dom.Len()))
}

// recordCandidateHit records a hit for the generating query, guarding
// against duplicates at the same timestamp.
func recordCandidateHit(fs *stats.FragStat, now float64) {
	if n := len(fs.Hits); n > 0 && fs.Hits[n-1] == now {
		return
	}
	fs.RecordHit(now)
}
