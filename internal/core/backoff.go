package core

import (
	"sort"
	"sync"
)

// matMaxFailures is how many failed materialization attempts a view
// gets before further attempts are blacklisted. Materialization is a
// best-effort side effect of query execution (Section 2): a view that
// repeatedly fails to materialize must stop consuming write budget, not
// fail queries.
const matMaxFailures = 3

// matBackoff tracks per-view materialization failures. It is a leaf
// lock: its mutex is never held while acquiring any other manager lock,
// so it needs no lockcheck rank. Callers hold the owning view's stripe
// exclusively when consulting it during maintenance, but distinct views
// share this one map, hence the internal mutex.
type matBackoff struct {
	mu       sync.Mutex
	failures map[string]int
}

func newMatBackoff() *matBackoff {
	return &matBackoff{failures: make(map[string]int)}
}

// allowed reports whether the view may attempt materialization:
// true until the view accumulates matMaxFailures failures (or one
// permanent fault) without an intervening success.
func (b *matBackoff) allowed(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures[id] < matMaxFailures
}

// noteFailure records one failed attempt. A permanent fault (a corrupt
// target, a poisoned definition) blacklists the view immediately;
// transient ones count toward matMaxFailures.
func (b *matBackoff) noteFailure(id string, permanent bool) {
	b.mu.Lock()
	if permanent {
		b.failures[id] = matMaxFailures
	} else {
		b.failures[id]++
	}
	b.mu.Unlock()
}

// noteSuccess clears the view's failure count: a successful attempt
// ends the backoff.
func (b *matBackoff) noteSuccess(id string) {
	b.mu.Lock()
	delete(b.failures, id)
	b.mu.Unlock()
}

// blacklisted reports whether the view has exhausted its attempts
// (observability for reports and tests).
func (b *matBackoff) blacklisted(id string) bool {
	return !b.allowed(id)
}

// snapshot returns the views currently in backoff (failed at least once
// but still allowed to retry) and the blacklisted ones, each sorted —
// the health surface's view of materialization trouble.
func (b *matBackoff) snapshot() (backoff, blacklisted []string) {
	b.mu.Lock()
	for id, n := range b.failures {
		if n >= matMaxFailures {
			blacklisted = append(blacklisted, id)
		} else if n > 0 {
			backoff = append(backoff, id)
		}
	}
	b.mu.Unlock()
	sort.Strings(backoff)
	sort.Strings(blacklisted)
	return backoff, blacklisted
}
