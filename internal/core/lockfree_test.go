//go:build lockcheck

package core

import (
	"fmt"
	"sync"
	"testing"

	"deepsea/internal/lockcheck"
)

// TestCacheHitQueryAcquiresNoTrackedLocks pins the lock-free read path:
// a repeated query answered from the result cache must not touch the
// planning lock, any view stripe, or the pin registry — its reads go
// through the epoch-published snapshots (filter tree, generation map,
// cache) alone. Only meaningful under -tags lockcheck, where every
// tracked acquisition reports to lockcheck.Acquire.
func TestCacheHitQueryAcquiresNoTrackedLocks(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.CacheBytes = 64 << 20 })

	// Prime: the first run plans, executes, maintains, and caches.
	r1 := run(t, d, q30(1000, 1999))
	if r1.CacheHit {
		t.Fatal("first run was a cache hit; nothing was primed")
	}

	var mu sync.Mutex
	var acquired []string
	lockcheck.TestHook = func(rank, idx int, name string) {
		mu.Lock()
		acquired = append(acquired, fmt.Sprintf("%s(rank=%d,idx=%d)", name, rank, idx))
		mu.Unlock()
	}
	defer func() { lockcheck.TestHook = nil }()

	r2 := run(t, d, q30(1000, 1999))
	if !r2.CacheHit {
		t.Fatal("identical repeat was not a cache hit")
	}
	mu.Lock()
	hits := append([]string(nil), acquired...)
	acquired = acquired[:0]
	mu.Unlock()
	if len(hits) != 0 {
		t.Fatalf("cache-hit query acquired tracked locks: %v", hits)
	}

	// Control: a fresh query must report acquisitions, proving the hook
	// observes the locked path at all.
	run(t, d, q30(4000, 4999))
	mu.Lock()
	misses := len(acquired)
	mu.Unlock()
	if misses == 0 {
		t.Fatal("control query reported no acquisitions; the hook is not wired")
	}
}
