package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// The striping tests build independent query families — per-family
// sales/item table pairs with disjoint names — so each family's
// candidate views, and therefore its maintenance lock set, is disjoint
// from every other family's.

func famSalesSchema(name string) relation.Schema {
	s := salesSchema()
	s.Name = name
	return s
}

func famItemSchema(name string) relation.Schema {
	s := itemSchema()
	s.Name = name
	return s
}

func addFamilyTables(d *DeepSea, fam string, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sales := relation.NewTable(famSalesSchema("sales_" + fam))
	for i := 0; i < 8000; i++ {
		sales.Append(relation.Row{
			relation.IntVal(rng.Int63n(testDomHi + 1)),
			relation.IntVal(rng.Int63n(50) + 1),
			relation.StringVal(""),
		})
	}
	d.AddBaseTable(sales)
	item := relation.NewTable(famItemSchema("item_" + fam))
	cats := []string{"books", "music", "video", "games", "food"}
	for i := 0; i <= testDomHi; i++ {
		item.Append(relation.Row{
			relation.IntVal(int64(i)),
			relation.StringVal(cats[i%len(cats)]),
		})
	}
	d.AddBaseTable(item)
}

// famQ is q30 over one family's tables.
func famQ(fam string, lo, hi int64) query.Node {
	q := q30(lo, hi)
	j := q.(*query.Aggregate).Child.(*query.Select).Child.(*query.Project).Child.(*query.Join)
	j.Left = query.NewScan("sales_"+fam, famSalesSchema("sales_"+fam))
	j.Right = query.NewScan("item_"+fam, famItemSchema("item_"+fam))
	return q
}

// newFamilySystem builds a DeepSea instance holding every family's
// tables (family names carry the salt).
func newFamilySystem(t *testing.T, fams []string, mutate func(*Config)) *DeepSea {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d := New(cfg)
	for i, fam := range fams {
		addFamilyTables(d, fam, int64(11+i))
	}
	return d
}

// disjointFamilies searches salted family names whose maintenance lock
// sets land on pairwise disjoint stripes: it runs each family's query
// once on a scratch instance, captures the lock set via OnMaintain, and
// maps it through the stripe hash. View ids are signatures, so stripe
// placement is deterministic but not predictable by hand; with 64
// stripes and a handful of views per family, a few salts always
// suffice.
func disjointFamilies(t *testing.T, nfam int) []string {
	t.Helper()
	for salt := 0; salt < 32; salt++ {
		fams := make([]string, nfam)
		for i := range fams {
			fams[i] = fmt.Sprintf("%c%d", 'a'+i, salt)
		}
		d := newFamilySystem(t, fams, nil)
		var mu sync.Mutex
		var current []string
		sets := make([][]string, nfam)
		d.OnMaintain = func(ids []string, enter bool) {
			if enter {
				mu.Lock()
				current = append([]string(nil), ids...)
				mu.Unlock()
			}
		}
		disjoint := true
		taken := make(map[int]int) // stripe -> family
		for i, fam := range fams {
			run(t, d, famQ(fam, 1000, 3000))
			mu.Lock()
			sets[i] = current
			mu.Unlock()
			if len(sets[i]) == 0 {
				t.Fatalf("family %s: empty maintenance lock set", fam)
			}
			for _, s := range d.views.stripeSet(sets[i]) {
				if owner, ok := taken[s]; ok && owner != i {
					disjoint = false
				}
				taken[s] = i
			}
		}
		if disjoint {
			return fams
		}
	}
	t.Fatal("no salt yielded stripe-disjoint families")
	return nil
}

// rendezvous synchronizes `want` queries in two stages. First, a
// barrier after planning (OnPlanned, outside every manager lock): no
// query proceeds to execution until all have finished planning — a
// query blocked inside maintenance holds its write stripes, which
// would stall the others' planning (planning reads every stripe), so
// the overlap below is only reachable once nobody plans anymore.
// Second, each query blocks inside its maintenance section (OnMaintain)
// until `want` queries are inside simultaneously or the deadline
// passes. If maintenance were serialized by a shared lock, the second
// query could never enter while the first waits, the deadline would
// fire, and maxConcurrent would stay 1.
type rendezvous struct {
	mu       sync.Mutex
	cond     *sync.Cond
	want     int
	planned  int
	cur, max int
	timedOut bool
}

func newRendezvous(want int, timeout time.Duration) *rendezvous {
	r := &rendezvous{want: want}
	r.cond = sync.NewCond(&r.mu)
	time.AfterFunc(timeout, func() {
		r.mu.Lock()
		r.timedOut = true
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	return r
}

func (r *rendezvous) plannedHook(_ []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.planned++
	r.cond.Broadcast()
	for r.planned < r.want && !r.timedOut {
		r.cond.Wait()
	}
}

func (r *rendezvous) hook(_ []string, enter bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !enter {
		r.cur--
		return
	}
	r.cur++
	if r.cur > r.max {
		r.max = r.cur
	}
	r.cond.Broadcast()
	for r.max < r.want && !r.timedOut {
		r.cond.Wait()
	}
}

func (r *rendezvous) maxConcurrent() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// TestDisjointMutatorsOverlap is the striping acceptance test: two
// first-time queries over stripe-disjoint families — each a mutating
// query that materializes its join view — must be inside their
// maintenance sections at the same time, and their results must be
// byte-identical to a serial run of the same queries.
func TestDisjointMutatorsOverlap(t *testing.T) {
	fams := disjointFamilies(t, 2)

	// Serial reference fingerprints on a fresh instance.
	serial := newFamilySystem(t, fams, nil)
	want := make([]string, len(fams))
	for i, fam := range fams {
		want[i] = run(t, serial, famQ(fam, 1000, 3000)).Result.Fingerprint()
	}

	d := newFamilySystem(t, fams, nil)
	r := newRendezvous(len(fams), 10*time.Second)
	d.OnPlanned = r.plannedHook
	d.OnMaintain = r.hook

	reports := make([]QueryReport, len(fams))
	errs := make([]error, len(fams))
	var wg sync.WaitGroup
	for i, fam := range fams {
		wg.Add(1)
		go func(i int, fam string) {
			defer wg.Done()
			reports[i], errs[i] = d.ProcessQuery(famQ(fam, 1000, 3000))
		}(i, fam)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("family %s: %v", fams[i], err)
		}
	}
	if got := r.maxConcurrent(); got < len(fams) {
		t.Errorf("max concurrent maintenance sections = %d, want %d: disjoint mutators did not overlap", got, len(fams))
	}
	for i, rep := range reports {
		if len(rep.MaterializedViews) == 0 {
			t.Errorf("family %s: first query did not materialize (not a mutating query)", fams[i])
		}
		if rep.Result.Fingerprint() != want[i] {
			t.Errorf("family %s: concurrent result differs from serial run", fams[i])
		}
	}
	if err := d.Pool.VerifySize(); err != nil {
		t.Error(err)
	}
	if len(d.pinned) != 0 {
		t.Errorf("pins leaked: %v", d.pinned)
	}
}

// TestStripedWorkloadMatchesSerial runs the same mixed two-family
// workload serially and concurrently (one goroutine per family) on
// fresh instances and demands byte-identical per-query results and
// consistent pool accounting — the determinism contract of the striped
// manager.
func TestStripedWorkloadMatchesSerial(t *testing.T) {
	fams := []string{"x", "y"}
	const perFam = 12
	type qr struct{ lo, hi int64 }
	rng := rand.New(rand.NewSource(42))
	queries := make(map[string][]qr)
	for _, fam := range fams {
		for i := 0; i < perFam; i++ {
			width := rng.Int63n(2500) + 200
			lo := rng.Int63n(testDomHi - width)
			queries[fam] = append(queries[fam], qr{lo, lo + width})
		}
	}

	serial := newFamilySystem(t, fams, nil)
	want := make(map[string][]string)
	for _, fam := range fams {
		for _, q := range queries[fam] {
			want[fam] = append(want[fam], run(t, serial, famQ(fam, q.lo, q.hi)).Result.Fingerprint())
		}
	}

	d := newFamilySystem(t, fams, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, len(fams)*perFam)
	for _, fam := range fams {
		wg.Add(1)
		go func(fam string) {
			defer wg.Done()
			for i, q := range queries[fam] {
				rep, err := d.ProcessQuery(famQ(fam, q.lo, q.hi))
				if err != nil {
					errCh <- fmt.Errorf("family %s query %d: %w", fam, i, err)
					return
				}
				if rep.Result.Fingerprint() != want[fam][i] {
					t.Errorf("family %s query %d: striped result differs from serial", fam, i)
				}
			}
		}(fam)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := d.Pool.VerifySize(); err != nil {
		t.Error(err)
	}
	if fs, pool := d.Eng.FS().TotalSize(), d.Pool.TotalSize(); fs != pool {
		t.Errorf("FS size %d != pool size %d", fs, pool)
	}
	if len(d.pinned) != 0 {
		t.Errorf("pins leaked: %v", d.pinned)
	}
}

// TestMaintenanceViewsSortedDeduped pins the canonical lock-set order:
// sorted by id, no duplicates, step through the stripe map unchanged.
func TestMaintenanceViewsSortedDeduped(t *testing.T) {
	d := newTestSystem(t, nil)
	var got [][]string
	d.OnMaintain = func(ids []string, enter bool) {
		if enter {
			got = append(got, append([]string(nil), ids...))
		}
	}
	run(t, d, q30(100, 600))
	run(t, d, q30(2000, 2500))
	if len(got) != 2 {
		t.Fatalf("expected 2 maintenance sections, saw %d", len(got))
	}
	for _, ids := range got {
		if len(ids) == 0 {
			t.Fatal("empty lock set for a materializing query")
		}
		seen := make(map[string]bool)
		for i, id := range ids {
			if i > 0 && !(ids[i-1] < id) {
				t.Errorf("lock set not strictly sorted: %v", ids)
				break
			}
			if seen[id] {
				t.Errorf("duplicate id %s in lock set", id)
			}
			seen[id] = true
		}
	}
}

// TestLockStripesConfig exercises degenerate stripe counts: a single
// stripe serializes everything but must stay correct, and the zero
// value selects the default.
func TestLockStripesConfig(t *testing.T) {
	d := newTestSystem(t, func(c *Config) { c.LockStripes = 1 })
	r1 := run(t, d, q30(100, 600))
	if len(r1.MaterializedViews) == 0 {
		t.Fatal("single-stripe system did not materialize")
	}
	r2 := run(t, d, q30(100, 600))
	if !r2.Rewritten && !r2.CacheHit {
		t.Error("single-stripe system did not reuse the view")
	}
	if got := len(New(testConfig()).views.stripes); got != defaultLockStripes {
		t.Errorf("default stripe count = %d, want %d", got, defaultLockStripes)
	}
}
