// Package core implements DeepSea's query-processing loop (Algorithm 1):
// matching, statistics updates, rewriting selection, view and partition
// candidate generation (Definitions 6 and 7), candidate filtering and
// value-ranked selection (Section 7), query instrumentation, and pool
// maintenance. Baseline systems (Hive, NP, equi-depth, Nectar, Nectar+,
// no-repartitioning) are configurations of the same loop.
package core

import (
	"deepsea/internal/datastore"
	"deepsea/internal/engine"
	"deepsea/internal/faults"
	"deepsea/internal/relation"
	"deepsea/internal/storage"
)

// PartitionMode selects how materialized views are partitioned.
type PartitionMode int

// Partitioning strategies.
const (
	// PartitionNone stores each view as a single file (the paper's NP
	// baseline, akin to ReStore with logical matching).
	PartitionNone PartitionMode = iota
	// PartitionEquiDepth partitions each view into EquiDepthK fragments
	// holding equally many rows at creation time and never refines (the
	// paper's E-k baseline).
	PartitionEquiDepth
	// PartitionAdaptive partitions views on the workload-derived
	// boundaries and progressively refines by splitting fragments
	// (horizontal partitioning: splits rewrite their parents).
	PartitionAdaptive
	// PartitionAdaptiveOverlap is PartitionAdaptive with overlapping
	// fragments: refinements write only the new fragment and keep the
	// parents (DeepSea's default, Section 3).
	PartitionAdaptiveOverlap
	// PartitionAdaptiveNoRepartition uses the workload-derived initial
	// partitioning but never refines afterwards (the paper's NR
	// baseline, Section 10.4).
	PartitionAdaptiveNoRepartition
)

// String returns the evaluation-section abbreviation of the mode.
func (m PartitionMode) String() string {
	switch m {
	case PartitionNone:
		return "NP"
	case PartitionEquiDepth:
		return "E"
	case PartitionAdaptive:
		return "DS-H"
	case PartitionAdaptiveOverlap:
		return "DS"
	case PartitionAdaptiveNoRepartition:
		return "NR"
	default:
		return "?"
	}
}

// SelectionPolicy selects the value measure used to rank views and
// fragments during pool selection.
type SelectionPolicy int

// Selection policies.
const (
	// SelectDeepSea ranks by Φ with decayed benefits and MLE-adjusted
	// fragment hits (the full model of Section 7.1).
	SelectDeepSea SelectionPolicy = iota
	// SelectDeepSeaRawHits is SelectDeepSea without the probabilistic
	// smoothing — fragments are ranked on their raw decayed hits
	// (ablation of the fragment-correlation model).
	SelectDeepSeaRawHits
	// SelectNectar ranks by the plain Nectar measure (most recent
	// saving, no accumulation, no decay).
	SelectNectar
	// SelectNectarPlus ranks by Nectar+, which accumulates benefit but
	// applies no decay (Section 10.1).
	SelectNectarPlus
)

// String returns the evaluation-section abbreviation of the policy.
func (p SelectionPolicy) String() string {
	switch p {
	case SelectDeepSea:
		return "DS"
	case SelectDeepSeaRawHits:
		return "DS-raw"
	case SelectNectar:
		return "N"
	case SelectNectarPlus:
		return "N+"
	default:
		return "?"
	}
}

// Config assembles a DeepSea instance or one of the paper's baselines.
type Config struct {
	// Smax is the pool size limit in bytes (0 = unlimited).
	Smax int64
	// Materialize enables view materialization entirely; false gives the
	// vanilla Hive baseline.
	Materialize bool
	// Partition selects the partitioning strategy.
	Partition PartitionMode
	// EquiDepthK is the fragment count for PartitionEquiDepth.
	EquiDepthK int
	// Selection selects the candidate/eviction value measure.
	Selection SelectionPolicy
	// DecayTMax is the benefit timeout of the decay function in
	// simulated seconds (0 = no timeout).
	DecayTMax float64
	// MaxFragFraction is the paper's φ: fragments larger than
	// φ·S(V) are split at materialization time. 0 disables the bound.
	MaxFragFraction float64
	// MinFragBytes is the lower bound for fragment sizes; 0 selects the
	// file-system block size, as in the paper.
	MinFragBytes int64
	// PartitionAttrs restricts which ordered attributes are considered
	// as partition keys; nil considers every ordered attribute that
	// appears in a selection.
	PartitionAttrs map[string]bool
	// PhysicalMatch restricts view matching to exact signature equality
	// (no compensating selections or projections) — ReStore-style
	// physical matching, the weaker alternative the paper contrasts its
	// logical matching with (Section 2).
	PhysicalMatch bool
	// NoGuards disables guard fragments (the medium fragments carved
	// next to hot pieces); ablation knob.
	NoGuards bool
	// NoByproduct disables by-product pricing of overlap-mode
	// refinements (they then pay read + write like horizontal splits);
	// ablation knob.
	NoByproduct bool
	// MergeFragments enables the paper's Section 11 extension: adjacent
	// small fragments that are repeatedly co-accessed by the same
	// queries are merged into one, reducing per-file read overheads.
	MergeFragments bool
	// RematOnAppend disables incremental view refresh on base-table
	// appends: every dependent view is dropped instead and re-earned by
	// future queries (invalidate-and-recompute). Baseline arm of the
	// ingestspeed experiment.
	RematOnAppend bool
	// CostModel configures the simulated cluster; zero value selects
	// engine.DefaultCostModel.
	CostModel *engine.CostModel
	// ExecuteRows selects real row execution (true) or the estimate-only
	// simulator mode.
	ExecuteRows bool
	// Parallelism is the engine's data-path worker count; 0 keeps the
	// engine default (runtime.GOMAXPROCS), 1 forces sequential
	// execution. Results are byte-identical for every setting.
	Parallelism int
	// CacheBytes bounds the fingerprint-keyed result cache (bytes of
	// cached rows); 0 disables caching. Only meaningful with
	// ExecuteRows: in estimate-only mode there are no rows to cache.
	CacheBytes int64
	// CacheMaxEntryFraction is the cost-aware cache admission guard: a
	// result larger than this fraction of CacheBytes is never cached, so
	// one giant result cannot evict the whole working set. 0 selects the
	// default (1/8); negative disables the guard (any result up to
	// CacheBytes is admitted); values above 1 clamp to 1.
	CacheMaxEntryFraction float64
	// LockStripes is the stripe count of the per-view lock set that
	// serializes pool maintenance per view; 0 selects the default (64).
	// Views that hash onto the same stripe serialize their maintenance
	// but stay correct — the knob trades memory for parallelism.
	LockStripes int
	// StatsShards is the shard count of the statistics registry; 0
	// selects the default (16). Purely a contention knob: the registry
	// behaves identically at every setting.
	StatsShards int
	// Faults configures deterministic fault injection into storage, the
	// engine's workers and materialization (chaos testing); nil — the
	// default — runs fault-free at the cost of one pointer comparison
	// per injection site.
	Faults *faults.Config
	// FaultRetries bounds how many times one query is retried after a
	// recoverable fault (a quarantined fragment read, a transient worker
	// fault) before its error is returned; 0 selects the default (3).
	FaultRetries int
	// Datastore is the persistence boundary: pool, statistics and
	// materialized-file mutations journal through it and recovery replays
	// them on construction. nil — the default — keeps the historical
	// in-memory-only behaviour (as does datastore.Null). The caller owns
	// the store's lifecycle (Close after the instance drains).
	Datastore datastore.Store
	// MaintWorkers moves pool maintenance (materialization, splits,
	// merges, eviction, speculative re-materialization) off the query
	// path onto a background worker pool with this many workers: queries
	// enqueue Φ-ranked maintenance candidates and return after execution,
	// never paying materialization cost. 0 — the default — keeps the
	// historical inline behaviour (step 9 runs on the query goroutine).
	MaintWorkers int
	// MaintQueue bounds the background maintenance queue; when full, new
	// candidates are dropped (they will be re-proposed by later queries
	// over the same ranges). 0 selects the default (1024). Only
	// meaningful with MaintWorkers > 0.
	MaintQueue int
}

// DefaultConfig returns the full DeepSea system with an unlimited pool.
func DefaultConfig() Config {
	return Config{
		Materialize: true,
		Partition:   PartitionAdaptiveOverlap,
		Selection:   SelectDeepSea,
		// Benefits time out after ~ the span of a few dozen cluster-scale
		// queries, so the hit model re-centres after a workload shift
		// (the paper's tmax; Section 7.1).
		DecayTMax:       3000,
		MaxFragFraction: 0.1,
		ExecuteRows:     true,
	}
}

func (c *Config) minFragBytes() int64 {
	if c.MinFragBytes > 0 {
		return c.MinFragBytes
	}
	if c.CostModel != nil && c.CostModel.BlockSize > 0 {
		return c.CostModel.BlockSize
	}
	return storage.DefaultBlockSize
}

func (c *Config) adaptive() bool {
	switch c.Partition {
	case PartitionAdaptive, PartitionAdaptiveOverlap, PartitionAdaptiveNoRepartition:
		return true
	default:
		return false
	}
}

func (c *Config) refines() bool {
	switch c.Partition {
	case PartitionAdaptive, PartitionAdaptiveOverlap:
		return true
	default:
		return false
	}
}

func (c *Config) overlapping() bool {
	return c.Partition == PartitionAdaptiveOverlap
}

// defaultCacheMaxEntryFraction is the cache admission guard when Config
// leaves CacheMaxEntryFraction at zero: one entry may occupy at most an
// eighth of the cache.
const defaultCacheMaxEntryFraction = 1.0 / 8

// cacheMaxEntryBytes resolves the per-entry cache admission limit.
func (c *Config) cacheMaxEntryBytes() int64 {
	frac := c.CacheMaxEntryFraction
	switch {
	case frac < 0:
		return c.CacheBytes
	case frac == 0:
		frac = defaultCacheMaxEntryFraction
	case frac > 1:
		frac = 1
	}
	return int64(frac * float64(c.CacheBytes))
}

// defaultFaultRetries is the per-query retry bound when Config leaves
// FaultRetries at zero.
const defaultFaultRetries = 3

func (c *Config) faultRetries() int {
	if c.FaultRetries > 0 {
		return c.FaultRetries
	}
	return defaultFaultRetries
}

// defaultMaintQueue bounds the background maintenance queue when Config
// leaves MaintQueue at zero.
const defaultMaintQueue = 1024

func (c *Config) maintQueue() int {
	if c.MaintQueue > 0 {
		return c.MaintQueue
	}
	return defaultMaintQueue
}

// background reports whether maintenance runs on the worker pool rather
// than inline on the query goroutine.
func (c *Config) background() bool { return c.MaintWorkers > 0 }

// QueryReport summarises how one query was processed.
type QueryReport struct {
	// Result holds the query output (nil in estimate-only mode).
	Result *relation.Table
	// ExecCost is the simulated cost of running the (possibly rewritten)
	// query.
	ExecCost engine.Cost
	// MatCost is the simulated cost of view/fragment materialization and
	// repartitioning charged to this query.
	MatCost engine.Cost
	// TotalSeconds is ExecCost + MatCost in seconds — the elapsed time
	// the workload pays for this query.
	TotalSeconds float64
	// CacheHit reports that the result came from the result cache; the
	// query then skipped Algorithm 1 entirely and paid no simulated
	// cost.
	CacheHit bool
	// Rewritten reports whether a view was used.
	Rewritten bool
	// UsedView is the id of the view read (empty if none).
	UsedView string
	// FragmentsRead is the number of fragments the rewriting read.
	FragmentsRead int
	// RemainderGaps is the number of uncovered gaps computed from base
	// data.
	RemainderGaps int
	// MaterializedViews and MaterializedFrags list what was created.
	MaterializedViews []string
	MaterializedFrags []string
	// MergedFrags lists fragments produced by co-access merging (the
	// Section 11 extension; only with Config.MergeFragments).
	MergedFrags []string
	// Evicted lists pool items removed to make space.
	Evicted []string
	// Quarantined lists storage paths removed from the pool because a
	// read of them failed while answering this query; the query was then
	// re-answered around them from base data.
	Quarantined []string
	// MatFailed lists views whose materialization attempt failed during
	// this query (the query itself still succeeded; the view is under
	// backoff and may be blacklisted after repeated failures).
	MatFailed []string
	// Retries is how many times the query was re-executed after
	// recoverable faults before this (successful) answer.
	Retries int
	// DeferredMaintenance reports that pool maintenance for this query
	// was enqueued to the background pool instead of applied inline
	// (Config.MaintWorkers > 0): MatCost is then zero and the
	// Materialized*/Merged/Evicted lists are empty — the work lands
	// asynchronously and is charged to the background clock.
	DeferredMaintenance bool
	// MaintTasksEnqueued is how many maintenance tasks this query
	// proposed to the background pool (deduplicated tasks still count;
	// only meaningful with DeferredMaintenance).
	MaintTasksEnqueued int
}
