package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"deepsea/internal/leakcheck"
)

// TestProcessQueryContextPreCancelled: a context cancelled before the
// call returns immediately, takes no locks, leaves no pins, and the
// manager answers the next query normally.
func TestProcessQueryContextPreCancelled(t *testing.T) {
	leakcheck.Check(t)
	d := newTestSystem(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.ProcessQueryContext(ctx, q30(1000, 2999)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ProcessQueryContext = %v, want context.Canceled", err)
	}
	d.pinMu.Lock()
	pins := len(d.pinned)
	d.pinMu.Unlock()
	if pins != 0 {
		t.Errorf("pre-cancelled query left %d pins", pins)
	}
	run(t, d, q30(1000, 2999))
}

// TestProcessQueryContextExpiredDeadline: a dead deadline surfaces as
// DeadlineExceeded, not as a fault or an internal error.
func TestProcessQueryContextExpiredDeadline(t *testing.T) {
	leakcheck.Check(t)
	d := newTestSystem(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := d.ProcessQueryContext(ctx, q30(1000, 2999)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline ProcessQueryContext = %v, want DeadlineExceeded", err)
	}
}

// TestProcessQueryContextMidExecutionCancel cancels deterministically
// between planning and execution via the OnPlanned hook: the paths are
// pinned at that point, so the abort path must drain the pins, hold no
// stripes, keep the pool consistent, and leave the manager fully
// usable — the same query then succeeds with the exact vanilla answer.
func TestProcessQueryContextMidExecutionCancel(t *testing.T) {
	leakcheck.Check(t)
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	want := run(t, vanilla, q30(1000, 2999)).Result.Fingerprint()

	d := newTestSystem(t, nil)
	run(t, d, q30(1000, 2999)) // populate the pool so the plan pins paths

	ctx, cancel := context.WithCancel(context.Background())
	d.OnPlanned = func([]string) { cancel() }
	_, err := d.ProcessQueryContext(ctx, q30(1000, 2999))
	d.OnPlanned = nil
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-execution cancel = %v, want context.Canceled", err)
	}

	d.pinMu.Lock()
	pins := len(d.pinned)
	d.pinMu.Unlock()
	if pins != 0 {
		t.Errorf("cancelled query left %d pins", pins)
	}
	assertPoolInvariants(t, d, "after cancel")

	// The stripes and planMu were released: the same query runs to
	// completion and the answer is still exact.
	rep := run(t, d, q30(1000, 2999))
	if rep.Result.Fingerprint() != want {
		t.Error("post-cancel query returned a wrong result")
	}
}

// TestProcessQueryContextCancelBeatsRetries: cancellation wins over the
// fault-retry loop — with every stored read failing and a huge retry
// budget, a cancelled context still returns context.Canceled promptly
// instead of spinning through retries.
func TestProcessQueryContextCancelBeatsRetries(t *testing.T) {
	leakcheck.Check(t)
	d := newTestSystem(t, nil)
	run(t, d, q30(1000, 2999)) // materialize something to read

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	d.OnPlanned = func([]string) {
		calls++
		cancel()
	}
	_, err := d.ProcessQueryContext(ctx, q30(1000, 2999))
	d.OnPlanned = nil
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel during retry loop = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("retry loop ran %d attempts after cancel, want 1", calls)
	}
}
