package core

import (
	"encoding/json"
	"testing"

	"deepsea/internal/datastore"
)

// persistWorkload drives enough repeated range queries that views
// materialize, fragments form and refine, and the clock advances.
func persistWorkload(t *testing.T, d *DeepSea) {
	t.Helper()
	for _, q := range []struct{ lo, hi int64 }{
		{0, 4999}, {1000, 2999}, {3000, 4999}, {500, 1499},
		{2000, 2499}, {0, 4999}, {1000, 2999}, {2000, 2499},
	} {
		run(t, d, q30(q.lo, q.hi))
	}
}

// durableManifest renders the state recovery must reproduce exactly in
// every mode: the simulated file system, the pool manifest, the cache
// generations and the clock. (Statistics estimates that planning
// recomputes each pass are deliberately not journaled, so they are
// only byte-stable across a snapshot — fullManifest covers that.)
func durableManifest(t *testing.T, d *DeepSea) string {
	t.Helper()
	s := d.buildSnapshot()
	s.Stats = nil
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fullManifest includes the statistics registry too.
func fullManifest(t *testing.T, d *DeepSea) string {
	t.Helper()
	b, err := json.Marshal(d.buildSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func openStore(t *testing.T, dir string) *datastore.FileStore {
	t.Helper()
	s, err := datastore.Open(dir)
	if err != nil {
		t.Fatalf("datastore.Open: %v", err)
	}
	return s
}

func TestRecoveryFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir)
	d1 := newTestSystem(t, func(c *Config) { c.Datastore = s1 })
	persistWorkload(t, d1)
	if err := d1.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	want := fullManifest(t, d1)
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	d2 := newTestSystem(t, func(c *Config) { c.Datastore = s2 })
	rec := d2.Recovery()
	if !rec.Ran || !rec.FromSnapshot || rec.Err != "" {
		t.Fatalf("recovery = %+v, want snapshot recovery with no error", rec)
	}
	if got := fullManifest(t, d2); got != want {
		t.Errorf("recovered state diverges from snapshot:\n got %s\nwant %s", got, want)
	}
	if err := d2.Pool.VerifySize(); err != nil {
		t.Errorf("recovered pool consistency walk: %v", err)
	}

	// The warm pool answers the repeated template from views, and the
	// result matches a vanilla run.
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	wantFP := run(t, vanilla, q30(1000, 2999)).Result.Fingerprint()
	rep := run(t, d2, q30(1000, 2999))
	if !rep.Rewritten {
		t.Error("recovered instance did not rewrite a previously hot query")
	}
	if rep.Result.Fingerprint() != wantFP {
		t.Error("recovered instance returned wrong rows")
	}
}

func TestRecoveryJournalOnly(t *testing.T) {
	// No snapshot is ever taken: recovery is pure journal replay, as
	// after a kill -9 before the first checkpoint. The first store is
	// deliberately not closed — a crashed process closes nothing.
	dir := t.TempDir()
	s1 := openStore(t, dir)
	d1 := newTestSystem(t, func(c *Config) { c.Datastore = s1 })
	persistWorkload(t, d1)
	want := durableManifest(t, d1)

	s2 := openStore(t, dir)
	defer s2.Close()
	d2 := newTestSystem(t, func(c *Config) { c.Datastore = s2 })
	rec := d2.Recovery()
	if !rec.Ran || rec.FromSnapshot || rec.Err != "" {
		t.Fatalf("recovery = %+v, want journal-only recovery with no error", rec)
	}
	if rec.Replayed == 0 {
		t.Fatal("journal-only recovery replayed nothing")
	}
	if rec.Skipped != 0 {
		t.Errorf("replay skipped %d records", rec.Skipped)
	}
	if got := durableManifest(t, d2); got != want {
		t.Errorf("replayed state diverges:\n got %s\nwant %s", got, want)
	}
	if err := d2.Pool.VerifySize(); err != nil {
		t.Errorf("recovered pool consistency walk: %v", err)
	}
	rep := run(t, d2, q30(1000, 2999))
	if !rep.Rewritten {
		t.Error("journal-recovered instance did not rewrite a hot query")
	}
}

func TestRecoverySnapshotPlusTail(t *testing.T) {
	// A checkpoint mid-workload plus journaled mutations after it: the
	// common crash shape. Recovery loads the snapshot and replays the
	// tail on top.
	dir := t.TempDir()
	s1 := openStore(t, dir)
	d1 := newTestSystem(t, func(c *Config) { c.Datastore = s1 })
	run(t, d1, q30(0, 4999))
	run(t, d1, q30(1000, 2999))
	if err := d1.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	run(t, d1, q30(3000, 4999))
	run(t, d1, q30(1000, 2999))
	run(t, d1, q30(500, 1499))
	want := durableManifest(t, d1)

	s2 := openStore(t, dir)
	defer s2.Close()
	d2 := newTestSystem(t, func(c *Config) { c.Datastore = s2 })
	rec := d2.Recovery()
	if !rec.Ran || !rec.FromSnapshot || rec.Err != "" {
		t.Fatalf("recovery = %+v, want snapshot+tail recovery", rec)
	}
	if rec.Replayed == 0 {
		t.Fatal("no tail records replayed past the snapshot")
	}
	if got := durableManifest(t, d2); got != want {
		t.Errorf("snapshot+tail state diverges:\n got %s\nwant %s", got, want)
	}
	if err := d2.Pool.VerifySize(); err != nil {
		t.Errorf("recovered pool consistency walk: %v", err)
	}
}

func TestRecoveryFatalFallsBackCold(t *testing.T) {
	// A snapshot that is valid JSON but not a core snapshot is a
	// structural failure: the instance must start cold, report the error,
	// and overwrite the stored state so the corruption cannot replay
	// again.
	dir := t.TempDir()
	s1 := openStore(t, dir)
	if err := s1.WriteSnapshot([]byte(`[1,2,3]`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s1.Close()

	s2 := openStore(t, dir)
	d2 := newTestSystem(t, func(c *Config) { c.Datastore = s2 })
	rec := d2.Recovery()
	if !rec.Ran || rec.Err == "" {
		t.Fatalf("recovery = %+v, want a reported fatal error", rec)
	}
	// The cold instance still works...
	rep := run(t, d2, q30(1000, 2999))
	if rep.Result == nil {
		t.Fatal("cold-started instance returned no rows")
	}
	s2.Close()

	// ...and the poisoned history was replaced: the next boot recovers
	// the overwritten (cold) snapshot without error.
	s3 := openStore(t, dir)
	defer s3.Close()
	d3 := newTestSystem(t, func(c *Config) { c.Datastore = s3 })
	if rec := d3.Recovery(); rec.Err != "" {
		t.Fatalf("second boot still fails: %+v", rec)
	}
	if err := d3.Pool.VerifySize(); err != nil {
		t.Errorf("pool consistency walk: %v", err)
	}
}

func TestSnapshotNoopWithoutStore(t *testing.T) {
	d := newTestSystem(t, nil)
	if err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot without a datastore: %v", err)
	}
	if rec := d.Recovery(); rec.Ran {
		t.Errorf("recovery ran without a datastore: %+v", rec)
	}
}
