package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentProcessQuery hammers one shared DeepSea instance from
// several goroutines. Every answer must equal the vanilla engine's
// result for the same query, and after the storm the pool's incremental
// size counter, its deep structures, and the file system must all
// agree. Run under -race this is the concurrency suite's anchor test.
func TestConcurrentProcessQuery(t *testing.T) {
	const (
		goroutines = 8
		perG       = 15
	)
	type qr struct{ lo, hi int64 }
	rng := rand.New(rand.NewSource(99))
	queries := make([]qr, goroutines*perG)
	for i := range queries {
		width := rng.Int63n(2500) + 200
		lo := rng.Int63n(testDomHi - width)
		queries[i] = qr{lo, lo + width}
	}

	// Vanilla reference answers, computed sequentially.
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = run(t, vanilla, q30(q.lo, q.hi)).Result.Fingerprint()
	}

	d := newTestSystem(t, func(c *Config) { c.Smax = 3 << 30 })
	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * perG; i < (g+1)*perG; i++ {
				rep, err := d.ProcessQuery(q30(queries[i].lo, queries[i].hi))
				if err != nil {
					errs <- err
					return
				}
				if got := rep.Result.Fingerprint(); got != want[i] {
					t.Errorf("query %d: concurrent result differs from vanilla", i)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := d.Pool.VerifySize(); err != nil {
		t.Error(err)
	}
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			if err := part.Validate(); err != nil {
				t.Error(err)
			}
			for _, f := range part.Fragments() {
				if !d.Eng.FS().Exists(f.Path) {
					t.Errorf("pool references missing file %s", f.Path)
				}
			}
		}
	}
	if fs, pool := d.Eng.FS().TotalSize(), d.Pool.TotalSize(); fs != pool {
		t.Errorf("FS size %d != pool size %d", fs, pool)
	}
	if len(d.pinned) != 0 {
		t.Errorf("pins leaked: %v", d.pinned)
	}
}

// TestSequentialWorkloadDeterministicAcrossParallelism runs the same
// workload on fresh systems at parallelism 1 and 8 and demands exactly
// equal result rows and pool contents — the byte-identical guarantee of
// the chunked data path.
func TestSequentialWorkloadDeterministicAcrossParallelism(t *testing.T) {
	type qr struct{ lo, hi int64 }
	rng := rand.New(rand.NewSource(5))
	queries := make([]qr, 25)
	for i := range queries {
		width := rng.Int63n(2000) + 100
		lo := rng.Int63n(testDomHi - width)
		queries[i] = qr{lo, lo + width}
	}

	type outcome struct {
		results []string
		files   map[string]int64
	}
	runAll := func(par int) outcome {
		d := newTestSystem(t, func(c *Config) {
			c.Smax = 3 << 30
			c.Parallelism = par
		})
		var o outcome
		for _, q := range queries {
			rep := run(t, d, q30(q.lo, q.hi))
			o.results = append(o.results, rep.Result.Fingerprint())
		}
		o.files = make(map[string]int64)
		for _, f := range d.Eng.FS().List() {
			o.files[f.Path] = f.Size
		}
		return o
	}

	seq, par := runAll(1), runAll(8)
	for i := range seq.results {
		if seq.results[i] != par.results[i] {
			t.Errorf("query %d: parallelism changed the result", i)
		}
	}
	if len(seq.files) != len(par.files) {
		t.Fatalf("file count differs: %d sequential vs %d parallel", len(seq.files), len(par.files))
	}
	for path, size := range seq.files {
		if par.files[path] != size {
			t.Errorf("file %s: size %d sequential vs %d parallel", path, size, par.files[path])
		}
	}
}
