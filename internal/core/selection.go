package core

import (
	"deepsea/internal/interval"
	"deepsea/internal/partition"
	"deepsea/internal/pool"
	"deepsea/internal/stats"
)

// selectedView is a view candidate chosen for materialization, possibly
// only partially: when the pool cannot hold the whole view, only the
// selected initial fragments are written (Section 7.3 treats candidate
// fragments individually, so a 7 GB pool can hold the hot fragments of a
// 19 GB view).
type selectedView struct {
	vc viewCandidate
	// attr is the partition attribute ("" = store unpartitioned).
	attr string
	dom  interval.Interval
	// pieces lists the selected initial fragments; nil means all.
	pieces []interval.Interval
	// value is the selection's Φ ranking of the admitted candidate (the
	// max over its admitted pieces) — background maintenance orders its
	// queue by it.
	value float64
}

// selectConfiguration implements Sections 7.2 and 7.3: filter view and
// fragment candidates by cost <= benefit, assemble ALLCAND (filtered
// candidates plus every fragment and unpartitioned view in the pool),
// rank by the configured value measure, and greedily pick the next
// configuration. Adaptive-mode view candidates enter ALLCAND as their
// individual initial fragments ("candidate views and fragments are
// treated alike"); non-partitioned and equi-depth views enter whole. It
// returns the views/fragments to materialize and the pool items to
// evict.
func (d *DeepSea) selectConfiguration(vcands []viewCandidate, fcands []fragCandidate) ([]selectedView, []fragCandidate, []pool.Candidate) {
	now := d.Eng.Now()
	decay := d.Stats.Decay

	// Section 7.2 filter: benefit must offset the marginal creation cost
	// (the write — the rows come for free as a by-product of execution).
	var vsel []viewCandidate
	for _, vc := range vcands {
		vs := d.Stats.View(vc.id)
		if vc.matCost <= d.viewBenefit(vs, now, decay) {
			vsel = append(vsel, vc)
		}
	}
	var psel []fragCandidate
	for _, fc := range fcands {
		if fc.createCost <= d.fragBenefit(fc.viewID, fc.attr, fc.iv, now, decay) {
			psel = append(psel, fc)
		}
	}

	// ALLCAND: filtered candidates + pool fragments + pool whole views.
	type newPiece struct {
		vc   viewCandidate
		attr string
		dom  interval.Interval
		iv   interval.Interval
	}
	var items []pool.Candidate
	backV := make(map[string]viewCandidate)    // whole-view candidates
	backP := make(map[string]newPiece)         // initial-fragment candidates
	backF := make(map[string]fragCandidate)    // refinement candidates
	wholeInfo := make(map[string]selectedView) // id -> attr/dom for whole views
	for _, fc := range psel {
		c := pool.Candidate{
			Kind:   pool.Frag,
			ViewID: fc.viewID,
			Attr:   fc.attr,
			Iv:     fc.iv,
			Size:   fc.estSize,
			Value:  d.fragValue(fc.viewID, fc.attr, fc.iv, now, decay),
		}
		items = append(items, c)
		backF[c.Key()] = fc
	}
	for _, vc := range vsel {
		proposed := false
		if d.Cfg.adaptive() {
			// Propose initial fragments for EVERY partition attribute
			// with selection evidence — the configuration's P(V, A)
			// mapping permits multiple partitions of a view on different
			// attributes (Definition 3).
			for _, pstat := range d.Stats.Partitions(vc.id) {
				if i := vc.schema.ColIndex(pstat.Attr); i < 0 || !vc.schema.Cols[i].Ordered {
					continue
				}
				attr, dom := pstat.Attr, pstat.Dom
				pieces := []interval.Interval(pstat.Cand.Clone())
				if len(pieces) == 0 {
					pieces = []interval.Interval{dom}
				}
				// Propose mergeable units at or above the block-size
				// bound, exactly as materialization would coalesce them
				// — otherwise a hot piece narrower than a block could
				// never be admitted and its range would stay a
				// permanent hole.
				pieces = coalesceMin(pieces, func(iv interval.Interval) int64 {
					return d.uniformFragSize(vc.id, dom, iv)
				}, d.Cfg.minFragBytes())
				var existing *partition.Partition
				if pv := d.Pool.View(vc.id); pv != nil {
					existing = pv.Parts[attr]
				}
				proposed = true
				for _, iv := range pieces {
					size := d.uniformFragSize(vc.id, dom, iv)
					if existing != nil {
						if _, _, gaps := existing.Cover(iv); len(gaps) == 0 {
							continue // already materialized
						}
					}
					c := pool.Candidate{
						Kind:   pool.Frag,
						ViewID: vc.id,
						Attr:   attr,
						Iv:     iv,
						Size:   size,
						Value:  d.fragValue(vc.id, attr, iv, now, decay),
					}
					if _, dup := backF[c.Key()]; dup {
						continue // a refinement candidate covers this piece
					}
					items = append(items, c)
					backP[c.Key()] = newPiece{vc: vc, attr: attr, dom: dom, iv: iv}
				}
			}
		}
		if proposed {
			continue
		}
		c := pool.Candidate{
			Kind:   pool.WholeView,
			ViewID: vc.id,
			Size:   vc.estBytes,
			Value:  d.viewValue(d.Stats.View(vc.id), now, decay),
		}
		items = append(items, c)
		backV[c.Key()] = vc
		attr, dom, _ := d.partitionKey(vc)
		wholeInfo[vc.id] = selectedView{vc: vc, attr: attr, dom: dom}
	}
	for _, pv := range d.Pool.Views() {
		if pv.Path != "" {
			items = append(items, pool.Candidate{
				Kind:   pool.WholeView,
				ViewID: pv.ID,
				Size:   pv.Size,
				Value:  d.viewValue(d.Stats.View(pv.ID), now, decay),
				InPool: true,
			})
		}
		for _, attr := range pv.PartAttrs() {
			for _, f := range pv.Parts[attr].Fragments() {
				items = append(items, pool.Candidate{
					Kind:   pool.Frag,
					ViewID: pv.ID,
					Attr:   attr,
					Iv:     f.Iv,
					Size:   f.Size,
					Value:  d.fragValue(pv.ID, attr, f.Iv, now, decay),
					InPool: true,
				})
			}
		}
	}

	keep, reject := pool.SelectGreedy(items, d.Cfg.Smax)

	// Group selected pieces by (view, attribute): a view may gain
	// partitions on several attributes in one round.
	byView := make(map[string]*selectedView)
	var order []string
	var selFrags []fragCandidate
	for _, c := range keep {
		if c.InPool {
			continue
		}
		if vc, ok := backV[c.Key()]; ok {
			key := vc.id
			sv := wholeInfo[vc.id]
			sv.value = c.Value
			if _, seen := byView[key]; !seen {
				byView[key] = &sv
				order = append(order, key)
			}
		}
		if np, ok := backP[c.Key()]; ok {
			key := np.vc.id + "\x00" + np.attr
			sv, seen := byView[key]
			if !seen {
				sv = &selectedView{vc: np.vc, attr: np.attr, dom: np.dom}
				byView[key] = sv
				order = append(order, key)
			}
			sv.pieces = append(sv.pieces, np.iv)
			if c.Value > sv.value {
				sv.value = c.Value
			}
		}
		if fc, ok := backF[c.Key()]; ok {
			fc.value = c.Value
			selFrags = append(selFrags, fc)
		}
	}
	var selViews []selectedView
	for _, id := range order {
		selViews = append(selViews, *byView[id])
	}
	var evict []pool.Candidate
	for _, c := range reject {
		if c.InPool {
			evict = append(evict, c)
		}
	}
	return selViews, selFrags, evict
}

// viewBenefit returns the admission benefit of a view under the
// configured policy.
func (d *DeepSea) viewBenefit(vs *stats.ViewStat, now float64, decay stats.Decay) float64 {
	switch d.Cfg.Selection {
	case SelectNectar:
		if len(vs.Uses) == 0 {
			return 0
		}
		return vs.Uses[len(vs.Uses)-1].Saving
	case SelectNectarPlus:
		var sum float64
		for _, u := range vs.Uses {
			sum += u.Saving
		}
		return sum
	default:
		return vs.Benefit(now, decay)
	}
}

// viewValue returns the ranking value of a view under the configured
// policy.
func (d *DeepSea) viewValue(vs *stats.ViewStat, now float64, decay stats.Decay) float64 {
	switch d.Cfg.Selection {
	case SelectNectar:
		return stats.NectarValue(vs, now)
	case SelectNectarPlus:
		return stats.NectarPlusValue(vs, now)
	default:
		return vs.Value(now, decay)
	}
}

// fragBenefit returns the admission benefit of a fragment under the
// configured policy. For the full DeepSea policy hits are smoothed by the
// partition's MLE normal fit (Section 7.1's probabilistic model).
func (d *DeepSea) fragBenefit(viewID, attr string, iv interval.Interval, now float64, decay stats.Decay) float64 {
	vs, ok := d.Stats.LookupView(viewID)
	if !ok {
		return 0
	}
	pstat, ok := d.Stats.LookupPartition(viewID, attr)
	if !ok {
		return 0
	}
	f := pstat.Frag(iv)
	d.refreshFragSize(f, viewID, pstat)
	switch d.Cfg.Selection {
	case SelectDeepSea:
		model := d.normalModel(viewID, attr, pstat, now, decay)
		if model.Valid() {
			return f.BenefitFromHits(model.AdjustedHits(iv), vs.Size, vs.Cost)
		}
		return f.Benefit(now, decay, vs.Size, vs.Cost)
	case SelectDeepSeaRawHits:
		return f.Benefit(now, decay, vs.Size, vs.Cost)
	case SelectNectar:
		if len(f.Hits) == 0 || vs.Size <= 0 {
			return 0
		}
		return float64(f.Size) / float64(vs.Size) * vs.Cost
	case SelectNectarPlus:
		if vs.Size <= 0 {
			return 0
		}
		return float64(f.Size) / float64(vs.Size) * vs.Cost * float64(len(f.Hits))
	default:
		return 0
	}
}

// refreshFragSize re-derives an unmeasured fragment's size estimate from
// the current view size: early size estimates can be stale (the view's
// own size is refined once the view is first captured).
func (d *DeepSea) refreshFragSize(f *stats.FragStat, viewID string, pstat *stats.PartitionStat) {
	if f.Measured {
		return
	}
	if est := d.uniformFragSize(viewID, pstat.Dom, f.Iv); est > 0 {
		f.Size = est
	}
}

// normalModel memoizes FitNormal per (view, attr) within one simulated
// timestamp — selection evaluates many fragments of the same partition.
func (d *DeepSea) normalModel(viewID, attr string, pstat *stats.PartitionStat, now float64, decay stats.Decay) stats.NormalModel {
	if d.mleCacheTime != now || d.mleCache == nil {
		d.mleCache = make(map[string]stats.NormalModel)
		d.mleCacheTime = now
	}
	key := viewID + "\x00" + attr
	if m, ok := d.mleCache[key]; ok {
		return m
	}
	m := pstat.FitNormal(now, decay)
	d.mleCache[key] = m
	return m
}

// fragValue returns the ranking value of a fragment under the configured
// policy.
//
// For the DeepSea policies the paper's Φ(I) = COST(V)·B(I)/S(I) is
// algebraically size-independent (the S(I) terms cancel into
// COST(V)²·H/S(V)), which under a storage budget would prefer
// arbitrarily large fragments over small hot ones. We therefore rank by
// the value DENSITY Φ(I)/S(I) — per-byte value, mirroring the
// 1/S structure the paper's view formula already has. Among equal-size
// fragments the ordering is unchanged (still by adjusted hits), so the
// fragment-correlation behaviour of Section 10.3 is preserved.
func (d *DeepSea) fragValue(viewID, attr string, iv interval.Interval, now float64, decay stats.Decay) float64 {
	vs, ok := d.Stats.LookupView(viewID)
	if !ok {
		return 0
	}
	pstat, ok := d.Stats.LookupPartition(viewID, attr)
	if !ok {
		return 0
	}
	f := pstat.Frag(iv)
	d.refreshFragSize(f, viewID, pstat)
	density := func(v float64) float64 {
		if f.Size <= 0 {
			return 0
		}
		return v / float64(f.Size)
	}
	switch d.Cfg.Selection {
	case SelectDeepSea:
		model := d.normalModel(viewID, attr, pstat, now, decay)
		if model.Valid() {
			return density(f.ValueFromHits(model.AdjustedHits(iv), vs.Size, vs.Cost))
		}
		return density(f.Value(now, decay, vs.Size, vs.Cost))
	case SelectDeepSeaRawHits:
		return density(f.Value(now, decay, vs.Size, vs.Cost))
	case SelectNectar:
		return stats.NectarFragValue(f, now, vs.Size, vs.Cost)
	case SelectNectarPlus:
		return stats.NectarPlusFragValue(f, now, vs.Size, vs.Cost)
	default:
		return 0
	}
}
