package core

import (
	"testing"
)

func TestSharedHits(t *testing.T) {
	tests := []struct {
		a, b []float64
		want int
	}{
		{nil, nil, 0},
		{[]float64{1, 2, 3}, []float64{2, 3, 4}, 2},
		{[]float64{1, 2}, []float64{3, 4}, 0},
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 3},
	}
	for i, tt := range tests {
		if got := sharedHits(tt.a, tt.b); got != tt.want {
			t.Errorf("case %d: sharedHits = %d, want %d", i, got, tt.want)
		}
	}
}

// TestFragmentMerging runs queries that straddle a fragment boundary
// until the co-access merge fires, then checks results stay correct and
// the boundary is gone.
func TestFragmentMerging(t *testing.T) {
	vanilla := newTestSystem(t, func(c *Config) { c.Materialize = false })
	d := newTestSystem(t, func(c *Config) { c.MergeFragments = true })

	// First query sets a boundary at 2000; follow-ups straddle it.
	boundary := int64(2000)
	var mergedSeen bool
	for i := 0; i < 12; i++ {
		// Narrow straddling ranges: the merged fragment must stay under
		// the largest-fragment bound (10% of the view by default).
		lo := boundary - 150 - int64(i)
		hi := boundary + 150 + int64(i)
		want := run(t, vanilla, q30(lo, hi)).Result.Fingerprint()
		rep := run(t, d, q30(lo, hi))
		if rep.Result.Fingerprint() != want {
			t.Fatalf("query %d wrong result", i)
		}
		if len(rep.MergedFrags) > 0 {
			mergedSeen = true
		}
	}
	if !mergedSeen {
		t.Error("no co-access merge fired in 12 straddling queries")
	}
	// Structural invariants survive merging.
	for _, pv := range d.Pool.Views() {
		for _, part := range pv.Parts {
			if err := part.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
	if d.Eng.FS().TotalSize() != d.Pool.TotalSize() {
		t.Error("FS and pool disagree after merges")
	}
}

// TestMergeRespectsUpperBound: fragments whose combined size exceeds the
// φ bound must not merge.
func TestMergeRespectsUpperBound(t *testing.T) {
	d := newTestSystem(t, func(c *Config) {
		c.MergeFragments = true
		c.MaxFragFraction = 0.05 // tiny bound: most merges are illegal
	})
	for i := 0; i < 12; i++ {
		run(t, d, q30(1400-int64(i), 2600+int64(i)))
	}
	vs := d.Pool.Views()
	for _, pv := range vs {
		for _, part := range pv.Parts {
			views, ok := d.Stats.LookupView(pv.ID)
			if !ok {
				continue
			}
			maxBytes := int64(0.05*float64(views.Size)) + 1
			for _, f := range part.Fragments() {
				if f.Size > maxBytes*2 { // slack for estimate drift
					t.Errorf("fragment %s (%d bytes) exceeds the bound %d", f.Iv, f.Size, maxBytes)
				}
			}
		}
	}
}
