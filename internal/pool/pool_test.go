package pool

import (
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/partition"
	"deepsea/internal/relation"
)

func testSchema() relation.Schema {
	return relation.Schema{Name: "v", Cols: []relation.Column{
		{Name: "a", Type: relation.Int, Ordered: true, Lo: 0, Hi: 100},
	}}
}

func TestEnsureAndRemove(t *testing.T) {
	p := New(1000)
	v := p.Ensure("v1", testSchema())
	if p.Ensure("v1", testSchema()) != v {
		t.Error("Ensure created a duplicate")
	}
	if !p.Has("v1") || p.Has("v2") {
		t.Error("Has misreports")
	}
	p.Remove("v1")
	if p.Has("v1") {
		t.Error("Remove failed")
	}
	if p.View("v1") != nil {
		t.Error("View returned removed entry")
	}
}

func TestTotalSize(t *testing.T) {
	p := New(0)
	v := p.Ensure("v1", testSchema())
	p.SetViewFile("v1", "v1/full", 100)
	p.EnsurePartition("v1", "a", interval.New(0, 100), false)
	p.AddFragment("v1", "a", partition.Fragment{Iv: interval.New(0, 50), Path: "f0", Size: 40})
	p.AddFragment("v1", "a", partition.Fragment{Iv: interval.New(51, 100), Path: "f1", Size: 60})
	if got := p.TotalSize(); got != 200 {
		t.Errorf("TotalSize = %d, want 200", got)
	}
	if got := v.TotalSize(); got != 200 {
		t.Errorf("View.TotalSize = %d, want 200", got)
	}
	if err := p.VerifySize(); err != nil {
		t.Error(err)
	}
}

func TestFits(t *testing.T) {
	p := New(150)
	p.Ensure("v1", testSchema())
	p.SetViewFile("v1", "v1/full", 100)
	if !p.Fits(50) {
		t.Error("Fits(50) = false, want true")
	}
	if p.Fits(51) {
		t.Error("Fits(51) = true, want false")
	}
	unlimited := New(0)
	if !unlimited.Fits(1 << 60) {
		t.Error("unlimited pool rejected bytes")
	}
}

func TestGC(t *testing.T) {
	p := New(0)
	p.Ensure("empty", testSchema())
	p.EnsurePartition("empty", "a", interval.New(0, 100), false)
	p.Ensure("full", testSchema())
	p.SetViewFile("full", "x", 10)
	p.GC()
	if p.Has("empty") {
		t.Error("GC kept empty view")
	}
	if !p.Has("full") {
		t.Error("GC removed non-empty view")
	}
	if err := p.VerifySize(); err != nil {
		t.Error(err)
	}
}

// TestIncrementalSizeMatchesWalk drives every mutation path and asserts
// the incremental counter against a full walk after each step — the
// regression test for replacing the per-Fits walk with the counter.
func TestIncrementalSizeMatchesWalk(t *testing.T) {
	p := New(0)
	check := func(step string, want int64) {
		t.Helper()
		if err := p.VerifySize(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if got := p.TotalSize(); got != want {
			t.Fatalf("%s: TotalSize = %d, want %d", step, got, want)
		}
	}

	p.Ensure("v1", testSchema())
	check("ensure", 0)

	p.SetViewFile("v1", "v1/full", 100)
	check("set file", 100)
	p.SetViewFile("v1", "v1/full", 70) // replacement adjusts by delta
	check("replace file", 70)

	p.EnsurePartition("v1", "a", interval.New(0, 100), true)
	p.AddFragment("v1", "a", partition.Fragment{Iv: interval.New(0, 50), Path: "f0", Size: 40})
	check("add fragment", 110)
	p.AddFragment("v1", "a", partition.Fragment{Iv: interval.New(0, 50), Path: "f0b", Size: 25})
	check("replace fragment", 95) // same interval replaces, not accumulates
	p.AddFragment("v1", "a", partition.Fragment{Iv: interval.New(51, 100), Path: "f1", Size: 60})
	check("second fragment", 155)

	if !p.RemoveFragment("v1", "a", interval.New(0, 50)) {
		t.Fatal("RemoveFragment reported missing fragment")
	}
	check("remove fragment", 130)
	if p.RemoveFragment("v1", "a", interval.New(0, 49)) {
		t.Error("RemoveFragment removed a fragment that was never added")
	}
	check("remove missing", 130)

	p.DropViewFile("v1")
	check("drop file", 60)

	p.Ensure("v2", testSchema())
	p.SetViewFile("v2", "v2/full", 1000)
	check("second view", 1060)
	p.Remove("v2")
	check("remove view", 60)

	p.GC()
	check("gc", 60)
}

func TestSelectGreedyRanksByValue(t *testing.T) {
	cands := []Candidate{
		{Kind: WholeView, ViewID: "low", Size: 10, Value: 1},
		{Kind: WholeView, ViewID: "high", Size: 10, Value: 100},
		{Kind: WholeView, ViewID: "mid", Size: 10, Value: 50},
	}
	keep, reject := SelectGreedy(cands, 20)
	if len(keep) != 2 || keep[0].ViewID != "high" || keep[1].ViewID != "mid" {
		t.Errorf("keep = %v", keep)
	}
	if len(reject) != 1 || reject[0].ViewID != "low" {
		t.Errorf("reject = %v", reject)
	}
}

func TestSelectGreedySkipsOversizedItems(t *testing.T) {
	// An item larger than the remaining space must not block lower-value
	// items that still fit (fragment values are size-independent, so a
	// huge cold fragment can outrank small hot ones).
	cands := []Candidate{
		{Kind: WholeView, ViewID: "a", Size: 10, Value: 100},
		{Kind: WholeView, ViewID: "blocker", Size: 1000, Value: 50},
		{Kind: WholeView, ViewID: "small", Size: 5, Value: 10},
	}
	keep, reject := SelectGreedy(cands, 100)
	if len(keep) != 2 || keep[0].ViewID != "a" || keep[1].ViewID != "small" {
		t.Errorf("keep = %v, want a then small", keep)
	}
	if len(reject) != 1 || reject[0].ViewID != "blocker" {
		t.Errorf("reject = %v", reject)
	}
}

func TestSelectGreedyUnlimited(t *testing.T) {
	cands := []Candidate{
		{Kind: WholeView, ViewID: "a", Size: 1 << 40, Value: 1},
		{Kind: WholeView, ViewID: "b", Size: 1 << 40, Value: 2},
	}
	keep, reject := SelectGreedy(cands, 0)
	if len(keep) != 2 || len(reject) != 0 {
		t.Errorf("unlimited selection dropped candidates: keep=%v reject=%v", keep, reject)
	}
}

func TestSelectGreedyTiePrefersInPool(t *testing.T) {
	cands := []Candidate{
		{Kind: WholeView, ViewID: "new", Size: 10, Value: 5},
		{Kind: WholeView, ViewID: "resident", Size: 10, Value: 5, InPool: true},
	}
	keep, _ := SelectGreedy(cands, 10)
	if len(keep) != 1 || keep[0].ViewID != "resident" {
		t.Errorf("keep = %v, want resident first", keep)
	}
}

func TestSelectGreedyDeterministic(t *testing.T) {
	cands := []Candidate{
		{Kind: Frag, ViewID: "v", Attr: "a", Iv: interval.New(0, 10), Size: 10, Value: 5},
		{Kind: Frag, ViewID: "v", Attr: "a", Iv: interval.New(11, 20), Size: 10, Value: 5},
	}
	k1, _ := SelectGreedy(cands, 10)
	k2, _ := SelectGreedy([]Candidate{cands[1], cands[0]}, 10)
	if k1[0].Key() != k2[0].Key() {
		t.Error("selection depends on input order")
	}
}

func TestCandidateKey(t *testing.T) {
	v := Candidate{Kind: WholeView, ViewID: "x"}
	f := Candidate{Kind: Frag, ViewID: "x", Attr: "a", Iv: interval.New(0, 5)}
	if v.Key() == f.Key() {
		t.Error("view and fragment keys collide")
	}
}

func TestPartAttrsSorted(t *testing.T) {
	v := &View{ID: "v", Parts: map[string]*partition.Partition{
		"zeta":  partition.New("v", "zeta", interval.New(0, 1), false),
		"alpha": partition.New("v", "alpha", interval.New(0, 1), false),
	}}
	got := v.PartAttrs()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("PartAttrs = %v", got)
	}
}
