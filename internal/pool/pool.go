// Package pool maintains the materialized view pool: which views and
// partitions are currently stored, their total size against the limit
// Smax, and the greedy value-ranked selection of the next configuration
// (Section 7.3).
package pool

import (
	"fmt"
	"sort"

	"deepsea/internal/interval"
	"deepsea/internal/partition"
	"deepsea/internal/relation"
)

// View is one materialized view in the pool. A view may be stored
// unpartitioned (Path non-empty), partitioned on one or more attributes,
// or both.
type View struct {
	// ID is the view's signature key.
	ID string
	// Schema is the view's output schema.
	Schema relation.Schema
	// Path is the unpartitioned file's location; empty if the view is
	// stored only as partitions.
	Path string
	// Size is the unpartitioned file's size in bytes (0 if none).
	Size int64
	// Parts maps a partition attribute to its partition.
	Parts map[string]*partition.Partition
}

// PartAttrs returns the view's partition attributes in sorted order,
// for deterministic iteration.
func (v *View) PartAttrs() []string {
	out := make([]string, 0, len(v.Parts))
	for a := range v.Parts {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// TotalSize returns the bytes this view occupies across its
// unpartitioned file and all partitions.
func (v *View) TotalSize() int64 {
	total := v.Size
	for _, p := range v.Parts {
		total += p.TotalSize()
	}
	return total
}

// Pool is the materialized view pool (the configuration C).
type Pool struct {
	// Smax is the pool size limit in bytes; 0 means unlimited.
	Smax int64

	views map[string]*View
}

// New returns an empty pool with the given size limit.
func New(smax int64) *Pool {
	return &Pool{Smax: smax, views: make(map[string]*View)}
}

// View returns the pool entry for id, or nil.
func (p *Pool) View(id string) *View { return p.views[id] }

// Has reports whether a view with any materialized content exists.
func (p *Pool) Has(id string) bool {
	_, ok := p.views[id]
	return ok
}

// Ensure returns the view entry for id, creating an empty one on first
// use.
func (p *Pool) Ensure(id string, schema relation.Schema) *View {
	v, ok := p.views[id]
	if !ok {
		v = &View{ID: id, Schema: schema, Parts: make(map[string]*partition.Partition)}
		p.views[id] = v
	}
	return v
}

// Remove deletes a view and all its partitions from the pool metadata.
func (p *Pool) Remove(id string) { delete(p.views, id) }

// Views returns the pool's views sorted by id.
func (p *Pool) Views() []*View {
	out := make([]*View, 0, len(p.views))
	for _, v := range p.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalSize returns S(C), the bytes occupied by all views and fragments.
func (p *Pool) TotalSize() int64 {
	var total int64
	for _, v := range p.views {
		total += v.TotalSize()
	}
	return total
}

// Fits reports whether adding extra bytes keeps the pool within Smax.
func (p *Pool) Fits(extra int64) bool {
	return p.Smax <= 0 || p.TotalSize()+extra <= p.Smax
}

// GC removes view entries that hold no materialized content.
func (p *Pool) GC() {
	for id, v := range p.views {
		empty := v.Path == ""
		for _, part := range v.Parts {
			if part.NumFragments() > 0 {
				empty = false
			}
		}
		if empty {
			delete(p.views, id)
		}
	}
}

// CandidateKind distinguishes selection candidates.
type CandidateKind int

// Selection candidate kinds.
const (
	// WholeView is an unpartitioned view (a candidate to create, or a
	// pool resident treated as a single evictable unit).
	WholeView CandidateKind = iota
	// Frag is a fragment of a partitioned view.
	Frag
)

// Candidate is one element of ALLCAND: a view or fragment ranked by its
// value Φ during selection.
type Candidate struct {
	Kind   CandidateKind
	ViewID string
	// Attr and Iv identify a fragment candidate (Kind == Frag).
	Attr string
	Iv   interval.Interval
	// Size is the (estimated or actual) storage size.
	Size int64
	// Value is the selection measure (Φ for DeepSea, N/N+ for the
	// Nectar baselines).
	Value float64
	// InPool reports whether the candidate is already materialized.
	InPool bool
}

// Key returns a stable identity for the candidate.
func (c Candidate) Key() string {
	if c.Kind == WholeView {
		return "view:" + c.ViewID
	}
	return fmt.Sprintf("frag:%s:%s:%s", c.ViewID, c.Attr, c.Iv)
}

// SelectGreedy implements Section 7.3: rank ALLCAND by value in
// decreasing order and greedily keep elements while they fit within smax
// (0 = unlimited). The paper's formula reads as a strict prefix
// (n = argmax_j Σ_{i<=j} S(ALLCAND[i]) <= Smax), but taken literally a
// single top-ranked element larger than the pool would block everything
// behind it — fragment values Φ(I) are size-independent (the S(I) terms
// cancel), so this happens routinely under tight pools. We therefore
// skip elements that do not fit and continue (first-fit decreasing), the
// operational reading of the greedy. Ties prefer candidates already in
// the pool (avoiding pointless churn), then lower keys for determinism.
// The returned slices partition cands into kept and rejected.
func SelectGreedy(cands []Candidate, smax int64) (keep, reject []Candidate) {
	ranked := append([]Candidate(nil), cands...)
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.Value != b.Value {
			return a.Value > b.Value
		}
		if a.InPool != b.InPool {
			return a.InPool
		}
		return a.Key() < b.Key()
	})
	var used int64
	for _, c := range ranked {
		if smax > 0 && used+c.Size > smax {
			reject = append(reject, c)
			continue
		}
		used += c.Size
		keep = append(keep, c)
	}
	return keep, reject
}
