// Package pool maintains the materialized view pool: which views and
// partitions are currently stored, their total size against the limit
// Smax, and the greedy value-ranked selection of the next configuration
// (Section 7.3).
package pool

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"deepsea/internal/datastore"
	"deepsea/internal/interval"
	"deepsea/internal/partition"
	"deepsea/internal/relation"
)

// View is one materialized view in the pool. A view may be stored
// unpartitioned (Path non-empty), partitioned on one or more attributes,
// or both.
type View struct {
	// ID is the view's signature key.
	ID string
	// Schema is the view's output schema.
	Schema relation.Schema
	// Path is the unpartitioned file's location; empty if the view is
	// stored only as partitions. Mutate only through Pool.SetViewFile /
	// Pool.DropViewFile so the pool's size counter stays consistent.
	Path string
	// Size is the unpartitioned file's size in bytes (0 if none).
	Size int64
	// Parts maps a partition attribute to its partition. Mutate fragments
	// only through Pool.AddFragment / Pool.RemoveFragment.
	Parts map[string]*partition.Partition
}

// PartAttrs returns the view's partition attributes in sorted order,
// for deterministic iteration.
func (v *View) PartAttrs() []string {
	out := make([]string, 0, len(v.Parts))
	for a := range v.Parts {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// TotalSize returns the bytes this view occupies across its
// unpartitioned file and all partitions.
func (v *View) TotalSize() int64 {
	total := v.Size
	for _, p := range v.Parts {
		total += p.TotalSize()
	}
	return total
}

// Pool is the materialized view pool (the configuration C).
//
// Concurrency: the pool's mutex guards the view map and the incremental
// size counter, so size queries (TotalSize, Fits) and Views listings are
// safe from any goroutine. The *content* of a View — its partitions and
// fragment lists — is mutated only through the pool's mutation methods,
// and only under the view manager's own lock; readers that walk
// partitions (matching, selection) run under that same manager lock.
type Pool struct {
	// Smax is the pool size limit in bytes; 0 means unlimited.
	Smax int64

	mu    sync.RWMutex
	views map[string]*View
	// size is S(C), maintained incrementally by every mutation so Fits
	// is O(1) instead of a full walk per greedy-selection probe.
	size int64
	// gens counts content mutations per view id (materialize, evict,
	// fragment add/remove/split/merge, removal). The result cache records
	// the generation of every view a cached plan read, so a mutation
	// invalidates exactly the entries over the touched views. Entries
	// survive Remove/GC: a re-created view must not resurrect stale
	// cached results by restarting at zero.
	gens map[string]uint64
	// genSnap is the epoch-published immutable copy of gens: every
	// mutation republishes it (copy-on-write under p.mu), so the hot
	// read path — cache-hit generation validation, which runs on every
	// query before planning — is a single atomic load instead of an
	// RLock per dependency. Mutations are rare (maintenance only) and
	// the map is small, so the per-mutation copy is cheap.
	genSnap atomic.Pointer[map[string]uint64]
	// journal, when non-nil, receives one record per pool mutation while
	// p.mu is held, so the journal's order for pool ops is the mutation
	// order. Creation-only paths (Ensure, EnsurePartition) journal only
	// when they actually create.
	journal func(datastore.Record)
}

// New returns an empty pool with the given size limit.
func New(smax int64) *Pool {
	p := &Pool{Smax: smax, views: make(map[string]*View), gens: make(map[string]uint64)}
	empty := map[string]uint64{}
	p.genSnap.Store(&empty)
	return p
}

// bumpGen advances a view's generation and republishes the immutable
// snapshot. Caller holds p.mu.
func (p *Pool) bumpGen(id string) {
	p.gens[id]++
	p.publishGens()
}

// publishGens copies gens into a fresh immutable map and publishes it.
// Caller holds p.mu.
func (p *Pool) publishGens() {
	snap := make(map[string]uint64, len(p.gens))
	for id, g := range p.gens {
		snap[id] = g
	}
	p.genSnap.Store(&snap)
}

// SetJournal attaches a mutation journal; nil detaches it. Every
// mutation method emits a record describing itself while holding the
// pool mutex. Replaying those records through the same mutation API
// reproduces the pool — contents, size counter and generation counters
// alike. Set before concurrent use (and detach during replay, or the
// recovery would journal its own echoes).
func (p *Pool) SetJournal(fn func(datastore.Record)) {
	p.mu.Lock()
	p.journal = fn
	p.mu.Unlock()
}

// emit journals one record; caller holds p.mu.
func (p *Pool) emit(rec datastore.Record) {
	if p.journal != nil {
		p.journal(rec)
	}
}

// Generations returns a copy of every view's content-mutation counter,
// for snapshots: the cache keys validity to these, so a warm restart
// must resume them rather than restart at zero.
func (p *Pool) Generations() map[string]uint64 {
	snap := *p.genSnap.Load()
	out := make(map[string]uint64, len(snap))
	for id, g := range snap {
		out[id] = g
	}
	return out
}

// RestoreGenerations overwrites the generation counters from a snapshot.
// Recovery calls it after replaying the mutation tail, which bumped
// generations exactly as the original mutations did — so this only
// matters for counters the snapshot carries beyond the replayed state
// (views evicted before the snapshot, for example).
func (p *Pool) RestoreGenerations(gens map[string]uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, g := range gens {
		if g > p.gens[id] {
			p.gens[id] = g
		}
	}
	p.publishGens()
}

// Generation returns the view's content-mutation counter. It is zero for
// never-touched views and keeps counting across removal and re-creation.
// Lock-free: one atomic load of the published snapshot.
func (p *Pool) Generation(id string) uint64 {
	return (*p.genSnap.Load())[id]
}

// GenFn returns a generation lookup bound to one published epoch: every
// call answers from the same immutable snapshot, so a multi-dependency
// validation (the result cache checking every view a plan read) sees a
// single consistent pool state even while the maintenance committer
// publishes new epochs concurrently.
func (p *Pool) GenFn() func(id string) uint64 {
	snap := *p.genSnap.Load()
	return func(id string) uint64 { return snap[id] }
}

// View returns the pool entry for id, or nil.
func (p *Pool) View(id string) *View {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.views[id]
}

// Has reports whether a view with any materialized content exists.
func (p *Pool) Has(id string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.views[id]
	return ok
}

// Ensure returns the view entry for id, creating an empty one on first
// use.
func (p *Pool) Ensure(id string, schema relation.Schema) *View {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		v = &View{ID: id, Schema: schema, Parts: make(map[string]*partition.Partition)}
		p.views[id] = v
		sch := schema
		p.emit(datastore.Record{Op: "ensure_view", View: id, Schema: &sch})
	}
	return v
}

// Remove deletes a view and all its partitions from the pool metadata.
func (p *Pool) Remove(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.views[id]; ok {
		p.size -= v.TotalSize()
		delete(p.views, id)
		p.bumpGen(id)
		p.emit(datastore.Record{Op: "remove_view", View: id})
	}
}

// SetViewFile records that the view's unpartitioned file now lives at
// path with the given size, replacing any previous file's contribution
// to the pool size. The view must already exist (Ensure).
func (p *Pool) SetViewFile(id, path string, size int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		panic(fmt.Sprintf("pool: SetViewFile on unknown view %s", id))
	}
	p.size += size - v.Size
	v.Path = path
	v.Size = size
	p.bumpGen(id)
	p.emit(datastore.Record{Op: "set_view_file", View: id, Path: path, Size: size})
}

// DropViewFile removes the view's unpartitioned file from the metadata
// (eviction keeps any partitions).
func (p *Pool) DropViewFile(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		return
	}
	p.size -= v.Size
	v.Path = ""
	v.Size = 0
	p.bumpGen(id)
	p.emit(datastore.Record{Op: "drop_view_file", View: id})
}

// Invalidate bumps a view's generation without touching its contents —
// the staleness signal of the ingest path. A base-table append leaves
// the view's files in place (they still answer exactly for the
// pre-append prefix) but must unreach every cached result that read
// them, which the generation bump does through the result cache's
// dependency validation.
func (p *Pool) Invalidate(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.views[id]; !ok {
		return
	}
	p.bumpGen(id)
	p.emit(datastore.Record{Op: "inval_view", View: id})
}

// EnsurePartition returns the view's partition on attr, creating an
// empty one on first use. The view must already exist (Ensure).
func (p *Pool) EnsurePartition(id, attr string, dom interval.Interval, overlapping bool) *partition.Partition {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		panic(fmt.Sprintf("pool: EnsurePartition on unknown view %s", id))
	}
	part, ok := v.Parts[attr]
	if !ok {
		part = partition.New(id, attr, dom, overlapping)
		v.Parts[attr] = part
		p.emit(datastore.Record{Op: "ensure_part", View: id, Attr: attr, Dom: dom, Overlapping: overlapping})
	}
	return part
}

// AddFragment registers a stored fragment with the view's partition on
// attr (which must exist; see EnsurePartition), accounting for the
// replacement of any same-interval predecessor.
func (p *Pool) AddFragment(id, attr string, f partition.Fragment) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		panic(fmt.Sprintf("pool: AddFragment on unknown view %s", id))
	}
	part, ok := v.Parts[attr]
	if !ok {
		panic(fmt.Sprintf("pool: AddFragment on missing partition %s.%s", id, attr))
	}
	if old, had := part.Lookup(f.Iv); had {
		p.size -= old.Size
	}
	p.size += f.Size
	part.Add(f)
	p.bumpGen(id)
	p.emit(datastore.Record{Op: "add_frag", View: id, Attr: attr, Iv: f.Iv, Path: f.Path, Size: f.Size})
}

// RemoveFragment deletes the fragment stored for iv from the view's
// partition on attr; it reports whether a fragment was present.
func (p *Pool) RemoveFragment(id, attr string, iv interval.Interval) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		return false
	}
	part, ok := v.Parts[attr]
	if !ok {
		return false
	}
	f, ok := part.Lookup(iv)
	if !ok {
		return false
	}
	p.size -= f.Size
	part.Remove(iv)
	p.bumpGen(id)
	p.emit(datastore.Record{Op: "remove_frag", View: id, Attr: attr, Iv: iv})
	return true
}

// Views returns the pool's views sorted by id.
func (p *Pool) Views() []*View {
	p.mu.RLock()
	out := make([]*View, 0, len(p.views))
	for _, v := range p.views {
		out = append(out, v)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalSize returns S(C), the bytes occupied by all views and fragments,
// from the incrementally maintained counter (O(1)).
func (p *Pool) TotalSize() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.size
}

// Occupancy summarises the pool for the health surface.
type Occupancy struct {
	// Bytes is S(C); Limit is Smax (0 = unlimited).
	Bytes, Limit int64
	// Views counts pool entries with any materialized content; ViewFiles
	// counts unpartitioned view files; Fragments counts stored fragments
	// across all partitions.
	Views, ViewFiles, Fragments int
}

// Occupancy returns a consistent snapshot of the pool's size and entry
// counts. Every mutation of view contents goes through the pool's
// methods under p.mu, so the walk is safe from any goroutine.
func (p *Pool) Occupancy() Occupancy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	oc := Occupancy{Bytes: p.size, Limit: p.Smax, Views: len(p.views)}
	for _, v := range p.views {
		if v.Path != "" {
			oc.ViewFiles++
		}
		for _, part := range v.Parts {
			oc.Fragments += part.NumFragments()
		}
	}
	return oc
}

// WalkSize recomputes S(C) by walking every view and fragment — the
// quantity TotalSize tracks incrementally. Exported for integrity
// checks; see VerifySize.
func (p *Pool) WalkSize() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var total int64
	for _, v := range p.views {
		total += v.TotalSize()
	}
	return total
}

// VerifySize checks the incremental size counter against a full walk and
// returns an error describing any divergence (a mutation bypassed the
// pool API).
func (p *Pool) VerifySize() error {
	counter := p.TotalSize()
	walk := p.WalkSize()
	if counter != walk {
		return fmt.Errorf("pool: size counter %d != walked size %d", counter, walk)
	}
	return nil
}

// Fits reports whether adding extra bytes keeps the pool within Smax.
func (p *Pool) Fits(extra int64) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.Smax <= 0 || p.size+extra <= p.Smax
}

// GC removes view entries that hold no materialized content.
func (p *Pool) GC() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, v := range p.views {
		p.gcView(id, v)
	}
}

// GCViews removes the named views' entries when they hold no
// materialized content, leaving every other view alone. Under per-view
// lock striping the manager calls this with exactly the views its
// maintenance locked: a full GC would race a concurrent query that
// Ensured a still-empty view it is about to fill.
func (p *Pool) GCViews(ids ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if v, ok := p.views[id]; ok {
			p.gcView(id, v)
		}
	}
}

// gcView drops one view entry if it is empty. Caller holds p.mu.
func (p *Pool) gcView(id string, v *View) {
	empty := v.Path == ""
	for _, part := range v.Parts {
		if part.NumFragments() > 0 {
			empty = false
		}
	}
	if empty {
		p.size -= v.TotalSize() // only a stray Size could remain; keep the counter exact
		delete(p.views, id)
		p.bumpGen(id)
		p.emit(datastore.Record{Op: "remove_view", View: id})
	}
}

// CandidateKind distinguishes selection candidates.
type CandidateKind int

// Selection candidate kinds.
const (
	// WholeView is an unpartitioned view (a candidate to create, or a
	// pool resident treated as a single evictable unit).
	WholeView CandidateKind = iota
	// Frag is a fragment of a partitioned view.
	Frag
)

// Candidate is one element of ALLCAND: a view or fragment ranked by its
// value Φ during selection.
type Candidate struct {
	Kind   CandidateKind
	ViewID string
	// Attr and Iv identify a fragment candidate (Kind == Frag).
	Attr string
	Iv   interval.Interval
	// Size is the (estimated or actual) storage size.
	Size int64
	// Value is the selection measure (Φ for DeepSea, N/N+ for the
	// Nectar baselines).
	Value float64
	// InPool reports whether the candidate is already materialized.
	InPool bool
}

// Key returns a stable identity for the candidate.
func (c Candidate) Key() string {
	if c.Kind == WholeView {
		return "view:" + c.ViewID
	}
	return fmt.Sprintf("frag:%s:%s:%s", c.ViewID, c.Attr, c.Iv)
}

// SelectGreedy implements Section 7.3: rank ALLCAND by value in
// decreasing order and greedily keep elements while they fit within smax
// (0 = unlimited). The paper's formula reads as a strict prefix
// (n = argmax_j Σ_{i<=j} S(ALLCAND[i]) <= Smax), but taken literally a
// single top-ranked element larger than the pool would block everything
// behind it — fragment values Φ(I) are size-independent (the S(I) terms
// cancel), so this happens routinely under tight pools. We therefore
// skip elements that do not fit and continue (first-fit decreasing), the
// operational reading of the greedy. Ties prefer candidates already in
// the pool (avoiding pointless churn), then lower keys for determinism.
// The returned slices partition cands into kept and rejected.
func SelectGreedy(cands []Candidate, smax int64) (keep, reject []Candidate) {
	ranked := append([]Candidate(nil), cands...)
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.Value != b.Value {
			return a.Value > b.Value
		}
		if a.InPool != b.InPool {
			return a.InPool
		}
		return a.Key() < b.Key()
	})
	var used int64
	for _, c := range ranked {
		if smax > 0 && used+c.Size > smax {
			reject = append(reject, c)
			continue
		}
		used += c.Size
		keep = append(keep, c)
	}
	return keep, reject
}
