package stats

import (
	"math"
	"sort"

	"deepsea/internal/interval"
)

// NormalModel is a fitted N(mu, sigma) access distribution over a
// partition attribute's domain, together with the total decayed hit mass
// it was fitted from.
type NormalModel struct {
	Mu     float64
	Sigma  float64
	Htotal float64
	// Parts is the number of boundary-aligned parts the fit used (the
	// paper's n in the adjusted sample variance).
	Parts int
}

// Valid reports whether the model carries enough signal to adjust hits.
func (m NormalModel) Valid() bool {
	return m.Htotal > 0 && m.Sigma > 0 && !math.IsNaN(m.Sigma)
}

// CDF evaluates P(x <= c) under the fitted normal distribution.
func (m NormalModel) CDF(c float64) float64 {
	return 0.5 * (1 + math.Erf((c-m.Mu)/(m.Sigma*math.Sqrt2)))
}

// AdjustedHits returns HA(I) = Htotal · (P(x <= u) − P(x <= l)), the
// paper's smoothed hit count for a fragment (Section 7.1). The estimate
// deliberately ignores interval overlap, as the paper's does.
func (m NormalModel) AdjustedHits(iv interval.Interval) float64 {
	if !m.Valid() {
		return 0
	}
	return m.Htotal * (m.CDF(float64(iv.Hi)) - m.CDF(float64(iv.Lo)))
}

// FitNormal computes the maximum-likelihood normal distribution for the
// partition's observed hits, following Section 7.1:
//
// The domain is quantized into parts aligned with every fragment
// boundary, each fragment's decayed hits are spread over the parts it
// contains proportionally to part length (the paper spreads hits evenly
// over equi-sized parts; length-proportional spreading over
// boundary-aligned atoms computes the same smoothing without requiring a
// common part size to exist), and the weighted MLE estimators
//
//	mu    = Σ w_i x_i / W
//	sigma² = (Σ w_i (x_i − mu)²/W) · n/(n−1)
//
// are evaluated with x_i the part midpoints, w_i the per-part hits, and
// n the number of parts (the paper's adjusted sample variance).
func (p *PartitionStat) FitNormal(tnow float64, d Decay) NormalModel {
	frags := p.Fragments()
	if len(frags) == 0 {
		return NormalModel{}
	}

	// Collect boundary-aligned atoms: cuts at every fragment Lo and
	// Hi+1, clamped to the domain.
	cutSet := map[int64]bool{p.Dom.Lo: true, p.Dom.Hi + 1: true}
	for _, f := range frags {
		if f.Iv.Lo >= p.Dom.Lo && f.Iv.Lo <= p.Dom.Hi {
			cutSet[f.Iv.Lo] = true
		}
		if f.Iv.Hi+1 > p.Dom.Lo && f.Iv.Hi+1 <= p.Dom.Hi+1 {
			cutSet[f.Iv.Hi+1] = true
		}
	}
	cuts := make([]int64, 0, len(cutSet))
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	type part struct {
		iv   interval.Interval
		hits float64
	}
	parts := make([]part, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		parts = append(parts, part{iv: interval.New(cuts[i], cuts[i+1]-1)})
	}

	// Spread each fragment's decayed hits over the parts it contains,
	// proportionally to part length.
	var htotal float64
	for _, f := range frags {
		h := f.DecayedHits(tnow, d)
		htotal += h
		if h == 0 {
			continue
		}
		fragLen := float64(f.Iv.Len())
		for i := range parts {
			ov := parts[i].iv.OverlapLen(f.Iv)
			if ov > 0 {
				parts[i].hits += h * float64(ov) / fragLen
			}
		}
	}
	if htotal <= 0 {
		return NormalModel{}
	}

	var wsum, mu float64
	for _, pt := range parts {
		x := float64(pt.iv.Lo+pt.iv.Hi) / 2
		mu += pt.hits * x
		wsum += pt.hits
	}
	mu /= wsum

	var variance float64
	for _, pt := range parts {
		x := float64(pt.iv.Lo+pt.iv.Hi) / 2
		dx := x - mu
		variance += pt.hits * dx * dx
	}
	variance /= wsum
	n := len(parts)
	if n > 1 {
		variance *= float64(n) / float64(n-1)
	}
	sigma := math.Sqrt(variance)
	if sigma <= 0 {
		// All mass on a single part: fall back to that part's extent so
		// the model still concentrates probability near the hot spot.
		for _, pt := range parts {
			if pt.hits > 0 {
				sigma = math.Max(float64(pt.iv.Len())/4, 1)
				break
			}
		}
	}
	return NormalModel{Mu: mu, Sigma: sigma, Htotal: htotal, Parts: n}
}
