package stats

// Nectar-style selection measures (Section 10.1). The paper compares
// DeepSea against Nectar's cost-benefit model and against "Nectar+", an
// extension of Nectar that accumulates benefit like DeepSea but without
// the decay function:
//
//	N+(V) = COST(V) · N(V) / (S(V) · ΔT)
//	N(V)  = Σ_{Q used V at t} (COST(Q) − COST(Q/V))
//
// where ΔT is the time elapsed since the last access to V. Plain Nectar
// does not consider accumulated benefit: it uses only the most recent
// saving in place of the sum.

// minDeltaT avoids division by zero when a view was used at the current
// timestamp.
const minDeltaT = 1e-9

// NectarValue returns the plain-Nectar measure for a view: the most
// recent saving, weighted by cost over size and the time since last use.
func NectarValue(v *ViewStat, tnow float64) float64 {
	if v.Size <= 0 || len(v.Uses) == 0 {
		return 0
	}
	last := v.Uses[len(v.Uses)-1]
	dt := tnow - last.T
	if dt < minDeltaT {
		dt = minDeltaT
	}
	return v.Cost * last.Saving / (float64(v.Size) * dt)
}

// NectarPlusValue returns the Nectar+ measure for a view: accumulated,
// undecayed benefit weighted by cost over size and time since last use.
func NectarPlusValue(v *ViewStat, tnow float64) float64 {
	if v.Size <= 0 || len(v.Uses) == 0 {
		return 0
	}
	var sum float64
	for _, u := range v.Uses {
		sum += u.Saving
	}
	dt := tnow - v.Uses[len(v.Uses)-1].T
	if dt < minDeltaT {
		dt = minDeltaT
	}
	return v.Cost * sum / (float64(v.Size) * dt)
}

// NectarFragValue returns the plain-Nectar measure for a fragment: the
// per-hit benefit (S(I)/S(V) · COST(V)) of the most recent hit only,
// weighted by cost over size and time since last hit (the paper adapts
// its Section 7.1 formula "by removing the application of the decay
// function"; plain Nectar further drops accumulation).
func NectarFragValue(f *FragStat, tnow float64, viewSize int64, viewCost float64) float64 {
	if f.Size <= 0 || viewSize <= 0 || len(f.Hits) == 0 {
		return 0
	}
	perHit := float64(f.Size) / float64(viewSize) * viewCost
	dt := tnow - f.Hits[len(f.Hits)-1]
	if dt < minDeltaT {
		dt = minDeltaT
	}
	return viewCost * perHit / (float64(f.Size) * dt)
}

// NectarPlusFragValue returns the Nectar+ measure for a fragment:
// accumulated undecayed hit benefit, weighted like NectarFragValue.
func NectarPlusFragValue(f *FragStat, tnow float64, viewSize int64, viewCost float64) float64 {
	if f.Size <= 0 || viewSize <= 0 || len(f.Hits) == 0 {
		return 0
	}
	perHit := float64(f.Size) / float64(viewSize) * viewCost
	sum := perHit * float64(len(f.Hits))
	dt := tnow - f.Hits[len(f.Hits)-1]
	if dt < minDeltaT {
		dt = minDeltaT
	}
	return viewCost * sum / (float64(f.Size) * dt)
}
