package stats

import (
	"sort"

	"deepsea/internal/interval"
)

// The snapshot types mirror the registry's records with only exported,
// JSON-serializable state. Derived structures (the prefix sums) are
// rebuilt on restore by replaying the recorded uses and hits through the
// normal mutators, so a restored registry is indistinguishable from one
// that lived through the history.

// ViewSnap is one ViewStat's durable state.
type ViewSnap struct {
	ID       string `json:"id"`
	Size     int64  `json:"size,omitempty"`
	Cost     float64 `json:"cost,omitempty"`
	Measured bool   `json:"measured,omitempty"`
	Uses     []Use  `json:"uses,omitempty"`
}

// FragSnap is one FragStat's durable state.
type FragSnap struct {
	Iv       interval.Interval `json:"iv"`
	Size     int64             `json:"size,omitempty"`
	Measured bool              `json:"measured,omitempty"`
	Hits     []float64         `json:"hits,omitempty"`
}

// PartSnap is one PartitionStat's durable state.
type PartSnap struct {
	View  string            `json:"view"`
	Attr  string            `json:"attr"`
	Dom   interval.Interval `json:"dom"`
	Cand  interval.Set      `json:"cand,omitempty"`
	Frags []FragSnap        `json:"frags,omitempty"`
}

// RegistrySnap is a full registry snapshot, deterministically ordered.
type RegistrySnap struct {
	Views []ViewSnap `json:"views,omitempty"`
	Parts []PartSnap `json:"parts,omitempty"`
}

// Snapshot captures every tracked view and partition statistic. The
// caller must hold whatever lock serializes statistics writers (core
// takes the planning lock plus every view stripe); the registry's shard
// locks only protect the maps, not the records.
func (r *Registry) Snapshot() *RegistrySnap {
	snap := &RegistrySnap{}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, v := range s.views {
			snap.Views = append(snap.Views, ViewSnap{
				ID: v.ID, Size: v.Size, Cost: v.Cost, Measured: v.Measured,
				Uses: append([]Use(nil), v.Uses...),
			})
		}
		for _, m := range s.parts {
			for _, p := range m {
				ps := PartSnap{
					View: p.View, Attr: p.Attr, Dom: p.Dom,
					Cand: append(interval.Set(nil), p.Cand...),
				}
				for _, f := range p.Fragments() {
					ps.Frags = append(ps.Frags, FragSnap{
						Iv: f.Iv, Size: f.Size, Measured: f.Measured,
						Hits: append([]float64(nil), f.Hits...),
					})
				}
				snap.Parts = append(snap.Parts, ps)
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(snap.Views, func(i, j int) bool { return snap.Views[i].ID < snap.Views[j].ID })
	sort.Slice(snap.Parts, func(i, j int) bool {
		a, b := snap.Parts[i], snap.Parts[j]
		if a.View != b.View {
			return a.View < b.View
		}
		return a.Attr < b.Attr
	})
	return snap
}

// Restore rebuilds the registry's records from a snapshot by feeding the
// recorded history through the normal mutators. Call on a freshly
// created registry before attaching a journal — the replayed mutations
// must not journal their own echoes.
func (r *Registry) Restore(snap *RegistrySnap) {
	if snap == nil {
		return
	}
	for _, vs := range snap.Views {
		v := r.View(vs.ID)
		v.Size, v.Cost, v.Measured = vs.Size, vs.Cost, vs.Measured
		for _, u := range vs.Uses {
			v.RecordUse(u.T, u.Saving)
		}
	}
	for _, ps := range snap.Parts {
		p := r.Partition(ps.View, ps.Attr, ps.Dom)
		p.Cand = append(interval.Set(nil), ps.Cand...)
		for _, fs := range ps.Frags {
			f := p.Frag(fs.Iv)
			f.Size, f.Measured = fs.Size, fs.Measured
			for _, t := range fs.Hits {
				f.RecordHit(t)
			}
		}
	}
}
