package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"deepsea/internal/interval"
)

func TestDecayWeight(t *testing.T) {
	d := Decay{TMax: 100}
	tests := []struct {
		tnow, tt float64
		want     float64
	}{
		{200, 200, 1},              // just now
		{200, 100, 0.5},            // proportional t/tnow
		{200, 150, 0.75},           // proportional
		{200, 99, 0},               // older than TMax
		{1000, 100, 0},             // timed out
		{100, 100, 1},              // boundary
		{200, 100.0001, 0.5000005}, // just within TMax
	}
	for _, tt2 := range tests {
		got := d.Weight(tt2.tnow, tt2.tt)
		if math.Abs(got-tt2.want) > 1e-6 {
			t.Errorf("Weight(%g,%g) = %g, want %g", tt2.tnow, tt2.tt, got, tt2.want)
		}
	}
}

func TestDecayNoTimeout(t *testing.T) {
	d := Decay{}
	if got := d.Weight(1000, 1); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("Weight = %g, want 0.001", got)
	}
}

// Decay must be monotonically non-increasing in age.
func TestDecayMonotoneProperty(t *testing.T) {
	d := Decay{TMax: 500}
	f := func(tnow, a, b uint16) bool {
		now := float64(tnow) + 1
		ta := now - math.Mod(float64(a), now)
		tb := now - math.Mod(float64(b), now)
		if ta > tb { // ta older
			ta, tb = tb, ta
		}
		return d.Weight(now, ta) <= d.Weight(now, tb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewBenefitAndValue(t *testing.T) {
	d := Decay{TMax: 1000}
	v := &ViewStat{ID: "v", Size: 100, Cost: 50}
	v.RecordUse(100, 10)
	v.RecordUse(200, 20)
	// At tnow=200: B = 10*(100/200) + 20*1 = 25.
	if got := v.Benefit(200, d); math.Abs(got-25) > 1e-9 {
		t.Errorf("Benefit = %g, want 25", got)
	}
	// Φ = 50*25/100 = 12.5
	if got := v.Value(200, d); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("Value = %g, want 12.5", got)
	}
}

func TestViewValueZeroSize(t *testing.T) {
	v := &ViewStat{ID: "v", Cost: 50}
	v.RecordUse(1, 1)
	if got := v.Value(10, Decay{}); got != 0 {
		t.Errorf("Value with zero size = %g, want 0", got)
	}
}

func TestFragBenefitAndValue(t *testing.T) {
	d := Decay{}
	f := &FragStat{Iv: interval.New(0, 9), Size: 10}
	f.RecordHit(50)
	f.RecordHit(100)
	// H = 50/100 + 1 = 1.5; perHit = (10/100)*40 = 4; B = 6.
	if got := f.Benefit(100, d, 100, 40); math.Abs(got-6) > 1e-9 {
		t.Errorf("Benefit = %g, want 6", got)
	}
	// Φ = 40*6/10 = 24.
	if got := f.Value(100, d, 100, 40); math.Abs(got-24) > 1e-9 {
		t.Errorf("Value = %g, want 24", got)
	}
	// Adjusted-hit variants with HA = 3: B = 4*3 = 12, Φ = 40*12/10 = 48.
	if got := f.BenefitFromHits(3, 100, 40); math.Abs(got-12) > 1e-9 {
		t.Errorf("BenefitFromHits = %g, want 12", got)
	}
	if got := f.ValueFromHits(3, 100, 40); math.Abs(got-48) > 1e-9 {
		t.Errorf("ValueFromHits = %g, want 48", got)
	}
}

func TestRegistryViewAndPartition(t *testing.T) {
	r := NewRegistry(Decay{TMax: 10})
	v := r.View("a")
	if v2 := r.View("a"); v2 != v {
		t.Error("View() did not return the same record")
	}
	if _, ok := r.LookupView("b"); ok {
		t.Error("LookupView found untracked view")
	}
	dom := interval.New(0, 100)
	p := r.Partition("a", "x", dom)
	if p2 := r.Partition("a", "x", dom); p2 != p {
		t.Error("Partition() did not return the same record")
	}
	if _, ok := r.LookupPartition("a", "y"); ok {
		t.Error("LookupPartition found untracked partition")
	}
	if got := r.Partitions("a"); len(got) != 1 {
		t.Errorf("Partitions = %d, want 1", len(got))
	}
	if got := r.Views(); len(got) != 1 || got[0].ID != "a" {
		t.Errorf("Views = %v", got)
	}
}

func TestRegistryPartitionDomainMismatchPanics(t *testing.T) {
	r := NewRegistry(Decay{})
	r.Partition("a", "x", interval.New(0, 100))
	defer func() {
		if recover() == nil {
			t.Fatal("domain mismatch did not panic")
		}
	}()
	r.Partition("a", "x", interval.New(0, 200))
}

func TestPartitionStatFragmentsSorted(t *testing.T) {
	p := NewPartitionStat("v", "a", interval.New(0, 100))
	p.Frag(interval.New(50, 100))
	p.Frag(interval.New(0, 49))
	fs := p.Fragments()
	if len(fs) != 2 || fs[0].Iv.Lo != 0 {
		t.Errorf("Fragments = %v", fs)
	}
	p.Drop(interval.New(0, 49))
	if len(p.Fragments()) != 1 {
		t.Error("Drop did not remove fragment")
	}
}

func TestTotalHits(t *testing.T) {
	d := Decay{}
	p := NewPartitionStat("v", "a", interval.New(0, 100))
	p.Frag(interval.New(0, 49)).RecordHit(100)
	p.Frag(interval.New(50, 100)).RecordHit(50)
	// At tnow=100: 1 + 0.5 = 1.5
	if got := p.TotalHits(100, d); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("TotalHits = %g, want 1.5", got)
	}
}

func TestFitNormalCentersOnHotSpot(t *testing.T) {
	d := Decay{}
	p := NewPartitionStat("v", "a", interval.New(0, 1000))
	// Hot fragment around [400,500], cold neighbors.
	hot := p.Frag(interval.New(400, 500))
	for i := 0; i < 50; i++ {
		hot.RecordHit(100)
	}
	p.Frag(interval.New(0, 399))
	p.Frag(interval.New(501, 1000))
	m := p.FitNormal(100, d)
	if !m.Valid() {
		t.Fatal("model invalid")
	}
	if m.Mu < 400 || m.Mu > 500 {
		t.Errorf("mu = %g, want inside [400,500]", m.Mu)
	}
	// A fragment near the hot spot must receive more adjusted hits than
	// an equally-sized fragment far away — the correlation the paper
	// exploits.
	near := m.AdjustedHits(interval.New(501, 600))
	far := m.AdjustedHits(interval.New(901, 1000))
	if near <= far {
		t.Errorf("adjusted hits near=%g far=%g: correlation not captured", near, far)
	}
}

func TestFitNormalPaperScenario(t *testing.T) {
	// Section 7.1: many hits on [0,5], none on [6,10] and [11,15];
	// [6,10] should be judged likelier to be hit than [11,15].
	d := Decay{}
	p := NewPartitionStat("v", "a", interval.New(0, 15))
	h := p.Frag(interval.New(0, 5))
	for i := 0; i < 20; i++ {
		h.RecordHit(10)
	}
	p.Frag(interval.New(6, 10))
	p.Frag(interval.New(11, 15))
	m := p.FitNormal(10, d)
	a := m.AdjustedHits(interval.New(6, 10))
	b := m.AdjustedHits(interval.New(11, 15))
	if a <= b {
		t.Errorf("adjusted hits [6,10]=%g <= [11,15]=%g", a, b)
	}
}

func TestFitNormalNoHits(t *testing.T) {
	p := NewPartitionStat("v", "a", interval.New(0, 100))
	p.Frag(interval.New(0, 100))
	m := p.FitNormal(10, Decay{})
	if m.Valid() {
		t.Error("model with no hits should be invalid")
	}
	if m.AdjustedHits(interval.New(0, 10)) != 0 {
		t.Error("invalid model must adjust hits to 0")
	}
}

func TestFitNormalEmptyPartition(t *testing.T) {
	p := NewPartitionStat("v", "a", interval.New(0, 100))
	if m := p.FitNormal(10, Decay{}); m.Valid() {
		t.Error("empty partition produced a valid model")
	}
}

func TestAdjustedHitsSumsToHtotalOverDomain(t *testing.T) {
	d := Decay{}
	p := NewPartitionStat("v", "a", interval.New(0, 1000))
	f1 := p.Frag(interval.New(100, 300))
	f2 := p.Frag(interval.New(301, 600))
	for i := 0; i < 10; i++ {
		f1.RecordHit(100)
	}
	for i := 0; i < 5; i++ {
		f2.RecordHit(100)
	}
	m := p.FitNormal(100, d)
	// CDF mass over a wide interval around the domain ~= Htotal.
	total := m.AdjustedHits(interval.New(-5000, 5000))
	if math.Abs(total-m.Htotal) > 0.05*m.Htotal {
		t.Errorf("mass over wide interval = %g, want ~%g", total, m.Htotal)
	}
}

func TestCDFMonotone(t *testing.T) {
	m := NormalModel{Mu: 50, Sigma: 10, Htotal: 1}
	prev := -1.0
	for x := 0.0; x <= 100; x += 5 {
		c := m.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = c
	}
}

func TestNectarValues(t *testing.T) {
	v := &ViewStat{ID: "v", Size: 100, Cost: 50}
	v.RecordUse(10, 5)
	v.RecordUse(20, 7)
	// Plain Nectar at tnow=30: last saving 7, dt=10: 50*7/(100*10) = 0.35.
	if got := NectarValue(v, 30); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("NectarValue = %g, want 0.35", got)
	}
	// Nectar+: accumulated 12: 50*12/(100*10) = 0.6.
	if got := NectarPlusValue(v, 30); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("NectarPlusValue = %g, want 0.6", got)
	}
	// Nectar+ must value the view at least as much as plain Nectar.
	if NectarPlusValue(v, 30) < NectarValue(v, 30) {
		t.Error("Nectar+ < Nectar for accumulating history")
	}
}

func TestNectarZeroCases(t *testing.T) {
	v := &ViewStat{ID: "v", Size: 100, Cost: 50}
	if NectarValue(v, 10) != 0 || NectarPlusValue(v, 10) != 0 {
		t.Error("no-use view should have zero Nectar value")
	}
	f := &FragStat{Iv: interval.New(0, 1), Size: 10}
	if NectarFragValue(f, 10, 100, 50) != 0 || NectarPlusFragValue(f, 10, 100, 50) != 0 {
		t.Error("no-hit fragment should have zero Nectar value")
	}
}

func TestNectarFragValues(t *testing.T) {
	f := &FragStat{Iv: interval.New(0, 9), Size: 10}
	f.RecordHit(10)
	f.RecordHit(20)
	// perHit = (10/100)*50 = 5. dt = 10.
	// Plain: 50*5/(10*10) = 2.5. Plus: 50*10/(10*10) = 5.
	if got := NectarFragValue(f, 30, 100, 50); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("NectarFragValue = %g, want 2.5", got)
	}
	if got := NectarPlusFragValue(f, 30, 100, 50); math.Abs(got-5) > 1e-9 {
		t.Errorf("NectarPlusFragValue = %g, want 5", got)
	}
}

func TestNectarSameTimestampNoDivZero(t *testing.T) {
	v := &ViewStat{ID: "v", Size: 100, Cost: 50}
	v.RecordUse(30, 5)
	got := NectarValue(v, 30)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("NectarValue at use time = %g", got)
	}
}

func TestPruneExpired(t *testing.T) {
	d := Decay{TMax: 100}
	p := NewPartitionStat("v", "a", interval.New(0, 1000))
	old := p.Frag(interval.New(0, 99))
	old.RecordHit(10) // expires once tnow-10 > 100
	fresh := p.Frag(interval.New(100, 199))
	fresh.RecordHit(500)
	protected := p.Frag(interval.New(200, 299))
	protected.RecordHit(10)
	never := p.Frag(interval.New(300, 399)) // no hits at all
	_ = never

	n := p.PruneExpired(600, d, func(iv interval.Interval) bool {
		return iv == interval.New(200, 299) // "materialized"
	})
	if n != 2 {
		t.Errorf("pruned %d, want 2 (the expired and the hitless)", n)
	}
	if _, ok := p.Lookup(interval.New(0, 99)); ok {
		t.Error("expired fragment survived")
	}
	if _, ok := p.Lookup(interval.New(100, 199)); !ok {
		t.Error("fresh fragment pruned")
	}
	if _, ok := p.Lookup(interval.New(200, 299)); !ok {
		t.Error("protected fragment pruned")
	}
}

func TestPruneExpiredNoTimeoutIsNoop(t *testing.T) {
	p := NewPartitionStat("v", "a", interval.New(0, 1000))
	p.Frag(interval.New(0, 99))
	if n := p.PruneExpired(1000, Decay{}, nil); n != 0 {
		t.Errorf("pruned %d without a timeout", n)
	}
}

func TestShardedRegistryConcurrent(t *testing.T) {
	// Hammer the sharded registry from many goroutines over many view
	// ids: record identity must be stable (the same id always returns
	// the same *ViewStat/*PartitionStat) and enumeration must stay
	// sorted. Run under -race this checks the shard locking.
	r := NewShardedRegistry(Decay{TMax: 100}, 8)
	const goroutines, viewsN = 8, 50
	dom := interval.New(0, 999)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < viewsN; i++ {
				id := fmt.Sprintf("view-%d", i)
				v := r.View(id)
				if v2 := r.View(id); v2 != v {
					t.Errorf("View(%q) returned distinct records", id)
				}
				if lv, ok := r.LookupView(id); !ok || lv != v {
					t.Errorf("LookupView(%q) disagrees with View", id)
				}
				p := r.Partition(id, "a", dom)
				if p2, ok := r.LookupPartition(id, "a"); !ok || p2 != p {
					t.Errorf("LookupPartition(%q) disagrees with Partition", id)
				}
				if got := len(r.Partitions(id)); got != 1 {
					t.Errorf("Partitions(%q) = %d records, want 1", id, got)
				}
			}
		}(g)
	}
	wg.Wait()

	all := r.Views()
	if len(all) != viewsN {
		t.Fatalf("Views() = %d records, want %d", len(all), viewsN)
	}
	for i := 1; i < len(all); i++ {
		if !(all[i-1].ID < all[i].ID) {
			t.Fatalf("Views() not sorted: %q before %q", all[i-1].ID, all[i].ID)
		}
	}
}

func TestShardedRegistryShardCounts(t *testing.T) {
	// The shard count is a pure contention knob: 1 shard, many shards
	// and the default must expose identical behaviour.
	for _, n := range []int{0, 1, 3, 64} {
		r := NewShardedRegistry(Decay{}, n)
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("v%d", i)
			r.View(id).Size = int64(i)
		}
		if got := len(r.Views()); got != 20 {
			t.Errorf("shards=%d: Views() = %d, want 20", n, got)
		}
		if v, ok := r.LookupView("v7"); !ok || v.Size != 7 {
			t.Errorf("shards=%d: LookupView(v7) lost the record", n)
		}
	}
}
