// Package stats implements DeepSea's cost-benefit bookkeeping (Section
// 7.1): per-view and per-fragment statistics, the decay function DEC, the
// accumulated benefit B, the value ratio Φ used for selection, and the
// probabilistic fragment-benefit model that smooths hit counts with a
// maximum-likelihood normal fit to exploit fragment correlation.
package stats

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"deepsea/internal/datastore"
	"deepsea/internal/interval"
)

// journalRef is the registry's shared journal hook, threaded into every
// record it creates so the hot-path mutators (RecordUse, RecordHit,
// RefineCand, Drop, PruneExpired) can emit without a registry lookup.
// All records share one ref, so attaching a journal after recovery
// reaches records created before the attachment. A nil ref (records
// built outside a registry) or nil fn (no datastore) emits nothing.
type journalRef struct {
	fn func(datastore.Record)
}

func (j *journalRef) emit(rec datastore.Record) {
	if j == nil || j.fn == nil {
		return
	}
	j.fn(rec)
}

// Counters is one epoch-published snapshot of the registry's object
// counts. Epoch increments on every change, so two reads with equal
// epochs saw the identical state. Health surfaces read one snapshot
// atomically instead of summing per-shard counts that can shift
// mid-walk.
type Counters struct {
	// Views, Partitions and Fragments count tracked statistics records
	// (candidates and pool members alike).
	Views      int
	Partitions int
	Fragments  int
	// Epoch is the number of counter mutations published so far.
	Epoch uint64
}

// countersRef is the registry's shared counter cell, threaded into
// every PartitionStat it creates (like journalRef) so fragment
// creation and deletion deep inside a record can bump the published
// counts without a registry lookup. Writers serialize on mu and
// publish a fresh immutable snapshot; readers load it lock-free.
type countersRef struct {
	mu   sync.Mutex
	snap atomic.Pointer[Counters]
}

func newCountersRef() *countersRef {
	c := &countersRef{}
	c.snap.Store(&Counters{})
	return c
}

// add publishes a new snapshot with the deltas applied. Nil-safe, like
// journalRef.emit, for records built outside a registry.
func (c *countersRef) add(views, parts, frags int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	cur := c.snap.Load()
	c.snap.Store(&Counters{
		Views:      cur.Views + views,
		Partitions: cur.Partitions + parts,
		Fragments:  cur.Fragments + frags,
		Epoch:      cur.Epoch + 1,
	})
	c.mu.Unlock()
}

// Decay is the paper's DEC(tnow, t): zero once a benefit is older than
// TMax, otherwise proportional weighting t/tnow, so that older savings
// count less as the clock advances.
type Decay struct {
	// TMax is the benefit timeout in simulated seconds. Zero means no
	// timeout (only the proportional decay applies).
	TMax float64
}

// Weight returns DEC(tnow, t). tnow must be >= t and positive; the engine
// clock starts at 1, so this always holds.
func (d Decay) Weight(tnow, t float64) float64 {
	if d.TMax > 0 && tnow-t > d.TMax {
		return 0
	}
	if tnow <= 0 {
		return 0
	}
	w := t / tnow
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}

// Use records that a view was (or could have been) used to answer a
// query at simulated time T, saving Saving simulated seconds versus the
// best plan not using the view.
type Use struct {
	T      float64
	Saving float64
}

// ViewStat holds the statistics Σ(V) = (S, COST, T, B) for one view,
// whether it is materialized in the pool or only a candidate.
type ViewStat struct {
	// ID is the view's signature key.
	ID string
	// Size is S(V) in bytes; estimated until Measured.
	Size int64
	// Cost is COST(V), the creation cost in simulated seconds; estimated
	// until Measured.
	Cost float64
	// Measured records whether Size and Cost hold actual values from an
	// executed materialization rather than estimates.
	Measured bool
	// Uses is the benefit history (the paper's T and B lists). Append
	// via RecordUse only: timestamps must be non-decreasing and the
	// prefix sums below must stay in sync.
	Uses []Use

	// cumSavingT[i] = Σ_{j<=i} Uses[j].Saving · Uses[j].T. Because the
	// decay is DEC(tnow,t) = t/tnow inside the timeout window, the
	// benefit is an O(log n) suffix-sum query instead of an O(n) scan.
	cumSavingT []float64

	journal *journalRef
}

// RecordUse appends a (timestamp, saving) pair. Timestamps must be
// non-decreasing (the simulated clock only moves forward).
func (v *ViewStat) RecordUse(t, saving float64) {
	v.Uses = append(v.Uses, Use{T: t, Saving: saving})
	prev := 0.0
	if n := len(v.cumSavingT); n > 0 {
		prev = v.cumSavingT[n-1]
	}
	v.cumSavingT = append(v.cumSavingT, prev+saving*t)
	v.journal.emit(datastore.Record{Op: "use", View: v.ID, T: t, Saving: saving})
}

// Benefit returns B(V, tnow) = Σ saving · DEC(tnow, t).
func (v *ViewStat) Benefit(tnow float64, d Decay) float64 {
	if len(v.Uses) == 0 || tnow <= 0 {
		return 0
	}
	// First use index still inside the timeout window.
	k := 0
	if d.TMax > 0 {
		k = sort.Search(len(v.Uses), func(i int) bool {
			return tnow-v.Uses[i].T <= d.TMax
		})
	}
	if k >= len(v.Uses) {
		return 0
	}
	sum := v.cumSavingT[len(v.cumSavingT)-1]
	if k > 0 {
		sum -= v.cumSavingT[k-1]
	}
	return sum / tnow
}

// Value returns Φ(V, tnow) = COST(V) · B(V, tnow) / S(V).
func (v *ViewStat) Value(tnow float64, d Decay) float64 {
	if v.Size <= 0 {
		return 0
	}
	return v.Cost * v.Benefit(tnow, d) / float64(v.Size)
}

// FragStat holds per-fragment statistics: the fragment's interval, its
// size, and the timestamps of its hits. Benefits are derived from the
// owning view's creation cost (Section 7.1: the cost of recreating a
// fragment is the cost of recomputing and partitioning the view).
type FragStat struct {
	Iv interval.Interval
	// Size is S(I) in bytes; estimated until Measured.
	Size int64
	// Measured mirrors ViewStat.Measured.
	Measured bool
	// Hits are the timestamps at which the fragment was (or could have
	// been) used. Append via RecordHit only: timestamps must be
	// non-decreasing so the prefix sums stay in sync.
	Hits []float64

	// cumT[i] = Σ_{j<=i} Hits[j]; see ViewStat.cumSavingT.
	cumT []float64

	// view and attr identify the owning partition for journaling; set by
	// PartitionStat.Frag (empty for free-standing records, which then
	// journal nothing for lack of an identity).
	view, attr string
	journal    *journalRef
}

// RecordHit appends a hit timestamp. Timestamps must be non-decreasing.
func (f *FragStat) RecordHit(t float64) {
	f.Hits = append(f.Hits, t)
	prev := 0.0
	if n := len(f.cumT); n > 0 {
		prev = f.cumT[n-1]
	}
	f.cumT = append(f.cumT, prev+t)
	f.journal.emit(datastore.Record{Op: "hit", View: f.view, Attr: f.attr, Iv: f.Iv, T: t})
}

// DecayedHits returns H(I) = Σ DEC(tnow, t) over the hit timestamps.
func (f *FragStat) DecayedHits(tnow float64, d Decay) float64 {
	if len(f.Hits) == 0 || tnow <= 0 {
		return 0
	}
	k := 0
	if d.TMax > 0 {
		k = sort.SearchFloat64s(f.Hits, tnow-d.TMax)
	}
	if k >= len(f.Hits) {
		return 0
	}
	sum := f.cumT[len(f.cumT)-1]
	if k > 0 {
		sum -= f.cumT[k-1]
	}
	return sum / tnow
}

// Benefit returns B(I, tnow) = Σ (S(I)/S(V)) · COST(V) · DEC(tnow, t),
// where viewSize and viewCost describe the owning view.
func (f *FragStat) Benefit(tnow float64, d Decay, viewSize int64, viewCost float64) float64 {
	if viewSize <= 0 {
		return 0
	}
	perHit := float64(f.Size) / float64(viewSize) * viewCost
	return perHit * f.DecayedHits(tnow, d)
}

// Value returns Φ(I, tnow) = COST(V) · B(I, tnow) / S(I).
func (f *FragStat) Value(tnow float64, d Decay, viewSize int64, viewCost float64) float64 {
	if f.Size <= 0 {
		return 0
	}
	return viewCost * f.Benefit(tnow, d, viewSize, viewCost) / float64(f.Size)
}

// BenefitFromHits computes a fragment benefit from an externally supplied
// (possibly adjusted) hit count instead of the raw decayed hits.
func (f *FragStat) BenefitFromHits(hits float64, viewSize int64, viewCost float64) float64 {
	if viewSize <= 0 {
		return 0
	}
	return float64(f.Size) / float64(viewSize) * viewCost * hits
}

// ValueFromHits computes Φ(I) from an adjusted hit count.
func (f *FragStat) ValueFromHits(hits float64, viewSize int64, viewCost float64) float64 {
	if f.Size <= 0 {
		return 0
	}
	return viewCost * f.BenefitFromHits(hits, viewSize, viewCost) / float64(f.Size)
}

// PartitionStat tracks the fragment statistics of one (view, attribute)
// partitioning — the paper's PSTAT(V, A). Fragments are tracked whether
// or not they are currently materialized.
type PartitionStat struct {
	View string
	Attr string
	Dom  interval.Interval

	// Cand is the current *candidate partitioning* for a view that is
	// not materialized yet (Definition 7, the "potential fragments in
	// PSTAT(V,A)"): a disjoint covering of the domain that is refined by
	// splitting at the end points of incoming selection ranges. When the
	// view is materialized, Cand becomes its initial partitioning.
	Cand interval.Set

	frags    map[interval.Interval]*FragStat
	journal  *journalRef
	counters *countersRef
}

// RefineCand splits the candidate partitioning at the end points of the
// query interval (clamped to the domain) and returns the newly created
// intervals. On first use the partitioning is initialised with the whole
// domain.
func (p *PartitionStat) RefineCand(q interval.Interval) []interval.Interval {
	qc, ok := q.Intersect(p.Dom)
	if !ok {
		return nil
	}
	init := len(p.Cand) == 0
	if init {
		p.Cand = interval.Set{p.Dom}
	}
	var next interval.Set
	var created []interval.Interval
	for _, iv := range p.Cand {
		if !iv.Overlaps(qc) {
			next = append(next, iv)
			continue
		}
		pieces := iv.SplitAt(qc.Lo, qc.Hi+1)
		next = append(next, pieces...)
		if len(pieces) > 1 {
			created = append(created, pieces...)
		}
	}
	next.Sort()
	p.Cand = next
	// Journal only refinements that changed the partitioning: replaying
	// the state-changing subsequence reproduces Cand exactly, because a
	// no-op refinement stays a no-op whenever it is re-applied.
	if init || len(created) > 0 {
		p.journal.emit(datastore.Record{Op: "refine", View: p.View, Attr: p.Attr, Iv: q})
	}
	return created
}

// NewPartitionStat returns an empty partition statistic over the domain.
func NewPartitionStat(view, attr string, dom interval.Interval) *PartitionStat {
	return &PartitionStat{
		View: view, Attr: attr, Dom: dom,
		frags: make(map[interval.Interval]*FragStat),
	}
}

// Frag returns the statistics for the fragment with the given interval,
// creating an empty record on first use.
func (p *PartitionStat) Frag(iv interval.Interval) *FragStat {
	f, ok := p.frags[iv]
	if !ok {
		f = &FragStat{Iv: iv, view: p.View, attr: p.Attr, journal: p.journal}
		p.frags[iv] = f
		p.counters.add(0, 0, 1)
	}
	return f
}

// Lookup returns the fragment statistics if present.
func (p *PartitionStat) Lookup(iv interval.Interval) (*FragStat, bool) {
	f, ok := p.frags[iv]
	return f, ok
}

// Drop removes a fragment's statistics (used when a fragment candidate is
// superseded by a refinement).
func (p *PartitionStat) Drop(iv interval.Interval) {
	if _, ok := p.frags[iv]; ok {
		delete(p.frags, iv)
		p.counters.add(0, 0, -1)
		p.journal.emit(datastore.Record{Op: "frag_drop", View: p.View, Attr: p.Attr, Iv: iv})
	}
}

// Fragments returns all tracked fragment statistics sorted by interval.
func (p *PartitionStat) Fragments() []*FragStat {
	out := make([]*FragStat, 0, len(p.frags))
	for _, f := range p.frags {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Iv.Lo != out[j].Iv.Lo {
			return out[i].Iv.Lo < out[j].Iv.Lo
		}
		return out[i].Iv.Hi < out[j].Iv.Hi
	})
	return out
}

// PruneExpired drops tracked fragments whose hit mass has fully decayed
// (every hit older than the timeout) and that the keep predicate does not
// protect (materialized fragments are kept regardless). Without pruning,
// candidate statistics grow linearly with the workload and the MLE fit —
// which scans all tracked fragments — turns quadratic.
func (p *PartitionStat) PruneExpired(tnow float64, d Decay, keep func(interval.Interval) bool) int {
	if d.TMax <= 0 {
		return 0
	}
	n := 0
	for iv, f := range p.frags {
		if keep != nil && keep(iv) {
			continue
		}
		if f.DecayedHits(tnow, d) > 0 {
			continue
		}
		delete(p.frags, iv)
		p.journal.emit(datastore.Record{Op: "frag_drop", View: p.View, Attr: p.Attr, Iv: iv})
		n++
	}
	if n > 0 {
		p.counters.add(0, 0, -n)
	}
	return n
}

// TotalHits returns Htotal = Σ_I H(I), the decayed hit mass over all
// tracked fragments.
func (p *PartitionStat) TotalHits(tnow float64, d Decay) float64 {
	var h float64
	for _, f := range p.frags {
		h += f.DecayedHits(tnow, d)
	}
	return h
}

// defaultStatsShards is the registry shard count when the caller does
// not override it.
const defaultStatsShards = 16

// regShard holds one shard of the registry: the view records and
// partition records of every view id that hashes onto it. Views and
// their partitions are colocated, so per-view work touches one shard.
type regShard struct {
	mu    sync.RWMutex
	views map[string]*ViewStat
	parts map[string]map[string]*PartitionStat // view -> attr -> stat
}

// Registry is the paper's STAT: all view and partition statistics, for
// pool members and candidates alike.
//
// The registry is sharded by view id: each shard's lock guards only its
// own maps, so concurrent planners and maintainers touching different
// views never contend on the registry itself. The returned
// ViewStat/PartitionStat records are not internally locked: a record is
// mutated only by the view manager while it holds the owning view's
// exclusive stripe, or during planning (which holds every stripe
// shared and is itself serialized by the planning lock) — either way
// writers to one record are serialized and its timestamps stay
// non-decreasing. See core's DeepSea for the lock order.
type Registry struct {
	Decay Decay

	shards   []regShard
	journal  *journalRef
	counters *countersRef
}

// NewRegistry returns an empty statistics registry with the default
// shard count.
func NewRegistry(d Decay) *Registry { return NewShardedRegistry(d, 0) }

// NewShardedRegistry returns an empty statistics registry with n shards
// (<= 0 selects the default). The shard count is purely a contention
// knob: behaviour is identical at every setting.
func NewShardedRegistry(d Decay, n int) *Registry {
	if n <= 0 {
		n = defaultStatsShards
	}
	r := &Registry{Decay: d, shards: make([]regShard, n), journal: &journalRef{}, counters: newCountersRef()}
	for i := range r.shards {
		r.shards[i].views = make(map[string]*ViewStat)
		r.shards[i].parts = make(map[string]map[string]*PartitionStat)
	}
	return r
}

// SetJournal attaches a mutation journal to the registry; nil detaches
// it. The shared ref reaches every record the registry ever created, so
// attaching after a recovery replay covers the restored records too. Set
// while no statistics are being written (initialisation or recovery).
func (r *Registry) SetJournal(fn func(datastore.Record)) { r.journal.fn = fn }

// shard maps a view id to its shard.
func (r *Registry) shard(view string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(view))
	return &r.shards[h.Sum32()%uint32(len(r.shards))]
}

// View returns the statistics record for a view id, creating it on first
// use.
func (r *Registry) View(id string) *ViewStat {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.views[id]
	if !ok {
		v = &ViewStat{ID: id, journal: r.journal}
		s.views[id] = v
		r.counters.add(1, 0, 0)
	}
	return v
}

// LookupView returns a view's statistics if tracked.
func (r *Registry) LookupView(id string) (*ViewStat, bool) {
	s := r.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.views[id]
	return v, ok
}

// Views returns all tracked views sorted by id.
func (r *Registry) Views() []*ViewStat {
	var out []*ViewStat
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, v := range s.views {
			out = append(out, v)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumViews returns the number of tracked views across all shards.
func (r *Registry) NumViews() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.views)
		s.mu.RUnlock()
	}
	return n
}

// NumShards returns the registry's shard count (observability).
func (r *Registry) NumShards() int { return len(r.shards) }

// Counters returns the current epoch-published count snapshot: one
// lock-free load, internally consistent — views, partitions and
// fragments all describe the same epoch, unlike a NumViews-style walk
// that sums shards while writers move between them.
func (r *Registry) Counters() Counters { return *r.counters.snap.Load() }

// Partition returns the partition statistics for (view, attr), creating
// an empty record over dom on first use.
func (r *Registry) Partition(view, attr string, dom interval.Interval) *PartitionStat {
	s := r.shard(view)
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.parts[view]
	if !ok {
		m = make(map[string]*PartitionStat)
		s.parts[view] = m
	}
	p, ok := m[attr]
	if !ok {
		p = NewPartitionStat(view, attr, dom)
		p.journal = r.journal
		p.counters = r.counters
		m[attr] = p
		r.counters.add(0, 1, 0)
		// Journal the creation so replay rebuilds the record — with its
		// domain — before any hit/refine/drop record that references it.
		r.journal.emit(datastore.Record{Op: "part", View: view, Attr: attr, Dom: dom})
	}
	if p.Dom != dom {
		// The domain of an attribute is fixed by the schema; a mismatch
		// is a wiring bug.
		panic(fmt.Sprintf("stats: partition %s.%s domain changed from %s to %s",
			view, attr, p.Dom, dom))
	}
	return p
}

// LookupPartition returns the partition statistics if tracked.
func (r *Registry) LookupPartition(view, attr string) (*PartitionStat, bool) {
	s := r.shard(view)
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.parts[view]
	if !ok {
		return nil, false
	}
	p, ok := m[attr]
	return p, ok
}

// Partitions returns all partition statistics of a view sorted by
// attribute.
func (r *Registry) Partitions(view string) []*PartitionStat {
	s := r.shard(view)
	s.mu.RLock()
	m := s.parts[view]
	out := make([]*PartitionStat, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}
