package stats

import (
	"math/rand"
	"testing"

	"deepsea/internal/interval"
)

// benchPartition builds a partition statistic with many tracked
// fragments and a realistic hit history.
func benchPartition(nFrags, hitsPerFrag int) *PartitionStat {
	rng := rand.New(rand.NewSource(1))
	p := NewPartitionStat("v", "a", interval.New(0, 400000))
	t := 1.0
	for i := 0; i < nFrags; i++ {
		lo := rng.Int63n(395000)
		f := p.Frag(interval.New(lo, lo+4000))
		f.Size = 1 << 27
		for h := 0; h < hitsPerFrag; h++ {
			t += 10
			f.RecordHit(t)
		}
	}
	return p
}

func BenchmarkFitNormal(b *testing.B) {
	p := benchPartition(100, 20)
	d := Decay{TMax: 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// tnow within the decay window of the most recent hits.
		m := p.FitNormal(21000, d)
		if !m.Valid() {
			b.Fatal("invalid model")
		}
	}
}

func BenchmarkDecayedHitsLongHistory(b *testing.B) {
	f := &FragStat{Iv: interval.New(0, 1000), Size: 1}
	for t := 1.0; t < 100000; t += 10 {
		f.RecordHit(t)
	}
	d := Decay{TMax: 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.DecayedHits(100001, d)
	}
}

func BenchmarkViewBenefitLongHistory(b *testing.B) {
	v := &ViewStat{ID: "v", Size: 1 << 30, Cost: 100}
	for t := 1.0; t < 100000; t += 10 {
		v.RecordUse(t, 50)
	}
	d := Decay{TMax: 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Benefit(100001, d)
	}
}
