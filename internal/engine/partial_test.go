package engine

import (
	"testing"

	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// testEngineSplit builds two engines that together hold exactly the
// rows of testEngine's sales table (split by row parity), each with the
// full item dimension — the shape of two range shards over one dataset.
func testEngineSplit() (*Engine, *Engine) {
	mk := func(keep func(i int) bool) *Engine {
		e := New(DefaultCostModel())
		sales := relation.NewTable(salesSchema())
		for i := 0; i < 1000; i++ {
			if !keep(i) {
				continue
			}
			sales.Append(relation.Row{
				relation.IntVal(int64(i % 100)),
				relation.IntVal(int64(i%7 + 1)),
				relation.FloatVal(float64(i%10) + 0.5),
			})
		}
		e.AddBaseTable(sales)
		item := relation.NewTable(itemSchema())
		cats := []string{"books", "music", "video", "games"}
		for i := 0; i < 100; i++ {
			item.Append(relation.Row{
				relation.IntVal(int64(i)),
				relation.StringVal(cats[i%len(cats)]),
			})
		}
		e.AddBaseTable(item)
		return e
	}
	return mk(func(i int) bool { return i%2 == 0 }), mk(func(i int) bool { return i%2 == 1 })
}

func partialAggPlan(partial bool) *query.Aggregate {
	return &query.Aggregate{
		Child:   joinPlan(),
		GroupBy: []string{"i_category"},
		Partial: partial,
		Aggs: []query.AggSpec{
			{Func: query.Count, As: "n"},
			{Func: query.Sum, Col: "ss_qty", As: "total_qty"},
			{Func: query.Avg, Col: "ss_price", As: "avg_price"},
			{Func: query.Min, Col: "ss_item_sk", As: "min_sk"},
			{Func: query.Max, Col: "ss_item_sk", As: "max_sk"},
		},
	}
}

// TestPartialAggregateMergesToFull runs the partial-mode aggregate on
// two disjoint halves of the dataset, merges the emitted states by
// group, and checks the merged result matches the full-mode aggregate
// over the whole dataset. The test inputs are binary-exact (ints and
// halves), so even the full engine's plain float fold is exact and the
// comparison can demand equality rather than tolerance.
func TestPartialAggregateMergesToFull(t *testing.T) {
	whole := testEngine()
	full := mustRun(t, whole, partialAggPlan(false)).Table

	left, right := testEngineSplit()
	type state struct {
		count    int64
		sums     []string // one encoding per shard, per summed agg
		avgSums  []string
		avgN     int64
		min, max int64
	}
	merged := map[string]*state{}
	for _, e := range []*Engine{left, right} {
		part := mustRun(t, e, partialAggPlan(true)).Table
		sch := part.Schema
		for _, row := range part.Rows {
			cat := row[sch.ColIndex("i_category")].S
			st := merged[cat]
			if st == nil {
				st = &state{min: 1 << 60, max: -(1 << 60)}
				merged[cat] = st
			}
			st.count += row[sch.ColIndex("n#count")].I
			st.sums = append(st.sums, row[sch.ColIndex("total_qty#sum")].S)
			st.avgSums = append(st.avgSums, row[sch.ColIndex("avg_price#avg.sum")].S)
			st.avgN += row[sch.ColIndex("avg_price#avg.n")].I
			if v := row[sch.ColIndex("min_sk#min")].I; v < st.min {
				st.min = v
			}
			if v := row[sch.ColIndex("max_sk#max")].I; v > st.max {
				st.max = v
			}
		}
	}

	fsch := full.Schema
	if len(merged) != full.NumRows() {
		t.Fatalf("merged groups = %d, full groups = %d", len(merged), full.NumRows())
	}
	for _, row := range full.Rows {
		cat := row[fsch.ColIndex("i_category")].S
		st := merged[cat]
		if st == nil {
			t.Fatalf("group %q missing from merged result", cat)
		}
		if st.count != row[fsch.ColIndex("n")].I {
			t.Errorf("%s: count %d != %d", cat, st.count, row[fsch.ColIndex("n")].I)
		}
		_, sum, err := MergePartialSums(st.sums...)
		if err != nil {
			t.Fatal(err)
		}
		if want := row[fsch.ColIndex("total_qty")].F; sum != want {
			t.Errorf("%s: sum %v != %v", cat, sum, want)
		}
		_, avgSum, err := MergePartialSums(st.avgSums...)
		if err != nil {
			t.Fatal(err)
		}
		if want := row[fsch.ColIndex("avg_price")].F; avgSum/float64(st.avgN) != want {
			t.Errorf("%s: avg %v != %v", cat, avgSum/float64(st.avgN), want)
		}
		if st.min != row[fsch.ColIndex("min_sk")].I || st.max != row[fsch.ColIndex("max_sk")].I {
			t.Errorf("%s: min/max %d/%d != %d/%d", cat, st.min, st.max,
				row[fsch.ColIndex("min_sk")].I, row[fsch.ColIndex("max_sk")].I)
		}
	}
}

// TestPartialDistinctFingerprint guards the cache-safety rule: a
// partial-mode plan must never share a fingerprint or template with its
// full-mode twin, or result caches would serve one for the other.
func TestPartialDistinctFingerprint(t *testing.T) {
	full, part := partialAggPlan(false), partialAggPlan(true)
	if query.Fingerprint(full) == query.Fingerprint(part) {
		t.Error("partial and full plans share a fingerprint")
	}
	if query.TemplateFingerprint(full) == query.TemplateFingerprint(part) {
		t.Error("partial and full plans share a template fingerprint")
	}
}
