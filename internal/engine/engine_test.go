package engine

import (
	"math"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

func salesSchema() relation.Schema {
	return relation.Schema{
		Name: "sales",
		Cols: []relation.Column{
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99},
			{Name: "ss_qty", Type: relation.Int},
			{Name: "ss_price", Type: relation.Float},
		},
	}
}

func itemSchema() relation.Schema {
	return relation.Schema{
		Name: "item",
		Cols: []relation.Column{
			{Name: "i_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99},
			{Name: "i_category", Type: relation.String},
		},
	}
}

// testEngine returns an engine with a 1000-row sales table (item_sk
// cycling 0..99) and a 100-row item dimension.
func testEngine() *Engine {
	e := New(DefaultCostModel())
	sales := relation.NewTable(salesSchema())
	for i := 0; i < 1000; i++ {
		sales.Append(relation.Row{
			relation.IntVal(int64(i % 100)),
			relation.IntVal(int64(i%7 + 1)),
			relation.FloatVal(float64(i%10) + 0.5),
		})
	}
	e.AddBaseTable(sales)
	item := relation.NewTable(itemSchema())
	cats := []string{"books", "music", "video", "games"}
	for i := 0; i < 100; i++ {
		item.Append(relation.Row{
			relation.IntVal(int64(i)),
			relation.StringVal(cats[i%len(cats)]),
		})
	}
	e.AddBaseTable(item)
	return e
}

func joinPlan() *query.Join {
	return &query.Join{
		Left:  query.NewScan("sales", salesSchema()),
		Right: query.NewScan("item", itemSchema()),
		LCol:  "ss_item_sk",
		RCol:  "i_item_sk",
	}
}

func mustRun(t *testing.T, e *Engine, plan query.Node) Result {
	t.Helper()
	res, err := e.Run(plan, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestScanExecution(t *testing.T) {
	e := testEngine()
	res := mustRun(t, e, query.NewScan("sales", salesSchema()))
	if res.Table.NumRows() != 1000 {
		t.Errorf("scan rows = %d, want 1000", res.Table.NumRows())
	}
	if res.Cost.ReadBytes != e.BaseTable("sales").Bytes() {
		t.Errorf("read bytes = %d, want %d", res.Cost.ReadBytes, e.BaseTable("sales").Bytes())
	}
	if res.Cost.Seconds <= 0 {
		t.Error("scan cost must be positive")
	}
}

func TestUnknownTableError(t *testing.T) {
	e := testEngine()
	if _, err := e.Run(query.NewScan("nope", salesSchema()), nil); err == nil {
		t.Error("scan of unknown table did not error")
	}
}

func TestSelectExecution(t *testing.T) {
	e := testEngine()
	plan := &query.Select{
		Child:  query.NewScan("sales", salesSchema()),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(10, 19)}},
	}
	res := mustRun(t, e, plan)
	if res.Table.NumRows() != 100 {
		t.Errorf("filtered rows = %d, want 100", res.Table.NumRows())
	}
	for _, row := range res.Table.Rows {
		if row[0].I < 10 || row[0].I > 19 {
			t.Fatalf("row outside range: %v", row)
		}
	}
}

func TestResidualSelect(t *testing.T) {
	e := testEngine()
	plan := &query.Select{
		Child: query.NewScan("item", itemSchema()),
		Residuals: []query.CmpPred{{
			Col: "i_category", Op: query.Eq,
			Val: relation.StringVal("books"), Typ: relation.String,
		}},
	}
	res := mustRun(t, e, plan)
	if res.Table.NumRows() != 25 {
		t.Errorf("rows = %d, want 25", res.Table.NumRows())
	}
}

func TestJoinExecutionMatchesNestedLoop(t *testing.T) {
	e := testEngine()
	res := mustRun(t, e, joinPlan())
	// Every sales row matches exactly one item row.
	if res.Table.NumRows() != 1000 {
		t.Errorf("join rows = %d, want 1000", res.Table.NumRows())
	}
	// Spot-check join correctness: joined category matches item table.
	sch := res.Table.Schema
	ci := sch.ColIndex("i_category")
	ki := sch.ColIndex("ss_item_sk")
	cats := []string{"books", "music", "video", "games"}
	for _, row := range res.Table.Rows {
		want := cats[row[ki].I%4]
		if row[ci].S != want {
			t.Fatalf("join mismatch: item %d category %q, want %q", row[ki].I, row[ci].S, want)
		}
	}
	if res.Cost.Jobs != 1 {
		t.Errorf("join jobs = %d, want 1", res.Cost.Jobs)
	}
}

func TestJoinBuildSideSymmetry(t *testing.T) {
	e := testEngine()
	a := mustRun(t, e, joinPlan())
	flipped := &query.Join{
		Left:  query.NewScan("item", itemSchema()),
		Right: query.NewScan("sales", salesSchema()),
		LCol:  "i_item_sk",
		RCol:  "ss_item_sk",
	}
	b := mustRun(t, e, flipped)
	if a.Table.NumRows() != b.Table.NumRows() {
		t.Errorf("join direction changed cardinality: %d vs %d",
			a.Table.NumRows(), b.Table.NumRows())
	}
}

func TestAggregateExecution(t *testing.T) {
	e := testEngine()
	plan := &query.Aggregate{
		Child:   joinPlan(),
		GroupBy: []string{"i_category"},
		Aggs: []query.AggSpec{
			{Func: query.Count, As: "n"},
			{Func: query.Sum, Col: "ss_qty", As: "total_qty"},
			{Func: query.Avg, Col: "ss_price", As: "avg_price"},
			{Func: query.Min, Col: "ss_item_sk", As: "min_sk"},
			{Func: query.Max, Col: "ss_item_sk", As: "max_sk"},
		},
	}
	res := mustRun(t, e, plan)
	if res.Table.NumRows() != 4 {
		t.Fatalf("groups = %d, want 4", res.Table.NumRows())
	}
	sch := res.Table.Schema
	var totalN int64
	for _, row := range res.Table.Rows {
		totalN += row[sch.ColIndex("n")].I
		if row[sch.ColIndex("total_qty")].F <= 0 {
			t.Error("sum must be positive")
		}
		avg := row[sch.ColIndex("avg_price")].F
		if avg < 0.5 || avg > 9.5 {
			t.Errorf("avg_price = %g out of range", avg)
		}
		if row[sch.ColIndex("min_sk")].I > row[sch.ColIndex("max_sk")].I {
			t.Error("min > max")
		}
	}
	if totalN != 1000 {
		t.Errorf("sum of counts = %d, want 1000", totalN)
	}
	if res.Cost.Jobs != 2 {
		t.Errorf("jobs = %d, want 2 (join + aggregate)", res.Cost.Jobs)
	}
}

func TestProjectExecution(t *testing.T) {
	e := testEngine()
	plan := &query.Project{Child: joinPlan(), Cols: []string{"i_category", "ss_price"}}
	res := mustRun(t, e, plan)
	if len(res.Table.Schema.Cols) != 2 {
		t.Fatalf("projected cols = %d, want 2", len(res.Table.Schema.Cols))
	}
	if res.Table.NumRows() != 1000 {
		t.Errorf("rows = %d, want 1000", res.Table.NumRows())
	}
}

// materializeJoinView runs the join, stores its result as a view and as a
// set of fragments partitioned on ss_item_sk, and returns the view table.
func materializeJoinView(t *testing.T, e *Engine, ivs []interval.Interval) *relation.Table {
	t.Helper()
	res := mustRun(t, e, joinPlan())
	view := res.Table
	if _, err := e.WriteMaterialized("views/j/full", view); err != nil {
		t.Fatal(err)
	}
	ai := view.Schema.ColIndex("ss_item_sk")
	for _, iv := range ivs {
		frag := relation.NewTable(view.Schema)
		for _, row := range view.Rows {
			if iv.Contains(row[ai].I) {
				frag.Append(row)
			}
		}
		if _, err := e.WriteMaterialized(fragPath(iv), frag); err != nil {
			t.Fatal(err)
		}
	}
	return view
}

func fragPath(iv interval.Interval) string {
	return "views/j/ss_item_sk/" + iv.String()
}

func TestViewScanUnpartitionedMatchesDirect(t *testing.T) {
	e := testEngine()
	materializeJoinView(t, e, nil)
	want := mustRun(t, e, &query.Select{
		Child:  joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(20, 40)}},
	})
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewPath:   "views/j/full",
		ViewSchema: joinPlan().Schema(),
		CompRanges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(20, 40)}},
	}
	got := mustRun(t, e, vs)
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("unpartitioned view scan result differs from direct execution")
	}
}

func TestViewScanFragmentsMatchDirect(t *testing.T) {
	e := testEngine()
	ivs := []interval.Interval{interval.New(0, 30), interval.New(31, 60), interval.New(61, 99)}
	materializeJoinView(t, e, ivs)
	queryIv := interval.New(25, 50)
	want := mustRun(t, e, &query.Select{
		Child:  joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
	})
	idx, reads, full := interval.ClippedCover(queryIv, interval.Set(ivs))
	if !full {
		t.Fatal("expected full cover")
	}
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		CompRanges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
	}
	for k, i := range idx {
		vs.FragIDs = append(vs.FragIDs, fragPath(ivs[i]))
		vs.Reads = append(vs.Reads, reads[k])
		vs.FragIvs = append(vs.FragIvs, ivs[i])
	}
	got := mustRun(t, e, vs)
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("fragment cover result differs from direct execution")
	}
	if got.Cost.ReadBytes >= want.Cost.ReadBytes {
		t.Errorf("fragment read bytes %d not smaller than base plan %d",
			got.Cost.ReadBytes, want.Cost.ReadBytes)
	}
}

func TestViewScanOverlappingFragmentsNoDuplicates(t *testing.T) {
	e := testEngine()
	// Deliberately overlapping fragments.
	ivs := []interval.Interval{interval.New(0, 50), interval.New(40, 99)}
	materializeJoinView(t, e, ivs)
	queryIv := interval.New(30, 70)
	want := mustRun(t, e, &query.Select{
		Child:  joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
	})
	idx, reads, full := interval.ClippedCover(queryIv, interval.Set(ivs))
	if !full {
		t.Fatal("expected full cover")
	}
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		CompRanges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
	}
	for k, i := range idx {
		vs.FragIDs = append(vs.FragIDs, fragPath(ivs[i]))
		vs.Reads = append(vs.Reads, reads[k])
		vs.FragIvs = append(vs.FragIvs, ivs[i])
	}
	got := mustRun(t, e, vs)
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("overlapping fragments produced duplicate or missing rows")
	}
}

func TestViewScanWithRemainder(t *testing.T) {
	e := testEngine()
	// Only the low fragment exists; [31,60] must come from base data.
	ivs := []interval.Interval{interval.New(0, 30)}
	materializeJoinView(t, e, ivs)
	queryIv := interval.New(10, 60)
	want := mustRun(t, e, &query.Select{
		Child:  joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
	})
	remainder := &query.Select{
		Child:  joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(31, 60)}},
	}
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		FragIDs:    []string{fragPath(ivs[0])},
		Reads:      []interval.Interval{interval.New(10, 30)},
		FragIvs:    []interval.Interval{ivs[0]},
		CompRanges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
		Remainders: []query.Node{remainder},
	}
	got := mustRun(t, e, vs)
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("remainder union differs from direct execution")
	}
	if got.Cost.Jobs == 0 {
		t.Error("remainder execution should run jobs")
	}
}

func TestViewScanMissingFragmentErrors(t *testing.T) {
	e := testEngine()
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		FragIDs:    []string{"views/j/ss_item_sk/[0,10]"},
		Reads:      []interval.Interval{interval.New(0, 10)},
	}
	if _, err := e.Run(vs, nil); err == nil {
		t.Error("missing fragment did not error")
	}
}

func TestCaptureIntermediateResult(t *testing.T) {
	e := testEngine()
	j := joinPlan()
	plan := &query.Aggregate{
		Child:   &query.Select{Child: j, Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 49)}}},
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Count, As: "n"}},
	}
	res, err := e.Run(plan, map[query.Node]bool{j: true})
	if err != nil {
		t.Fatal(err)
	}
	captured := res.Captured[j]
	if captured == nil {
		t.Fatal("join result not captured")
	}
	if captured.NumRows() != 1000 {
		t.Errorf("captured rows = %d, want 1000 (pre-selection)", captured.NumRows())
	}
}

func TestEstimateMatchesExecForUniformData(t *testing.T) {
	e := testEngine()
	plan := &query.Aggregate{
		Child: &query.Select{
			Child:  joinPlan(),
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(0, 49)}},
		},
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "total"}},
	}
	est, err := e.EstimateCost(plan)
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, e, plan)
	ratio := est.Seconds / got.Cost.Seconds
	if math.Abs(ratio-1) > 0.25 {
		t.Errorf("estimate %.2fs vs exec %.2fs (ratio %.2f): too far apart",
			est.Seconds, got.Cost.Seconds, ratio)
	}
}

func TestEstimateOnlyMode(t *testing.T) {
	e := testEngine()
	e.ExecuteRows = false
	res := mustRun(t, e, joinPlan())
	if res.Table != nil {
		t.Error("estimate-only mode returned rows")
	}
	if res.Cost.Seconds <= 0 {
		t.Error("estimate-only mode returned no cost")
	}
}

func TestEstimateSize(t *testing.T) {
	e := testEngine()
	rows, bytes, err := e.EstimateSize(joinPlan())
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1000 {
		t.Errorf("estimated join rows = %d, want 1000", rows)
	}
	ss, is := salesSchema(), itemSchema()
	wantWidth := ss.RowWidth() + is.RowWidth()
	if bytes != 1000*wantWidth {
		t.Errorf("estimated bytes = %d, want %d", bytes, 1000*wantWidth)
	}
}

func TestClockAdvance(t *testing.T) {
	e := testEngine()
	if e.Now() != 1 {
		t.Errorf("initial clock = %g, want 1", e.Now())
	}
	e.Advance(10)
	if e.Now() != 11 {
		t.Errorf("clock = %g, want 11", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance did not panic")
		}
	}()
	e.Advance(-1)
}

func TestWriteAndDeleteMaterialized(t *testing.T) {
	e := testEngine()
	tbl := e.BaseTable("item").Clone()
	c, err := e.WriteMaterialized("v/x", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if c.WriteBytes != tbl.Bytes() || c.Seconds <= 0 {
		t.Errorf("write cost = %+v", c)
	}
	got, rc, err := e.ReadMaterialized("v/x")
	if err != nil || got == nil || rc.ReadBytes != tbl.Bytes() {
		t.Fatalf("ReadMaterialized = %v,%v,%v", got, rc, err)
	}
	e.DeleteMaterialized("v/x")
	if _, _, err := e.ReadMaterialized("v/x"); err == nil {
		t.Error("read after delete did not error")
	}
}

func TestCostModelTasks(t *testing.T) {
	cm := DefaultCostModel()
	if got := cm.Tasks(0, 0); got != 1 {
		t.Errorf("Tasks(0,0) = %d, want 1", got)
	}
	if got := cm.Tasks(cm.BlockSize*3, 1); got != 3 {
		t.Errorf("Tasks(3 blocks) = %d, want 3", got)
	}
	if got := cm.Tasks(cm.BlockSize, 5); got != 5 {
		t.Errorf("Tasks(1 block, 5 files) = %d, want 5", got)
	}
}

func TestEstimateModeViewScanUsesOverrides(t *testing.T) {
	e := testEngine()
	e.ExecuteRows = false
	vs := &query.ViewScan{
		ViewID:     "virt",
		ViewPath:   "virtual://virt",
		ViewBytes:  1 << 30,
		ViewSchema: joinPlan().Schema(),
	}
	c, err := e.EstimateCost(vs)
	if err != nil {
		t.Fatal(err)
	}
	if c.ReadBytes != 1<<30 {
		t.Errorf("estimated read bytes = %d, want 1GiB override", c.ReadBytes)
	}
	// Fragment-size overrides likewise.
	vs2 := &query.ViewScan{
		ViewID:     "virt2",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		FragIDs:    []string{"phantom/a", "phantom/b"},
		Reads:      []interval.Interval{interval.New(0, 49), interval.New(50, 99)},
		FragIvs:    []interval.Interval{interval.New(0, 49), interval.New(50, 99)},
		FragSizes:  []int64{1 << 20, 2 << 20},
	}
	c2, err := e.EstimateCost(vs2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ReadBytes != 3<<20 {
		t.Errorf("estimated read bytes = %d, want 3MiB", c2.ReadBytes)
	}
}

func TestEstimateViewScanMissingFileErrors(t *testing.T) {
	e := testEngine()
	vs := &query.ViewScan{
		ViewID:     "ghost",
		ViewPath:   "views/ghost",
		ViewSchema: joinPlan().Schema(),
	}
	if _, err := e.EstimateCost(vs); err == nil {
		t.Error("estimate over missing view file did not error")
	}
}

func TestEstimateUnknownTableErrors(t *testing.T) {
	e := testEngine()
	if _, err := e.EstimateCost(query.NewScan("nope", salesSchema())); err == nil {
		t.Error("estimate over unknown table did not error")
	}
	if _, _, err := e.EstimateSize(query.NewScan("nope", salesSchema())); err == nil {
		t.Error("EstimateSize over unknown table did not error")
	}
}

func TestWriteCostScalesWithFiles(t *testing.T) {
	cm := DefaultCostModel()
	one := cm.WriteCost(1<<30, 1)
	many := cm.WriteCost(1<<30, 60)
	if many <= one {
		t.Error("per-file creation cost not charged")
	}
}

func TestReadCostMoreFilesCostMore(t *testing.T) {
	cm := DefaultCostModel()
	few, _ := cm.ReadCost(1<<30, 2)
	lots, _ := cm.ReadCost(1<<30, 64)
	if lots <= few {
		t.Error("per-file open cost not charged")
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Seconds: 1.5, ReadBytes: 10, Jobs: 2}
	if s := c.String(); s == "" {
		t.Error("empty cost string")
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	e := testEngine()
	plan := &query.Aggregate{
		Child: query.NewScan("sales", salesSchema()),
		Aggs: []query.AggSpec{
			{Func: query.Count, As: "n"},
			{Func: query.Sum, Col: "ss_qty", As: "total"},
		},
	}
	res := mustRun(t, e, plan)
	if res.Table.NumRows() != 1 {
		t.Fatalf("global aggregate rows = %d, want 1", res.Table.NumRows())
	}
	if res.Table.Rows[0][0].I != 1000 {
		t.Errorf("count = %d, want 1000", res.Table.Rows[0][0].I)
	}
}

func TestJoinWithEmptySide(t *testing.T) {
	e := testEngine()
	empty := relation.NewTable(relation.Schema{Name: "void", Cols: []relation.Column{
		{Name: "v_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99},
	}})
	e.AddBaseTable(empty)
	plan := &query.Join{
		Left:  query.NewScan("sales", salesSchema()),
		Right: query.NewScan("void", empty.Schema),
		LCol:  "ss_item_sk",
		RCol:  "v_item_sk",
	}
	res := mustRun(t, e, plan)
	if res.Table.NumRows() != 0 {
		t.Errorf("join with empty side returned %d rows", res.Table.NumRows())
	}
}

func TestSelectOnEmptyResult(t *testing.T) {
	e := testEngine()
	plan := &query.Select{
		Child:  query.NewScan("sales", salesSchema()),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(95, 99)}},
		Residuals: []query.CmpPred{{Col: "ss_qty", Op: query.Gt,
			Val: relation.IntVal(1000), Typ: relation.Int}},
	}
	res := mustRun(t, e, plan)
	if res.Table.NumRows() != 0 {
		t.Errorf("impossible predicate returned %d rows", res.Table.NumRows())
	}
}
