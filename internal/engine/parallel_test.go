package engine

import (
	"strings"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/leakcheck"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// bigEngine returns an engine whose sales table spans several chunks
// (nRows >> chunkRows), so parallel execution really fans out, plus the
// usual item dimension.
func bigEngine(nRows int) *Engine {
	e := New(DefaultCostModel())
	sales := relation.NewTable(salesSchema())
	for i := 0; i < nRows; i++ {
		sales.Append(relation.Row{
			relation.IntVal(int64(i % 100)),
			relation.IntVal(int64(i%7 + 1)),
			relation.FloatVal(float64(i%13) + 0.25),
		})
	}
	e.AddBaseTable(sales)
	item := relation.NewTable(itemSchema())
	cats := []string{"books", "music", "video", "games"}
	for i := 0; i < 100; i++ {
		item.Append(relation.Row{
			relation.IntVal(int64(i)),
			relation.StringVal(cats[i%len(cats)]),
		})
	}
	e.AddBaseTable(item)
	return e
}

// sameRows reports exact row-order-and-value equality — stricter than
// Fingerprint, which is order-independent.
func sameRows(a, b *relation.Table) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// TestParallelDeterminism runs every parallelized operator over a
// multi-chunk table at several worker counts and demands byte-identical
// output — same rows, same order, same float accumulation.
func TestParallelDeterminism(t *testing.T) {
	leakcheck.Check(t)
	const nRows = 3*chunkRows + 17
	plans := map[string]func() query.Node{
		"filter": func() query.Node {
			return &query.Select{
				Child:  query.NewScan("sales", salesSchema()),
				Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(10, 79)}},
			}
		},
		"project": func() query.Node {
			return &query.Project{
				Child: query.NewScan("sales", salesSchema()),
				Cols:  []string{"ss_price", "ss_item_sk"},
			}
		},
		"join": func() query.Node {
			return &query.Join{
				Left:  query.NewScan("sales", salesSchema()),
				Right: query.NewScan("item", itemSchema()),
				LCol:  "ss_item_sk",
				RCol:  "i_item_sk",
			}
		},
		"aggregate": func() query.Node {
			return &query.Aggregate{
				Child:   query.NewScan("sales", salesSchema()),
				GroupBy: []string{"ss_item_sk"},
				Aggs: []query.AggSpec{
					{Func: query.Count, As: "n"},
					{Func: query.Sum, Col: "ss_price", As: "total"},
					{Func: query.Avg, Col: "ss_price", As: "avg"},
					{Func: query.Min, Col: "ss_qty", As: "lo"},
					{Func: query.Max, Col: "ss_qty", As: "hi"},
				},
			}
		},
		"join-aggregate": func() query.Node {
			return &query.Aggregate{
				Child: &query.Join{
					Left:  query.NewScan("sales", salesSchema()),
					Right: query.NewScan("item", itemSchema()),
					LCol:  "ss_item_sk",
					RCol:  "i_item_sk",
				},
				GroupBy: []string{"i_category"},
				Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "total"}},
			}
		},
	}
	for name, mk := range plans {
		t.Run(name, func(t *testing.T) {
			var want *relation.Table
			for _, par := range []int{1, 3, 8} {
				e := bigEngine(nRows)
				e.Parallelism = par
				got := mustRun(t, e, mk()).Table
				if want == nil {
					want = got
					continue
				}
				if !sameRows(want, got) {
					t.Errorf("parallelism %d changed the result", par)
				}
			}
		})
	}
}

// TestParallelViewScanDeterminism covers the stored-fragment filter path
// (evalViewScan) at several worker counts.
func TestParallelViewScanDeterminism(t *testing.T) {
	leakcheck.Check(t)
	ivs := []interval.Interval{interval.New(0, 50), interval.New(40, 99)}
	queryIv := interval.New(30, 70)
	var want *relation.Table
	for _, par := range []int{1, 3, 8} {
		e := testEngine()
		e.Parallelism = par
		materializeJoinView(t, e, ivs)
		idx, reads, full := interval.ClippedCover(queryIv, interval.Set(ivs))
		if !full {
			t.Fatal("expected full cover")
		}
		vs := &query.ViewScan{
			ViewID:     "j",
			ViewSchema: joinPlan().Schema(),
			PartAttr:   "ss_item_sk",
			CompRanges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
		}
		for k, i := range idx {
			vs.FragIDs = append(vs.FragIDs, fragPath(ivs[i]))
			vs.Reads = append(vs.Reads, reads[k])
			vs.FragIvs = append(vs.FragIvs, ivs[i])
		}
		got := mustRun(t, e, vs).Table
		if want == nil {
			want = got
			continue
		}
		if !sameRows(want, got) {
			t.Errorf("parallelism %d changed the view-scan result", par)
		}
	}
}

// TestParallelMultiGapRemainderDeterminism covers the inter-operator
// path of evalViewScan: a fragment cover with several gaps, so multiple
// remainder subplans and stored-fragment filters run as one task pool.
// Output rows, their order, and every captured intermediate must be
// byte-identical at every worker count.
func TestParallelMultiGapRemainderDeterminism(t *testing.T) {
	leakcheck.Check(t)
	ivs := []interval.Interval{interval.New(20, 40), interval.New(60, 80)}
	queryIv := interval.New(0, 99)
	gaps := []interval.Interval{interval.New(0, 19), interval.New(41, 59), interval.New(81, 99)}

	type outcome struct {
		out  *relation.Table
		caps []*relation.Table
	}
	var want *outcome
	for _, par := range []int{1, 3, 8} {
		e := testEngine()
		e.Parallelism = par
		materializeJoinView(t, e, ivs)
		vs := &query.ViewScan{
			ViewID:     "j",
			ViewSchema: joinPlan().Schema(),
			PartAttr:   "ss_item_sk",
			CompRanges: []query.RangePred{{Col: "ss_item_sk", Iv: queryIv}},
		}
		for _, iv := range ivs {
			vs.FragIDs = append(vs.FragIDs, fragPath(iv))
			vs.Reads = append(vs.Reads, iv)
			vs.FragIvs = append(vs.FragIvs, iv)
		}
		capture := make(map[query.Node]bool)
		for _, gap := range gaps {
			rem := &query.Select{
				Child:  joinPlan(),
				Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: gap}},
			}
			vs.Remainders = append(vs.Remainders, rem)
			capture[rem] = true
		}
		res, err := e.Run(vs, capture)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		got := &outcome{out: res.Table}
		for _, rem := range vs.Remainders {
			tbl, ok := res.Captured[rem]
			if !ok || tbl == nil {
				t.Fatalf("parallelism %d: remainder capture missing", par)
			}
			got.caps = append(got.caps, tbl)
		}
		if want == nil {
			want = got
			continue
		}
		if !sameRows(want.out, got.out) {
			t.Errorf("parallelism %d changed the multi-gap result", par)
		}
		for i := range want.caps {
			if !sameRows(want.caps[i], got.caps[i]) {
				t.Errorf("parallelism %d changed captured remainder %d", par, i)
			}
		}
	}
	// Sanity: the union really covers the whole range — 10 sales rows per
	// item_sk value, 100 values.
	if want.out.NumRows() != 1000 {
		t.Errorf("multi-gap union rows = %d, want 1000", want.out.NumRows())
	}
}

// TestGroupKeyCollisionRegression builds two rows whose group keys
// collided under the old separator-based encoding: per string value the
// key was [I][F][S][0x1f], so a value containing 0x1f followed by
// another value's zero-prefix was indistinguishable from the split
// placed one value later. The length-prefixed encoding keeps them apart.
func TestGroupKeyCollisionRegression(t *testing.T) {
	schema := relation.Schema{Name: "t", Cols: []relation.Column{
		{Name: "s1", Type: relation.String},
		{Name: "s2", Type: relation.String},
	}}
	tbl := relation.NewTable(schema)
	z16 := strings.Repeat("\x00", 16)
	// Old encoding of both rows: [z16]"a"[1f][z16][1f][z16][1f].
	tbl.Append(relation.Row{relation.StringVal("a"), relation.StringVal("\x1f" + z16)})
	tbl.Append(relation.Row{relation.StringVal("a\x1f" + z16), relation.StringVal("")})
	e := New(DefaultCostModel())
	e.AddBaseTable(tbl)
	res := mustRun(t, e, &query.Aggregate{
		Child:   query.NewScan("t", schema),
		GroupBy: []string{"s1", "s2"},
		Aggs:    []query.AggSpec{{Func: query.Count, As: "n"}},
	})
	if res.Table.NumRows() != 2 {
		t.Errorf("distinct group keys merged: got %d groups, want 2", res.Table.NumRows())
	}
}

// TestMalformedViewScanErrors feeds the executor and the estimator a
// ViewScan whose fragment list and clip ranges disagree; both must
// return an error rather than panic on the index mismatch.
func TestMalformedViewScanErrors(t *testing.T) {
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		FragIDs:    []string{"views/j/ss_item_sk/[0,10]", "views/j/ss_item_sk/[11,20]"},
		Reads:      []interval.Interval{interval.New(0, 10)},
	}
	for _, exec := range []bool{true, false} {
		e := testEngine()
		e.ExecuteRows = exec
		_, err := e.Run(vs, nil)
		if err == nil || !strings.Contains(err.Error(), "malformed") {
			t.Errorf("ExecuteRows=%v: want malformed-ViewScan error, got %v", exec, err)
		}
	}
}
