package engine

import (
	"fmt"
	"math"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// Result is the outcome of running a plan.
type Result struct {
	// Table holds the output rows; nil in estimate-only mode.
	Table *relation.Table
	// Cost is the simulated cost of the run.
	Cost Cost
	// Captured maps requested plan nodes to their materialized outputs
	// (nil tables in estimate-only mode; sizes are still estimated by
	// the caller via EstimateSize).
	Captured map[query.Node]*relation.Table
}

// Run evaluates the plan. In exec mode rows are really computed; in
// estimate-only mode the cost model alone runs and Table is nil. capture
// may list plan nodes whose intermediate outputs the caller wants (for
// view materialization); it may be nil.
func (e *Engine) Run(plan query.Node, capture map[query.Node]bool) (Result, error) {
	if !e.ExecuteRows {
		c, err := e.EstimateCost(plan)
		if err != nil {
			return Result{}, err
		}
		return Result{Cost: c}, nil
	}
	res := Result{Captured: make(map[query.Node]*relation.Table)}
	out, err := e.eval(plan, capture, &res)
	if err != nil {
		return Result{}, err
	}
	e.settle(&out)
	res.Table = out.tbl
	res.Cost = out.cost
	return res, nil
}

// evalOut carries a subtree's rows, accumulated cost, and — when the
// subtree's output currently "lives in storage" (a scan or view read not
// yet consumed by a job) — the bytes/files the consuming job will read.
// Map-side operators (select/project) pass pending state through: the
// consuming job reads the stored bytes and filters for free.
type evalOut struct {
	tbl     *relation.Table
	cost    Cost
	pending bool
	// needsWrite marks job outputs (join/aggregate) that must still be
	// written to HDFS. Map-side selections and projections shrink
	// srcBytes before the write happens, which is how Hive's fused
	// projection keeps intermediates narrow.
	needsWrite bool
	srcBytes   int64
	srcFiles   int64
}

// settle charges the materialization (for job outputs) and the read of a
// pending stored output.
func (e *Engine) settle(o *evalOut) {
	if !o.pending {
		return
	}
	if o.needsWrite {
		o.cost.Add(Cost{
			Seconds:    e.cm.WriteCost(o.srcBytes, o.srcFiles),
			WriteBytes: o.srcBytes,
		})
		o.needsWrite = false
	}
	sec, tasks := e.cm.ReadCost(o.srcBytes, o.srcFiles)
	o.cost.Add(Cost{Seconds: sec, ReadBytes: o.srcBytes, MapTasks: tasks})
	o.pending = false
}

func (e *Engine) eval(n query.Node, capture map[query.Node]bool, res *Result) (evalOut, error) {
	out, err := e.evalNode(n, capture, res)
	if err != nil {
		return out, err
	}
	if capture != nil && capture[n] {
		res.Captured[n] = out.tbl
	}
	return out, nil
}

func (e *Engine) evalNode(n query.Node, capture map[query.Node]bool, res *Result) (evalOut, error) {
	switch t := n.(type) {
	case *query.Scan:
		tbl, ok := e.base[t.Table]
		if !ok {
			return evalOut{}, fmt.Errorf("engine: unknown base table %q", t.Table)
		}
		return evalOut{tbl: tbl, pending: true, srcBytes: tbl.Bytes(), srcFiles: 1}, nil

	case *query.Select:
		child, err := e.eval(t.Child, capture, res)
		if err != nil {
			return evalOut{}, err
		}
		child.tbl = filterTable(child.tbl, t.Ranges, t.Residuals)
		if child.needsWrite {
			child.srcBytes = child.tbl.Bytes()
		}
		return child, nil

	case *query.Project:
		child, err := e.eval(t.Child, capture, res)
		if err != nil {
			return evalOut{}, err
		}
		child.tbl = projectTable(child.tbl, t.Cols)
		if child.needsWrite {
			child.srcBytes = child.tbl.Bytes()
		}
		return child, nil

	case *query.Join:
		l, err := e.eval(t.Left, capture, res)
		if err != nil {
			return evalOut{}, err
		}
		r, err := e.eval(t.Right, capture, res)
		if err != nil {
			return evalOut{}, err
		}
		e.settle(&l)
		e.settle(&r)
		outTbl := hashJoin(l.tbl, r.tbl, t.LCol, t.RCol, t.Schema())
		cost := l.cost
		cost.Add(r.cost)
		shuffle := l.tbl.Bytes() + r.tbl.Bytes()
		cost.Add(Cost{
			Seconds:      e.cm.JobStartup + float64(shuffle)/e.cm.ShuffleBW,
			ShuffleBytes: shuffle,
			Jobs:         1,
		})
		// The output write is deferred to settle so that fused map-side
		// projections/selections shrink it first.
		return evalOut{tbl: outTbl, cost: cost, pending: true, needsWrite: true,
			srcBytes: outTbl.Bytes(), srcFiles: 1}, nil

	case *query.Aggregate:
		child, err := e.eval(t.Child, capture, res)
		if err != nil {
			return evalOut{}, err
		}
		e.settle(&child)
		outTbl := aggregate(child.tbl, t)
		cost := child.cost
		shuffle := child.tbl.Bytes()
		cost.Add(Cost{
			Seconds:      e.cm.JobStartup + float64(shuffle)/e.cm.ShuffleBW,
			ShuffleBytes: shuffle,
			Jobs:         1,
		})
		return evalOut{tbl: outTbl, cost: cost, pending: true, needsWrite: true,
			srcBytes: outTbl.Bytes(), srcFiles: 1}, nil

	case *query.ViewScan:
		return e.evalViewScan(t, capture, res)

	default:
		return evalOut{}, fmt.Errorf("engine: unsupported node type %T", n)
	}
}

func (e *Engine) evalViewScan(v *query.ViewScan, capture map[query.Node]bool, res *Result) (evalOut, error) {
	out := relation.NewTable(v.ViewSchema)
	var srcBytes, srcFiles int64
	var cost Cost

	appendFiltered := func(tbl *relation.Table, clip *interval.Interval) error {
		if tbl == nil {
			return fmt.Errorf("engine: view %s has no stored rows (estimate-only data?)", v.ViewID)
		}
		attrIdx := -1
		if clip != nil {
			attrIdx = tbl.Schema.ColIndex(v.PartAttr)
			if attrIdx < 0 {
				return fmt.Errorf("engine: partition attribute %q missing from view %s", v.PartAttr, v.ViewID)
			}
		}
		for _, row := range tbl.Rows {
			if clip != nil && !clip.Contains(row[attrIdx].I) {
				continue
			}
			if !rowPasses(&tbl.Schema, row, v.CompRanges, v.CompResiduals) {
				continue
			}
			out.Append(row)
		}
		return nil
	}

	if len(v.FragIDs) > 0 {
		for i, path := range v.FragIDs {
			if !e.fs.Exists(path) {
				return evalOut{}, fmt.Errorf("engine: fragment %s of view %s missing", path, v.ViewID)
			}
			srcBytes += e.fs.Size(path)
			srcFiles++
			clip := v.Reads[i]
			if err := appendFiltered(e.mat[path], &clip); err != nil {
				return evalOut{}, err
			}
		}
	} else {
		if !e.fs.Exists(v.ViewPath) {
			return evalOut{}, fmt.Errorf("engine: view file %s missing", v.ViewPath)
		}
		srcBytes = e.fs.Size(v.ViewPath)
		srcFiles = 1
		if err := appendFiltered(e.mat[v.ViewPath], nil); err != nil {
			return evalOut{}, err
		}
	}

	outTbl := out
	if v.CompProject != nil {
		outTbl = projectTable(outTbl, v.CompProject)
	}

	// Remainder plans compute uncovered gaps from base data; their rows
	// are unioned in after name-based column alignment.
	for _, rem := range v.Remainders {
		sub, err := e.eval(rem, capture, res)
		if err != nil {
			return evalOut{}, err
		}
		e.settle(&sub)
		cost.Add(sub.cost)
		aligned, err := alignColumns(sub.tbl, outTbl.Schema)
		if err != nil {
			return evalOut{}, err
		}
		outTbl.Rows = append(outTbl.Rows, aligned.Rows...)
	}

	return evalOut{tbl: outTbl, cost: cost, pending: true, srcBytes: srcBytes, srcFiles: srcFiles}, nil
}

// filterTable applies a conjunction of range and residual predicates.
func filterTable(t *relation.Table, ranges []query.RangePred, residuals []query.CmpPred) *relation.Table {
	if len(ranges) == 0 && len(residuals) == 0 {
		return t
	}
	out := relation.NewTable(t.Schema)
	for _, row := range t.Rows {
		if rowPasses(&t.Schema, row, ranges, residuals) {
			out.Append(row)
		}
	}
	return out
}

func rowPasses(s *relation.Schema, row relation.Row, ranges []query.RangePred, residuals []query.CmpPred) bool {
	for _, p := range ranges {
		i := s.ColIndex(p.Col)
		if i < 0 || !p.Iv.Contains(row[i].I) {
			return false
		}
	}
	for _, p := range residuals {
		i := s.ColIndex(p.Col)
		if i < 0 || !p.Eval(row[i]) {
			return false
		}
	}
	return true
}

func projectTable(t *relation.Table, cols []string) *relation.Table {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.ColIndex(c)
		if idx[i] < 0 {
			panic(fmt.Sprintf("engine: projection column %q missing from %s", c, t.Schema.String()))
		}
	}
	out := relation.NewTable(t.Schema.Project(cols))
	for _, row := range t.Rows {
		nr := make(relation.Row, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// alignColumns reorders t's columns by name to match the target schema.
func alignColumns(t *relation.Table, target relation.Schema) (*relation.Table, error) {
	same := len(t.Schema.Cols) == len(target.Cols)
	if same {
		for i := range target.Cols {
			if t.Schema.Cols[i].Name != target.Cols[i].Name {
				same = false
				break
			}
		}
	}
	if same {
		return t, nil
	}
	if len(t.Schema.Cols) != len(target.Cols) {
		return nil, fmt.Errorf("engine: cannot align %s to %s", t.Schema.String(), target.String())
	}
	cols := make([]string, len(target.Cols))
	for i, c := range target.Cols {
		if t.Schema.ColIndex(c.Name) < 0 {
			return nil, fmt.Errorf("engine: cannot align %s to %s", t.Schema.String(), target.String())
		}
		cols[i] = c.Name
	}
	return projectTable(t, cols), nil
}

// hashJoin computes the equi-join of l and r, building a hash table on
// the smaller input.
func hashJoin(l, r *relation.Table, lCol, rCol string, outSchema relation.Schema) *relation.Table {
	li := l.Schema.ColIndex(lCol)
	ri := r.Schema.ColIndex(rCol)
	if li < 0 || ri < 0 {
		panic(fmt.Sprintf("engine: join columns %q/%q missing", lCol, rCol))
	}
	out := relation.NewTable(outSchema)
	// Output rows are always left-columns ++ right-columns. The probe
	// side's cardinality is a good initial capacity for FK joins.
	if len(l.Rows) <= len(r.Rows) {
		ht := make(map[int64][]relation.Row, len(l.Rows))
		for _, row := range l.Rows {
			k := row[li].I
			ht[k] = append(ht[k], row)
		}
		out.Rows = make([]relation.Row, 0, len(r.Rows))
		for _, rr := range r.Rows {
			for _, lr := range ht[rr[ri].I] {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	} else {
		ht := make(map[int64][]relation.Row, len(r.Rows))
		for _, row := range r.Rows {
			k := row[ri].I
			ht[k] = append(ht[k], row)
		}
		out.Rows = make([]relation.Row, 0, len(l.Rows))
		for _, lr := range l.Rows {
			for _, rr := range ht[lr[li].I] {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	}
	return out
}

func concatRows(l, r relation.Row) relation.Row {
	out := make(relation.Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// aggState accumulates one aggregate function over one group.
type aggState struct {
	count int64
	sum   float64
	minI  int64
	maxI  int64
	minF  float64
	maxF  float64
	minS  string
	maxS  string
	seen  bool
}

func aggregate(t *relation.Table, a *query.Aggregate) *relation.Table {
	inSchema := &t.Schema
	gIdx := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		gIdx[i] = inSchema.ColIndex(g)
		if gIdx[i] < 0 {
			panic(fmt.Sprintf("engine: group-by column %q missing", g))
		}
	}
	aIdx := make([]int, len(a.Aggs))
	for i, sp := range a.Aggs {
		if sp.Func == query.Count {
			aIdx[i] = -1
			continue
		}
		aIdx[i] = inSchema.ColIndex(sp.Col)
		if aIdx[i] < 0 {
			panic(fmt.Sprintf("engine: aggregate column %q missing", sp.Col))
		}
	}

	type group struct {
		key    relation.Row
		states []aggState
	}
	groups := make(map[string]*group)
	order := make([]string, 0) // deterministic output order
	var keyBuf []byte
	for _, row := range t.Rows {
		keyBuf = keyBuf[:0]
		for _, i := range gIdx {
			keyBuf = appendValueKey(keyBuf, row[i])
		}
		k := string(keyBuf)
		g, ok := groups[k]
		if !ok {
			key := make(relation.Row, len(gIdx))
			for i, j := range gIdx {
				key[i] = row[j]
			}
			g = &group{key: key, states: make([]aggState, len(a.Aggs))}
			groups[k] = g
			order = append(order, k)
		}
		for i, sp := range a.Aggs {
			st := &g.states[i]
			st.count++
			if sp.Func == query.Count {
				continue
			}
			v := row[aIdx[i]]
			typ := inSchema.Cols[aIdx[i]].Type
			switch typ {
			case relation.Int:
				st.sum += float64(v.I)
				if !st.seen || v.I < st.minI {
					st.minI = v.I
				}
				if !st.seen || v.I > st.maxI {
					st.maxI = v.I
				}
			case relation.Float:
				st.sum += v.F
				if !st.seen || v.F < st.minF {
					st.minF = v.F
				}
				if !st.seen || v.F > st.maxF {
					st.maxF = v.F
				}
			default:
				if !st.seen || v.S < st.minS {
					st.minS = v.S
				}
				if !st.seen || v.S > st.maxS {
					st.maxS = v.S
				}
			}
			st.seen = true
		}
	}

	out := relation.NewTable(a.Schema())
	for _, k := range order {
		g := groups[k]
		row := make(relation.Row, 0, len(gIdx)+len(a.Aggs))
		row = append(row, g.key...)
		for i, sp := range a.Aggs {
			st := &g.states[i]
			var typ relation.Type
			if aIdx[i] >= 0 {
				typ = inSchema.Cols[aIdx[i]].Type
			}
			switch sp.Func {
			case query.Count:
				row = append(row, relation.IntVal(st.count))
			case query.Sum:
				row = append(row, relation.FloatVal(st.sum))
			case query.Avg:
				row = append(row, relation.FloatVal(st.sum/float64(st.count)))
			case query.Min:
				row = append(row, pickValue(typ, st.minI, st.minF, st.minS))
			case query.Max:
				row = append(row, pickValue(typ, st.maxI, st.maxF, st.maxS))
			}
		}
		out.Append(row)
	}
	return out
}

func pickValue(typ relation.Type, i int64, f float64, s string) relation.Value {
	switch typ {
	case relation.Int:
		return relation.IntVal(i)
	case relation.Float:
		return relation.FloatVal(f)
	default:
		return relation.StringVal(s)
	}
}

func appendValueKey(buf []byte, v relation.Value) []byte {
	for k := 0; k < 8; k++ {
		buf = append(buf, byte(v.I>>(8*k)))
	}
	f := math.Float64bits(v.F)
	for k := 0; k < 8; k++ {
		buf = append(buf, byte(f>>(8*k)))
	}
	buf = append(buf, v.S...)
	buf = append(buf, 0x1f)
	return buf
}
