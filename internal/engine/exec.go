package engine

import (
	"context"
	"fmt"
	"math"
	"sync"

	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// Result is the outcome of running a plan.
type Result struct {
	// Table holds the output rows; nil in estimate-only mode.
	Table *relation.Table
	// Cost is the simulated cost of the run.
	Cost Cost
	// Captured maps requested plan nodes to their materialized outputs
	// (nil tables in estimate-only mode; sizes are still estimated by
	// the caller via EstimateSize).
	Captured map[query.Node]*relation.Table
}

// Run evaluates the plan. In exec mode rows are really computed; in
// estimate-only mode the cost model alone runs and Table is nil. capture
// may list plan nodes whose intermediate outputs the caller wants (for
// view materialization); it may be nil.
func (e *Engine) Run(plan query.Node, capture map[query.Node]bool) (Result, error) {
	return e.RunContext(context.Background(), plan, capture)
}

// RunContext is Run with cancellation: a cancelled or expired ctx stops
// workers from starting new tasks and the call returns ctx.Err(). By
// the time it returns — success, failure, or cancellation — every
// goroutine the run spawned has joined, so runs never leak workers.
// Injected worker faults and panics anywhere in the data path likewise
// surface as errors rather than crashing the process.
func (e *Engine) RunContext(ctx context.Context, plan query.Node, capture map[query.Node]bool) (res Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if !e.ExecuteRows {
		c, err := e.EstimateCost(plan)
		if err != nil {
			return Result{}, err
		}
		return Result{Cost: c}, nil
	}
	res = Result{Captured: make(map[query.Node]*relation.Table)}
	// One worker budget per Run: intra-operator chunk workers and
	// inter-operator sibling tasks draw from the same Parallelism-sized
	// token pool. The budget also carries the run's context and fault
	// source, checked once per task.
	bud := newBudget(e.par())
	bud.ctx = ctx
	bud.faults = e.faults
	// Panics on the calling goroutine (operator setup and merge steps
	// outside the task pools) become errors too; forEachTask has already
	// recovered worker-goroutine panics into the budget by this point.
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = fmt.Errorf("engine: execution panic: %v", r)
		}
	}()
	out, evalErr := e.eval(plan, capture, &res, bud)
	if evalErr == nil {
		// A worker fault or panic may be recorded without surfacing
		// through eval's return path (the merge step tolerates partial
		// slots); the budget's first error is authoritative.
		evalErr = bud.abortErr()
	}
	if evalErr != nil {
		return Result{}, evalErr
	}
	e.settle(&out)
	res.Table = out.tbl
	res.Cost = out.cost
	return res, nil
}

// evalOut carries a subtree's rows, accumulated cost, and — when the
// subtree's output currently "lives in storage" (a scan or view read not
// yet consumed by a job) — the bytes/files the consuming job will read.
// Map-side operators (select/project) pass pending state through: the
// consuming job reads the stored bytes and filters for free.
type evalOut struct {
	tbl     *relation.Table
	cost    Cost
	pending bool
	// needsWrite marks job outputs (join/aggregate) that must still be
	// written to HDFS. Map-side selections and projections shrink
	// srcBytes before the write happens, which is how Hive's fused
	// projection keeps intermediates narrow.
	needsWrite bool
	srcBytes   int64
	srcFiles   int64
}

// settle charges the materialization (for job outputs) and the read of a
// pending stored output.
func (e *Engine) settle(o *evalOut) {
	if !o.pending {
		return
	}
	if o.needsWrite {
		o.cost.Add(Cost{
			Seconds:    e.cm.WriteCost(o.srcBytes, o.srcFiles),
			WriteBytes: o.srcBytes,
		})
		o.needsWrite = false
	}
	sec, tasks := e.cm.ReadCost(o.srcBytes, o.srcFiles)
	o.cost.Add(Cost{Seconds: sec, ReadBytes: o.srcBytes, MapTasks: tasks})
	o.pending = false
}

func (e *Engine) eval(n query.Node, capture map[query.Node]bool, res *Result, bud *budget) (evalOut, error) {
	// Abort between nodes once the run has failed or been cancelled, so
	// deep plans stop promptly instead of evaluating doomed subtrees.
	if err := bud.abortErr(); err != nil {
		return evalOut{}, err
	}
	out, err := e.evalNode(n, capture, res, bud)
	if err != nil {
		return out, err
	}
	if capture != nil && capture[n] {
		res.Captured[n] = out.tbl
	}
	return out, nil
}

// evalSiblings evaluates independent sibling subplans, concurrently when
// the budget has free workers. Every spawned sibling gets a private
// capture map that is merged into res in sibling order after all
// siblings finish, so capture writes never race; outputs come back in
// sibling order and errors surface in sibling order — the results are
// byte-identical to a left-to-right sequential evaluation.
func (e *Engine) evalSiblings(nodes []query.Node, capture map[query.Node]bool, res *Result, bud *budget) ([]evalOut, error) {
	outs := make([]evalOut, len(nodes))
	errs := make([]error, len(nodes))
	subs := make([]*Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		// The last sibling always runs inline so the calling goroutine
		// contributes; earlier siblings spawn only while tokens are free.
		if i < len(nodes)-1 && bud.tryAcquire() {
			sub := &Result{Captured: make(map[query.Node]*relation.Table)}
			subs[i] = sub
			wg.Add(1)
			go func(i int, n query.Node) {
				defer wg.Done()
				defer bud.release()
				outs[i], errs[i] = e.eval(n, capture, sub, bud)
			}(i, n)
			continue
		}
		outs[i], errs[i] = e.eval(n, capture, res, bud)
	}
	wg.Wait()
	for _, sub := range subs {
		if sub == nil {
			continue
		}
		for k, v := range sub.Captured {
			res.Captured[k] = v
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

func (e *Engine) evalNode(n query.Node, capture map[query.Node]bool, res *Result, bud *budget) (evalOut, error) {
	switch t := n.(type) {
	case *query.Scan:
		tbl := e.BaseTable(t.Table)
		if tbl == nil {
			return evalOut{}, fmt.Errorf("engine: unknown base table %q", t.Table)
		}
		return evalOut{tbl: tbl, pending: true, srcBytes: tbl.Bytes(), srcFiles: 1}, nil

	case *query.Select:
		child, err := e.eval(t.Child, capture, res, bud)
		if err != nil {
			return evalOut{}, err
		}
		child.tbl = filterTable(child.tbl, t.Ranges, t.Residuals, bud)
		if child.needsWrite {
			child.srcBytes = child.tbl.Bytes()
		}
		return child, nil

	case *query.Project:
		child, err := e.eval(t.Child, capture, res, bud)
		if err != nil {
			return evalOut{}, err
		}
		child.tbl = projectTable(child.tbl, t.Cols, bud)
		if child.needsWrite {
			child.srcBytes = child.tbl.Bytes()
		}
		return child, nil

	case *query.Join:
		sides, err := e.evalSiblings([]query.Node{t.Left, t.Right}, capture, res, bud)
		if err != nil {
			return evalOut{}, err
		}
		l, r := sides[0], sides[1]
		e.settle(&l)
		e.settle(&r)
		outTbl := hashJoin(l.tbl, r.tbl, t.LCol, t.RCol, t.Schema(), bud)
		cost := l.cost
		cost.Add(r.cost)
		shuffle := l.tbl.Bytes() + r.tbl.Bytes()
		cost.Add(Cost{
			Seconds:      e.cm.JobStartup + float64(shuffle)/e.cm.ShuffleBW,
			ShuffleBytes: shuffle,
			Jobs:         1,
		})
		// The output write is deferred to settle so that fused map-side
		// projections/selections shrink it first.
		return evalOut{tbl: outTbl, cost: cost, pending: true, needsWrite: true,
			srcBytes: outTbl.Bytes(), srcFiles: 1}, nil

	case *query.Aggregate:
		child, err := e.eval(t.Child, capture, res, bud)
		if err != nil {
			return evalOut{}, err
		}
		e.settle(&child)
		outTbl := aggregate(child.tbl, t, bud)
		cost := child.cost
		shuffle := child.tbl.Bytes()
		cost.Add(Cost{
			Seconds:      e.cm.JobStartup + float64(shuffle)/e.cm.ShuffleBW,
			ShuffleBytes: shuffle,
			Jobs:         1,
		})
		return evalOut{tbl: outTbl, cost: cost, pending: true, needsWrite: true,
			srcBytes: outTbl.Bytes(), srcFiles: 1}, nil

	case *query.ViewScan:
		return e.evalViewScan(t, capture, res, bud)

	default:
		return evalOut{}, fmt.Errorf("engine: unsupported node type %T", n)
	}
}

// evalViewScan reads a materialized view (whole or as a fragment cover),
// applies compensation, and unions in the remainder subplans computing
// uncovered gaps. The stored-fragment filters and the per-gap remainder
// subplans are independent, so they all run as one task pool over the
// shared budget; their outputs merge in the fixed order fragments-then-
// remainders, identical to a sequential evaluation.
func (e *Engine) evalViewScan(v *query.ViewScan, capture map[query.Node]bool, res *Result, bud *budget) (evalOut, error) {
	// A fragment cover pairs every fragment with its clip range; a
	// mismatch means the matcher produced a malformed plan, which must
	// surface as an error, not an index panic mid-execution.
	if len(v.FragIDs) > 0 && len(v.Reads) != len(v.FragIDs) {
		return evalOut{}, fmt.Errorf("engine: malformed ViewScan for view %s: %d fragments but %d clip ranges",
			v.ViewID, len(v.FragIDs), len(v.Reads))
	}

	// Resolve the stored sources sequentially (metadata only), so
	// missing-file errors surface before any rows are touched.
	type storedSrc struct {
		tbl  *relation.Table
		clip *interval.Interval
	}
	var srcs []storedSrc
	var srcBytes, srcFiles int64
	if len(v.FragIDs) > 0 {
		for i, path := range v.FragIDs {
			if !e.fs.Exists(path) {
				return evalOut{}, fmt.Errorf("engine: fragment %s of view %s missing", path, v.ViewID)
			}
			// An injected read fault on a stored fragment fails the run;
			// the fault's Key names the path so the caller can quarantine
			// exactly the file that failed and replan around it.
			if err := e.faults.Check(faults.StorageRead, path); err != nil {
				return evalOut{}, fmt.Errorf("engine: read fragment %s of view %s: %w", path, v.ViewID, err)
			}
			srcBytes += e.fs.Size(path)
			srcFiles++
			clip := v.Reads[i]
			srcs = append(srcs, storedSrc{tbl: e.Materialized(path), clip: &clip})
		}
	} else {
		if !e.fs.Exists(v.ViewPath) {
			return evalOut{}, fmt.Errorf("engine: view file %s missing", v.ViewPath)
		}
		if err := e.faults.Check(faults.StorageRead, v.ViewPath); err != nil {
			return evalOut{}, fmt.Errorf("engine: read view file %s: %w", v.ViewPath, err)
		}
		srcBytes = e.fs.Size(v.ViewPath)
		srcFiles = 1
		srcs = append(srcs, storedSrc{tbl: e.Materialized(v.ViewPath), clip: nil})
	}

	// filterStored keeps the stored rows passing the clip range and the
	// compensating predicates, preserving row order.
	filterStored := func(tbl *relation.Table, clip *interval.Interval) ([]relation.Row, error) {
		if tbl == nil {
			return nil, fmt.Errorf("engine: view %s has no stored rows (estimate-only data?)", v.ViewID)
		}
		attrIdx := -1
		if clip != nil {
			attrIdx = tbl.Schema.ColIndex(v.PartAttr)
			if attrIdx < 0 {
				return nil, fmt.Errorf("engine: partition attribute %q missing from view %s", v.PartAttr, v.ViewID)
			}
		}
		n := len(tbl.Rows)
		parts := make([][]relation.Row, numChunks(n))
		forEachChunk(bud, n, func(c, lo, hi int) {
			var keep []relation.Row
			for _, row := range tbl.Rows[lo:hi] {
				if clip != nil && !clip.Contains(row[attrIdx].I) {
					continue
				}
				if !rowPasses(&tbl.Schema, row, v.CompRanges, v.CompResiduals) {
					continue
				}
				keep = append(keep, row)
			}
			parts[c] = keep
		})
		return concatChunks(parts), nil
	}

	// Remainder rows are aligned to the post-compensation schema before
	// the union.
	target := v.Schema()

	// One task per stored source plus one per remainder subplan, all on
	// the shared budget. Each task writes only its own slot; remainder
	// tasks capture into private maps merged in remainder order below.
	nf := len(srcs)
	fragRows := make([][]relation.Row, nf)
	fragErrs := make([]error, nf)
	remOuts := make([]evalOut, len(v.Remainders))
	remRows := make([][]relation.Row, len(v.Remainders))
	remErrs := make([]error, len(v.Remainders))
	remSubs := make([]*Result, len(v.Remainders))
	forEachTask(bud, nf+len(v.Remainders), func(ti int) {
		if ti < nf {
			fragRows[ti], fragErrs[ti] = filterStored(srcs[ti].tbl, srcs[ti].clip)
			return
		}
		i := ti - nf
		sub := &Result{Captured: make(map[query.Node]*relation.Table)}
		remSubs[i] = sub
		out, err := e.eval(v.Remainders[i], capture, sub, bud)
		if err != nil {
			remErrs[i] = err
			return
		}
		e.settle(&out)
		aligned, err := alignColumns(out.tbl, target, bud)
		if err != nil {
			remErrs[i] = err
			return
		}
		remOuts[i] = out
		remRows[i] = aligned.Rows
	})
	for _, err := range fragErrs {
		if err != nil {
			return evalOut{}, err
		}
	}
	for _, err := range remErrs {
		if err != nil {
			return evalOut{}, err
		}
	}
	for _, sub := range remSubs {
		for k, t := range sub.Captured {
			res.Captured[k] = t
		}
	}

	out := relation.NewTable(v.ViewSchema)
	for _, rows := range fragRows {
		out.Rows = append(out.Rows, rows...)
	}
	outTbl := out
	if v.CompProject != nil {
		outTbl = projectTable(outTbl, v.CompProject, bud)
	}
	var cost Cost
	for i := range v.Remainders {
		cost.Add(remOuts[i].cost)
		outTbl.Rows = append(outTbl.Rows, remRows[i]...)
	}

	return evalOut{tbl: outTbl, cost: cost, pending: true, srcBytes: srcBytes, srcFiles: srcFiles}, nil
}

// filterTable applies a conjunction of range and residual predicates,
// evaluating fixed-size row chunks on the budget's workers.
func filterTable(t *relation.Table, ranges []query.RangePred, residuals []query.CmpPred, bud *budget) *relation.Table {
	if len(ranges) == 0 && len(residuals) == 0 {
		return t
	}
	n := len(t.Rows)
	parts := make([][]relation.Row, numChunks(n))
	forEachChunk(bud, n, func(c, lo, hi int) {
		var keep []relation.Row
		for _, row := range t.Rows[lo:hi] {
			if rowPasses(&t.Schema, row, ranges, residuals) {
				keep = append(keep, row)
			}
		}
		parts[c] = keep
	})
	out := relation.NewTable(t.Schema)
	out.Rows = concatChunks(parts)
	return out
}

func rowPasses(s *relation.Schema, row relation.Row, ranges []query.RangePred, residuals []query.CmpPred) bool {
	for _, p := range ranges {
		i := s.ColIndex(p.Col)
		if i < 0 || !p.Iv.Contains(row[i].I) {
			return false
		}
	}
	for _, p := range residuals {
		i := s.ColIndex(p.Col)
		if i < 0 || !p.Eval(row[i]) {
			return false
		}
	}
	return true
}

func projectTable(t *relation.Table, cols []string, bud *budget) *relation.Table {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.ColIndex(c)
		if idx[i] < 0 {
			panic(fmt.Sprintf("engine: projection column %q missing from %s", c, t.Schema.String()))
		}
	}
	out := relation.NewTable(t.Schema.Project(cols))
	n := len(t.Rows)
	out.Rows = make([]relation.Row, n)
	forEachChunk(bud, n, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t.Rows[r]
			nr := make(relation.Row, len(idx))
			for i, j := range idx {
				nr[i] = row[j]
			}
			out.Rows[r] = nr
		}
	})
	return out
}

// alignColumns reorders t's columns by name to match the target schema.
func alignColumns(t *relation.Table, target relation.Schema, bud *budget) (*relation.Table, error) {
	same := len(t.Schema.Cols) == len(target.Cols)
	if same {
		for i := range target.Cols {
			if t.Schema.Cols[i].Name != target.Cols[i].Name {
				same = false
				break
			}
		}
	}
	if same {
		return t, nil
	}
	if len(t.Schema.Cols) != len(target.Cols) {
		return nil, fmt.Errorf("engine: cannot align %s to %s", t.Schema.String(), target.String())
	}
	cols := make([]string, len(target.Cols))
	for i, c := range target.Cols {
		if t.Schema.ColIndex(c.Name) < 0 {
			return nil, fmt.Errorf("engine: cannot align %s to %s", t.Schema.String(), target.String())
		}
		cols[i] = c.Name
	}
	return projectTable(t, cols, bud), nil
}

// joinBucket spreads join keys across nb single-writer hash maps. The
// multiplier is the 64-bit golden-ratio hash; any fixed mixing works, it
// only needs to depend on the key, never on the worker count.
func joinBucket(k int64, nb int) int {
	if nb <= 1 {
		return 0
	}
	return int((uint64(k) * 0x9E3779B97F4A7C15) % uint64(nb))
}

// hashJoin computes the equi-join of l and r, building a hash table on
// the smaller input. The build side is partitioned by key hash into one
// bucket map per configured worker (each bucket written by exactly one
// goroutine, per-key row order preserved); the probe side is scanned in
// fixed chunks whose outputs concatenate in chunk order — so the output
// equals the sequential probe-order join byte for byte, for any budget.
func hashJoin(l, r *relation.Table, lCol, rCol string, outSchema relation.Schema, bud *budget) *relation.Table {
	li := l.Schema.ColIndex(lCol)
	ri := r.Schema.ColIndex(rCol)
	if li < 0 || ri < 0 {
		panic(fmt.Sprintf("engine: join columns %q/%q missing", lCol, rCol))
	}
	// Output rows are always left-columns ++ right-columns.
	build, probe, bi, pi := l, r, li, ri
	buildLeft := true
	if len(l.Rows) > len(r.Rows) {
		build, probe, bi, pi = r, l, ri, li
		buildLeft = false
	}

	// The bucket count comes from the configured parallelism, not from
	// token availability, so the partitioning is fixed by configuration.
	nb := bud.par()
	buckets := make([]map[int64][]relation.Row, nb)
	forEachTask(bud, nb, func(b int) {
		m := make(map[int64][]relation.Row, len(build.Rows)/nb+1)
		for _, row := range build.Rows {
			k := row[bi].I
			if joinBucket(k, nb) == b {
				m[k] = append(m[k], row)
			}
		}
		buckets[b] = m
	})

	n := len(probe.Rows)
	parts := make([][]relation.Row, numChunks(n))
	forEachChunk(bud, n, func(c, lo, hi int) {
		var rows []relation.Row
		for _, pr := range probe.Rows[lo:hi] {
			k := pr[pi].I
			for _, br := range buckets[joinBucket(k, nb)][k] {
				if buildLeft {
					rows = append(rows, concatRows(br, pr))
				} else {
					rows = append(rows, concatRows(pr, br))
				}
			}
		}
		parts[c] = rows
	})
	out := relation.NewTable(outSchema)
	out.Rows = concatChunks(parts)
	return out
}

func concatRows(l, r relation.Row) relation.Row {
	out := make(relation.Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// aggState accumulates one aggregate function over one group. Sums and
// averages accumulate into acc, the exact accumulator: a plain float
// fold is not associative, so only acc can cross a merge boundary — a
// chunk merge, a shard merge, or an incremental view refresh — without
// breaking byte-identity. Full mode rounds acc once at render time;
// partial mode emits its lossless encoding.
type aggState struct {
	count int64
	acc   *exactAcc
	minI  int64
	maxI  int64
	minF  float64
	maxF  float64
	minS  string
	maxS  string
	seen  bool
}

// aggGroup is one group's key and per-aggregate accumulator states.
type aggGroup struct {
	key    relation.Row
	states []aggState
}

// chunkAgg holds one chunk's partial aggregation: its groups plus their
// first-appearance order within the chunk.
type chunkAgg struct {
	groups map[string]*aggGroup
	order  []string
}

// aggregate groups and aggregates t's rows. Each fixed-size chunk is
// aggregated independently; chunk partials then merge in chunk order, so
// the global group order is first appearance in row order and every
// floating-point partial sum combines in the same association
// regardless of the worker count — the output is byte-identical to a
// sequential run.
func aggregate(t *relation.Table, a *query.Aggregate, bud *budget) *relation.Table {
	inSchema := &t.Schema
	gIdx := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		gIdx[i] = inSchema.ColIndex(g)
		if gIdx[i] < 0 {
			panic(fmt.Sprintf("engine: group-by column %q missing", g))
		}
	}
	aIdx := make([]int, len(a.Aggs))
	for i, sp := range a.Aggs {
		if sp.Func == query.Count {
			aIdx[i] = -1
			continue
		}
		aIdx[i] = inSchema.ColIndex(sp.Col)
		if aIdx[i] < 0 {
			panic(fmt.Sprintf("engine: aggregate column %q missing", sp.Col))
		}
	}

	n := len(t.Rows)
	chunks := make([]chunkAgg, numChunks(n))
	forEachChunk(bud, n, func(c, lo, hi int) {
		groups := make(map[string]*aggGroup)
		var order []string
		var keyBuf []byte
		for _, row := range t.Rows[lo:hi] {
			keyBuf = keyBuf[:0]
			for _, i := range gIdx {
				keyBuf = appendValueKey(keyBuf, row[i])
			}
			k := string(keyBuf)
			g, ok := groups[k]
			if !ok {
				key := make(relation.Row, len(gIdx))
				for i, j := range gIdx {
					key[i] = row[j]
				}
				g = &aggGroup{key: key, states: make([]aggState, len(a.Aggs))}
				groups[k] = g
				order = append(order, k)
			}
			accumulateRow(g, row, a, aIdx, inSchema)
		}
		chunks[c] = chunkAgg{groups: groups, order: order}
	})

	merged := make(map[string]*aggGroup)
	var order []string
	for _, ch := range chunks {
		for _, k := range ch.order {
			g := ch.groups[k]
			m, ok := merged[k]
			if !ok {
				merged[k] = g
				order = append(order, k)
				continue
			}
			mergeStates(m.states, g.states, a)
		}
	}

	out := relation.NewTable(a.Schema())
	for _, k := range order {
		g := merged[k]
		row := make(relation.Row, 0, len(gIdx)+len(a.Aggs))
		row = append(row, g.key...)
		for i, sp := range a.Aggs {
			st := &g.states[i]
			var typ relation.Type
			if aIdx[i] >= 0 {
				typ = inSchema.Cols[aIdx[i]].Type
			}
			if a.Partial {
				row = appendPartialState(row, sp, st, typ)
				continue
			}
			switch sp.Func {
			case query.Count:
				row = append(row, relation.IntVal(st.count))
			case query.Sum:
				row = append(row, relation.FloatVal(st.exactSum()))
			case query.Avg:
				row = append(row, relation.FloatVal(st.exactSum()/float64(st.count)))
			case query.Min:
				row = append(row, pickValue(typ, st.minI, st.minF, st.minS))
			case query.Max:
				row = append(row, pickValue(typ, st.maxI, st.maxF, st.maxS))
			}
		}
		out.Append(row)
	}
	return out
}

// appendPartialState emits one aggregate's mergeable accumulator state,
// matching the PartialCols schema expansion: counts as ints, sums as
// exact encodings, min/max as typed values.
func appendPartialState(row relation.Row, sp query.AggSpec, st *aggState, typ relation.Type) relation.Row {
	switch sp.Func {
	case query.Count:
		return append(row, relation.IntVal(st.count))
	case query.Sum:
		return append(row, relation.StringVal(st.partialSum()))
	case query.Avg:
		return append(row, relation.StringVal(st.partialSum()), relation.IntVal(st.count))
	case query.Min:
		return append(row, pickValue(typ, st.minI, st.minF, st.minS))
	default: // Max
		return append(row, pickValue(typ, st.maxI, st.maxF, st.maxS))
	}
}

// partialSum encodes the exact accumulator (an empty accumulator — a
// group whose rows never reached a sum — encodes as exact zero).
func (st *aggState) partialSum() string {
	if st.acc == nil {
		var zero exactAcc
		return zero.encode()
	}
	return st.acc.encode()
}

// exactSum rounds the exact accumulator to float64 — the single
// rounding step of a full-mode sum (0 for a group that never reached a
// summable value, matching an empty accumulator).
func (st *aggState) exactSum() float64 {
	if st.acc == nil {
		return 0
	}
	return st.acc.float64()
}

// accumulateRow folds one input row into a group's aggregate states.
// Sums fold into the exact accumulator in both modes: the same addends,
// but in an associative domain, so the state survives a merge boundary
// byte-identically and a full-mode render agrees with any partition of
// the rows into partials.
func accumulateRow(g *aggGroup, row relation.Row, a *query.Aggregate, aIdx []int, inSchema *relation.Schema) {
	for i, sp := range a.Aggs {
		st := &g.states[i]
		st.count++
		if sp.Func == query.Count {
			continue
		}
		v := row[aIdx[i]]
		typ := inSchema.Cols[aIdx[i]].Type
		if (sp.Func == query.Sum || sp.Func == query.Avg) && typ != relation.String {
			if st.acc == nil {
				st.acc = &exactAcc{}
			}
			if typ == relation.Int {
				st.acc.add(float64(v.I))
			} else {
				st.acc.add(v.F)
			}
		}
		switch typ {
		case relation.Int:
			if !st.seen || v.I < st.minI {
				st.minI = v.I
			}
			if !st.seen || v.I > st.maxI {
				st.maxI = v.I
			}
		case relation.Float:
			if !st.seen || v.F < st.minF {
				st.minF = v.F
			}
			if !st.seen || v.F > st.maxF {
				st.maxF = v.F
			}
		default:
			if !st.seen || v.S < st.minS {
				st.minS = v.S
			}
			if !st.seen || v.S > st.maxS {
				st.maxS = v.S
			}
		}
		st.seen = true
	}
}

// mergeStates folds a later chunk's partial states (src) into an earlier
// chunk's (dst). Sums combine in chunk order, which is fixed by the
// input size, so float association never depends on the worker count.
func mergeStates(dst, src []aggState, a *query.Aggregate) {
	for i := range dst {
		d, s := &dst[i], &src[i]
		d.count += s.count
		if a.Aggs[i].Func == query.Count || !s.seen {
			continue
		}
		if s.acc != nil {
			if d.acc == nil {
				d.acc = &exactAcc{}
			}
			d.acc.merge(s.acc)
		}
		if !d.seen {
			d.minI, d.maxI = s.minI, s.maxI
			d.minF, d.maxF = s.minF, s.maxF
			d.minS, d.maxS = s.minS, s.maxS
			d.seen = true
			continue
		}
		if s.minI < d.minI {
			d.minI = s.minI
		}
		if s.maxI > d.maxI {
			d.maxI = s.maxI
		}
		if s.minF < d.minF {
			d.minF = s.minF
		}
		if s.maxF > d.maxF {
			d.maxF = s.maxF
		}
		if s.minS < d.minS {
			d.minS = s.minS
		}
		if s.maxS > d.maxS {
			d.maxS = s.maxS
		}
	}
}

func pickValue(typ relation.Type, i int64, f float64, s string) relation.Value {
	switch typ {
	case relation.Int:
		return relation.IntVal(i)
	case relation.Float:
		return relation.FloatVal(f)
	default:
		return relation.StringVal(s)
	}
}

// appendValueKey appends a self-delimiting encoding of v to a group key:
// fixed-width int and float parts, then the string length-prefixed. The
// length prefix makes adjacent column encodings unambiguous — a raw
// separator byte would let a string value containing that byte shift
// bytes between columns and merge distinct group keys.
func appendValueKey(buf []byte, v relation.Value) []byte {
	for k := 0; k < 8; k++ {
		buf = append(buf, byte(v.I>>(8*k)))
	}
	f := math.Float64bits(v.F)
	for k := 0; k < 8; k++ {
		buf = append(buf, byte(f>>(8*k)))
	}
	n := uint64(len(v.S))
	for k := 0; k < 8; k++ {
		buf = append(buf, byte(n>>(8*k)))
	}
	return append(buf, v.S...)
}
