package engine

import (
	"math"
	"math/rand"
	"testing"
)

// TestExactAccAssociative is the property the scatter-gather merge
// depends on: for any partition of a multiset of float64 values into
// groups, summing each group exactly and merging the group totals gives
// bit-identical float64 results — unlike a plain float fold, whose
// result depends on the association.
func TestExactAccAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 400)
	for i := range vals {
		// Prices with two decimals, the dataset's shape: inexact in
		// binary, so naive folds genuinely disagree across partitions.
		vals[i] = float64(rng.Intn(50000)) / 100
		if rng.Intn(2) == 0 {
			vals[i] = -vals[i]
		}
	}

	var whole exactAcc
	for _, v := range vals {
		whole.add(v)
	}
	want := whole.float64()

	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(7)
		parts := make([]exactAcc, k)
		for _, v := range vals {
			parts[rng.Intn(k)].add(v)
		}
		var merged exactAcc
		for i := range parts {
			merged.merge(&parts[i])
		}
		if got := merged.float64(); got != want ||
			math.Signbit(got) != math.Signbit(want) {
			t.Fatalf("trial %d (k=%d): merged %v != whole %v", trial, k, got, want)
		}
	}
}

// TestExactAccEncodeRoundTrip checks the transport encoding is
// lossless: decode(encode(acc)) merges exactly like acc itself.
func TestExactAccEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b exactAcc
	for i := 0; i < 100; i++ {
		a.add(float64(rng.Intn(9900)+100) / 100)
		b.add(-float64(rng.Intn(9900)+100) / 100)
	}
	ea, eb := a.encode(), b.encode()

	total, rounded, err := MergePartialSums(ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	var direct exactAcc
	direct.merge(&a)
	direct.merge(&b)
	if want := direct.float64(); rounded != want {
		t.Fatalf("round-tripped merge %v != direct merge %v", rounded, want)
	}
	// Re-encoding the merged total round-trips too.
	if _, again, err := MergePartialSums(total); err != nil || again != rounded {
		t.Fatalf("re-merge of total: %v, %v (err %v)", again, rounded, err)
	}
}

// TestExactAccZeroAndSpecials covers the degenerate encodings: an empty
// accumulator is exact zero, and non-finite inputs survive transport.
func TestExactAccZeroAndSpecials(t *testing.T) {
	var zero exactAcc
	if got := zero.float64(); got != 0 {
		t.Fatalf("zero acc = %v", got)
	}
	if _, v, err := MergePartialSums(zero.encode()); err != nil || v != 0 {
		t.Fatalf("zero round trip: %v, %v", v, err)
	}

	var inf exactAcc
	inf.add(1.5)
	inf.add(math.Inf(1))
	if got := inf.float64(); !math.IsInf(got, 1) {
		t.Fatalf("inf acc = %v", got)
	}
	dec, err := decodeExactAcc(inf.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.float64(); !math.IsInf(got, 1) {
		t.Fatalf("inf round trip = %v", got)
	}
}
