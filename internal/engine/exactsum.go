package engine

import (
	"math"
	"math/big"
	"strconv"
	"strings"
)

// exactAccPrec is the mantissa precision (bits) of the exact
// accumulator. An exact sum of float64 values spans at most the bits
// between its largest magnitude (≤ 2^1024 per addend, ≤ 2^1088 after
// 2^64 addends) and the smallest nonzero ulp any addend contributes
// (≥ 2^-1074): under 2200 bits. With 2432 bits of precision every
// big.Float addition below is therefore exact — no rounding ever
// happens until the final conversion back to float64 — which makes the
// accumulation fully associative: any grouping of the same multiset of
// addends produces the same value. That associativity is what lets a
// scatter-gather coordinator merge per-shard partial sums and still
// produce results byte-identical to an unsharded run, for any
// partition of the rows.
const exactAccPrec = 2432

// exactAcc accumulates float64 values exactly. The zero value is an
// accumulator holding 0. Non-finite inputs (NaN, ±Inf) cannot live in a
// big.Float; they are folded through a plain float64 side-sum instead,
// which keeps the accumulator total-function but forfeits the
// partition-invariance guarantee for them (the benchmark datasets never
// produce non-finite values).
type exactAcc struct {
	acc      big.Float
	init     bool
	specials float64
	hasSpec  bool
}

func (a *exactAcc) ensure() {
	if !a.init {
		a.acc.SetPrec(exactAccPrec)
		a.init = true
	}
}

// add folds one value into the accumulator, exactly for finite v.
func (a *exactAcc) add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		a.specials += v
		a.hasSpec = true
		return
	}
	a.ensure()
	var t big.Float
	t.SetFloat64(v)
	a.acc.Add(&a.acc, &t)
}

// merge folds another accumulator in, exactly.
func (a *exactAcc) merge(b *exactAcc) {
	if b.hasSpec {
		a.specials += b.specials
		a.hasSpec = true
	}
	if !b.init {
		return
	}
	a.ensure()
	a.acc.Add(&a.acc, &b.acc)
}

// float64 rounds the exact total to the nearest float64 (ties to even)
// — the single rounding step of the whole accumulation.
func (a *exactAcc) float64() float64 {
	var f float64
	if a.init {
		f, _ = a.acc.Float64()
	}
	if a.hasSpec {
		f += a.specials
	}
	return f
}

// encode renders the accumulator losslessly for transport: the exact
// big.Float in hexadecimal-mantissa form ("0x.c4p+10"), with a plain
// hex-float suffix for the non-finite side-sum when one exists. decode
// reverses it bit-for-bit, so a partial sum survives a JSON round trip
// between shard and coordinator without losing the exactness that
// merge determinism depends on.
func (a *exactAcc) encode() string {
	s := "0"
	if a.init {
		s = a.acc.Text('p', 0)
	}
	if a.hasSpec {
		s += "|" + strconv.FormatFloat(a.specials, 'x', -1, 64)
	}
	return s
}

// decodeExactAcc parses an encode() rendering.
func decodeExactAcc(s string) (*exactAcc, error) {
	a := &exactAcc{}
	main := s
	if i := strings.IndexByte(s, '|'); i >= 0 {
		main = s[:i]
		sp, err := strconv.ParseFloat(s[i+1:], 64)
		if err != nil {
			return nil, err
		}
		a.specials = sp
		a.hasSpec = true
	}
	f, _, err := big.ParseFloat(main, 0, exactAccPrec, big.ToNearestEven)
	if err != nil {
		return nil, err
	}
	a.acc.Copy(f)
	a.init = true
	return a, nil
}

// EncodePartialSum is the package boundary for producing an exact
// partial-sum encoding outside the engine (the scatter-gather merge
// layer re-encodes merged totals with it in tests).
func EncodePartialSum(vs ...float64) string {
	var a exactAcc
	for _, v := range vs {
		a.add(v)
	}
	return a.encode()
}

// MergePartialSums decodes exact partial-sum encodings (as emitted in
// partial-aggregate rows), merges them exactly, and returns the encoded
// total plus its float64 rounding. The coordinator's aggregate merge is
// built on this: because every step is exact, the float64 result is
// identical for any grouping of the same partials.
func MergePartialSums(encoded ...string) (total string, rounded float64, err error) {
	var a exactAcc
	for _, s := range encoded {
		b, err := decodeExactAcc(s)
		if err != nil {
			return "", 0, err
		}
		a.merge(b)
	}
	return a.encode(), a.float64(), nil
}
