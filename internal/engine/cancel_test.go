package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/leakcheck"
	"deepsea/internal/query"
)

// aggPlan is a multi-chunk plan that exercises chunk workers, sibling
// tasks and the merge path.
func aggPlan() query.Node {
	return &query.Aggregate{
		Child: &query.Join{
			Left:  query.NewScan("sales", salesSchema()),
			Right: query.NewScan("item", itemSchema()),
			LCol:  "ss_item_sk",
			RCol:  "i_item_sk",
		},
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "total"}},
	}
}

// TestRunContextPreCancelled: an already-cancelled context returns
// immediately with context.Canceled, before any work starts.
func TestRunContextPreCancelled(t *testing.T) {
	leakcheck.Check(t)
	e := bigEngine(2 * chunkRows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := e.FS().BytesRead()
	_, err := e.RunContext(ctx, aggPlan(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if e.FS().BytesRead() != before {
		t.Error("cancelled run touched storage")
	}
}

// TestRunContextDeadline: an expired deadline surfaces as
// DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	leakcheck.Check(t)
	e := bigEngine(2 * chunkRows)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.RunContext(ctx, aggPlan(), nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext past deadline = %v, want DeadlineExceeded", err)
	}
}

// TestRunContextMidCancel cancels concurrently with a multi-chunk run.
// Whichever side wins the race, the run must return promptly, leak no
// goroutines, and the engine must stay usable afterward.
func TestRunContextMidCancel(t *testing.T) {
	leakcheck.Check(t)
	e := bigEngine(8 * chunkRows)
	e.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, err := e.RunContext(ctx, aggPlan(), nil)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-cancel run failed with non-context error: %v", err)
		}
	} else if res.Table == nil {
		t.Fatal("uncancelled run returned no table")
	}
	// The engine is not poisoned: a fresh run still works.
	if _, err := e.RunContext(context.Background(), aggPlan(), nil); err != nil {
		t.Fatalf("follow-up run after cancel: %v", err)
	}
}

// TestForEachTaskCancelStopsNewTasks: with a sequential budget the task
// order is deterministic — cancelling inside task 2 means exactly tasks
// 0..2 ran and abortErr reports context.Canceled.
func TestForEachTaskCancelStopsNewTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := newBudget(1)
	b.ctx = ctx
	var ran []int
	forEachTask(b, 100, func(task int) {
		ran = append(ran, task)
		if task == 2 {
			cancel()
		}
	})
	if !errors.Is(b.abortErr(), context.Canceled) {
		t.Fatalf("abortErr = %v, want context.Canceled", b.abortErr())
	}
	if len(ran) != 3 {
		t.Errorf("ran %d tasks after cancel at task 2, want 3", len(ran))
	}
}

// TestForEachTaskPanicRecovered: a panicking task becomes the budget's
// error, the pool drains without crashing, and every worker token is
// returned (no deadlocked budget).
func TestForEachTaskPanicRecovered(t *testing.T) {
	leakcheck.Check(t)
	b := newBudget(4)
	forEachTask(b, 50, func(task int) {
		if task == 7 {
			panic("boom")
		}
	})
	err := b.abortErr()
	if err == nil || !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("abortErr after panic = %v", err)
	}
	tokens := 0
	for b.tryAcquire() {
		tokens++
	}
	if tokens != 3 {
		t.Errorf("free tokens after panic = %d, want 3 (a panicking worker kept one)", tokens)
	}
}

// TestRunContextWorkerPanicBecomesError: a panic raised inside the data
// path (here: a projection of a missing column, which panics in
// projectTable) surfaces from RunContext as an error, not a crash.
func TestRunContextWorkerPanicBecomesError(t *testing.T) {
	leakcheck.Check(t)
	e := bigEngine(2 * chunkRows)
	plan := &query.Project{Child: query.NewScan("sales", salesSchema()), Cols: []string{"no_such_col"}}
	_, err := e.RunContext(context.Background(), plan, nil)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking plan returned %v, want recovered panic error", err)
	}
	if _, err := e.RunContext(context.Background(), aggPlan(), nil); err != nil {
		t.Fatalf("follow-up run after panic: %v", err)
	}
}

// TestRunContextWorkerFault: a p=1 Worker injector fails every run with
// a fault error (recognizable via AsFault), never a crash or hang.
func TestRunContextWorkerFault(t *testing.T) {
	leakcheck.Check(t)
	e := bigEngine(4 * chunkRows)
	e.Parallelism = 4
	e.SetFaults(faults.New(faults.Config{Seed: 5, Worker: 1}))
	_, err := e.RunContext(context.Background(), aggPlan(), nil)
	f, ok := faults.AsFault(err)
	if !ok || f.Site != faults.Worker {
		t.Fatalf("run under p=1 worker faults = %v, want worker fault", err)
	}
	e.SetFaults(nil)
	if _, err := e.RunContext(context.Background(), aggPlan(), nil); err != nil {
		t.Fatalf("fault-free follow-up run: %v", err)
	}
}

// TestViewScanReadFaultNamesPath: an injected storage-read fault on a
// fragment surfaces with the failing path as the fault key — the handle
// the manager's quarantine logic needs.
func TestViewScanReadFaultNamesPath(t *testing.T) {
	leakcheck.Check(t)
	e := testEngine()
	ivs := []interval.Interval{interval.New(0, 49), interval.New(50, 99)}
	materializeJoinView(t, e, ivs)
	e.SetFaults(faults.New(faults.Config{Seed: 9, StorageRead: 1}))
	vs := &query.ViewScan{
		ViewID:     "j",
		ViewSchema: joinPlan().Schema(),
		PartAttr:   "ss_item_sk",
		FragIDs:    []string{fragPath(ivs[0]), fragPath(ivs[1])},
		Reads:      ivs,
		FragIvs:    ivs,
	}
	_, err := e.RunContext(context.Background(), vs, nil)
	f, ok := faults.AsFault(err)
	if !ok || f.Site != faults.StorageRead {
		t.Fatalf("view scan under p=1 read faults = %v, want storage-read fault", err)
	}
	if f.Key != fragPath(ivs[0]) && f.Key != fragPath(ivs[1]) {
		t.Errorf("fault key %q does not name a fragment path", f.Key)
	}
}
