package engine

import (
	"fmt"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// Default selectivities for residual predicates, in the spirit of
// System R's magic numbers. Range predicates on ordered columns are
// estimated exactly from domain overlap instead.
const (
	eqSelectivity   = 0.10
	ineqSelectivity = 0.33
	// stringDistinct is the distinct-count guess for unordered columns.
	stringDistinct = 25
)

// estOut mirrors evalOut for the estimator.
type estOut struct {
	rows       float64
	rowWidth   int64
	cost       Cost
	pending    bool
	needsWrite bool
	srcBytes   int64
	srcFiles   int64
}

func (o *estOut) bytes() int64 { return int64(o.rows * float64(o.rowWidth)) }

// EstimateCost predicts the simulated cost of a plan without executing
// it, using base-table cardinalities, stored view/fragment sizes and
// uniform-distribution assumptions. The estimator mirrors the executor's
// cost accounting exactly, so exec-mode and estimate-only experiments
// produce the same cost shapes.
func (e *Engine) EstimateCost(plan query.Node) (Cost, error) {
	out, err := e.estimate(plan)
	if err != nil {
		return Cost{}, err
	}
	e.settleEst(&out)
	return out.cost, nil
}

// EstimateSize predicts the output cardinality and byte size of a plan.
func (e *Engine) EstimateSize(plan query.Node) (rows, bytes int64, err error) {
	out, err := e.estimate(plan)
	if err != nil {
		return 0, 0, err
	}
	r := int64(out.rows)
	if r < 1 && out.rows > 0 {
		r = 1
	}
	return r, int64(out.rows * float64(out.rowWidth)), nil
}

func (e *Engine) settleEst(o *estOut) {
	if !o.pending {
		return
	}
	if o.needsWrite {
		o.cost.Add(Cost{
			Seconds:    e.cm.WriteCost(o.srcBytes, o.srcFiles),
			WriteBytes: o.srcBytes,
		})
		o.needsWrite = false
	}
	sec, tasks := e.cm.ReadCost(o.srcBytes, o.srcFiles)
	o.cost.Add(Cost{Seconds: sec, ReadBytes: o.srcBytes, MapTasks: tasks})
	o.pending = false
}

func (e *Engine) estimate(n query.Node) (estOut, error) {
	switch t := n.(type) {
	case *query.Scan:
		tbl := e.BaseTable(t.Table)
		if tbl == nil {
			return estOut{}, fmt.Errorf("engine: unknown base table %q", t.Table)
		}
		return estOut{
			rows:     float64(tbl.NumRows()),
			rowWidth: tbl.Schema.RowWidth(),
			pending:  true,
			srcBytes: tbl.Bytes(),
			srcFiles: 1,
		}, nil

	case *query.Select:
		child, err := e.estimate(t.Child)
		if err != nil {
			return estOut{}, err
		}
		schema := t.Child.Schema()
		child.rows *= selectivity(&schema, t.Ranges, t.Residuals)
		if child.needsWrite {
			child.srcBytes = child.bytes()
		}
		return child, nil

	case *query.Project:
		child, err := e.estimate(t.Child)
		if err != nil {
			return estOut{}, err
		}
		out := t.Schema()
		child.rowWidth = out.RowWidth()
		if child.needsWrite {
			child.srcBytes = child.bytes()
		}
		return child, nil

	case *query.Join:
		l, err := e.estimate(t.Left)
		if err != nil {
			return estOut{}, err
		}
		r, err := e.estimate(t.Right)
		if err != nil {
			return estOut{}, err
		}
		e.settleEst(&l)
		e.settleEst(&r)
		keyCard := joinKeyCardinality(t, l.rows, r.rows)
		rows := l.rows * r.rows / keyCard
		out := estOut{rows: rows, rowWidth: l.rowWidth + r.rowWidth}
		out.cost = l.cost
		out.cost.Add(r.cost)
		shuffle := l.bytes() + r.bytes()
		out.cost.Add(Cost{
			Seconds:      e.cm.JobStartup + float64(shuffle)/e.cm.ShuffleBW,
			ShuffleBytes: shuffle,
			Jobs:         1,
		})
		out.pending = true
		out.needsWrite = true
		out.srcBytes = out.bytes()
		out.srcFiles = 1
		return out, nil

	case *query.Aggregate:
		child, err := e.estimate(t.Child)
		if err != nil {
			return estOut{}, err
		}
		e.settleEst(&child)
		inSchema := t.Child.Schema()
		groups := groupCardinality(&inSchema, t.GroupBy)
		rows := child.rows
		if groups < rows {
			rows = groups
		}
		outSchema := t.Schema()
		out := estOut{rows: rows, rowWidth: outSchema.RowWidth(), cost: child.cost}
		shuffle := child.bytes()
		out.cost.Add(Cost{
			Seconds:      e.cm.JobStartup + float64(shuffle)/e.cm.ShuffleBW,
			ShuffleBytes: shuffle,
			Jobs:         1,
		})
		out.pending = true
		out.needsWrite = true
		out.srcBytes = out.bytes()
		out.srcFiles = 1
		return out, nil

	case *query.ViewScan:
		return e.estimateViewScan(t)

	default:
		return estOut{}, fmt.Errorf("engine: unsupported node type %T", n)
	}
}

func (e *Engine) estimateViewScan(v *query.ViewScan) (estOut, error) {
	// Same shape check as the executor: clipFraction indexes Reads per
	// fragment, so a malformed cover must fail cleanly here too.
	if len(v.FragIDs) > 0 && len(v.Reads) != len(v.FragIDs) {
		return estOut{}, fmt.Errorf("engine: malformed ViewScan for view %s: %d fragments but %d clip ranges",
			v.ViewID, len(v.FragIDs), len(v.Reads))
	}
	rowWidth := v.ViewSchema.RowWidth()
	var srcBytes, srcFiles int64
	var rows float64
	if len(v.FragIDs) > 0 {
		for i, path := range v.FragIDs {
			var sz int64
			if i < len(v.FragSizes) && v.FragSizes[i] > 0 {
				sz = v.FragSizes[i] // virtual rewriting: size from stats
			} else {
				if !e.fs.Exists(path) {
					return estOut{}, fmt.Errorf("engine: fragment %s of view %s missing", path, v.ViewID)
				}
				sz = e.fs.Size(path)
			}
			srcBytes += sz
			srcFiles++
			// Rows surviving the clip, assuming uniform distribution of
			// the partition key within the fragment's stored range.
			fragRows := float64(sz) / float64(rowWidth)
			rows += fragRows * clipFraction(v, i)
		}
	} else {
		if v.ViewBytes > 0 {
			srcBytes = v.ViewBytes // virtual rewriting: size from stats
		} else {
			if !e.fs.Exists(v.ViewPath) {
				return estOut{}, fmt.Errorf("engine: view file %s missing", v.ViewPath)
			}
			srcBytes = e.fs.Size(v.ViewPath)
		}
		srcFiles = 1
		rows = float64(srcBytes) / float64(rowWidth)
	}

	// Compensation selectivity. Range predicates on the partition
	// attribute are already reflected by the clip fractions; other
	// ranges and residuals filter further.
	rows *= compensationSelectivity(v)

	out := estOut{rows: rows, rowWidth: rowWidth}
	if v.CompProject != nil {
		sch := v.ViewSchema.Project(v.CompProject)
		out.rowWidth = sch.RowWidth()
	}
	for _, rem := range v.Remainders {
		sub, err := e.estimate(rem)
		if err != nil {
			return estOut{}, err
		}
		e.settleEst(&sub)
		out.cost.Add(sub.cost)
		out.rows += sub.rows
	}
	out.pending = true
	out.srcBytes = srcBytes
	out.srcFiles = srcFiles
	return out, nil
}

// clipFraction estimates the share of fragment i's rows that survive its
// clip range: |clip| / |stored fragment interval|. The matcher records
// the fragment's full interval in FragIvs when available; without it we
// conservatively assume all rows survive.
func clipFraction(v *query.ViewScan, i int) float64 {
	if i >= len(v.FragIvs) {
		return 1
	}
	frag := v.FragIvs[i]
	clip := v.Reads[i]
	f := float64(clip.Len()) / float64(frag.Len())
	if f > 1 {
		f = 1
	}
	return f
}

func compensationSelectivity(v *query.ViewScan) float64 {
	sel := 1.0
	for _, p := range v.CompRanges {
		if p.Col == v.PartAttr && len(v.FragIDs) > 0 {
			continue // already accounted by the clip fractions
		}
		i := v.ViewSchema.ColIndex(p.Col)
		if i < 0 || !v.ViewSchema.Cols[i].Ordered {
			sel *= ineqSelectivity
			continue
		}
		col := v.ViewSchema.Cols[i]
		dom := interval.New(col.Lo, col.Hi)
		if x, ok := p.Iv.Intersect(dom); ok {
			sel *= float64(x.Len()) / float64(dom.Len())
		} else {
			sel = 0
		}
	}
	for _, p := range v.CompResiduals {
		sel *= residualSelectivity(p)
	}
	return sel
}

func selectivity(schema *relation.Schema, ranges []query.RangePred, residuals []query.CmpPred) float64 {
	sel := 1.0
	for _, p := range ranges {
		i := schema.ColIndex(p.Col)
		if i < 0 || !schema.Cols[i].Ordered {
			sel *= ineqSelectivity
			continue
		}
		col := schema.Cols[i]
		dom := interval.New(col.Lo, col.Hi)
		if x, ok := p.Iv.Intersect(dom); ok {
			sel *= float64(x.Len()) / float64(dom.Len())
		} else {
			sel = 0
		}
	}
	for _, p := range residuals {
		sel *= residualSelectivity(p)
	}
	return sel
}

func residualSelectivity(p query.CmpPred) float64 {
	switch p.Op {
	case query.Eq:
		return eqSelectivity
	case query.Ne:
		return 1 - eqSelectivity
	default:
		return ineqSelectivity
	}
}

// joinKeyCardinality estimates the distinct count of the join key. A
// side's distinct count is bounded by both its row count and the key's
// domain width; for a foreign-key join the matching distincts equal the
// dimension side's key count, i.e. the smaller of the two bounds — the
// classic |L join R| = |L|·|R| / d estimate with d = min(d_L, d_R).
func joinKeyCardinality(j *query.Join, lRows, rRows float64) float64 {
	side := func(s relation.Schema, col string, rows float64) float64 {
		d := rows
		if i := s.ColIndex(col); i >= 0 && s.Cols[i].Ordered {
			if w := float64(s.Cols[i].Hi - s.Cols[i].Lo + 1); w < d {
				d = w
			}
		}
		if d < 1 {
			d = 1
		}
		return d
	}
	dl := side(j.Left.Schema(), j.LCol, lRows)
	dr := side(j.Right.Schema(), j.RCol, rRows)
	if dl < dr {
		return dl
	}
	return dr
}

func groupCardinality(schema *relation.Schema, groupBy []string) float64 {
	card := 1.0
	for _, g := range groupBy {
		i := schema.ColIndex(g)
		if i < 0 {
			card *= stringDistinct
			continue
		}
		col := schema.Cols[i]
		if col.Ordered {
			card *= float64(col.Hi - col.Lo + 1)
		} else {
			card *= stringDistinct
		}
		if card > 1e7 {
			return 1e7
		}
	}
	return card
}
