// Package engine executes logical plans over in-memory tables while
// accounting simulated elapsed time with a Hive/MapReduce-shaped cost
// model. Execution is real — rows in, rows out, so rewritten plans can be
// checked for correctness — but time is simulated, so experiments at
// "500 GB" scale run in seconds and are fully deterministic.
package engine

import "fmt"

// CostModel holds the constants of the simulated cluster. The defaults
// approximate the paper's testbed: 31 worker nodes with 6 task slots
// each, HDFS with 128 MB blocks and 3-way replication, and MapReduce-era
// per-job and per-task overheads. Only ratios matter for reproducing the
// paper's result shapes; see DESIGN.md.
type CostModel struct {
	// ScanBW is the aggregate read bandwidth of the cluster in bytes/s.
	ScanBW float64
	// WriteBW is the aggregate HDFS write bandwidth in bytes/s. Writes
	// are much more expensive than reads (replication), the paper's
	// wwrite >> wread.
	WriteBW float64
	// ShuffleBW is the aggregate map->reduce shuffle bandwidth in bytes/s.
	ShuffleBW float64
	// JobStartup is the fixed cost of launching one MapReduce job.
	JobStartup float64
	// TaskWave is the fixed cost of one wave of map tasks: tasks run in
	// parallel across Slots, so a scan pays TaskWave once per
	// ceil(tasks/Slots) rather than per task.
	TaskWave float64
	// TaskSched is the serialized scheduler cost per map task.
	TaskSched float64
	// FileOpen is the per-file open/straggler cost of reading one stored
	// file; many small files cost more than few large ones.
	FileOpen float64
	// FileCreate is the fixed cost of creating one output file (fragment).
	FileCreate float64
	// BlockSize is the HDFS block size in bytes; a map task covers at
	// most one block.
	BlockSize int64
	// Slots is the number of parallel task slots in the cluster, kept
	// for reporting (bandwidths above are already aggregate).
	Slots int
}

// DefaultCostModel returns the calibrated constants used by the
// experiments: an aggregate effective scan bandwidth of a 31-node
// MapReduce-era cluster, writes ~2.5x more expensive per byte than reads
// (HDFS replication — the paper's wwrite >> wread), and fixed job/wave
// overheads.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanBW:     0.4e9,
		WriteBW:    0.15e9,
		ShuffleBW:  0.8e9,
		JobStartup: 6.0,
		TaskWave:   3.0,
		TaskSched:  0.02,
		FileOpen:   0.5,
		FileCreate: 1.5,
		// The paper notes HDFS uses 128 MB or 64 MB blocks depending on
		// the version; 64 MB keeps 1%-selectivity fragments above the
		// block-size lower bound at the evaluated view sizes.
		BlockSize: 64 * 1024 * 1024,
		Slots:     31 * 6,
	}
}

// Tasks returns the number of map tasks needed to read bytes spread over
// the given number of files: at least one task per file, at least one
// task per block.
func (cm *CostModel) Tasks(bytes, files int64) int64 {
	if files < 1 {
		files = 1
	}
	blocks := (bytes + cm.BlockSize - 1) / cm.BlockSize
	if blocks < files {
		blocks = files
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// ReadCost returns the simulated seconds to scan bytes spread over files:
// waves of parallel map tasks plus serialized scheduling, per-file opens
// and the byte transfer itself.
func (cm *CostModel) ReadCost(bytes, files int64) (float64, int64) {
	tasks := cm.Tasks(bytes, files)
	slots := int64(cm.Slots)
	if slots < 1 {
		slots = 1
	}
	waves := (tasks + slots - 1) / slots
	if files < 1 {
		files = 1
	}
	sec := cm.TaskWave*float64(waves) +
		cm.TaskSched*float64(tasks) +
		cm.FileOpen*float64(files) +
		float64(bytes)/cm.ScanBW
	return sec, tasks
}

// WriteCost returns the simulated seconds to write bytes into the given
// number of new files.
func (cm *CostModel) WriteCost(bytes, files int64) float64 {
	if files < 1 {
		files = 1
	}
	return cm.FileCreate*float64(files) + float64(bytes)/cm.WriteBW
}

// Cost aggregates the simulated cost of an operation, with a breakdown
// for reporting (the paper analyses map-task counts in Section 10.2).
type Cost struct {
	Seconds      float64
	ReadBytes    int64
	WriteBytes   int64
	ShuffleBytes int64
	MapTasks     int64
	Jobs         int64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.Seconds += o.Seconds
	c.ReadBytes += o.ReadBytes
	c.WriteBytes += o.WriteBytes
	c.ShuffleBytes += o.ShuffleBytes
	c.MapTasks += o.MapTasks
	c.Jobs += o.Jobs
}

// String renders the cost compactly.
func (c Cost) String() string {
	return fmt.Sprintf("%.2fs (read=%dB write=%dB shuffle=%dB tasks=%d jobs=%d)",
		c.Seconds, c.ReadBytes, c.WriteBytes, c.ShuffleBytes, c.MapTasks, c.Jobs)
}
