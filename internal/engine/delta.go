package engine

import (
	"context"
	"fmt"

	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// Incremental view maintenance by delta propagation.
//
// Base tables only ever grow by appends, and every operator in a view
// plan (scan, select, project, equi-join, group-by aggregate) is
// append-linear under the engine's deterministic execution order: if a
// base table gains a suffix of rows, the rematerialized output of a
// select/project/join chain is the old output followed by a computable
// suffix, and the rematerialized output of a root aggregate is the old
// groups (in order, with updated states) followed by the new groups in
// delta first-appearance order. DeltaApply exploits that to refresh a
// materialized view by pushing only the appended rows through the plan,
// byte-identical to rematerializing from scratch:
//
//   - Scan: the delta is the appended suffix of the base table.
//   - Select/Project: filter/project the child delta (row order kept).
//   - Join: valid only when exactly one input changed, that input is the
//     probe side, and the build-or-probe orientation (chosen by input
//     cardinality, exactly as hashJoin chooses it) is the same before
//     and after the append — then the new output is the old output plus
//     delta-probe ⋈ build, in probe-major order, matching a remat.
//     Otherwise (both sides changed, delta on the build side, or the
//     orientation flips) incremental maintenance cannot reproduce the
//     remat byte order and the caller must rematerialize.
//   - Root aggregate: the child delta is aggregated in partial mode and
//     merged into the view's retained exact accumulator states
//     (MergeAggStates); finalizing the merged states (FinalizeAggStates)
//     renders exactly what a full re-aggregation would, because full
//     mode renders sums from the same exact accumulator (see aggregate).
//
// Anything else in the plan — a nested aggregate, a ViewScan — falls
// back to rematerialization via a DeltaRemat result.

// RefreshPlan is the retained per-view state that makes incremental
// refresh possible: the canonical plan, the output cardinality of every
// plan node over the view's current base prefix (join orientation
// checks need old sizes), and, for aggregate-rooted plans, the exact
// partial-aggregation states of the current content.
type RefreshPlan struct {
	Plan query.Node
	// Sizes maps every node of Plan to its output row count over the
	// base-table prefixes the view content corresponds to. Updated by
	// the caller from DeltaResult.Sizes after each applied refresh.
	Sizes map[query.Node]int
	// States holds the partial-aggregation state table when Plan's root
	// is an Aggregate (nil otherwise). Group rows appear in content
	// order; sum columns carry exact encodings.
	States *relation.Table
}

// DeltaKind classifies a DeltaApply outcome.
type DeltaKind int

// DeltaApply outcomes.
const (
	// DeltaEmpty: the delta produced no output change; the view content
	// is already fresh.
	DeltaEmpty DeltaKind = iota
	// DeltaAppend: the view gains Rows appended to its stored content.
	DeltaAppend
	// DeltaAgg: the view content is replaced by Rows (merged aggregate
	// groups); States carries the updated retained states.
	DeltaAgg
	// DeltaRemat: incremental maintenance cannot reproduce the remat
	// byte order for this plan + delta; Reason says why. The caller
	// must fall back to rematerialization.
	DeltaRemat
)

// String names the outcome for logs and counters.
func (k DeltaKind) String() string {
	switch k {
	case DeltaEmpty:
		return "empty"
	case DeltaAppend:
		return "append"
	case DeltaAgg:
		return "agg"
	default:
		return "remat"
	}
}

// DeltaResult is the outcome of one incremental refresh computation.
type DeltaResult struct {
	Kind DeltaKind
	// Rows: for DeltaAppend, the output rows to append to the stored
	// view; for DeltaAgg, the full replacement content.
	Rows *relation.Table
	// States: for DeltaAgg, the merged partial states to retain.
	States *relation.Table
	// Sizes: updated per-node output cardinalities (old + delta), to
	// store back into the RefreshPlan once the refresh is applied.
	Sizes map[query.Node]int
	// Cost is the simulated cost of computing the delta (reads of the
	// appended rows and of unchanged join build sides). Write costs are
	// charged by the storage primitives that apply the result.
	Cost Cost
	// Reason explains a DeltaRemat.
	Reason string
}

// rematError aborts delta propagation with the reason incremental
// maintenance cannot preserve byte-identity for this plan + delta.
type rematError struct{ reason string }

func (e rematError) Error() string { return "engine: delta remat: " + e.reason }

// deltaCtx threads the per-refresh inputs through the recursion.
type deltaCtx struct {
	e   *Engine
	bud *budget
	// snaps holds the current base-table snapshots (mutually consistent:
	// taken under one catalog lock).
	snaps map[string]*relation.Table
	// deltas holds the appended suffix per base table (absent or empty
	// when a table did not grow).
	deltas map[string]*relation.Table
	// oldSizes come from the RefreshPlan; newSizes are produced here.
	oldSizes map[query.Node]int
	newSizes map[query.Node]int
	cost     Cost
}

func (c *deltaCtx) chargeRead(bytes int64) {
	sec, tasks := c.e.cm.ReadCost(bytes, 1)
	c.cost.Add(Cost{Seconds: sec, ReadBytes: bytes, MapTasks: tasks})
}

// PrimeRefresh builds the retained refresh state for a view by
// evaluating its plan over the base-table prefixes its current content
// was materialized from: per-node output sizes, plus partial states for
// an aggregate root. The returned cost covers the evaluation's reads.
// Plans that delta propagation cannot maintain (ViewScan anywhere, an
// aggregate below the root) return an error; the caller falls back to
// rematerialization.
func (e *Engine) PrimeRefresh(plan query.Node, old map[string]*relation.Table) (rp *RefreshPlan, cost Cost, err error) {
	if !e.ExecuteRows {
		return nil, Cost{}, fmt.Errorf("engine: incremental refresh requires row execution")
	}
	c := &deltaCtx{e: e, bud: newBudget(e.par()), snaps: old, newSizes: make(map[query.Node]int)}
	c.bud.ctx = context.Background()
	defer func() {
		if r := recover(); r != nil {
			rp, err = nil, fmt.Errorf("engine: prime panic: %v", r)
		}
	}()
	rp = &RefreshPlan{Plan: plan}
	if a, ok := plan.(*query.Aggregate); ok {
		child, cerr := c.snapEval(a.Child, true)
		if cerr != nil {
			return nil, c.cost, cerr
		}
		pa := *a
		pa.Partial = true
		rp.States = aggregate(child, &pa, c.bud)
		c.newSizes[plan] = len(rp.States.Rows)
	} else if _, cerr := c.snapEval(plan, true); cerr != nil {
		return nil, c.cost, cerr
	}
	if berr := c.bud.abortErr(); berr != nil {
		return nil, c.cost, berr
	}
	rp.Sizes = c.newSizes
	return rp, c.cost, nil
}

// snapEval fully evaluates a select/project/join subtree over the
// snapshot tables in c.snaps, recording per-node output sizes when
// record is set. It is the build-side evaluator of delta joins and the
// plan walker of PrimeRefresh; aggregates and view scans are not
// append-linear in a subtree position, so they surface as rematError.
func (c *deltaCtx) snapEval(n query.Node, record bool) (*relation.Table, error) {
	var out *relation.Table
	switch t := n.(type) {
	case *query.Scan:
		tbl := c.snaps[t.Table]
		if tbl == nil {
			return nil, fmt.Errorf("engine: unknown base table %q in refresh plan", t.Table)
		}
		c.chargeRead(tbl.Bytes())
		out = tbl
	case *query.Select:
		child, err := c.snapEval(t.Child, record)
		if err != nil {
			return nil, err
		}
		out = filterTable(child, t.Ranges, t.Residuals, c.bud)
	case *query.Project:
		child, err := c.snapEval(t.Child, record)
		if err != nil {
			return nil, err
		}
		out = projectTable(child, t.Cols, c.bud)
	case *query.Join:
		l, err := c.snapEval(t.Left, record)
		if err != nil {
			return nil, err
		}
		r, err := c.snapEval(t.Right, record)
		if err != nil {
			return nil, err
		}
		out = hashJoin(l, r, t.LCol, t.RCol, t.Schema(), c.bud)
	case *query.Aggregate:
		return nil, rematError{"aggregate below the plan root"}
	case *query.ViewScan:
		return nil, rematError{"plan references another view"}
	default:
		return nil, fmt.Errorf("engine: unsupported node type %T in refresh plan", n)
	}
	if record {
		c.newSizes[n] = len(out.Rows)
	}
	return out, nil
}

// DeltaApply pushes the appended base rows through a primed view plan
// and returns what the refresh must do to the stored content. snaps are
// the current base-table snapshots (post-append, mutually consistent);
// deltas are the appended suffixes per table. A DeltaRemat result is
// not an error: it reports that this delta cannot be applied
// incrementally and carries the reason.
func (e *Engine) DeltaApply(rp *RefreshPlan, snaps, deltas map[string]*relation.Table) (res DeltaResult, err error) {
	if !e.ExecuteRows {
		return DeltaResult{}, fmt.Errorf("engine: incremental refresh requires row execution")
	}
	c := &deltaCtx{
		e:        e,
		bud:      newBudget(e.par()),
		snaps:    snaps,
		deltas:   deltas,
		oldSizes: rp.Sizes,
		newSizes: make(map[query.Node]int),
	}
	c.bud.ctx = context.Background()
	defer func() {
		if r := recover(); r != nil {
			res, err = DeltaResult{}, fmt.Errorf("engine: delta panic: %v", r)
		}
	}()
	finish := func(d DeltaResult, derr error) (DeltaResult, error) {
		if derr != nil {
			if re, ok := derr.(rematError); ok {
				return DeltaResult{Kind: DeltaRemat, Reason: re.reason, Cost: c.cost}, nil
			}
			return DeltaResult{}, derr
		}
		if berr := c.bud.abortErr(); berr != nil {
			return DeltaResult{}, berr
		}
		d.Sizes = c.newSizes
		d.Cost = c.cost
		return d, nil
	}

	if a, ok := rp.Plan.(*query.Aggregate); ok {
		if rp.States == nil {
			return finish(DeltaResult{}, rematError{"aggregate view has no retained states"})
		}
		childDelta, derr := c.deltaNode(a.Child)
		if derr != nil {
			return finish(DeltaResult{}, derr)
		}
		if len(childDelta.Rows) == 0 {
			return finish(DeltaResult{Kind: DeltaEmpty}, nil)
		}
		pa := *a
		pa.Partial = true
		deltaStates := aggregate(childDelta, &pa, c.bud)
		merged, merr := MergeAggStates(a, rp.States, deltaStates)
		if merr != nil {
			return finish(DeltaResult{}, merr)
		}
		content := merged
		if !a.Partial {
			content, merr = FinalizeAggStates(a, merged)
			if merr != nil {
				return finish(DeltaResult{}, merr)
			}
		}
		c.newSizes[rp.Plan] = len(merged.Rows)
		return finish(DeltaResult{Kind: DeltaAgg, Rows: content, States: merged}, nil)
	}

	d, derr := c.deltaNode(rp.Plan)
	if derr != nil {
		return finish(DeltaResult{}, derr)
	}
	if len(d.Rows) == 0 {
		return finish(DeltaResult{Kind: DeltaEmpty}, nil)
	}
	return finish(DeltaResult{Kind: DeltaAppend, Rows: d}, nil)
}

// deltaNode returns the appended output suffix of the subtree at n,
// maintaining c.newSizes = old size + delta size for every node. It
// returns rematError when the delta cannot be expressed as an appended
// suffix of the node's remat output.
func (c *deltaCtx) deltaNode(n query.Node) (*relation.Table, error) {
	oldSize, primed := c.oldSizes[n]
	if !primed {
		return nil, rematError{"plan node missing from primed sizes"}
	}
	var out *relation.Table
	switch t := n.(type) {
	case *query.Scan:
		d := c.deltas[t.Table]
		if d == nil {
			snap := c.snaps[t.Table]
			if snap == nil {
				return nil, fmt.Errorf("engine: unknown base table %q in refresh plan", t.Table)
			}
			d = relation.NewTable(snap.Schema)
		}
		c.chargeRead(d.Bytes())
		out = d
	case *query.Select:
		child, err := c.deltaNode(t.Child)
		if err != nil {
			return nil, err
		}
		out = filterTable(child, t.Ranges, t.Residuals, c.bud)
	case *query.Project:
		child, err := c.deltaNode(t.Child)
		if err != nil {
			return nil, err
		}
		out = projectTable(child, t.Cols, c.bud)
	case *query.Join:
		var err error
		if out, err = c.deltaJoinNode(t); err != nil {
			return nil, err
		}
	case *query.Aggregate:
		return nil, rematError{"aggregate below the plan root"}
	case *query.ViewScan:
		return nil, rematError{"plan references another view"}
	default:
		return nil, fmt.Errorf("engine: unsupported node type %T in refresh plan", n)
	}
	c.newSizes[n] = oldSize + len(out.Rows)
	return out, nil
}

// deltaJoinNode computes the appended output suffix of an equi-join
// whose inputs may each have grown. The suffix equals delta-probe ⋈
// build only under the conditions documented on DeltaApply; any other
// shape is a rematError.
func (c *deltaCtx) deltaJoinNode(t *query.Join) (*relation.Table, error) {
	ld, err := c.deltaNode(t.Left)
	if err != nil {
		return nil, err
	}
	rd, err := c.deltaNode(t.Right)
	if err != nil {
		return nil, err
	}
	if len(ld.Rows) == 0 && len(rd.Rows) == 0 {
		return relation.NewTable(t.Schema()), nil
	}
	if len(ld.Rows) > 0 && len(rd.Rows) > 0 {
		return nil, rematError{"both join inputs changed"}
	}
	lOld, lok := c.oldSizes[t.Left]
	rOld, rok := c.oldSizes[t.Right]
	if !lok || !rok {
		return nil, rematError{"join input missing from primed sizes"}
	}
	lNew, rNew := c.newSizes[t.Left], c.newSizes[t.Right]
	// hashJoin builds on the left unless the left is strictly larger;
	// the choice must agree before and after the append or the remat
	// output would switch from right-major to left-major (or back).
	buildLeftOld := !(lOld > rOld)
	buildLeftNew := !(lNew > rNew)
	if buildLeftOld != buildLeftNew {
		return nil, rematError{"join build orientation flips under this delta"}
	}
	// The changed side must be the probe side: new probe rows extend
	// the probe-major output, while new build rows would interleave.
	if buildLeftOld && len(ld.Rows) > 0 {
		return nil, rematError{"delta lands on the join build side"}
	}
	if !buildLeftOld && len(rd.Rows) > 0 {
		return nil, rematError{"delta lands on the join build side"}
	}
	var buildNode query.Node
	var probeDelta *relation.Table
	if buildLeftOld {
		buildNode, probeDelta = t.Left, rd
	} else {
		buildNode, probeDelta = t.Right, ld
	}
	// The build side is unchanged, so evaluating it over the current
	// snapshots reproduces exactly what the original materialization
	// joined against.
	build, err := c.snapEval(buildNode, false)
	if err != nil {
		return nil, err
	}
	return deltaJoin(build, probeDelta, t, buildLeftOld, c.bud)
}

// deltaJoin joins the appended probe rows against the full build side,
// preserving hashJoin's output contract: probe-major row order, build
// matches in build-row order, output columns always left ++ right.
func deltaJoin(build, probe *relation.Table, t *query.Join, buildLeft bool, bud *budget) (*relation.Table, error) {
	bCol, pCol := t.LCol, t.RCol
	if !buildLeft {
		bCol, pCol = t.RCol, t.LCol
	}
	bi := build.Schema.ColIndex(bCol)
	pi := probe.Schema.ColIndex(pCol)
	if bi < 0 || pi < 0 {
		return nil, fmt.Errorf("engine: join columns %q/%q missing in refresh plan", t.LCol, t.RCol)
	}
	m := make(map[int64][]relation.Row, len(build.Rows))
	for _, row := range build.Rows {
		k := row[bi].I
		m[k] = append(m[k], row)
	}
	n := len(probe.Rows)
	parts := make([][]relation.Row, numChunks(n))
	forEachChunk(bud, n, func(c, lo, hi int) {
		var rows []relation.Row
		for _, pr := range probe.Rows[lo:hi] {
			for _, br := range m[pr[pi].I] {
				if buildLeft {
					rows = append(rows, concatRows(br, pr))
				} else {
					rows = append(rows, concatRows(pr, br))
				}
			}
		}
		parts[c] = rows
	})
	out := relation.NewTable(t.Schema())
	out.Rows = concatChunks(parts)
	return out, nil
}

// MergeAggStates merges a delta's partial-aggregation states into a
// view's retained states: existing groups keep their position and fold
// the delta in (counts add, exact sum encodings merge losslessly,
// min/max compare by column type), new groups append in delta
// first-appearance order — exactly the group order a re-aggregation of
// old-rows-then-delta-rows would produce. Both tables carry the partial
// schema of a.
func MergeAggStates(a *query.Aggregate, old, delta *relation.Table) (*relation.Table, error) {
	ng := len(a.GroupBy)
	out := relation.NewTable(old.Schema)
	out.Rows = make([]relation.Row, len(old.Rows), len(old.Rows)+len(delta.Rows))
	idx := make(map[string]int, len(old.Rows))
	var keyBuf []byte
	rowKey := func(r relation.Row) string {
		keyBuf = keyBuf[:0]
		for i := 0; i < ng; i++ {
			keyBuf = appendValueKey(keyBuf, r[i])
		}
		return string(keyBuf)
	}
	for i, r := range old.Rows {
		nr := make(relation.Row, len(r))
		copy(nr, r)
		out.Rows[i] = nr
		idx[rowKey(r)] = i
	}
	for _, dr := range delta.Rows {
		i, ok := idx[rowKey(dr)]
		if !ok {
			nr := make(relation.Row, len(dr))
			copy(nr, dr)
			idx[rowKey(dr)] = len(out.Rows)
			out.Rows = append(out.Rows, nr)
			continue
		}
		if err := mergeStateRow(a, out.Schema, out.Rows[i], dr, ng); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeStateRow folds one delta state row into an existing state row in
// place, column by column per the PartialCols expansion.
func mergeStateRow(a *query.Aggregate, schema relation.Schema, dst, src relation.Row, ng int) error {
	ci := ng
	for _, sp := range a.Aggs {
		switch sp.Func {
		case query.Count:
			dst[ci].I += src[ci].I
			ci++
		case query.Sum:
			enc, _, err := MergePartialSums(dst[ci].S, src[ci].S)
			if err != nil {
				return fmt.Errorf("engine: merge %s: %w", sp.As, err)
			}
			dst[ci].S = enc
			ci++
		case query.Avg:
			enc, _, err := MergePartialSums(dst[ci].S, src[ci].S)
			if err != nil {
				return fmt.Errorf("engine: merge %s: %w", sp.As, err)
			}
			dst[ci].S = enc
			dst[ci+1].I += src[ci+1].I
			ci += 2
		case query.Min:
			if lessValue(schema.Cols[ci].Type, src[ci], dst[ci]) {
				dst[ci] = src[ci]
			}
			ci++
		case query.Max:
			if lessValue(schema.Cols[ci].Type, dst[ci], src[ci]) {
				dst[ci] = src[ci]
			}
			ci++
		}
	}
	return nil
}

func lessValue(typ relation.Type, a, b relation.Value) bool {
	switch typ {
	case relation.Int:
		return a.I < b.I
	case relation.Float:
		return a.F < b.F
	default:
		return a.S < b.S
	}
}

// FinalizeAggStates renders a partial-state table as the full-mode
// aggregate output, byte-identical to what aggregate() itself renders:
// counts pass through, sums decode the exact encoding and round once,
// averages divide the rounded sum by the count, min/max pass through.
func FinalizeAggStates(a *query.Aggregate, states *relation.Table) (*relation.Table, error) {
	fa := *a
	fa.Partial = false
	ng := len(a.GroupBy)
	out := relation.NewTable(fa.Schema())
	for _, sr := range states.Rows {
		row := make(relation.Row, 0, ng+len(a.Aggs))
		row = append(row, sr[:ng]...)
		ci := ng
		for _, sp := range a.Aggs {
			switch sp.Func {
			case query.Count:
				row = append(row, sr[ci])
				ci++
			case query.Sum:
				acc, err := decodeExactAcc(sr[ci].S)
				if err != nil {
					return nil, fmt.Errorf("engine: finalize %s: %w", sp.As, err)
				}
				row = append(row, relation.FloatVal(acc.float64()))
				ci++
			case query.Avg:
				acc, err := decodeExactAcc(sr[ci].S)
				if err != nil {
					return nil, fmt.Errorf("engine: finalize %s: %w", sp.As, err)
				}
				n := sr[ci+1].I
				v := 0.0
				if n > 0 {
					v = acc.float64() / float64(n)
				}
				row = append(row, relation.FloatVal(v))
				ci += 2
			default: // Min, Max
				row = append(row, sr[ci])
				ci++
			}
		}
		out.Append(row)
	}
	return out, nil
}
