package engine

import (
	"fmt"

	"deepsea/internal/relation"
	"deepsea/internal/storage"
)

// Engine is the simulated SQL-on-Hadoop execution engine. It owns the
// base-table catalog, the materialized view/fragment store, the simulated
// file system and the simulated clock.
//
// With ExecuteRows enabled (the default) every plan is evaluated over
// real rows, so rewriting correctness is observable; with it disabled the
// engine runs in estimate-only mode, in which only the cost model runs —
// the mode the paper's own simulator uses for large parameter sweeps.
type Engine struct {
	cm   CostModel
	fs   *storage.FS
	base map[string]*relation.Table
	mat  map[string]*relation.Table

	// ExecuteRows selects real execution (true) or estimate-only mode.
	ExecuteRows bool

	clock float64
}

// New returns an engine with the given cost model. The simulated clock
// starts at one second so that the paper's decay function t/tnow is
// always well defined.
func New(cm CostModel) *Engine {
	return &Engine{
		cm:          cm,
		fs:          storage.NewFS(cm.BlockSize),
		base:        make(map[string]*relation.Table),
		mat:         make(map[string]*relation.Table),
		ExecuteRows: true,
		clock:       1,
	}
}

// CostModel returns the engine's cost model.
func (e *Engine) CostModel() *CostModel { return &e.cm }

// FS exposes the simulated file system (pool accounting, tests).
func (e *Engine) FS() *storage.FS { return e.fs }

// Now returns the simulated time in seconds.
func (e *Engine) Now() float64 { return e.clock }

// Advance moves the simulated clock forward by d seconds.
func (e *Engine) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("engine: clock moved backwards by %g", d))
	}
	e.clock += d
}

// AddBaseTable registers a base table in the catalog.
func (e *Engine) AddBaseTable(t *relation.Table) {
	e.base[t.Schema.Name] = t
}

// BaseTable returns a base table by name, or nil.
func (e *Engine) BaseTable(name string) *relation.Table { return e.base[name] }

// BaseBytes returns the total modelled size of all base tables.
func (e *Engine) BaseBytes() int64 {
	var total int64
	for _, t := range e.base {
		total += t.Bytes()
	}
	return total
}

// WriteMaterialized stores a materialized result under path (exec mode)
// and returns the write cost. The caller decides whether the cost is
// charged to the workload (view creation is; test setup is not).
func (e *Engine) WriteMaterialized(path string, t *relation.Table) Cost {
	bytes := t.Bytes()
	e.fs.Write(path, bytes)
	e.mat[path] = t
	return Cost{Seconds: e.cm.WriteCost(bytes, 1), WriteBytes: bytes}
}

// WriteMaterializedSize records a materialized file of the given size
// without row data (estimate-only mode) and returns the write cost.
func (e *Engine) WriteMaterializedSize(path string, bytes int64) Cost {
	e.fs.Write(path, bytes)
	delete(e.mat, path)
	return Cost{Seconds: e.cm.WriteCost(bytes, 1), WriteBytes: bytes}
}

// ReadMaterialized returns the stored rows for path (nil in estimate-only
// mode) and the cost of a full scan of the file.
func (e *Engine) ReadMaterialized(path string) (*relation.Table, Cost, error) {
	if !e.fs.Exists(path) {
		return nil, Cost{}, fmt.Errorf("engine: materialized file %s does not exist", path)
	}
	bytes, _ := e.fs.Read(path)
	sec, tasks := e.cm.ReadCost(bytes, 1)
	return e.mat[path], Cost{Seconds: sec, ReadBytes: bytes, MapTasks: tasks}, nil
}

// Materialized returns the stored rows for path without accounting any
// cost (used by the executor, which accounts reads itself).
func (e *Engine) Materialized(path string) *relation.Table { return e.mat[path] }

// MaterializedBytes returns the stored size of path (0 if absent).
func (e *Engine) MaterializedBytes(path string) int64 { return e.fs.Size(path) }

// DeleteMaterialized evicts a stored file. Deletion is metadata-only and
// costs nothing, like an HDFS delete.
func (e *Engine) DeleteMaterialized(path string) {
	e.fs.Delete(path)
	delete(e.mat, path)
}
