package engine

import (
	"fmt"
	"runtime"
	"sync"

	"deepsea/internal/datastore"
	"deepsea/internal/faults"
	"deepsea/internal/relation"
	"deepsea/internal/storage"
)

// Engine is the simulated SQL-on-Hadoop execution engine. It owns the
// base-table catalog, the materialized view/fragment store, the simulated
// file system and the simulated clock.
//
// With ExecuteRows enabled (the default) every plan is evaluated over
// real rows, so rewriting correctness is observable; with it disabled the
// engine runs in estimate-only mode, in which only the cost model runs —
// the mode the paper's own simulator uses for large parameter sweeps.
//
// Run may be called from multiple goroutines: the catalog maps and the
// clock are guarded by mu, and the data path works on tables that are
// immutable once stored. ExecuteRows and Parallelism are configuration —
// set them before the first concurrent use.
type Engine struct {
	cm CostModel
	fs *storage.FS

	// mu guards base, mat and clock so concurrent Run calls can overlap
	// a view manager's materialize/evict critical section.
	mu   sync.RWMutex
	base map[string]*relation.Table
	mat  map[string]*relation.Table

	// ExecuteRows selects real execution (true) or estimate-only mode.
	ExecuteRows bool

	// Parallelism is the worker count for the row data path (filter,
	// project, join, aggregate). New sets it to runtime.GOMAXPROCS(0);
	// values <= 1 run sequentially. Results are byte-identical for every
	// setting: chunk boundaries depend only on input sizes, so merge
	// order never varies with the worker count.
	Parallelism int

	// faults, when non-nil, injects deterministic faults into the data
	// path (worker tasks, view/fragment reads). Set before concurrent
	// use; nil is the fault-free production configuration.
	faults *faults.Injector

	clock float64

	// baseVersion counts base-catalog mutations. Result-cache keys embed
	// it so cached rows never survive a base-table change.
	baseVersion uint64

	// journal, when non-nil, receives a record per materialized-file
	// write/delete and per clock advance, emitted under e.mu. Base tables
	// are deliberately not journaled: they are workload input, reloaded
	// by the host on boot, not state the manager learned.
	journal func(datastore.Record)
}

// New returns an engine with the given cost model. The simulated clock
// starts at one second so that the paper's decay function t/tnow is
// always well defined.
func New(cm CostModel) *Engine {
	return &Engine{
		cm:          cm,
		fs:          storage.NewFS(cm.BlockSize),
		base:        make(map[string]*relation.Table),
		mat:         make(map[string]*relation.Table),
		ExecuteRows: true,
		Parallelism: runtime.GOMAXPROCS(0),
		clock:       1,
	}
}

// par returns the effective data-path worker count (>= 1).
func (e *Engine) par() int {
	if e.Parallelism > 1 {
		return e.Parallelism
	}
	return 1
}

// CostModel returns the engine's cost model.
func (e *Engine) CostModel() *CostModel { return &e.cm }

// FS exposes the simulated file system (pool accounting, tests).
func (e *Engine) FS() *storage.FS { return e.fs }

// SetFaults attaches a fault injector to the engine and its file
// system; nil (the default) disables injection. Set before concurrent
// use.
func (e *Engine) SetFaults(in *faults.Injector) {
	e.faults = in
	e.fs.SetFaults(in)
}

// Faults returns the attached fault injector (nil when fault-free).
func (e *Engine) Faults() *faults.Injector { return e.faults }

// SetJournal attaches a mutation journal to the engine; nil detaches
// it. Set before concurrent use (and detach during recovery replay).
func (e *Engine) SetJournal(fn func(datastore.Record)) {
	e.mu.Lock()
	e.journal = fn
	e.mu.Unlock()
}

// emit journals one record; caller holds e.mu.
func (e *Engine) emit(rec datastore.Record) {
	if e.journal != nil {
		e.journal(rec)
	}
}

// Now returns the simulated time in seconds.
func (e *Engine) Now() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.clock
}

// Advance moves the simulated clock forward by d seconds.
func (e *Engine) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("engine: clock moved backwards by %g", d))
	}
	e.mu.Lock()
	e.clock += d
	e.emit(datastore.Record{Op: "clock", T: e.clock})
	e.mu.Unlock()
}

// SetClock restores the simulated clock from a snapshot or journal
// record. Restoring never moves the clock backwards: the paper's decay
// t/tnow assumes monotone time.
func (e *Engine) SetClock(t float64) {
	e.mu.Lock()
	if t > e.clock {
		e.clock = t
	}
	e.mu.Unlock()
}

// AddBaseTable registers a base table in the catalog and bumps the
// base-catalog version, invalidating every cached result derived from
// the old catalog.
func (e *Engine) AddBaseTable(t *relation.Table) {
	e.mu.Lock()
	e.base[t.Schema.Name] = t
	e.baseVersion++
	e.mu.Unlock()
}

// BaseVersion returns the base-catalog version: a counter bumped by
// every AddBaseTable. Result-cache keys embed it so a catalog change
// (new data, replaced table) makes all earlier cache keys unreachable.
func (e *Engine) BaseVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.baseVersion
}

// BaseTable returns a base table by name, or nil.
func (e *Engine) BaseTable(name string) *relation.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.base[name]
}

// AppendBase appends rows to a base table by publishing a fresh table
// value whose row slice has its own backing array: plan executions that
// already resolved the old *Table keep reading a consistent prefix
// snapshot, and earlier snapshots remain exact prefixes of later ones —
// the invariant incremental view maintenance depends on. The
// base-catalog version is deliberately not bumped: an append is a
// precise-invalidation event (per-table row counts in cache keys,
// per-view staleness), not a catalog change. Returns the new row count.
func (e *Engine) AppendBase(name string, rows []relation.Row) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.base[name]
	if old == nil {
		return 0, fmt.Errorf("engine: unknown base table %q", name)
	}
	for _, r := range rows {
		if len(r) != len(old.Schema.Cols) {
			return 0, fmt.Errorf("engine: append row width %d != schema width %d for %s",
				len(r), len(old.Schema.Cols), name)
		}
	}
	nt := &relation.Table{Schema: old.Schema}
	nt.Rows = append(old.Rows[:len(old.Rows):len(old.Rows)], rows...)
	e.base[name] = nt
	return int64(len(nt.Rows)), nil
}

// BaseSnapshots returns the current snapshot of each named base table
// under one catalog-lock acquisition, so the per-table row counts are
// mutually consistent even while appends land concurrently. Unknown
// tables surface as an error.
func (e *Engine) BaseSnapshots(names []string) (map[string]*relation.Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]*relation.Table, len(names))
	for _, n := range names {
		t := e.base[n]
		if t == nil {
			return nil, fmt.Errorf("engine: unknown base table %q", n)
		}
		out[n] = t
	}
	return out, nil
}

// BaseCounts returns the current row count of each named base table
// under one catalog-lock acquisition (0 for unknown tables). Result
// cache keys embed these counts so an append precisely unreaches every
// cached result over the grown tables.
func (e *Engine) BaseCounts(names []string) map[string]int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]int64, len(names))
	for _, n := range names {
		if t := e.base[n]; t != nil {
			out[n] = int64(len(t.Rows))
		}
	}
	return out
}

// BaseBytes returns the total modelled size of all base tables.
func (e *Engine) BaseBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var total int64
	for _, t := range e.base {
		total += t.Bytes()
	}
	return total
}

// WriteMaterialized stores a materialized result under path (exec mode)
// and returns the write cost. The caller decides whether the cost is
// charged to the workload (view creation is; test setup is not). A
// failed write (injected storage fault) stores nothing.
func (e *Engine) WriteMaterialized(path string, t *relation.Table) (Cost, error) {
	bytes := t.Bytes()
	if err := e.fs.Write(path, bytes); err != nil {
		return Cost{}, err
	}
	e.mu.Lock()
	e.mat[path] = t
	e.emit(datastore.Record{Op: "put_file", Path: path, Size: bytes, Rows: t})
	e.mu.Unlock()
	return Cost{Seconds: e.cm.WriteCost(bytes, 1), WriteBytes: bytes}, nil
}

// WriteMaterializedSize records a materialized file of the given size
// without row data (estimate-only mode) and returns the write cost.
func (e *Engine) WriteMaterializedSize(path string, bytes int64) (Cost, error) {
	if err := e.fs.Write(path, bytes); err != nil {
		return Cost{}, err
	}
	e.mu.Lock()
	delete(e.mat, path)
	e.emit(datastore.Record{Op: "put_file", Path: path, Size: bytes})
	e.mu.Unlock()
	return Cost{Seconds: e.cm.WriteCost(bytes, 1), WriteBytes: bytes}, nil
}

// AppendMaterialized extends a stored materialized file with delta
// rows, charging only the delta's write cost — the storage primitive of
// incremental view refresh. The combined table is published as a fresh
// value with its own backing array, so a concurrent reader holding the
// old table keeps a consistent earlier version of the view.
func (e *Engine) AppendMaterialized(path string, delta []relation.Row) (Cost, error) {
	e.mu.RLock()
	old := e.mat[path]
	e.mu.RUnlock()
	if old == nil {
		return Cost{}, fmt.Errorf("engine: materialized file %s has no stored rows to append to", path)
	}
	nt := &relation.Table{Schema: old.Schema}
	nt.Rows = append(old.Rows[:len(old.Rows):len(old.Rows)], delta...)
	bytes := nt.Bytes()
	if err := e.fs.Write(path, bytes); err != nil {
		return Cost{}, err
	}
	deltaTbl := &relation.Table{Schema: old.Schema, Rows: delta}
	deltaBytes := deltaTbl.Bytes()
	e.mu.Lock()
	e.mat[path] = nt
	e.emit(datastore.Record{Op: "append_file", Path: path, Size: bytes, Rows: deltaTbl})
	e.mu.Unlock()
	return Cost{Seconds: e.cm.WriteCost(deltaBytes, 1), WriteBytes: deltaBytes}, nil
}

// ReadMaterialized returns the stored rows for path (nil in estimate-only
// mode) and the cost of a full scan of the file. A failed read (missing
// file, injected storage fault) is the caller's to handle: the file may
// still exist, only this read of it failed.
func (e *Engine) ReadMaterialized(path string) (*relation.Table, Cost, error) {
	if !e.fs.Exists(path) {
		return nil, Cost{}, fmt.Errorf("engine: materialized file %s does not exist", path)
	}
	bytes, err := e.fs.Read(path)
	if err != nil {
		return nil, Cost{}, err
	}
	sec, tasks := e.cm.ReadCost(bytes, 1)
	return e.Materialized(path), Cost{Seconds: sec, ReadBytes: bytes, MapTasks: tasks}, nil
}

// Materialized returns the stored rows for path without accounting any
// cost (used by the executor, which accounts reads itself).
func (e *Engine) Materialized(path string) *relation.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mat[path]
}

// MaterializedBytes returns the stored size of path (0 if absent).
func (e *Engine) MaterializedBytes(path string) int64 { return e.fs.Size(path) }

// DeleteMaterialized evicts a stored file. Deletion is metadata-only and
// costs nothing, like an HDFS delete.
func (e *Engine) DeleteMaterialized(path string) {
	e.fs.Delete(path)
	e.mu.Lock()
	delete(e.mat, path)
	e.emit(datastore.Record{Op: "del_file", Path: path})
	e.mu.Unlock()
}

// RestoreFile recreates a materialized file during recovery — no write
// cost, no I/O accounting, no fault check, no journal echo. rows may be
// nil (estimate-only mode or a snapshot that dropped payloads).
func (e *Engine) RestoreFile(path string, size int64, rows *relation.Table) {
	e.fs.Restore(path, size)
	e.mu.Lock()
	if rows != nil {
		e.mat[path] = rows
	} else {
		delete(e.mat, path)
	}
	e.mu.Unlock()
}
