package engine

import (
	"sync"
	"sync/atomic"

	"deepsea/internal/relation"
)

// The data path (filter, project, join probe, aggregate) is
// parallelized by splitting row ranges into fixed-size chunks and
// merging per-chunk results in chunk order. Chunk boundaries depend
// only on the input size — never on the worker count — so the merge
// order, and with it every output byte (including the association of
// floating-point partial sums), is identical for every Parallelism
// setting. Workers only change which goroutine evaluates a chunk.

// chunkRows is the fixed chunk granularity of the parallel data path.
// Small enough to load-balance skewed chunks across workers, large
// enough that per-chunk bookkeeping is noise.
const chunkRows = 4096

// numChunks returns how many fixed-size chunks n rows split into.
func numChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkRows - 1) / chunkRows
}

// chunkBounds returns the row range [lo, hi) of chunk c out of n rows.
func chunkBounds(c, n int) (lo, hi int) {
	lo = c * chunkRows
	hi = lo + chunkRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forEachChunk runs fn(chunk, lo, hi) over every fixed-size chunk of n
// rows using up to par workers. With par <= 1 or a single chunk it runs
// inline on the calling goroutine. fn must be safe to call concurrently
// for distinct chunks; chunks are handed out dynamically so skewed
// chunks do not serialize the rest.
func forEachChunk(par, n int, fn func(chunk, lo, hi int)) {
	nc := numChunks(n)
	if nc == 0 {
		return
	}
	forEachTask(par, nc, func(c int) {
		lo, hi := chunkBounds(c, n)
		fn(c, lo, hi)
	})
}

// forEachTask runs fn(task) for task = 0..tasks-1 using up to par
// workers — the plain index-space pool behind forEachChunk, also used
// directly for non-chunked fan-out such as hash-bucket builds.
func forEachTask(par, tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	if par > tasks {
		par = tasks
	}
	if par <= 1 {
		for t := 0; t < tasks; t++ {
			fn(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				fn(t)
			}
		}()
	}
	wg.Wait()
}

// concatChunks assembles per-chunk row slices in chunk order — the
// deterministic merge step shared by the parallel operators.
func concatChunks(parts [][]relation.Row) []relation.Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]relation.Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
