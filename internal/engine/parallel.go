package engine

import (
	"sync"
	"sync/atomic"

	"deepsea/internal/relation"
)

// The data path is parallel at two levels that share one worker budget:
//
//   - intra-operator: filter, project, join probe and aggregate split
//     row ranges into fixed-size chunks and merge per-chunk results in
//     chunk order;
//   - inter-operator: independent sibling subplans — the two inputs of
//     a join, and the stored-fragment scans plus per-gap remainder
//     subplans under a ViewScan — evaluate concurrently.
//
// Chunk boundaries and merge order depend only on input sizes — never
// on the worker count or on which tokens happened to be free — so every
// output byte (including the association of floating-point partial
// sums) is identical for every Parallelism setting. Workers only change
// which goroutine evaluates a chunk or subplan.

// chunkRows is the fixed chunk granularity of the parallel data path.
// Small enough to load-balance skewed chunks across workers, large
// enough that per-chunk bookkeeping is noise.
const chunkRows = 4096

// budget is the shared worker budget of one plan execution: a single
// token pool that intra-operator chunk workers and inter-operator
// subplan tasks both draw from, so nested fan-out cannot multiply into
// a thread explosion — a Run uses at most Parallelism goroutines no
// matter how operators nest. Acquisition never blocks: a task that gets
// no token runs inline on its caller's goroutine, which also makes the
// scheme deadlock-free by construction.
type budget struct {
	// tokens holds the extra workers beyond the calling goroutine
	// (capacity Parallelism-1).
	tokens chan struct{}
	// workers is the configured Parallelism (>= 1). Sizing decisions
	// (join bucket counts) use it so data layouts stay fixed by
	// configuration, never by runtime token availability.
	workers int
}

// newBudget returns a budget for par workers (par <= 1 means fully
// sequential execution).
func newBudget(par int) *budget {
	if par < 1 {
		par = 1
	}
	return &budget{tokens: make(chan struct{}, par-1), workers: par}
}

// tryAcquire takes a worker token if one is free; it never blocks.
func (b *budget) tryAcquire() bool {
	if b == nil {
		return false
	}
	select {
	case b.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a token taken by tryAcquire.
func (b *budget) release() { <-b.tokens }

// par returns the configured worker count (1 for a nil budget).
func (b *budget) par() int {
	if b == nil {
		return 1
	}
	return b.workers
}

// numChunks returns how many fixed-size chunks n rows split into.
func numChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkRows - 1) / chunkRows
}

// chunkBounds returns the row range [lo, hi) of chunk c out of n rows.
func chunkBounds(c, n int) (lo, hi int) {
	lo = c * chunkRows
	hi = lo + chunkRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forEachChunk runs fn(chunk, lo, hi) over every fixed-size chunk of n
// rows, drawing extra workers from the budget. With a nil budget or no
// free tokens it runs inline on the calling goroutine. fn must be safe
// to call concurrently for distinct chunks; chunks are handed out
// dynamically so skewed chunks do not serialize the rest.
func forEachChunk(b *budget, n int, fn func(chunk, lo, hi int)) {
	nc := numChunks(n)
	if nc == 0 {
		return
	}
	forEachTask(b, nc, func(c int) {
		lo, hi := chunkBounds(c, n)
		fn(c, lo, hi)
	})
}

// forEachTask runs fn(task) for task = 0..tasks-1 — the plain
// index-space pool behind forEachChunk, also used directly for
// non-chunked fan-out such as hash-bucket builds and ViewScan unions.
// The calling goroutine always works; helper goroutines join only while
// the shared budget has free tokens, and return their tokens when the
// task space drains. Task results must be written to per-task slots so
// that the caller can merge them in task order.
func forEachTask(b *budget, tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			fn(t)
		}
	}
	var wg sync.WaitGroup
	for extra := 1; extra < tasks && b.tryAcquire(); extra++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.release()
			run()
		}()
	}
	run()
	wg.Wait()
}

// concatChunks assembles per-chunk row slices in chunk order — the
// deterministic merge step shared by the parallel operators.
func concatChunks(parts [][]relation.Row) []relation.Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]relation.Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
