package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"deepsea/internal/faults"
	"deepsea/internal/relation"
)

// The data path is parallel at two levels that share one worker budget:
//
//   - intra-operator: filter, project, join probe and aggregate split
//     row ranges into fixed-size chunks and merge per-chunk results in
//     chunk order;
//   - inter-operator: independent sibling subplans — the two inputs of
//     a join, and the stored-fragment scans plus per-gap remainder
//     subplans under a ViewScan — evaluate concurrently.
//
// Chunk boundaries and merge order depend only on input sizes — never
// on the worker count or on which tokens happened to be free — so every
// output byte (including the association of floating-point partial
// sums) is identical for every Parallelism setting. Workers only change
// which goroutine evaluates a chunk or subplan.

// chunkRows is the fixed chunk granularity of the parallel data path.
// Small enough to load-balance skewed chunks across workers, large
// enough that per-chunk bookkeeping is noise.
const chunkRows = 4096

// budget is the shared worker budget of one plan execution: a single
// token pool that intra-operator chunk workers and inter-operator
// subplan tasks both draw from, so nested fan-out cannot multiply into
// a thread explosion — a Run uses at most Parallelism goroutines no
// matter how operators nest. Acquisition never blocks: a task that gets
// no token runs inline on its caller's goroutine, which also makes the
// scheme deadlock-free by construction.
type budget struct {
	// tokens holds the extra workers beyond the calling goroutine
	// (capacity Parallelism-1).
	tokens chan struct{}
	// workers is the configured Parallelism (>= 1). Sizing decisions
	// (join bucket counts) use it so data layouts stay fixed by
	// configuration, never by runtime token availability.
	workers int

	// ctx, when non-nil, aborts the run: workers stop picking up tasks
	// once it is cancelled, and the run returns ctx.Err().
	ctx context.Context
	// faults, when non-nil, draws one Worker-site injection decision
	// per task.
	faults *faults.Injector

	// err records the first failure of the run — an injected worker
	// fault, a recovered worker panic, or the context's cancellation.
	// hasErr is its lock-free fast flag, checked once per task.
	hasErr atomic.Bool
	errMu  sync.Mutex
	err    error
}

// newBudget returns a budget for par workers (par <= 1 means fully
// sequential execution).
func newBudget(par int) *budget {
	if par < 1 {
		par = 1
	}
	return &budget{tokens: make(chan struct{}, par-1), workers: par}
}

// tryAcquire takes a worker token if one is free; it never blocks.
func (b *budget) tryAcquire() bool {
	if b == nil {
		return false
	}
	select {
	case b.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a token taken by tryAcquire.
func (b *budget) release() { <-b.tokens }

// par returns the configured worker count (1 for a nil budget).
func (b *budget) par() int {
	if b == nil {
		return 1
	}
	return b.workers
}

// fail records err as the run's failure if it is the first.
func (b *budget) fail(err error) {
	if b == nil || err == nil {
		return
	}
	b.errMu.Lock()
	if b.err == nil {
		b.err = err
		b.hasErr.Store(true)
	}
	b.errMu.Unlock()
}

// abortErr returns the error that should abort further work: the first
// recorded task failure, or the context's error once it is cancelled.
// Safe on a nil budget (sequential helpers and tests).
func (b *budget) abortErr() error {
	if b == nil {
		return nil
	}
	if b.hasErr.Load() {
		b.errMu.Lock()
		defer b.errMu.Unlock()
		return b.err
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			return b.ctx.Err()
		default:
		}
	}
	return nil
}

// numChunks returns how many fixed-size chunks n rows split into.
func numChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkRows - 1) / chunkRows
}

// chunkBounds returns the row range [lo, hi) of chunk c out of n rows.
func chunkBounds(c, n int) (lo, hi int) {
	lo = c * chunkRows
	hi = lo + chunkRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forEachChunk runs fn(chunk, lo, hi) over every fixed-size chunk of n
// rows, drawing extra workers from the budget. With a nil budget or no
// free tokens it runs inline on the calling goroutine. fn must be safe
// to call concurrently for distinct chunks; chunks are handed out
// dynamically so skewed chunks do not serialize the rest.
func forEachChunk(b *budget, n int, fn func(chunk, lo, hi int)) {
	nc := numChunks(n)
	if nc == 0 {
		return
	}
	forEachTask(b, nc, func(c int) {
		lo, hi := chunkBounds(c, n)
		fn(c, lo, hi)
	})
}

// forEachTask runs fn(task) for task = 0..tasks-1 — the plain
// index-space pool behind forEachChunk, also used directly for
// non-chunked fan-out such as hash-bucket builds and ViewScan unions.
// The calling goroutine always works; helper goroutines join only while
// the shared budget has free tokens, and return their tokens when the
// task space drains. Task results must be written to per-task slots so
// that the caller can merge them in task order.
//
// Failure semantics: once the budget records an error (cancelled
// context, injected worker fault, worker panic) no further tasks start;
// tasks already running finish. Panics inside fn are recovered into the
// budget's error, so helper goroutines always return their tokens and
// wg.Wait never hangs — the caller observes the failure via
// b.abortErr(), and must not trust the per-task slots after one. All
// spawned goroutines have joined by return, even on failure, so a run
// never leaks workers.
func forEachTask(b *budget, tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	var next atomic.Int64
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				b.fail(fmt.Errorf("engine: worker panic: %v", r))
			}
		}()
		for {
			if b.abortErr() != nil {
				return
			}
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			if b != nil && b.faults != nil {
				if err := b.faults.Check(faults.Worker, ""); err != nil {
					b.fail(fmt.Errorf("engine: worker task: %w", err))
					return
				}
			}
			fn(t)
		}
	}
	var wg sync.WaitGroup
	for extra := 1; extra < tasks && b.tryAcquire(); extra++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.release()
			run()
		}()
	}
	run()
	wg.Wait()
}

// concatChunks assembles per-chunk row slices in chunk order — the
// deterministic merge step shared by the parallel operators.
func concatChunks(parts [][]relation.Row) []relation.Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]relation.Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
