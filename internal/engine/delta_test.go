package engine

import (
	"reflect"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// deltaFixture builds an engine over a small fact + dim catalog with
// deliberately awkward float values (0.1 steps are not binary-exact, so
// a non-associative float fold would diverge across merge boundaries).
func deltaFixture(t *testing.T) *Engine {
	t.Helper()
	e := New(DefaultCostModel())
	fact := relation.NewTable(relation.Schema{Name: "fact", Cols: []relation.Column{
		{Name: "f_k", Type: relation.Int, Ordered: true, Lo: 0, Hi: 100, Width: 8},
		{Name: "f_g", Type: relation.Int, Width: 8},
		{Name: "f_v", Type: relation.Float, Width: 8},
	}})
	for i := 0; i < 400; i++ {
		fact.Append(relation.Row{
			relation.IntVal(int64(i % 100)),
			relation.IntVal(int64(i % 7)),
			relation.FloatVal(0.1 * float64(i%31)),
		})
	}
	dim := relation.NewTable(relation.Schema{Name: "dim", Cols: []relation.Column{
		{Name: "d_k", Type: relation.Int, Width: 8},
		{Name: "d_name", Type: relation.String, Width: 16},
	}})
	for i := 0; i < 100; i++ {
		dim.Append(relation.Row{
			relation.IntVal(int64(i)),
			relation.StringVal(string(rune('a' + i%26))),
		})
	}
	e.AddBaseTable(fact)
	e.AddBaseTable(dim)
	return e
}

func factDelta(n, seed int) []relation.Row {
	rows := make([]relation.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = relation.Row{
			relation.IntVal(int64((seed + 3*i) % 100)),
			relation.IntVal(int64((seed + i) % 7)),
			relation.FloatVal(0.1 * float64((seed+i)%37)),
		}
	}
	return rows
}

func deltaPlans(e *Engine) map[string]query.Node {
	factScan := func() *query.Scan { return query.NewScan("fact", e.BaseTable("fact").Schema) }
	dimScan := func() *query.Scan { return query.NewScan("dim", e.BaseTable("dim").Schema) }
	sel := func(c query.Node, lo, hi int64) query.Node {
		return &query.Select{Child: c, Ranges: []query.RangePred{{Col: "f_k", Iv: interval.Interval{Lo: lo, Hi: hi}}}}
	}
	join := func() query.Node {
		return &query.Join{Left: factScan(), Right: dimScan(), LCol: "f_k", RCol: "d_k"}
	}
	return map[string]query.Node{
		"filter-project": &query.Project{Child: sel(factScan(), 10, 80), Cols: []string{"f_k", "f_v"}},
		"join":           &query.Project{Child: sel(join(), 5, 90), Cols: []string{"f_k", "f_v", "d_name"}},
		"aggregate": &query.Aggregate{
			Child:   sel(join(), 0, 95),
			GroupBy: []string{"f_g"},
			Aggs: []query.AggSpec{
				{Func: query.Count, As: "n"},
				{Func: query.Sum, Col: "f_v", As: "sv"},
				{Func: query.Avg, Col: "f_v", As: "av"},
				{Func: query.Min, Col: "f_k", As: "mn"},
				{Func: query.Max, Col: "d_name", As: "mx"},
			},
		},
	}
}

// applyDelta folds a DeltaApply outcome into the old content the way a
// refresh would, returning the resulting view rows.
func applyDelta(t *testing.T, old *relation.Table, res DeltaResult) *relation.Table {
	t.Helper()
	switch res.Kind {
	case DeltaEmpty:
		return old
	case DeltaAppend:
		out := relation.NewTable(old.Schema)
		out.Rows = append(append([]relation.Row{}, old.Rows...), res.Rows.Rows...)
		return out
	case DeltaAgg:
		return res.Rows
	default:
		t.Fatalf("unexpected remat: %s", res.Reason)
		return nil
	}
}

// TestDeltaApplyMatchesRemat is the core incremental-maintenance
// property at the engine level: prime ∘ delta-apply over appended rows
// reproduces a from-scratch rematerialization byte for byte, for
// filter/project, join and aggregate plans, across several consecutive
// append rounds (so merged states carry across refreshes).
func TestDeltaApplyMatchesRemat(t *testing.T) {
	for name, mk := range deltaPlans(deltaFixture(t)) {
		t.Run(name, func(t *testing.T) {
			e := deltaFixture(t)
			plan := mk
			tables := query.BaseTables(plan)

			old, err := e.BaseSnapshots(tables)
			if err != nil {
				t.Fatal(err)
			}
			rp, _, err := e.PrimeRefresh(plan, old)
			if err != nil {
				t.Fatalf("prime: %v", err)
			}
			res0, err := e.Run(plan, nil)
			if err != nil {
				t.Fatal(err)
			}
			content := res0.Table

			for round := 0; round < 3; round++ {
				marks := make(map[string]int64, len(old))
				for n, tb := range old {
					marks[n] = int64(len(tb.Rows))
				}
				if _, err := e.AppendBase("fact", factDelta(57+round*13, round*11)); err != nil {
					t.Fatal(err)
				}
				snaps, err := e.BaseSnapshots(tables)
				if err != nil {
					t.Fatal(err)
				}
				deltas := make(map[string]*relation.Table)
				for n, tb := range snaps {
					d := relation.NewTable(tb.Schema)
					d.Rows = tb.Rows[marks[n]:]
					if len(d.Rows) > 0 {
						deltas[n] = d
					}
				}
				dres, err := e.DeltaApply(rp, snaps, deltas)
				if err != nil {
					t.Fatal(err)
				}
				if dres.Kind == DeltaRemat {
					t.Fatalf("round %d: unexpected remat: %s", round, dres.Reason)
				}
				content = applyDelta(t, content, dres)
				rp.Sizes = dres.Sizes
				if dres.Kind == DeltaAgg {
					rp.States = dres.States
				}
				old = snaps

				remat, err := e.Run(plan, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(content.Rows, remat.Table.Rows) {
					t.Fatalf("round %d: incremental content diverges from remat (%d vs %d rows)",
						round, len(content.Rows), len(remat.Table.Rows))
				}
			}
		})
	}
}

// TestDeltaApplyEmptyAndFiltered covers the two degenerate deltas: no
// appended rows at all, and appended rows that the plan's selection
// filters out entirely — both must report DeltaEmpty without touching
// content.
func TestDeltaApplyEmptyAndFiltered(t *testing.T) {
	e := deltaFixture(t)
	plan := deltaPlans(e)["filter-project"]
	tables := query.BaseTables(plan)
	old, _ := e.BaseSnapshots(tables)
	rp, _, err := e.PrimeRefresh(plan, old)
	if err != nil {
		t.Fatal(err)
	}

	res, err := e.DeltaApply(rp, old, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaEmpty {
		t.Fatalf("empty delta: got %s", res.Kind)
	}

	// Rows with f_k=99 fail the [10,80] range: a nonempty base delta
	// with an empty view delta.
	filtered := make([]relation.Row, 20)
	for i := range filtered {
		filtered[i] = relation.Row{relation.IntVal(99), relation.IntVal(0), relation.FloatVal(1.5)}
	}
	if _, err := e.AppendBase("fact", filtered); err != nil {
		t.Fatal(err)
	}
	snaps, _ := e.BaseSnapshots(tables)
	d := relation.NewTable(snaps["fact"].Schema)
	d.Rows = snaps["fact"].Rows[len(old["fact"].Rows):]
	res, err = e.DeltaApply(rp, snaps, map[string]*relation.Table{"fact": d})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaEmpty {
		t.Fatalf("all-filtered delta: got %s", res.Kind)
	}
}

// TestDeltaApplyRematFallbacks drives every condition under which the
// delta path must refuse: a delta on the join build side, an
// orientation flip, and both inputs changing.
func TestDeltaApplyRematFallbacks(t *testing.T) {
	e := deltaFixture(t)
	join := &query.Join{
		Left:  query.NewScan("fact", e.BaseTable("fact").Schema),
		Right: query.NewScan("dim", e.BaseTable("dim").Schema),
		LCol:  "f_k", RCol: "d_k",
	}
	tables := query.BaseTables(join)
	old, _ := e.BaseSnapshots(tables)
	rp, _, err := e.PrimeRefresh(join, old)
	if err != nil {
		t.Fatal(err)
	}

	// dim is the build side (100 < 400 rows): growing it must refuse.
	if _, err := e.AppendBase("dim", []relation.Row{{relation.IntVal(7), relation.StringVal("x")}}); err != nil {
		t.Fatal(err)
	}
	snaps, _ := e.BaseSnapshots(tables)
	dd := relation.NewTable(snaps["dim"].Schema)
	dd.Rows = snaps["dim"].Rows[100:]
	res, err := e.DeltaApply(rp, snaps, map[string]*relation.Table{"dim": dd})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaRemat {
		t.Fatalf("build-side delta: got %s", res.Kind)
	}

	// Both sides changing must refuse too.
	fd := relation.NewTable(snaps["fact"].Schema)
	fd.Rows = factDelta(3, 1)
	res, err = e.DeltaApply(rp, snaps, map[string]*relation.Table{"dim": dd, "fact": fd})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaRemat {
		t.Fatalf("both-sides delta: got %s", res.Kind)
	}

	// Orientation flip: prime with fact smaller than dim, then grow
	// fact past dim so hashJoin would switch its build side.
	e2 := New(DefaultCostModel())
	smallFact := relation.NewTable(e.BaseTable("fact").Schema)
	for i := 0; i < 50; i++ {
		smallFact.Append(relation.Row{relation.IntVal(int64(i)), relation.IntVal(0), relation.FloatVal(1)})
	}
	e2.AddBaseTable(smallFact)
	e2.AddBaseTable(e.BaseTable("dim"))
	old2, _ := e2.BaseSnapshots(tables)
	rp2, _, err := e2.PrimeRefresh(join, old2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.AppendBase("fact", factDelta(200, 5)); err != nil {
		t.Fatal(err)
	}
	snaps2, _ := e2.BaseSnapshots(tables)
	fd2 := relation.NewTable(snaps2["fact"].Schema)
	fd2.Rows = snaps2["fact"].Rows[50:]
	res, err = e2.DeltaApply(rp2, snaps2, map[string]*relation.Table{"fact": fd2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaRemat {
		t.Fatalf("orientation flip: got %s", res.Kind)
	}
}

// TestPartialRootDeltaStates checks the partial-aggregate-rooted path
// (the shard tier's view shape): the merged state table must equal a
// from-scratch partial re-aggregation byte for byte.
func TestPartialRootDeltaStates(t *testing.T) {
	e := deltaFixture(t)
	agg := deltaPlans(e)["aggregate"].(*query.Aggregate)
	pa := *agg
	pa.Partial = true
	plan := query.Node(&pa)
	tables := query.BaseTables(plan)

	old, _ := e.BaseSnapshots(tables)
	rp, _, err := e.PrimeRefresh(plan, old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendBase("fact", factDelta(80, 3)); err != nil {
		t.Fatal(err)
	}
	snaps, _ := e.BaseSnapshots(tables)
	fd := relation.NewTable(snaps["fact"].Schema)
	fd.Rows = snaps["fact"].Rows[400:]
	res, err := e.DeltaApply(rp, snaps, map[string]*relation.Table{"fact": fd})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaAgg {
		t.Fatalf("got %s (%s)", res.Kind, res.Reason)
	}
	remat, err := e.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows.Rows, remat.Table.Rows) {
		t.Fatal("merged partial states diverge from a partial remat")
	}
}
