package engine

import (
	"math/rand"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// TestPushDownEquivalence: for random plans over random data, the
// pushed-down plan must return exactly the rows of the original — the
// property the vanilla baseline's correctness rests on.
func TestPushDownEquivalence(t *testing.T) {
	e := testEngine()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		lo := rng.Int63n(90)
		hi := lo + rng.Int63n(100-lo)
		var plan query.Node = &query.Select{
			Child: &query.Project{
				Child: &query.Join{
					Left:  query.NewScan("sales", salesSchema()),
					Right: query.NewScan("item", itemSchema()),
					LCol:  "ss_item_sk",
					RCol:  "i_item_sk",
				},
				Cols: []string{"ss_item_sk", "i_category", "ss_price"},
			},
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(lo, hi)}},
		}
		if trial%2 == 0 {
			plan = &query.Aggregate{
				Child:   plan,
				GroupBy: []string{"i_category"},
				Aggs: []query.AggSpec{
					{Func: query.Count, As: "n"},
					{Func: query.Sum, Col: "ss_price", As: "total"},
				},
			}
		}
		if trial%3 == 0 {
			plan = addResidual(plan)
		}

		orig, err := e.Run(plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		pushed, err := e.Run(query.PushDownRanges(plan), nil)
		if err != nil {
			t.Fatal(err)
		}
		if orig.Table.Fingerprint() != pushed.Table.Fingerprint() {
			t.Fatalf("trial %d: pushdown changed the result (range [%d,%d])", trial, lo, hi)
		}
		// Pushdown must not make the plan more expensive: filtering
		// before the shuffle can only shrink intermediate work.
		if pushed.Cost.Seconds > orig.Cost.Seconds*1.01 {
			t.Errorf("trial %d: pushed plan costs %.1fs > original %.1fs",
				trial, pushed.Cost.Seconds, orig.Cost.Seconds)
		}
	}
}

func addResidual(n query.Node) query.Node {
	return &query.Select{Child: n, Residuals: []query.CmpPred{{
		Col: "i_category", Op: query.Ne,
		Val: relation.StringVal("books"), Typ: relation.String,
	}}}
}
