package matching

import (
	"fmt"
	"sync"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/signature"
)

// testEntry builds an entry whose family key depends on fam, so the
// stress test exercises both family growth and new-family creation.
func testEntry(fam, i int) *Entry {
	sig := &signature.Signature{
		Relations: []string{fmt.Sprintf("t%d", fam)},
		Ranges: map[string]interval.Interval{
			"a": {Lo: int64(i), Hi: int64(i + 1)},
		},
	}
	return &Entry{ID: fmt.Sprintf("f%d-e%04d", fam, i), Sig: sig}
}

// TestTreeConcurrentPublishRead is the epoch-publication stress test:
// writers add entries while readers hammer every read path. Run under
// -race this proves readers never observe a partially built tree; the
// in-test assertions prove every observed snapshot is internally
// consistent (sorted families, fully formed entries, monotone size).
func TestTreeConcurrentPublishRead(t *testing.T) {
	ft := NewFilterTree()
	const families = 4
	const perFamily = 200

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: candidates, lookup, entries, len — continuously.
	querySigs := make([]*signature.Signature, families)
	for f := 0; f < families; f++ {
		querySigs[f] = testEntry(f, 0).Sig
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastLen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := ft.Len()
				if n < lastLen {
					t.Errorf("tree shrank: %d -> %d", lastLen, n)
					return
				}
				lastLen = n
				fam := ft.Candidates(querySigs[r%families])
				for i, e := range fam {
					if e == nil || e.ID == "" || e.Sig == nil {
						t.Error("partially built entry observed")
						return
					}
					if i > 0 && fam[i-1].ID >= e.ID {
						t.Errorf("family not sorted: %q before %q", fam[i-1].ID, e.ID)
						return
					}
					if got, ok := ft.Lookup(e.ID); !ok || got != e {
						t.Errorf("lookup of published entry %q failed", e.ID)
						return
					}
				}
				all := ft.Entries()
				if len(all) < len(fam) {
					t.Errorf("Entries()=%d < family size %d", len(all), len(fam))
					return
				}
			}
		}(r)
	}

	// Writers: concurrent adds across families, including duplicate IDs
	// (which must stay no-ops).
	var ww sync.WaitGroup
	for f := 0; f < families; f++ {
		ww.Add(1)
		go func(f int) {
			defer ww.Done()
			for i := 0; i < perFamily; i++ {
				ft.Add(testEntry(f, i))
				if i%10 == 0 {
					ft.Add(testEntry(f, i)) // duplicate: no-op
				}
			}
		}(f)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := ft.Len(); got != families*perFamily {
		t.Fatalf("Len = %d, want %d", got, families*perFamily)
	}
	for f := 0; f < families; f++ {
		fam := ft.Candidates(querySigs[f])
		if len(fam) != perFamily {
			t.Fatalf("family %d has %d entries, want %d", f, len(fam), perFamily)
		}
	}
}
