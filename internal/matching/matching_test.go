package matching

import (
	"strings"
	"testing"

	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/partition"
	"deepsea/internal/pool"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/signature"
	"deepsea/internal/stats"
)

func salesSchema() relation.Schema {
	return relation.Schema{
		Name: "sales",
		Cols: []relation.Column{
			// Width scales each simulated row to ~1 MB so byte costs are
			// visible against per-task overheads (see relation.Column).
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99, Width: 1 << 19},
			{Name: "ss_price", Type: relation.Float, Width: 1 << 19},
		},
	}
}

func itemSchema() relation.Schema {
	return relation.Schema{
		Name: "item",
		Cols: []relation.Column{
			{Name: "i_item_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99},
			{Name: "i_category", Type: relation.String},
		},
	}
}

func joinPlan() *query.Join {
	return &query.Join{
		Left:  query.NewScan("sales", salesSchema()),
		Right: query.NewScan("item", itemSchema()),
		LCol:  "ss_item_sk",
		RCol:  "i_item_sk",
	}
}

func selPlan(lo, hi int64) query.Node {
	return &query.Select{
		Child:  joinPlan(),
		Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: interval.New(lo, hi)}},
	}
}

// harness bundles the rewriter with a populated engine.
type harness struct {
	eng *engine.Engine
	rw  *Rewriter
}

func newHarness(t *testing.T, smax int64) *harness {
	t.Helper()
	e := engine.New(engine.DefaultCostModel())
	sales := relation.NewTable(salesSchema())
	for i := 0; i < 2000; i++ {
		sales.Append(relation.Row{
			relation.IntVal(int64(i % 100)),
			relation.FloatVal(float64(i%13) + 0.25),
		})
	}
	e.AddBaseTable(sales)
	item := relation.NewTable(itemSchema())
	cats := []string{"books", "music", "video", "games"}
	for i := 0; i < 100; i++ {
		item.Append(relation.Row{relation.IntVal(int64(i)), relation.StringVal(cats[i%4])})
	}
	e.AddBaseTable(item)
	return &harness{
		eng: e,
		rw: &Rewriter{
			Eng:   e,
			Pool:  pool.New(smax),
			Stats: stats.NewRegistry(stats.Decay{}),
			Tree:  NewFilterTree(),
		},
	}
}

// indexJoinView registers the join view in the tree and stats, without
// materializing anything.
func (h *harness) indexJoinView(t *testing.T) *Entry {
	t.Helper()
	j := joinPlan()
	sig := signature.Of(j)
	entry := &Entry{ID: sig.Key(), Sig: sig, Schema: j.Schema()}
	h.rw.Tree.Add(entry)
	rows, bytes, err := h.eng.EstimateSize(j)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	vs := h.rw.Stats.View(entry.ID)
	vs.Size = bytes
	vs.Cost = 100
	return entry
}

// materializeFragments executes the join and stores fragments for the
// given intervals, registering them in the pool.
func (h *harness) materializeFragments(t *testing.T, entry *Entry, ivs []interval.Interval, overlapping bool) {
	t.Helper()
	res, err := h.eng.Run(joinPlan(), nil)
	if err != nil {
		t.Fatal(err)
	}
	view := res.Table
	pv := h.rw.Pool.Ensure(entry.ID, entry.Schema)
	part := partition.New(entry.ID, "ss_item_sk", interval.New(0, 99), overlapping)
	ai := view.Schema.ColIndex("ss_item_sk")
	for _, iv := range ivs {
		frag := relation.NewTable(view.Schema)
		for _, row := range view.Rows {
			if iv.Contains(row[ai].I) {
				frag.Append(row)
			}
		}
		path := "views/j/" + iv.String()
		h.eng.WriteMaterialized(path, frag)
		part.Add(partition.Fragment{Iv: iv, Path: path, Size: frag.Bytes()})
	}
	pv.Parts["ss_item_sk"] = part
}

func (h *harness) materializeUnpartitioned(t *testing.T, entry *Entry) {
	t.Helper()
	res, err := h.eng.Run(joinPlan(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pv := h.rw.Pool.Ensure(entry.ID, entry.Schema)
	pv.Path = "views/j/full"
	h.eng.WriteMaterialized(pv.Path, res.Table)
	pv.Size = res.Table.Bytes()
}

// cheapestPartitioned returns the lowest-cost pool-backed partitioned
// rewriting, mirroring SELECTREWRITING's choice.
func cheapestPartitioned(rws []Rewriting) *Rewriting {
	var best *Rewriting
	for i := range rws {
		if rws[i].UsesPool && rws[i].PartAttr != "" {
			if best == nil || rws[i].EstCost.Seconds < best.EstCost.Seconds {
				best = &rws[i]
			}
		}
	}
	return best
}

func TestFilterTreeFamilies(t *testing.T) {
	ft := NewFilterTree()
	j := joinPlan()
	sig := signature.Of(j)
	e := &Entry{ID: sig.Key(), Sig: sig, Schema: j.Schema()}
	ft.Add(e)
	ft.Add(e) // idempotent
	if ft.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ft.Len())
	}
	if got, ok := ft.Lookup(sig.Key()); !ok || got != e {
		t.Fatal("Lookup failed")
	}
	// Same family: a selection over the join.
	qsig := signature.Of(selPlan(10, 20))
	if len(ft.Candidates(qsig)) != 1 {
		t.Error("selection over join not in join's family")
	}
	// Different family: single-table scan.
	ssig := signature.Of(query.NewScan("sales", salesSchema()))
	if len(ft.Candidates(ssig)) != 0 {
		t.Error("scan matched join family")
	}
}

func TestNoRewritingsWithoutViews(t *testing.T) {
	h := newHarness(t, 0)
	rws, orig, err := h.rw.ComputeRewritings(selPlan(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 0 {
		t.Errorf("rewritings = %d, want 0", len(rws))
	}
	if orig.Seconds <= 0 {
		t.Error("original cost not estimated")
	}
}

func TestVirtualRewritingForUnmaterializedView(t *testing.T) {
	h := newHarness(t, 0)
	h.indexJoinView(t)
	rws, orig, err := h.rw.ComputeRewritings(selPlan(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Both the select node and the bare join node match the join view.
	if len(rws) != 2 {
		t.Fatalf("rewritings = %d, want 2 virtual", len(rws))
	}
	for _, rw := range rws {
		if rw.UsesPool {
			t.Error("virtual rewriting claims pool usage")
		}
		if rw.EstCost.Seconds <= 0 || rw.EstCost.Seconds >= orig.Seconds {
			t.Errorf("virtual rewriting cost %.2f vs original %.2f: view should be cheaper",
				rw.EstCost.Seconds, orig.Seconds)
		}
	}
}

func TestPartitionedRewritingFullCover(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	ivs := []interval.Interval{interval.New(0, 30), interval.New(31, 60), interval.New(61, 99)}
	h.materializeFragments(t, entry, ivs, false)

	plan := selPlan(35, 55)
	rws, orig, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	part := cheapestPartitioned(rws)
	if part == nil {
		t.Fatal("no partitioned rewriting produced")
	}
	if part.HasRemainder {
		t.Error("full cover should have no remainder")
	}
	if len(part.CoverFrags) != 1 || part.CoverFrags[0] != interval.New(31, 60) {
		t.Errorf("cover = %v, want [[31,60]]", part.CoverFrags)
	}
	if part.EstCost.Seconds >= orig.Seconds {
		t.Errorf("rewriting cost %.2f >= original %.2f", part.EstCost.Seconds, orig.Seconds)
	}

	// Executing the rewritten plan must produce the original result.
	want, err := h.eng.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.eng.Run(part.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("rewritten plan result differs from original")
	}
}

func TestPartitionedRewritingWithRemainder(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	// Hole between 31 and 60 (fragment evicted).
	ivs := []interval.Interval{interval.New(0, 30), interval.New(61, 99)}
	h.materializeFragments(t, entry, ivs, false)

	plan := selPlan(20, 70)
	rws, _, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	part := cheapestPartitioned(rws)
	if part == nil {
		t.Fatal("no partitioned rewriting produced")
	}
	if !part.HasRemainder {
		t.Error("expected remainder for the evicted range")
	}
	want, err := h.eng.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.eng.Run(part.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("remainder rewriting result differs from original")
	}
}

func TestOverlappingPartitionRewriting(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	ivs := []interval.Interval{interval.New(0, 50), interval.New(40, 99), interval.New(45, 70)}
	h.materializeFragments(t, entry, ivs, true)

	plan := selPlan(30, 80)
	rws, _, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	part := cheapestPartitioned(rws)
	if part == nil {
		t.Fatal("no partitioned rewriting produced")
	}
	want, err := h.eng.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.eng.Run(part.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("overlapping cover produced wrong rows")
	}
}

func TestUnpartitionedRewriting(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	h.materializeUnpartitioned(t, entry)

	plan := selPlan(10, 20)
	rws, _, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	var unpart *Rewriting
	for i := range rws {
		if rws[i].UsesPool && rws[i].PartAttr == "" {
			unpart = &rws[i]
		}
	}
	if unpart == nil {
		t.Fatal("no unpartitioned rewriting produced")
	}
	want, err := h.eng.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.eng.Run(unpart.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Fingerprint() != want.Table.Fingerprint() {
		t.Error("unpartitioned rewriting result differs")
	}
}

func TestPartitionedBeatsUnpartitionedForSelectiveQueries(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	h.materializeUnpartitioned(t, entry)
	ivs := []interval.Interval{
		interval.New(0, 24), interval.New(25, 49),
		interval.New(50, 74), interval.New(75, 99),
	}
	h.materializeFragments(t, entry, ivs, false)

	rws, _, err := h.rw.ComputeRewritings(selPlan(30, 40))
	if err != nil {
		t.Fatal(err)
	}
	var pCost, uCost float64
	for _, rw := range rws {
		if !rw.UsesPool {
			continue
		}
		if rw.PartAttr != "" {
			if pCost == 0 || rw.EstCost.Seconds < pCost {
				pCost = rw.EstCost.Seconds
			}
		} else if uCost == 0 || rw.EstCost.Seconds < uCost {
			uCost = rw.EstCost.Seconds
		}
	}
	if pCost <= 0 || uCost <= 0 {
		t.Fatal("missing rewriting")
	}
	if pCost >= uCost {
		t.Errorf("partitioned cost %.2f >= unpartitioned %.2f for 11%% selection", pCost, uCost)
	}
}

func TestAggregateQueryMatchesAggregateView(t *testing.T) {
	h := newHarness(t, 0)
	agg := &query.Aggregate{
		Child:   joinPlan(),
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "total"}},
	}
	sig := signature.Of(agg)
	entry := &Entry{ID: sig.Key(), Sig: sig, Schema: agg.Schema()}
	h.rw.Tree.Add(entry)
	res, err := h.eng.Run(agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pv := h.rw.Pool.Ensure(entry.ID, entry.Schema)
	pv.Path = "views/agg/full"
	h.eng.WriteMaterialized(pv.Path, res.Table)
	pv.Size = res.Table.Bytes()

	// Same aggregate as a fresh plan must match and produce equal rows.
	agg2 := &query.Aggregate{
		Child:   joinPlan(),
		GroupBy: []string{"i_category"},
		Aggs:    []query.AggSpec{{Func: query.Sum, Col: "ss_price", As: "total"}},
	}
	rws, _, err := h.rw.ComputeRewritings(agg2)
	if err != nil {
		t.Fatal(err)
	}
	var found *Rewriting
	for i := range rws {
		if rws[i].UsesPool {
			found = &rws[i]
		}
	}
	if found == nil {
		t.Fatal("aggregate view not matched")
	}
	got, err := h.eng.Run(found.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Fingerprint() != res.Table.Fingerprint() {
		t.Error("aggregate view rewriting differs")
	}
}

func TestRewritingsAreDeterministic(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	h.materializeFragments(t, entry,
		[]interval.Interval{interval.New(0, 49), interval.New(50, 99)}, false)
	plan := selPlan(10, 90)
	a, _, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ViewID != b[i].ViewID || a[i].PartAttr != b[i].PartAttr ||
			!strings.EqualFold(a[i].Plan.String(), b[i].Plan.String()) {
			t.Fatalf("nondeterministic rewriting %d", i)
		}
	}
}

// TestMultipleViewsCompete indexes several views of the same family with
// different range restrictions; the matcher must offer only the sound
// ones and the executable rewritings must all be correct.
func TestMultipleViewsCompete(t *testing.T) {
	h := newHarness(t, 0)
	// Three stored selections of the join, progressively narrower.
	ranges := []interval.Interval{
		interval.New(0, 99), interval.New(20, 79), interval.New(40, 59),
	}
	res, err := h.eng.Run(joinPlan(), nil)
	if err != nil {
		t.Fatal(err)
	}
	full := res.Table
	ai := full.Schema.ColIndex("ss_item_sk")
	for _, iv := range ranges {
		sub := &query.Select{Child: joinPlan(),
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: iv}}}
		sig := signature.Of(sub)
		entry := &Entry{ID: sig.Key(), Sig: sig, Schema: sub.Schema()}
		h.rw.Tree.Add(entry)
		vs := h.rw.Stats.View(entry.ID)
		tbl := relation.NewTable(full.Schema)
		for _, row := range full.Rows {
			if iv.Contains(row[ai].I) {
				tbl.Append(row)
			}
		}
		path := "views/sel/" + iv.String()
		h.eng.WriteMaterialized(path, tbl)
		pv := h.rw.Pool.Ensure(entry.ID, entry.Schema)
		pv.Path = path
		pv.Size = tbl.Bytes()
		vs.Size = tbl.Bytes()
		vs.Cost = 10
	}

	// A query with range [45,55] is answerable by all three views; the
	// narrowest should be cheapest, and every rewriting must be correct.
	plan := selPlan(45, 55)
	want, err := h.eng.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	rws, _, err := h.rw.ComputeRewritings(plan)
	if err != nil {
		t.Fatal(err)
	}
	var poolRWs int
	bestCost := -1.0
	var bestPath string
	for _, rw := range rws {
		if !rw.UsesPool {
			continue
		}
		poolRWs++
		got, err := h.eng.Run(rw.Plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Table.Fingerprint() != want.Table.Fingerprint() {
			t.Fatalf("rewriting over %.40s wrong result", rw.ViewID)
		}
		if bestCost < 0 || rw.EstCost.Seconds < bestCost {
			bestCost = rw.EstCost.Seconds
			bestPath = rw.ViewID
		}
	}
	if poolRWs < 3 {
		t.Fatalf("only %d pool rewritings, want at least 3", poolRWs)
	}
	if !strings.Contains(bestPath, "[40,59]") {
		t.Errorf("cheapest rewriting uses %.80s, want the narrowest view", bestPath)
	}

	// A query wider than the narrow views must reject them and still be
	// answerable by the widest.
	wide := selPlan(10, 90)
	rws2, _, err := h.rw.ComputeRewritings(wide)
	if err != nil {
		t.Fatal(err)
	}
	usable := 0
	for _, rw := range rws2 {
		if rw.UsesPool {
			usable++
			if strings.Contains(rw.ViewID, "[40,59]") {
				t.Error("too-narrow view offered for a wide query")
			}
		}
	}
	if usable == 0 {
		t.Error("wide query found no usable view")
	}
}

// BenchmarkComputeRewritings measures matching latency with a populated
// index and partitioned pool — the per-query planning overhead.
func BenchmarkComputeRewritings(b *testing.B) {
	h := newHarnessB(b)
	entry := h.indexJoinViewB(b)
	ivs := []interval.Interval{
		interval.New(0, 24), interval.New(25, 49),
		interval.New(50, 74), interval.New(75, 99),
	}
	h.materializeFragmentsB(b, entry, ivs)
	plan := selPlan(30, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.rw.ComputeRewritings(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark-friendly harness constructors (testing.B variants).
func newHarnessB(b *testing.B) *harness {
	b.Helper()
	e := engine.New(engine.DefaultCostModel())
	sales := relation.NewTable(salesSchema())
	for i := 0; i < 2000; i++ {
		sales.Append(relation.Row{
			relation.IntVal(int64(i % 100)),
			relation.FloatVal(float64(i%13) + 0.25),
		})
	}
	e.AddBaseTable(sales)
	item := relation.NewTable(itemSchema())
	cats := []string{"books", "music", "video", "games"}
	for i := 0; i < 100; i++ {
		item.Append(relation.Row{relation.IntVal(int64(i)), relation.StringVal(cats[i%4])})
	}
	e.AddBaseTable(item)
	return &harness{
		eng: e,
		rw: &Rewriter{
			Eng:   e,
			Pool:  pool.New(0),
			Stats: stats.NewRegistry(stats.Decay{}),
			Tree:  NewFilterTree(),
		},
	}
}

func (h *harness) indexJoinViewB(b *testing.B) *Entry {
	b.Helper()
	j := joinPlan()
	sig := signature.Of(j)
	entry := &Entry{ID: sig.Key(), Sig: sig, Schema: j.Schema()}
	h.rw.Tree.Add(entry)
	_, bytes, err := h.eng.EstimateSize(j)
	if err != nil {
		b.Fatal(err)
	}
	vs := h.rw.Stats.View(entry.ID)
	vs.Size = bytes
	vs.Cost = 100
	return entry
}

func (h *harness) materializeFragmentsB(b *testing.B, entry *Entry, ivs []interval.Interval) {
	b.Helper()
	res, err := h.eng.Run(joinPlan(), nil)
	if err != nil {
		b.Fatal(err)
	}
	view := res.Table
	pv := h.rw.Pool.Ensure(entry.ID, entry.Schema)
	part := partition.New(entry.ID, "ss_item_sk", interval.New(0, 99), false)
	ai := view.Schema.ColIndex("ss_item_sk")
	for _, iv := range ivs {
		frag := relation.NewTable(view.Schema)
		for _, row := range view.Rows {
			if iv.Contains(row[ai].I) {
				frag.Append(row)
			}
		}
		path := "views/j/" + iv.String()
		h.eng.WriteMaterialized(path, frag)
		part.Add(partition.Fragment{Iv: iv, Path: path, Size: frag.Bytes()})
	}
	pv.Parts["ss_item_sk"] = part
}

// TestPhysicalMatchingSkipsCompensatedRewritings: with PhysicalOnly,
// only exact-signature matches are offered (ReStore-style); matches
// that would need compensating selections are dropped.
func TestPhysicalMatchingSkipsCompensatedRewritings(t *testing.T) {
	h := newHarness(t, 0)
	entry := h.indexJoinView(t)
	h.materializeUnpartitioned(t, entry)
	h.rw.PhysicalOnly = true

	// The query's select node would need a compensating range (view has
	// none), so physical matching must reject it; the bare join node is
	// an exact match and stays.
	rws, _, err := h.rw.ComputeRewritings(selPlan(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range rws {
		if _, isSel := rw.Target.(*query.Select); isSel {
			t.Error("physical matching offered a compensated rewriting")
		}
	}
	if len(rws) == 0 {
		t.Error("exact-signature match missing under physical matching")
	}

	h.rw.PhysicalOnly = false
	rws2, _, err := h.rw.ComputeRewritings(selPlan(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rws2) <= len(rws) {
		t.Error("logical matching did not offer more rewritings than physical")
	}
}
