// Package matching implements DeepSea's view and partition matching
// (Section 8): a filter-tree index over view signatures, enumeration of
// rewritings of a query using (partitioned) views, fragment-cover
// construction via Algorithm 2, and remainder-plan generation for
// partially covered selection ranges.
package matching

import (
	"sort"
	"sync"

	"deepsea/internal/relation"
	"deepsea/internal/signature"
)

// Entry is one indexed view: its identity, signature, and output schema.
type Entry struct {
	// ID is the view's signature key.
	ID string
	// Sig is the view's signature.
	Sig *signature.Signature
	// Schema is the view's output schema (with domain metadata).
	Schema relation.Schema
}

// FilterTree indexes view signatures for fast candidate pruning. The
// original filter tree of Goldstein and Larson is a multi-level trie
// keyed by signature parts (relations, then join predicates, ...); since
// our sufficient condition requires those parts to be *equal* between
// view and query, the trie collapses to a hash on the combined family key
// — same pruning power, simpler structure. Detailed range/residual/
// output checks run only within the matching family.
// FilterTree methods are safe for concurrent use; entries themselves are
// immutable once added.
type FilterTree struct {
	mu       sync.RWMutex
	families map[string][]*Entry
	byID     map[string]*Entry
}

// NewFilterTree returns an empty index.
func NewFilterTree() *FilterTree {
	return &FilterTree{
		families: make(map[string][]*Entry),
		byID:     make(map[string]*Entry),
	}
}

// Add indexes a view entry. Adding an already-indexed ID is a no-op.
func (ft *FilterTree) Add(e *Entry) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if _, ok := ft.byID[e.ID]; ok {
		return
	}
	ft.byID[e.ID] = e
	fam := e.Sig.FamilyKey()
	ft.families[fam] = append(ft.families[fam], e)
	sort.Slice(ft.families[fam], func(i, j int) bool {
		return ft.families[fam][i].ID < ft.families[fam][j].ID
	})
}

// Lookup returns the entry with the given ID.
func (ft *FilterTree) Lookup(id string) (*Entry, bool) {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	e, ok := ft.byID[id]
	return e, ok
}

// Len returns the number of indexed views.
func (ft *FilterTree) Len() int {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	return len(ft.byID)
}

// Entries returns every indexed entry, sorted by ID — the persistence
// boundary walks this to snapshot the index.
func (ft *FilterTree) Entries() []*Entry {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	out := make([]*Entry, 0, len(ft.byID))
	for _, e := range ft.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates returns the entries whose family matches the query
// signature — the survivors of the index's pruning, still subject to the
// detailed sufficient condition. The returned slice is a copy, so a
// concurrent Add cannot invalidate it under the caller.
func (ft *FilterTree) Candidates(q *signature.Signature) []*Entry {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	return append([]*Entry(nil), ft.families[q.FamilyKey()]...)
}
