// Package matching implements DeepSea's view and partition matching
// (Section 8): a filter-tree index over view signatures, enumeration of
// rewritings of a query using (partitioned) views, fragment-cover
// construction via Algorithm 2, and remainder-plan generation for
// partially covered selection ranges.
package matching

import (
	"sort"
	"sync"
	"sync/atomic"

	"deepsea/internal/relation"
	"deepsea/internal/signature"
)

// Entry is one indexed view: its identity, signature, and output schema.
type Entry struct {
	// ID is the view's signature key.
	ID string
	// Sig is the view's signature.
	Sig *signature.Signature
	// Schema is the view's output schema (with domain metadata).
	Schema relation.Schema
}

// treeState is one immutable epoch of the index. Readers load it with a
// single atomic pointer read and then work on maps and slices that no
// writer will ever mutate again — a reader can never observe a
// partially built tree, whatever the interleaving.
type treeState struct {
	families map[string][]*Entry
	byID     map[string]*Entry
}

// FilterTree indexes view signatures for fast candidate pruning. The
// original filter tree of Goldstein and Larson is a multi-level trie
// keyed by signature parts (relations, then join predicates, ...); since
// our sufficient condition requires those parts to be *equal* between
// view and query, the trie collapses to a hash on the combined family key
// — same pruning power, simpler structure. Detailed range/residual/
// output checks run only within the matching family.
//
// Concurrency: the index is epoch-published. The current state lives
// behind an atomic pointer to an immutable treeState; every lookup is a
// single lock-free load. Writers (candidate registration under the
// planning lock, the maintenance committer) serialize on writeMu, build
// a copy-on-write successor state, and publish it atomically. Entries
// themselves are immutable once added.
type FilterTree struct {
	writeMu sync.Mutex
	state   atomic.Pointer[treeState]
}

// NewFilterTree returns an empty index.
func NewFilterTree() *FilterTree {
	ft := &FilterTree{}
	ft.state.Store(&treeState{
		families: make(map[string][]*Entry),
		byID:     make(map[string]*Entry),
	})
	return ft
}

// Add indexes a view entry: copy-on-write of the affected family, then
// an atomic publish. Adding an already-indexed ID is a no-op.
func (ft *FilterTree) Add(e *Entry) {
	ft.writeMu.Lock()
	defer ft.writeMu.Unlock()
	cur := ft.state.Load()
	if _, ok := cur.byID[e.ID]; ok {
		return
	}
	next := &treeState{
		families: make(map[string][]*Entry, len(cur.families)+1),
		byID:     make(map[string]*Entry, len(cur.byID)+1),
	}
	for k, v := range cur.families {
		next.families[k] = v // published slices are immutable; share them
	}
	for k, v := range cur.byID {
		next.byID[k] = v
	}
	next.byID[e.ID] = e
	famKey := e.Sig.FamilyKey()
	fam := make([]*Entry, 0, len(cur.families[famKey])+1)
	fam = append(fam, cur.families[famKey]...)
	fam = append(fam, e)
	sort.Slice(fam, func(i, j int) bool { return fam[i].ID < fam[j].ID })
	next.families[famKey] = fam
	ft.state.Store(next)
}

// Lookup returns the entry with the given ID. Lock-free.
func (ft *FilterTree) Lookup(id string) (*Entry, bool) {
	e, ok := ft.state.Load().byID[id]
	return e, ok
}

// Len returns the number of indexed views. Lock-free.
func (ft *FilterTree) Len() int {
	return len(ft.state.Load().byID)
}

// Entries returns every indexed entry, sorted by ID — the persistence
// boundary walks this to snapshot the index. Lock-free and consistent:
// all entries come from one published epoch.
func (ft *FilterTree) Entries() []*Entry {
	st := ft.state.Load()
	out := make([]*Entry, 0, len(st.byID))
	for _, e := range st.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates returns the entries whose family matches the query
// signature — the survivors of the index's pruning, still subject to the
// detailed sufficient condition. Lock-free. The returned slice is a
// copy, so callers may reorder or extend it freely.
func (ft *FilterTree) Candidates(q *signature.Signature) []*Entry {
	return append([]*Entry(nil), ft.state.Load().families[q.FamilyKey()]...)
}
