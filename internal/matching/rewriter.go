package matching

import (
	"fmt"
	"sort"

	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/pool"
	"deepsea/internal/query"
	"deepsea/internal/signature"
	"deepsea/internal/stats"
)

// Rewriting is one way of answering (part of) a query with a view.
type Rewriting struct {
	// ViewID is the matched view.
	ViewID string
	// Target is the query subtree the view replaces.
	Target query.Node
	// Plan is the full rewritten plan. Virtual rewritings (view not in
	// the pool, used only for benefit bookkeeping) still carry a plan so
	// their cost can be estimated, but must never be executed.
	Plan query.Node
	// EstCost is the estimated cost of Plan.
	EstCost engine.Cost
	// UsesPool reports whether every file the plan reads is
	// materialized; only such rewritings are executable.
	UsesPool bool
	// PartAttr is the partition attribute used ("" when the view is read
	// unpartitioned).
	PartAttr string
	// Needed is the range of PartAttr the query requires (the partition
	// attribute's whole domain when the query does not restrict it).
	Needed interval.Interval
	// CoverFrags lists the intervals of the materialized fragments
	// chosen by Algorithm 2 (empty for unpartitioned or virtual use).
	CoverFrags []interval.Interval
	// HasRemainder reports whether uncovered gaps are computed from base
	// data.
	HasRemainder bool
	// Gaps lists the uncovered subranges, parallel to Remainders.
	Gaps []interval.Interval
	// Remainders lists the remainder plans inserted for the gaps.
	Remainders []query.Node
	// GapsArePure reports whether each remainder's output is exactly the
	// view's content over its gap (no residual/projection compensation
	// involved), so a captured remainder can be materialized directly as
	// the missing fragment.
	GapsArePure bool
}

// Rewriter enumerates rewritings of queries over the current pool and
// statistics.
type Rewriter struct {
	Eng   *engine.Engine
	Pool  *pool.Pool
	Stats *stats.Registry
	Tree  *FilterTree
	// PhysicalOnly restricts matching to exact signature equality (no
	// compensation) — ReStore-style physical matching.
	PhysicalOnly bool
	// Stale, when non-nil, reports views whose stored content lags their
	// base tables (a pending ingest refresh). A stale view's pool
	// content is skipped — rewriting through it would serve rows missing
	// the appended suffix — but its virtual rewriting still accumulates
	// statistics, so the view stays a live candidate.
	Stale func(id string) bool
}

// ComputeRewritings implements COMPUTEREWRITINGS of Algorithm 1: it
// matches every subtree of root against the indexed views and constructs
// a rewriting per usable (view, partition) pair, plus a virtual rewriting
// for each matched view that is not usable from the pool (so its
// statistics still accumulate the benefit it would have provided). The
// original plan's estimated cost is returned alongside.
func (r *Rewriter) ComputeRewritings(root query.Node) ([]Rewriting, engine.Cost, error) {
	origCost, err := r.Eng.EstimateCost(root)
	if err != nil {
		return nil, engine.Cost{}, err
	}
	var out []Rewriting
	var nodes []query.Node
	query.Walk(root, func(n query.Node) {
		if _, ok := n.(*query.ViewScan); !ok {
			nodes = append(nodes, n)
		}
	})
	for _, n := range nodes {
		qsig := signature.Of(n)
		for _, entry := range r.Tree.Candidates(qsig) {
			comp, ok := signature.Match(entry.Sig, qsig)
			if !ok {
				continue
			}
			if r.PhysicalOnly && (len(comp.Ranges) > 0 || len(comp.Residuals) > 0 || comp.Project != nil) {
				continue // physical matching: the stored result must be the query verbatim
			}
			rws, err := r.buildRewritings(root, n, entry, comp)
			if err != nil {
				return nil, engine.Cost{}, err
			}
			out = append(out, rws...)
		}
	}
	return out, origCost, nil
}

// buildRewritings constructs the rewritings for one matched (view,
// subtree) pair: one per partition of the view in the pool, one for the
// unpartitioned file if stored, and a virtual one when nothing in the
// pool can serve the match.
func (r *Rewriter) buildRewritings(root, target query.Node, entry *Entry, comp signature.Compensation) ([]Rewriting, error) {
	var out []Rewriting
	pv := r.Pool.View(entry.ID)
	if pv != nil && r.Stale != nil && r.Stale(entry.ID) {
		pv = nil // stale content must not serve queries; fall through to virtual
	}
	if pv != nil {
		attrs := make([]string, 0, len(pv.Parts))
		for a := range pv.Parts {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, attr := range attrs {
			rw, ok, err := r.buildPartitioned(root, target, entry, comp, attr)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, rw)
			}
		}
		if pv.Path != "" {
			rw, err := r.buildUnpartitioned(root, target, entry, comp, pv.Path, pv.Size, true)
			if err != nil {
				return nil, err
			}
			out = append(out, rw)
		}
	}
	if len(out) == 0 {
		// Nothing usable in the pool: virtual rewriting for bookkeeping.
		vstat, ok := r.Stats.LookupView(entry.ID)
		if !ok || vstat.Size <= 0 {
			return nil, nil // no size estimate yet; skip
		}
		rw, err := r.buildUnpartitioned(root, target, entry, comp,
			"virtual://"+entry.ID, vstat.Size, false)
		if err != nil {
			return nil, err
		}
		out = append(out, rw)
	}
	return out, nil
}

func (r *Rewriter) buildUnpartitioned(root, target query.Node, entry *Entry, comp signature.Compensation, path string, size int64, inPool bool) (Rewriting, error) {
	vs := r.newViewScan(target, entry, comp)
	vs.ViewPath = path
	if !inPool {
		vs.ViewBytes = size
	}
	plan := query.Replace(root, target, vs)
	cost, err := r.Eng.EstimateCost(plan)
	if err != nil {
		return Rewriting{}, fmt.Errorf("matching: estimating unpartitioned rewriting over %s: %w", entry.ID, err)
	}
	return Rewriting{
		ViewID:   entry.ID,
		Target:   target,
		Plan:     plan,
		EstCost:  cost,
		UsesPool: inPool,
	}, nil
}

// buildPartitioned constructs a rewriting that reads a fragment cover of
// the needed range, with remainder plans for any gaps. It returns
// ok=false when the partition cannot serve the query (gaps exist but the
// partition attribute is not in the target's output, so no remainder
// selection can be placed on top of it).
func (r *Rewriter) buildPartitioned(root, target query.Node, entry *Entry, comp signature.Compensation, attr string) (Rewriting, bool, error) {
	pv := r.Pool.View(entry.ID)
	part := pv.Parts[attr]
	if part == nil || part.NumFragments() == 0 {
		return Rewriting{}, false, nil
	}
	needed := part.Dom
	for _, rp := range comp.Ranges {
		if rp.Col == attr {
			iv, ok := rp.Iv.Intersect(part.Dom)
			if !ok {
				return Rewriting{}, false, nil // query needs nothing in-domain
			}
			needed = iv
		}
	}
	frags, reads, gaps := part.Cover(needed)
	if len(frags) == 0 && len(gaps) == 0 {
		return Rewriting{}, false, nil
	}
	targetSchema := target.Schema()
	if len(gaps) > 0 && !targetSchema.Has(attr) {
		return Rewriting{}, false, nil
	}

	vs := r.newViewScan(target, entry, comp)
	vs.PartAttr = attr
	for i, f := range frags {
		vs.FragIDs = append(vs.FragIDs, f.Path)
		vs.Reads = append(vs.Reads, reads[i])
		vs.FragIvs = append(vs.FragIvs, f.Iv)
		vs.FragSizes = append(vs.FragSizes, f.Size)
	}
	var coverIvs []interval.Interval
	for _, f := range frags {
		coverIvs = append(coverIvs, f.Iv)
	}
	for _, g := range gaps {
		vs.Remainders = append(vs.Remainders, &query.Select{
			Child:  target,
			Ranges: []query.RangePred{{Col: attr, Iv: g}},
		})
	}
	if len(frags) == 0 {
		// Cover is entirely remainder; reading zero fragments is legal
		// but the ViewScan must still know its schema source. Treat as
		// not usable — the rewriting would be the original query plus
		// overhead.
		return Rewriting{}, false, nil
	}

	plan := query.Replace(root, target, vs)
	cost, err := r.Eng.EstimateCost(plan)
	if err != nil {
		return Rewriting{}, false, fmt.Errorf("matching: estimating partitioned rewriting over %s.%s: %w", entry.ID, attr, err)
	}
	pure := len(comp.Residuals) == 0 && comp.Project == nil && vs.CompProject == nil
	for _, rp := range comp.Ranges {
		if rp.Col != attr {
			pure = false
		}
	}
	return Rewriting{
		ViewID:       entry.ID,
		Target:       target,
		Plan:         plan,
		EstCost:      cost,
		UsesPool:     true,
		PartAttr:     attr,
		Needed:       needed,
		CoverFrags:   coverIvs,
		HasRemainder: len(gaps) > 0,
		Gaps:         gaps,
		Remainders:   vs.Remainders,
		GapsArePure:  pure,
	}, true, nil
}

// newViewScan builds the ViewScan skeleton shared by all rewriting
// shapes: view identity, schema, and compensation. When the view's
// output column order differs from the target's, an explicit projection
// restores the target's order so parents and result fingerprints see
// identical layouts.
func (r *Rewriter) newViewScan(target query.Node, entry *Entry, comp signature.Compensation) *query.ViewScan {
	vs := &query.ViewScan{
		ViewID:        entry.ID,
		ViewSchema:    entry.Schema,
		CompRanges:    comp.Ranges,
		CompResiduals: comp.Residuals,
		CompProject:   comp.Project,
	}
	if vs.CompProject == nil {
		ts := target.Schema()
		sameOrder := len(ts.Cols) == len(entry.Schema.Cols)
		if sameOrder {
			for i := range ts.Cols {
				if ts.Cols[i].Name != entry.Schema.Cols[i].Name {
					sameOrder = false
					break
				}
			}
		}
		if !sameOrder {
			cols := make([]string, len(ts.Cols))
			for i, c := range ts.Cols {
				cols[i] = c.Name
			}
			vs.CompProject = cols
		}
	}
	return vs
}
