package relation

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Fingerprint returns an order-independent digest of the table's rows.
// Two tables with the same multiset of rows produce equal fingerprints
// regardless of row order. Tests use it to check that rewritten plans
// (views, fragment covers, remainder unions) return exactly the rows of
// the original plan.
func (t *Table) Fingerprint() string {
	keys := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func rowKey(r Row) string {
	buf := make([]byte, 0, len(r)*10)
	for _, v := range r {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.I))
		buf = append(buf, b[:]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		buf = append(buf, b[:]...)
		buf = append(buf, v.S...)
		buf = append(buf, 0x1f)
	}
	return string(buf)
}
