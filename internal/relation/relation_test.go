package relation

import (
	"testing"
)

func testSchema() Schema {
	return Schema{
		Name: "sales",
		Cols: []Column{
			{Name: "item_sk", Type: Int, Ordered: true, Lo: 0, Hi: 1000},
			{Name: "price", Type: Float},
			{Name: "region", Type: String},
		},
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := testSchema()
	if got := s.ColIndex("price"); got != 1 {
		t.Errorf("ColIndex(price) = %d, want 1", got)
	}
	if got := s.ColIndex("missing"); got != -1 {
		t.Errorf("ColIndex(missing) = %d, want -1", got)
	}
	if !s.Has("item_sk") || s.Has("nope") {
		t.Error("Has() misreports column presence")
	}
}

func TestSchemaColPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Col(missing) did not panic")
		}
	}()
	s := testSchema()
	s.Col("missing")
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p := s.Project([]string{"region", "item_sk"})
	if len(p.Cols) != 2 || p.Cols[0].Name != "region" || p.Cols[1].Name != "item_sk" {
		t.Fatalf("Project = %v", p)
	}
	if !p.Cols[1].Ordered {
		t.Error("projection dropped Ordered flag")
	}
}

func TestRowWidth(t *testing.T) {
	s := testSchema()
	want := int64(8 + 8 + 32)
	if got := s.RowWidth(); got != want {
		t.Errorf("RowWidth = %d, want %d", got, want)
	}
}

func TestTableBytes(t *testing.T) {
	s := testSchema()
	tab := NewTable(s)
	tab.Append(Row{IntVal(1), FloatVal(9.5), StringVal("east")})
	tab.Append(Row{IntVal(2), FloatVal(1.5), StringVal("west")})
	if got := tab.Bytes(); got != 2*s.RowWidth() {
		t.Errorf("Bytes = %d, want %d", got, 2*s.RowWidth())
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tab.NumRows())
	}
}

func TestAppendPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong width did not panic")
		}
	}()
	tab := NewTable(testSchema())
	tab.Append(Row{IntVal(1)})
}

func TestCloneIsDeep(t *testing.T) {
	tab := NewTable(testSchema())
	tab.Append(Row{IntVal(1), FloatVal(1), StringVal("a")})
	c := tab.Clone()
	c.Rows[0][0] = IntVal(99)
	if tab.Rows[0][0].I != 1 {
		t.Error("mutating clone changed original")
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := NewTable(testSchema())
	a.Append(Row{IntVal(1), FloatVal(1), StringVal("a")})
	a.Append(Row{IntVal(2), FloatVal(2), StringVal("b")})
	b := NewTable(testSchema())
	b.Append(Row{IntVal(2), FloatVal(2), StringVal("b")})
	b.Append(Row{IntVal(1), FloatVal(1), StringVal("a")})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on row order")
	}
}

func TestFingerprintDistinguishesMultisets(t *testing.T) {
	a := NewTable(testSchema())
	a.Append(Row{IntVal(1), FloatVal(1), StringVal("a")})
	a.Append(Row{IntVal(1), FloatVal(1), StringVal("a")})
	b := NewTable(testSchema())
	b.Append(Row{IntVal(1), FloatVal(1), StringVal("a")})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprint ignores duplicate multiplicity")
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "INT" || Float.String() != "FLOAT" || String.String() != "STRING" {
		t.Error("Type.String mismatch")
	}
}

func TestEffectiveWidthOverride(t *testing.T) {
	c := Column{Name: "x", Type: Int}
	if c.EffectiveWidth() != 8 {
		t.Errorf("default int width = %d, want 8", c.EffectiveWidth())
	}
	c.Width = 1 << 20
	if c.EffectiveWidth() != 1<<20 {
		t.Errorf("override ignored")
	}
	s := Schema{Cols: []Column{c, {Name: "y", Type: String}}}
	if s.RowWidth() != 1<<20+32 {
		t.Errorf("RowWidth = %d", s.RowWidth())
	}
}
