// Package relation provides the relational substrate DeepSea operates
// over: typed values, schemas, and in-memory tables with a byte-size
// model that stands in for on-disk HDFS file sizes.
package relation

import (
	"fmt"
	"strings"
)

// Type enumerates the value types supported by the engine.
type Type int

// Supported column types.
const (
	Int Type = iota
	Float
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single column value. Exactly one field is meaningful,
// selected by the column's Type. Null values are not modelled; generators
// always produce complete rows (the paper's workloads are selections,
// joins and aggregates over generated data).
type Value struct {
	I int64
	F float64
	S string
}

// IntVal wraps an int64 as a Value.
func IntVal(v int64) Value { return Value{I: v} }

// FloatVal wraps a float64 as a Value.
func FloatVal(v float64) Value { return Value{F: v} }

// StringVal wraps a string as a Value.
func StringVal(v string) Value { return Value{S: v} }

// Row is a tuple; the i-th Value corresponds to the i-th schema column.
type Row []Value

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
	// Ordered marks attributes with a total order usable as partition
	// keys. Only Int columns may be ordered in this implementation.
	Ordered bool
	// Lo and Hi bound the attribute's domain when Ordered. D(A) = [Lo,Hi].
	Lo, Hi int64
	// Width overrides the modelled byte width of this column when
	// positive. Workload generators use it to scale simulated rows up to
	// paper-scale data sizes: one simulated row stands for many real
	// rows, so a 200k-row table can model a 100 GB instance while the
	// cost model still sees realistic byte counts.
	Width int64
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Name string
	Cols []Column
}

// ColIndex returns the index of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Col returns the named column. It panics if the column does not exist;
// plan construction validates names before execution.
func (s *Schema) Col(name string) Column {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: schema %q has no column %q", s.Name, name))
	}
	return s.Cols[i]
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.ColIndex(name) >= 0 }

// Project returns a new schema with only the named columns, in the given
// order. The schema name is preserved.
func (s *Schema) Project(names []string) Schema {
	out := Schema{Name: s.Name, Cols: make([]Column, 0, len(names))}
	for _, n := range names {
		out.Cols = append(out.Cols, s.Col(n))
	}
	return out
}

// String renders the schema as name(col:TYPE, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
	}
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(parts, ", "))
}

// Bytes per value by type. These constants define the storage size model:
// a row's size is the sum of its column widths. They approximate the
// serialized width of columns in a Hive text/ORC file closely enough for
// cost-model purposes.
const (
	intWidth    = 8
	floatWidth  = 8
	stringWidth = 32
)

// ColWidth returns the modelled byte width of a column of type t.
func ColWidth(t Type) int64 {
	switch t {
	case Int:
		return intWidth
	case Float:
		return floatWidth
	case String:
		return stringWidth
	default:
		return intWidth
	}
}

// EffectiveWidth returns the column's modelled byte width, honouring an
// explicit Width override.
func (c Column) EffectiveWidth() int64 {
	if c.Width > 0 {
		return c.Width
	}
	return ColWidth(c.Type)
}

// RowWidth returns the modelled byte width of one row of the schema.
func (s *Schema) RowWidth() int64 {
	var w int64
	for _, c := range s.Cols {
		w += c.EffectiveWidth()
	}
	return w
}

// Table is an in-memory relation instance.
type Table struct {
	Schema Schema
	Rows   []Row
}

// NewTable returns an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{Schema: schema}
}

// NumRows returns the table's cardinality.
func (t *Table) NumRows() int { return len(t.Rows) }

// Bytes returns the modelled storage size of the table.
func (t *Table) Bytes() int64 {
	return int64(len(t.Rows)) * t.Schema.RowWidth()
}

// Append adds a row. The row must match the schema width; mismatches are
// programming errors and panic.
func (t *Table) Append(r Row) {
	if len(r) != len(t.Schema.Cols) {
		panic(fmt.Sprintf("relation: row width %d != schema width %d for %s",
			len(r), len(t.Schema.Cols), t.Schema.Name))
	}
	t.Rows = append(t.Rows, r)
}

// Clone returns a deep copy of the table (rows share Value structs by
// value, so mutation of the clone cannot affect the original).
func (t *Table) Clone() *Table {
	out := &Table{Schema: t.Schema, Rows: make([]Row, len(t.Rows))}
	for i, r := range t.Rows {
		nr := make(Row, len(r))
		copy(nr, r)
		out.Rows[i] = nr
	}
	return out
}
