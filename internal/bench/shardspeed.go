package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/shard"
	"deepsea/internal/workload"
)

// ShardspeedResult characterizes the range-sharded scatter-gather
// layer: merged results are byte-identical no matter how many shards
// the domain is cut into, a disjoint-range workload scales with the
// shard count, and one equi-heat rebalance tames a hotspot's tail
// latency.
type ShardspeedResult struct {
	// Queries is the per-phase trace length.
	Queries int
	// Identical reports the 2- and 3-shard clusters answered the mixed
	// trace byte-identically to the 1-shard cluster (the merge-path
	// reference).
	Identical bool
	// Speedup is 1-shard wall time / 3-shard wall time on a disjoint
	// trace with client concurrency 3 (each shard models one
	// single-executor node).
	Speedup float64
	// HostLimited is set when the host has fewer than 4 CPUs: the
	// wall-clock gates auto-pass because the cluster cannot physically
	// run its shards in parallel.
	HostLimited bool
	// UniformP99Millis is the 3-shard p99 on a uniform trace — the
	// baseline the rebalanced hotspot p99 is held against.
	UniformP99Millis float64
	// HotspotBeforeP99Millis / HotspotAfterP99Millis bracket one
	// equi-heat rebalance on a heavily skewed trace.
	HotspotBeforeP99Millis float64
	HotspotAfterP99Millis  float64
	// RebalanceMoved reports the rebalance actually changed boundaries.
	RebalanceMoved bool
}

// shardspeedCluster is one in-process cluster: k shard servers (each a
// full System over the same dataset) behind a coordinator, all on
// httptest listeners.
type shardspeedCluster struct {
	coord    *shard.Coordinator
	front    *httptest.Server
	servers  []*server.Server
	backends []*httptest.Server
}

// shardspeedCluster boots k shards over data. Each shard server gets
// MaxInFlight 1 and a single-worker engine: one shard models one
// single-executor node, so the cluster's parallelism is exactly its
// shard count and scaling measurements aren't confounded by the
// engine's own data-path workers.
func newShardspeedCluster(data *workload.Data, k int) (*shardspeedCluster, error) {
	cl := &shardspeedCluster{}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		sys := deepsea.New(deepsea.WithParallelism(1))
		if err := workload.Load(sys, data); err != nil {
			cl.close()
			return nil, err
		}
		srv := server.New(sys, server.Config{MaxInFlight: 1, MaxQueue: 256, QueueTimeout: -1})
		ts := httptest.NewServer(srv.Handler())
		cl.servers = append(cl.servers, srv)
		cl.backends = append(cl.backends, ts)
		addrs[i] = ts.URL
	}
	coord, err := shard.New(shard.Config{
		Addrs:    addrs,
		DomainLo: workload.ItemSkLo,
		DomainHi: workload.ItemSkHi,
	})
	if err != nil {
		cl.close()
		return nil, err
	}
	if err := coord.Init(context.Background()); err != nil {
		cl.close()
		return nil, err
	}
	cl.coord = coord
	cl.front = httptest.NewServer(coord.Handler())
	return cl, nil
}

func (cl *shardspeedCluster) close() {
	if cl.front != nil {
		cl.front.Close()
	}
	for i, srv := range cl.servers {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		cl.backends[i].Close()
	}
}

// shardspeedPost runs one trace query through a coordinator and returns
// a canonical rendering (columns header plus rows in coordinator
// order — the merge already sorts deterministically, so order is part
// of the contract).
func shardspeedPost(client *http.Client, url string, tq workload.TraceQuery) (string, error) {
	body, err := json.Marshal(server.QuerySpec{Template: tq.Template.String(), Lo: tq.Lo, Hi: tq.Hi})
	if err != nil {
		return "", err
	}
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var qr shard.Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return "", err
	}
	lines := make([]string, 0, len(qr.Rows)+1)
	lines = append(lines, strings.Join(qr.Columns, ","))
	for _, row := range qr.Rows {
		b, err := json.Marshal(row)
		if err != nil {
			return "", err
		}
		lines = append(lines, string(b))
	}
	return strings.Join(lines, "\n"), nil
}

// shardspeedReplay runs the trace with the given client concurrency and
// returns per-query latencies (ms) in trace order plus wall time.
func shardspeedReplay(client *http.Client, url string, trace []workload.TraceQuery, concurrency int) ([]float64, time.Duration, error) {
	lat := make([]float64, len(trace))
	errs := make([]error, len(trace))
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i, tq := range trace {
		wg.Add(1)
		go func(i int, tq workload.TraceQuery) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			qstart := time.Now()
			_, err := shardspeedPost(client, url, tq)
			lat[i] = time.Since(qstart).Seconds() * 1000
			errs[i] = err
		}(i, tq)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("trace query %d (%s [%d,%d]): %w",
				i, trace[i].Template, trace[i].Lo, trace[i].Hi, err)
		}
	}
	return lat, wall, nil
}

func p99(lat []float64) float64 {
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	return s[(len(s)*99)/100]
}

// RunShardspeed drives the sharded serving layer through three phases:
// a mixed-range trace replayed byte-identically across 1/2/3-shard
// clusters, a disjoint-range trace that must scale with the shard
// count, and a hotspot trace bracketing one equi-heat rebalance.
func RunShardspeed(p Params) (*ShardspeedResult, error) {
	n := p.queries(48)
	res := &ShardspeedResult{
		Queries:     n,
		Identical:   true,
		HostLimited: runtime.NumCPU() < 4,
	}
	client := &http.Client{}
	data := workload.Generate(1, p.Seed, nil)

	// Phase 1: determinism across shard counts. The same mixed trace
	// (disjoint backbone plus boundary-spanning queries) replays through
	// k = 1, 2, 3 clusters; the 1-shard run is the reference — it takes
	// the identical merge path, so any divergence is a real partial-merge
	// bug, not float noise.
	mixed := workload.MixedTrace(n, 3, workload.Q1, 0.1, p.Seed)
	for i := 1; i < n; i += 3 {
		mixed[i].Template = workload.Q16
	}
	var want []string
	oneShard, err := newShardspeedCluster(data, 1)
	if err != nil {
		return nil, err
	}
	for ki, k := range []int{1, 2, 3} {
		cl := oneShard
		if k > 1 {
			cl, err = newShardspeedCluster(data, k)
			if err != nil {
				oneShard.close()
				return nil, err
			}
		}
		got := make([]string, n)
		for i, tq := range mixed {
			canon, err := shardspeedPost(client, cl.front.URL, tq)
			if err != nil {
				cl.close()
				if k > 1 {
					oneShard.close()
				}
				return nil, fmt.Errorf("shardspeed %d-shard query %d: %w", k, i, err)
			}
			got[i] = canon
		}
		if ki == 0 {
			want = got
		} else {
			for i := range got {
				if got[i] != want[i] {
					res.Identical = false
				}
			}
			cl.close()
		}
	}
	oneShard.close()

	// Phase 2: scaling. A disjoint trace (every query inside one shard's
	// even slice) at client concurrency 3: the 3-shard cluster runs its
	// single-executor nodes in parallel, the 1-shard cluster serializes
	// on its one slot.
	// Selectivity 0.3 of each shard's slice keeps per-query engine time
	// well above the scatter overhead, so the ratio measures parallelism.
	disjoint := workload.DisjointTrace(n, 3, workload.Q1, 0.3, p.Seed+1)
	var wall [2]time.Duration
	for i, k := range []int{1, 3} {
		cl, err := newShardspeedCluster(data, k)
		if err != nil {
			return nil, err
		}
		// Warm-up pass so first-touch planning doesn't skew either arm.
		if _, _, err := shardspeedReplay(client, cl.front.URL, disjoint[:3], 3); err != nil {
			cl.close()
			return nil, err
		}
		_, w, err := shardspeedReplay(client, cl.front.URL, disjoint, 3)
		cl.close()
		if err != nil {
			return nil, fmt.Errorf("shardspeed scaling %d-shard: %w", k, err)
		}
		wall[i] = w
	}
	if wall[1] > 0 {
		res.Speedup = wall[0].Seconds() / wall[1].Seconds()
	}

	// Phase 3: skew. On a fresh 3-shard cluster, measure the uniform
	// baseline p99, hammer the hotspot (which both measures the skewed
	// p99 and feeds the coordinator's heat map), rebalance once, and
	// measure the hotspot p99 again — it must land within 2x of uniform.
	cl, err := newShardspeedCluster(data, 3)
	if err != nil {
		return nil, err
	}
	defer cl.close()
	uniform := workload.UniformTrace(n, workload.Q1, 0.02, p.Seed+2)
	uniLat, _, err := shardspeedReplay(client, cl.front.URL, uniform, 3)
	if err != nil {
		return nil, fmt.Errorf("shardspeed uniform: %w", err)
	}
	res.UniformP99Millis = p99(uniLat)

	hot := workload.HotspotTrace(n, workload.Q1, 0.02, 0.5, p.Seed+3)
	hotLat, _, err := shardspeedReplay(client, cl.front.URL, hot, 3)
	if err != nil {
		return nil, fmt.Errorf("shardspeed hotspot (before): %w", err)
	}
	res.HotspotBeforeP99Millis = p99(hotLat)

	res.RebalanceMoved, err = cl.coord.Rebalance(context.Background())
	if err != nil {
		return nil, fmt.Errorf("shardspeed rebalance: %w", err)
	}

	hotAfter := workload.HotspotTrace(n, workload.Q1, 0.02, 0.5, p.Seed+4)
	hotLat, _, err = shardspeedReplay(client, cl.front.URL, hotAfter, 3)
	if err != nil {
		return nil, fmt.Errorf("shardspeed hotspot (after): %w", err)
	}
	res.HotspotAfterP99Millis = p99(hotLat)
	return res, nil
}

// ScalingOK is the wall-clock scaling gate: 3 shards must beat 1 shard
// by at least 1.6x on the disjoint trace. Hosts without enough CPUs to
// run the shards in parallel auto-pass.
func (r *ShardspeedResult) ScalingOK() bool {
	return r.HostLimited || r.Speedup >= 1.6
}

// SkewBounded is the rebalance gate: the post-rebalance hotspot p99
// must land within 2x of the uniform baseline (plus a small absolute
// slack so microsecond-scale baselines don't gate on noise).
func (r *ShardspeedResult) SkewBounded() bool {
	if r.HostLimited {
		return true
	}
	slack := 2 * r.UniformP99Millis
	if slack < 50 {
		slack = 50
	}
	return r.HotspotAfterP99Millis <= slack
}

// Metrics exports the headline numbers for machine-readable output.
func (r *ShardspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"queries":                       float64(r.Queries),
		"identical_across_shard_counts": 0,
		"speedup_3shard":                r.Speedup,
		"scaling_ok":                    0,
		"uniform_p99_millis":            r.UniformP99Millis,
		"hotspot_before_p99_millis":     r.HotspotBeforeP99Millis,
		"hotspot_after_p99_millis":      r.HotspotAfterP99Millis,
		"rebalance_moved":               0,
		"skew_bounded":                  0,
		"host_limited":                  0,
	}
	if r.Identical {
		m["identical_across_shard_counts"] = 1
	}
	if r.ScalingOK() {
		m["scaling_ok"] = 1
	}
	if r.RebalanceMoved {
		m["rebalance_moved"] = 1
	}
	if r.SkewBounded() {
		m["skew_bounded"] = 1
	}
	if r.HostLimited {
		m["host_limited"] = 1
	}
	return m
}

// Print renders the sharded-serving characterization.
func (r *ShardspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "range-sharded scatter-gather, %d queries per phase\n", r.Queries)
	fmt.Fprintf(w, "merged results identical across 1/2/3-shard clusters: %v\n", r.Identical)
	fmt.Fprintf(w, "disjoint-trace speedup, 3 shards vs 1: %.2fx (floor 1.6x, host-limited: %v)\n",
		r.Speedup, r.HostLimited)
	fmt.Fprintf(w, "p99: uniform %.1fms, hotspot before rebalance %.1fms, after %.1fms (moved: %v, bounded: %v)\n",
		r.UniformP99Millis, r.HotspotBeforeP99Millis, r.HotspotAfterP99Millis,
		r.RebalanceMoved, r.SkewBounded())
}
