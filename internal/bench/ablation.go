package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/core"
	"deepsea/internal/workload"
)

// AblationResult isolates the contribution of each design choice this
// reproduction makes on top of the paper's base algorithm (see DESIGN.md
// §5): guard fragments, by-product refinement pricing, the MLE hit
// smoothing, overlapping fragments, and the Section 11 co-access merge
// extension. Every arm runs the Figure 6 workload (small selectivity,
// heavy skew — the regime where partitioning decisions matter most).
type AblationResult struct {
	Arms []*RunResult
}

// RunAblation runs the ablation arms.
func RunAblation(p Params) (*AblationResult, error) {
	gb := p.gb(100)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 60))
	nq := p.queries(30)
	ranges := workload.Ranges(nq, workload.Small, workload.Heavy, workload.ItemSkDomain(), rng)
	queries := templateQueries(data, workload.Q30, ranges)

	arms := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"DS (full)", nil},
		{"- guards", func(c *core.Config) { c.NoGuards = true }},
		{"- byproduct pricing", func(c *core.Config) { c.NoByproduct = true }},
		{"- MLE smoothing", func(c *core.Config) { c.Selection = core.SelectDeepSeaRawHits }},
		{"- overlap (horizontal)", func(c *core.Config) { c.Partition = core.PartitionAdaptive }},
		{"+ co-access merging", func(c *core.Config) { c.MergeFragments = true }},
	}
	var out AblationResult
	for _, arm := range arms {
		cfg := scaleCfg(DSCfg(), gb, 100)
		if arm.mutate != nil {
			arm.mutate(&cfg)
		}
		r, err := RunWorkload(arm.name, data, queries, cfg)
		if err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, r)
	}
	return &out, nil
}

// Print renders total and split costs per arm.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: DeepSea design choices (Q30, small selectivity, heavy skew)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\ttotal (s)\texec (s)\tmaterialization (s)\tmap tasks")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%d\n",
			a.Name, a.Total(), a.ExecSeconds, a.MatSeconds, a.MapTasks)
	}
	tw.Flush()
}
