package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/core"
	"deepsea/internal/workload"
)

// Fig10Result reproduces Figure 10: adaptation to workload changes. 200
// Q5 queries with big selectivity and heavy skew on a 100 GB instance;
// the first half's selection ranges follow one distribution (hot spot at
// 100,000), the second half another (hot spot at 300,000). Panel (a)
// compares the elapsed time of NP, E-5, NR (no repartitioning) and DS
// over queries 101..200; panel (b) plots DS's cumulative time relative
// to NR's from the shift onward — above 1 while DeepSea pays for
// repartitioning, below 1 once it amortizes.
type Fig10Result struct {
	Arms []*RunResult
	// ShiftAt is the index of the first query after the distribution
	// shift (0-based).
	ShiftAt int
}

// RunFig10 runs the four arms.
func RunFig10(p Params) (*Fig10Result, error) {
	gb := p.gb(100)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 40))
	dom := workload.ItemSkDomain()
	perPhase := p.queries(200) / 2
	ranges := append(
		workload.RangesAround(perPhase, workload.Big, workload.Heavy, dom, 100000, rng),
		workload.RangesAround(perPhase, workload.Big, workload.Heavy, dom, 300000, rng)...)
	queries := templateQueries(data, workload.Q5, ranges)

	arms := []struct {
		name string
		cfg  core.Config
	}{
		{"NP", NPCfg()},
		{"E-5", EquiDepthCfg(5)},
		{"NR", NRCfg()},
		{"DS", DSCfg()},
	}
	out := &Fig10Result{ShiftAt: perPhase}
	for _, arm := range arms {
		cfg := scaleCfg(arm.cfg, gb, 100)
		// A coarse initial partitioning (the paper does not bound the
		// largest fragment in the partitioning experiments) is what the
		// post-shift adaptation then refines — with a fine initial grid
		// NR and DS would coincide trivially.
		cfg.MaxFragFraction = 0.5
		r, err := RunWorkload(arm.name, data, queries, cfg)
		if err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, r)
	}
	return out, nil
}

// TailTotal returns an arm's elapsed seconds over the post-shift tail
// (panel a).
func (r *Fig10Result) TailTotal(arm *RunResult) float64 {
	var t float64
	for _, s := range arm.PerQuery[r.ShiftAt:] {
		t += s
	}
	return t
}

// Ratio returns the DS/NR cumulative-time ratio over the post-shift tail
// (panel b).
func (r *Fig10Result) Ratio() []float64 {
	var ds, nr *RunResult
	for _, a := range r.Arms {
		switch a.Name {
		case "DS":
			ds = a
		case "NR":
			nr = a
		}
	}
	var out []float64
	var cd, cn float64
	for i := r.ShiftAt; i < len(ds.PerQuery); i++ {
		cd += ds.PerQuery[i]
		cn += nr.PerQuery[i]
		out = append(out, cd/cn)
	}
	return out
}

// Print renders both panels.
func (r *Fig10Result) Print(w io.Writer) {
	n := len(r.Arms[0].PerQuery)
	fmt.Fprintf(w, "Figure 10a: adaptation to workload changes — elapsed time over Q5_%d..Q5_%d (s)\n",
		r.ShiftAt+1, n)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\tpost-shift elapsed (s)\twhole workload (s)")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\n", a.Name, r.TailTotal(a), a.Total())
	}
	tw.Flush()

	fmt.Fprintln(w, "\nFigure 10b: cumulative-time ratio DS/NR after the shift")
	tw = newTabWriter(w)
	fmt.Fprintln(tw, "query\tDS/NR")
	ratio := r.Ratio()
	step := len(ratio) / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(ratio); i += step {
		fmt.Fprintf(tw, "Q5_%d\t%.3f\n", r.ShiftAt+i+1, ratio[i])
	}
	fmt.Fprintf(tw, "Q5_%d\t%.3f\n", r.ShiftAt+len(ratio), ratio[len(ratio)-1])
	tw.Flush()
}
