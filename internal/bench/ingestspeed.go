package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"deepsea"
	"deepsea/internal/ingest"
	"deepsea/internal/server"
	"deepsea/internal/shard"
	"deepsea/internal/workload"
)

// IngestspeedResult characterizes the batched append path: incremental
// delta propagation leaves every template's result byte-identical to
// the invalidate-and-recompute baseline (single node and across shard
// counts), steady-state refresh cost for a small delta does not scale
// with base-table size, and read p99 under concurrent ingest stays
// bounded against a read-only run of the same trace.
type IngestspeedResult struct {
	// Templates is how many query templates the identity phase checked;
	// AppendedRows the rows ingested per arm during it.
	Templates    int
	AppendedRows uint64
	// IdenticalVsRemat: every post-append result of the incremental arm
	// byte-identical to the remat-on-append baseline.
	IdenticalVsRemat bool
	// IdenticalAcrossShardCounts: the same appends routed through 1- and
	// 2-group clusters leave full-domain results byte-identical.
	IdenticalAcrossShardCounts bool
	// Refreshes/Drops are the incremental arm's counters: refreshes must
	// be exercised, drops (incremental fallback to invalidation) zero.
	Refreshes uint64
	Drops     uint64

	// Sublinearity: steady-state simulated refresh cost of the same
	// append stream on a base BaseRatio times larger. SmallRefreshSec /
	// BigRefreshSec are the summed simulated refresh seconds; the gate
	// demands big <= 2x small while the base is ~4x.
	BaseRatio       float64
	SmallRefreshSec float64
	BigRefreshSec   float64
	SmallReadBytes  int64
	BigReadBytes    int64

	// Mixed read/write tail: read latencies at fixed client concurrency,
	// read-only vs racing a continuous append stream. AppendFailures
	// counts non-200 appends in the mixed run (must be 0).
	ReadQueries    int
	ReadOnlyP50    float64 // milliseconds
	ReadOnlyP99    float64
	MixedP50       float64
	MixedP99       float64
	MixedAppends   int
	AppendFailures int
}

// ingestCanon renders a report's rows order-insensitively, through the
// same JSON wire format the serving tier uses.
func ingestCanon(rep deepsea.Report) (string, error) {
	lines := make([]string, 0, len(rep.Rows())+1)
	for _, row := range rep.Rows() {
		b, err := json.Marshal(row)
		if err != nil {
			return "", err
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return strings.Join(rep.Columns(), ",") + "\n" + strings.Join(lines, "\n"), nil
}

// ingestWarm runs every probe query twice so the adaptive pool both
// admits and serves the views the append phase must keep fresh.
func ingestWarm(sys *deepsea.System, probes []*deepsea.Query) error {
	for round := 0; round < 2; round++ {
		for _, q := range probes {
			if _, err := sys.Run(q); err != nil {
				return err
			}
		}
	}
	return nil
}

// ingestPostAppend posts one batch to a serving or coordinator tier.
func ingestPostAppend(client *http.Client, url, table string, rows [][]any) error {
	body, err := json.Marshal(&ingest.Spec{Table: table, Rows: rows})
	if err != nil {
		return err
	}
	resp, err := client.Post(url+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("append HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// RunIngestspeed drives the append path through four phases: an
// all-template identity check of incremental refresh against the
// remat-on-append baseline, the same identity across 1- and 2-group
// clusters, a sublinearity measurement of steady-state refresh cost
// against a 4x base, and a mixed read/write tail-latency comparison.
func RunIngestspeed(p Params) (*IngestspeedResult, error) {
	res := &IngestspeedResult{
		Templates:                  len(workload.AllTemplates),
		IdenticalVsRemat:           true,
		IdenticalAcrossShardCounts: true,
	}
	data := workload.Generate(1, p.Seed, nil)
	client := &http.Client{}

	// Per-template probes: the full domain plus an interior range, so
	// both whole-view and fragment-backed plans see deltas.
	var probes []*deepsea.Query
	for _, t := range workload.AllTemplates {
		probes = append(probes,
			workload.BuildQuery(t, workload.ItemSkLo, workload.ItemSkHi),
			workload.BuildQuery(t, 100000, 300000))
	}

	// Phase 1: incremental vs invalidate-and-recompute, single node.
	{
		inc := deepsea.New(deepsea.WithPoolLimit(1 << 30))
		rem := deepsea.New(deepsea.WithPoolLimit(1<<30), deepsea.WithRematOnAppend())
		for _, sys := range []*deepsea.System{inc, rem} {
			if err := workload.Load(sys, data); err != nil {
				return nil, err
			}
			if err := ingestWarm(sys, probes); err != nil {
				return nil, err
			}
		}
		for _, table := range []string{"store_sales", "web_clickstream", "product_reviews"} {
			for _, b := range workload.AppendTrace(data, table, 3, 60, p.Seed) {
				for _, sys := range []*deepsea.System{inc, rem} {
					if _, err := sys.Append(b.Table, b.Rows); err != nil {
						return nil, fmt.Errorf("ingestspeed append %s: %w", table, err)
					}
				}
			}
		}
		for i, q := range probes {
			incRep, err := inc.Run(q)
			if err != nil {
				return nil, fmt.Errorf("ingestspeed incremental probe %d: %w", i, err)
			}
			remRep, err := rem.Run(q)
			if err != nil {
				return nil, fmt.Errorf("ingestspeed remat probe %d: %w", i, err)
			}
			a, err := ingestCanon(incRep)
			if err != nil {
				return nil, err
			}
			b, err := ingestCanon(remRep)
			if err != nil {
				return nil, err
			}
			if a != b {
				res.IdenticalVsRemat = false
			}
		}
		st := inc.IngestStats()
		res.AppendedRows = st.AppendedRows
		res.Refreshes = st.Refreshes
		res.Drops = st.Drops
	}

	// Phase 2: the same appends routed through 1- and 2-group clusters.
	// Full-domain probes over the three join shapes; the 1-group result
	// is the reference bytes for the 2-group run.
	{
		shardProbes := []workload.TraceQuery{
			{Template: workload.Q1, Lo: workload.ItemSkLo, Hi: workload.ItemSkHi},
			{Template: workload.Q7, Lo: workload.ItemSkLo, Hi: workload.ItemSkHi},
			{Template: workload.Q29, Lo: workload.ItemSkLo, Hi: workload.ItemSkHi},
		}
		var want []string
		for _, k := range []int{1, 2} {
			cl, err := newFailCluster(data, k, 1, func(cfg *shard.Config) {
				cfg.HedgeDelay = -1
				cfg.KeyIndex = map[string]int{
					"store_sales": 0, "web_clickstream": 0, "product_reviews": 0,
				}
			})
			if err != nil {
				return nil, err
			}
			for _, table := range []string{"store_sales", "product_reviews"} {
				for _, b := range workload.AppendTrace(data, table, 2, 50, p.Seed+7) {
					if err := ingestPostAppend(client, cl.front.URL, b.Table, b.Rows); err != nil {
						cl.close()
						return nil, fmt.Errorf("ingestspeed k=%d: %w", k, err)
					}
				}
			}
			for i, tq := range shardProbes {
				canon, err := shardspeedPost(client, cl.front.URL, tq)
				if err != nil {
					cl.close()
					return nil, fmt.Errorf("ingestspeed k=%d probe %d: %w", k, i, err)
				}
				if k == 1 {
					want = append(want, canon)
				} else if canon != want[i] {
					res.IdenticalAcrossShardCounts = false
				}
			}
			cl.close()
		}
	}

	// Phase 3: sublinearity. The same warmed views and the same append
	// stream against a base ~4x larger; steady-state refresh cost is
	// measured after a priming append so the one-time linear
	// refresh-state build is excluded from both arms.
	{
		steady := func(grow bool) (float64, int64, float64, error) {
			sys := deepsea.New(deepsea.WithPoolLimit(1 << 30))
			if err := workload.Load(sys, data); err != nil {
				return 0, 0, 0, err
			}
			baseRows := float64(data.Tables["store_sales"].NumRows())
			if grow {
				bulk := data.AppendRows("store_sales", 3*int(baseRows), p.Seed+99, nil)
				if _, err := sys.Append("store_sales", bulk); err != nil {
					return 0, 0, 0, err
				}
				baseRows *= 4
			}
			var salesProbes []*deepsea.Query
			for _, t := range []workload.Template{workload.Q1, workload.Q16, workload.Q30} {
				salesProbes = append(salesProbes,
					workload.BuildQuery(t, workload.ItemSkLo, workload.ItemSkHi))
			}
			if err := ingestWarm(sys, salesProbes); err != nil {
				return 0, 0, 0, err
			}
			prime := data.AppendRows("store_sales", 50, p.Seed+100, nil)
			if _, err := sys.Append("store_sales", prime); err != nil {
				return 0, 0, 0, err
			}
			before := sys.IngestStats()
			for i := 0; i < 5; i++ {
				batch := data.AppendRows("store_sales", 50, p.Seed+101+int64(i), nil)
				if _, err := sys.Append("store_sales", batch); err != nil {
					return 0, 0, 0, err
				}
			}
			after := sys.IngestStats()
			if after.Primes != before.Primes {
				return 0, 0, 0, fmt.Errorf("ingestspeed sublinear: measured appends primed refresh state (%d -> %d)",
					before.Primes, after.Primes)
			}
			return after.RefreshSeconds - before.RefreshSeconds,
				after.RefreshReadBytes - before.RefreshReadBytes, baseRows, nil
		}
		smallSec, smallBytes, smallBase, err := steady(false)
		if err != nil {
			return nil, err
		}
		bigSec, bigBytes, bigBase, err := steady(true)
		if err != nil {
			return nil, err
		}
		res.SmallRefreshSec, res.SmallReadBytes = smallSec, smallBytes
		res.BigRefreshSec, res.BigReadBytes = bigSec, bigBytes
		res.BaseRatio = bigBase / smallBase
	}

	// Phase 4: mixed read/write tail. The same read trace at the same
	// client concurrency, read-only vs racing a continuous append
	// stream; appends and reads share the admission limiter, so the
	// comparison is of the whole serving path.
	{
		n := p.queries(48)
		res.ReadQueries = n
		trace := workload.UniformTrace(n, workload.Q1, 0.1, p.Seed)
		for i := 1; i < n; i += 3 {
			trace[i].Template = workload.Q16
		}
		run := func(withIngest bool) (p50, p99 float64, appends, failures int, err error) {
			sys := deepsea.New(deepsea.WithPoolLimit(1<<30), deepsea.WithResultCache(64<<20))
			if err := workload.Load(sys, data); err != nil {
				return 0, 0, 0, 0, err
			}
			srv := server.New(sys, server.Config{MaxInFlight: 8, MaxQueue: 256, QueueTimeout: -1})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			stop := make(chan struct{})
			var ingWG sync.WaitGroup
			if withIngest {
				ingWG.Add(1)
				go func() {
					defer ingWG.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						batch := data.AppendRows("store_sales", 40, p.Seed+500+int64(i), nil)
						if err := ingestPostAppend(client, ts.URL, "store_sales", batch); err != nil {
							failures++
						}
						appends++
					}
				}()
			}
			lat := make([]float64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			sem := make(chan struct{}, 4)
			for i, tq := range trace {
				wg.Add(1)
				go func(i int, tq workload.TraceQuery) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					start := time.Now()
					status, _, err := servespeedPost(client, ts.URL, server.QuerySpec{
						Template: tq.Template.String(), Lo: tq.Lo, Hi: tq.Hi,
					})
					lat[i] = time.Since(start).Seconds() * 1000
					if err == nil && status != http.StatusOK {
						err = fmt.Errorf("HTTP %d", status)
					}
					errs[i] = err
				}(i, tq)
			}
			wg.Wait()
			close(stop)
			ingWG.Wait()
			for i, err := range errs {
				if err != nil {
					return 0, 0, 0, 0, fmt.Errorf("read %d: %w", i, err)
				}
			}
			sort.Float64s(lat)
			return lat[n/2], lat[(n*99)/100], appends, failures, nil
		}
		var err error
		res.ReadOnlyP50, res.ReadOnlyP99, _, _, err = run(false)
		if err != nil {
			return nil, fmt.Errorf("ingestspeed read-only arm: %w", err)
		}
		res.MixedP50, res.MixedP99, res.MixedAppends, res.AppendFailures, err = run(true)
		if err != nil {
			return nil, fmt.Errorf("ingestspeed mixed arm: %w", err)
		}
	}
	return res, nil
}

// SublinearOK reports the steady-state refresh-cost gate: the same
// append stream on a ~4x base must cost at most 2x in simulated refresh
// seconds (and must have done real work on the small base).
func (r *IngestspeedResult) SublinearOK() bool {
	return r.SmallRefreshSec > 0 && r.BigRefreshSec <= 2*r.SmallRefreshSec
}

// MixedP99OK is the host-tolerant tail gate: mixed-trace read p99
// within max(1s, 8x the read-only p99).
func (r *IngestspeedResult) MixedP99OK() bool {
	slack := 8 * r.ReadOnlyP99
	if slack < 1000 {
		slack = 1000
	}
	return r.MixedP99 <= slack
}

// Metrics exports the gated properties and headline numbers.
func (r *IngestspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"identical_vs_remat":            0,
		"identical_across_shard_counts": 0,
		"no_drops":                      0,
		"sublinear_ok":                  0,
		"read_p99_bounded":              0,
		"zero_append_failures":          0,
		"refreshes":                     float64(r.Refreshes),
		"appended_rows":                 float64(r.AppendedRows),
		"base_ratio":                    r.BaseRatio,
		"small_refresh_seconds":         r.SmallRefreshSec,
		"big_refresh_seconds":           r.BigRefreshSec,
		"read_only_p50_millis":          r.ReadOnlyP50,
		"read_only_p99_millis":          r.ReadOnlyP99,
		"mixed_p50_millis":              r.MixedP50,
		"mixed_p99_millis":              r.MixedP99,
		"mixed_appends":                 float64(r.MixedAppends),
	}
	if r.IdenticalVsRemat {
		m["identical_vs_remat"] = 1
	}
	if r.IdenticalAcrossShardCounts {
		m["identical_across_shard_counts"] = 1
	}
	if r.Drops == 0 && r.Refreshes > 0 {
		m["no_drops"] = 1
	}
	if r.SublinearOK() {
		m["sublinear_ok"] = 1
	}
	if r.MixedP99OK() {
		m["read_p99_bounded"] = 1
	}
	if r.AppendFailures == 0 && r.MixedAppends > 0 {
		m["zero_append_failures"] = 1
	}
	return m
}

// Print renders the append-path characterization.
func (r *IngestspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Batched append path, %d templates x 2 probes, %d rows ingested per arm\n",
		r.Templates, r.AppendedRows)
	fmt.Fprintf(w, "incremental refresh byte-identical to remat-on-append: %v (refreshes %d, drops %d)\n",
		r.IdenticalVsRemat, r.Refreshes, r.Drops)
	fmt.Fprintf(w, "identical across 1- and 2-group clusters: %v\n", r.IdenticalAcrossShardCounts)
	fmt.Fprintf(w, "steady-state refresh cost: %.4fs on 1x base vs %.4fs on %.1fx base (sublinear: %v)\n",
		r.SmallRefreshSec, r.BigRefreshSec, r.BaseRatio, r.SublinearOK())
	fmt.Fprintf(w, "read latency over %d queries: read-only p50 %.1fms p99 %.1fms; with ingest p50 %.1fms p99 %.1fms (bounded: %v)\n",
		r.ReadQueries, r.ReadOnlyP50, r.ReadOnlyP99, r.MixedP50, r.MixedP99, r.MixedP99OK())
	fmt.Fprintf(w, "appends during mixed run: %d (%d failures)\n", r.MixedAppends, r.AppendFailures)
}
