package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/core"
	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/sdss"
	"deepsea/internal/workload"
)

// Fig5aResult reproduces Figure 5a: DeepSea vs non-partitioned
// materialization vs vanilla Hive on the SDSS-modelled workload with no
// pool limit.
type Fig5aResult struct {
	Arms []*RunResult
}

// RunFig5a runs the three arms.
func RunFig5a(p Params) (*Fig5aResult, error) {
	data, queries := sdssWorkload(p)
	var out Fig5aResult
	for _, arm := range []struct {
		name string
		cfg  core.Config
	}{
		{"H", HiveCfg()},
		{"RS", ReStoreCfg()},
		{"NP", NPCfg()},
		{"DS", DSCfg()},
	} {
		r, err := RunWorkload(arm.name, data, queries, scaleCfg(arm.cfg, data.GB, 500))
		if err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, r)
	}
	return &out, nil
}

// Print renders elapsed time per arm plus ratios, the quantities Figure
// 5a's bars show.
func (r *Fig5aResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5a: workload simulating SDSS, no pool limit — elapsed time")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\telapsed (s)\t% of Hive\trewritten queries")
	hive := r.Arms[0].Total()
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f%%\t%d\n", a.Name, a.Total(), a.Total()/hive*100, a.Rewritten)
	}
	fmt.Fprintln(tw, "(RS = ReStore-style physical matching, added for contrast)")
	tw.Flush()
}

// Fig5bResult reproduces Figure 5b: Nectar vs Nectar+ vs DeepSea at pool
// size limits of 10/25/50/100% of the base tables (plus the 5% row
// discussed in the text, where all strategies oscillate).
type Fig5bResult struct {
	// PoolPct lists the pool sizes as percent of base-table bytes.
	PoolPct []int
	// Totals[arm][i] is the elapsed seconds at PoolPct[i].
	Totals map[string][]float64
	// Mats[arm][i] is the materialization share of Totals[arm][i].
	Mats map[string][]float64
	// HiveTotal is the no-materialization reference.
	HiveTotal float64
	ArmOrder  []string
}

// RunFig5b sweeps the pool size for the three selection strategies.
func RunFig5b(p Params) (*Fig5bResult, error) {
	data, queries := sdssWorkload(p)
	base := data.TotalBytes()
	res := &Fig5bResult{
		PoolPct:  []int{5, 10, 25, 50, 100},
		Totals:   make(map[string][]float64),
		Mats:     make(map[string][]float64),
		ArmOrder: []string{"N", "N+", "DS"},
	}
	hive, err := RunWorkload("H", data, queries, HiveCfg())
	if err != nil {
		return nil, err
	}
	res.HiveTotal = hive.Total()
	for _, arm := range res.ArmOrder {
		for _, pct := range res.PoolPct {
			var cfg core.Config
			switch arm {
			case "N":
				cfg = NectarCfg()
			case "N+":
				cfg = NectarPlusCfg()
			default:
				cfg = DSCfg()
			}
			cfg.Smax = base * int64(pct) / 100
			r, err := RunWorkload(fmt.Sprintf("%s@%d%%", arm, pct), data, queries, scaleCfg(cfg, data.GB, 500))
			if err != nil {
				return nil, err
			}
			res.Totals[arm] = append(res.Totals[arm], r.Total())
			res.Mats[arm] = append(res.Mats[arm], r.MatSeconds)
		}
	}
	return res, nil
}

// Print renders the pool-size sweep.
func (r *Fig5bResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5b: selection strategies vs pool size (elapsed s; Hive reference", int(r.HiveTotal), "s)")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "arm")
	for _, pct := range r.PoolPct {
		fmt.Fprintf(tw, "\t%d%%", pct)
	}
	fmt.Fprintln(tw)
	for _, arm := range r.ArmOrder {
		fmt.Fprint(tw, arm)
		for i, tot := range r.Totals[arm] {
			fmt.Fprintf(tw, "\t%.0f (m%.0f)", tot, r.Mats[arm][i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// sdssWorkload builds the Section 10.1 setup: a BigBench instance whose
// item_sk distribution follows the SDSS histogram, and a 1000-query
// workload of random join templates whose selection ranges replay the
// SDSS trace in submission order (an evenly spaced subsample of the
// 10,000-query trace, preserving its evolution).
func sdssWorkload(p Params) (*workload.Data, []query.Node) {
	gb := p.gb(500)
	data := workload.Generate(gb, p.Seed, workload.Sampler(sdss.Sampler(40)))
	nq := p.queries(1000)
	trace := sdss.Trace(sdss.TraceOptions{N: 10 * nq, Seed: p.Seed + 1})
	ranges := traceToItemSk(trace)
	picked := make([]interval.Interval, 0, nq)
	for i := 0; i < nq; i++ {
		picked = append(picked, ranges[i*10])
	}
	rng := rand.New(rand.NewSource(p.Seed + 2))
	return data, mixedQueries(data, picked, rng)
}
