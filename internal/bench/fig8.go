package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/core"
	"deepsea/internal/workload"
)

// Fig8aResult reproduces Figure 8a: exploiting fragment correlations
// under normally-distributed hits. Workload: 10 Q30 queries with big
// selectivity and heavy skew followed by 10 with small selectivity and
// heavy skew; 500 GB instance; pool limited to 7 GB. DeepSea's
// MLE-smoothed selection keeps neighbours of hot fragments that Nectar
// evicts.
type Fig8aResult struct {
	Arms []*RunResult
}

// RunFig8a runs Nectar vs DeepSea (plus the raw-hits ablation).
func RunFig8a(p Params) (*Fig8aResult, error) {
	gb := p.gb(500)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 20))
	dom := workload.ItemSkDomain()
	ranges := append(
		workload.Ranges(10, workload.Big, workload.Heavy, dom, rng),
		workload.Ranges(10, workload.Small, workload.Heavy, dom, rng)...)
	queries := templateQueries(data, workload.Q30, ranges)

	smax := int64(7) << 30 * gb / 500
	arms := []struct {
		name string
		cfg  core.Config
	}{
		{"N", NectarCfg()},
		{"DS", DSCfg()},
		{"DS-raw", func() core.Config { c := DSCfg(); c.Selection = core.SelectDeepSeaRawHits; return c }()},
	}
	var out Fig8aResult
	for _, arm := range arms {
		cfg := scaleCfg(arm.cfg, gb, 500)
		cfg.Smax = smax
		r, err := RunWorkload(arm.name, data, queries, cfg)
		if err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, r)
	}
	return &out, nil
}

// Print renders the cumulative series.
func (r *Fig8aResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 8a: fragment-correlation selection, normal hits (cumulative s, pool 7 GB)")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "query")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "\t%s", a.Name)
	}
	fmt.Fprintln(tw)
	cums := make([][]float64, len(r.Arms))
	for i, a := range r.Arms {
		cums[i] = a.Cumulative()
	}
	for q := 0; q < len(cums[0]); q++ {
		fmt.Fprintf(tw, "Q30_%d", q+1)
		for i := range r.Arms {
			fmt.Fprintf(tw, "\t%.0f", cums[i][q])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig8bResult reproduces Figure 8b: the same comparison when selection
// midpoints follow a Zipf distribution, across pool sizes 4/8/25 GB —
// DeepSea's normal-fit smoothing must not hurt under a radically
// different distribution.
type Fig8bResult struct {
	PoolGB   []int64
	Totals   map[string][]float64
	ArmOrder []string
}

// RunFig8b runs the sweep.
func RunFig8b(p Params) (*Fig8bResult, error) {
	gb := p.gb(500)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 21))
	dom := workload.ItemSkDomain()
	nq := p.queries(60)
	ranges := workload.ZipfRanges(nq, workload.Small, dom, 1.6, rng)
	queries := templateQueries(data, workload.Q30, ranges)

	res := &Fig8bResult{
		PoolGB:   []int64{4, 8, 25},
		Totals:   make(map[string][]float64),
		ArmOrder: []string{"N", "DS"},
	}
	for _, arm := range res.ArmOrder {
		for _, poolGB := range res.PoolGB {
			var cfg core.Config
			if arm == "N" {
				cfg = NectarCfg()
			} else {
				cfg = DSCfg()
			}
			cfg = scaleCfg(cfg, gb, 500)
			cfg.Smax = poolGB << 30 * gb / 500
			r, err := RunWorkload(fmt.Sprintf("%s@%dGB", arm, poolGB), data, queries, cfg)
			if err != nil {
				return nil, err
			}
			res.Totals[arm] = append(res.Totals[arm], r.Total())
		}
	}
	return res, nil
}

// Print renders the pool sweep.
func (r *Fig8bResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 8b: selection ranges following a Zipf distribution (elapsed s)")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "arm")
	for _, g := range r.PoolGB {
		fmt.Fprintf(tw, "\t%d GB", g)
	}
	fmt.Fprintln(tw)
	for _, arm := range r.ArmOrder {
		fmt.Fprint(tw, arm)
		for _, tot := range r.Totals[arm] {
			fmt.Fprintf(tw, "\t%.0f", tot)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
