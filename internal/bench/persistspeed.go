package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"deepsea/internal/core"
	"deepsea/internal/datastore"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/workload"
)

// PersistspeedResult reports what the write-ahead journal costs on the
// hot path and what a warm restart buys: the same repetitive workload
// run volatile and journaled (results must stay identical), then the
// journaled arm is abandoned mid-flight — no Close, no final snapshot,
// exactly a crash — and recovered from the journal alone. The recovered
// instance must answer the workload byte-identically and warm, from the
// views it recovered rather than from base tables.
type PersistspeedResult struct {
	// MemWallSeconds and JournalWallSeconds time the identical timed
	// phase without and with a FileStore attached.
	MemWallSeconds     float64
	JournalWallSeconds float64
	// JournalRecords and JournalBytes count what the journaled arm wrote.
	JournalRecords uint64
	JournalBytes   int64
	// RecoverySeconds times reopening the store and rebuilding the
	// instance (snapshot load + journal tail replay).
	RecoverySeconds float64
	// Replayed counts journal records applied during recovery.
	Replayed int
	// Identical: the journaled arm matched the volatile arm byte for
	// byte on every query. RecoveredIdentical: the recovered instance
	// did too.
	Identical          bool
	RecoveredIdentical bool
	// RecoveryOK reports recovery ran and reported no error.
	RecoveryOK bool
	// WarmHitFraction is the fraction of distinct templates the
	// recovered instance answered from recovered views on first issue.
	WarmHitFraction float64
}

// persistspeedRun executes the workload on one fresh system and returns
// the timed-phase wall time plus per-query fingerprints for the whole
// sequence. With returnSys the system is handed back un-closed so the
// caller can abandon it crash-style.
func persistspeedRun(data *workload.Data, warmup, timed []query.Node, cfg core.Config) (float64, []string, *core.DeepSea, error) {
	d := core.New(cfg)
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}
	tables := make([]*relation.Table, 0, len(warmup)+len(timed))
	for i, q := range warmup {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("persistspeed warmup %d: %w", i, err)
		}
		tables = append(tables, rep.Result)
	}
	start := time.Now()
	for i, q := range timed {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("persistspeed query %d: %w", i, err)
		}
		tables = append(tables, rep.Result)
	}
	wall := time.Since(start).Seconds()
	fingerprints := make([]string, 0, len(tables))
	for _, tbl := range tables {
		fingerprints = append(fingerprints, tbl.Fingerprint())
	}
	return wall, fingerprints, d, nil
}

// RunPersistspeed measures journal overhead and warm-restart fidelity.
// Both arms run the identical warmup and timed phase; only the timed
// phase is measured. The journaled arm then "crashes" (its store is
// abandoned without Close or a snapshot), the directory is reopened,
// and a fresh instance recovers from the journal tail alone.
func RunPersistspeed(p Params) (*PersistspeedResult, error) {
	gb := p.gb(2000)
	data := workload.Generate(gb, p.Seed, nil)
	total := p.queries(160)
	nDistinct := total / 8
	if nDistinct < 4 {
		nDistinct = 4
	}
	if nDistinct > 12 {
		nDistinct = 12
	}
	if total < nDistinct*2 {
		total = nDistinct * 2
	}
	warmup, timed := cachespeedQueries(data, nDistinct, total, p.Seed+41)

	res := &PersistspeedResult{}

	// Volatile arm.
	memCfg := scaleCfg(DSCfg(), gb, 2000)
	memWall, memPrints, _, err := persistspeedRun(data, warmup, timed, memCfg)
	if err != nil {
		return nil, err
	}
	res.MemWallSeconds = memWall

	// Journaled arm over a throwaway directory.
	dir, err := os.MkdirTemp("", "persistspeed-*")
	if err != nil {
		return nil, fmt.Errorf("persistspeed: temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	store, err := datastore.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("persistspeed: open store: %w", err)
	}
	jCfg := scaleCfg(DSCfg(), gb, 2000)
	jCfg.Datastore = store
	jWall, jPrints, _, err := persistspeedRun(data, warmup, timed, jCfg)
	if err != nil {
		return nil, err
	}
	res.JournalWallSeconds = jWall
	st := store.Stats()
	res.JournalRecords, res.JournalBytes = st.Records, st.Bytes
	res.Identical = equalPrints(memPrints, jPrints)

	// Crash: the journaled system and its store handle are simply
	// abandoned — every record was flushed per append, nothing else is
	// durable. Reopen and recover.
	recStart := time.Now()
	store2, err := datastore.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("persistspeed: reopen store: %w", err)
	}
	defer store2.Close()
	rCfg := scaleCfg(DSCfg(), gb, 2000)
	rCfg.Datastore = store2
	d := core.New(rCfg)
	res.RecoverySeconds = time.Since(recStart).Seconds()
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}
	rec := d.Recovery()
	res.RecoveryOK = rec.Ran && rec.Err == ""
	res.Replayed = rec.Replayed

	// Warm probe: the distinct templates, first issue after restart.
	// Each must come back byte-identical; WarmHitFraction counts how
	// many were answered from recovered views.
	probe := warmup[:len(warmup)/2]
	warm := 0
	res.RecoveredIdentical = true
	for i, q := range probe {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return nil, fmt.Errorf("persistspeed probe %d: %w", i, err)
		}
		if rep.Result.Fingerprint() != memPrints[i] {
			res.RecoveredIdentical = false
		}
		if rep.Rewritten {
			warm++
		}
	}
	if len(probe) > 0 {
		res.WarmHitFraction = float64(warm) / float64(len(probe))
	}
	return res, nil
}

func equalPrints(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Overhead returns journal wall / volatile wall.
func (r *PersistspeedResult) Overhead() float64 {
	if r.MemWallSeconds == 0 {
		return 0
	}
	return r.JournalWallSeconds / r.MemWallSeconds
}

// overheadOK bounds the journal's hot-path cost: within 1.5x of the
// volatile arm plus a quarter-second of absolute slack for tiny
// CI-scale runs where both walls are milliseconds.
func (r *PersistspeedResult) overheadOK() bool {
	return r.JournalWallSeconds <= r.MemWallSeconds*1.5+0.25
}

// Metrics exports pass/fail gates (0/1) and the raw figures.
func (r *PersistspeedResult) Metrics() map[string]float64 {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	return map[string]float64{
		"identical":            b(r.Identical),
		"overhead_ok":          b(r.overheadOK()),
		"recovery_ok":          b(r.RecoveryOK),
		"recovered_identical":  b(r.RecoveredIdentical),
		"warm_hit_ok":          b(r.WarmHitFraction >= 0.5),
		"warm_hit_fraction":    r.WarmHitFraction,
		"overhead":             r.Overhead(),
		"wall_seconds_mem":     r.MemWallSeconds,
		"wall_seconds_journal": r.JournalWallSeconds,
		"recovery_seconds":     r.RecoverySeconds,
		"journal_records":      float64(r.JournalRecords),
		"journal_bytes":        float64(r.JournalBytes),
		"replayed":             float64(r.Replayed),
	}
}

// Print renders the comparison.
func (r *PersistspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Write-ahead journal overhead and warm restart\n")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\twall s\tjournal records\tjournal bytes")
	fmt.Fprintf(tw, "volatile\t%.3f\t-\t-\n", r.MemWallSeconds)
	fmt.Fprintf(tw, "journaled\t%.3f\t%d\t%d\n",
		r.JournalWallSeconds, r.JournalRecords, r.JournalBytes)
	tw.Flush()
	fmt.Fprintf(w, "hot-path overhead: %.2fx (ok: %v); results identical: %v\n",
		r.Overhead(), r.overheadOK(), r.Identical)
	fmt.Fprintf(w, "crash recovery: %.3fs, %d records replayed, clean: %v\n",
		r.RecoverySeconds, r.Replayed, r.RecoveryOK)
	fmt.Fprintf(w, "post-restart: identical %v, warm-hit fraction %.0f%%\n",
		r.RecoveredIdentical, r.WarmHitFraction*100)
}
