package bench

import (
	"math/rand"
	"sync"
	"testing"

	"deepsea/internal/core"
	"deepsea/internal/query"
	"deepsea/internal/workload"
)

// parallelArms runs the same workload at parallelism 1 and 8 on fresh
// systems and fails if any query's result or the final file system
// differs — the byte-identical guarantee over realistic workloads.
func parallelArms(t *testing.T, data *workload.Data, queries []query.Node, cfg core.Config) {
	t.Helper()
	type outcome struct {
		prints []string
		files  string
	}
	runArm := func(par int) outcome {
		c := cfg
		c.Parallelism = par
		_, _, fp, fl, err := trackedRun(data, queries, c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return outcome{prints: fp, files: fl}
	}
	seq, par := runArm(1), runArm(8)
	for i := range seq.prints {
		if seq.prints[i] != par.prints[i] {
			t.Errorf("query %d: parallelism changed the result", i)
		}
	}
	if seq.files != par.files {
		t.Error("parallelism changed the final file system")
	}
}

// TestFig5WorkloadDeterministicAcrossParallelism checks the SDSS-shaped
// Figure 5 workload (mixed templates, trace-derived ranges).
func TestFig5WorkloadDeterministicAcrossParallelism(t *testing.T) {
	p := Short()
	data, queries := sdssWorkload(p)
	if len(queries) > 30 {
		queries = queries[:30]
	}
	parallelArms(t, data, queries, scaleCfg(DSCfg(), data.GB, 500))
}

// TestFig7WorkloadDeterministicAcrossParallelism checks a Figure 7
// setting (heavy skew, small selectivity, Q30 template).
func TestFig7WorkloadDeterministicAcrossParallelism(t *testing.T) {
	p := Short()
	gb := p.gb(500)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 10))
	ranges := workload.Ranges(20, workload.Small, workload.Heavy, workload.ItemSkDomain(), rng)
	queries := templateQueries(data, workload.Q30, ranges)
	parallelArms(t, data, queries, scaleCfg(DSCfg(), gb, 500))
}

// TestParspeedArmsRunConcurrently races two parspeed arms at different
// parallelism levels against each other in separate goroutines. Each arm
// builds its own dataset, RNG and system from the shared seed, so nothing
// is shared; the outcomes must nevertheless be identical. This is the
// regression test for the old parspeed harness, whose arms shared a
// dataset and RNG and therefore could only run back-to-back.
func TestParspeedArmsRunConcurrently(t *testing.T) {
	p := Short()
	type outcome struct {
		prints []string
		files  string
		err    error
	}
	pars := []int{1, 6}
	outs := make([]outcome, len(pars))
	var wg sync.WaitGroup
	for i, par := range pars {
		wg.Add(1)
		go func(i, par int) {
			defer wg.Done()
			_, _, fp, fl, err := parspeedRun(p, parspeedCfg(p, DSCfg, par))
			outs[i] = outcome{prints: fp, files: fl, err: err}
		}(i, par)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("arm par=%d: %v", pars[i], o.err)
		}
	}
	if len(outs[0].prints) != len(outs[1].prints) {
		t.Fatalf("arms answered %d vs %d queries", len(outs[0].prints), len(outs[1].prints))
	}
	for i := range outs[0].prints {
		if outs[0].prints[i] != outs[1].prints[i] {
			t.Errorf("query %d: concurrent arms disagree", i)
		}
	}
	if outs[0].files != outs[1].files {
		t.Error("concurrent arms produced different file systems")
	}
}
