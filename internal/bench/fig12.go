package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"deepsea/internal/interval"
	"deepsea/internal/sdss"
)

// Fig1Result is the access histogram of the synthetic SDSS trace —
// the reproduction of Figure 1 ("Histogram of selection ranges on SDSS").
type Fig1Result struct {
	Hist *sdss.Histogram
}

// RunFig1 builds the 10,000-query trace and bins its selection ranges.
func RunFig1(p Params) *Fig1Result {
	n := p.queries(10000)
	trace := sdss.Trace(sdss.TraceOptions{N: n, Seed: p.Seed})
	return &Fig1Result{Hist: sdss.HitHistogram(trace, 42)}
}

// Print renders the histogram as an ASCII bar chart, mirroring Figure 1's
// axes (ra degrees vs hits).
func (r *Fig1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: histogram of selection ranges on (synthetic) SDSS, attribute ra")
	maxC := 0.0
	for _, c := range r.Hist.Counts {
		if c > maxC {
			maxC = c
		}
	}
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "ra range (deg)\thits\t")
	for i := range r.Hist.Counts {
		iv := r.Hist.BinInterval(i)
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", int(r.Hist.Counts[i]/maxC*50))
		}
		fmt.Fprintf(tw, "%3d..%3d\t%6.0f\t%s\n",
			iv.Lo/sdss.RAScale, (iv.Hi+1)/sdss.RAScale, r.Hist.Counts[i], bar)
	}
	tw.Flush()
}

// Fig2Result summarises the evolution of selection ranges over the query
// sequence — the reproduction of Figure 2.
type Fig2Result struct {
	// WindowSize is the number of queries per reported window.
	WindowSize int
	// Windows holds, per window, the 10th/50th/90th percentile of range
	// midpoints in degrees.
	Windows []Fig2Window
}

// Fig2Window is one reporting window.
type Fig2Window struct {
	FirstQuery int
	P10        float64
	P50        float64
	P90        float64
	FullScans  int
}

// RunFig2 builds the trace and summarises midpoint evolution per window.
func RunFig2(p Params) *Fig2Result {
	n := p.queries(10000)
	trace := sdss.Trace(sdss.TraceOptions{N: n, Seed: p.Seed})
	win := n / 20
	if win < 1 {
		win = 1
	}
	res := &Fig2Result{WindowSize: win}
	dom := sdss.Domain()
	for start := 0; start < n; start += win {
		end := start + win
		if end > n {
			end = n
		}
		var mids []float64
		full := 0
		for _, iv := range trace[start:end] {
			if iv == dom {
				full++
				continue
			}
			mids = append(mids, float64(iv.Lo+iv.Hi)/2/sdss.RAScale)
		}
		res.Windows = append(res.Windows, Fig2Window{
			FirstQuery: start + 1,
			P10:        percentile(mids, 0.10),
			P50:        percentile(mids, 0.50),
			P90:        percentile(mids, 0.90),
			FullScans:  full,
		})
	}
	return res
}

// Print renders the evolution as one row per window.
func (r *Fig2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: evolution of selection ranges over the query sequence (degrees)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "query#\tp10\tmedian\tp90\tfull-domain scans")
	for _, win := range r.Windows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%d\n",
			win.FirstQuery, win.P10, win.P50, win.P90, win.FullScans)
	}
	tw.Flush()
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// traceToItemSk maps scaled-ra trace intervals onto the item_sk domain.
// Both domains are [0, 400000], so this is a clamp.
func traceToItemSk(trace []interval.Interval) []interval.Interval {
	dom := interval.New(0, 400000)
	out := make([]interval.Interval, len(trace))
	for i, iv := range trace {
		x, ok := iv.Intersect(dom)
		if !ok {
			x = interval.New(dom.Lo, dom.Lo)
		}
		out[i] = x
	}
	return out
}
