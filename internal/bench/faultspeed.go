package bench

import (
	"fmt"
	"io"
	"runtime"

	"deepsea/internal/faults"
)

// faultspeedRepeats is how many times each arm runs; the minimum wall
// time per arm is compared, which discards scheduler noise.
const faultspeedRepeats = 3

// FaultspeedRow is one arm of the fault-plumbing overhead comparison.
type FaultspeedRow struct {
	Name string
	// WallSeconds is the minimum real elapsed time over the repeats.
	WallSeconds float64
	// SimSeconds is the simulated cluster time (identical across arms).
	SimSeconds float64
}

// FaultspeedResult reports the cost of the fault-injection plumbing on
// the parallel data path. Two arms run the parspeed DS workload: "off"
// (no injector configured — every fault check is a nil-receiver fast
// path) and "zero" (an injector armed at zero probability on every
// site — each check hashes its site/key but never injects). The gate
// demands byte-identical results and an overhead within OverheadSlack.
type FaultspeedResult struct {
	Rows []FaultspeedRow
	// Identical reports whether both arms produced byte-identical
	// per-query fingerprints and final file systems, and the zero arm
	// really injected nothing.
	Identical bool
	// OverheadSeconds is wall("zero") - wall("off") on the min-of-N
	// wall times; negative values mean the difference drowned in noise.
	OverheadSeconds float64
	// OverheadSlack is the allowance: max(1% of the off arm, 50ms).
	OverheadSlack float64
	Workers       int
}

// faultspeedRun executes one arm of the comparison: the parspeed DS
// workload at full parallelism, with the given fault configuration.
func faultspeedRun(p Params, fc *faults.Config, workers int) (wall, sim float64, fingerprints []string, files string, err error) {
	cfg := parspeedCfg(p, DSCfg, workers)
	cfg.Faults = fc
	return parspeedRun(p, cfg)
}

// RunFaultspeed measures what the fault-injection hooks cost when no
// faults fire. Arms alternate (off, zero, off, zero, ...) so slow
// machine phases hit both equally; each arm's minimum wall time is
// compared.
func RunFaultspeed(p Params) (*FaultspeedResult, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	arms := []struct {
		name string
		fc   *faults.Config
	}{
		{"off", nil},
		{"zero", &faults.Config{Seed: p.Seed}},
	}

	res := &FaultspeedResult{Identical: true, Workers: workers}
	wallMin := make(map[string]float64)
	prints, files := make(map[string][]string), make(map[string]string)
	sims := make(map[string]float64)
	for rep := 0; rep < faultspeedRepeats; rep++ {
		for _, arm := range arms {
			wall, sim, fp, fl, err := faultspeedRun(p, arm.fc, workers)
			if err != nil {
				return nil, fmt.Errorf("faultspeed %s arm: %w", arm.name, err)
			}
			if w, ok := wallMin[arm.name]; !ok || wall < w {
				wallMin[arm.name] = wall
			}
			prints[arm.name], files[arm.name], sims[arm.name] = fp, fl, sim
		}
	}
	for _, arm := range arms {
		res.Rows = append(res.Rows, FaultspeedRow{
			Name:        arm.name,
			WallSeconds: wallMin[arm.name],
			SimSeconds:  sims[arm.name],
		})
	}

	if files["off"] != files["zero"] || len(prints["off"]) != len(prints["zero"]) {
		res.Identical = false
	} else {
		for i := range prints["off"] {
			if prints["off"][i] != prints["zero"][i] {
				res.Identical = false
				break
			}
		}
	}

	res.OverheadSeconds = wallMin["zero"] - wallMin["off"]
	res.OverheadSlack = 0.01 * wallMin["off"]
	if res.OverheadSlack < 0.05 {
		res.OverheadSlack = 0.05
	}
	return res, nil
}

// OverheadOK reports whether the armed-at-zero injector stayed within
// the slack of the no-injector arm.
func (r *FaultspeedResult) OverheadOK() bool {
	return r.OverheadSeconds <= r.OverheadSlack
}

// Metrics exports the headline numbers for machine-readable output.
func (r *FaultspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"workers":          float64(r.Workers),
		"identical":        0,
		"overhead_ok":      0,
		"overhead_seconds": r.OverheadSeconds,
		"overhead_slack":   r.OverheadSlack,
	}
	if r.Identical {
		m["identical"] = 1
	}
	if r.OverheadOK() {
		m["overhead_ok"] = 1
	}
	for _, row := range r.Rows {
		m["wall_seconds_"+row.Name] = row.WallSeconds
	}
	return m
}

// Print renders the comparison.
func (r *FaultspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fault-injection plumbing overhead (%d workers), parspeed DS workload, min of %d runs\n",
		r.Workers, faultspeedRepeats)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\twall s\tsim s")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\n", row.Name, row.WallSeconds, row.SimSeconds)
	}
	tw.Flush()
	fmt.Fprintf(w, "overhead: %.3fs (slack %.3fs) — within budget: %v\n",
		r.OverheadSeconds, r.OverheadSlack, r.OverheadOK())
	fmt.Fprintf(w, "identical results and pool with and without the injector: %v\n", r.Identical)
}
