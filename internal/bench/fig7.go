package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/core"
	"deepsea/internal/workload"
)

// fig7Setting is one of the nine selectivity × skew combinations.
type fig7Setting struct {
	name        string
	selectivity float64
	skew        workload.Skew
}

var fig7Settings = []fig7Setting{
	{"BU", workload.Big, workload.Uniform},
	{"BL", workload.Big, workload.Light},
	{"BH", workload.Big, workload.Heavy},
	{"MU", workload.Medium, workload.Uniform},
	{"ML", workload.Medium, workload.Light},
	{"MH", workload.Medium, workload.Heavy},
	{"SU", workload.Small, workload.Uniform},
	{"SL", workload.Small, workload.Light},
	{"SH", workload.Small, workload.Heavy},
}

// Fig7Result reproduces Figure 7: per selectivity×skew setting, (a) the
// projected elapsed time of 100 queries as a fraction of Hive's, for NP,
// E (equi-depth) and DS; and (b) the number of queries needed to recoup
// the materialization cost. The projection follows the paper's method:
// run 10 queries, fit the steady-state per-query time by linear
// regression, extrapolate to 100.
type Fig7Result struct {
	Settings []string
	// Projection[arm][i] is projected-time(arm)/projected-time(Hive) for
	// setting i.
	Projection map[string][]float64
	// Recoup[arm][i] is the query index at which the arm's cumulative
	// time drops below Hive's (0 = never within the horizon).
	Recoup   map[string][]int
	ArmOrder []string
	Horizon  int
}

// RunFig7 runs the sweep.
func RunFig7(p Params) (*Fig7Result, error) {
	gb := p.gb(500)
	data := workload.Generate(gb, p.Seed, nil)
	res := &Fig7Result{
		Projection: make(map[string][]float64),
		Recoup:     make(map[string][]int),
		ArmOrder:   []string{"NP", "E", "DS"},
		Horizon:    20,
	}
	arms := map[string]func() core.Config{
		"H":  HiveCfg,
		"NP": NPCfg,
		"E":  func() core.Config { return EquiDepthCfg(15) },
		"DS": DSCfg,
	}
	for _, st := range fig7Settings {
		res.Settings = append(res.Settings, st.name)
		rng := rand.New(rand.NewSource(p.Seed + 10))
		ranges := workload.Ranges(res.Horizon, st.selectivity, st.skew, workload.ItemSkDomain(), rng)
		queries := templateQueries(data, workload.Q30, ranges)

		runs := make(map[string]*RunResult)
		for name, mk := range arms {
			r, err := RunWorkload(name+"/"+st.name, data, queries, scaleCfg(mk(), gb, 500))
			if err != nil {
				return nil, err
			}
			runs[name] = r
		}
		hiveProj := projectTo100(runs["H"])
		for _, arm := range res.ArmOrder {
			res.Projection[arm] = append(res.Projection[arm], projectTo100(runs[arm])/hiveProj)
			res.Recoup[arm] = append(res.Recoup[arm], recoupPoint(runs[arm], runs["H"]))
		}
	}
	return res, nil
}

// projectTo100 extrapolates a run's cumulative time to 100 queries using
// the mean per-query time of the second half of the run (the steady
// state, once views exist), the paper's linear-regression projection.
func projectTo100(r *RunResult) float64 {
	n := len(r.PerQuery)
	cum := r.Total()
	half := r.PerQuery[n/2:]
	var slope float64
	for _, s := range half {
		slope += s
	}
	slope /= float64(len(half))
	return cum + slope*float64(100-n)
}

// recoupPoint returns the 1-based query index at which arm's cumulative
// time drops to or below the baseline's, or 0 if it never does within
// the horizon.
func recoupPoint(arm, baseline *RunResult) int {
	ca, cb := arm.Cumulative(), baseline.Cumulative()
	for i := range ca {
		if ca[i] <= cb[i] {
			return i + 1
		}
	}
	return 0
}

// Print renders both panels.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7a: projected time for 100 queries (fraction of Hive), Q30, per setting")
	tw := newTabWriter(w)
	fmt.Fprint(tw, "arm")
	for _, s := range r.Settings {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, arm := range r.ArmOrder {
		fmt.Fprint(tw, arm)
		for _, v := range r.Projection[arm] {
			fmt.Fprintf(tw, "\t%.2f", v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nFigure 7b: queries needed to recoup materialization cost (0 = not within %d)\n", r.Horizon)
	tw = newTabWriter(w)
	fmt.Fprint(tw, "arm")
	for _, s := range r.Settings {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, arm := range r.ArmOrder {
		fmt.Fprint(tw, arm)
		for _, v := range r.Recoup[arm] {
			fmt.Fprintf(tw, "\t%d", v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
