package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/workload"
)

// Fig9Result reproduces Figure 9: overlapping versus horizontal
// partitioning over a shifting workload — 30 Q30 queries with small
// selectivity and heavy skew whose midpoints jump from 20,000 to 40,000
// to 60,000 every 10 queries, over the item_sk domain [0, 400000]
// (Section 10.4). Overlapping partitioning avoids rewriting the large
// unqueried tail fragment at each shift.
type Fig9Result struct {
	Horizontal  *RunResult
	Overlapping *RunResult
}

// RunFig9 runs both partitioning disciplines.
func RunFig9(p Params) (*Fig9Result, error) {
	gb := p.gb(100)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 30))
	ranges := workload.ShiftingRanges(
		[]int64{20000, 40000, 60000}, 10,
		workload.Small, workload.Heavy, workload.ItemSkDomain(), rng)
	queries := templateQueries(data, workload.Q30, ranges)

	hc := scaleCfg(DSHorizontalCfg(), gb, 100)
	oc := scaleCfg(DSCfg(), gb, 100)
	// Like Figure 6, the partitioning experiments leave the largest
	// fragment unbounded; splitting (or overlapping) the big cold
	// fragment at each shift is precisely what the experiment measures.
	hc.MaxFragFraction = 0
	oc.MaxFragFraction = 0
	h, err := RunWorkload("Horizontal", data, queries, hc)
	if err != nil {
		return nil, err
	}
	o, err := RunWorkload("Overlapping", data, queries, oc)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Horizontal: h, Overlapping: o}, nil
}

// Print renders the cumulative series at every query, mirroring the
// figure's x-axis Q30_1..Q30_30.
func (r *Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: overlapping vs horizontal partitioning (cumulative s)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "query\thorizontal\toverlapping")
	ch, co := r.Horizontal.Cumulative(), r.Overlapping.Cumulative()
	for q := range ch {
		fmt.Fprintf(tw, "Q30_%d\t%.0f\t%.0f\n", q+1, ch[q], co[q])
	}
	tw.Flush()
	fmt.Fprintf(w, "repartitioning cost: horizontal=%.0f s, overlapping=%.0f s\n",
		r.Horizontal.MatSeconds, r.Overlapping.MatSeconds)
}
