package bench

import (
	"fmt"
	"io"
	"sort"
)

// Printable is any experiment result that can render itself.
type Printable interface {
	Print(w io.Writer)
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) (Printable, error)
}

// Experiments lists every reproducible table and figure, in paper order.
var Experiments = []Experiment{
	{"fig1", "Histogram of selection ranges on SDSS", func(p Params) (Printable, error) {
		return RunFig1(p), nil
	}},
	{"fig2", "Evolution of selection ranges on SDSS", func(p Params) (Printable, error) {
		return RunFig2(p), nil
	}},
	{"tab1", "Parameter grid sweep", func(p Params) (Printable, error) {
		return RunTab1(p)
	}},
	{"fig5a", "DS vs NP vs Hive, SDSS-modelled workload", func(p Params) (Printable, error) {
		return RunFig5a(p)
	}},
	{"fig5b", "Selection strategies vs pool size", func(p Params) (Printable, error) {
		return RunFig5b(p)
	}},
	{"fig6", "Equi-depth vs adaptive partitioning", func(p Params) (Printable, error) {
		return RunFig6(p)
	}},
	{"fig7", "Varying selectivity and skew (7a projection, 7b recoup)", func(p Params) (Printable, error) {
		return RunFig7(p)
	}},
	{"fig8a", "Fragment correlations, normal hits", func(p Params) (Printable, error) {
		return RunFig8a(p)
	}},
	{"fig8b", "Fragment correlations, Zipf hits", func(p Params) (Printable, error) {
		return RunFig8b(p)
	}},
	{"fig9", "Overlapping vs horizontal partitioning", func(p Params) (Printable, error) {
		return RunFig9(p)
	}},
	{"fig10", "Adaptation to workload changes (10a, 10b)", func(p Params) (Printable, error) {
		return RunFig10(p)
	}},
	{"ablation", "Design-choice ablation (guards, by-product pricing, MLE, overlap, merging)", func(p Params) (Printable, error) {
		return RunAblation(p)
	}},
	{"sensitivity", "Cost-model sensitivity of the Figure 6 comparison", func(p Params) (Printable, error) {
		return RunSensitivity(p)
	}},
	{"parspeed", "Wall-clock speedup of the parallel data path (results stay identical)", func(p Params) (Printable, error) {
		return RunParspeed(p)
	}},
	{"cachespeed", "Wall-clock speedup of the result cache on a repetitive workload", func(p Params) (Printable, error) {
		return RunCachespeed(p)
	}},
	{"lockspeed", "Per-view lock striping on disjoint-view families (results stay identical)", func(p Params) (Printable, error) {
		return RunLockspeed(p)
	}},
	{"faultspeed", "Fault-injection plumbing overhead when no faults fire (results stay identical)", func(p Params) (Printable, error) {
		return RunFaultspeed(p)
	}},
	{"servespeed", "HTTP serving layer: admission, load shedding, template-batched planning (results stay identical)", func(p Params) (Printable, error) {
		return RunServespeed(p)
	}},
	{"persistspeed", "Write-ahead journal overhead and warm-restart fidelity (results stay identical)", func(p Params) (Printable, error) {
		return RunPersistspeed(p)
	}},
	{"maintspeed", "Background maintenance dataflow: queries pay execution only (results stay identical, pool converges)", func(p Params) (Printable, error) {
		return RunMaintspeed(p)
	}},
	{"shardspeed", "Range-sharded scatter-gather: merged results identical across shard counts, disjoint traces scale, rebalance tames skew", func(p Params) (Printable, error) {
		return RunShardspeed(p)
	}},
	{"failspeed", "Replicated shard groups under failure: replica kill invisible to clients, hedging beats stragglers, breakers bound dead-replica cost", func(p Params) (Printable, error) {
		return RunFailspeed(p)
	}},
	{"ingestspeed", "Batched append path: incremental refresh byte-identical to remat across templates and shard counts, refresh cost sublinear in base size, read p99 bounded under concurrent ingest", func(p Params) (Printable, error) {
		return RunIngestspeed(p)
	}},
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids sorted.
func IDs() []string {
	out := make([]string, len(Experiments))
	for i, e := range Experiments {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment and returns its descriptor and result —
// the programmatic sibling of RunAndPrint, for callers that post-process
// the result (JSON output).
func Run(id string, p Params) (Experiment, Printable, error) {
	e, ok := Lookup(id)
	if !ok {
		return Experiment{}, nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, IDs())
	}
	res, err := e.Run(p)
	if err != nil {
		return Experiment{}, nil, fmt.Errorf("bench: %s: %w", id, err)
	}
	return e, res, nil
}

// RunAndPrint runs one experiment and prints its result with a header.
func RunAndPrint(w io.Writer, id string, p Params) error {
	e, res, err := Run(id, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
	res.Print(w)
	fmt.Fprintln(w)
	return nil
}
