package bench

import (
	"strings"
	"testing"
)

// TestFaultspeedIdenticalAtTinyScale checks the identity half of the
// faultspeed gate at unit-test scale: an injector armed at zero
// probability must not change a single fingerprint or pool file. The
// wall-clock overhead half is only meaningful at bench scale and is
// gated by benchcheck, not here.
func TestFaultspeedIdenticalAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := RunFaultspeed(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("zero-rate injector changed results or pool")
	}
	m := res.Metrics()
	if m["identical"] != 1 {
		t.Error("metrics: identical != 1")
	}
	for _, key := range []string{"overhead_ok", "overhead_seconds", "overhead_slack", "wall_seconds_off", "wall_seconds_zero"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics: missing %q", key)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "identical results") {
		t.Error("print missing identity line")
	}
}
