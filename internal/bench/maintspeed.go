package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"deepsea/internal/core"
)

// The maintspeed experiment measures the background maintenance
// dataflow: the same adaptive workload run with inline maintenance
// (queries pay for materializations, splits, merges and sweeps) versus
// background mode (queries enqueue candidates and return after
// execution alone; a bounded worker pool drains them in Φ order). The
// gated properties are the correctness contract, not wall-clock:
// results byte-identical, the query-visible simulated p99 strictly
// below the inline arm (the tail no longer pays materialization), the
// pool converging to the exact fragment set inline maintenance builds,
// and the task-accounting identity holding after the final drain (no
// maintenance silently lost).

// MaintspeedRow is one arm of the comparison.
type MaintspeedRow struct {
	Name string
	// WallSeconds is real elapsed time for the whole workload.
	WallSeconds float64
	// SimP50/SimP99/SimTotal summarize the per-query simulated seconds
	// the queries were charged (inline: exec + maintenance; background:
	// exec only).
	SimP50, SimP99, SimTotal float64
}

// MaintspeedResult reports the inline-vs-background comparison.
type MaintspeedResult struct {
	Rows    []MaintspeedRow
	Queries int
	// Identical: every background result byte-identical to inline.
	Identical bool
	// Converges: after the final drain the background pool holds exactly
	// the fragment set (intervals and sizes) the inline arm built.
	Converges bool
	// NoLostTasks: after the final drain the queue is empty, no task is
	// in flight, and Enqueued == Completed + Failed + Deduped + Dropped.
	NoLostTasks bool
	// Task traffic of the background arm.
	TasksEnqueued, TasksCompleted, TasksFailed, TasksDeduped, TasksDropped uint64
}

// maintPoolShape describes a pool's logical contents independent of
// file paths (workers may number files differently than inline
// maintenance): view-file sizes plus sorted fragment intervals/sizes.
func maintPoolShape(d *core.DeepSea) []string {
	var out []string
	for _, pv := range d.Pool.Views() {
		if pv.Path != "" {
			out = append(out, fmt.Sprintf("view %s size=%d", pv.ID, pv.Size))
		}
		for attr, part := range pv.Parts {
			for _, f := range part.Fragments() {
				out = append(out, fmt.Sprintf("frag %s.%s %s size=%d", pv.ID, attr, f.Iv, f.Size))
			}
		}
	}
	sort.Strings(out)
	return out
}

func maintShapesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maintPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func maintSummarize(name string, wall float64, sims []float64) MaintspeedRow {
	row := MaintspeedRow{Name: name, WallSeconds: wall}
	sorted := append([]float64(nil), sims...)
	sort.Float64s(sorted)
	row.SimP50 = maintPercentile(sorted, 0.5)
	row.SimP99 = maintPercentile(sorted, 0.99)
	for _, s := range sims {
		row.SimTotal += s
	}
	return row
}

// RunMaintspeed runs the inline-vs-background maintenance comparison.
func RunMaintspeed(p Params) (*MaintspeedResult, error) {
	factRows := 12000
	if p.ScaleGB == -1 { // Short mode: shrink the table
		factRows = 4000
	}
	nQueries := p.queries(40)
	fams := lockspeedFamilies(1, factRows, nQueries, p.Seed)
	fam := fams[0]

	mkSystem := func(mutate func(*core.Config)) *core.DeepSea {
		cfg := DSCfg()
		cfg.MinFragBytes = 64 << 20
		if cfg.Parallelism == 0 {
			cfg.Parallelism = defaultParallelism
		}
		if mutate != nil {
			mutate(&cfg)
		}
		d := core.New(cfg)
		d.AddBaseTable(fam.fact)
		d.AddBaseTable(fam.dim)
		return d
	}

	res := &MaintspeedResult{Queries: nQueries, Identical: true}

	// Inline arm: the classic Algorithm 1 — each query pays for its own
	// maintenance before returning.
	inline := mkSystem(nil)
	want := make([]string, nQueries)
	inlineSims := make([]float64, nQueries)
	start := time.Now()
	for q, node := range fam.queries {
		rep, err := inline.ProcessQuery(node)
		if err != nil {
			return nil, fmt.Errorf("maintspeed inline query %d: %w", q, err)
		}
		inlineSims[q] = rep.TotalSeconds
		want[q] = rep.Result.Fingerprint()
	}
	res.Rows = append(res.Rows,
		maintSummarize("inline", time.Since(start).Seconds(), inlineSims))

	// Background arm: queries enqueue and return; a drain after each
	// query settles the pool so every plan sees the state inline
	// maintenance would have left — the convergence contract. The
	// query-visible simulated time still excludes all maintenance.
	bg := mkSystem(func(c *core.Config) { c.MaintWorkers = 2 })
	defer bg.CloseMaintenance()
	bgSims := make([]float64, nQueries)
	start = time.Now()
	for q, node := range fam.queries {
		rep, err := bg.ProcessQuery(node)
		if err != nil {
			return nil, fmt.Errorf("maintspeed background query %d: %w", q, err)
		}
		bgSims[q] = rep.TotalSeconds
		if rep.Result.Fingerprint() != want[q] {
			res.Identical = false
		}
		if err := bg.DrainMaintenance(context.Background()); err != nil {
			return nil, fmt.Errorf("maintspeed drain after query %d: %w", q, err)
		}
	}
	res.Rows = append(res.Rows,
		maintSummarize("background", time.Since(start).Seconds(), bgSims))

	res.Converges = maintShapesEqual(maintPoolShape(inline), maintPoolShape(bg))
	ms := bg.MaintStats()
	res.TasksEnqueued = ms.Enqueued
	res.TasksCompleted = ms.Completed
	res.TasksFailed = ms.Failed
	res.TasksDeduped = ms.Deduped
	res.TasksDropped = ms.Dropped
	res.NoLostTasks = ms.Depth == 0 && ms.InFlight == 0 &&
		ms.Enqueued == ms.Completed+ms.Failed+ms.Deduped+ms.Dropped
	return res, nil
}

// P99Improves reports whether the background arm's query-visible
// simulated p99 is strictly below the inline arm's.
func (r *MaintspeedResult) P99Improves() bool {
	return len(r.Rows) == 2 && r.Rows[1].SimP99 < r.Rows[0].SimP99
}

// Metrics exports the headline numbers. "identical", "p99_improves",
// "converges" and "no_lost_tasks" are the regression-gated properties
// (host-independent: they gate simulated seconds and pool contents,
// not wall-clock); the rest are informational.
func (r *MaintspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"identical":       0,
		"p99_improves":    0,
		"converges":       0,
		"no_lost_tasks":   0,
		"tasks_enqueued":  float64(r.TasksEnqueued),
		"tasks_completed": float64(r.TasksCompleted),
		"tasks_deduped":   float64(r.TasksDeduped),
		"tasks_dropped":   float64(r.TasksDropped),
	}
	if r.Identical {
		m["identical"] = 1
	}
	if r.P99Improves() {
		m["p99_improves"] = 1
	}
	if r.Converges {
		m["converges"] = 1
	}
	if r.NoLostTasks {
		m["no_lost_tasks"] = 1
	}
	for _, row := range r.Rows {
		m["wall_seconds_"+row.Name] = row.WallSeconds
		m["sim_p50_"+row.Name] = row.SimP50
		m["sim_p99_"+row.Name] = row.SimP99
		m["sim_total_"+row.Name] = row.SimTotal
	}
	return m
}

// Print renders the comparison.
func (r *MaintspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Background maintenance dataflow, %d queries (simulated seconds are what each query was charged)\n", r.Queries)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\twall s\tsim p50\tsim p99\tsim total")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.1f\t%.1f\n",
			row.Name, row.WallSeconds, row.SimP50, row.SimP99, row.SimTotal)
	}
	tw.Flush()
	fmt.Fprintf(w, "tasks: %d enqueued = %d completed + %d failed + %d deduped + %d dropped\n",
		r.TasksEnqueued, r.TasksCompleted, r.TasksFailed, r.TasksDeduped, r.TasksDropped)
	fmt.Fprintf(w, "results identical: %v, p99 improves: %v, pool converges: %v, no lost tasks: %v\n",
		r.Identical, r.P99Improves(), r.Converges, r.NoLostTasks)
}
