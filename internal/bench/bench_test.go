package bench

import (
	"math/rand"
	"strings"
	"testing"

	"deepsea/internal/workload"
)

// tiny returns parameters small enough for unit tests.
func tiny() Params {
	return Params{ScaleGB: 10, QueryFactor: 0.01, Seed: 1}
}

func TestParamsScaling(t *testing.T) {
	full := Full()
	if full.gb(500) != 500 || full.queries(1000) != 1000 {
		t.Error("Full() altered paper parameters")
	}
	short := Short()
	if short.gb(500) != 100 {
		t.Errorf("Short gb(500) = %d, want 100", short.gb(500))
	}
	if short.queries(1000) != 200 {
		t.Errorf("Short queries(1000) = %d, want 200", short.queries(1000))
	}
	if short.queries(20) != 10 {
		t.Errorf("query floor: %d, want 10", short.queries(20))
	}
	override := Params{ScaleGB: 42}
	if override.gb(500) != 42 {
		t.Error("explicit ScaleGB ignored")
	}
}

func TestScaleCfgPreservesGranularity(t *testing.T) {
	cfg := DSCfg()
	scaled := scaleCfg(cfg, 100, 500)
	if scaled.CostModel.BlockSize >= cfg.CostModel.BlockSize {
		t.Error("block size not scaled down")
	}
	if scaled.MinFragBytes != scaled.CostModel.BlockSize {
		t.Error("MinFragBytes != scaled block size")
	}
	same := scaleCfg(cfg, 500, 500)
	if same.CostModel.BlockSize != cfg.CostModel.BlockSize {
		t.Error("paper scale should be unscaled")
	}
}

func TestStrategyConfigs(t *testing.T) {
	if HiveCfg().Materialize {
		t.Error("Hive config materializes")
	}
	if EquiDepthCfg(7).EquiDepthK != 7 {
		t.Error("equi-depth k not set")
	}
	for _, cfg := range []struct {
		name string
		m    bool
	}{{"NP", NPCfg().Materialize}, {"DS", DSCfg().Materialize}, {"NR", NRCfg().Materialize}} {
		if !cfg.m {
			t.Errorf("%s config does not materialize", cfg.name)
		}
	}
}

func TestRunWorkloadCollectsPerQueryCosts(t *testing.T) {
	p := tiny()
	data := workload.Generate(p.gb(10), p.Seed, nil)
	rng := rand.New(rand.NewSource(1))
	ranges := workload.Ranges(5, workload.Small, workload.Heavy, workload.ItemSkDomain(), rng)
	queries := templateQueries(data, workload.Q30, ranges)
	r, err := RunWorkload("t", data, queries, scaleCfg(DSCfg(), 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerQuery) != 5 {
		t.Fatalf("PerQuery = %d entries", len(r.PerQuery))
	}
	if r.Total() <= 0 {
		t.Error("zero total")
	}
	cum := r.Cumulative()
	if cum[4] != r.Total() {
		t.Error("cumulative tail != total")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Error("cumulative not monotone")
		}
	}
}

func TestProjectTo100(t *testing.T) {
	r := &RunResult{PerQuery: []float64{100, 10, 10, 10, 10, 10, 10, 10, 10, 10}}
	// cum(10)=190; steady slope 10 => 190 + 90*10 = 1090.
	if got := projectTo100(r); got != 1090 {
		t.Errorf("projectTo100 = %g, want 1090", got)
	}
}

func TestRecoupPoint(t *testing.T) {
	arm := &RunResult{PerQuery: []float64{50, 5, 5, 5}}
	base := &RunResult{PerQuery: []float64{20, 20, 20, 20}}
	// Cumulative: arm 50,55,60,65; base 20,40,60,80 -> crossover at 3.
	if got := recoupPoint(arm, base); got != 3 {
		t.Errorf("recoupPoint = %d, want 3", got)
	}
	never := &RunResult{PerQuery: []float64{100, 100, 100, 100}}
	if got := recoupPoint(never, base); got != 0 {
		t.Errorf("recoupPoint(never) = %d, want 0", got)
	}
}

func TestLookupAndIDs(t *testing.T) {
	if _, ok := Lookup("fig5a"); !ok {
		t.Error("fig5a not registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown id found")
	}
	ids := IDs()
	if len(ids) != len(Experiments) {
		t.Error("IDs() length mismatch")
	}
}

func TestRunAndPrintUnknown(t *testing.T) {
	var sb strings.Builder
	if err := RunAndPrint(&sb, "nope", tiny()); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestFig1AndFig2Run(t *testing.T) {
	var sb strings.Builder
	if err := RunAndPrint(&sb, "fig1", tiny()); err != nil {
		t.Fatal(err)
	}
	if err := RunAndPrint(&sb, "fig2", tiny()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "Figure 2", "hits", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig6RunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := RunFig6(Params{ScaleGB: 20, QueryFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 5 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	// Creation cost grows with fragment count (Figure 6a's shape).
	if res.Creation(res.Arms[4]) <= res.Creation(res.Arms[1]) {
		t.Errorf("E-60 creation (%.0f) not above E-6 (%.0f)",
			res.Creation(res.Arms[4]), res.Creation(res.Arms[1]))
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "E-60") {
		t.Error("print missing arm")
	}
}

func TestFig9OverlapNotWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := RunFig9(Params{ScaleGB: 20, QueryFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlapping.Total() > res.Horizontal.Total()*1.05 {
		t.Errorf("overlapping (%.0f) materially worse than horizontal (%.0f)",
			res.Overlapping.Total(), res.Horizontal.Total())
	}
}

func TestTab1AllCellsRewrite(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := RunTab1(Params{ScaleGB: 10, QueryFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Rewritten == 0 {
			t.Errorf("cell %s/%s/%s never reused a view",
				row.PoolLabel, row.Selectivity, row.Skew)
		}
	}
}

func TestSensitivityShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := RunSensitivity(Params{ScaleGB: 20, QueryFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.EBeatNP {
			t.Errorf("%s: partitioning lost to NP", row.Model)
		}
	}
	// DS must win under at least 3/4 of the perturbed models.
	wins := 0
	for _, row := range res.Rows {
		if row.DSWins {
			wins++
		}
	}
	if wins*4 < len(res.Rows)*3 {
		t.Errorf("DS wins only %d/%d models", wins, len(res.Rows))
	}
}

func TestLockspeedIdenticalAndMutating(t *testing.T) {
	res, err := RunLockspeed(Short())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("concurrent arm results differ from serial")
	}
	m := res.Metrics()
	if m["identical"] != 1 {
		t.Error("metrics: identical != 1")
	}
	if m["mutations"] < 1 {
		t.Errorf("metrics: mutations = %v, want >= 1 (workload did not mutate the pool)", m["mutations"])
	}
	if m["max_concurrent_maint"] < 1 {
		t.Errorf("metrics: max_concurrent_maint = %v, want >= 1", m["max_concurrent_maint"])
	}
	for _, key := range []string{"speedup", "wall_seconds_serial", "wall_seconds_concurrent"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics: missing %q", key)
		}
	}
}
