// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (Section 10). Each
// experiment builds its workload per the paper's description, runs the
// relevant strategy arms through the core system, and prints the same
// rows/series the paper reports. Absolute numbers are simulated seconds;
// the reproduced quantity is the *shape* — who wins, by what factor,
// where the crossovers fall (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"deepsea/internal/core"
	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/workload"
)

// Params scales an experiment run. The Full preset follows the paper's
// setup; Short shrinks data and query counts so the whole suite runs in
// seconds (shapes are preserved).
type Params struct {
	// ScaleGB overrides the instance size (0 keeps each experiment's
	// paper value).
	ScaleGB int64
	// QueryFactor scales query counts (1.0 keeps paper values; Short
	// uses a fraction).
	QueryFactor float64
	// Seed drives all randomness.
	Seed int64
}

// Full returns paper-scale parameters.
func Full() Params { return Params{QueryFactor: 1, Seed: 1} }

// Short returns CI-scale parameters (about 10x smaller workloads).
func Short() Params { return Params{QueryFactor: 0.2, Seed: 1, ScaleGB: -1} }

// gb resolves an experiment's instance size: the paper default, the
// override, or the default divided by 5 in Short mode (ScaleGB == -1).
func (p Params) gb(paperGB int64) int64 {
	switch {
	case p.ScaleGB > 0:
		return p.ScaleGB
	case p.ScaleGB == -1:
		g := paperGB / 5
		if g < 10 {
			g = 10
		}
		return g
	default:
		return paperGB
	}
}

// queries scales a paper query count.
func (p Params) queries(paperN int) int {
	f := p.QueryFactor
	if f <= 0 {
		f = 1
	}
	n := int(float64(paperN) * f)
	if n < 10 {
		n = 10
	}
	return n
}

// defaultParallelism, when non-zero, is applied to every workload run
// whose configuration leaves Parallelism unset. The deepsea-bench
// command sets it from its -parallelism flag; experiments that compare
// parallelism levels explicitly (parspeed) override per arm instead.
var defaultParallelism int

// SetDefaultParallelism sets the engine worker count used by subsequent
// workload runs (0 restores the engine default). Results are identical
// for every setting; only wall-clock time changes.
func SetDefaultParallelism(n int) { defaultParallelism = n }

// baseConfig returns the shared configuration: exec mode, default cost
// model, unlimited pool.
func baseConfig() core.Config {
	cfg := core.DefaultConfig()
	cm := engine.DefaultCostModel()
	cfg.CostModel = &cm
	return cfg
}

// scaleCfg adapts the block size (and with it the fragment-size lower
// bound) when an experiment runs below its paper-scale instance size, so
// fragment granularity relative to view sizes — and therefore every
// result shape — is preserved in Short mode.
func scaleCfg(cfg core.Config, gb, paperGB int64) core.Config {
	if gb >= paperGB {
		return cfg
	}
	cm := *cfg.CostModel
	bs := int64(float64(cm.BlockSize) * float64(gb) / float64(paperGB))
	if bs < 1<<20 {
		bs = 1 << 20
	}
	cm.BlockSize = bs
	cfg.CostModel = &cm
	cfg.MinFragBytes = bs
	return cfg
}

// Strategy constructors for the paper's arms.

// HiveCfg is vanilla execution without materialization ("H").
func HiveCfg() core.Config {
	cfg := baseConfig()
	cfg.Materialize = false
	return cfg
}

// NPCfg materializes views without partitioning ("NP").
func NPCfg() core.Config {
	cfg := baseConfig()
	cfg.Partition = core.PartitionNone
	return cfg
}

// DSCfg is full DeepSea: adaptive overlapping partitioning, decayed
// benefits, MLE-smoothed fragment selection ("DS").
func DSCfg() core.Config { return baseConfig() }

// ReStoreCfg materializes unpartitioned views with ReStore-style
// physical matching only ("RS") — the paper's Section 2 contrast for
// its logical matching.
func ReStoreCfg() core.Config {
	cfg := baseConfig()
	cfg.Partition = core.PartitionNone
	cfg.PhysicalMatch = true
	return cfg
}

// DSHorizontalCfg is DeepSea restricted to horizontal (non-overlapping)
// partitioning, for the Figure 9 comparison.
func DSHorizontalCfg() core.Config {
	cfg := baseConfig()
	cfg.Partition = core.PartitionAdaptive
	return cfg
}

// EquiDepthCfg partitions views into k equal-row fragments ("E-k").
func EquiDepthCfg(k int) core.Config {
	cfg := baseConfig()
	cfg.Partition = core.PartitionEquiDepth
	cfg.EquiDepthK = k
	cfg.MaxFragFraction = 0
	return cfg
}

// NRCfg uses adaptive initial partitioning but never repartitions ("NR").
func NRCfg() core.Config {
	cfg := baseConfig()
	cfg.Partition = core.PartitionAdaptiveNoRepartition
	return cfg
}

// NectarCfg ranks pool items with Nectar's measure ("N").
func NectarCfg() core.Config {
	cfg := baseConfig()
	cfg.Selection = core.SelectNectar
	return cfg
}

// NectarPlusCfg ranks pool items with Nectar+ ("N+").
func NectarPlusCfg() core.Config {
	cfg := baseConfig()
	cfg.Selection = core.SelectNectarPlus
	return cfg
}

// RunResult summarises one strategy arm over one workload.
type RunResult struct {
	Name string
	// PerQuery holds each query's charged seconds (execution +
	// materialization).
	PerQuery []float64
	// ExecSeconds and MatSeconds split the total.
	ExecSeconds float64
	MatSeconds  float64
	// MapTasks counts map tasks issued across the workload (the cluster
	// utilization analysis of Section 10.2).
	MapTasks int64
	// Rewritten counts queries answered (at least partially) from views.
	Rewritten int
}

// Total returns the summed per-query seconds.
func (r *RunResult) Total() float64 {
	var t float64
	for _, s := range r.PerQuery {
		t += s
	}
	return t
}

// Cumulative returns the running totals.
func (r *RunResult) Cumulative() []float64 {
	out := make([]float64, len(r.PerQuery))
	var t float64
	for i, s := range r.PerQuery {
		t += s
		out[i] = t
	}
	return out
}

// RunWorkload executes the query sequence under the given configuration
// over a fresh system seeded with the dataset's tables.
func RunWorkload(name string, data *workload.Data, queries []query.Node, cfg core.Config) (*RunResult, error) {
	if cfg.Parallelism == 0 {
		cfg.Parallelism = defaultParallelism
	}
	d := core.New(cfg)
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}
	res := &RunResult{Name: name}
	for i, q := range queries {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return nil, fmt.Errorf("bench %s query %d: %w", name, i, err)
		}
		res.PerQuery = append(res.PerQuery, rep.TotalSeconds)
		res.ExecSeconds += rep.ExecCost.Seconds
		res.MatSeconds += rep.MatCost.Seconds
		res.MapTasks += rep.ExecCost.MapTasks
		if rep.Rewritten {
			res.Rewritten++
		}
	}
	return res, nil
}

// templateQueries instantiates one template over a range sequence.
func templateQueries(data *workload.Data, tpl workload.Template, ranges []interval.Interval) []query.Node {
	out := make([]query.Node, len(ranges))
	for i, iv := range ranges {
		out[i] = data.Query(tpl, iv)
	}
	return out
}

// mixedQueries instantiates a random template per range, drawing from
// all ten templates (the Section 10.1 workload).
func mixedQueries(data *workload.Data, ranges []interval.Interval, rng *rand.Rand) []query.Node {
	out := make([]query.Node, len(ranges))
	for i, iv := range ranges {
		tpl := workload.AllTemplates[rng.Intn(len(workload.AllTemplates))]
		out[i] = data.Query(tpl, iv)
	}
	return out
}

// newTabWriter returns the shared table formatting.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
