package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/workload"
)

// Tab1Result exercises the full Table 1 parameter grid — instance size ×
// pool size × selectivity × skew — running DeepSea on each combination.
// Table 1 itself is the experiment design, not a result; this sweep
// demonstrates every cell runs and reports the elapsed time per cell.
type Tab1Result struct {
	Rows []Tab1Row
}

// Tab1Row is one parameter combination.
type Tab1Row struct {
	InstanceGB  int64
	PoolLabel   string
	Selectivity string
	Skew        string
	ElapsedSec  float64
	Rewritten   int
}

// RunTab1 sweeps a representative subset of the grid: the default
// instance with every (pool, selectivity, skew) combination, ten queries
// each.
func RunTab1(p Params) (*Tab1Result, error) {
	gb := p.gb(100)
	data := workload.Generate(gb, p.Seed, nil)
	base := data.TotalBytes()

	// Pool sizes follow Table 1 (50/125/250/500 GB, ∞ for a 100 GB
	// instance) as fractions of the base-table bytes so Short mode
	// scales along.
	pools := []struct {
		label string
		smax  int64
	}{
		{"50GB", base * 50 / 100},
		{"125GB", base * 125 / 100},
		{"250GB", base * 250 / 100},
		{"500GB", base * 500 / 100},
		{"inf", 0},
	}
	sels := []struct {
		label string
		v     float64
	}{{"S", workload.Small}, {"M", workload.Medium}, {"B", workload.Big}}
	skews := []workload.Skew{workload.Uniform, workload.Light, workload.Heavy}

	res := &Tab1Result{}
	for _, pool := range pools {
		for _, sel := range sels {
			for _, skew := range skews {
				rng := rand.New(rand.NewSource(p.Seed + 50))
				ranges := workload.Ranges(10, sel.v, skew, workload.ItemSkDomain(), rng)
				queries := templateQueries(data, workload.Q30, ranges)
				cfg := scaleCfg(DSCfg(), gb, 100)
				cfg.Smax = pool.smax
				r, err := RunWorkload("DS", data, queries, cfg)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Tab1Row{
					InstanceGB:  gb,
					PoolLabel:   pool.label,
					Selectivity: sel.label,
					Skew:        skew.String(),
					ElapsedSec:  r.Total(),
					Rewritten:   r.Rewritten,
				})
			}
		}
	}
	return res, nil
}

// Print renders the grid.
func (r *Tab1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 1 sweep: DeepSea across the parameter grid")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "instance\tpool\tselectivity\tskew\telapsed (s)\trewritten")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%dGB\t%s\t%s\t%s\t%.0f\t%d\n",
			row.InstanceGB, row.PoolLabel, row.Selectivity, row.Skew,
			row.ElapsedSec, row.Rewritten)
	}
	tw.Flush()
}
