package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"deepsea/internal/core"
	"deepsea/internal/query"
	"deepsea/internal/workload"
)

// ParspeedRow is one arm of the parallel-speedup comparison.
type ParspeedRow struct {
	Name        string
	Parallelism int
	// WallSeconds is real elapsed time for the whole workload.
	WallSeconds float64
	// SimSeconds is the simulated cluster time (must not depend on
	// parallelism).
	SimSeconds float64
}

// ParspeedResult reports wall-clock speedup of the parallel data path
// over sequential execution, for the vanilla engine and full DeepSea,
// plus the identity check: every arm pair must produce byte-identical
// query results and an identical final file system.
type ParspeedResult struct {
	Rows []ParspeedRow
	// Identical reports whether each parallel arm matched its sequential
	// counterpart on per-query result fingerprints and final FS contents.
	Identical bool
	Workers   int
}

// parspeedRun executes the workload like RunWorkload but records what
// the identity check needs: each query's result fingerprint and the
// final file-system listing.
func parspeedRun(data *workload.Data, queries []query.Node, cfg core.Config) (wall, sim float64, fingerprints []string, files string, err error) {
	d := core.New(cfg)
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}
	start := time.Now()
	for i, q := range queries {
		rep, perr := d.ProcessQuery(q)
		if perr != nil {
			return 0, 0, nil, "", fmt.Errorf("parspeed query %d: %w", i, perr)
		}
		sim += rep.TotalSeconds
		fingerprints = append(fingerprints, rep.Result.Fingerprint())
	}
	wall = time.Since(start).Seconds()
	for _, f := range d.Eng.FS().List() {
		files += fmt.Sprintf("%s:%d\n", f.Path, f.Size)
	}
	return wall, sim, fingerprints, files, nil
}

// RunParspeed compares sequential and parallel execution of the same
// workload. The simulated cost model is untouched by the worker count —
// the comparison is about the harness's real wall-clock time and about
// the determinism guarantee (identical results and pool for every
// parallelism level).
func RunParspeed(p Params) (*ParspeedResult, error) {
	gb := p.gb(2000)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 77))
	ranges := workload.Ranges(p.queries(40), workload.Big, workload.Light, workload.ItemSkDomain(), rng)
	queries := mixedQueries(data, ranges, rng)

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	arms := []struct {
		name string
		cfg  func() core.Config
	}{
		{"H", HiveCfg},
		{"DS", DSCfg},
	}

	res := &ParspeedResult{Identical: true, Workers: workers}
	for _, arm := range arms {
		var prints map[int][]string
		var files map[int]string
		prints, files = make(map[int][]string), make(map[int]string)
		for _, par := range []int{1, workers} {
			cfg := scaleCfg(arm.cfg(), gb, 2000)
			cfg.Parallelism = par
			wall, sim, fp, fl, err := parspeedRun(data, queries, cfg)
			if err != nil {
				return nil, err
			}
			prints[par], files[par] = fp, fl
			res.Rows = append(res.Rows, ParspeedRow{
				Name:        arm.name,
				Parallelism: par,
				WallSeconds: wall,
				SimSeconds:  sim,
			})
		}
		if files[1] != files[workers] || len(prints[1]) != len(prints[workers]) {
			res.Identical = false
			continue
		}
		for i := range prints[1] {
			if prints[1][i] != prints[workers][i] {
				res.Identical = false
				break
			}
		}
	}
	return res, nil
}

// Speedup returns wall-clock(seq)/wall-clock(par) for the named arm.
func (r *ParspeedResult) Speedup(name string) float64 {
	var seq, par float64
	for _, row := range r.Rows {
		if row.Name != name {
			continue
		}
		if row.Parallelism == 1 {
			seq = row.WallSeconds
		} else {
			par = row.WallSeconds
		}
	}
	if par == 0 {
		return 0
	}
	return seq / par
}

// Print renders the comparison.
func (r *ParspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel data-path speedup (%d workers), BigBench mixed workload\n", r.Workers)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\tparallelism\twall s\tsim s")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.1f\n", row.Name, row.Parallelism, row.WallSeconds, row.SimSeconds)
	}
	tw.Flush()
	fmt.Fprintf(w, "speedup: H %.2fx, DS %.2fx\n", r.Speedup("H"), r.Speedup("DS"))
	fmt.Fprintf(w, "identical results and pool across parallelism levels: %v\n", r.Identical)
}
