package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"deepsea/internal/core"
	"deepsea/internal/query"
	"deepsea/internal/workload"
)

// ParspeedRow is one arm of the parallel-speedup comparison.
type ParspeedRow struct {
	Name        string
	Parallelism int
	// WallSeconds is real elapsed time for the whole workload.
	WallSeconds float64
	// SimSeconds is the simulated cluster time (must not depend on
	// parallelism).
	SimSeconds float64
}

// ParspeedResult reports wall-clock speedup of the parallel data path
// over sequential execution, for the vanilla engine and full DeepSea,
// plus the identity check: every arm pair must produce byte-identical
// query results and an identical final file system.
type ParspeedResult struct {
	Rows []ParspeedRow
	// Identical reports whether each parallel arm matched its sequential
	// counterpart on per-query result fingerprints and final FS contents.
	Identical bool
	Workers   int
}

// trackedRun executes a workload like RunWorkload but records what
// identity checks need: each query's result fingerprint and the final
// file-system listing.
func trackedRun(data *workload.Data, queries []query.Node, cfg core.Config) (wall, sim float64, fingerprints []string, files string, err error) {
	d := core.New(cfg)
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}
	start := time.Now()
	for i, q := range queries {
		rep, perr := d.ProcessQuery(q)
		if perr != nil {
			return 0, 0, nil, "", fmt.Errorf("query %d: %w", i, perr)
		}
		sim += rep.TotalSeconds
		fingerprints = append(fingerprints, rep.Result.Fingerprint())
	}
	wall = time.Since(start).Seconds()
	for _, f := range d.Eng.FS().List() {
		files += fmt.Sprintf("%s:%d\n", f.Path, f.Size)
	}
	return wall, sim, fingerprints, files, nil
}

// parspeedRun executes one fully isolated arm: it builds its own dataset,
// RNG and query sequence from the seed in p, so concurrent runs — e.g.
// two parallelism levels raced against each other in a test — share no
// state whatsoever.
func parspeedRun(p Params, cfg core.Config) (wall, sim float64, fingerprints []string, files string, err error) {
	gb := p.gb(2000)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 77))
	ranges := workload.Ranges(p.queries(40), workload.Big, workload.Light, workload.ItemSkDomain(), rng)
	queries := mixedQueries(data, ranges, rng)
	return trackedRun(data, queries, cfg)
}

// parspeedCfg builds the configuration of one parspeed arm.
func parspeedCfg(p Params, base func() core.Config, par int) core.Config {
	cfg := scaleCfg(base(), p.gb(2000), 2000)
	cfg.Parallelism = par
	return cfg
}

// RunParspeed compares sequential and parallel execution of the same
// workload. The simulated cost model is untouched by the worker count —
// the comparison is about the harness's real wall-clock time and about
// the determinism guarantee (identical results and pool for every
// parallelism level). Arms run one after another so each wall-clock
// measurement gets the machine to itself; each arm is nevertheless fully
// isolated (own dataset, RNG and system) and safe to run concurrently.
func RunParspeed(p Params) (*ParspeedResult, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	arms := []struct {
		name string
		cfg  func() core.Config
	}{
		{"H", HiveCfg},
		{"DS", DSCfg},
	}

	res := &ParspeedResult{Identical: true, Workers: workers}
	for _, arm := range arms {
		prints, files := make(map[int][]string), make(map[int]string)
		for _, par := range []int{1, workers} {
			wall, sim, fp, fl, err := parspeedRun(p, parspeedCfg(p, arm.cfg, par))
			if err != nil {
				return nil, err
			}
			prints[par], files[par] = fp, fl
			res.Rows = append(res.Rows, ParspeedRow{
				Name:        arm.name,
				Parallelism: par,
				WallSeconds: wall,
				SimSeconds:  sim,
			})
		}
		if files[1] != files[workers] || len(prints[1]) != len(prints[workers]) {
			res.Identical = false
			continue
		}
		for i := range prints[1] {
			if prints[1][i] != prints[workers][i] {
				res.Identical = false
				break
			}
		}
	}
	return res, nil
}

// Speedup returns wall-clock(seq)/wall-clock(par) for the named arm.
func (r *ParspeedResult) Speedup(name string) float64 {
	var seq, par float64
	for _, row := range r.Rows {
		if row.Name != name {
			continue
		}
		if row.Parallelism == 1 {
			seq = row.WallSeconds
		} else {
			par = row.WallSeconds
		}
	}
	if par == 0 {
		return 0
	}
	return seq / par
}

// Metrics exports the headline numbers for machine-readable output.
func (r *ParspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"workers":   float64(r.Workers),
		"identical": 0,
	}
	if r.Identical {
		m["identical"] = 1
	}
	for _, row := range r.Rows {
		m[fmt.Sprintf("wall_seconds_%s_par%d", row.Name, row.Parallelism)] = row.WallSeconds
	}
	m["speedup_H"] = r.Speedup("H")
	m["speedup_DS"] = r.Speedup("DS")
	return m
}

// Print renders the comparison.
func (r *ParspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel data-path speedup (%d workers), BigBench mixed workload\n", r.Workers)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\tparallelism\twall s\tsim s")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.1f\n", row.Name, row.Parallelism, row.WallSeconds, row.SimSeconds)
	}
	tw.Flush()
	fmt.Fprintf(w, "speedup: H %.2fx, DS %.2fx\n", r.Speedup("H"), r.Speedup("DS"))
	fmt.Fprintf(w, "identical results and pool across parallelism levels: %v\n", r.Identical)
}
