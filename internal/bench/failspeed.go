package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/shard"
	"deepsea/internal/workload"
)

// FailspeedResult characterizes the replicated serving tier's failure
// behavior: replica death mid-burst is invisible to clients (zero
// failures, byte-identical results), hedging removes injected straggler
// latency from the tail, and a tripped circuit breaker bounds the
// error-path cost of a dead replica far below the request timeout.
type FailspeedResult struct {
	// Queries is the phase-1 trace length (phase 2 uses HedgeQueries).
	Queries int
	// IdenticalWithReplicaDown reports the burst re-run with one of R
	// replicas killed mid-burst produced byte-identical results.
	IdenticalWithReplicaDown bool
	// ClientFailures counts non-200 responses in the replica-down burst
	// (the zero_client_failures gate), Failovers the coordinator's
	// failover retries during it (must be >0, or the kill exercised
	// nothing).
	ClientFailures int
	Failovers      uint64

	// HedgeQueries is the phase-2 trace length per arm.
	HedgeQueries int
	// UnhedgedP99Millis / HedgedP99Millis compare p99 under injected
	// straggler latency on the primary, hedging off vs p95-derived.
	UnhedgedP99Millis float64
	HedgedP99Millis   float64
	// HedgesFired counts hedged subqueries in the hedged arm.
	HedgesFired uint64
	// StragglerMillis is the injected latency (the tail both arms fight).
	StragglerMillis float64

	// BreakerOpens counts breaker trips in phase 3; BreakerTailP99Millis
	// is the per-query p99 over the post-trip burst — the bounded
	// error-path cost; TimeoutMillis the request timeout it is held
	// against.
	BreakerOpens         uint64
	BreakerTailP99Millis float64
	TimeoutMillis        float64
}

// failCluster is one replicated in-process cluster: k groups × r
// replica servers behind a coordinator, all on httptest listeners.
type failCluster struct {
	coord    *shard.Coordinator
	front    *httptest.Server
	servers  [][]*server.Server
	backends [][]*httptest.Server
}

// newFailCluster boots k replica groups of r servers each over data.
// mut, when non-nil, adjusts the coordinator config before New (chaos
// transport, hedge delay, breaker tuning).
func newFailCluster(data *workload.Data, k, r int, mut func(*shard.Config)) (*failCluster, error) {
	cl := &failCluster{}
	groups := make([][]string, k)
	for gi := 0; gi < k; gi++ {
		cl.servers = append(cl.servers, nil)
		cl.backends = append(cl.backends, nil)
		for ri := 0; ri < r; ri++ {
			sys := deepsea.New()
			if err := workload.Load(sys, data); err != nil {
				cl.close()
				return nil, err
			}
			srv := server.New(sys, server.Config{MaxInFlight: 4, MaxQueue: 256, QueueTimeout: -1})
			ts := httptest.NewServer(srv.Handler())
			cl.servers[gi] = append(cl.servers[gi], srv)
			cl.backends[gi] = append(cl.backends[gi], ts)
			groups[gi] = append(groups[gi], ts.URL)
		}
	}
	cfg := shard.Config{
		Groups:         groups,
		DomainLo:       workload.ItemSkLo,
		DomainHi:       workload.ItemSkHi,
		RequestTimeout: 10 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	coord, err := shard.New(cfg)
	if err != nil {
		cl.close()
		return nil, err
	}
	if err := coord.Init(context.Background()); err != nil {
		coord.Close()
		cl.close()
		return nil, err
	}
	cl.coord = coord
	cl.front = httptest.NewServer(coord.Handler())
	return cl, nil
}

func (cl *failCluster) close() {
	if cl.front != nil {
		cl.front.Close()
	}
	if cl.coord != nil {
		cl.coord.Close()
	}
	for gi := range cl.servers {
		for ri, srv := range cl.servers[gi] {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = srv.Shutdown(ctx)
			cancel()
			cl.backends[gi][ri].Close()
		}
	}
}

// coordStatz is the slice of the coordinator's /statz the experiment
// reads.
type coordStatz struct {
	Failovers    uint64 `json:"failovers"`
	Hedges       uint64 `json:"hedges"`
	HedgeWins    uint64 `json:"hedge_wins"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

func fetchStatz(client *http.Client, frontURL string) (coordStatz, error) {
	var st coordStatz
	resp, err := client.Get(frontURL + "/statz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// primaryHostOf extracts the URL host of the first replica of group 0 —
// the chaos target.
func primaryHostOf(groups [][]string) (string, error) {
	u, err := url.Parse(groups[0][0])
	if err != nil {
		return "", err
	}
	return u.Host, nil
}

// RunFailspeed drives the replicated tier through three phases:
// a replica killed mid-burst (results must stay byte-identical with
// zero client-visible failures), injected straggler latency bracketed
// by hedging off/on (hedged p99 must win), and a dead primary behind an
// open breaker (post-trip per-query cost must sit far below the
// request timeout).
func RunFailspeed(p Params) (*FailspeedResult, error) {
	n := p.queries(32)
	res := &FailspeedResult{
		Queries:                  n,
		IdenticalWithReplicaDown: true,
	}
	client := &http.Client{}
	data := workload.Generate(1, p.Seed, nil)

	// Phase 1: replica death mid-burst. Two groups × two replicas; a
	// healthy pass collects per-query reference bytes, then the same
	// burst re-runs with group 0's primary killed after the first query.
	// Spanning ranges so every query needs the failing group.
	{
		cl, err := newFailCluster(data, 2, 2, func(cfg *shard.Config) {
			cfg.HedgeDelay = -1 // isolate failover from hedging
		})
		if err != nil {
			return nil, err
		}
		trace := workload.SpanningTrace(n, workload.Q1, 0.02, p.Seed)
		for i := 1; i < n; i += 3 {
			trace[i].Template = workload.Q16
		}
		want := make([]string, n)
		for i, tq := range trace {
			canon, err := shardspeedPost(client, cl.front.URL, tq)
			if err != nil {
				cl.close()
				return nil, fmt.Errorf("failspeed healthy query %d: %w", i, err)
			}
			want[i] = canon
		}
		for i, tq := range trace {
			if i == 1 {
				// kill -9 equivalent for an httptest backend: close it,
				// severing every connection. No drain, no handoff.
				cl.backends[0][0].Close()
			}
			canon, err := shardspeedPost(client, cl.front.URL, tq)
			if err != nil {
				res.ClientFailures++
				continue
			}
			if canon != want[i] {
				res.IdenticalWithReplicaDown = false
			}
		}
		st, err := fetchStatz(client, cl.front.URL)
		cl.close()
		if err != nil {
			return nil, err
		}
		res.Failovers = st.Failovers
	}

	// Phase 2: straggler latency vs hedging. One group × two replicas;
	// a chaos transport injects a long delay on the primary only (the
	// follower stays clean, so a hedge has somewhere fast to go). The
	// unhedged arm eats the delay; the hedged arm (p95-derived delay,
	// warmed up with the transport disarmed) must beat its p99.
	straggler := 400 * time.Millisecond
	res.StragglerMillis = float64(straggler) / float64(time.Millisecond)
	nh := n
	if nh < 24 {
		nh = 24 // enough draws that the 0.5-probability injection surely lands
	}
	res.HedgeQueries = nh
	hedgeTrace := workload.SpanningTrace(nh, workload.Q1, 0.02, p.Seed+1)
	for ai, hedge := range []bool{false, true} {
		var ct *shard.ChaosTransport
		var hostErr error
		cl, err := newFailCluster(data, 1, 2, func(cfg *shard.Config) {
			host, herr := primaryHostOf(cfg.Groups)
			if herr != nil {
				hostErr = herr
				return
			}
			ct = &shard.ChaosTransport{
				Seed:        p.Seed + 42,
				LatencyProb: 0.5,
				Latency:     straggler,
				Hosts:       map[string]bool{host: true},
			}
			ct.SetArmed(false) // clean handoffs and warmup
			cfg.Transport = ct
			if hedge {
				cfg.HedgeDelay = 0 // p95-derived
			} else {
				cfg.HedgeDelay = -1
			}
		})
		if err != nil {
			return nil, err
		}
		if hostErr != nil || ct == nil {
			cl.close()
			return nil, fmt.Errorf("failspeed chaos setup: %v", hostErr)
		}
		// Warmup: feeds the latency ring (hedged arm) and first-touch
		// planning, chaos disarmed so the samples reflect health.
		for _, tq := range hedgeTrace[:8] {
			if _, err := shardspeedPost(client, cl.front.URL, tq); err != nil {
				cl.close()
				return nil, fmt.Errorf("failspeed hedge warmup: %w", err)
			}
		}
		ct.SetArmed(true)
		lats := make([]float64, nh)
		for i, tq := range hedgeTrace {
			start := time.Now()
			if _, err := shardspeedPost(client, cl.front.URL, tq); err != nil {
				cl.close()
				return nil, fmt.Errorf("failspeed hedge arm %d query %d: %w", ai, i, err)
			}
			lats[i] = time.Since(start).Seconds() * 1000
		}
		st, err := fetchStatz(client, cl.front.URL)
		cl.close()
		if err != nil {
			return nil, err
		}
		if hedge {
			res.HedgedP99Millis = p99(lats)
			res.HedgesFired = st.Hedges
		} else {
			res.UnhedgedP99Millis = p99(lats)
		}
	}

	// Phase 3: breaker-bounded error cost. One group × two replicas,
	// primary killed, a fast prober feeding the breakers, cooldown far
	// past the phase so the breaker stays open once tripped. After the
	// trip, a burst over the dead-primary group must run at healthy
	// speed — the breaker skips the corpse without a network attempt.
	{
		cl, err := newFailCluster(data, 1, 2, func(cfg *shard.Config) {
			cfg.HedgeDelay = -1
			cfg.BreakerThreshold = 3
			cfg.BreakerCooldown = time.Hour
			cfg.ProbeInterval = 25 * time.Millisecond
		})
		if err != nil {
			return nil, err
		}
		res.TimeoutMillis = 10_000
		cl.backends[0][0].Close()
		// Wait for the prober to trip the primary's breaker.
		deadline := time.Now().Add(10 * time.Second)
		var st coordStatz
		for time.Now().Before(deadline) {
			st, err = fetchStatz(client, cl.front.URL)
			if err == nil && st.BreakerOpens > 0 {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		res.BreakerOpens = st.BreakerOpens
		tail := workload.SpanningTrace(n, workload.Q1, 0.02, p.Seed+2)
		lats := make([]float64, n)
		for i, tq := range tail {
			start := time.Now()
			if _, err := shardspeedPost(client, cl.front.URL, tq); err != nil {
				cl.close()
				return nil, fmt.Errorf("failspeed breaker query %d: %w", i, err)
			}
			lats[i] = time.Since(start).Seconds() * 1000
		}
		res.BreakerTailP99Millis = p99(lats)
		cl.close()
	}
	return res, nil
}

// ZeroClientFailures is the availability gate: the replica-down burst
// must have shown zero non-200 responses while actually exercising
// failover (no failovers means the kill tested nothing).
func (r *FailspeedResult) ZeroClientFailures() bool {
	return r.ClientFailures == 0 && r.Failovers > 0
}

// HedgeImproves is the tail-latency gate: hedged p99 strictly under
// unhedged p99 under the same injected straggler, with hedges actually
// fired.
func (r *FailspeedResult) HedgeImproves() bool {
	return r.HedgesFired > 0 && r.HedgedP99Millis < r.UnhedgedP99Millis
}

// BreakerBounded is the error-path gate: the breaker tripped, and the
// post-trip burst's p99 sits far (10x) below the request timeout — a
// dead replica costs detection once, not a timeout per query.
func (r *FailspeedResult) BreakerBounded() bool {
	return r.BreakerOpens > 0 && r.BreakerTailP99Millis < r.TimeoutMillis/10
}

// Metrics exports the gated numbers for machine-readable output.
func (r *FailspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"queries":                     float64(r.Queries),
		"identical_with_replica_down": 0,
		"zero_client_failures":        0,
		"client_failures":             float64(r.ClientFailures),
		"failovers":                   float64(r.Failovers),
		"unhedged_p99_millis":         r.UnhedgedP99Millis,
		"hedged_p99_millis":           r.HedgedP99Millis,
		"hedges_fired":                float64(r.HedgesFired),
		"hedge_p99_improves":          0,
		"breaker_opens":               float64(r.BreakerOpens),
		"breaker_tail_p99_millis":     r.BreakerTailP99Millis,
		"breaker_bounded":             0,
	}
	if r.IdenticalWithReplicaDown {
		m["identical_with_replica_down"] = 1
	}
	if r.ZeroClientFailures() {
		m["zero_client_failures"] = 1
	}
	if r.HedgeImproves() {
		m["hedge_p99_improves"] = 1
	}
	if r.BreakerBounded() {
		m["breaker_bounded"] = 1
	}
	return m
}

// Print renders the failure-behavior characterization.
func (r *FailspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "replicated shard groups under failure, %d queries per burst\n", r.Queries)
	fmt.Fprintf(w, "replica killed mid-burst: identical %v, client failures %d, failovers %d\n",
		r.IdenticalWithReplicaDown, r.ClientFailures, r.Failovers)
	fmt.Fprintf(w, "injected %.0fms straggler on primary: p99 unhedged %.1fms vs hedged %.1fms (%d hedges, improves: %v)\n",
		r.StragglerMillis, r.UnhedgedP99Millis, r.HedgedP99Millis, r.HedgesFired, r.HedgeImproves())
	fmt.Fprintf(w, "breaker: opens %d, post-trip p99 %.1fms vs %.0fms timeout (bounded: %v)\n",
		r.BreakerOpens, r.BreakerTailP99Millis, r.TimeoutMillis, r.BreakerBounded())
}
