package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Measurable is implemented by experiment results that expose headline
// numbers (wall-clock, speedup, hit rate) for machine-readable output.
// Results without it still serialize, with an empty metrics map.
type Measurable interface {
	Metrics() map[string]float64
}

// Report is the machine-readable record of one experiment run, written
// as BENCH_<id>.json so the perf trajectory is trackable across
// revisions.
type Report struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	// WallSeconds is the real elapsed time of the whole experiment,
	// harness included.
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
	// Result is the experiment's own result structure, verbatim.
	Result any `json:"result"`
}

// RunJSON executes one experiment and writes its report to
// BENCH_<id>.json in dir (dir "" = current directory). It returns the
// written path and the result for printing.
func RunJSON(dir, id string, p Params) (string, Printable, error) {
	start := time.Now()
	e, res, err := Run(id, p)
	if err != nil {
		return "", nil, err
	}
	rep := Report{
		Experiment:  e.ID,
		Title:       e.Title,
		WallSeconds: time.Since(start).Seconds(),
		Metrics:     map[string]float64{},
		Result:      res,
	}
	if m, ok := res.(Measurable); ok {
		rep.Metrics = m.Metrics()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", nil, fmt.Errorf("bench: marshal %s report: %w", id, err)
	}
	path := "BENCH_" + id + ".json"
	if dir != "" {
		path = dir + "/" + path
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", nil, fmt.Errorf("bench: write %s: %w", path, err)
	}
	return path, res, nil
}
