package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"deepsea/internal/core"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/workload"
)

// TestDifferentialAllStrategies is the heavyweight end-to-end property:
// a randomized multi-template workload over the BigBench-flavoured
// generator must produce byte-identical results under every strategy —
// vanilla (pushed-down) execution, every baseline, and full DeepSea with
// merging — across materialization, progressive refinement, partial
// covers with remainder queries, and pool-pressure eviction.
func TestDifferentialAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight differential test")
	}
	const gb = 10
	data := workload.Generate(gb, 7, nil)
	rng := rand.New(rand.NewSource(77))

	// 25 queries: random template, random selectivity class, drifting
	// hot spot that jumps once mid-workload.
	var queries []query.Node
	dom := workload.ItemSkDomain()
	for i := 0; i < 25; i++ {
		tpl := workload.AllTemplates[rng.Intn(len(workload.AllTemplates))]
		sel := []float64{workload.Small, workload.Medium, workload.Big}[rng.Intn(3)]
		center := int64(120000)
		if i >= 13 {
			center = 310000
		}
		iv := workload.RangesAround(1, sel, workload.Heavy, dom, center, rng)[0]
		queries = append(queries, data.Query(tpl, iv))
	}

	vanilla, err := runWorkloadTables(data, queries, HiveCfg())
	if err != nil {
		t.Fatal(err)
	}

	arms := map[string]core.Config{
		"NP":       scaleCfg(NPCfg(), gb, 100),
		"E-8":      scaleCfg(EquiDepthCfg(8), gb, 100),
		"DS":       scaleCfg(DSCfg(), gb, 100),
		"DS-H":     scaleCfg(DSHorizontalCfg(), gb, 100),
		"NR":       scaleCfg(NRCfg(), gb, 100),
		"N":        scaleCfg(NectarCfg(), gb, 100),
		"N+":       scaleCfg(NectarPlusCfg(), gb, 100),
		"DS-tight": func() core.Config { c := scaleCfg(DSCfg(), gb, 100); c.Smax = 1 << 28; return c }(),
		"DS-merge": func() core.Config { c := scaleCfg(DSCfg(), gb, 100); c.MergeFragments = true; return c }(),
	}
	for name, cfg := range arms {
		got, err := runWorkloadTables(data, queries, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range vanilla {
			if err := sameRows(vanilla[i], got[i]); err != nil {
				t.Fatalf("%s: query %d: %v", name, i, err)
			}
		}
	}
}

// runWorkloadTables runs the workload and returns each query's result.
func runWorkloadTables(data *workload.Data, queries []query.Node, cfg core.Config) ([]*relation.Table, error) {
	d := core.New(cfg)
	for _, tbl := range data.Tables {
		d.AddBaseTable(tbl)
	}
	out := make([]*relation.Table, 0, len(queries))
	for _, q := range queries {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return nil, err
		}
		out = append(out, rep.Result)
	}
	return out, nil
}

// sameRows compares two result tables as multisets, with a relative
// tolerance on float columns: fragment covers sum floating-point values
// in a different order than a full scan, so bit-exact equality is not
// the right contract for aggregates like SUM(price).
func sameRows(a, b *relation.Table) error {
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("%d rows vs %d", a.NumRows(), b.NumRows())
	}
	key := func(t *relation.Table, r relation.Row) string {
		s := ""
		for i, v := range r {
			switch t.Schema.Cols[i].Type {
			case relation.Float:
				s += fmt.Sprintf("|%.6e", v.F) // tolerance via rounding
			case relation.Int:
				s += fmt.Sprintf("|%d", v.I)
			default:
				s += "|" + v.S
			}
		}
		return s
	}
	ka := make([]string, a.NumRows())
	kb := make([]string, b.NumRows())
	for i := range a.Rows {
		ka[i] = key(a, a.Rows[i])
		kb[i] = key(b, b.Rows[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Errorf("row %d: %q vs %q", i, ka[i], kb[i])
		}
	}
	return nil
}
