package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

// ServespeedResult characterizes the HTTP serving layer end to end:
// results stay identical to a serial reference under concurrent load,
// admission never sheds below the in-flight limit, overload sheds
// instead of queueing unboundedly, and same-template bursts amortize
// the planning lock.
type ServespeedResult struct {
	// Queries is the at-limit workload size; MaxInFlight its concurrency
	// (clients == slots, so admission must never shed).
	Queries     int
	MaxInFlight int
	// Identical reports the concurrent run returned the same row
	// multisets as the serial reference for every query.
	Identical bool
	// ShedsBelowLimit counts 429s in the at-limit run (must be 0).
	ShedsBelowLimit uint64
	// P50Millis/P99Millis are at-limit request latencies, harness side.
	P50Millis float64
	P99Millis float64
	// OverloadRequests hit a 1-slot/1-queue server at once;
	// ShedsUnderOverload counts the resulting 429s (must be > 0).
	OverloadRequests   int
	ShedsUnderOverload uint64
	// BurstRequests same-template queries (distinct ranges) hit a wide
	// server concurrently; BurstPlanAcq planning-lock acquisitions
	// resulted. PlanAmortization = requests / acquisitions.
	BurstRequests    int
	BurstPlanAcq     uint64
	PlanAmortization float64
}

// servespeedSystem builds a fresh 1 GB-modelled instance behind the
// public API, as deepsea-serve does.
func servespeedSystem(p Params) (*deepsea.System, error) {
	sys := deepsea.New(deepsea.WithPoolLimit(1<<30), deepsea.WithResultCache(64<<20))
	if err := workload.Load(sys, workload.Generate(1, p.Seed, nil)); err != nil {
		return nil, err
	}
	return sys, nil
}

// servespeedSpecs is a deterministic template mix over distinct ranges.
func servespeedSpecs(n int) []server.QuerySpec {
	tpls := []string{"Q1", "Q7", "Q16"}
	specs := make([]server.QuerySpec, n)
	for i := range specs {
		lo := int64(i%17) * 20000
		specs[i] = server.QuerySpec{Template: tpls[i%len(tpls)], Lo: lo, Hi: lo + 40000}
	}
	return specs
}

// servespeedPost runs one query and returns the HTTP status plus a
// canonical (order-insensitive) rendering of the result rows.
func servespeedPost(client *http.Client, url string, sp server.QuerySpec) (int, string, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, "", nil
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return resp.StatusCode, "", err
	}
	lines := make([]string, 0, len(qr.Rows)+1)
	for _, row := range qr.Rows {
		b, err := json.Marshal(row)
		if err != nil {
			return resp.StatusCode, "", err
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return resp.StatusCode, strings.Join(qr.Columns, ",") + "\n" + strings.Join(lines, "\n"), nil
}

// servespeedServer starts an httptest server over a fresh system. A
// non-nil gate is installed before serving begins (it runs between
// admission and execution, letting phases hold slots busy).
func servespeedServer(p Params, cfg server.Config, gate func(context.Context)) (*deepsea.System, *server.Server, *httptest.Server, error) {
	sys, err := servespeedSystem(p)
	if err != nil {
		return nil, nil, nil, err
	}
	srv := server.New(sys, cfg)
	if gate != nil {
		srv.SetExecGate(gate)
	}
	return sys, srv, httptest.NewServer(srv.Handler()), nil
}

// servespeedStatz reads the server's admission counters and limiter
// occupancy via /statz.
func servespeedStatz(client *http.Client, url string) (adm server.AdmissionStats, inflight, depth int, err error) {
	resp, err := client.Get(url + "/statz")
	if err != nil {
		return server.AdmissionStats{}, 0, 0, err
	}
	defer resp.Body.Close()
	var statz struct {
		Admission     server.AdmissionStats `json:"admission"`
		InFlightSlots int                   `json:"in_flight_slots"`
		QueueDepth    int                   `json:"queue_depth"`
	}
	err = json.NewDecoder(resp.Body).Decode(&statz)
	return statz.Admission, statz.InFlightSlots, statz.QueueDepth, err
}

func servespeedShutdown(srv *server.Server, ts *httptest.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := srv.Shutdown(ctx)
	ts.Close()
	return err
}

// RunServespeed drives the serving layer through three phases: an
// at-limit concurrent run checked against a serial reference, an
// overload burst against a tiny server, and a same-template burst that
// must coalesce planning.
func RunServespeed(p Params) (*ServespeedResult, error) {
	n := p.queries(96)
	maxInFlight := runtime.GOMAXPROCS(0)
	if maxInFlight > 8 {
		maxInFlight = 8
	}
	if maxInFlight < 2 {
		maxInFlight = 2
	}
	specs := servespeedSpecs(n)
	client := &http.Client{}
	res := &ServespeedResult{Queries: n, MaxInFlight: maxInFlight, Identical: true}

	// Phase 1a: serial reference — one client, fresh system.
	_, refSrv, refTS, err := servespeedServer(p, server.Config{MaxInFlight: 1}, nil)
	if err != nil {
		return nil, err
	}
	want := make([]string, n)
	for i, sp := range specs {
		status, canon, err := servespeedPost(client, refTS.URL, sp)
		if err != nil {
			return nil, fmt.Errorf("servespeed reference query %d: %w", i, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("servespeed reference query %d: HTTP %d", i, status)
		}
		want[i] = canon
	}
	if err := servespeedShutdown(refSrv, refTS); err != nil {
		return nil, err
	}

	// Phase 1b: the same workload, client concurrency == MaxInFlight on a
	// fresh server. Every request must be admitted without shedding and
	// return the reference rows.
	_, atSrv, atTS, err := servespeedServer(p, server.Config{MaxInFlight: maxInFlight}, nil)
	if err != nil {
		return nil, err
	}
	lat := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInFlight)
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp server.QuerySpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			status, canon, err := servespeedPost(client, atTS.URL, sp)
			lat[i] = time.Since(start).Seconds() * 1000
			if err != nil {
				errs[i] = err
				return
			}
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d", status)
				return
			}
			if canon != want[i] {
				errs[i] = fmt.Errorf("rows differ from serial reference")
			}
		}(i, sp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if strings.Contains(err.Error(), "differ") {
				res.Identical = false
				continue
			}
			return nil, fmt.Errorf("servespeed at-limit query %d: %w", i, err)
		}
	}
	adm, _, _, err := servespeedStatz(client, atTS.URL)
	if err != nil {
		return nil, err
	}
	res.ShedsBelowLimit = adm.ShedQueueFull + adm.ShedTimeout
	sort.Float64s(lat)
	res.P50Millis = lat[n/2]
	res.P99Millis = lat[(n*99)/100]
	if err := servespeedShutdown(atSrv, atTS); err != nil {
		return nil, err
	}

	// Phase 2: overload — one slot, one queue entry, both held busy by an
	// exec gate, then a burst beyond capacity. Every extra request must be
	// shed immediately with a 429, deterministically.
	ovGate := make(chan struct{})
	_, ovSrv, ovTS, err := servespeedServer(p, server.Config{
		MaxInFlight: 1, MaxQueue: 1, QueueTimeout: -1,
	}, func(ctx context.Context) {
		select {
		case <-ovGate:
		case <-ctx.Done():
		}
	})
	if err != nil {
		return nil, err
	}
	res.OverloadRequests = 8 * maxInFlight
	held := 2 // one executing against the gate + one queued
	heldErrs := make([]error, held)
	var ovWG sync.WaitGroup
	for i := 0; i < held; i++ {
		ovWG.Add(1)
		go func(i int) {
			defer ovWG.Done()
			status, _, err := servespeedPost(client, ovTS.URL, servespeedSpecs(held)[i])
			if err != nil {
				heldErrs[i] = err
			} else if status != http.StatusOK {
				heldErrs[i] = fmt.Errorf("HTTP %d", status)
			}
		}(i)
	}
	// Wait until the slot and the queue entry are provably occupied.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, inflight, depth, err := servespeedStatz(client, ovTS.URL)
		if err != nil {
			return nil, err
		}
		if inflight == 1 && depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("servespeed overload: capacity never saturated (%d in flight, %d queued)", inflight, depth)
		}
		time.Sleep(time.Millisecond)
	}
	for i, sp := range servespeedSpecs(res.OverloadRequests - held) {
		status, _, err := servespeedPost(client, ovTS.URL, sp)
		if err != nil {
			return nil, fmt.Errorf("servespeed overload query %d: %w", i, err)
		}
		if status != http.StatusTooManyRequests {
			return nil, fmt.Errorf("servespeed overload query %d: HTTP %d, want 429", i, status)
		}
	}
	close(ovGate)
	ovWG.Wait()
	for i, err := range heldErrs {
		if err != nil {
			return nil, fmt.Errorf("servespeed overload held query %d: %w", i, err)
		}
	}
	adm, _, _, err = servespeedStatz(client, ovTS.URL)
	if err != nil {
		return nil, err
	}
	res.ShedsUnderOverload = adm.ShedQueueFull + adm.ShedTimeout
	if err := servespeedShutdown(ovSrv, ovTS); err != nil {
		return nil, err
	}

	// Phase 3: a same-template burst (distinct ranges, so the result
	// cache cannot answer) on a server wide enough to admit all of it.
	// The gate releases only once every request is admitted, so they hit
	// the planner together and coalesce: acquisitions < requests.
	res.BurstRequests = 16
	var admitted atomic.Int64
	allIn := make(chan struct{})
	burstSys, buSrv, buTS, err := servespeedServer(p, server.Config{
		MaxInFlight: res.BurstRequests, MaxQueue: res.BurstRequests,
		BatchLinger: 25 * time.Millisecond,
	}, func(ctx context.Context) {
		if admitted.Add(1) == int64(res.BurstRequests) {
			close(allIn)
		}
		select {
		case <-allIn:
		case <-ctx.Done():
		}
	})
	if err != nil {
		return nil, err
	}
	before := burstSys.PlanAcquisitions()
	buErrs := make([]error, res.BurstRequests)
	var buWG sync.WaitGroup
	for i := 0; i < res.BurstRequests; i++ {
		buWG.Add(1)
		go func(i int) {
			defer buWG.Done()
			lo := int64(i) * 8000
			status, _, err := servespeedPost(client, buTS.URL, server.QuerySpec{
				Template: "Q30", Lo: lo, Hi: lo + 8000,
			})
			if err != nil {
				buErrs[i] = err
			} else if status != http.StatusOK {
				buErrs[i] = fmt.Errorf("HTTP %d", status)
			}
		}(i)
	}
	buWG.Wait()
	for i, err := range buErrs {
		if err != nil {
			return nil, fmt.Errorf("servespeed burst query %d: %w", i, err)
		}
	}
	res.BurstPlanAcq = burstSys.PlanAcquisitions() - before
	if res.BurstPlanAcq > 0 {
		res.PlanAmortization = float64(res.BurstRequests) / float64(res.BurstPlanAcq)
	}
	if err := servespeedShutdown(buSrv, buTS); err != nil {
		return nil, err
	}
	return res, nil
}

// P99OK is the host-tolerant latency gate: p99 within max(1s, 50×p50).
func (r *ServespeedResult) P99OK() bool {
	slack := 50 * r.P50Millis
	if slack < 1000 {
		slack = 1000
	}
	return r.P99Millis <= slack
}

// Metrics exports the headline numbers for machine-readable output.
func (r *ServespeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"queries":              float64(r.Queries),
		"max_inflight":         float64(r.MaxInFlight),
		"identical":            0,
		"no_shed_below_limit":  0,
		"sheds_under_overload": float64(r.ShedsUnderOverload),
		"plan_amortization":    r.PlanAmortization,
		"p50_millis":           r.P50Millis,
		"p99_millis":           r.P99Millis,
		"p99_ok":               0,
	}
	if r.Identical {
		m["identical"] = 1
	}
	if r.ShedsBelowLimit == 0 {
		m["no_shed_below_limit"] = 1
	}
	if r.P99OK() {
		m["p99_ok"] = 1
	}
	m["coalesced"] = 0
	if r.BurstPlanAcq > 0 && r.BurstPlanAcq < uint64(r.BurstRequests) {
		m["coalesced"] = 1
	}
	return m
}

// Print renders the serving-layer characterization.
func (r *ServespeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "HTTP serving layer, %d queries at client concurrency %d (== MaxInFlight)\n",
		r.Queries, r.MaxInFlight)
	fmt.Fprintf(w, "results identical to serial reference: %v\n", r.Identical)
	fmt.Fprintf(w, "sheds below the in-flight limit: %d (want 0)\n", r.ShedsBelowLimit)
	fmt.Fprintf(w, "latency: p50 %.1fms, p99 %.1fms (within budget: %v)\n",
		r.P50Millis, r.P99Millis, r.P99OK())
	fmt.Fprintf(w, "overload: %d simultaneous requests on 1 slot + 1 queue entry -> %d shed with 429\n",
		r.OverloadRequests, r.ShedsUnderOverload)
	fmt.Fprintf(w, "same-template burst: %d requests -> %d planning-lock acquisitions (amortization %.1fx)\n",
		r.BurstRequests, r.BurstPlanAcq, r.PlanAmortization)
}
