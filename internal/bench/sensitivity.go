package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/engine"
	"deepsea/internal/workload"
)

// SensitivityResult addresses the simulator's main threat to validity:
// do the headline orderings survive when the cost-model constants move?
// The Figure 6 comparison (DS vs E-15 vs no-partitioning, small
// selectivity, heavy skew) reruns under perturbed cluster models —
// slower scans, cheaper writes, heavier job startup, larger blocks —
// and reports whether DS still wins cumulatively.
type SensitivityResult struct {
	Rows []SensitivityRow
}

// SensitivityRow is one perturbed cost model.
type SensitivityRow struct {
	Model   string
	DS      float64
	E15     float64
	NP      float64
	DSWins  bool
	EBeatNP bool
}

// RunSensitivity runs the sweep.
func RunSensitivity(p Params) (*SensitivityResult, error) {
	gb := p.gb(100)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 70))
	nq := p.queries(20)
	ranges := workload.Ranges(nq, workload.Small, workload.Heavy, workload.ItemSkDomain(), rng)
	queries := templateQueries(data, workload.Q30, ranges)

	base := engine.DefaultCostModel()
	models := []struct {
		name   string
		mutate func(*engine.CostModel)
	}{
		{"default", nil},
		{"scan 2x slower", func(m *engine.CostModel) { m.ScanBW /= 2 }},
		{"scan 2x faster", func(m *engine.CostModel) { m.ScanBW *= 2 }},
		{"write 2x cheaper", func(m *engine.CostModel) { m.WriteBW *= 2 }},
		{"write 2x dearer", func(m *engine.CostModel) { m.WriteBW /= 2 }},
		{"job startup 3x", func(m *engine.CostModel) { m.JobStartup *= 3 }},
		{"128 MB blocks", func(m *engine.CostModel) { m.BlockSize *= 2 }},
		{"file open 4x", func(m *engine.CostModel) { m.FileOpen *= 4 }},
	}

	res := &SensitivityResult{}
	for _, mm := range models {
		cm := base
		if mm.mutate != nil {
			mm.mutate(&cm)
		}
		totals := map[string]float64{}
		for _, name := range []string{"DS", "E-15", "NP"} {
			var cfg = DSCfg()
			switch name {
			case "E-15":
				cfg = EquiDepthCfg(15)
			case "NP":
				cfg = NPCfg()
			}
			cfg.CostModel = &cm
			cfg = scaleCfg(cfg, gb, 100)
			r, err := RunWorkload(name+"/"+mm.name, data, queries, cfg)
			if err != nil {
				return nil, err
			}
			totals[name] = r.Total()
		}
		res.Rows = append(res.Rows, SensitivityRow{
			Model:   mm.name,
			DS:      totals["DS"],
			E15:     totals["E-15"],
			NP:      totals["NP"],
			DSWins:  totals["DS"] <= totals["E-15"] && totals["DS"] <= totals["NP"],
			EBeatNP: totals["E-15"] <= totals["NP"],
		})
	}
	return res, nil
}

// Print renders the sweep.
func (r *SensitivityResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Cost-model sensitivity: Figure 6 comparison under perturbed cluster constants")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "model\tDS (s)\tE-15 (s)\tNP (s)\tDS best?\tpartitioning beats NP?")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%v\t%v\n",
			row.Model, row.DS, row.E15, row.NP, row.DSWins, row.EBeatNP)
	}
	tw.Flush()
}
