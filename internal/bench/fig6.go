package bench

import (
	"fmt"
	"io"
	"math/rand"

	"deepsea/internal/core"
	"deepsea/internal/workload"
)

// Fig6Result reproduces Figure 6: adaptive (DeepSea) versus equi-depth
// partitioning with 6/15/30/60 fragments, over 10 instances of template
// Q30 with small selectivity and heavy skew on a 100 GB instance, with
// the largest-fragment bound disabled (Section 10.2). Three panels:
// (a) the instrumented first query that materializes and partitions the
// view, (b) the average time of the reusing queries Q30_2..10, and
// (c) cumulative time, plus the map-task counts the section's cluster
// utilization analysis discusses.
type Fig6Result struct {
	Arms []*RunResult
}

// RunFig6 runs the five arms.
func RunFig6(p Params) (*Fig6Result, error) {
	gb := p.gb(100)
	data := workload.Generate(gb, p.Seed, nil)
	rng := rand.New(rand.NewSource(p.Seed + 2))
	ranges := workload.Ranges(10, workload.Small, workload.Heavy, workload.ItemSkDomain(), rng)
	queries := templateQueries(data, workload.Q30, ranges)

	arms := []struct {
		name string
		cfg  core.Config
	}{
		{"DS", DSCfg()},
		{"E-6", EquiDepthCfg(6)},
		{"E-15", EquiDepthCfg(15)},
		{"E-30", EquiDepthCfg(30)},
		{"E-60", EquiDepthCfg(60)},
	}
	var out Fig6Result
	for _, arm := range arms {
		cfg := scaleCfg(arm.cfg, gb, 100)
		cfg.MaxFragFraction = 0 // "we do not bound the size of the largest fragment"
		r, err := RunWorkload(arm.name, data, queries, cfg)
		if err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, r)
	}
	return &out, nil
}

// Creation returns the instrumented first-query seconds per arm (6a).
func (r *Fig6Result) Creation(arm *RunResult) float64 { return arm.PerQuery[0] }

// AvgReuse returns the mean seconds of queries 2..n (6b).
func (r *Fig6Result) AvgReuse(arm *RunResult) float64 {
	if len(arm.PerQuery) < 2 {
		return 0
	}
	var t float64
	for _, s := range arm.PerQuery[1:] {
		t += s
	}
	return t / float64(len(arm.PerQuery)-1)
}

// Print renders the three panels.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: equi-depth vs adaptive partitioning (Q30 x10, small selectivity, heavy skew)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\t(a) create Q30_1 (s)\t(b) avg reuse Q30_2..n (s)\t(c) cumulative (s)\tmap tasks")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%.0f\t%d\n",
			a.Name, r.Creation(a), r.AvgReuse(a), a.Total(), a.MapTasks)
	}
	tw.Flush()
}
