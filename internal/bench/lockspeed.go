package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"deepsea/internal/core"
	"deepsea/internal/interval"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// The lockspeed experiment measures the per-view lock striping of the
// manager: a workload of independent query families — each family joins
// its own fact/dimension table pair, so its views are disjoint from
// every other family's — run serially versus one goroutine per family
// on the same instance. With a single manager lock the concurrent arm
// would serialize all maintenance; with striping, mutating queries on
// disjoint views overlap (MaxConcurrentMaint > 1 on multi-core hosts)
// while every result stays byte-identical to the serial run.

const (
	lockspeedDomLo = 0
	lockspeedDomHi = 9999
)

func lockspeedFactSchema(name string) relation.Schema {
	return relation.Schema{
		Name: name,
		Cols: []relation.Column{
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: lockspeedDomLo, Hi: lockspeedDomHi, Width: 1 << 18},
			{Name: "ss_qty", Type: relation.Int, Width: 1 << 18},
			{Name: "ss_pad", Type: relation.String, Width: 3 << 19},
		},
	}
}

func lockspeedDimSchema(name string) relation.Schema {
	return relation.Schema{
		Name: name,
		Cols: []relation.Column{
			{Name: "i_item_sk", Type: relation.Int, Ordered: true, Lo: lockspeedDomLo, Hi: lockspeedDomHi, Width: 1 << 18},
			{Name: "i_category", Type: relation.String, Width: 1 << 18},
		},
	}
}

// lockspeedFamily is one independent slice of the workload: a private
// fact/dimension pair and a range-query sequence over it.
type lockspeedFamily struct {
	fact, dim *relation.Table
	queries   []query.Node
}

// lockspeedQuery is the canonical aggregate-over-select-over-projected-
// join template instantiated over one family's tables.
func lockspeedQuery(factName, dimName string, iv interval.Interval) query.Node {
	return &query.Aggregate{
		Child: &query.Select{
			Child: &query.Project{
				Child: &query.Join{
					Left:  query.NewScan(factName, lockspeedFactSchema(factName)),
					Right: query.NewScan(dimName, lockspeedDimSchema(dimName)),
					LCol:  "ss_item_sk",
					RCol:  "i_item_sk",
				},
				Cols: []string{"ss_item_sk", "ss_qty", "i_category"},
			},
			Ranges: []query.RangePred{{Col: "ss_item_sk", Iv: iv}},
		},
		GroupBy: []string{"i_category"},
		Aggs: []query.AggSpec{
			{Func: query.Count, As: "n"},
			{Func: query.Sum, Col: "ss_qty", As: "total_qty"},
		},
	}
}

// lockspeedFamilies builds nFam independent families with factRows rows
// each and perFam queries per family.
func lockspeedFamilies(nFam, factRows, perFam int, seed int64) []lockspeedFamily {
	fams := make([]lockspeedFamily, nFam)
	cats := []string{"books", "music", "video", "games", "food"}
	for f := range fams {
		rng := rand.New(rand.NewSource(seed + int64(f)*7919))
		factName := fmt.Sprintf("fact_%c", 'a'+f)
		dimName := fmt.Sprintf("dim_%c", 'a'+f)
		fact := relation.NewTable(lockspeedFactSchema(factName))
		for i := 0; i < factRows; i++ {
			fact.Append(relation.Row{
				relation.IntVal(rng.Int63n(lockspeedDomHi + 1)),
				relation.IntVal(rng.Int63n(50) + 1),
				relation.StringVal(""),
			})
		}
		dim := relation.NewTable(lockspeedDimSchema(dimName))
		for i := int64(lockspeedDomLo); i <= lockspeedDomHi; i++ {
			dim.Append(relation.Row{
				relation.IntVal(i),
				relation.StringVal(cats[i%int64(len(cats))]),
			})
		}
		fams[f] = lockspeedFamily{fact: fact, dim: dim}
		for q := 0; q < perFam; q++ {
			width := rng.Int63n(2500) + 200
			lo := rng.Int63n(lockspeedDomHi - width)
			fams[f].queries = append(fams[f].queries,
				lockspeedQuery(factName, dimName, interval.New(lo, lo+width)))
		}
	}
	return fams
}

// lockspeedSystem builds a fresh instance holding every family's tables.
func lockspeedSystem(fams []lockspeedFamily) *core.DeepSea {
	cfg := DSCfg()
	cfg.MinFragBytes = 64 << 20
	if cfg.Parallelism == 0 {
		cfg.Parallelism = defaultParallelism
	}
	d := core.New(cfg)
	for _, f := range fams {
		d.AddBaseTable(f.fact)
		d.AddBaseTable(f.dim)
	}
	return d
}

// LockspeedRow is one arm of the striping comparison.
type LockspeedRow struct {
	Name string
	// WallSeconds is real elapsed time for the whole workload.
	WallSeconds float64
	// Mutations counts pool mutations (views/fragments materialized,
	// fragments merged, items evicted) across the workload.
	Mutations int64
}

// LockspeedResult reports the striping comparison: the identical
// multi-family workload run serially and with one goroutine per family.
type LockspeedResult struct {
	Rows []LockspeedRow
	// Families and QueriesPerFamily describe the workload shape.
	Families         int
	QueriesPerFamily int
	// Identical reports whether the concurrent arm returned
	// byte-identical results to the serial arm on every query.
	Identical bool
	// MaxConcurrentMaint is the highest number of maintenance sections
	// observed in flight simultaneously in the concurrent arm. On a
	// single-core host this can legitimately stay 1; the determinism
	// and mutation checks are the gated properties.
	MaxConcurrentMaint int64
}

// RunLockspeed runs the striping comparison.
func RunLockspeed(p Params) (*LockspeedResult, error) {
	nFam := 4
	factRows := 12000
	if p.ScaleGB == -1 { // Short mode: shrink the per-family tables
		factRows = 4000
	}
	perFam := p.queries(40) / nFam
	if perFam < 4 {
		perFam = 4
	}
	fams := lockspeedFamilies(nFam, factRows, perFam, p.Seed)

	res := &LockspeedResult{
		Families:         nFam,
		QueriesPerFamily: perFam,
		Identical:        true,
	}

	// Serial arm: families interleaved round-robin on one goroutine.
	serial := lockspeedSystem(fams)
	want := make([][]string, nFam)
	serialRow := LockspeedRow{Name: "serial"}
	start := time.Now()
	for q := 0; q < perFam; q++ {
		for f := range fams {
			rep, err := serial.ProcessQuery(fams[f].queries[q])
			if err != nil {
				return nil, fmt.Errorf("lockspeed serial family %d query %d: %w", f, q, err)
			}
			serialRow.Mutations += mutationCount(rep)
			want[f] = append(want[f], rep.Result.Fingerprint())
		}
	}
	serialRow.WallSeconds = time.Since(start).Seconds()
	res.Rows = append(res.Rows, serialRow)

	// Concurrent arm: one goroutine per family over a fresh instance,
	// with an atomic in-flight counter on the maintenance sections.
	conc := lockspeedSystem(fams)
	var cur, maxInFlight int64
	conc.OnMaintain = func(_ []string, enter bool) {
		if !enter {
			atomic.AddInt64(&cur, -1)
			return
		}
		c := atomic.AddInt64(&cur, 1)
		for {
			m := atomic.LoadInt64(&maxInFlight)
			if c <= m || atomic.CompareAndSwapInt64(&maxInFlight, m, c) {
				break
			}
		}
	}
	concRow := LockspeedRow{Name: "concurrent"}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, nFam)
	start = time.Now()
	for f := range fams {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			var muts int64
			identical := true
			for q, node := range fams[f].queries {
				rep, err := conc.ProcessQuery(node)
				if err != nil {
					errs <- fmt.Errorf("lockspeed concurrent family %d query %d: %w", f, q, err)
					return
				}
				muts += mutationCount(rep)
				if rep.Result.Fingerprint() != want[f][q] {
					identical = false
				}
			}
			mu.Lock()
			concRow.Mutations += muts
			if !identical {
				res.Identical = false
			}
			mu.Unlock()
		}(f)
	}
	wg.Wait()
	concRow.WallSeconds = time.Since(start).Seconds()
	close(errs)
	for err := range errs {
		return nil, err
	}
	res.Rows = append(res.Rows, concRow)
	res.MaxConcurrentMaint = atomic.LoadInt64(&maxInFlight)
	return res, nil
}

// mutationCount tallies the pool mutations one query performed.
func mutationCount(rep core.QueryReport) int64 {
	return int64(len(rep.MaterializedViews) + len(rep.MaterializedFrags) +
		len(rep.MergedFrags) + len(rep.Evicted))
}

// Speedup returns wall-clock(serial)/wall-clock(concurrent).
func (r *LockspeedResult) Speedup() float64 {
	if len(r.Rows) < 2 || r.Rows[1].WallSeconds == 0 {
		return 0
	}
	return r.Rows[0].WallSeconds / r.Rows[1].WallSeconds
}

// Metrics exports the headline numbers for machine-readable output.
// "identical" and "mutations" are the regression-gated properties;
// "speedup" and "max_concurrent_maint" are informational (they depend
// on host core count).
func (r *LockspeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"speedup":              r.Speedup(),
		"identical":            0,
		"max_concurrent_maint": float64(r.MaxConcurrentMaint),
	}
	if r.Identical {
		m["identical"] = 1
	}
	for _, row := range r.Rows {
		m["wall_seconds_"+row.Name] = row.WallSeconds
		m["mutations_"+row.Name] = float64(row.Mutations)
	}
	m["mutations"] = m["mutations_concurrent"]
	return m
}

// Print renders the comparison.
func (r *LockspeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Per-view lock striping, %d disjoint families x %d queries\n",
		r.Families, r.QueriesPerFamily)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\twall s\tpool mutations")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\n", row.Name, row.WallSeconds, row.Mutations)
	}
	tw.Flush()
	fmt.Fprintf(w, "speedup: %.2fx, max concurrent maintenance sections: %d\n",
		r.Speedup(), r.MaxConcurrentMaint)
	fmt.Fprintf(w, "concurrent results byte-identical to serial: %v\n", r.Identical)
}
