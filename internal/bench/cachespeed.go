package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"deepsea/internal/cache"
	"deepsea/internal/core"
	"deepsea/internal/query"
	"deepsea/internal/relation"
	"deepsea/internal/workload"
)

// CachespeedRow is one arm of the result-cache comparison.
type CachespeedRow struct {
	Name string
	// WallSeconds is real elapsed time for the whole workload.
	WallSeconds float64
	// SimSeconds is the simulated cluster time actually paid (cache hits
	// pay nothing).
	SimSeconds float64
	// CacheHits and CacheMisses count result-cache traffic (zero for the
	// uncached arm).
	CacheHits   int64
	CacheMisses int64
}

// CachespeedResult reports the wall-clock effect of the fingerprint-
// keyed result cache on a repetitive workload: full DeepSea with and
// without the cache over the identical query sequence, plus the
// identity check that cached answers match computed ones byte for byte.
type CachespeedResult struct {
	Rows []CachespeedRow
	// RepeatFraction is the fraction of queries that are repeats of an
	// earlier query in the sequence.
	RepeatFraction float64
	// Identical reports whether the cached arm returned byte-identical
	// results to the uncached arm on every query.
	Identical bool
}

// cachespeedQueries builds a repetitive workload split into a warmup
// phase and a timed phase. Warmup issues each of the nDistinct distinct
// mixed-template queries twice — the first pass materializes and refines
// views, the second re-issues every query against the settled pool — so
// the timed phase measures steady state: total queries drawn uniformly
// from the distinct set, the repetition profile DeepSea assumes analytic
// workloads have (Definition 7 candidates exist because ranges recur).
func cachespeedQueries(data *workload.Data, nDistinct, total int, seed int64) (warmup, timed []query.Node) {
	rng := rand.New(rand.NewSource(seed + 177))
	ranges := workload.Ranges(nDistinct, workload.Big, workload.Light, workload.ItemSkDomain(), rng)
	distinct := mixedQueries(data, ranges, rng)
	warmup = append(append(warmup, distinct...), distinct...)
	for len(timed) < total {
		timed = append(timed, distinct[rng.Intn(len(distinct))])
	}
	return warmup, timed
}

// cachespeedRun executes the workload on one fresh system and returns
// the timed-phase wall and simulated time, per-query fingerprints over
// the whole sequence, and the timed-phase cache traffic.
func cachespeedRun(data *workload.Data, warmup, timed []query.Node, cfg core.Config) (CachespeedRow, []string, error) {
	d := core.New(cfg)
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}
	var row CachespeedRow
	tables := make([]*relation.Table, 0, len(warmup)+len(timed))
	for i, q := range warmup {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return CachespeedRow{}, nil, fmt.Errorf("cachespeed warmup %d: %w", i, err)
		}
		tables = append(tables, rep.Result)
	}
	var before cache.Stats
	if d.Cache != nil {
		before = d.Cache.Stats()
	}
	start := time.Now()
	for i, q := range timed {
		rep, err := d.ProcessQuery(q)
		if err != nil {
			return CachespeedRow{}, nil, fmt.Errorf("cachespeed query %d: %w", i, err)
		}
		row.SimSeconds += rep.TotalSeconds
		tables = append(tables, rep.Result)
	}
	row.WallSeconds = time.Since(start).Seconds()
	// Fingerprint outside the timed region: hashing every result costs the
	// same in both arms and would only dilute the measured speedup.
	fingerprints := make([]string, 0, len(tables))
	for _, tbl := range tables {
		fingerprints = append(fingerprints, tbl.Fingerprint())
	}
	if d.Cache != nil {
		st := d.Cache.Stats()
		row.CacheHits = st.Hits - before.Hits
		row.CacheMisses = st.Misses - before.Misses
	}
	return row, fingerprints, nil
}

// RunCachespeed compares full DeepSea with and without the result cache
// on a highly repetitive workload. Both arms run the identical warmup
// (views materialize, the cached arm fills its cache) and the identical
// timed phase of pure repeats; only the timed phase is measured, so the
// speedup is the steady-state effect of answering repeats from the
// cache instead of re-executing them over materialized views. The
// cached arm must return byte-identical results on every query.
func RunCachespeed(p Params) (*CachespeedResult, error) {
	gb := p.gb(2000)
	data := workload.Generate(gb, p.Seed, nil)
	total := p.queries(240)
	// One distinct template per eight issues: the repetition profile the
	// cache is for (≥ 85% repeats at any scale, comfortably above the 50%
	// floor the experiment promises).
	nDistinct := total / 8
	if nDistinct < 4 {
		nDistinct = 4
	}
	if nDistinct > 16 {
		nDistinct = 16
	}
	if total < nDistinct*2 {
		total = nDistinct * 2
	}
	warmup, timed := cachespeedQueries(data, nDistinct, total, p.Seed)

	res := &CachespeedResult{
		RepeatFraction: 1 - float64(nDistinct)/float64(len(warmup)+len(timed)),
		Identical:      true,
	}
	arms := []struct {
		name       string
		cacheBytes int64
	}{
		{"DS", 0},
		{"DS+cache", 1 << 30},
	}
	var prints [][]string
	for _, arm := range arms {
		cfg := scaleCfg(DSCfg(), gb, 2000)
		cfg.CacheBytes = arm.cacheBytes
		row, fp, err := cachespeedRun(data, warmup, timed, cfg)
		if err != nil {
			return nil, err
		}
		row.Name = arm.name
		res.Rows = append(res.Rows, row)
		prints = append(prints, fp)
	}
	for i := range prints[0] {
		if prints[0][i] != prints[1][i] {
			res.Identical = false
			break
		}
	}
	return res, nil
}

// Speedup returns wall-clock(uncached)/wall-clock(cached).
func (r *CachespeedResult) Speedup() float64 {
	if len(r.Rows) < 2 || r.Rows[1].WallSeconds == 0 {
		return 0
	}
	return r.Rows[0].WallSeconds / r.Rows[1].WallSeconds
}

// HitRate returns the cached arm's hit fraction.
func (r *CachespeedResult) HitRate() float64 {
	if len(r.Rows) < 2 {
		return 0
	}
	h, m := r.Rows[1].CacheHits, r.Rows[1].CacheMisses
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Metrics exports the headline numbers for machine-readable output.
func (r *CachespeedResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"speedup":         r.Speedup(),
		"cache_hit_rate":  r.HitRate(),
		"repeat_fraction": r.RepeatFraction,
		"identical":       0,
	}
	if r.Identical {
		m["identical"] = 1
	}
	for _, row := range r.Rows {
		m["wall_seconds_"+row.Name] = row.WallSeconds
	}
	return m
}

// Print renders the comparison.
func (r *CachespeedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Result-cache speedup, repetitive mixed workload (%.0f%% repeats)\n",
		r.RepeatFraction*100)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "arm\twall s\tsim s\thits\tmisses")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%d\t%d\n",
			row.Name, row.WallSeconds, row.SimSeconds, row.CacheHits, row.CacheMisses)
	}
	tw.Flush()
	fmt.Fprintf(w, "speedup: %.2fx, hit rate %.0f%%\n", r.Speedup(), r.HitRate()*100)
	fmt.Fprintf(w, "cached results byte-identical to computed: %v\n", r.Identical)
}
