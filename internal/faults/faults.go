// Package faults provides a deterministic, seeded fault injector for
// chaos-testing the data path. Storage, the engine's worker pool and
// the view manager consult the injector at well-defined sites (storage
// reads and writes, worker tasks, materialization); a nil injector is
// the production configuration and costs a single pointer comparison
// per site.
//
// Determinism: whether the n-th check at a given (site, key) injects a
// fault — and whether that fault is transient or permanent — is a pure
// function of (seed, site, key, n). The schedule of faults for any one
// key is therefore reproducible across runs regardless of goroutine
// interleaving; only the assignment of anonymous-key checks (key "")
// to particular workers can vary under concurrency.
package faults

import (
	"errors"
	"fmt"
	"sync"
)

// Site identifies one class of injection point.
type Site int

// Injection sites.
const (
	// StorageRead covers reads of materialized files (whole views and
	// fragments), both on the execution path and inside refinement.
	StorageRead Site = iota
	// StorageWrite covers writes of materialized files.
	StorageWrite
	// Worker covers the engine's token-budgeted data-path tasks (chunk
	// workers and sibling subplan tasks).
	Worker
	// Materialize covers the view manager's materialization decisions:
	// a fault here fails the whole materialization attempt before any
	// write happens.
	Materialize
	// JournalAppend covers the datastore's write-ahead journal appends:
	// a fault here drops the record (degrading durability, never
	// correctness) and is counted as an append error.
	JournalAppend
	// SnapshotWrite covers the datastore's snapshot publication: a fault
	// here leaves the previous snapshot in place and the journal intact.
	SnapshotWrite

	numSites
)

// String names the site for errors and reports.
func (s Site) String() string {
	switch s {
	case StorageRead:
		return "storage-read"
	case StorageWrite:
		return "storage-write"
	case Worker:
		return "worker"
	case Materialize:
		return "materialize"
	case JournalAppend:
		return "journal-append"
	case SnapshotWrite:
		return "snapshot-write"
	default:
		return fmt.Sprintf("site(%d)", int(s))
	}
}

// Config declares the per-site injection probabilities. Zero
// probabilities disable a site entirely (no bookkeeping is done for
// it), so an all-zero Config is a near-free no-op injector.
type Config struct {
	// Seed drives every injection decision.
	Seed int64
	// StorageRead, StorageWrite, Worker and Materialize are the per-site
	// injection probabilities in [0, 1].
	StorageRead  float64
	StorageWrite float64
	Worker       float64
	Materialize  float64
	// JournalAppend and SnapshotWrite are the datastore's durability
	// sites, in [0, 1].
	JournalAppend float64
	SnapshotWrite float64
	// PermanentFraction is the fraction of injected faults that are
	// permanent (non-retryable); the rest are transient. 0 makes every
	// fault transient, 1 makes every fault permanent.
	PermanentFraction float64
}

// Fault is an injected error. Consumers distinguish injected faults
// from logic errors with AsFault and decide retry/degradation policy
// from Permanent.
type Fault struct {
	Site Site
	Key  string
	// Permanent marks a non-retryable fault (a corrupt file, a poisoned
	// task); transient faults model timeouts and lost containers that a
	// retry may outlive.
	Permanent bool
	// N is which check at (Site, Key) fired, for reproducing a schedule.
	N uint64
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "transient"
	if f.Permanent {
		kind = "permanent"
	}
	key := f.Key
	if key == "" {
		key = "<anon>"
	}
	return fmt.Sprintf("faults: injected %s %s fault at %s (check %d)", kind, f.Site, key, f.N)
}

// AsFault unwraps err to an injected *Fault, if one is anywhere in its
// chain.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// SiteStats counts one site's activity.
type SiteStats struct {
	// Checks is how many enabled-site checks ran.
	Checks uint64
	// Injected is how many of them returned a fault.
	Injected uint64
	// Permanent is how many injected faults were permanent.
	Permanent uint64
}

// Injector is a deterministic fault source. All methods are safe for
// concurrent use and safe on a nil receiver (which never injects and
// does no work).
type Injector struct {
	seed  uint64
	perm  float64
	probs [numSites]float64

	mu     sync.Mutex
	counts map[siteKey]uint64
	stats  [numSites]SiteStats
}

type siteKey struct {
	site Site
	key  string
}

// New returns an injector for the given configuration.
func New(cfg Config) *Injector {
	in := &Injector{
		seed:   uint64(cfg.Seed),
		perm:   cfg.PermanentFraction,
		counts: make(map[siteKey]uint64),
	}
	in.probs[StorageRead] = cfg.StorageRead
	in.probs[StorageWrite] = cfg.StorageWrite
	in.probs[Worker] = cfg.Worker
	in.probs[Materialize] = cfg.Materialize
	in.probs[JournalAppend] = cfg.JournalAppend
	in.probs[SnapshotWrite] = cfg.SnapshotWrite
	return in
}

// Check runs one injection decision at a site. key identifies the
// object being touched (a file path, a view id; "" for anonymous
// worker tasks). It returns nil, or a *Fault the caller must treat as
// the operation having failed.
func (in *Injector) Check(site Site, key string) error {
	if in == nil {
		return nil
	}
	p := in.probs[site]
	if p <= 0 {
		return nil
	}
	in.mu.Lock()
	sk := siteKey{site, key}
	n := in.counts[sk]
	in.counts[sk] = n + 1
	in.stats[site].Checks++
	h := mix(in.seed, uint64(site)+1, hashString(key), n)
	if unit(h) >= p {
		in.mu.Unlock()
		return nil
	}
	f := &Fault{Site: site, Key: key, N: n,
		Permanent: unit(mix(h, 0x70657264)) < in.perm} // "perd": independent permanence draw
	in.stats[site].Injected++
	if f.Permanent {
		in.stats[site].Permanent++
	}
	in.mu.Unlock()
	return f
}

// Enabled reports whether the site has a positive probability — for
// callers that want to skip building a key string when injection is
// off.
func (in *Injector) Enabled(site Site) bool {
	return in != nil && in.probs[site] > 0
}

// Stats returns a snapshot of per-site activity (nil map for a nil
// injector).
func (in *Injector) Stats() map[Site]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]SiteStats, numSites)
	for s := Site(0); s < numSites; s++ {
		out[s] = in.stats[s]
	}
	return out
}

// TotalInjected returns how many faults have been injected across all
// sites (0 for a nil injector).
func (in *Injector) TotalInjected() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var total uint64
	for s := Site(0); s < numSites; s++ {
		total += in.stats[s].Injected
	}
	return total
}

// mix folds the inputs through a splitmix64-style finalizer — any fixed
// mixing works; it only needs to depend on every input.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// hashString is FNV-1a, inlined so the package stays dependency-free.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
