package faults

import (
	"fmt"
	"testing"
)

// TestNilInjectorNeverInjects: the production configuration is a nil
// injector; every site must be a no-op.
func TestNilInjectorNeverInjects(t *testing.T) {
	var in *Injector
	for s := Site(0); s < numSites; s++ {
		if err := in.Check(s, "k"); err != nil {
			t.Fatalf("nil injector injected at %s: %v", s, err)
		}
	}
	if in.Enabled(StorageRead) || in.TotalInjected() != 0 || in.Stats() != nil {
		t.Error("nil injector reported activity")
	}
}

// TestZeroProbabilityIsFree: disabled sites inject nothing and do no
// bookkeeping (Checks stays zero).
func TestZeroProbabilityIsFree(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if err := in.Check(StorageRead, "a"); err != nil {
			t.Fatal("zero-probability site injected")
		}
	}
	if st := in.Stats()[StorageRead]; st.Checks != 0 || st.Injected != 0 {
		t.Errorf("disabled site did bookkeeping: %+v", st)
	}
}

// TestDeterministicSchedule: the fault schedule for a (site, key) is a
// pure function of the seed — two injectors with the same seed agree
// check for check, and a different seed diverges somewhere.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(Config{Seed: seed, StorageRead: 0.3, PermanentFraction: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Check(StorageRead, "views/v1/frag") != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical 200-check schedule")
	}
}

// TestProbabilityExtremesAndPermanence: p=1 always injects; the
// permanent fraction is honored at its extremes.
func TestProbabilityExtremesAndPermanence(t *testing.T) {
	for _, perm := range []float64{0, 1} {
		in := New(Config{Seed: 7, Worker: 1, PermanentFraction: perm})
		for i := 0; i < 50; i++ {
			err := in.Check(Worker, "")
			f, ok := AsFault(err)
			if !ok {
				t.Fatalf("p=1 did not inject at check %d", i)
			}
			if f.Permanent != (perm == 1) {
				t.Fatalf("PermanentFraction=%g produced Permanent=%v", perm, f.Permanent)
			}
		}
	}
}

// TestInjectionRateRoughlyMatches: over many checks the empirical rate
// lands near the configured probability.
func TestInjectionRateRoughlyMatches(t *testing.T) {
	in := New(Config{Seed: 11, StorageWrite: 0.3})
	const n = 5000
	hits := 0
	for i := 0; i < n; i++ {
		if in.Check(StorageWrite, fmt.Sprintf("f%d", i%17)) != nil {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("empirical rate %.3f far from configured 0.3", rate)
	}
	st := in.Stats()[StorageWrite]
	if st.Checks != n || st.Injected != uint64(hits) {
		t.Errorf("stats %+v disagree with observed %d/%d", st, hits, n)
	}
}

// TestAsFaultThroughWrapping: faults survive %w chains, and ordinary
// errors do not masquerade as faults.
func TestAsFaultThroughWrapping(t *testing.T) {
	in := New(Config{Seed: 3, Materialize: 1})
	err := in.Check(Materialize, "view-1")
	wrapped := fmt.Errorf("core: materialize: %w", fmt.Errorf("engine: %w", err))
	f, ok := AsFault(wrapped)
	if !ok || f.Site != Materialize || f.Key != "view-1" {
		t.Fatalf("AsFault through wrapping = %v, %v", f, ok)
	}
	if _, ok := AsFault(fmt.Errorf("plain error")); ok {
		t.Error("plain error recognized as fault")
	}
}
