package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsea/internal/leakcheck"
)

// waitQueueDepth polls until the limiter's queue reaches depth n.
func waitQueueDepth(t *testing.T, l *limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, depth := l.snapshot()
		if depth >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, depth)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLimiterFIFO(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Enqueue three waiters in a known order (each is in the queue before
	// the next starts), record the order they are admitted in.
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.release()
		}(i)
		waitQueueDepth(t, l, i+1)
	}
	l.release() // hands the slot to waiter 0, then 1, then 2
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want [0 1 2]", order)
		}
	}
	stats, inflight, depth := l.snapshot()
	if inflight != 0 || depth != 0 {
		t.Errorf("limiter not drained: %d in flight, %d queued", inflight, depth)
	}
	if stats.Admitted != 4 || stats.Queued != 3 {
		t.Errorf("stats = %+v, want 4 admitted / 3 queued", stats)
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 1, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		err := l.acquire(context.Background())
		if err == nil {
			l.release()
		}
		done <- err
	}()
	waitQueueDepth(t, l, 1)

	// Slot busy, queue full: immediate shed.
	if err := l.acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed", err)
	}
	stats, _, _ := l.snapshot()
	if stats.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", stats.ShedQueueFull)
	}
	l.release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestLimiterQueueTimeout(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 10*time.Millisecond)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed after queue timeout", err)
	}
	stats, _, depth := l.snapshot()
	if stats.ShedTimeout != 1 {
		t.Errorf("ShedTimeout = %d, want 1", stats.ShedTimeout)
	}
	if depth != 0 {
		t.Errorf("abandoned waiter left in queue (depth %d)", depth)
	}
	// The held slot is unaffected; releasing frees it for a fresh acquire.
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.release()
}

// TestLimiterReleaseSkipsAbandonedWaiter pins the handover invariant
// white-box: release must pass over a waiter that abandoned (timed out
// or canceled but not yet dequeued — the window between its select
// firing and it retaking the mutex) and admit the next live one,
// keeping the slot accounted to exactly one owner.
func TestLimiterReleaseSkipsAbandonedWaiter(t *testing.T) {
	l := newLimiter(1, 8, 0)
	l.inflight = 1
	abandoned := &waiter{ready: make(chan struct{}), abandoned: true}
	live := &waiter{ready: make(chan struct{})}
	l.queue = []*waiter{abandoned, live}

	l.release()

	if !live.admitted {
		t.Error("live waiter behind an abandoned one was not admitted")
	}
	select {
	case <-live.ready:
	default:
		t.Error("live waiter's ready channel not closed")
	}
	if abandoned.admitted {
		t.Error("abandoned waiter was granted the slot")
	}
	select {
	case <-abandoned.ready:
		t.Error("abandoned waiter's ready channel was closed")
	default:
	}
	// The slot moved from releaser to the live waiter: still one
	// in-flight, queue drained.
	if _, inflight, depth := l.snapshot(); inflight != 1 || depth != 0 {
		t.Errorf("inflight=%d depth=%d, want 1 and 0", inflight, depth)
	}

	// With only abandoned waiters queued, release frees the slot.
	l.queue = []*waiter{{ready: make(chan struct{}), abandoned: true}}
	l.release()
	if _, inflight, depth := l.snapshot(); inflight != 0 || depth != 0 {
		t.Errorf("after abandoned-only release: inflight=%d depth=%d, want 0 and 0", inflight, depth)
	}
}

// TestLimiterFIFOPastAbandoned checks end-to-end that a canceled waiter
// does not absorb the handed-over slot nor break FIFO for those behind
// it.
func TestLimiterFIFOPastAbandoned(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() { bDone <- l.acquire(ctx) }()
	waitQueueDepth(t, l, 1)
	cDone := make(chan error, 1)
	go func() {
		err := l.acquire(context.Background())
		cDone <- err
	}()
	waitQueueDepth(t, l, 2)

	cancel()
	if err := <-bDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	// C is still queued; releasing A's slot must admit C, not leak the
	// slot into B's corpse.
	l.release()
	select {
	case err := <-cDone:
		if err != nil {
			t.Fatalf("waiter behind the canceled one: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter behind the canceled one never admitted: slot leaked")
	}
	l.release()
	if _, inflight, depth := l.snapshot(); inflight != 0 || depth != 0 {
		t.Errorf("limiter not drained: inflight=%d depth=%d", inflight, depth)
	}
}

// TestLimiterAbandonHandoverRace is the -race stress for the
// abandon/handover window: many waiters with deadlines short enough
// that releases routinely race their timeouts. Whatever interleaving
// the scheduler picks, a slot must be neither leaked (concurrency
// drops below the limit forever) nor double-granted (concurrency
// exceeds the limit), and the limiter must drain to zero.
func TestLimiterAbandonHandoverRace(t *testing.T) {
	leakcheck.Check(t)
	const (
		slots   = 4
		workers = 200
	)
	l := newLimiter(slots, workers, 0)
	var cur, peak, admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A spread of tiny deadlines: some requests are admitted
			// immediately, some after queueing, many abandon right as a
			// release considers them.
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(i%5)*200*time.Microsecond)
			defer cancel()
			if err := l.acquire(ctx); err != nil {
				return
			}
			admitted.Add(1)
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
			l.release()
		}(i)
	}
	wg.Wait()

	if p := peak.Load(); p > slots {
		t.Errorf("slot double-granted: observed %d concurrent holders, limit %d", p, slots)
	}
	stats, inflight, depth := l.snapshot()
	if inflight != 0 || depth != 0 {
		t.Errorf("slot leaked: inflight=%d depth=%d after full drain", inflight, depth)
	}
	if int64(stats.Admitted) != admitted.Load() {
		t.Errorf("stats.Admitted = %d, %d goroutines actually admitted", stats.Admitted, admitted.Load())
	}
	// Every worker is accounted exactly once across the outcomes.
	total := stats.Admitted + stats.ShedQueueFull + stats.Canceled + stats.ShedTimeout
	if total != workers {
		t.Errorf("outcomes sum to %d (%+v), want %d", total, stats, workers)
	}
}

func TestLimiterContextCancel(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.acquire(ctx) }()
	waitQueueDepth(t, l, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	stats, _, depth := l.snapshot()
	if stats.Canceled != 1 || depth != 0 {
		t.Errorf("stats = %+v, depth = %d; want 1 canceled, empty queue", stats, depth)
	}
	l.release()
}
