package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"deepsea/internal/leakcheck"
)

// waitQueueDepth polls until the limiter's queue reaches depth n.
func waitQueueDepth(t *testing.T, l *limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, depth := l.snapshot()
		if depth >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, depth)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLimiterFIFO(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Enqueue three waiters in a known order (each is in the queue before
	// the next starts), record the order they are admitted in.
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.release()
		}(i)
		waitQueueDepth(t, l, i+1)
	}
	l.release() // hands the slot to waiter 0, then 1, then 2
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want [0 1 2]", order)
		}
	}
	stats, inflight, depth := l.snapshot()
	if inflight != 0 || depth != 0 {
		t.Errorf("limiter not drained: %d in flight, %d queued", inflight, depth)
	}
	if stats.Admitted != 4 || stats.Queued != 3 {
		t.Errorf("stats = %+v, want 4 admitted / 3 queued", stats)
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 1, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		err := l.acquire(context.Background())
		if err == nil {
			l.release()
		}
		done <- err
	}()
	waitQueueDepth(t, l, 1)

	// Slot busy, queue full: immediate shed.
	if err := l.acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed", err)
	}
	stats, _, _ := l.snapshot()
	if stats.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", stats.ShedQueueFull)
	}
	l.release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestLimiterQueueTimeout(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 10*time.Millisecond)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed after queue timeout", err)
	}
	stats, _, depth := l.snapshot()
	if stats.ShedTimeout != 1 {
		t.Errorf("ShedTimeout = %d, want 1", stats.ShedTimeout)
	}
	if depth != 0 {
		t.Errorf("abandoned waiter left in queue (depth %d)", depth)
	}
	// The held slot is unaffected; releasing frees it for a fresh acquire.
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.release()
}

func TestLimiterContextCancel(t *testing.T) {
	leakcheck.Check(t)
	l := newLimiter(1, 8, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.acquire(ctx) }()
	waitQueueDepth(t, l, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	stats, _, depth := l.snapshot()
	if stats.Canceled != 1 || depth != 0 {
		t.Errorf("stats = %+v, depth = %d; want 1 canceled, empty queue", stats, depth)
	}
	l.release()
}
