package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/leakcheck"
	"deepsea/internal/workload"
)

// newTestSystem loads the deterministic BigBench-derived dataset (1 GB
// modelled, a few thousand real rows) into a fresh System.
func newTestSystem(t testing.TB, opts ...deepsea.Option) *deepsea.System {
	t.Helper()
	sys := deepsea.New(opts...)
	if err := workload.Load(sys, workload.Generate(1, 1, nil)); err != nil {
		t.Fatal(err)
	}
	return sys
}

// newTestServer wires sys into a Server plus an httptest frontend, with
// shutdown-then-close registered so leakcheck sees a drained world.
func newTestServer(t testing.TB, sys *deepsea.System, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

func postQuery(t testing.TB, url string, spec QuerySpec) (int, QueryResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, qr, resp.Header
}

// canonRows renders rows order-independently: the engine guarantees
// multiset equality, not row order.
func canonRows(rows [][]any) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		b, _ := json.Marshal(r)
		lines[i] = string(b)
	}
	sort.Strings(lines)
	b, _ := json.Marshal(lines)
	return string(b)
}

// testSpecs is a deterministic mix over three templates.
func testSpecs(n int) []QuerySpec {
	tpls := []string{"Q1", "Q7", "Q16"}
	specs := make([]QuerySpec, n)
	for i := range specs {
		width := int64(2000 + 137*int64(i%11))
		lo := workload.ItemSkLo + int64(i%7)*900
		specs[i] = QuerySpec{Template: tpls[i%len(tpls)], Lo: lo, Hi: lo + width}
	}
	return specs
}

// TestConcurrentServingMatchesSerial is the acceptance stress: 64
// concurrent clients against one server, every response identical (as a
// row multiset) to a serial reference system answering the same query,
// zero sheds because client concurrency never exceeds the in-flight
// limit, and a leak-free drain.
func TestConcurrentServingMatchesSerial(t *testing.T) {
	leakcheck.Check(t)
	const clients = 64
	specs := testSpecs(clients * 2)

	// Serial reference: a fresh system processes the same specs one at a
	// time.
	ref := newTestSystem(t)
	want := make([]string, len(specs))
	for i, sp := range specs {
		q, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ref.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonRows(rep.Rows())
	}

	sys := newTestSystem(t)
	srv, ts := newTestServer(t, sys, Config{MaxInFlight: clients})
	var wg sync.WaitGroup
	var sheds atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(specs); i += clients {
				status, qr, _ := postQuery(t, ts.URL, specs[i])
				if status == http.StatusTooManyRequests {
					sheds.Add(1)
					continue
				}
				if status != http.StatusOK {
					t.Errorf("spec %d: status %d", i, status)
					continue
				}
				if got := canonRows(qr.Rows); got != want[i] {
					t.Errorf("spec %d: concurrent result differs from serial reference", i)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := sheds.Load(); n != 0 {
		t.Errorf("%d requests shed below the in-flight limit", n)
	}
	if srv.served.Load() != uint64(len(specs)) {
		t.Errorf("served %d, want %d", srv.served.Load(), len(specs))
	}
}

// TestLoadShedding holds every execution slot and the whole queue busy
// via the test gate, then verifies extra requests shed with 429 and a
// Retry-After hint — and that the held requests all still succeed.
func TestLoadShedding(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 2, MaxQueue: 2, QueueTimeout: -1})
	gate := make(chan struct{})
	var gated atomic.Int32
	srv.testExecGate = func(ctx context.Context) {
		gated.Add(1)
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})

	spec := QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 3000}
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			status, _, _ := postQuery(t, ts.URL, spec)
			codes <- status
		}()
	}
	// Wait until the two slots are gated and the queue holds the other
	// two — the server is now provably saturated.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, depth := srv.lim.snapshot()
		if gated.Load() == 2 && depth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: %d gated, queue %d", gated.Load(), depth)
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 6; i++ {
		status, _, hdr := postQuery(t, ts.URL, spec)
		if status != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: status %d, want 429", i, status)
		}
		if hdr.Get("Retry-After") == "" {
			t.Error("shed response missing Retry-After")
		}
	}
	close(gate)
	for i := 0; i < 4; i++ {
		if status := <-codes; status != http.StatusOK {
			t.Errorf("held request: status %d, want 200", status)
		}
	}
	stats, _, _ := srv.lim.snapshot()
	if stats.ShedQueueFull != 6 {
		t.Errorf("ShedQueueFull = %d, want 6", stats.ShedQueueFull)
	}
	if srv.shed.Load() != 6 {
		t.Errorf("shed counter = %d, want 6", srv.shed.Load())
	}
}

// TestTemplateCoalescing releases a burst of same-template requests
// simultaneously (the gate opens once all are admitted) and verifies
// the burst acquired the planning lock fewer times than there were
// requests — the template batcher at work.
func TestTemplateCoalescing(t *testing.T) {
	leakcheck.Check(t)
	const n = 32
	sys := newTestSystem(t)
	// The linger gives the simultaneously released burst a sealing window
	// so coalescing does not depend on scheduler interleaving (on a
	// few-core machine the requests can otherwise run back to back).
	srv := New(sys, Config{MaxInFlight: n, BatchLinger: 20 * time.Millisecond})
	release := make(chan struct{})
	var admitted atomic.Int32
	srv.testExecGate = func(ctx context.Context) {
		if admitted.Add(1) == n {
			close(release)
		}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})

	before := sys.PlanAcquisitions()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := workload.ItemSkLo + int64(i)*500
			status, _, _ := postQuery(t, ts.URL, QuerySpec{Template: "Q30", Lo: lo, Hi: lo + 2500})
			if status != http.StatusOK {
				t.Errorf("request %d: status %d", i, status)
			}
		}(i)
	}
	wg.Wait()
	acq := sys.PlanAcquisitions() - before
	if acq >= n {
		t.Errorf("burst of %d requests acquired the planning lock %d times; batching coalesced nothing", n, acq)
	}
	t.Logf("plan acquisitions for %d-request burst: %d", n, acq)
}

// TestDrainShutdown verifies the lifecycle: during a drain, in-flight
// requests finish normally, new requests get 503, /healthz flips to
// draining, and nothing leaks.
func TestDrainShutdown(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 4})
	started := make(chan struct{}, 8)
	srv.testExecGate = func(ctx context.Context) { started <- struct{}{} }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 5000}
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			status, _, _ := postQuery(t, ts.URL, spec)
			codes <- status
		}()
	}
	for i := 0; i < 4; i++ {
		<-started // every request is past admission, executing
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for i := 0; i < 4; i++ {
		if status := <-codes; status != http.StatusOK {
			t.Errorf("in-flight request during drain: status %d, want 200", status)
		}
	}

	// After the drain: queries refused, health reports draining.
	status, _, _ := postQuery(t, ts.URL, spec)
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-drain query: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Errorf("healthz after drain: %d %q, want 503 draining", resp.StatusCode, hz.Status)
	}
}

// TestShutdownCancelsStragglers: when the drain deadline passes, the
// server cancels in-flight queries instead of hanging, and still exits
// leak-free.
func TestShutdownCancelsStragglers(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 2})
	started := make(chan struct{}, 2)
	srv.testExecGate = func(ctx context.Context) {
		started <- struct{}{}
		<-ctx.Done() // a straggler that only cancellation can move
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 2000}
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, _, _ := postQuery(t, ts.URL, spec)
			codes <- status
		}()
	}
	<-started
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	for i := 0; i < 2; i++ {
		if status := <-codes; status == http.StatusOK {
			t.Error("cancelled straggler reported 200")
		}
	}
}

// TestHealthzReflectsDegradation injects storage-read faults so views
// quarantine, then checks /healthz surfaces the degraded state.
func TestHealthzReflectsDegradation(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t,
		deepsea.WithFaultInjection(deepsea.FaultConfig{Seed: 7, StorageRead: 1}),
		deepsea.WithFaultRetries(64))
	_, ts := newTestServer(t, sys, Config{MaxInFlight: 2})

	spec := QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 4000}
	// First run materializes; the repeat must quarantine the unreadable
	// views and still answer.
	for i := 0; i < 2; i++ {
		if status, _, _ := postQuery(t, ts.URL, spec); status != http.StatusOK {
			t.Fatalf("query %d: status %d", i, status)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200 (degraded is alive)", resp.StatusCode)
	}
	if hz.Status != "degraded" {
		t.Errorf("healthz status %q, want degraded", hz.Status)
	}
	if len(hz.Quarantined) == 0 {
		t.Error("healthz lists no quarantined files after injected read faults")
	}
}

// TestStatzAndPoolz sanity-checks the other observability endpoints.
func TestStatzAndPoolz(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	_, ts := newTestServer(t, sys, Config{})
	if status, _, _ := postQuery(t, ts.URL,
		QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 3000}); status != http.StatusOK {
		t.Fatalf("query status %d", status)
	}

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var sz statzResponse
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sz.Health.Queries != 1 || sz.Serving.Served != 1 {
		t.Errorf("statz: %d queries / %d served, want 1/1", sz.Health.Queries, sz.Serving.Served)
	}
	if sz.PlanAmortization <= 0 {
		t.Errorf("statz: plan amortization %v, want > 0", sz.PlanAmortization)
	}

	resp, err = http.Get(ts.URL + "/poolz")
	if err != nil {
		t.Fatal(err)
	}
	var pz poolzResponse
	if err := json.NewDecoder(resp.Body).Decode(&pz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pz.Bytes <= 0 || len(pz.Contents) == 0 {
		t.Errorf("poolz empty after a materializing query: %d bytes, %d entries",
			pz.Bytes, len(pz.Contents))
	}
}

// TestQuerySpecValidation covers the API's client-error paths.
func TestQuerySpecValidation(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	for i, spec := range []QuerySpec{
		{Template: "Q99", Lo: 0, Hi: 1},
		{},
		{Scan: "no_such_table", Where: []WhereSpec{{Col: "x", Lo: 0, Hi: 1}}},
		{Scan: "store_sales", GroupBy: []string{"ss_item_sk"}},
	} {
		if status, _, _ := postQuery(t, ts.URL, spec); status != http.StatusBadRequest {
			t.Errorf("bad spec %d: status %d, want 400", i, status)
		}
	}
	if resp, err := http.Get(ts.URL + "/query"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
		}
	}

	// Builder form works end to end.
	status, qr, _ := postQuery(t, ts.URL, QuerySpec{
		Scan:    "store_sales",
		Join:    []JoinSpec{{Table: "item", Left: "ss_item_sk", Right: "i_item_sk"}},
		Select:  []string{"ss_item_sk", "i_category_id", "ss_sales_price"},
		Where:   []WhereSpec{{Col: "ss_item_sk", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 3000}},
		GroupBy: []string{"i_category_id"},
		Aggs:    []AggJSON{{Func: "sum", Col: "ss_sales_price", As: "revenue"}, {Func: "count", As: "n"}},
	})
	if status != http.StatusOK {
		t.Fatalf("builder-form query: status %d", status)
	}
	if len(qr.Rows) == 0 || len(qr.Columns) != 3 {
		t.Errorf("builder-form result: %d rows, columns %v", len(qr.Rows), qr.Columns)
	}
}

// TestRequestTimeout: a spec deadline that cannot be met maps to 504
// and the system stays healthy.
func TestRequestTimeout(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 1})
	var stall atomic.Bool
	stall.Store(true)
	srv.testExecGate = func(ctx context.Context) {
		if stall.Load() {
			<-ctx.Done()
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})
	status, _, _ := postQuery(t, ts.URL, QuerySpec{
		Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 1000,
		TimeoutMS: 30,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	stall.Store(false)
	// The slot was released; the server still serves.
	if status, _, _ := postQuery(t, ts.URL, QuerySpec{
		Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkLo + 1000,
	}); status != http.StatusOK {
		t.Fatalf("follow-up status %d, want 200", status)
	}
}
