package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/workload"
)

// TestHelperCrashServer is not a test: it is the subprocess body of the
// kill -9 chaos test below. It mounts a journal, recovers, loads the
// dataset, writes its listen address into the journal directory and
// serves until killed.
func TestHelperCrashServer(t *testing.T) {
	dir := os.Getenv("DEEPSEA_CRASH_DIR")
	if os.Getenv("DEEPSEA_CRASH_HELPER") != "1" || dir == "" {
		t.Skip("crash-test helper process only")
	}
	store, err := deepsea.OpenJournal(dir)
	if err != nil {
		t.Fatalf("helper: OpenJournal: %v", err)
	}
	sys := deepsea.New(deepsea.WithDatastore(store))
	if err := workload.Load(sys, workload.Generate(1, 1, nil)); err != nil {
		t.Fatalf("helper: load: %v", err)
	}
	srv := New(sys, Config{SnapshotEvery: 150 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper: listen: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "addr"),
		[]byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("helper: write addr: %v", err)
	}
	// Serve until SIGKILL. This never returns cleanly — that is the point.
	_ = http.Serve(ln, srv.Handler())
}

// startCrashHelper launches the helper subprocess over dir and waits for
// it to publish its listen address.
func startCrashHelper(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(dir, "addr")
	_ = os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperCrashServer$")
	cmd.Env = append(os.Environ(),
		"DEEPSEA_CRASH_HELPER=1", "DEEPSEA_CRASH_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, string(raw)
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatalf("helper never published an address; output:\n%s", out.String())
	return nil, ""
}

func crashGet(t *testing.T, addr, path string, v any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func crashPost(t *testing.T, addr string, spec QuerySpec) QueryResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/query", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /query: status %d: %s", resp.StatusCode, e.Error)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

// crashPoolz fetches /poolz with the contents canonicalized (the pool
// walk emits partition attributes in map order).
func crashPoolz(t *testing.T, addr string) string {
	t.Helper()
	var pz struct {
		Bytes     int64    `json:"bytes"`
		Views     int      `json:"views"`
		ViewFiles int      `json:"view_files"`
		Fragments int      `json:"fragments"`
		Contents  []string `json:"contents"`
	}
	crashGet(t, addr, "/poolz", &pz)
	sort.Strings(pz.Contents)
	b, _ := json.Marshal(pz)
	return string(b)
}

// TestCrashRecoveryWarmRestart is the acceptance chaos test: a serving
// process is warmed over a journal, killed with SIGKILL (no drain, no
// final snapshot), and restarted over the same directory. The restarted
// server must resume with byte-identical pool contents, report a clean
// recovery, and answer the previously hot template from views — with
// the same rows — on its very first query.
func TestCrashRecoveryWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()

	cmd1, addr1 := startCrashHelper(t, dir)
	// Warm the pool: three templates, each range repeated so views
	// materialize and then get hit.
	var specs []QuerySpec
	for round := 0; round < 3; round++ {
		for i, tpl := range []string{"Q1", "Q7", "Q16"} {
			lo := workload.ItemSkLo + int64(i)*1500
			specs = append(specs, QuerySpec{Template: tpl, Lo: lo, Hi: lo + 3000})
		}
	}
	var lastPre QueryResponse
	for _, sp := range specs {
		lastPre = crashPost(t, addr1, sp)
	}
	hotSpec := specs[len(specs)-1]
	if !lastPre.Rewritten && !lastPre.CacheHit {
		t.Fatalf("pre-crash workload never warmed up: %+v", lastPre)
	}
	preRows := canonRows(lastPre.Rows)
	prePool := crashPoolz(t, addr1)

	// kill -9: no drain, no flush, no final snapshot.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL helper: %v", err)
	}
	_ = cmd1.Wait()

	cmd2, addr2 := startCrashHelper(t, dir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()

	// Recovery ran cleanly and the journal is live again.
	var statz struct {
		Health deepsea.Health `json:"health"`
	}
	crashGet(t, addr2, "/statz", &statz)
	h := statz.Health
	if !h.Recovered || h.RecoveryError != "" {
		t.Fatalf("restart did not recover: Recovered=%v err=%q", h.Recovered, h.RecoveryError)
	}
	if !h.JournalEnabled {
		t.Error("journal not enabled after restart")
	}

	// The pool survived byte-identically.
	if postPool := crashPoolz(t, addr2); postPool != prePool {
		t.Errorf("pool diverged across crash:\n pre %s\npost %s", prePool, postPool)
	}

	// Warm hit-rate within one replay: the very first query after
	// restart answers the hot template from the recovered pool, with the
	// same rows.
	first := crashPost(t, addr2, hotSpec)
	if !first.Rewritten && !first.CacheHit {
		t.Errorf("first post-restart query ran cold: %+v", first)
	}
	if got := canonRows(first.Rows); got != preRows {
		t.Errorf("post-restart rows diverge:\n pre %s\npost %s", preRows, got)
	}

	var hz struct {
		Status string `json:"status"`
	}
	crashGet(t, addr2, "/healthz", &hz)
	if hz.Status != "ok" {
		t.Errorf("healthz after recovery = %q, want ok", hz.Status)
	}
}
