package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"deepsea"
)

// ErrDraining reports that the server is shutting down and accepts no
// new work.
var ErrDraining = errors.New("server: draining")

// batchRequest is one request waiting for its template group's next
// planning batch. done is buffered so the group runner never blocks on
// a slow (or departed) requester.
type batchRequest struct {
	ctx  context.Context
	q    *deepsea.Query
	done chan batchResult
}

type batchResult struct {
	rep deepsea.Report
	err error
}

// templateGroup accumulates same-template requests. While a batch is in
// flight, new arrivals append to pending and become the next batch —
// "singleflight with a queue": the natural batching window is exactly
// the duration of the batch ahead, with no added latency when idle.
type templateGroup struct {
	pending []*batchRequest
	running bool
}

// batcher coalesces the planning of concurrent same-template requests.
// Requests are grouped by the query's template fingerprint (range
// bounds masked); each group's batch runs through System.RunBatch, so a
// burst of n same-template queries acquires the planning lock once
// instead of n times. Results are byte-identical to serial processing —
// batching changes lock traffic only.
type batcher struct {
	sys *deepsea.System
	max int // max requests per batch; 0 = unbounded
	// linger, when positive, is how long the group runner waits before
	// swapping out the pending list, so a burst arriving within the
	// window shares one batch even on a lightly loaded scheduler — the
	// group-commit tradeoff: up to linger of added latency per batch for
	// strictly fewer planning-lock acquisitions. 0 batches only what the
	// previous batch's duration accumulated.
	linger time.Duration

	mu     sync.Mutex
	groups map[string]*templateGroup
	closed bool
	wg     sync.WaitGroup // live group runners
}

func newBatcher(sys *deepsea.System, max int, linger time.Duration) *batcher {
	return &batcher{sys: sys, max: max, linger: linger, groups: make(map[string]*templateGroup)}
}

// run submits one request under its template key and waits for the
// result. The wait does not select on ctx: RunBatch honours each item's
// context itself and returns promptly on cancellation, and waiting for
// the runner's reply keeps shutdown leak-free.
func (b *batcher) run(ctx context.Context, key string, q *deepsea.Query) (deepsea.Report, error) {
	req := &batchRequest{ctx: ctx, q: q, done: make(chan batchResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return deepsea.Report{}, ErrDraining
	}
	g := b.groups[key]
	if g == nil {
		g = &templateGroup{}
		b.groups[key] = g
	}
	g.pending = append(g.pending, req)
	if !g.running {
		g.running = true
		b.wg.Add(1)
		go b.runGroup(key, g)
	}
	b.mu.Unlock()

	res := <-req.done
	return res.rep, res.err
}

// runGroup drains one template group: repeatedly swap out the pending
// list, run it as one batch, answer the requesters. Exits (and removes
// the group) when a swap finds nothing pending.
func (b *batcher) runGroup(key string, g *templateGroup) {
	defer b.wg.Done()
	for {
		if b.linger > 0 {
			time.Sleep(b.linger)
		}
		b.mu.Lock()
		batch := g.pending
		if len(batch) == 0 {
			g.running = false
			delete(b.groups, key)
			b.mu.Unlock()
			return
		}
		if b.max > 0 && len(batch) > b.max {
			g.pending = batch[b.max:]
			batch = batch[:b.max]
		} else {
			g.pending = nil
		}
		b.mu.Unlock()

		items := make([]deepsea.BatchItem, len(batch))
		for i, r := range batch {
			items[i] = deepsea.BatchItem{Ctx: r.ctx, Query: r.q}
		}
		reps, errs := b.sys.RunBatch(items)
		for i, r := range batch {
			r.done <- batchResult{rep: reps[i], err: errs[i]}
		}
	}
}

// close stops accepting requests and waits for every group runner to
// drain. Pending requests are still answered: runners exit only once
// their group is empty.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.wg.Wait()
}
