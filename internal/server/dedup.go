package server

import (
	"sync"

	"deepsea"
)

// appendDedup makes POST /append idempotent per Spec.Token: the first
// request carrying a token applies its batch and remembers the result;
// a repeated token returns the remembered result without appending the
// rows again. This is what makes retries safe after partial failures —
// a coordinator's 409-refresh retry re-sends slices that some replicas
// already applied, and a client retrying a 502 re-sends a batch some
// replicas hold — without it every such retry silently duplicates
// base-table rows.
//
// Scope: best-effort within one serving process. The window is bounded
// (oldest completed tokens evicted) and in-memory — after a restart the
// journal replay restores the rows but not the tokens, so a retry that
// straddles a server restart is not deduplicated.
type appendDedup struct {
	mu sync.Mutex
	// entries holds in-flight and completed tokens; order is the FIFO of
	// completed tokens, for eviction.
	entries map[string]*dedupEntry
	order   []string
	window  int
}

// dedupEntry is one token's outcome. done closes when the owning
// request finishes; ok is true when its batch applied (an entry that
// finished !ok is removed from the map before done closes, so waiters
// retry as fresh owners — their request carries the same rows).
type dedupEntry struct {
	done chan struct{}
	rep  deepsea.AppendReport
	ok   bool
}

func newAppendDedup(window int) *appendDedup {
	return &appendDedup{entries: make(map[string]*dedupEntry), window: window}
}

// claim registers the token if unseen. owner true means the caller must
// apply the batch and call finish; false means another request owns (or
// owned) the token — wait on entry.done and read rep/ok.
func (dd *appendDedup) claim(token string) (e *dedupEntry, owner bool) {
	dd.mu.Lock()
	defer dd.mu.Unlock()
	if e := dd.entries[token]; e != nil {
		return e, false
	}
	e = &dedupEntry{done: make(chan struct{})}
	dd.entries[token] = e
	return e, true
}

// finish publishes the owning request's outcome. A failed apply
// releases the token (the batch did not land, so a retry must re-apply);
// a successful one is remembered until the window evicts it.
func (dd *appendDedup) finish(token string, e *dedupEntry, rep deepsea.AppendReport, ok bool) {
	dd.mu.Lock()
	if !ok {
		delete(dd.entries, token)
	} else {
		e.rep, e.ok = rep, true
		dd.order = append(dd.order, token)
		for len(dd.order) > dd.window {
			delete(dd.entries, dd.order[0])
			dd.order = dd.order[1:]
		}
	}
	dd.mu.Unlock()
	close(e.done)
}
