package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/ingest"
	"deepsea/internal/leakcheck"
	"deepsea/internal/workload"
)

// appendBatch builds a deterministic batch of new store_sales rows whose
// foreign keys hit the generated dimensions (item keys from the
// dataset's key set, customer/store keys in range), so every appended
// row joins exactly once in every template.
func appendBatch(d *workload.Data, seed int64, n int) [][]any {
	rng := rand.New(rand.NewSource(7000 + seed))
	nCust := len(d.Tables["customer"].Rows)
	nStore := len(d.Tables["store"].Rows)
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{
			d.ItemKeys[rng.Intn(len(d.ItemKeys))],
			int64(rng.Intn(nCust)),
			int64(rng.Intn(nStore)),
			int64(rng.Intn(20) + 1),
			float64(rng.Intn(50000)) / 100,
			int64(rng.Intn(3651)),
			"",
		}
	}
	return rows
}

func postAppend(t testing.TB, url string, sp ingest.Spec) (int, AppendResponse, string) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, AppendResponse{}, e.Error
	}
	var ar AppendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ar, ""
}

// TestAppendEndpoint: the basic ingest round trip. Rows land, the row
// count grows, subsequent queries reflect the appended rows exactly
// (matching a reference system that appended the same rows), and the
// health surfaces report the traffic.
func TestAppendEndpoint(t *testing.T) {
	leakcheck.Check(t)
	data := workload.Generate(1, 1, nil)
	sys := newTestSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	// Warm a view so the append exercises incremental refresh.
	warm := QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkHi}
	for i := 0; i < 2; i++ {
		if code, _, _ := postQuery(t, ts.URL, warm); code != http.StatusOK {
			t.Fatalf("warm query status %d", code)
		}
	}

	before := int64(len(data.Tables["store_sales"].Rows))
	batch := appendBatch(data, 1, 120)
	code, ar, msg := postAppend(t, ts.URL, ingest.Spec{Table: "store_sales", Rows: batch})
	if code != http.StatusOK {
		t.Fatalf("append status %d: %s", code, msg)
	}
	if ar.Table != "store_sales" || ar.NewCount != before+120 {
		t.Fatalf("append response = %+v, want table store_sales count %d", ar, before+120)
	}

	// The post-append answer matches a reference system that held the
	// appended rows from the same call sequence.
	ref := newTestSystem(t)
	if _, err := ref.Append("store_sales", batch); err != nil {
		t.Fatal(err)
	}
	for _, sp := range []QuerySpec{
		warm,
		{Template: "Q7", Lo: 1000, Hi: 300000},
		{Template: "Q16", Lo: workload.ItemSkLo, Hi: workload.ItemSkHi},
	} {
		codeQ, qr, _ := postQuery(t, ts.URL, sp)
		if codeQ != http.StatusOK {
			t.Fatalf("query status %d", codeQ)
		}
		q, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ref.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := canonRows(qr.Rows), canonRows(rep.Rows()); got != want {
			t.Errorf("%s post-append rows diverge from reference:\n got %s\nwant %s", sp.Template, got, want)
		}
	}

	var hz struct {
		IngestAppends    uint64 `json:"ingest_appends"`
		IngestRows       uint64 `json:"ingest_rows"`
		IngestStaleViews int    `json:"ingest_stale_views"`
	}
	crashGet(t, ts.Listener.Addr().String(), "/healthz", &hz)
	if hz.IngestAppends == 0 || hz.IngestRows != 120 {
		t.Errorf("healthz ingest counters = %+v, want 1 append / 120 rows", hz)
	}
	if hz.IngestStaleViews != 0 {
		t.Errorf("healthz reports %d stale views after inline refresh", hz.IngestStaleViews)
	}
	var sz struct {
		Serving ServingStats `json:"serving"`
	}
	crashGet(t, ts.Listener.Addr().String(), "/statz", &sz)
	if sz.Serving.Appends != 1 || sz.Serving.AppendBatches == 0 {
		t.Errorf("statz serving append counters = %+v", sz.Serving)
	}
}

// TestAppendIdempotencyToken: a repeated Spec.Token replays the first
// request's result without landing the rows twice — the property that
// makes coordinator and client retries safe — while a fresh token (or
// no token) appends normally.
func TestAppendIdempotencyToken(t *testing.T) {
	leakcheck.Check(t)
	data := workload.Generate(1, 1, nil)
	sys := newTestSystem(t)
	_, ts := newTestServer(t, sys, Config{})
	before := int64(len(data.Tables["store_sales"].Rows))

	batch := appendBatch(data, 11, 120)
	sp := ingest.Spec{Table: "store_sales", Rows: batch, Token: "tok-1"}
	code, first, msg := postAppend(t, ts.URL, sp)
	if code != http.StatusOK || first.Deduped {
		t.Fatalf("first tokened append: status %d deduped %v: %s", code, first.Deduped, msg)
	}
	if first.NewCount != before+120 {
		t.Fatalf("first append count = %d, want %d", first.NewCount, before+120)
	}

	// Exact retry: same token, same rows. The response replays the first
	// result and nothing lands.
	code, again, msg := postAppend(t, ts.URL, sp)
	if code != http.StatusOK {
		t.Fatalf("retried append: status %d: %s", code, msg)
	}
	if !again.Deduped {
		t.Fatal("retried token not marked deduped")
	}
	if again.NewCount != first.NewCount {
		t.Fatalf("dedup replayed count %d, want first result %d", again.NewCount, first.NewCount)
	}
	if is := sys.IngestStats(); is.AppendedRows != 120 {
		t.Fatalf("rows landed twice under one token: %d appended", is.AppendedRows)
	}

	// A different token with the same rows is a new batch.
	code, second, msg := postAppend(t, ts.URL, ingest.Spec{Table: "store_sales", Rows: batch, Token: "tok-2"})
	if code != http.StatusOK || second.Deduped {
		t.Fatalf("fresh-token append: status %d deduped %v: %s", code, second.Deduped, msg)
	}
	if second.NewCount != before+240 {
		t.Fatalf("fresh-token count = %d, want %d", second.NewCount, before+240)
	}

	// Tokenless appends never dedup against each other.
	for i := 0; i < 2; i++ {
		code, out, msg := postAppend(t, ts.URL, ingest.Spec{Table: "store_sales", Rows: appendBatch(data, 12, 50)})
		if code != http.StatusOK || out.Deduped {
			t.Fatalf("tokenless append %d: status %d deduped %v: %s", i, code, out.Deduped, msg)
		}
	}
	if is := sys.IngestStats(); is.AppendedRows != 340 {
		t.Fatalf("appended rows = %d, want 340", is.AppendedRows)
	}

	var sz struct {
		Serving ServingStats `json:"serving"`
	}
	crashGet(t, ts.Listener.Addr().String(), "/statz", &sz)
	if sz.Serving.AppendDedups != 1 {
		t.Errorf("statz append_dedups = %d, want 1", sz.Serving.AppendDedups)
	}
}

// TestAppendBadRequests: malformed specs 400, wrong method 405 — and
// nothing lands.
func TestAppendBadRequests(t *testing.T) {
	leakcheck.Check(t)
	sys := newTestSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	for _, tc := range []struct {
		name string
		body string
	}{
		{"no table", `{"rows":[[1]]}`},
		{"no rows", `{"table":"store_sales"}`},
		{"ragged rows", `{"table":"store_sales","rows":[[1,2],[1]]}`},
		{"unknown table", `{"table":"nope","rows":[[1]]}`},
		{"wrong width", `{"table":"store_sales","rows":[[1,2]]}`},
		{"wrong type", `{"table":"store_sales","rows":[[true,1,1,1,1.0,1,""]]}`},
	} {
		resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/append")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /append status %d, want 405", resp.StatusCode)
	}
	if is := sys.IngestStats(); is.Appends != 0 {
		t.Errorf("bad requests appended rows: %+v", is)
	}
}

// TestAppendOwnership: a sharded server 409s appends carrying a stale
// epoch or routing keys outside its owned range, names its true
// ownership in the response, and accepts replicated-dimension appends
// (no routing key) regardless of range.
func TestAppendOwnership(t *testing.T) {
	leakcheck.Check(t)
	data := workload.Generate(1, 1, nil)
	sys := newTestSystem(t)
	sys.SetOwnedRange(0, 200000, 3)
	_, ts := newTestServer(t, sys, Config{})

	inRange := [][]any{{int64(150), int64(0), int64(0), int64(1), 9.5, int64(0), ""}}
	outRange := [][]any{{int64(350000), int64(0), int64(0), int64(1), 9.5, int64(0), ""}}

	if code, _, msg := postAppend(t, ts.URL, ingest.Spec{Table: "store_sales", Rows: inRange, Epoch: 3}); code != http.StatusOK {
		t.Fatalf("in-range append status %d: %s", code, msg)
	}
	if code, _, _ := postAppend(t, ts.URL, ingest.Spec{Table: "store_sales", Rows: inRange, Epoch: 2}); code != http.StatusConflict {
		t.Errorf("stale-epoch append status %d, want 409", code)
	}
	body, _ := json.Marshal(ingest.Spec{Table: "store_sales", Rows: outRange, Epoch: 3})
	resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var re rangeErrResponse
	if err := json.NewDecoder(resp.Body).Decode(&re); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("out-of-range append status %d, want 409", resp.StatusCode)
	}
	if re.OwnedLo != 0 || re.OwnedHi != 200000 || re.RangeEpoch != 3 {
		t.Errorf("409 body does not name true ownership: %+v", re)
	}
	// customer has no routing key: any shard accepts it.
	nCust := int64(len(data.Tables["customer"].Rows))
	custRow := [][]any{{nCust, int64(40), 50000.0, ""}}
	if code, _, msg := postAppend(t, ts.URL, ingest.Spec{Table: "customer", Rows: custRow, Epoch: 3}); code != http.StatusOK {
		t.Errorf("dimension append status %d: %s", code, msg)
	}
}

// TestAppendQueryConcurrentSmoke is the ingest smoke: an append burst
// concurrent with a query burst, no errors, group commit coalescing
// some of the batches, and the settled state identical to a reference
// system that appended the same row multiset.
func TestAppendQueryConcurrentSmoke(t *testing.T) {
	leakcheck.Check(t)
	data := workload.Generate(1, 1, nil)
	sys := newTestSystem(t)
	_, ts := newTestServer(t, sys, Config{MaxInFlight: 32})

	const (
		writers = 6
		batches = 5
		perB    = 40
		readers = 10
	)
	var wg sync.WaitGroup
	var appendErrs, queryErrs atomic.Uint64
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := appendBatch(data, int64(100+wi*batches+b), perB)
				code, _, msg := postAppend(t, ts.URL, ingest.Spec{Table: "store_sales", Rows: rows})
				if code != http.StatusOK {
					t.Errorf("writer %d batch %d: status %d: %s", wi, b, code, msg)
					appendErrs.Add(1)
				}
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for _, sp := range testSpecs(8) {
				code, _, _ := postQuery(t, ts.URL, sp)
				if code != http.StatusOK {
					t.Errorf("reader %d: status %d", ri, code)
					queryErrs.Add(1)
				}
			}
		}(ri)
	}
	wg.Wait()
	if appendErrs.Load() > 0 || queryErrs.Load() > 0 {
		t.Fatalf("%d append / %d query errors under concurrent load", appendErrs.Load(), queryErrs.Load())
	}

	is := sys.IngestStats()
	if is.AppendedRows != writers*batches*perB {
		t.Errorf("appended rows = %d, want %d", is.AppendedRows, writers*batches*perB)
	}
	if is.StaleViews != 0 {
		t.Errorf("%d views still stale after the burst settled", is.StaleViews)
	}

	// The settled answer matches a reference holding the same row
	// multiset (order across concurrent batches differs; the exact
	// aggregation pipeline makes results order-independent).
	ref := newTestSystem(t)
	for wi := 0; wi < writers; wi++ {
		for b := 0; b < batches; b++ {
			if _, err := ref.Append("store_sales", appendBatch(data, int64(100+wi*batches+b), perB)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, sp := range testSpecs(6) {
		code, qr, _ := postQuery(t, ts.URL, sp)
		if code != http.StatusOK {
			t.Fatalf("settled query status %d", code)
		}
		q, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ref.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := canonRows(qr.Rows), canonRows(rep.Rows()); got != want {
			t.Errorf("settled %s rows diverge from reference:\n got %s\nwant %s", sp.Template, got, want)
		}
	}
}

// TestCrashRecoveryMidIngest is the ingest chaos acceptance: a serving
// process takes a sequential append stream, is SIGKILLed mid-stream (no
// drain, no final snapshot), and restarts over the same journal. The
// survivor must hold exactly the batches that were acknowledged as a
// prefix, and answer queries byte-identically to a reference system
// holding that same prefix.
func TestCrashRecoveryMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	data := workload.Generate(1, 1, nil)
	base := int64(len(data.Tables["store_sales"].Rows))
	const perB = 50

	cmd1, addr1 := startCrashHelper(t, dir)
	// Warm one template so a view exists to refresh incrementally.
	crashPost(t, addr1, QuerySpec{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkHi})

	// Sequential append stream: one POST at a time, so acknowledged
	// batches form a journal prefix in send order. The stream runs until
	// the SIGKILL severs the connection.
	stop := make(chan struct{})
	streamDone := make(chan int)
	go func() {
		sent := 0
		for {
			select {
			case <-stop:
				streamDone <- sent
				return
			default:
			}
			rows := appendBatch(data, int64(500+sent), perB)
			body, _ := json.Marshal(ingest.Spec{Table: "store_sales", Rows: rows})
			resp, err := http.Post("http://"+addr1+"/append", "application/json", bytes.NewReader(body))
			if err != nil {
				// Connection severed by the kill: batch not acknowledged.
				streamDone <- sent
				return
			}
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if !ok {
				streamDone <- sent
				return
			}
			sent++
		}
	}()

	// Let some batches land, then kill -9 mid-stream.
	for {
		var hz struct {
			IngestAppends uint64 `json:"ingest_appends"`
		}
		crashGet(t, addr1, "/healthz", &hz)
		if hz.IngestAppends >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL helper: %v", err)
	}
	_ = cmd1.Wait()
	close(stop)
	acked := <-streamDone
	if acked < 3 {
		t.Fatalf("only %d batches acknowledged before the kill", acked)
	}

	cmd2, addr2 := startCrashHelper(t, dir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()

	var statz struct {
		Health deepsea.Health `json:"health"`
	}
	crashGet(t, addr2, "/statz", &statz)
	if !statz.Health.Recovered || statz.Health.RecoveryError != "" {
		t.Fatalf("restart did not recover: %+v", statz.Health)
	}

	// Count survivors with a full-domain aggregate: every store_sales row
	// joins exactly one item, so the count sum equals the table's row
	// count. Acknowledged batches must all survive; at most one further
	// unacknowledged batch may have been journaled before the kill.
	total := func(addr string) int64 {
		qr := crashPost(t, addr, QuerySpec{
			Scan: "store_sales",
			Join: []JoinSpec{{Table: "item", Left: "ss_item_sk", Right: "i_item_sk"}},
			Select: []string{
				"ss_item_sk", "i_category_id", "ss_sales_price", "ss_sold_date_sk"},
			Where:   []WhereSpec{{Col: "ss_item_sk", Lo: workload.ItemSkLo, Hi: workload.ItemSkHi}},
			GroupBy: []string{"i_category_id"},
			Aggs:    []AggJSON{{Func: "count", As: "n"}},
		})
		var n int64
		for _, row := range qr.Rows {
			v, ok := row[len(row)-1].(float64)
			if !ok {
				t.Fatalf("count column = %#v", row[len(row)-1])
			}
			n += int64(v)
		}
		return n
	}
	got := total(addr2)
	k := (got - base) / perB
	if (got-base)%perB != 0 {
		t.Fatalf("recovered count %d is not base %d plus whole batches of %d", got, base, perB)
	}
	if k < int64(acked) || k > int64(acked)+1 {
		t.Fatalf("recovered %d batches, acknowledged %d: acknowledged appends lost or extras invented", k, acked)
	}

	// Byte-identical serving: a reference system holding exactly those k
	// batches answers every template the same way.
	ref := newTestSystem(t)
	for b := int64(0); b < k; b++ {
		if _, err := ref.Append("store_sales", appendBatch(data, 500+b, perB)); err != nil {
			t.Fatal(err)
		}
	}
	for i, sp := range []QuerySpec{
		{Template: "Q1", Lo: workload.ItemSkLo, Hi: workload.ItemSkHi},
		{Template: "Q7", Lo: 5000, Hi: 250000},
		{Template: "Q16", Lo: 0, Hi: 399999},
	} {
		qr := crashPost(t, addr2, sp)
		q, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ref.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotR, want := canonRows(qr.Rows), canonRows(rep.Rows()); gotR != want {
			t.Errorf("post-crash query %d diverges from reference prefix:\n got %s\nwant %s", i, gotR, want)
		}
	}
}
