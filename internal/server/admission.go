package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrShed reports that admission control refused a request: every
// execution slot is busy and the wait queue is full, or the request
// waited out its queue timeout. HTTP handlers translate it to 429 with
// a Retry-After hint.
var ErrShed = errors.New("server: overloaded, request shed")

// AdmissionStats counts limiter traffic. Admitted is requests granted a
// slot (immediately or after queueing); ShedQueueFull and ShedTimeout
// are the two load-shedding reasons; Canceled is requests whose context
// ended while they queued.
type AdmissionStats struct {
	Admitted      uint64 `json:"admitted"`
	Queued        uint64 `json:"queued"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	ShedTimeout   uint64 `json:"shed_timeout"`
	Canceled      uint64 `json:"canceled"`
}

// waiter is one queued request. admitted and abandoned are guarded by
// the limiter's mutex; ready is closed (once, under the mutex) when the
// waiter is granted a slot.
type waiter struct {
	ready     chan struct{}
	admitted  bool
	abandoned bool
}

// limiter is the admission controller: a bounded count of in-flight
// executions plus a bounded FIFO wait queue. Channel semaphores grant
// slots in whatever order the scheduler wakes receivers; an explicit
// waiter list keeps admission strictly first-come-first-served, so a
// burst cannot starve an early arrival.
type limiter struct {
	maxInFlight int
	maxQueue    int
	timeout     time.Duration // 0 = wait as long as the context allows

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	stats    AdmissionStats
}

func newLimiter(maxInFlight, maxQueue int, timeout time.Duration) *limiter {
	return &limiter{maxInFlight: maxInFlight, maxQueue: maxQueue, timeout: timeout}
}

// acquire blocks until the request holds an execution slot, or sheds.
// It returns nil (the caller must release), ErrShed (queue full or
// queue timeout), or ctx.Err(). FIFO: slots freed by release go to the
// oldest live waiter.
func (l *limiter) acquire(ctx context.Context) error {
	l.mu.Lock()
	if l.inflight < l.maxInFlight {
		l.inflight++
		l.stats.Admitted++
		l.mu.Unlock()
		return nil
	}
	if len(l.queue) >= l.maxQueue {
		l.stats.ShedQueueFull++
		l.mu.Unlock()
		return ErrShed
	}
	w := &waiter{ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.stats.Queued++
	l.mu.Unlock()

	var timeoutC <-chan time.Time
	if l.timeout > 0 {
		t := time.NewTimer(l.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-w.ready:
		return nil
	case <-timeoutC:
	case <-ctx.Done():
	}

	// Timed out or canceled — unless release admitted us first, in which
	// case we own a slot and must keep it (the release already handed it
	// over and will not offer it again).
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.admitted {
		return nil
	}
	w.abandoned = true
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	if err := ctx.Err(); err != nil {
		l.stats.Canceled++
		return err
	}
	l.stats.ShedTimeout++
	return ErrShed
}

// release returns a slot: it goes to the oldest live waiter, or back to
// the free pool when no one queues.
func (l *limiter) release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.abandoned {
			continue
		}
		w.admitted = true
		close(w.ready)
		l.stats.Admitted++
		return
	}
	l.inflight--
}

// snapshot returns the stats plus the instantaneous occupancy.
func (l *limiter) snapshot() (AdmissionStats, int, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats, l.inflight, len(l.queue)
}
