package server

import (
	"fmt"
	"strings"

	"deepsea"
	"deepsea/internal/workload"
)

// QuerySpec is the JSON body of POST /query. Two forms:
//
// Template form — one of the benchmark's BigBench-derived templates
// with a selection range:
//
//	{"template": "Q1", "lo": 0, "hi": 499}
//
// Builder form — the fluent query surface: a base scan, optional
// equi-joins, an optional projection, range and equality predicates,
// and an optional aggregation. Stages apply in that order (projection
// after the joins, selections above it — the shape the view manager
// expects):
//
//	{"scan": "store_sales",
//	 "join": [{"table": "item", "left": "ss_item_sk", "right": "i_item_sk"}],
//	 "select": ["ss_item_sk", "i_category_id", "ss_sales_price"],
//	 "where": [{"col": "ss_item_sk", "lo": 0, "hi": 499}],
//	 "group_by": ["i_category_id"],
//	 "aggs": [{"func": "sum", "col": "ss_sales_price", "as": "revenue"}]}
//
// TimeoutMS bounds the request's processing (admission wait included);
// 0 uses the server's default.
type QuerySpec struct {
	Template string `json:"template,omitempty"`
	Lo       int64  `json:"lo,omitempty"`
	Hi       int64  `json:"hi,omitempty"`

	Scan    string      `json:"scan,omitempty"`
	Join    []JoinSpec  `json:"join,omitempty"`
	Select  []string    `json:"select,omitempty"`
	Where   []WhereSpec `json:"where,omitempty"`
	WhereEq []EqSpec    `json:"where_eq,omitempty"`
	GroupBy []string    `json:"group_by,omitempty"`
	Aggs    []AggJSON   `json:"aggs,omitempty"`

	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Partial switches the query's top-level aggregation to partial
	// (mergeable-state) mode — set by a scatter-gather coordinator, which
	// merges the per-shard states itself. Requires an aggregation.
	Partial bool `json:"partial,omitempty"`
	// Epoch, when nonzero, is the coordinator's routing-epoch fencing
	// token: a shard whose ownership epoch differs rejects the request
	// with 409, so a coordinator holding a stale routing table fails fast
	// instead of silently reading rows the shard no longer answers for.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ItemRange returns the partition-key (item_sk) range the spec
// addresses, for shard routing and ownership checks: the template
// form's [Lo, Hi], or the builder form's first range predicate on an
// item_sk column. ok is false when the spec carries no such range (a
// full-domain query).
func (sp *QuerySpec) ItemRange() (lo, hi int64, ok bool) {
	if sp.Template != "" {
		return sp.Lo, sp.Hi, true
	}
	for _, w := range sp.Where {
		if strings.HasSuffix(w.Col, "item_sk") {
			return w.Lo, w.Hi, true
		}
	}
	return 0, 0, false
}

// JoinSpec equi-joins the running query with Table on Left = Right.
type JoinSpec struct {
	Table string `json:"table"`
	Left  string `json:"left"`
	Right string `json:"right"`
}

// WhereSpec restricts an ordered column to [Lo, Hi].
type WhereSpec struct {
	Col string `json:"col"`
	Lo  int64  `json:"lo"`
	Hi  int64  `json:"hi"`
}

// EqSpec adds a string equality predicate.
type EqSpec struct {
	Col   string `json:"col"`
	Value string `json:"value"`
}

// AggJSON names one aggregate output: func is count, sum, avg, min or
// max; col is the input column (unused for count); as names the output.
type AggJSON struct {
	Func string `json:"func"`
	Col  string `json:"col,omitempty"`
	As   string `json:"as"`
}

// Build turns the spec into a fluent query. Errors name the offending
// field, so they surface as actionable 400s.
func (sp *QuerySpec) Build() (*deepsea.Query, error) {
	if sp.Template != "" {
		if sp.Scan != "" {
			return nil, fmt.Errorf("spec: template and scan are mutually exclusive")
		}
		for _, t := range workload.AllTemplates {
			if strings.EqualFold(t.String(), sp.Template) {
				return workload.BuildQuery(t, sp.Lo, sp.Hi), nil
			}
		}
		return nil, fmt.Errorf("spec: unknown template %q", sp.Template)
	}
	if sp.Scan == "" {
		return nil, fmt.Errorf("spec: need template or scan")
	}
	q := deepsea.Scan(sp.Scan)
	for _, j := range sp.Join {
		if j.Table == "" || j.Left == "" || j.Right == "" {
			return nil, fmt.Errorf("spec: join needs table, left and right")
		}
		q = q.Join(deepsea.Scan(j.Table), j.Left, j.Right)
	}
	if len(sp.Select) > 0 {
		q = q.Select(sp.Select...)
	}
	for _, w := range sp.Where {
		if w.Col == "" {
			return nil, fmt.Errorf("spec: where needs col")
		}
		q = q.Where(w.Col, w.Lo, w.Hi)
	}
	for _, e := range sp.WhereEq {
		if e.Col == "" {
			return nil, fmt.Errorf("spec: where_eq needs col")
		}
		q = q.WhereEq(e.Col, e.Value)
	}
	if len(sp.GroupBy) > 0 || len(sp.Aggs) > 0 {
		if len(sp.Aggs) == 0 {
			return nil, fmt.Errorf("spec: group_by needs aggs")
		}
		specs := make([]deepsea.AggSpec, len(sp.Aggs))
		for i, a := range sp.Aggs {
			if a.As == "" {
				return nil, fmt.Errorf("spec: agg %d needs as", i)
			}
			switch strings.ToLower(a.Func) {
			case "count":
				specs[i] = deepsea.Count(a.As)
			case "sum":
				specs[i] = deepsea.Sum(a.Col, a.As)
			case "avg":
				specs[i] = deepsea.Avg(a.Col, a.As)
			case "min":
				specs[i] = deepsea.Min(a.Col, a.As)
			case "max":
				specs[i] = deepsea.Max(a.Col, a.As)
			default:
				return nil, fmt.Errorf("spec: unknown agg func %q", a.Func)
			}
		}
		q = q.GroupBy(sp.GroupBy...).Agg(specs...)
	}
	return q, nil
}

// build finishes Build by applying the partial-mode flag (shared by the
// template and builder forms).
func (sp *QuerySpec) build() (*deepsea.Query, error) {
	q, err := sp.Build()
	if err != nil {
		return nil, err
	}
	if sp.Partial {
		q = q.Partial()
	}
	return q, nil
}
