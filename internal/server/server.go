// Package server is DeepSea's query-serving frontend: an HTTP/JSON API
// over the public deepsea.System with admission control (a bounded
// in-flight limit, a FIFO wait queue, and load shedding), template-
// batched planning (concurrent same-template requests coalesce into one
// planning-lock acquisition), an operational health surface, and a
// graceful drain-on-shutdown lifecycle.
//
// Endpoints:
//
//	POST /query   — run one query (body: QuerySpec JSON)
//	POST /append  — ingest a batch of base-table rows (body: ingest.Spec JSON)
//	GET  /healthz — liveness + degradation summary
//	GET  /statz   — full operational snapshot (health, admission, serving)
//	GET  /poolz   — materialized-pool contents
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"deepsea"
	"deepsea/internal/ingest"
)

// Config tunes the serving layer. The zero value is usable: defaults
// are filled in by New.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds the admission wait queue; a request arriving with
	// the queue full is shed immediately (default 4 × MaxInFlight).
	MaxQueue int
	// QueueTimeout sheds a request that has waited this long for a slot
	// (default 1s; negative disables the timeout).
	QueueTimeout time.Duration
	// DefaultTimeout bounds a request's total processing when its spec
	// sets no timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// BatchMax caps how many requests one planning batch may coalesce
	// (default 0 = unbounded).
	BatchMax int
	// BatchLinger, when positive, is how long a template group's runner
	// waits before sealing a planning batch, so near-simultaneous
	// requests coalesce even when the scheduler would otherwise run them
	// back to back. Costs up to BatchLinger of latency per batch
	// (default 0 = batch only what accumulates during the prior batch).
	BatchLinger time.Duration
	// RetryAfter is the floor of the Retry-After hint on shed responses
	// in seconds (default 1). The actual hint is derived per response
	// from the admission queue's depth and the recent completion rate —
	// roughly how long until a new arrival would reach the front — and
	// clamped to [RetryAfter, 60]; when the rate is unknown (no recent
	// completions) the floor is used as-is.
	RetryAfter int
	// SnapshotEvery, when positive, checkpoints the system to its
	// mounted datastore on this period (and once more on drain), keeping
	// the journal tail — and therefore recovery time — short. Pointless
	// without deepsea.WithDatastore (default 0 = off).
	SnapshotEvery time.Duration
	// AppendMaxRows seals an append group-commit batch at this many rows
	// (default 4096); AppendLinger is how long the first contributor of a
	// batch waits for stragglers before the batch lands (default 2ms).
	// Concurrent POST /append calls for the same table coalesce into one
	// journal write and one view-refresh round.
	AppendMaxRows int
	AppendLinger  time.Duration
	// AppendDedupWindow is how many recently applied append tokens the
	// server remembers for idempotent retries (ingest.Spec.Token); a
	// repeated token within the window returns the original result
	// instead of appending the rows again. Default 4096; negative
	// disables dedup.
	AppendDedupWindow int
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = time.Second
	} else if c.QueueTimeout < 0 {
		c.QueueTimeout = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.AppendDedupWindow == 0 {
		c.AppendDedupWindow = 4096
	}
}

// ServingStats counts frontend traffic (admission counters live in
// AdmissionStats).
type ServingStats struct {
	Served     uint64 `json:"served"`
	Failed     uint64 `json:"failed"`
	Shed       uint64 `json:"shed"`
	TimedOut   uint64 `json:"timed_out"`
	BadRequest uint64 `json:"bad_request"`
	// Appends counts successful POST /append requests; AppendBatches the
	// coalesced group commits that landed them (Appends/AppendBatches is
	// the group-commit amortization under concurrent ingest).
	Appends       uint64 `json:"appends"`
	AppendBatches uint64 `json:"append_batches"`
	// AppendDedups counts append requests answered from the idempotency
	// window (a repeated token: the rows were already applied by an
	// earlier request, so nothing landed twice).
	AppendDedups uint64 `json:"append_dedups"`
}

// Server serves queries over one deepsea.System. Create with New,
// expose Handler over any http.Server, stop with Shutdown.
type Server struct {
	cfg  Config
	sys  *deepsea.System
	lim   *limiter
	bat   *batcher
	coal  *ingest.Coalescer[deepsea.AppendReport]
	dedup *appendDedup // nil when AppendDedupWindow < 0
	mux   *http.ServeMux

	// baseCtx parents every request's query context; cancel kills
	// stragglers when a drain deadline passes.
	baseCtx context.Context
	cancel  context.CancelFunc

	draining atomic.Bool
	reqWG    sync.WaitGroup

	// fencing marks a range handoff in progress: new queries are refused
	// with 503 until the new ownership is applied. activeQueries counts
	// requests past the fence check, so the handoff can drain them;
	// handoffMu serializes /admin/range calls.
	fencing       atomic.Bool
	activeQueries atomic.Int64
	handoffMu     sync.Mutex

	// role is the replica role the last range handoff assigned
	// ("primary" or "follower"; empty when standalone). Informational:
	// any replica answers queries for its range — the role only tells
	// operators which replica the coordinator prefers.
	role atomic.Value // string

	// snapStop/snapDone bound the periodic-snapshot goroutine (nil
	// without SnapshotEvery).
	snapStop chan struct{}
	snapDone chan struct{}
	snapErrs atomic.Uint64

	served       atomic.Uint64
	failed       atomic.Uint64
	shed         atomic.Uint64
	timedOut     atomic.Uint64
	badRequest   atomic.Uint64
	appends      atomic.Uint64
	appendDedups atomic.Uint64

	// completions feeds the drain-rate estimate behind Retry-After.
	completions completionRing

	// testExecGate, when set (tests only, before serving), runs after
	// admission and before execution — it lets tests hold all slots busy
	// deterministically.
	testExecGate func(ctx context.Context)
}

// New builds a Server over sys.
func New(sys *deepsea.System, cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		sys:     sys,
		lim:     newLimiter(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueTimeout),
		bat:     newBatcher(sys, cfg.BatchMax, cfg.BatchLinger),
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.coal = ingest.NewCoalescer(cfg.AppendMaxRows, cfg.AppendLinger,
		func(table string, rows [][]any) (deepsea.AppendReport, error) {
			return sys.Append(table, rows)
		})
	if cfg.AppendDedupWindow > 0 {
		s.dedup = newAppendDedup(cfg.AppendDedupWindow)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/append", s.handleAppend)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/poolz", s.handlePoolz)
	mux.HandleFunc("/admin/range", s.handleAdminRange)
	s.mux = mux
	if cfg.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotEvery)
	}
	return s
}

// snapshotLoop checkpoints the system on a timer until Shutdown. A
// failed snapshot is counted and retried next tick — the journal keeps
// the durability floor in the meantime.
func (s *Server) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.sys.Snapshot(); err != nil {
				s.snapErrs.Add(1)
			}
		case <-s.snapStop:
			return
		}
	}
}

// Handler returns the HTTP handler (mount it on any http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// SetExecGate installs a hook that runs after admission and before
// execution. Tests and benches use it to hold admission slots busy
// deterministically. Must be set before the server starts serving.
func (s *Server) SetExecGate(f func(ctx context.Context)) { s.testExecGate = f }

// Shutdown drains the server: new queries are refused with 503,
// in-flight ones finish, then the batcher's group runners exit. If ctx
// expires first, straggling queries are cancelled (they unwind promptly
// through RunContext) and the drain still completes before Shutdown
// returns ctx.Err() — either way no goroutine is left behind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		s.bat.close()
		s.coal.Close()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel()
		<-done
		err = ctx.Err()
	}
	// The system is quiet now: stop the snapshot ticker, drain the
	// background maintenance queue (so enqueued materializations and
	// merges commit and get journaled), then take one final checkpoint
	// so a restart replays no journal tail at all.
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
	if derr := s.sys.DrainMaintenance(ctx); derr != nil && err == nil {
		err = derr
	}
	s.sys.CloseMaintenance()
	if serr := s.sys.Snapshot(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// QueryResponse is the JSON body of a successful POST /query.
type QueryResponse struct {
	Columns          []string `json:"columns,omitempty"`
	Rows             [][]any  `json:"rows,omitempty"`
	CacheHit         bool     `json:"cache_hit,omitempty"`
	Rewritten        bool     `json:"rewritten,omitempty"`
	UsedView         string   `json:"used_view,omitempty"`
	FragmentsRead    int      `json:"fragments_read,omitempty"`
	Retries          int      `json:"retries,omitempty"`
	SimulatedSeconds float64  `json:"simulated_seconds"`
}

type errResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// completionRing tracks request completions in one-second buckets so
// shed responses can estimate the server's drain rate without keeping
// per-request timestamps. The window is len(buckets) seconds; buckets
// older than the window are lazily zeroed as the clock wraps onto them.
type completionRing struct {
	mu      sync.Mutex
	buckets [8]uint64
	stamps  [8]int64 // unix second each bucket currently counts for
}

func (r *completionRing) note(now time.Time) {
	sec := now.Unix()
	i := int(sec % int64(len(r.buckets)))
	r.mu.Lock()
	if r.stamps[i] != sec {
		r.stamps[i] = sec
		r.buckets[i] = 0
	}
	r.buckets[i]++
	r.mu.Unlock()
}

// rate returns completions per second averaged over the full window.
// Idle seconds count as zeros (silence is signal); 0 means no
// completion landed inside the window at all.
func (r *completionRing) rate(now time.Time) float64 {
	sec := now.Unix()
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for i := range r.buckets {
		if age := sec - r.stamps[i]; age >= 0 && age < int64(len(r.buckets)) {
			n += r.buckets[i]
		}
	}
	return float64(n) / float64(len(r.buckets))
}

// retryAfter derives the Retry-After hint for a shed response: with
// depth requests already queued and the recent drain rate, a new
// arrival reaches the front in about (depth+1)/rate seconds. Clamped
// to [cfg.RetryAfter, 60]; an unknown rate falls back to the floor.
func (s *Server) retryAfter() int {
	_, _, depth := s.lim.snapshot()
	rate := s.completions.rate(time.Now())
	if rate <= 0 {
		return s.cfg.RetryAfter
	}
	secs := int(math.Ceil(float64(depth+1) / rate))
	if secs < s.cfg.RetryAfter {
		secs = s.cfg.RetryAfter
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) writeShed(w http.ResponseWriter) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	writeJSON(w, http.StatusTooManyRequests, errResponse{Error: ErrShed.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: ErrDraining.Error()})
		return
	}
	s.reqWG.Add(1)
	defer s.reqWG.Done()
	// Re-check under the WaitGroup: a drain that started before the Add
	// observes either the flag refusing us or the Add it must wait for.
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: ErrDraining.Error()})
		return
	}

	// Count the request before checking the fence (mirroring the drain
	// handshake above): a handoff that set the fence flag either refuses
	// us here or sees our count and waits for it.
	s.activeQueries.Add(1)
	defer s.activeQueries.Add(-1)
	if s.fencing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "range handoff in progress"})
		return
	}

	var spec QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	if resp, ok := s.checkOwnership(&spec); !ok {
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	q, err := spec.build()
	if err != nil {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	key, err := s.sys.TemplateKey(q)
	if err != nil {
		// The query names an unknown table or column: a client error.
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}

	// The request's deadline covers everything from here on — the
	// admission wait included, so a queued request whose budget is gone
	// sheds instead of executing. The server's base context parents it:
	// a drain past its deadline cancels stragglers centrally.
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancelReq := context.WithTimeout(r.Context(), timeout)
	defer cancelReq()
	stop := context.AfterFunc(s.baseCtx, cancelReq)
	defer stop()

	if err := s.lim.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrShed):
			s.writeShed(w)
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errResponse{Error: "deadline exceeded in queue"})
		default: // client went away
			s.failed.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		}
		return
	}
	// Every slot hand-back counts toward the drain rate, success or not:
	// Retry-After estimates slot turnover, not success throughput.
	defer func() {
		s.lim.release()
		s.completions.note(time.Now())
	}()

	if s.testExecGate != nil {
		s.testExecGate(ctx)
	}

	rep, err := s.bat.run(ctx, key, q)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errResponse{Error: "deadline exceeded"})
		case errors.Is(err, context.Canceled):
			s.failed.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		default:
			s.failed.Add(1)
			writeJSON(w, http.StatusInternalServerError, errResponse{Error: err.Error()})
		}
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, QueryResponse{
		Columns:          rep.Columns(),
		Rows:             rep.Rows(),
		CacheHit:         rep.CacheHit,
		Rewritten:        rep.Rewritten,
		UsedView:         rep.UsedView,
		FragmentsRead:    rep.FragmentsRead,
		Retries:          rep.Retries,
		SimulatedSeconds: rep.SimulatedSeconds(),
	})
}

// AppendResponse is the JSON body of a successful POST /append: the
// shared report of the group-commit batch the request's rows landed in.
type AppendResponse struct {
	Table      string   `json:"table"`
	NewCount   int64    `json:"new_count"`
	StaleViews []string `json:"stale_views,omitempty"`
	Refreshed  []string `json:"refreshed,omitempty"`
	Dropped    []string `json:"dropped,omitempty"`
	// Deferred marks refresh work handed to the background maintenance
	// pool (views may be briefly stale but are never served stale).
	Deferred bool `json:"deferred,omitempty"`
	// Deduped marks a repeated idempotency token: the batch was already
	// applied by an earlier request and the response replays that
	// request's result — no rows landed twice.
	Deduped bool `json:"deduped,omitempty"`
}

// checkAppendOwnership is checkOwnership for the ingest path: a sharded
// server rejects stale-epoch appends and batches whose routing keys fall
// outside the owned range, both as 409s carrying the true ownership.
// Tables without a routing key (replicated dimensions) pass the range
// check on any shard.
func (s *Server) checkAppendOwnership(sp *ingest.Spec) (rangeErrResponse, bool) {
	or, owned := s.sys.OwnedRange()
	if !owned {
		return rangeErrResponse{}, true
	}
	mk := func(format string, args ...any) rangeErrResponse {
		return rangeErrResponse{
			Error:      fmt.Sprintf(format, args...),
			OwnedLo:    or.Lo,
			OwnedHi:    or.Hi,
			RangeEpoch: or.Epoch,
		}
	}
	if sp.Epoch != 0 && sp.Epoch != or.Epoch {
		return mk("stale routing epoch %d: shard owns [%d,%d] at epoch %d",
			sp.Epoch, or.Lo, or.Hi, or.Epoch), false
	}
	if ki := s.sys.RoutingKeyIndex(sp.Table); ki >= 0 {
		if lo, hi, ok := sp.ItemRange(ki); ok && (lo < or.Lo || hi > or.Hi) {
			return mk("append keys [%d,%d] not owned: shard owns [%d,%d] at epoch %d",
				lo, hi, or.Lo, or.Hi, or.Epoch), false
		}
	}
	return rangeErrResponse{}, true
}

// handleAppend is POST /append: the online ingest path. It runs behind
// the same drain/fence/admission protections as /query, pre-validates
// the batch against the table schema (so one caller's bad rows 400
// instead of failing a shared group commit), and lands the rows through
// the coalescer — journaled, dependent views refreshed incrementally.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: ErrDraining.Error()})
		return
	}
	s.reqWG.Add(1)
	defer s.reqWG.Done()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: ErrDraining.Error()})
		return
	}

	// Appends count toward the handoff fence like queries: a range
	// handoff drains in-flight ingest before the epoch advances.
	s.activeQueries.Add(1)
	defer s.activeQueries.Add(-1)
	if s.fencing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "range handoff in progress"})
		return
	}

	sp, err := ingest.DecodeSpec(r.Body)
	if err != nil {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	if resp, ok := s.checkAppendOwnership(sp); !ok {
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	if err := s.sys.ValidateRows(sp.Table, sp.Rows); err != nil {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}

	ctx, cancelReq := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancelReq()
	stop := context.AfterFunc(s.baseCtx, cancelReq)
	defer stop()

	// Ingest shares the admission limiter with queries: under overload
	// both shed, so an append burst cannot starve reads of slots (nor
	// the reverse).
	if err := s.lim.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrShed):
			s.writeShed(w)
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errResponse{Error: "deadline exceeded in queue"})
		default:
			s.failed.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		}
		return
	}
	defer func() {
		s.lim.release()
		s.completions.note(time.Now())
	}()

	rep, deduped, err := s.landAppend(sp)
	if err != nil {
		// Rows were pre-validated, so a flush failure is a server-side
		// journal or refresh error, not this request's fault.
		s.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: err.Error()})
		return
	}
	s.appends.Add(1)
	if deduped {
		s.appendDedups.Add(1)
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Table:      rep.Table,
		NewCount:   rep.NewCount,
		StaleViews: rep.StaleViews,
		Refreshed:  rep.Refreshed,
		Dropped:    rep.Dropped,
		Deferred:   rep.Deferred,
		Deduped:    deduped,
	})
}

// landAppend applies one batch through the coalescer, deduplicating by
// the spec's idempotency token: a token already applied within the
// window returns the remembered result (deduped true) instead of
// appending the rows again. A token whose owning attempt failed is
// released — the waiter carries the same rows, so it retries as a fresh
// owner.
func (s *Server) landAppend(sp *ingest.Spec) (deepsea.AppendReport, bool, error) {
	if sp.Token == "" || s.dedup == nil {
		rep, err := s.coal.Add(sp.Table, sp.Rows)
		return rep, false, err
	}
	for {
		e, owner := s.dedup.claim(sp.Token)
		if owner {
			rep, err := s.coal.Add(sp.Table, sp.Rows)
			s.dedup.finish(sp.Token, e, rep, err == nil)
			return rep, false, err
		}
		<-e.done
		if e.ok {
			return e.rep, true, nil
		}
	}
}

// healthzResponse is GET /healthz: a liveness summary. Status is "ok",
// "degraded" (quarantined files, blacklisted views, journal append
// errors, a saturated maintenance queue, a stuck ingest retry backlog,
// or a recovery that fell back to a cold start) or "draining".
type healthzResponse struct {
	Status      string   `json:"status"`
	InFlight    int64    `json:"in_flight"`
	Queries     uint64   `json:"queries"`
	PoolBytes   int64    `json:"pool_bytes"`
	PoolLimit   int64    `json:"pool_limit"`
	Quarantined []string `json:"quarantined,omitempty"`
	Backoff     []string `json:"backoff,omitempty"`
	Blacklisted []string `json:"blacklisted,omitempty"`
	// Journal durability summary (all zero without a datastore):
	// JournalAppendErrors > 0 or a non-empty RecoveryError degrades the
	// status — the server still answers queries, but state written since
	// the last good append would not survive a crash.
	JournalEnabled      bool   `json:"journal_enabled,omitempty"`
	JournalAppendErrors uint64 `json:"journal_append_errors,omitempty"`
	JournalLastSeq      uint64 `json:"journal_last_seq,omitempty"`
	RecoveryError       string `json:"recovery_error,omitempty"`
	// Background maintenance summary (absent in inline mode). A
	// saturated queue degrades the status: candidates are being dropped,
	// so the pool adapts slower than the workload demands.
	MaintEnabled    bool `json:"maint_enabled,omitempty"`
	MaintQueueDepth int  `json:"maint_queue_depth,omitempty"`
	MaintSaturated  bool `json:"maint_saturated,omitempty"`
	// Range ownership, present when the server runs as one shard of a
	// scatter-gather cluster: the owned partition-key range and its
	// handoff epoch (a coordinator polls these to rebuild its routing
	// table after restart or failover).
	RangeOwned bool   `json:"range_owned,omitempty"`
	OwnedLo    int64  `json:"owned_lo,omitempty"`
	OwnedHi    int64  `json:"owned_hi,omitempty"`
	RangeEpoch uint64 `json:"range_epoch,omitempty"`
	// RangeRole is the replica role the last handoff assigned ("primary"
	// or "follower"; absent when standalone).
	RangeRole string `json:"range_role,omitempty"`
	// Ingest summary: appended batches and rows landed, incremental view
	// refreshes applied, and views currently stale awaiting a background
	// refresh (transient; stale views are never served).
	// IngestRetryBacklog > 0 degrades the status: those views are stuck
	// still-stale with no refresh scheduled — in inline mode only a
	// later append retries them, so an operator should notice.
	IngestAppends      uint64         `json:"ingest_appends,omitempty"`
	IngestRows         uint64         `json:"ingest_rows,omitempty"`
	IngestRefreshes    uint64         `json:"ingest_refreshes,omitempty"`
	IngestStaleViews   int            `json:"ingest_stale_views,omitempty"`
	IngestRetryBacklog int            `json:"ingest_retry_backlog,omitempty"`
	Admission          AdmissionStats `json:"admission"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.sys.Health()
	adm, _, _ := s.lim.snapshot()
	resp := healthzResponse{
		Status:              "ok",
		InFlight:            h.InFlight,
		Queries:             h.Queries,
		PoolBytes:           h.PoolBytes,
		PoolLimit:           h.PoolLimit,
		Quarantined:         h.Quarantined,
		Backoff:             h.Backoff,
		Blacklisted:         h.Blacklisted,
		JournalEnabled:      h.JournalEnabled,
		JournalAppendErrors: h.JournalAppendErrors,
		JournalLastSeq:      h.JournalLastSeq,
		RecoveryError:       h.RecoveryError,
		MaintEnabled:        h.MaintEnabled,
		MaintQueueDepth:     h.MaintQueueDepth,
		MaintSaturated:      h.MaintSaturated,
		RangeOwned:          h.RangeOwned,
		OwnedLo:             h.OwnedLo,
		OwnedHi:             h.OwnedHi,
		RangeEpoch:          h.RangeEpoch,
		RangeRole:           s.Role(),
		IngestAppends:       h.IngestAppends,
		IngestRows:          h.IngestAppendedRows,
		IngestRefreshes:     h.IngestRefreshes,
		IngestStaleViews:    h.IngestStaleViews,
		IngestRetryBacklog:  h.IngestRetryBacklog,
		Admission:           adm,
	}
	status := http.StatusOK
	if len(h.Quarantined) > 0 || len(h.Blacklisted) > 0 ||
		h.JournalAppendErrors > 0 || h.RecoveryError != "" || h.MaintSaturated ||
		h.IngestRetryBacklog > 0 {
		resp.Status = "degraded"
	}
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// statzResponse is GET /statz: the full operational snapshot.
type statzResponse struct {
	Health    deepsea.Health `json:"health"`
	Admission AdmissionStats `json:"admission"`
	Serving   ServingStats   `json:"serving"`
	// InFlightSlots/QueueDepth are the limiter's instantaneous occupancy.
	InFlightSlots int `json:"in_flight_slots"`
	QueueDepth    int `json:"queue_depth"`
	// PlanAmortization is Queries / PlanAcquisitions — above 1 when
	// template batching coalesces planning.
	PlanAmortization float64 `json:"plan_amortization"`
	// SnapshotTickErrors counts failed periodic checkpoints taken by the
	// SnapshotEvery ticker (store-level counters live in Health).
	SnapshotTickErrors uint64 `json:"snapshot_tick_errors,omitempty"`
	// CompletionRate is the recent slot-turnover rate (requests per
	// second over the drain-rate window); RetryAfterHint is the
	// Retry-After a shed response would carry right now.
	CompletionRate float64 `json:"completion_rate"`
	RetryAfterHint int     `json:"retry_after_hint"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	h := s.sys.Health()
	adm, inflight, depth := s.lim.snapshot()
	_, appendBatches := s.coal.Stats()
	resp := statzResponse{
		Health:    h,
		Admission: adm,
		Serving: ServingStats{
			Served:        s.served.Load(),
			Failed:        s.failed.Load(),
			Shed:          s.shed.Load(),
			TimedOut:      s.timedOut.Load(),
			BadRequest:    s.badRequest.Load(),
			Appends:       s.appends.Load(),
			AppendBatches: appendBatches,
			AppendDedups:  s.appendDedups.Load(),
		},
		InFlightSlots:      inflight,
		QueueDepth:         depth,
		SnapshotTickErrors: s.snapErrs.Load(),
		CompletionRate:     s.completions.rate(time.Now()),
		RetryAfterHint:     s.retryAfter(),
	}
	if h.PlanAcquisitions > 0 {
		resp.PlanAmortization = float64(h.Queries) / float64(h.PlanAcquisitions)
	}
	writeJSON(w, http.StatusOK, resp)
}

// poolzResponse is GET /poolz: the materialized pool's contents.
type poolzResponse struct {
	Bytes     int64    `json:"bytes"`
	Limit     int64    `json:"limit"`
	Views     int      `json:"views"`
	ViewFiles int      `json:"view_files"`
	Fragments int      `json:"fragments"`
	Contents  []string `json:"contents,omitempty"`
}

func (s *Server) handlePoolz(w http.ResponseWriter, r *http.Request) {
	h := s.sys.Health()
	writeJSON(w, http.StatusOK, poolzResponse{
		Bytes:     h.PoolBytes,
		Limit:     h.PoolLimit,
		Views:     h.PoolViews,
		ViewFiles: h.PoolViewFiles,
		Fragments: h.PoolFragments,
		Contents:  s.sys.PoolContents(),
	})
}

// Replica roles a range handoff can assign. Base tables are static and
// fully replicated, so the roles do not gate reads — the primary is
// simply the coordinator's first-choice replica for the range.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// Role returns the replica role the last handoff assigned ("" when the
// server is standalone or no handoff carried a role).
func (s *Server) Role() string {
	if v, ok := s.role.Load().(string); ok {
		return v
	}
	return ""
}

// rangeErrResponse is the 409 body for ownership and epoch violations.
// It names the shard's actual ownership so the coordinator can repair
// its routing table from the response alone.
type rangeErrResponse struct {
	Error      string `json:"error"`
	OwnedLo    int64  `json:"owned_lo"`
	OwnedHi    int64  `json:"owned_hi"`
	RangeEpoch uint64 `json:"range_epoch"`
}

// checkOwnership enforces the shard's published range against the
// request. Standalone servers (no owned range) accept everything; a
// sharded server rejects stale-epoch requests and requests whose
// item_sk range falls outside the owned range — both 409s carrying the
// true ownership, since they mean the caller's routing table is wrong,
// not that the query is malformed.
func (s *Server) checkOwnership(spec *QuerySpec) (rangeErrResponse, bool) {
	or, owned := s.sys.OwnedRange()
	if !owned {
		return rangeErrResponse{}, true
	}
	mk := func(format string, args ...any) rangeErrResponse {
		return rangeErrResponse{
			Error:      fmt.Sprintf(format, args...),
			OwnedLo:    or.Lo,
			OwnedHi:    or.Hi,
			RangeEpoch: or.Epoch,
		}
	}
	if spec.Epoch != 0 && spec.Epoch != or.Epoch {
		return mk("stale routing epoch %d: shard owns [%d,%d] at epoch %d",
			spec.Epoch, or.Lo, or.Hi, or.Epoch), false
	}
	if lo, hi, ok := spec.ItemRange(); ok && (lo < or.Lo || hi > or.Hi) {
		return mk("range [%d,%d] not owned: shard owns [%d,%d] at epoch %d",
			lo, hi, or.Lo, or.Hi, or.Epoch), false
	}
	return rangeErrResponse{}, true
}

// rangeRequest is the JSON body of POST /admin/range: the new ownership
// to apply. The handler runs the full fenced-handoff sequence — refuse
// new queries, drain in-flight ones, checkpoint to the datastore (best
// effort), apply the new range and epoch, re-admit — and only then
// returns, so when the coordinator sees 200 the shard is serving the
// new range. DrainTimeoutMS bounds the drain wait (default 10s).
type rangeRequest struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Epoch uint64 `json:"epoch"`
	// Role is the replica role this handoff assigns ("primary" or
	// "follower"; empty keeps the current role). Informational — see
	// RolePrimary.
	Role           string `json:"role,omitempty"`
	DrainTimeoutMS int64  `json:"drain_timeout_ms,omitempty"`
}

// rangeResponse reports the applied ownership. SnapshotError is the
// best-effort checkpoint's failure, informational only: the handoff
// still completed (durability falls back to the journal tail).
type rangeResponse struct {
	Lo            int64  `json:"lo"`
	Hi            int64  `json:"hi"`
	Epoch         uint64 `json:"epoch"`
	Role          string `json:"role,omitempty"`
	Drained       int64  `json:"drained"`
	SnapshotError string `json:"snapshot_error,omitempty"`
}

func (s *Server) handleAdminRange(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		or, owned := s.sys.OwnedRange()
		if !owned {
			writeJSON(w, http.StatusOK, rangeResponse{Lo: 0, Hi: -1})
			return
		}
		writeJSON(w, http.StatusOK, rangeResponse{Lo: or.Lo, Hi: or.Hi, Epoch: or.Epoch, Role: s.Role()})
		return
	case http.MethodPost:
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "GET or POST only"})
		return
	}
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	if req.Lo > req.Hi {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "empty range"})
		return
	}
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	// Epochs must advance: an older epoch is a handoff the cluster has
	// already moved past (e.g. a delayed retry), and applying it would
	// fork ownership.
	if or, owned := s.sys.OwnedRange(); owned && req.Epoch <= or.Epoch {
		writeJSON(w, http.StatusConflict, rangeErrResponse{
			Error: fmt.Sprintf("stale handoff epoch %d: shard already at epoch %d",
				req.Epoch, or.Epoch),
			OwnedLo: or.Lo, OwnedHi: or.Hi, RangeEpoch: or.Epoch,
		})
		return
	}

	// Fence, then drain: requests count themselves before checking the
	// fence, so once the count reaches zero no uncounted query is
	// executing.
	s.fencing.Store(true)
	defer s.fencing.Store(false)
	drainTimeout := 10 * time.Second
	if req.DrainTimeoutMS > 0 {
		drainTimeout = time.Duration(req.DrainTimeoutMS) * time.Millisecond
	}
	deadline := time.Now().Add(drainTimeout)
	inFlight := s.activeQueries.Load()
	drained := inFlight
	for inFlight > 0 {
		if time.Now().After(deadline) {
			writeJSON(w, http.StatusServiceUnavailable, errResponse{
				Error: fmt.Sprintf("drain timed out with %d queries in flight", inFlight)})
			return
		}
		time.Sleep(time.Millisecond)
		inFlight = s.activeQueries.Load()
	}

	resp := rangeResponse{Lo: req.Lo, Hi: req.Hi, Epoch: req.Epoch, Drained: drained}
	if err := s.sys.Snapshot(); err != nil {
		resp.SnapshotError = err.Error()
	}
	s.sys.SetOwnedRange(req.Lo, req.Hi, req.Epoch)
	if req.Role != "" {
		s.role.Store(req.Role)
	}
	resp.Role = s.Role()
	writeJSON(w, http.StatusOK, resp)
}
