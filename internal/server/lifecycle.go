package server

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT/SIGTERM (or the
// given signals). After the first signal cancels the context the
// handler unregisters itself, so a second signal takes the default
// path and kills a process stuck in its drain. The returned cancel
// releases the signal handler early. Shared by deepsea-serve and
// deepsea-sim so both binaries shut down through the same path.
func SignalContext(parent context.Context, sigs ...os.Signal) (context.Context, context.CancelFunc) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		select {
		case <-ch:
			signal.Stop(ch)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
		}
	}()
	return ctx, cancel
}
