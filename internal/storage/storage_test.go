package storage

import (
	"fmt"
	"sync"
	"testing"

	"deepsea/internal/faults"
)

func TestBlocks(t *testing.T) {
	fs := NewFS(100)
	tests := []struct {
		size int64
		want int64
	}{
		{0, 1}, {1, 1}, {99, 1}, {100, 1}, {101, 2}, {250, 3},
	}
	for _, tt := range tests {
		if got := fs.Blocks(tt.size); got != tt.want {
			t.Errorf("Blocks(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestDefaultBlockSize(t *testing.T) {
	fs := NewFS(0)
	if fs.BlockSize() != DefaultBlockSize {
		t.Errorf("BlockSize = %d, want %d", fs.BlockSize(), DefaultBlockSize)
	}
}

func TestWriteReadDelete(t *testing.T) {
	fs := NewFS(100)
	fs.Write("v1/f0", 500)
	if !fs.Exists("v1/f0") || fs.Size("v1/f0") != 500 {
		t.Fatal("file not recorded")
	}
	n, err := fs.Read("v1/f0")
	if err != nil || n != 500 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if fs.BytesRead() != 500 || fs.BytesWritten() != 500 {
		t.Errorf("I/O accounting: read=%d written=%d", fs.BytesRead(), fs.BytesWritten())
	}
	fs.Delete("v1/f0")
	if fs.Exists("v1/f0") {
		t.Error("file survived delete")
	}
	if _, err := fs.Read("v1/f0"); err == nil {
		t.Error("read of deleted file did not error")
	}
}

func TestReadPartial(t *testing.T) {
	fs := NewFS(100)
	fs.Write("f", 1000)
	if err := fs.ReadPartial("f", 300); err != nil {
		t.Fatal(err)
	}
	if fs.BytesRead() != 300 {
		t.Errorf("BytesRead = %d, want 300", fs.BytesRead())
	}
	if err := fs.ReadPartial("missing", 10); err == nil {
		t.Error("partial read of missing file did not error")
	}
}

func TestTotalSizeAndList(t *testing.T) {
	fs := NewFS(100)
	fs.Write("b", 10)
	fs.Write("a", 20)
	fs.Write("b", 30) // replace
	if fs.TotalSize() != 50 {
		t.Errorf("TotalSize = %d, want 50", fs.TotalSize())
	}
	if fs.NumFiles() != 2 {
		t.Errorf("NumFiles = %d, want 2", fs.NumFiles())
	}
	l := fs.List()
	if len(l) != 2 || l[0].Path != "a" || l[1].Path != "b" {
		t.Errorf("List = %v", l)
	}
}

func TestWriteRejectsNegativeSize(t *testing.T) {
	fs := NewFS(0)
	if err := fs.Write("x", -1); err == nil {
		t.Fatal("negative write did not error")
	}
	if fs.Exists("x") || fs.BytesWritten() != 0 {
		t.Error("rejected write left state behind")
	}
}

// TestWriteFaultLeavesNoFile: an injected write fault must not create
// or replace the file, and must not account bytes.
func TestWriteFaultLeavesNoFile(t *testing.T) {
	fs := NewFS(100)
	fs.SetFaults(faults.New(faults.Config{Seed: 1, StorageWrite: 1}))
	err := fs.Write("v1/f0", 500)
	if _, ok := faults.AsFault(err); !ok {
		t.Fatalf("Write under p=1 injector = %v, want fault", err)
	}
	if fs.Exists("v1/f0") || fs.BytesWritten() != 0 {
		t.Error("failed write mutated the FS")
	}
}

// TestReadFaultAccountsNothing: an injected read fault surfaces as an
// error and accounts no bytes; existence checks still work.
func TestReadFaultAccountsNothing(t *testing.T) {
	fs := NewFS(100)
	if err := fs.Write("f", 1000); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(faults.New(faults.Config{Seed: 1, StorageRead: 1}))
	if _, err := fs.Read("f"); err == nil {
		t.Fatal("Read under p=1 injector succeeded")
	}
	if err := fs.ReadPartial("f", 10); err == nil {
		t.Fatal("ReadPartial under p=1 injector succeeded")
	}
	if fs.BytesRead() != 0 {
		t.Errorf("failed reads accounted %d bytes", fs.BytesRead())
	}
	if !fs.Exists("f") {
		t.Error("Exists affected by read faults")
	}
}

// TestParallelReadAccounting is the regression test for the read path
// taking the exclusive lock just to bump the byte counters: many
// goroutines read concurrently (only possible under RLock) while
// writers churn other paths, and the atomic counters still account
// every byte exactly.
func TestParallelReadAccounting(t *testing.T) {
	fs := NewFS(100)
	const (
		readers      = 8
		readsPerG    = 2000
		fileSize     = 1 << 20
		partialPerG  = 1000
		partialBytes = 1 << 10
	)
	for i := 0; i < readers; i++ {
		if err := fs.Write(fmt.Sprintf("f%d", i), fileSize); err != nil {
			t.Fatal(err)
		}
	}
	wrotePre := fs.BytesWritten()

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := fmt.Sprintf("f%d", g)
			for i := 0; i < readsPerG; i++ {
				if _, err := fs.Read(path); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
			for i := 0; i < partialPerG; i++ {
				if err := fs.ReadPartial(path, partialBytes); err != nil {
					t.Errorf("ReadPartial: %v", err)
					return
				}
			}
		}(g)
	}
	// Concurrent writers on disjoint paths: Write takes the exclusive
	// lock; under the old scheme it would serialize with every read.
	var wwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wwg.Add(1)
		go func(g int) {
			defer wwg.Done()
			for i := 0; i < 500; i++ {
				if err := fs.Write(fmt.Sprintf("w%d-%d", g, i), 10); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wwg.Wait()

	wantRead := int64(readers) * (int64(readsPerG)*fileSize + int64(partialPerG)*partialBytes)
	if got := fs.BytesRead(); got != wantRead {
		t.Errorf("BytesRead = %d, want %d", got, wantRead)
	}
	wantWritten := wrotePre + 4*500*10
	if got := fs.BytesWritten(); got != wantWritten {
		t.Errorf("BytesWritten = %d, want %d", got, wantWritten)
	}
}

// TestRestoreAccountsNothing: recovery re-creates files without
// charging I/O or consulting the fault injector.
func TestRestoreAccountsNothing(t *testing.T) {
	fs := NewFS(100)
	fs.SetFaults(faults.New(faults.Config{Seed: 1, StorageWrite: 1}))
	fs.Restore("f", 5000)
	if !fs.Exists("f") || fs.Size("f") != 5000 {
		t.Fatal("Restore did not create the file")
	}
	if fs.BytesWritten() != 0 {
		t.Errorf("Restore accounted %d written bytes", fs.BytesWritten())
	}
	fs.Restore("neg", -1)
	if fs.Size("neg") != 0 {
		t.Errorf("negative Restore size = %d, want clamp to 0", fs.Size("neg"))
	}
}
