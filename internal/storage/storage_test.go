package storage

import (
	"testing"

	"deepsea/internal/faults"
)

func TestBlocks(t *testing.T) {
	fs := NewFS(100)
	tests := []struct {
		size int64
		want int64
	}{
		{0, 1}, {1, 1}, {99, 1}, {100, 1}, {101, 2}, {250, 3},
	}
	for _, tt := range tests {
		if got := fs.Blocks(tt.size); got != tt.want {
			t.Errorf("Blocks(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestDefaultBlockSize(t *testing.T) {
	fs := NewFS(0)
	if fs.BlockSize() != DefaultBlockSize {
		t.Errorf("BlockSize = %d, want %d", fs.BlockSize(), DefaultBlockSize)
	}
}

func TestWriteReadDelete(t *testing.T) {
	fs := NewFS(100)
	fs.Write("v1/f0", 500)
	if !fs.Exists("v1/f0") || fs.Size("v1/f0") != 500 {
		t.Fatal("file not recorded")
	}
	n, err := fs.Read("v1/f0")
	if err != nil || n != 500 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if fs.BytesRead() != 500 || fs.BytesWritten() != 500 {
		t.Errorf("I/O accounting: read=%d written=%d", fs.BytesRead(), fs.BytesWritten())
	}
	fs.Delete("v1/f0")
	if fs.Exists("v1/f0") {
		t.Error("file survived delete")
	}
	if _, err := fs.Read("v1/f0"); err == nil {
		t.Error("read of deleted file did not error")
	}
}

func TestReadPartial(t *testing.T) {
	fs := NewFS(100)
	fs.Write("f", 1000)
	if err := fs.ReadPartial("f", 300); err != nil {
		t.Fatal(err)
	}
	if fs.BytesRead() != 300 {
		t.Errorf("BytesRead = %d, want 300", fs.BytesRead())
	}
	if err := fs.ReadPartial("missing", 10); err == nil {
		t.Error("partial read of missing file did not error")
	}
}

func TestTotalSizeAndList(t *testing.T) {
	fs := NewFS(100)
	fs.Write("b", 10)
	fs.Write("a", 20)
	fs.Write("b", 30) // replace
	if fs.TotalSize() != 50 {
		t.Errorf("TotalSize = %d, want 50", fs.TotalSize())
	}
	if fs.NumFiles() != 2 {
		t.Errorf("NumFiles = %d, want 2", fs.NumFiles())
	}
	l := fs.List()
	if len(l) != 2 || l[0].Path != "a" || l[1].Path != "b" {
		t.Errorf("List = %v", l)
	}
}

func TestWriteRejectsNegativeSize(t *testing.T) {
	fs := NewFS(0)
	if err := fs.Write("x", -1); err == nil {
		t.Fatal("negative write did not error")
	}
	if fs.Exists("x") || fs.BytesWritten() != 0 {
		t.Error("rejected write left state behind")
	}
}

// TestWriteFaultLeavesNoFile: an injected write fault must not create
// or replace the file, and must not account bytes.
func TestWriteFaultLeavesNoFile(t *testing.T) {
	fs := NewFS(100)
	fs.SetFaults(faults.New(faults.Config{Seed: 1, StorageWrite: 1}))
	err := fs.Write("v1/f0", 500)
	if _, ok := faults.AsFault(err); !ok {
		t.Fatalf("Write under p=1 injector = %v, want fault", err)
	}
	if fs.Exists("v1/f0") || fs.BytesWritten() != 0 {
		t.Error("failed write mutated the FS")
	}
}

// TestReadFaultAccountsNothing: an injected read fault surfaces as an
// error and accounts no bytes; existence checks still work.
func TestReadFaultAccountsNothing(t *testing.T) {
	fs := NewFS(100)
	if err := fs.Write("f", 1000); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(faults.New(faults.Config{Seed: 1, StorageRead: 1}))
	if _, err := fs.Read("f"); err == nil {
		t.Fatal("Read under p=1 injector succeeded")
	}
	if err := fs.ReadPartial("f", 10); err == nil {
		t.Fatal("ReadPartial under p=1 injector succeeded")
	}
	if fs.BytesRead() != 0 {
		t.Errorf("failed reads accounted %d bytes", fs.BytesRead())
	}
	if !fs.Exists("f") {
		t.Error("Exists affected by read faults")
	}
}
