// Package storage simulates the distributed file system (HDFS) that
// DeepSea's materialized views and fragments live on. It tracks file
// sizes and block counts; actual row payloads are kept by the engine.
//
// The simulation preserves the two HDFS properties the paper's cost
// behaviour depends on: reads are parallelised per block (so the number
// of map tasks for a scan is ceil(size/blockSize)), and every file costs
// at least one task to open, which is why very fine-grained partitions
// (E-60 in Figure 6b) lose to coarser ones.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"deepsea/internal/faults"
)

// DefaultBlockSize is the modelled HDFS block size (128 MB), the lower
// bound for fragment sizes in Section 9 ("Bounding Fragment Size").
const DefaultBlockSize = 128 * 1024 * 1024

// File records the existence and size of one stored file.
type File struct {
	Path string
	Size int64
}

// FS is a simulated file system. All methods are safe for concurrent
// use, so overlapping query executions can read while a view manager
// writes or deletes.
type FS struct {
	blockSize int64

	// faults, when non-nil, is consulted by Read/ReadPartial
	// (StorageRead) and Write (StorageWrite). Set before concurrent use.
	faults *faults.Injector

	mu    sync.RWMutex
	files map[string]File
	// bytesWritten and bytesRead accumulate lifetime I/O for reporting.
	// They are atomics so the read path — every concurrent fragment scan
	// — only takes the shared lock and never serializes on accounting.
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// NewFS returns an empty simulated file system. A blockSize of 0 selects
// DefaultBlockSize.
func NewFS(blockSize int64) *FS {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &FS{blockSize: blockSize, files: make(map[string]File)}
}

// BlockSize returns the modelled block size in bytes.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// Blocks returns the number of blocks a file of the given size occupies
// (at least one: even an empty file costs a task to open).
func (fs *FS) Blocks(size int64) int64 {
	if size <= 0 {
		return 1
	}
	return (size + fs.blockSize - 1) / fs.blockSize
}

// SetFaults attaches a fault injector to the storage layer; nil (the
// default) runs fault-free. Set before concurrent use.
func (fs *FS) SetFaults(in *faults.Injector) { fs.faults = in }

// Write creates or replaces a file of the given size and accounts the
// written bytes. A negative size is a caller bug reported as an error;
// an attached fault injector may also fail the write, in which case no
// file is created or replaced.
func (fs *FS) Write(path string, size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative size %d for %s", size, path)
	}
	if err := fs.faults.Check(faults.StorageWrite, path); err != nil {
		return fmt.Errorf("storage: write %s: %w", path, err)
	}
	fs.mu.Lock()
	fs.files[path] = File{Path: path, Size: size}
	fs.mu.Unlock()
	fs.bytesWritten.Add(size)
	return nil
}

// Restore recreates a file during recovery without accounting I/O or
// consulting the fault injector: the bytes were written (and charged) in
// a previous life of the process.
func (fs *FS) Restore(path string, size int64) {
	if size < 0 {
		size = 0
	}
	fs.mu.Lock()
	fs.files[path] = File{Path: path, Size: size}
	fs.mu.Unlock()
}

// Read accounts a full read of the named file and returns its size. It
// returns an error if the file does not exist: reading a missing file
// means the pool and the FS disagree, which is a bug worth surfacing.
// An attached fault injector may also fail the read; no bytes are
// accounted then.
func (fs *FS) Read(path string) (int64, error) {
	fs.mu.RLock()
	f, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("storage: read of missing file %s", path)
	}
	if err := fs.faults.Check(faults.StorageRead, path); err != nil {
		return 0, fmt.Errorf("storage: read %s: %w", path, err)
	}
	fs.bytesRead.Add(f.Size)
	return f.Size, nil
}

// ReadPartial accounts a read of n bytes from the named file (fragment
// clipping reads only part of a file's key range).
func (fs *FS) ReadPartial(path string, n int64) error {
	fs.mu.RLock()
	_, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: read of missing file %s", path)
	}
	if err := fs.faults.Check(faults.StorageRead, path); err != nil {
		return fmt.Errorf("storage: read %s: %w", path, err)
	}
	fs.bytesRead.Add(n)
	return nil
}

// Delete removes a file. Deleting a missing file is a no-op: eviction may
// race with replacement of a fragment by its splits.
func (fs *FS) Delete(path string) {
	fs.mu.Lock()
	delete(fs.files, path)
	fs.mu.Unlock()
}

// Exists reports whether a file is present.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the size of a file, or 0 if absent.
func (fs *FS) Size(path string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.files[path].Size
}

// TotalSize returns the sum of all file sizes — the S(C) of the current
// configuration.
func (fs *FS) TotalSize() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, f := range fs.files {
		total += f.Size
	}
	return total
}

// NumFiles returns the number of stored files.
func (fs *FS) NumFiles() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.files)
}

// List returns all files sorted by path, for deterministic inspection.
func (fs *FS) List() []File {
	fs.mu.RLock()
	out := make([]File, 0, len(fs.files))
	for _, f := range fs.files {
		out = append(out, f)
	}
	fs.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// BytesWritten returns lifetime bytes written.
func (fs *FS) BytesWritten() int64 { return fs.bytesWritten.Load() }

// BytesRead returns lifetime bytes read.
func (fs *FS) BytesRead() int64 { return fs.bytesRead.Load() }
