// Package query defines the logical query plans that DeepSea analyses,
// rewrites and executes: scans, range/residual selections, projections,
// equi-joins and group-by aggregations, plus the view-scan leaf that
// rewritings substitute for matched subqueries.
//
// Plans are built by the workload generator from query templates; they
// deliberately keep range selections *above* join subtrees (the paper's
// materialization strategy requires that selections are not pushed down,
// Section 10.2).
package query

import (
	"fmt"
	"strings"

	"deepsea/internal/interval"
	"deepsea/internal/relation"
)

// Node is one operator of a logical plan tree.
type Node interface {
	// Schema returns the operator's output schema.
	Schema() relation.Schema
	// Children returns the operator's inputs (empty for leaves).
	Children() []Node
	// String returns a canonical, deterministic rendering of the subtree
	// rooted at this node. Two structurally identical subtrees render
	// identically, so the string doubles as a syntactic identity key.
	String() string
}

// Scan reads a base table.
type Scan struct {
	Table  string
	schema relation.Schema
}

// NewScan returns a scan of the named base table with the given schema.
func NewScan(table string, schema relation.Schema) *Scan {
	return &Scan{Table: table, schema: schema}
}

// Schema implements Node.
func (s *Scan) Schema() relation.Schema { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// String implements Node.
func (s *Scan) String() string { return fmt.Sprintf("scan(%s)", s.Table) }

// RangePred restricts an ordered integer column to a closed interval.
type RangePred struct {
	Col string
	Iv  interval.Interval
}

// String renders the predicate in the paper's l <= A <= u form.
func (p RangePred) String() string {
	return fmt.Sprintf("%d<=%s<=%d", p.Iv.Lo, p.Col, p.Iv.Hi)
}

// CmpOp is a comparison operator for residual predicates.
type CmpOp int

// Residual comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL operator symbol.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// CmpPred is a residual comparison of a column against a constant.
type CmpPred struct {
	Col string
	Op  CmpOp
	Val relation.Value
	// Typ selects which Value field participates in the comparison.
	Typ relation.Type
}

// String renders the predicate canonically.
func (p CmpPred) String() string {
	switch p.Typ {
	case relation.Int:
		return fmt.Sprintf("%s%s%d", p.Col, p.Op, p.Val.I)
	case relation.Float:
		return fmt.Sprintf("%s%s%g", p.Col, p.Op, p.Val.F)
	default:
		return fmt.Sprintf("%s%s'%s'", p.Col, p.Op, p.Val.S)
	}
}

// Eval evaluates the predicate against a value of the column.
func (p CmpPred) Eval(v relation.Value) bool {
	var c int
	switch p.Typ {
	case relation.Int:
		switch {
		case v.I < p.Val.I:
			c = -1
		case v.I > p.Val.I:
			c = 1
		}
	case relation.Float:
		switch {
		case v.F < p.Val.F:
			c = -1
		case v.F > p.Val.F:
			c = 1
		}
	default:
		c = strings.Compare(v.S, p.Val.S)
	}
	switch p.Op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	default:
		return false
	}
}

// Select filters its child by a conjunction of range and residual
// predicates.
type Select struct {
	Child     Node
	Ranges    []RangePred
	Residuals []CmpPred
}

// Schema implements Node.
func (s *Select) Schema() relation.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// String implements Node.
func (s *Select) String() string {
	parts := make([]string, 0, len(s.Ranges)+len(s.Residuals))
	for _, r := range s.Ranges {
		parts = append(parts, r.String())
	}
	for _, r := range s.Residuals {
		parts = append(parts, r.String())
	}
	return fmt.Sprintf("select[%s](%s)", strings.Join(parts, " && "), s.Child)
}

// Project narrows its child to the named columns.
type Project struct {
	Child Node
	Cols  []string
}

// Schema implements Node.
func (p *Project) Schema() relation.Schema {
	cs := p.Child.Schema()
	return cs.Project(p.Cols)
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// String implements Node.
func (p *Project) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.Cols, ","), p.Child)
}

// Join is an equi-join of two inputs on LCol = RCol. Column names are
// globally unique across base schemas (TPC-DS style prefixes), so the
// output schema is the plain concatenation of the input schemas.
type Join struct {
	Left, Right Node
	LCol, RCol  string
}

// Schema implements Node.
func (j *Join) Schema() relation.Schema {
	ls, rs := j.Left.Schema(), j.Right.Schema()
	out := relation.Schema{Cols: make([]relation.Column, 0, len(ls.Cols)+len(rs.Cols))}
	out.Cols = append(out.Cols, ls.Cols...)
	out.Cols = append(out.Cols, rs.Cols...)
	return out
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// String implements Node.
func (j *Join) String() string {
	return fmt.Sprintf("join[%s=%s](%s, %s)", j.LCol, j.RCol, j.Left, j.Right)
}

// AggFunc enumerates the supported aggregation functions.
type AggFunc int

// Aggregation functions.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// String returns the lower-case SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one aggregate output: Func applied to Col (Col is ignored
// for Count), emitted under the column name As.
type AggSpec struct {
	Func AggFunc
	Col  string
	As   string
}

// String renders the spec canonically.
func (a AggSpec) String() string {
	if a.Func == Count {
		return fmt.Sprintf("count(*) as %s", a.As)
	}
	return fmt.Sprintf("%s(%s) as %s", a.Func, a.Col, a.As)
}

// Aggregate groups its child by GroupBy and computes Aggs per group.
//
// Partial switches the node to partial-aggregation mode: instead of
// final values it emits mergeable per-group accumulator states — counts
// as ints, sums as exact lossless encodings (strings), min/max as typed
// values — under the column-naming scheme of PartialCols. A
// scatter-gather coordinator merges partial rows from range-disjoint
// executions and renders the final values; because the sum encodings
// are exact, the merged result is byte-identical for any partition of
// the input rows. Partial is part of the node's canonical identity
// (String), so partial and full plans never share a fingerprint, a
// result-cache entry, or a planning batch.
type Aggregate struct {
	Child   Node
	GroupBy []string
	Aggs    []AggSpec
	Partial bool
}

// Partial-aggregation column-name suffixes: a partial column is named
// <As> + "#" + kind. The '#' separator never occurs in dataset column
// names, so partial columns are recognizable by suffix alone.
const (
	PartialCount  = "count"   // row count (Int)
	PartialSum    = "sum"     // exact sum encoding (String)
	PartialAvgSum = "avg.sum" // exact sum encoding for an average (String)
	PartialAvgN   = "avg.n"   // row count for an average (Int)
	PartialMin    = "min"     // running minimum (input type)
	PartialMax    = "max"     // running maximum (input type)
)

// PartialCols returns the partial-state columns one aggregate spec
// expands to, given the aggregated column's input type.
func PartialCols(sp AggSpec, inType relation.Type) []relation.Column {
	name := func(kind string) string { return sp.As + "#" + kind }
	switch sp.Func {
	case Count:
		return []relation.Column{{Name: name(PartialCount), Type: relation.Int}}
	case Sum:
		return []relation.Column{{Name: name(PartialSum), Type: relation.String}}
	case Avg:
		return []relation.Column{
			{Name: name(PartialAvgSum), Type: relation.String},
			{Name: name(PartialAvgN), Type: relation.Int},
		}
	case Min:
		return []relation.Column{{Name: name(PartialMin), Type: inType}}
	default: // Max
		return []relation.Column{{Name: name(PartialMax), Type: inType}}
	}
}

// SplitPartialCol splits a partial column name into its output name and
// state kind; ok is false for plain (group-by) columns.
func SplitPartialCol(col string) (base, kind string, ok bool) {
	i := strings.LastIndex(col, "#")
	if i < 0 {
		return col, "", false
	}
	return col[:i], col[i+1:], true
}

// Schema implements Node.
func (a *Aggregate) Schema() relation.Schema {
	cs := a.Child.Schema()
	out := relation.Schema{Cols: make([]relation.Column, 0, len(a.GroupBy)+len(a.Aggs))}
	for _, g := range a.GroupBy {
		out.Cols = append(out.Cols, cs.Col(g))
	}
	for _, sp := range a.Aggs {
		if a.Partial {
			var inType relation.Type
			if sp.Func != Count {
				inType = cs.Col(sp.Col).Type
			}
			out.Cols = append(out.Cols, PartialCols(sp, inType)...)
			continue
		}
		out.Cols = append(out.Cols, relation.Column{Name: sp.As, Type: aggType(sp, &cs)})
	}
	return out
}

func aggType(sp AggSpec, cs *relation.Schema) relation.Type {
	switch sp.Func {
	case Count:
		return relation.Int
	case Avg, Sum:
		return relation.Float
	default: // Min, Max preserve the input type
		return cs.Col(sp.Col).Type
	}
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// aggTag is the operator name in the canonical rendering: partial
// aggregation is a distinct operator, so fingerprints, cache keys and
// template keys never conflate the two result shapes.
func (a *Aggregate) aggTag() string {
	if a.Partial {
		return "partial-agg"
	}
	return "agg"
}

// String implements Node.
func (a *Aggregate) String() string {
	aggs := make([]string, len(a.Aggs))
	for i, sp := range a.Aggs {
		aggs[i] = sp.String()
	}
	return fmt.Sprintf("%s[%s][%s](%s)",
		a.aggTag(), strings.Join(a.GroupBy, ","), strings.Join(aggs, ","), a.Child)
}

// ViewScan is the leaf that a rewriting substitutes for a matched
// subquery. It reads a materialized view — either whole or as a set of
// chosen fragments with clip ranges — applies compensation predicates and
// projection, and unions in remainder plans for uncovered gaps.
type ViewScan struct {
	// ViewID identifies the matched view in the pool/statistics.
	ViewID string
	// ViewPath is the storage path of the unpartitioned view file; it is
	// consulted only when FragIDs is empty.
	ViewPath string
	// ViewSchema is the schema of the materialized view.
	ViewSchema relation.Schema
	// PartAttr is the attribute of the partition being read; empty when
	// the whole (unpartitioned) view is read.
	PartAttr string
	// FragIDs names the fragments read, parallel to Reads. Empty with a
	// non-empty ViewID means the unpartitioned view file is read.
	FragIDs []string
	// Reads gives the clip range applied to each fragment so overlapping
	// fragments contribute each value range exactly once.
	Reads []interval.Interval
	// FragIvs records each read fragment's full stored interval, parallel
	// to FragIDs; the estimator derives clip selectivities from it.
	FragIvs []interval.Interval
	// FragSizes optionally overrides the stored fragment sizes for cost
	// estimation (parallel to FragIDs). The matcher sets it when
	// estimating rewritings over views that are not materialized yet
	// ("virtual" rewritings used only for benefit bookkeeping); such
	// plans are never executed.
	FragSizes []int64
	// ViewBytes likewise overrides the unpartitioned view file's size
	// for estimation of virtual rewritings.
	ViewBytes int64
	// Comp is the compensation applied on top of the view data.
	CompRanges    []RangePred
	CompResiduals []CmpPred
	CompProject   []string // nil keeps all view columns
	// Remainders are plans computing uncovered gaps of the query range
	// from base data; their results are unioned with the fragment rows.
	Remainders []Node
}

// Schema implements Node.
func (v *ViewScan) Schema() relation.Schema {
	if v.CompProject == nil {
		return v.ViewSchema
	}
	return v.ViewSchema.Project(v.CompProject)
}

// Children implements Node. Remainder plans are children so that walkers
// and the executor see them.
func (v *ViewScan) Children() []Node { return v.Remainders }

// String implements Node.
func (v *ViewScan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "viewscan[%s", v.ViewID)
	if len(v.FragIDs) > 0 {
		fmt.Fprintf(&b, "; frags=%v reads=%v", v.FragIDs, v.Reads)
	}
	if len(v.CompRanges) > 0 || len(v.CompResiduals) > 0 {
		parts := make([]string, 0, len(v.CompRanges)+len(v.CompResiduals))
		for _, r := range v.CompRanges {
			parts = append(parts, r.String())
		}
		for _, r := range v.CompResiduals {
			parts = append(parts, r.String())
		}
		fmt.Fprintf(&b, "; comp=%s", strings.Join(parts, " && "))
	}
	if v.CompProject != nil {
		fmt.Fprintf(&b, "; proj=%s", strings.Join(v.CompProject, ","))
	}
	if len(v.Remainders) > 0 {
		rs := make([]string, len(v.Remainders))
		for i, r := range v.Remainders {
			rs[i] = r.String()
		}
		fmt.Fprintf(&b, "; remainder=(%s)", strings.Join(rs, " U "))
	}
	b.WriteString("]")
	return b.String()
}

// Walk visits every node of the plan in pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// CandidateNodes returns the subqueries of root that Definition 6 admits
// as view candidates: joins, aggregations and projections. The root
// itself is included when it has one of these shapes. A join directly
// beneath a projection is skipped: the engine (like Hive) fuses map-side
// projection into the join, so the unprojected join output never exists
// as an intermediate result that could be captured.
func CandidateNodes(root Node) []Node {
	var out []Node
	var visit func(n Node, parent Node)
	visit = func(n Node, parent Node) {
		switch n.(type) {
		case *Join:
			if _, fused := parent.(*Project); !fused {
				out = append(out, n)
			}
		case *Aggregate, *Project:
			out = append(out, n)
		}
		for _, c := range n.Children() {
			visit(c, n)
		}
	}
	visit(root, nil)
	return out
}

// BaseTables returns the distinct base tables scanned by the plan, in
// first-visit order.
func BaseTables(root Node) []string {
	var out []string
	seen := make(map[string]bool)
	Walk(root, func(n Node) {
		if s, ok := n.(*Scan); ok && !seen[s.Table] {
			seen[s.Table] = true
			out = append(out, s.Table)
		}
	})
	return out
}
