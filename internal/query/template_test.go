package query

import (
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/relation"
)

func tplSchema() relation.Schema {
	return relation.Schema{Name: "t", Cols: []relation.Column{
		{Name: "k", Type: relation.Int, Ordered: true, Lo: 0, Hi: 999},
		{Name: "s", Type: relation.String},
		{Name: "x", Type: relation.Float},
	}}
}

func tplQuery(lo, hi int64, eq string) Node {
	sel := &Select{
		Child:  NewScan("t", tplSchema()),
		Ranges: []RangePred{{Col: "k", Iv: interval.New(lo, hi)}},
	}
	if eq != "" {
		sel.Residuals = []CmpPred{{Col: "s", Op: Eq, Val: relation.StringVal(eq), Typ: relation.String}}
	}
	return &Aggregate{
		Child:   sel,
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Func: Sum, Col: "x", As: "total"}},
	}
}

func TestTemplateFingerprintMasksRanges(t *testing.T) {
	a := TemplateFingerprint(tplQuery(0, 99, ""))
	b := TemplateFingerprint(tplQuery(500, 700, ""))
	if a != b {
		t.Fatalf("same template, different ranges: fingerprints differ\n%s\n%s", a, b)
	}
	if Fingerprint(tplQuery(0, 99, "")) == Fingerprint(tplQuery(500, 700, "")) {
		t.Fatal("exact fingerprints must still distinguish the ranges")
	}
}

func TestTemplateFingerprintKeepsResiduals(t *testing.T) {
	a := TemplateFingerprint(tplQuery(0, 99, "red"))
	b := TemplateFingerprint(tplQuery(0, 99, "blue"))
	if a == b {
		t.Fatal("different residual values must not share a template")
	}
	if TemplateFingerprint(tplQuery(0, 99, "red")) != TemplateFingerprint(tplQuery(5, 50, "red")) {
		t.Fatal("same residual, different range must share a template")
	}
}

func TestTemplateFingerprintDistinguishesShapes(t *testing.T) {
	q1 := tplQuery(0, 99, "")
	q2 := &Project{Child: NewScan("t", tplSchema()), Cols: []string{"k"}}
	if TemplateFingerprint(q1) == TemplateFingerprint(q2) {
		t.Fatal("different plan shapes must not share a template")
	}
	j1 := &Join{Left: NewScan("t", tplSchema()), Right: NewScan("t", tplSchema()), LCol: "k", RCol: "k"}
	j2 := &Join{Left: NewScan("t", tplSchema()), Right: NewScan("t", tplSchema()), LCol: "k", RCol: "s"}
	if TemplateFingerprint(j1) == TemplateFingerprint(j2) {
		t.Fatal("different join columns must not share a template")
	}
}

func TestTemplateFingerprintViewScanFallsBack(t *testing.T) {
	vs1 := &ViewScan{ViewID: "v1"}
	vs2 := &ViewScan{ViewID: "v2"}
	if TemplateFingerprint(vs1) == TemplateFingerprint(vs2) {
		t.Fatal("viewscan fallback must keep the exact identity")
	}
	if TemplateFingerprint(vs1) != Fingerprint(vs1) {
		t.Fatal("viewscan template fingerprint should equal the exact fingerprint")
	}
}
