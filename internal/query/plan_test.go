package query

import (
	"strings"
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/relation"
)

func factSchema() relation.Schema {
	return relation.Schema{Name: "fact", Cols: []relation.Column{
		{Name: "f_key", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99},
		{Name: "f_val", Type: relation.Float},
		{Name: "f_date", Type: relation.Int, Ordered: true, Lo: 0, Hi: 364},
	}}
}

func dimSchema() relation.Schema {
	return relation.Schema{Name: "dim", Cols: []relation.Column{
		{Name: "d_key", Type: relation.Int, Ordered: true, Lo: 0, Hi: 99},
		{Name: "d_name", Type: relation.String},
	}}
}

func testPlan() Node {
	return &Aggregate{
		Child: &Select{
			Child: &Project{
				Child: &Join{
					Left:  NewScan("fact", factSchema()),
					Right: NewScan("dim", dimSchema()),
					LCol:  "f_key",
					RCol:  "d_key",
				},
				Cols: []string{"f_key", "d_name", "f_val"},
			},
			Ranges: []RangePred{{Col: "f_key", Iv: interval.New(10, 20)}},
		},
		GroupBy: []string{"d_name"},
		Aggs:    []AggSpec{{Func: Sum, Col: "f_val", As: "total"}},
	}
}

func TestSchemaDerivation(t *testing.T) {
	plan := testPlan().(*Aggregate)
	join := plan.Child.(*Select).Child.(*Project).Child.(*Join)
	js := join.Schema()
	if len(js.Cols) != 5 {
		t.Errorf("join schema has %d cols, want 5", len(js.Cols))
	}
	ps := plan.Child.(*Select).Child.Schema()
	if len(ps.Cols) != 3 || ps.Cols[1].Name != "d_name" {
		t.Errorf("project schema = %v", ps)
	}
	as := plan.Schema()
	if len(as.Cols) != 2 || as.Cols[0].Name != "d_name" || as.Cols[1].Name != "total" {
		t.Errorf("aggregate schema = %v", as)
	}
	if as.Cols[1].Type != relation.Float {
		t.Errorf("sum output type = %v, want Float", as.Cols[1].Type)
	}
}

func TestAggOutputTypes(t *testing.T) {
	base := NewScan("fact", factSchema())
	agg := &Aggregate{Child: base, GroupBy: nil, Aggs: []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Col: "f_key", As: "s"},
		{Func: Avg, Col: "f_val", As: "a"},
		{Func: Min, Col: "f_key", As: "mn"},
		{Func: Max, Col: "f_val", As: "mx"},
	}}
	s := agg.Schema()
	want := []relation.Type{relation.Int, relation.Float, relation.Float, relation.Int, relation.Float}
	for i, w := range want {
		if s.Cols[i].Type != w {
			t.Errorf("agg col %d type = %v, want %v", i, s.Cols[i].Type, w)
		}
	}
}

func TestCanonicalStringDeterministic(t *testing.T) {
	a := testPlan().String()
	b := testPlan().String()
	if a != b {
		t.Error("identical plans render differently")
	}
	if !strings.Contains(a, "10<=f_key<=20") {
		t.Errorf("range predicate missing from %q", a)
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	var kinds []string
	Walk(testPlan(), func(n Node) {
		switch n.(type) {
		case *Aggregate:
			kinds = append(kinds, "agg")
		case *Select:
			kinds = append(kinds, "sel")
		case *Project:
			kinds = append(kinds, "proj")
		case *Join:
			kinds = append(kinds, "join")
		case *Scan:
			kinds = append(kinds, "scan")
		}
	})
	want := []string{"agg", "sel", "proj", "join", "scan", "scan"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("walk order = %v, want %v", kinds, want)
	}
}

func TestCandidateNodesSkipsFusedJoin(t *testing.T) {
	cands := CandidateNodes(testPlan())
	// The join sits under a projection, so candidates are the aggregate
	// and the projection only.
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	if _, ok := cands[0].(*Aggregate); !ok {
		t.Error("first candidate not the aggregate")
	}
	if _, ok := cands[1].(*Project); !ok {
		t.Error("second candidate not the projection")
	}
	// A bare join (no projection parent) IS a candidate.
	bare := &Join{Left: NewScan("fact", factSchema()), Right: NewScan("dim", dimSchema()),
		LCol: "f_key", RCol: "d_key"}
	if got := CandidateNodes(bare); len(got) != 1 {
		t.Errorf("bare join candidates = %d, want 1", len(got))
	}
}

func TestBaseTables(t *testing.T) {
	got := BaseTables(testPlan())
	if len(got) != 2 || got[0] != "fact" || got[1] != "dim" {
		t.Errorf("BaseTables = %v", got)
	}
}

func TestReplaceSwapsSubtree(t *testing.T) {
	plan := testPlan().(*Aggregate)
	target := plan.Child.(*Select).Child // the projection
	repl := NewScan("other", dimSchema())
	out := Replace(plan, target, repl)
	if Contains(out, target) {
		t.Error("target still present after Replace")
	}
	if !Contains(out, repl) {
		t.Error("replacement not present")
	}
	// The original plan is untouched.
	if !Contains(plan, target) {
		t.Error("Replace mutated the original plan")
	}
}

func TestReplacePanicsOnMissingTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replace with absent target did not panic")
		}
	}()
	Replace(testPlan(), NewScan("ghost", dimSchema()), NewScan("x", dimSchema()))
}

func TestCmpPredEval(t *testing.T) {
	tests := []struct {
		p    CmpPred
		v    relation.Value
		want bool
	}{
		{CmpPred{Col: "a", Op: Eq, Val: relation.IntVal(5), Typ: relation.Int}, relation.IntVal(5), true},
		{CmpPred{Col: "a", Op: Ne, Val: relation.IntVal(5), Typ: relation.Int}, relation.IntVal(5), false},
		{CmpPred{Col: "a", Op: Lt, Val: relation.FloatVal(1.5), Typ: relation.Float}, relation.FloatVal(1.0), true},
		{CmpPred{Col: "a", Op: Ge, Val: relation.FloatVal(1.5), Typ: relation.Float}, relation.FloatVal(1.0), false},
		{CmpPred{Col: "a", Op: Gt, Val: relation.StringVal("m"), Typ: relation.String}, relation.StringVal("z"), true},
		{CmpPred{Col: "a", Op: Le, Val: relation.StringVal("m"), Typ: relation.String}, relation.StringVal("m"), true},
	}
	for i, tt := range tests {
		if got := tt.p.Eval(tt.v); got != tt.want {
			t.Errorf("case %d: Eval = %v, want %v", i, got, tt.want)
		}
	}
}

func TestViewScanStringMentionsParts(t *testing.T) {
	vs := &ViewScan{
		ViewID:     "v1",
		ViewSchema: dimSchema(),
		PartAttr:   "d_key",
		FragIDs:    []string{"f/a"},
		Reads:      []interval.Interval{interval.New(0, 5)},
		CompRanges: []RangePred{{Col: "d_key", Iv: interval.New(0, 5)}},
	}
	s := vs.String()
	for _, want := range []string{"v1", "f/a", "0<=d_key<=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("ViewScan string %q missing %q", s, want)
		}
	}
}

func TestReplaceInsideViewScanRemainder(t *testing.T) {
	inner := NewScan("fact", factSchema())
	vs := &ViewScan{
		ViewID:     "v",
		ViewSchema: factSchema(),
		Remainders: []Node{&Select{Child: inner,
			Ranges: []RangePred{{Col: "f_key", Iv: interval.New(0, 5)}}}},
	}
	repl := NewScan("other", factSchema())
	out := Replace(vs, inner, repl)
	if Contains(out, inner) || !Contains(out, repl) {
		t.Error("Replace did not reach inside the remainder plan")
	}
	// The original ViewScan's remainder is untouched.
	if !Contains(vs, inner) {
		t.Error("Replace mutated the original remainder")
	}
}
