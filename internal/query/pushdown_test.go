package query

import (
	"testing"

	"deepsea/internal/interval"
	"deepsea/internal/relation"
)

// findSelects collects every Select and the node type directly beneath.
func findSelects(root Node) []string {
	var out []string
	Walk(root, func(n Node) {
		if s, ok := n.(*Select); ok {
			switch s.Child.(type) {
			case *Scan:
				out = append(out, "scan")
			case *Join:
				out = append(out, "join")
			case *Project:
				out = append(out, "project")
			case *Aggregate:
				out = append(out, "aggregate")
			default:
				out = append(out, "other")
			}
		}
	})
	return out
}

func TestPushDownMovesRangeToScan(t *testing.T) {
	plan := testPlan() // Select sits above the projection
	pushed := PushDownRanges(plan)
	under := findSelects(pushed)
	if len(under) != 1 || under[0] != "scan" {
		t.Fatalf("selects after pushdown sit above %v, want [scan]", under)
	}
	// The predicate must land on the fact scan (owner of f_key).
	found := false
	Walk(pushed, func(n Node) {
		if s, ok := n.(*Select); ok {
			if sc, ok := s.Child.(*Scan); ok && sc.Table == "fact" {
				if len(s.Ranges) == 1 && s.Ranges[0].Col == "f_key" {
					found = true
				}
			}
		}
	})
	if !found {
		t.Error("range predicate not attached to the fact scan")
	}
}

func TestPushDownPreservesSchema(t *testing.T) {
	plan := testPlan()
	pushed := PushDownRanges(plan)
	a, b := plan.Schema(), pushed.Schema()
	if a.String() != b.String() {
		t.Errorf("pushdown changed output schema: %s vs %s", a.String(), b.String())
	}
}

func TestPushDownResidual(t *testing.T) {
	plan := &Select{
		Child: &Join{
			Left:  NewScan("fact", factSchema()),
			Right: NewScan("dim", dimSchema()),
			LCol:  "f_key", RCol: "d_key",
		},
		Residuals: []CmpPred{{Col: "d_name", Op: Eq,
			Val: relation.StringVal("x"), Typ: relation.String}},
	}
	pushed := PushDownRanges(plan)
	found := false
	Walk(pushed, func(n Node) {
		if s, ok := n.(*Select); ok {
			if sc, ok := s.Child.(*Scan); ok && sc.Table == "dim" && len(s.Residuals) == 1 {
				found = true
			}
		}
	})
	if !found {
		t.Error("residual not pushed to the dim scan")
	}
}

func TestPushDownKeepsPostAggregatePredicates(t *testing.T) {
	// A range on an aggregate alias cannot move below the aggregate.
	agg := &Aggregate{
		Child:   NewScan("fact", factSchema()),
		GroupBy: []string{"f_key"},
		Aggs:    []AggSpec{{Func: Count, As: "n"}},
	}
	plan := &Select{Child: agg,
		Ranges: []RangePred{{Col: "n", Iv: interval.New(5, 10)}}}
	pushed := PushDownRanges(plan)
	under := findSelects(pushed)
	if len(under) != 1 || under[0] != "aggregate" {
		t.Fatalf("post-aggregate predicate moved: selects above %v", under)
	}
}

func TestPushDownNoPredicatesIsIdentityShape(t *testing.T) {
	plan := &Join{
		Left:  NewScan("fact", factSchema()),
		Right: NewScan("dim", dimSchema()),
		LCol:  "f_key", RCol: "d_key",
	}
	pushed := PushDownRanges(plan)
	if len(findSelects(pushed)) != 0 {
		t.Error("pushdown invented selections")
	}
}
