package query

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a stable identity key for a plan: the SHA-256 of
// its canonical String() form. Node.String() is documented as the
// canonical syntactic identity of a plan (same predicates, same ranges,
// same shape ⇒ same string), so two queries share a fingerprint exactly
// when a result computed for one answers the other. The result cache
// keys on this plus the engine's base-catalog version.
func Fingerprint(n Node) string {
	sum := sha256.Sum256([]byte(n.String()))
	return hex.EncodeToString(sum[:])
}
