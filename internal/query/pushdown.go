package query

// PushDownRanges returns a copy of the plan with every range and
// residual predicate moved down to the scan of the base table that owns
// the predicate's column — the standard selection-pushdown rewrite a
// production optimizer performs. The vanilla-Hive baseline runs
// pushed-down plans; DeepSea deliberately does not push selections below
// its view candidates (Section 10.2: "Our materialization strategy
// requires that selections are not pushed down and hence we incur a
// performance hit initially"), which is exactly the initial overhead the
// Figure 7b recoup experiment measures.
//
// Predicates whose column is not produced by a single scan (e.g. an
// aggregate alias) stay where they are.
func PushDownRanges(root Node) Node {
	plan, _, _ := pushDown(root)
	return plan
}

type pendingPred struct {
	rangePreds []RangePred
	cmpPreds   []CmpPred
}

// pushDown rebuilds the subtree, returning pending predicates that could
// not be attached yet (their owning scan is deeper in this subtree only
// if hoisted from above).
func pushDown(n Node) (Node, []RangePred, []CmpPred) {
	switch t := n.(type) {
	case *Scan:
		return t, nil, nil

	case *Select:
		child, pr, pc := pushDown(t.Child)
		pr = append(pr, t.Ranges...)
		pc = append(pc, t.Residuals...)
		return attach(child, pr, pc)

	case *Project:
		child, pr, pc := pushDown(t.Child)
		child, pr, pc = attachTo(child, pr, pc)
		cp := *t
		cp.Child = child
		return &cp, pr, pc

	case *Join:
		l, plr, plc := pushDown(t.Left)
		r, prr, prc := pushDown(t.Right)
		l, plr, plc = attachTo(l, plr, plc)
		r, prr, prc = attachTo(r, prr, prc)
		cp := *t
		cp.Left = l
		cp.Right = r
		return &cp, append(plr, prr...), append(plc, prc...)

	case *Aggregate:
		child, pr, pc := pushDown(t.Child)
		child, pr, pc = attachTo(child, pr, pc)
		cp := *t
		cp.Child = child
		// Predicates that could not be attached below the aggregate stay
		// above it.
		out, rr, rc := attach(&cp, pr, pc)
		return out, rr, rc

	case *ViewScan:
		return t, nil, nil

	default:
		return n, nil, nil
	}
}

// attachTo tries to place each pending predicate directly above the
// lowest node in this subtree that produces its column; unplaced
// predicates are returned.
func attachTo(n Node, ranges []RangePred, cmps []CmpPred) (Node, []RangePred, []CmpPred) {
	out, restR, restC := attach(n, ranges, cmps)
	return out, restR, restC
}

// attach wraps n in a Select holding the predicates n's schema can
// evaluate; the rest are returned for placement higher up.
func attach(n Node, ranges []RangePred, cmps []CmpPred) (Node, []RangePred, []CmpPred) {
	schema := n.Schema()
	var hereR, restR []RangePred
	for _, p := range ranges {
		if schema.Has(p.Col) {
			hereR = append(hereR, p)
		} else {
			restR = append(restR, p)
		}
	}
	var hereC, restC []CmpPred
	for _, p := range cmps {
		if schema.Has(p.Col) {
			hereC = append(hereC, p)
		} else {
			restC = append(restC, p)
		}
	}
	if len(hereR) == 0 && len(hereC) == 0 {
		return n, restR, restC
	}
	// Push through to the scan level where possible: if n is itself a
	// join/project chain, recurse one level.
	switch t := n.(type) {
	case *Join:
		l, lr, lc := attach(t.Left, hereR, hereC)
		r, rr2, rc2 := attach(t.Right, lr, lc)
		cp := *t
		cp.Left = l
		cp.Right = r
		if len(rr2) > 0 || len(rc2) > 0 {
			return &Select{Child: &cp, Ranges: rr2, Residuals: rc2}, restR, restC
		}
		return &cp, restR, restC
	case *Project:
		child, cr, cc := attach(t.Child, hereR, hereC)
		cp := *t
		cp.Child = child
		if len(cr) > 0 || len(cc) > 0 {
			return &Select{Child: &cp, Ranges: cr, Residuals: cc}, restR, restC
		}
		return &cp, restR, restC
	default:
		return &Select{Child: n, Ranges: hereR, Residuals: hereC}, restR, restC
	}
}
