package query

import "fmt"

// Replace returns a copy of the plan rooted at root in which the subtree
// identified by target (pointer identity) is replaced by repl. Nodes on
// the path from the root to the target are shallow-copied so the original
// plan is left untouched; untouched subtrees are shared. Replace panics
// if target does not occur in root, which indicates a rewriting bug.
func Replace(root, target, repl Node) Node {
	out, found := replace(root, target, repl)
	if !found {
		panic(fmt.Sprintf("query: Replace target %s not found in plan", target))
	}
	return out
}

func replace(n, target, repl Node) (Node, bool) {
	if n == target {
		return repl, true
	}
	switch t := n.(type) {
	case *Scan:
		return n, false
	case *Select:
		c, ok := replace(t.Child, target, repl)
		if !ok {
			return n, false
		}
		cp := *t
		cp.Child = c
		return &cp, true
	case *Project:
		c, ok := replace(t.Child, target, repl)
		if !ok {
			return n, false
		}
		cp := *t
		cp.Child = c
		return &cp, true
	case *Aggregate:
		c, ok := replace(t.Child, target, repl)
		if !ok {
			return n, false
		}
		cp := *t
		cp.Child = c
		return &cp, true
	case *Join:
		if l, ok := replace(t.Left, target, repl); ok {
			cp := *t
			cp.Left = l
			return &cp, true
		}
		if r, ok := replace(t.Right, target, repl); ok {
			cp := *t
			cp.Right = r
			return &cp, true
		}
		return n, false
	case *ViewScan:
		for i, rem := range t.Remainders {
			if r, ok := replace(rem, target, repl); ok {
				cp := *t
				cp.Remainders = append([]Node(nil), t.Remainders...)
				cp.Remainders[i] = r
				return &cp, true
			}
		}
		return n, false
	default:
		panic(fmt.Sprintf("query: Replace over unknown node type %T", n))
	}
}

// Contains reports whether target occurs in the plan rooted at root
// (pointer identity).
func Contains(root, target Node) bool {
	found := false
	Walk(root, func(n Node) {
		if n == target {
			found = true
		}
	})
	return found
}
