package query

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// TemplateFingerprint returns a stable identity key for a plan's
// *template*: its canonical rendering with every range-predicate bound
// masked out. Two queries share a template fingerprint exactly when they
// differ only in the integer ranges they select — the repetition
// profile of analytic workloads (the same parameterized report issued
// over shifting ranges), and the unit the serving layer batches
// planning over: same-template queries match the same views and differ
// only in fragment cover, so their planning sections can share one
// planning-lock acquisition.
//
// Residual (equality/comparison) predicate values stay in the template:
// they select different view candidates, so queries differing in them
// must not coalesce. Plans containing ViewScans (rewriter output, never
// user input) fall back to the exact fingerprint.
func TemplateFingerprint(n Node) string {
	var b strings.Builder
	templateString(n, &b)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// templateString renders n like Node.String() with range bounds masked.
func templateString(n Node, b *strings.Builder) {
	switch v := n.(type) {
	case *Scan:
		b.WriteString(v.String())
	case *Select:
		b.WriteString("select[")
		for i, r := range v.Ranges {
			if i > 0 {
				b.WriteString(" && ")
			}
			fmt.Fprintf(b, "?<=%s<=?", r.Col)
		}
		for i, r := range v.Residuals {
			if i > 0 || len(v.Ranges) > 0 {
				b.WriteString(" && ")
			}
			b.WriteString(r.String())
		}
		b.WriteString("](")
		templateString(v.Child, b)
		b.WriteString(")")
	case *Project:
		fmt.Fprintf(b, "project[%s](", strings.Join(v.Cols, ","))
		templateString(v.Child, b)
		b.WriteString(")")
	case *Join:
		fmt.Fprintf(b, "join[%s=%s](", v.LCol, v.RCol)
		templateString(v.Left, b)
		b.WriteString(", ")
		templateString(v.Right, b)
		b.WriteString(")")
	case *Aggregate:
		aggs := make([]string, len(v.Aggs))
		for i, sp := range v.Aggs {
			aggs[i] = sp.String()
		}
		fmt.Fprintf(b, "%s[%s][%s](", v.aggTag(), strings.Join(v.GroupBy, ","), strings.Join(aggs, ","))
		templateString(v.Child, b)
		b.WriteString(")")
	default:
		// ViewScan or an unknown future operator: the exact canonical form
		// is the only safe identity.
		b.WriteString(n.String())
	}
}
