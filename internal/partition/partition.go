// Package partition models materialized partitioned views: the set of
// fragments a view is currently split into (the paper's P(V, A)),
// refinement planning (split versus overlapping-fragment creation),
// fragment-size bounding, and size/cost estimation for fragment
// candidates (Section 7.2).
package partition

import (
	"fmt"
	"sort"

	"deepsea/internal/interval"
)

// Fragment is one materialized fragment of a partitioned view.
type Fragment struct {
	// Iv is the fragment's key interval.
	Iv interval.Interval
	// Path is the simulated-FS location of the fragment's file.
	Path string
	// Size is the fragment's stored size in bytes.
	Size int64
}

// Partition is the materialized partitioning of one view on one
// attribute. When Overlapping is false the fragments are pairwise
// disjoint (a horizontal partitioning, possibly with holes after
// evictions); when true, fragments may overlap (Definition 2).
type Partition struct {
	View        string
	Attr        string
	Dom         interval.Interval
	Overlapping bool

	frags []Fragment // sorted by (Lo, Hi)
}

// New returns an empty partition for view.attr over the given domain.
func New(view, attr string, dom interval.Interval, overlapping bool) *Partition {
	return &Partition{View: view, Attr: attr, Dom: dom, Overlapping: overlapping}
}

// Add inserts a fragment, keeping the fragment list sorted. Adding a
// fragment with an interval that already exists replaces it.
func (p *Partition) Add(f Fragment) {
	for i := range p.frags {
		if p.frags[i].Iv == f.Iv {
			p.frags[i] = f
			return
		}
	}
	p.frags = append(p.frags, f)
	sort.Slice(p.frags, func(i, j int) bool {
		if p.frags[i].Iv.Lo != p.frags[j].Iv.Lo {
			return p.frags[i].Iv.Lo < p.frags[j].Iv.Lo
		}
		return p.frags[i].Iv.Hi < p.frags[j].Iv.Hi
	})
}

// Remove deletes the fragment with exactly the given interval and
// reports whether it was present.
func (p *Partition) Remove(iv interval.Interval) bool {
	for i := range p.frags {
		if p.frags[i].Iv == iv {
			p.frags = append(p.frags[:i], p.frags[i+1:]...)
			return true
		}
	}
	return false
}

// Fragments returns the fragments in sorted order. The returned slice is
// shared; callers must not mutate it.
func (p *Partition) Fragments() []Fragment { return p.frags }

// NumFragments returns the fragment count.
func (p *Partition) NumFragments() int { return len(p.frags) }

// Lookup returns the fragment with exactly the given interval.
func (p *Partition) Lookup(iv interval.Interval) (Fragment, bool) {
	for _, f := range p.frags {
		if f.Iv == iv {
			return f, true
		}
	}
	return Fragment{}, false
}

// Intervals returns the fragments' intervals as a set.
func (p *Partition) Intervals() interval.Set {
	out := make(interval.Set, len(p.frags))
	for i, f := range p.frags {
		out[i] = f.Iv
	}
	return out
}

// TotalSize returns the summed fragment sizes.
func (p *Partition) TotalSize() int64 {
	var s int64
	for _, f := range p.frags {
		s += f.Size
	}
	return s
}

// Overlapping fragments of the given interval, in sorted order.
func (p *Partition) OverlappingFragments(iv interval.Interval) []Fragment {
	var out []Fragment
	for _, f := range p.frags {
		if f.Iv.Overlaps(iv) {
			out = append(out, f)
		}
	}
	return out
}

// Cover runs the paper's Algorithm 2 over the partition's fragments and
// returns the chosen fragments, the clipped read range each contributes,
// and the uncovered gaps of want (empty when the cover is complete).
//
// When the fragments cover want only partially (evictions leave holes),
// each maximal covered segment is covered independently, so fragments
// after a hole still contribute and only the holes become remainder
// work.
func (p *Partition) Cover(want interval.Interval) (frags []Fragment, reads []interval.Interval, gaps []interval.Interval) {
	ivs := p.Intervals()
	gaps = ivs.Gaps(want)
	for _, segment := range complementWithin(want, gaps) {
		idx, segReads, full := interval.ClippedCover(segment, ivs)
		if !full {
			// Gaps() and GreedyCover disagree only if the interval
			// algebra is broken; fail loudly.
			panic(fmt.Sprintf("partition: segment %s reported covered but greedy cover failed", segment))
		}
		for k, i := range idx {
			frags = append(frags, p.frags[i])
			reads = append(reads, segReads[k])
		}
	}
	return frags, reads, gaps
}

// complementWithin returns the maximal subintervals of want not occupied
// by the (sorted, disjoint) gaps.
func complementWithin(want interval.Interval, gaps []interval.Interval) []interval.Interval {
	var out []interval.Interval
	next := want.Lo
	for _, g := range gaps {
		if g.Lo > next {
			out = append(out, interval.Interval{Lo: next, Hi: g.Lo - 1})
		}
		next = g.Hi + 1
	}
	if next <= want.Hi {
		out = append(out, interval.Interval{Lo: next, Hi: want.Hi})
	}
	return out
}

// Validate checks the partition's structural invariant: fragments lie
// within the domain and, for non-overlapping partitions, are pairwise
// disjoint. (Coverage of the whole domain is not required: evictions
// leave holes that remainder queries fill.)
func (p *Partition) Validate() error {
	for _, f := range p.frags {
		if !p.Dom.ContainsInterval(f.Iv) {
			return fmt.Errorf("partition %s.%s: fragment %s outside domain %s",
				p.View, p.Attr, f.Iv, p.Dom)
		}
	}
	if !p.Overlapping && !p.Intervals().Disjoint() {
		return fmt.Errorf("partition %s.%s: overlapping fragments in horizontal partition",
			p.View, p.Attr)
	}
	return nil
}

// Refinement is a plan for materializing one candidate fragment.
type Refinement struct {
	// Read lists existing fragments that must be read to extract the new
	// fragments' rows.
	Read []Fragment
	// Write lists the new fragment intervals to materialize.
	Write []interval.Interval
	// Drop lists existing fragments to delete afterwards (horizontal
	// splits replace their parents; overlapping refinements drop
	// nothing).
	Drop []Fragment
}

// PlanRefinement plans the materialization of candidate fragment cand.
//
// In horizontal mode every existing fragment overlapping cand is split at
// cand's end points; the parents are read and dropped and all pieces are
// written, preserving disjointness. In overlapping mode only cand itself
// is written (its rows extracted from the overlapping parents, which are
// kept) — the paper's trick for avoiding the write of large cold
// fragments (Section 3, Example 2).
func (p *Partition) PlanRefinement(cand interval.Interval) Refinement {
	parents := p.OverlappingFragments(cand)
	if p.Overlapping {
		// Read only a greedy cover of the candidate (Algorithm 2), not
		// every overlapping fragment: as overlapping fragments
		// accumulate, reading all of them would grow quadratically.
		ivs := make(interval.Set, len(parents))
		for i, f := range parents {
			ivs[i] = f.Iv
		}
		if idx, full := interval.GreedyCover(cand, ivs); full {
			cover := make([]Fragment, 0, len(idx))
			seen := make(map[int]bool, len(idx))
			for _, i := range idx {
				if !seen[i] {
					seen[i] = true
					cover = append(cover, parents[i])
				}
			}
			parents = cover
		}
		return Refinement{Read: parents, Write: []interval.Interval{cand}}
	}
	var ref Refinement
	for _, parent := range parents {
		pieces := parent.Iv.SplitAt(cand.Lo, cand.Hi+1)
		if len(pieces) == 1 {
			// cand covers this parent entirely; nothing to split.
			continue
		}
		ref.Read = append(ref.Read, parent)
		ref.Drop = append(ref.Drop, parent)
		ref.Write = append(ref.Write, pieces...)
	}
	return ref
}

// EstimateCandidateSize implements the paper's S(Icand) estimate: the
// relative interval overlap with existing fragments times their sizes,
// assuming values are uniformly distributed within each fragment. The
// paper's formula sums over *all* overlapping fragments, ignoring their
// mutual overlap; for overlapping partitionings that double-counts and
// compounds across refinements, so this implementation sums over a
// greedy cover of the candidate instead (equivalent for horizontal
// partitions, stable for overlapping ones).
func (p *Partition) EstimateCandidateSize(cand interval.Interval) int64 {
	frags, reads, _ := p.Cover(cand)
	var size float64
	for k, f := range frags {
		size += float64(reads[k].Len()) / float64(f.Iv.Len()) * float64(f.Size)
	}
	return int64(size)
}

// EstimateCandidateCost implements the paper's COST(Icand) estimate:
// wwrite · S(Icand) + Σ wread · S(I) over fragments overlapping the
// candidate. wread and wwrite are seconds per byte.
func (p *Partition) EstimateCandidateCost(cand interval.Interval, wread, wwrite float64) float64 {
	cost := wwrite * float64(p.EstimateCandidateSize(cand))
	for _, f := range p.OverlappingFragments(cand) {
		cost += wread * float64(f.Size)
	}
	return cost
}

// Bound splits intervals whose estimated size exceeds maxBytes into
// equal-length pieces, implementing Section 9's fragment-size bounding.
// sizeOf estimates an interval's stored size. The piece count is capped
// so no piece's estimated size falls below minBytes (the file-system
// block size in the paper). maxBytes <= 0 disables the upper bound.
func Bound(ivs []interval.Interval, sizeOf func(interval.Interval) int64, maxBytes, minBytes int64) []interval.Interval {
	if maxBytes <= 0 {
		return ivs
	}
	var out []interval.Interval
	for _, iv := range ivs {
		size := sizeOf(iv)
		if size <= maxBytes {
			out = append(out, iv)
			continue
		}
		n := (size + maxBytes - 1) / maxBytes
		if minBytes > 0 {
			if nmax := size / minBytes; n > nmax {
				n = nmax
			}
		}
		if n > iv.Len() {
			n = iv.Len()
		}
		if n <= 1 {
			out = append(out, iv)
			continue
		}
		out = append(out, interval.EquiDepth(iv, int(n))...)
	}
	return out
}
