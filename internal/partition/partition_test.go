package partition

import (
	"testing"

	"deepsea/internal/interval"
)

func newTestPartition(overlapping bool) *Partition {
	p := New("v", "a", interval.New(0, 100), overlapping)
	p.Add(Fragment{Iv: interval.New(0, 40), Path: "f0", Size: 400})
	p.Add(Fragment{Iv: interval.New(41, 70), Path: "f1", Size: 300})
	p.Add(Fragment{Iv: interval.New(71, 100), Path: "f2", Size: 300})
	return p
}

func TestAddKeepsSorted(t *testing.T) {
	p := New("v", "a", interval.New(0, 100), false)
	p.Add(Fragment{Iv: interval.New(50, 100), Path: "b"})
	p.Add(Fragment{Iv: interval.New(0, 49), Path: "a"})
	fs := p.Fragments()
	if fs[0].Path != "a" || fs[1].Path != "b" {
		t.Errorf("fragments not sorted: %v", fs)
	}
}

func TestAddReplacesSameInterval(t *testing.T) {
	p := New("v", "a", interval.New(0, 100), false)
	p.Add(Fragment{Iv: interval.New(0, 49), Path: "a", Size: 1})
	p.Add(Fragment{Iv: interval.New(0, 49), Path: "a2", Size: 2})
	if p.NumFragments() != 1 {
		t.Fatalf("fragments = %d, want 1", p.NumFragments())
	}
	f, _ := p.Lookup(interval.New(0, 49))
	if f.Path != "a2" || f.Size != 2 {
		t.Errorf("replacement failed: %+v", f)
	}
}

func TestRemove(t *testing.T) {
	p := newTestPartition(false)
	if !p.Remove(interval.New(41, 70)) {
		t.Fatal("Remove returned false for present fragment")
	}
	if p.Remove(interval.New(41, 70)) {
		t.Fatal("Remove returned true for absent fragment")
	}
	if p.NumFragments() != 2 {
		t.Errorf("fragments = %d, want 2", p.NumFragments())
	}
}

func TestTotalSize(t *testing.T) {
	p := newTestPartition(false)
	if got := p.TotalSize(); got != 1000 {
		t.Errorf("TotalSize = %d, want 1000", got)
	}
}

func TestCoverComplete(t *testing.T) {
	p := newTestPartition(false)
	frags, reads, gaps := p.Cover(interval.New(30, 80))
	if gaps != nil {
		t.Fatalf("unexpected gaps %v", gaps)
	}
	if len(frags) != 3 {
		t.Fatalf("cover uses %d fragments, want 3", len(frags))
	}
	next := int64(30)
	for _, r := range reads {
		if r.Lo != next {
			t.Fatalf("reads not contiguous: %v", reads)
		}
		next = r.Hi + 1
	}
	if next != 81 {
		t.Fatalf("reads end at %d, want 81", next)
	}
}

func TestCoverWithGaps(t *testing.T) {
	p := newTestPartition(false)
	p.Remove(interval.New(41, 70)) // evicted middle fragment
	frags, reads, gaps := p.Cover(interval.New(30, 80))
	if len(gaps) != 1 || gaps[0] != interval.New(41, 70) {
		t.Fatalf("gaps = %v, want [[41,70]]", gaps)
	}
	// Fragments on BOTH sides of the hole must still contribute.
	if len(frags) != 2 {
		t.Fatalf("frags = %v, want both sides of the hole", frags)
	}
	if reads[0] != interval.New(30, 40) || reads[1] != interval.New(71, 80) {
		t.Fatalf("reads = %v", reads)
	}
}

func TestValidate(t *testing.T) {
	p := newTestPartition(false)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	p.Add(Fragment{Iv: interval.New(35, 50), Path: "x"})
	if err := p.Validate(); err == nil {
		t.Fatal("overlap in horizontal partition not rejected")
	}
	po := newTestPartition(true)
	po.Add(Fragment{Iv: interval.New(35, 50), Path: "x"})
	if err := po.Validate(); err != nil {
		t.Fatalf("overlapping partition rejected: %v", err)
	}
}

func TestValidateOutOfDomain(t *testing.T) {
	p := New("v", "a", interval.New(0, 100), true)
	p.Add(Fragment{Iv: interval.New(90, 150), Path: "x"})
	if err := p.Validate(); err == nil {
		t.Fatal("fragment outside domain not rejected")
	}
}

func TestPlanRefinementHorizontalSplit(t *testing.T) {
	p := newTestPartition(false)
	// Candidate [30,50] overlaps [0,40] and [41,70]: both parents are
	// split, read and dropped.
	ref := p.PlanRefinement(interval.New(30, 50))
	if len(ref.Read) != 2 || len(ref.Drop) != 2 {
		t.Fatalf("refinement = %+v", ref)
	}
	// Pieces: [0,29],[30,40] from the first parent; [41,50],[51,70] from
	// the second.
	want := []interval.Interval{
		interval.New(0, 29), interval.New(30, 40),
		interval.New(41, 50), interval.New(51, 70),
	}
	if len(ref.Write) != len(want) {
		t.Fatalf("writes = %v, want %v", ref.Write, want)
	}
	for i := range want {
		if ref.Write[i] != want[i] {
			t.Fatalf("writes = %v, want %v", ref.Write, want)
		}
	}
}

func TestPlanRefinementParentFullyCovered(t *testing.T) {
	p := newTestPartition(false)
	// Candidate [0,40] coincides with an existing fragment: no work.
	ref := p.PlanRefinement(interval.New(0, 40))
	if len(ref.Write) != 0 || len(ref.Drop) != 0 {
		t.Errorf("refinement of existing boundary should be empty: %+v", ref)
	}
}

func TestPlanRefinementOverlapping(t *testing.T) {
	p := newTestPartition(true)
	ref := p.PlanRefinement(interval.New(30, 50))
	if len(ref.Drop) != 0 {
		t.Error("overlapping refinement must not drop parents")
	}
	if len(ref.Write) != 1 || ref.Write[0] != interval.New(30, 50) {
		t.Errorf("writes = %v, want only the candidate", ref.Write)
	}
	if len(ref.Read) != 2 {
		t.Errorf("reads = %v, want the two overlapping parents", ref.Read)
	}
}

// Overlapping refinement must write no more bytes than horizontal
// splitting — the core claim behind Figure 9.
func TestOverlappingWritesLessThanHorizontal(t *testing.T) {
	ph := newTestPartition(false)
	po := newTestPartition(true)
	cand := interval.New(30, 50)
	rh := ph.PlanRefinement(cand)
	ro := po.PlanRefinement(cand)
	bytesOf := func(p *Partition, ivs []interval.Interval) int64 {
		var b int64
		for _, iv := range ivs {
			b += p.EstimateCandidateSize(iv)
		}
		return b
	}
	if bytesOf(po, ro.Write) > bytesOf(ph, rh.Write) {
		t.Errorf("overlapping writes %d > horizontal writes %d",
			bytesOf(po, ro.Write), bytesOf(ph, rh.Write))
	}
}

func TestEstimateCandidateSize(t *testing.T) {
	p := newTestPartition(false)
	// Candidate [0,40] covers the whole first fragment: 400 bytes.
	if got := p.EstimateCandidateSize(interval.New(0, 40)); got != 400 {
		t.Errorf("size = %d, want 400", got)
	}
	// Candidate exactly half of [41,70] (length 30): 15/30 * 300 = 150.
	if got := p.EstimateCandidateSize(interval.New(41, 55)); got != 150 {
		t.Errorf("size = %d, want 150", got)
	}
	// Disjoint candidate: 0.
	if got := New("v", "a", interval.New(0, 100), false).EstimateCandidateSize(interval.New(0, 10)); got != 0 {
		t.Errorf("size over empty partition = %d, want 0", got)
	}
}

func TestEstimateCandidateCost(t *testing.T) {
	p := newTestPartition(false)
	// cand [41,55]: S(cand)=150, overlapping fragment [41,70] size 300.
	// cost = wwrite*150 + wread*300 = 2*150 + 1*300 = 600.
	got := p.EstimateCandidateCost(interval.New(41, 55), 1, 2)
	if got != 600 {
		t.Errorf("cost = %g, want 600", got)
	}
}

func TestBound(t *testing.T) {
	sizeOf := func(iv interval.Interval) int64 { return iv.Len() * 10 }
	ivs := []interval.Interval{interval.New(0, 99), interval.New(100, 109)}
	// maxBytes 400 => first interval (1000 bytes) split into 3 pieces.
	out := Bound(ivs, sizeOf, 400, 0)
	if len(out) != 4 {
		t.Fatalf("Bound produced %d intervals, want 4: %v", len(out), out)
	}
	if !interval.Set(out[:3]).IsHorizontalPartition(interval.New(0, 99)) {
		t.Errorf("split pieces do not partition the source: %v", out[:3])
	}
	if out[3] != interval.New(100, 109) {
		t.Errorf("small interval modified: %v", out[3])
	}
}

func TestBoundRespectsMinBytes(t *testing.T) {
	sizeOf := func(iv interval.Interval) int64 { return iv.Len() * 10 }
	// 1000 bytes, maxBytes 100 would want 10 pieces, but minBytes 250
	// caps at 4 pieces.
	out := Bound([]interval.Interval{interval.New(0, 99)}, sizeOf, 100, 250)
	if len(out) != 4 {
		t.Fatalf("Bound produced %d intervals, want 4: %v", len(out), out)
	}
}

func TestBoundDisabled(t *testing.T) {
	ivs := []interval.Interval{interval.New(0, 99)}
	out := Bound(ivs, func(interval.Interval) int64 { return 1 << 40 }, 0, 0)
	if len(out) != 1 {
		t.Errorf("disabled bound split anyway: %v", out)
	}
}

func TestBoundTinyDomain(t *testing.T) {
	// A 3-point interval cannot split into more than 3 pieces.
	sizeOf := func(iv interval.Interval) int64 { return 1000 }
	out := Bound([]interval.Interval{interval.New(0, 2)}, sizeOf, 10, 0)
	if len(out) != 3 {
		t.Fatalf("Bound produced %d intervals, want 3: %v", len(out), out)
	}
}
