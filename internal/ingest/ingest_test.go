package ingest

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDecodeSpecNormalizesNumbers(t *testing.T) {
	body := `{"table":"t","rows":[[1, 2.5, "x"],[9007199254740993, 3, "y"]]}`
	sp, err := DecodeSpec(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rows[0][0] != int64(1) || sp.Rows[0][1] != 2.5 || sp.Rows[0][2] != "x" {
		t.Errorf("row 0 = %#v", sp.Rows[0])
	}
	// 2^53+1 survives only via UseNumber — a float64 round-trip would
	// corrupt it.
	if sp.Rows[1][0] != int64(9007199254740993) {
		t.Errorf("large int corrupted: %#v", sp.Rows[1][0])
	}
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []string{
		`{"rows":[[1]]}`,                  // no table
		`{"table":"t"}`,                   // no rows
		`{"table":"t","rows":[[1],[1,2]]}`, // ragged
	} {
		if _, err := DecodeSpec(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("spec %s decoded without error", bad)
		}
	}
}

func TestItemRange(t *testing.T) {
	sp := &Spec{Table: "t", Rows: [][]any{{int64(5), "a"}, {int64(2), "b"}, {int64(9), "c"}}}
	lo, hi, ok := sp.ItemRange(0)
	if !ok || lo != 2 || hi != 9 {
		t.Errorf("ItemRange = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := sp.ItemRange(1); ok {
		t.Error("string key column reported a range")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	in := []*Spec{
		{Table: "a", Rows: [][]any{{int64(1), "x"}, {int64(2), "y"}}},
		{Table: "b", Rows: [][]any{{3.5}}},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Table != "a" || len(out[0].Rows) != 2 || out[1].Rows[0][0] != 3.5 {
		t.Errorf("round trip = %#v", out)
	}
	if out[0].Rows[1][0] != int64(2) {
		t.Errorf("int corrupted in round trip: %#v", out[0].Rows[1][0])
	}
}

func TestCoalescerGroupsConcurrentAppends(t *testing.T) {
	var flushes atomic.Int64
	c := NewCoalescer(1<<20, 20*time.Millisecond, func(table string, rows [][]any) (int, error) {
		flushes.Add(1)
		return len(rows), nil
	})
	defer c.Close()
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Add("t", [][]any{{int64(i)}})
			if err != nil {
				t.Error(err)
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	// All adds that landed in one batch saw the same total; the batch
	// count must be far below the add count.
	appends, batches := c.Stats()
	if appends != n {
		t.Errorf("appends = %d, want %d", appends, n)
	}
	if batches == 0 || batches > n {
		t.Errorf("batches = %d", batches)
	}
	total := 0
	seen := map[int]bool{}
	for _, r := range results {
		if !seen[r] {
			seen[r] = true
			total += r
		}
	}
	if total != n {
		t.Errorf("distinct batch sizes sum to %d, want %d", total, n)
	}
}

func TestCoalescerMaxRowsFlushesEarly(t *testing.T) {
	c := NewCoalescer(4, time.Hour, func(table string, rows [][]any) (int, error) {
		return len(rows), nil
	})
	defer c.Close()
	done := make(chan int, 1)
	go func() {
		got, _ := c.Add("t", [][]any{{int64(0)}, {int64(1)}, {int64(2)}, {int64(3)}})
		done <- got
	}()
	select {
	case got := <-done:
		if got != 4 {
			t.Errorf("batch size = %d, want 4", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("full batch did not flush before the linger deadline")
	}
}

func TestCoalescerFlushError(t *testing.T) {
	c := NewCoalescer[int](0, time.Millisecond, func(table string, rows [][]any) (int, error) {
		return 0, fmt.Errorf("boom")
	})
	defer c.Close()
	if _, err := c.Add("t", [][]any{{int64(1)}}); err == nil {
		t.Fatal("flush error not propagated")
	}
}

func TestCoalescerCloseFlushesPending(t *testing.T) {
	c := NewCoalescer(1<<20, time.Hour, func(table string, rows [][]any) (int, error) {
		return len(rows), nil
	})
	done := make(chan int, 1)
	go func() {
		got, _ := c.Add("t", [][]any{{int64(1)}})
		done <- got
	}()
	for {
		if a, _ := c.Stats(); a == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	select {
	case got := <-done:
		if got != 1 {
			t.Errorf("close-flushed batch size = %d", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not flush the pending batch")
	}
	if _, err := c.Add("t", nil); err == nil {
		t.Error("Add after Close succeeded")
	}
}
