// Package ingest is the wire layer of the batched append path: the
// JSON spec of POST /append on the serving and shard tiers, the value
// normalization that turns decoded JSON rows into the typed values the
// engine accepts, a group-commit coalescer that merges concurrent small
// appends into one journal write, and the JSONL append-stream format
// the generator emits and the benchmarks replay.
//
// The package is deliberately engine-agnostic — it knows nothing about
// views, journals or refresh. The serving tier supplies the flush
// function; everything here is batching and encoding.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Spec is the JSON body of POST /append: a batch of new rows for one
// base table.
//
//	{"table": "store_sales", "rows": [[17, 3, 12.5, "pad"], ...]}
//
// Row values align with the table's columns in order. Epoch, when
// nonzero, is the coordinator's routing-epoch fencing token, checked
// like a query's: a shard whose ownership epoch differs rejects with
// 409 so stale routing fails fast instead of appending rows to a shard
// that no longer owns their range.
//
// Token, when nonempty, is the batch's idempotency key: a serving tier
// remembers recently applied tokens and answers a repeated token with
// the remembered result instead of appending the rows again, so a
// retry after a partial failure (a coordinator's 409-refresh retry, a
// client retrying a 502 whose batch landed on some replicas) cannot
// duplicate rows. The window is bounded and in-memory — idempotence
// holds within a serving process's lifetime, not across its restarts.
type Spec struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
	Epoch uint64  `json:"epoch,omitempty"`
	Token string  `json:"token,omitempty"`
}

// Validate checks the structural invariants a handler should 400 on.
func (sp *Spec) Validate() error {
	if sp.Table == "" {
		return fmt.Errorf("ingest: append needs a table")
	}
	if len(sp.Rows) == 0 {
		return fmt.Errorf("ingest: append needs rows")
	}
	width := len(sp.Rows[0])
	for i, r := range sp.Rows {
		if len(r) != width {
			return fmt.Errorf("ingest: row %d has %d values, row 0 has %d", i, len(r), width)
		}
	}
	return nil
}

// Normalize converts decoded-JSON row values in place into the typed
// values the append path accepts: json.Number becomes int64 when
// integral and float64 otherwise, float64 stays, and integral float64
// (a plain json.Unmarshal without UseNumber) converts to int64 so int
// columns round-trip. Strings pass through; anything else errors.
func Normalize(rows [][]any) error {
	for i, row := range rows {
		for j, v := range row {
			switch x := v.(type) {
			case json.Number:
				if n, err := x.Int64(); err == nil {
					rows[i][j] = n
					continue
				}
				f, err := x.Float64()
				if err != nil {
					return fmt.Errorf("ingest: row %d col %d: bad number %q", i, j, x.String())
				}
				rows[i][j] = f
			case float64:
				if x == float64(int64(x)) {
					rows[i][j] = int64(x)
				}
			case int64, int, string:
				// already typed
			default:
				return fmt.Errorf("ingest: row %d col %d: unsupported value type %T", i, j, v)
			}
		}
	}
	return nil
}

// DecodeSpec decodes one append spec, preserving number fidelity
// (UseNumber) and normalizing the rows.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("ingest: decode append spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := Normalize(sp.Rows); err != nil {
		return nil, err
	}
	return &sp, nil
}

// ItemRange returns the [min, max] range of the routing-key column
// among the batch's rows, for shard scatter. ki is the column index of
// the partition key; ok is false if any row's key is not an integer.
func (sp *Spec) ItemRange(ki int) (lo, hi int64, ok bool) {
	if ki < 0 || len(sp.Rows) == 0 {
		return 0, 0, false
	}
	for i, row := range sp.Rows {
		if ki >= len(row) {
			return 0, 0, false
		}
		k, kok := row[ki].(int64)
		if !kok {
			return 0, 0, false
		}
		if i == 0 || k < lo {
			lo = k
		}
		if i == 0 || k > hi {
			hi = k
		}
	}
	return lo, hi, true
}

// ReadStream decodes a JSONL append stream: one Spec per line, numbers
// preserved, rows normalized. The format deepsea-gen emits with
// -what appendstream.
func ReadStream(r io.Reader) ([]*Spec, error) {
	var out []*Spec
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sp, err := DecodeSpec(bytes.NewReader([]byte(text)))
		if err != nil {
			return nil, fmt.Errorf("ingest: stream line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: read stream: %w", err)
	}
	return out, nil
}

// WriteStream encodes specs as JSONL, one per line.
func WriteStream(w io.Writer, specs []*Spec) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range specs {
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("ingest: write stream: %w", err)
		}
	}
	return bw.Flush()
}

// Flush lands one coalesced batch for a table and returns the result
// every contributor observes.
type Flush[R any] func(table string, rows [][]any) (R, error)

// Coalescer implements group commit for the append path: concurrent
// Add calls for the same table merge into one batch, which flushes when
// it reaches MaxRows or when the oldest contribution has waited
// MaxDelay. Every contributor blocks until its batch lands and receives
// the batch's shared result — so N concurrent small appends cost one
// journal write and one view-refresh round instead of N.
type Coalescer[R any] struct {
	flush    Flush[R]
	maxRows  int
	maxDelay time.Duration

	mu      sync.Mutex
	pending map[string]*batch[R]
	closed  bool

	// Batches and Appends feed the ingest counters: Appends counts Add
	// calls, Batches counts flushes — Appends/Batches is the group-commit
	// amortization factor.
	appends uint64
	batches uint64
}

type batch[R any] struct {
	rows  [][]any
	done  chan struct{}
	rep   R
	err   error
	timer *time.Timer
}

// NewCoalescer builds a coalescer over the given flush function.
// maxRows <= 0 defaults to 4096; maxDelay <= 0 defaults to 2ms.
func NewCoalescer[R any](maxRows int, maxDelay time.Duration, flush Flush[R]) *Coalescer[R] {
	if maxRows <= 0 {
		maxRows = 4096
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	return &Coalescer[R]{
		flush:    flush,
		maxRows:  maxRows,
		maxDelay: maxDelay,
		pending:  make(map[string]*batch[R]),
	}
}

// Add contributes rows to the table's open batch and blocks until that
// batch lands, returning the batch's shared result.
func (c *Coalescer[R]) Add(table string, rows [][]any) (R, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		var zero R
		return zero, fmt.Errorf("ingest: coalescer closed")
	}
	c.appends++
	b := c.pending[table]
	if b == nil {
		b = &batch[R]{done: make(chan struct{})}
		c.pending[table] = b
		bb := b
		b.timer = time.AfterFunc(c.maxDelay, func() { c.flushBatch(table, bb) })
	}
	b.rows = append(b.rows, rows...)
	full := len(b.rows) >= c.maxRows
	c.mu.Unlock()
	if full {
		c.flushBatch(table, b)
	}
	<-b.done
	return b.rep, b.err
}

// flushBatch detaches the batch (if still pending) and lands it. Safe
// to race: the first caller detaches, later callers find the batch
// already replaced and return.
func (c *Coalescer[R]) flushBatch(table string, b *batch[R]) {
	c.mu.Lock()
	if c.pending[table] != b {
		c.mu.Unlock()
		return // someone else flushed it
	}
	delete(c.pending, table)
	b.timer.Stop()
	c.batches++
	c.mu.Unlock()
	b.rep, b.err = c.flush(table, b.rows)
	close(b.done)
}

// Close flushes every open batch and rejects further Adds.
func (c *Coalescer[R]) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	open := make(map[string]*batch[R], len(c.pending))
	for t, b := range c.pending {
		open[t] = b
	}
	c.mu.Unlock()
	for t, b := range open {
		c.flushBatch(t, b)
	}
}

// Stats returns (adds, flushed batches) — the group-commit ratio.
func (c *Coalescer[R]) Stats() (appends, batches uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appends, c.batches
}
