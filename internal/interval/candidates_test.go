package interval

import (
	"testing"
	"testing/quick"
)

func TestSplitCandidatesCases(t *testing.T) {
	frag := New(10, 20)
	tests := []struct {
		name  string
		query Interval
		want  []Interval
	}{
		{"case1 disjoint left", New(0, 5), nil},
		{"case1 disjoint right", New(25, 30), nil},
		{"case2 query contains frag", New(5, 25), nil},
		{"case2 query equals frag", New(10, 20), nil},
		{"case3 overlap from left", New(5, 15), []Interval{New(10, 15), New(16, 20)}},
		{"case4 overlap from right", New(15, 25), []Interval{New(10, 14), New(15, 20)}},
		{"case5 strictly inside", New(12, 18), []Interval{New(10, 11), New(12, 18), New(19, 20)}},
		{"aligned left end", New(10, 15), []Interval{New(10, 15), New(16, 20)}},
		{"aligned right end", New(15, 20), []Interval{New(10, 14), New(15, 20)}},
		{"single point inside", New(15, 15), []Interval{New(10, 14), New(15, 15), New(16, 20)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SplitCandidates(frag, tt.query)
			if len(got) != len(tt.want) {
				t.Fatalf("SplitCandidates(%v, %v) = %v, want %v", frag, tt.query, got, tt.want)
			}
			for k := range got {
				if got[k] != tt.want[k] {
					t.Fatalf("SplitCandidates(%v, %v) = %v, want %v", frag, tt.query, got, tt.want)
				}
			}
		})
	}
}

// The paper's Example 3: V partitioned as [0,10], (10,20], (20,30] with
// query σ5<=A<=25 yields candidates [0,5), [5,10], (20,25], (25,30].
// On the integer domain: [0,4], [5,10], [21,25], [26,30].
func TestSplitCandidatesPaperExample3(t *testing.T) {
	frags := Set{New(0, 10), New(11, 20), New(21, 30)}
	got := CandidatesForQuery(New(0, 30), frags, New(5, 25))
	want := []Interval{New(0, 4), New(5, 10), New(21, 25), New(26, 30)}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestCandidatesForQueryEmptyPartitionInitialisesDomain(t *testing.T) {
	dom := New(0, 100)
	got := CandidatesForQuery(dom, nil, New(20, 60))
	want := []Interval{New(0, 19), New(20, 60), New(61, 100)}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestCandidatesForQueryClampsToDomain(t *testing.T) {
	dom := New(0, 100)
	got := CandidatesForQuery(dom, nil, New(-50, 60))
	// Clamped query is [0,60]: splits domain into [0,60], [61,100].
	want := []Interval{New(0, 60), New(61, 100)}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestCandidatesForQueryDisjointQuery(t *testing.T) {
	if got := CandidatesForQuery(New(0, 100), Set{New(0, 100)}, New(200, 300)); got != nil {
		t.Fatalf("candidates for out-of-domain query = %v, want nil", got)
	}
}

func TestCandidatesExcludeExistingFragments(t *testing.T) {
	frags := Set{New(0, 10), New(11, 30)}
	// Query [11,20] splits [11,30] into [11,20] and [21,30]; neither
	// exists yet so both are candidates, and nothing is emitted for [0,10].
	got := CandidatesForQuery(New(0, 30), frags, New(11, 20))
	want := []Interval{New(11, 20), New(21, 30)}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
}

// Candidates produced for a fragment must tile that fragment exactly (they
// are splits, never new coverage), and each candidate must be contained in
// its source fragment.
func TestSplitCandidatesTileProperty(t *testing.T) {
	f := func(fLo int16, fSpan uint8, qLo int16, qSpan uint8) bool {
		frag := New(int64(fLo), int64(fLo)+int64(fSpan))
		query := New(int64(qLo), int64(qLo)+int64(qSpan))
		cands := SplitCandidates(frag, query)
		if cands == nil {
			return true
		}
		return Set(cands).IsHorizontalPartition(frag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
