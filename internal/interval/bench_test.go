package interval

import (
	"math/rand"
	"testing"
)

// benchFragments builds an overlapping fragment population like a
// long-running DeepSea partition: a coarse base partition plus many
// small refined fragments clustered around a hot spot.
func benchFragments(n int) Set {
	rng := rand.New(rand.NewSource(1))
	dom := New(0, 400000)
	set := EquiDepth(dom, 8)
	for i := 0; i < n; i++ {
		lo := int64(195000) + rng.Int63n(10000)
		set = append(set, New(lo, lo+4000))
	}
	return set
}

func BenchmarkGreedyCoverHotSpot(b *testing.B) {
	set := benchFragments(200)
	want := New(198000, 202000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, full := GreedyCover(want, set); !full {
			b.Fatal("cover failed")
		}
	}
}

func BenchmarkGapsSparseCover(b *testing.B) {
	set := benchFragments(50)
	want := New(0, 400000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Gaps(want)
	}
}

func BenchmarkSplitCandidates(b *testing.B) {
	frag := New(100000, 300000)
	query := New(150000, 160000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitCandidates(frag, query)
	}
}
