package interval

// GreedyCover implements the paper's Algorithm 2 (PartitionMatching): it
// greedily selects fragments from candidates whose union covers the query
// selection range want. At each step it picks, among the fragments whose
// interval starts at or before the first uncovered point and ends after
// it, the one with the largest lower bound. The returned indices refer to
// candidates and are in cover order (increasing upper bound).
//
// The second return value reports whether a full cover was found. When it
// is false, the indices cover a prefix of want and Set.Gaps can compute
// the remainder.
func GreedyCover(want Interval, candidates Set) (indices []int, full bool) {
	covered := want.Lo // first uncovered point
	for covered <= want.Hi {
		best := -1
		for k, iv := range candidates {
			if iv.Lo > covered || iv.Hi < covered {
				continue
			}
			// Argmax lower bound (Algorithm 2); ties prefer the SMALLER
			// fragment — overlapping partitionings routinely hold a
			// small refined fragment inside a large stale one, and
			// reading the small file costs proportionally less.
			if best == -1 || iv.Lo > candidates[best].Lo ||
				(iv.Lo == candidates[best].Lo && iv.Hi < candidates[best].Hi) {
				best = k
			}
		}
		if best == -1 {
			return indices, false
		}
		indices = append(indices, best)
		covered = candidates[best].Hi + 1
	}
	return indices, true
}

// ClippedCover returns, for each fragment chosen by GreedyCover, the
// subrange of want that the fragment should actually contribute so that
// every point of the covered region is produced exactly once even when
// fragments overlap. The i-th returned read range corresponds to
// indices[i]. Query execution over overlapping partitionings relies on
// this clipping for correctness.
func ClippedCover(want Interval, candidates Set) (indices []int, reads []Interval, full bool) {
	indices, full = GreedyCover(want, candidates)
	next := want.Lo
	for _, idx := range indices {
		iv := candidates[idx]
		hi := min64(iv.Hi, want.Hi)
		reads = append(reads, Interval{Lo: next, Hi: hi})
		next = hi + 1
	}
	return indices, reads, full
}
