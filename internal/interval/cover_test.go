package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyCoverSimplePartition(t *testing.T) {
	frags := Set{New(0, 10), New(11, 20), New(21, 30)}
	idx, full := GreedyCover(New(5, 25), frags)
	if !full {
		t.Fatal("expected full cover")
	}
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("indices = %v, want [0 1 2]", idx)
	}
}

func TestGreedyCoverPrefersLargestLowerBound(t *testing.T) {
	// Both fragments cover point 5; the greedy rule (Algorithm 2) picks
	// the one with the larger lower bound.
	frags := Set{New(0, 30), New(5, 20), New(21, 40)}
	idx, full := GreedyCover(New(5, 35), frags)
	if !full {
		t.Fatal("expected full cover")
	}
	if idx[0] != 1 {
		t.Fatalf("first pick = %d, want fragment [5,20]", idx[0])
	}
	if idx[1] != 2 {
		t.Fatalf("second pick = %d, want fragment [21,40]", idx[1])
	}
}

func TestGreedyCoverPartial(t *testing.T) {
	frags := Set{New(0, 10), New(15, 20)}
	idx, full := GreedyCover(New(5, 18), frags)
	if full {
		t.Fatal("cover across the gap [11,14] should not be full")
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("indices = %v, want [0]", idx)
	}
}

func TestGreedyCoverEmptyCandidates(t *testing.T) {
	idx, full := GreedyCover(New(0, 10), nil)
	if full || len(idx) != 0 {
		t.Fatalf("GreedyCover over no candidates = %v,%v", idx, full)
	}
}

func TestClippedCoverDisjointReads(t *testing.T) {
	// Overlapping fragments: reads must tile the query range exactly once.
	frags := Set{New(0, 25), New(20, 40), New(35, 60)}
	want := New(10, 50)
	idx, reads, full := ClippedCover(want, frags)
	if !full {
		t.Fatal("expected full cover")
	}
	if len(idx) != len(reads) {
		t.Fatalf("len(idx)=%d len(reads)=%d", len(idx), len(reads))
	}
	next := want.Lo
	for k, r := range reads {
		if r.Lo != next {
			t.Fatalf("read %d starts at %d, want %d", k, r.Lo, next)
		}
		frag := frags[idx[k]]
		if !frag.ContainsInterval(r) {
			t.Fatalf("read %v outside its fragment %v", r, frag)
		}
		next = r.Hi + 1
	}
	if next != want.Hi+1 {
		t.Fatalf("reads end at %d, want %d", next-1, want.Hi)
	}
}

// For any covering fragment set, GreedyCover must find a full cover, and
// the clipped reads must tile the query range with no gaps or overlap.
func TestGreedyCoverCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dom := New(0, 500)
		// Start from a partition, then add random overlapping extras so
		// the set is a covering overlapping partitioning.
		set := EquiDepth(dom, 1+rng.Intn(8))
		for k := 0; k < rng.Intn(5); k++ {
			lo := rng.Int63n(490)
			set = append(set, New(lo, lo+rng.Int63n(500-lo)+1))
		}
		qlo := rng.Int63n(450)
		want := New(qlo, qlo+rng.Int63n(500-qlo))
		idx, reads, full := ClippedCover(want, set)
		if !full {
			return false
		}
		next := want.Lo
		for k, r := range reads {
			if r.Lo != next || !set[idx[k]].ContainsInterval(r) {
				return false
			}
			next = r.Hi + 1
		}
		return next == want.Hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
