// Package interval implements the closed integer-interval algebra that
// underlies DeepSea's horizontal and overlapping partitionings.
//
// Partition keys in DeepSea are ordered attributes. This reproduction
// restricts key domains to int64, which makes every split in the paper
// exact: the half-open interval [l', l) over an integer domain is the
// closed interval [l', l-1]. All intervals in this package are closed on
// both ends and non-empty (Lo <= Hi).
package interval

import (
	"fmt"
	"sort"
)

// Interval is a closed, non-empty integer interval [Lo, Hi].
type Interval struct {
	Lo int64
	Hi int64
}

// New returns the closed interval [lo, hi]. It panics if lo > hi; callers
// construct intervals from validated query predicates and fragment
// boundaries, so an inverted interval is a programming error.
func New(lo, hi int64) Interval {
	if lo > hi {
		panic(fmt.Sprintf("interval: inverted bounds [%d, %d]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// String renders the interval in the paper's closed-interval notation.
func (i Interval) String() string {
	return fmt.Sprintf("[%d,%d]", i.Lo, i.Hi)
}

// Len is the number of integer points covered by the interval.
func (i Interval) Len() int64 {
	return i.Hi - i.Lo + 1
}

// Contains reports whether point v lies in the interval.
func (i Interval) Contains(v int64) bool {
	return i.Lo <= v && v <= i.Hi
}

// ContainsInterval reports whether o is a (not necessarily proper)
// subinterval of i.
func (i Interval) ContainsInterval(o Interval) bool {
	return i.Lo <= o.Lo && o.Hi <= i.Hi
}

// Overlaps reports whether the two intervals share at least one point.
func (i Interval) Overlaps(o Interval) bool {
	return i.Lo <= o.Hi && o.Lo <= i.Hi
}

// Intersect returns the common subinterval and whether it is non-empty.
func (i Interval) Intersect(o Interval) (Interval, bool) {
	lo := max64(i.Lo, o.Lo)
	hi := min64(i.Hi, o.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// OverlapLen is the number of points shared by i and o (zero if disjoint).
func (i Interval) OverlapLen(o Interval) int64 {
	x, ok := i.Intersect(o)
	if !ok {
		return 0
	}
	return x.Len()
}

// Equal reports whether the two intervals cover exactly the same points.
func (i Interval) Equal(o Interval) bool { return i == o }

// SplitAt splits i at the given cut points (which must lie strictly inside
// i) into consecutive closed subintervals. Cuts mark the first point of a
// new subinterval: SplitAt([0,10], 4) = [0,3], [4,10]. Cut points outside
// (Lo, Hi] or duplicates are ignored. The result always covers i exactly.
func (i Interval) SplitAt(cuts ...int64) []Interval {
	pts := make([]int64, 0, len(cuts))
	for _, c := range cuts {
		if c > i.Lo && c <= i.Hi {
			pts = append(pts, c)
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a] < pts[b] })
	out := make([]Interval, 0, len(pts)+1)
	lo := i.Lo
	for _, c := range pts {
		if c == lo { // duplicate cut
			continue
		}
		out = append(out, Interval{Lo: lo, Hi: c - 1})
		lo = c
	}
	out = append(out, Interval{Lo: lo, Hi: i.Hi})
	return out
}

// Set is an ordered collection of intervals. Sets are used both for
// horizontal partitions (disjoint, covering) and overlapping
// partitionings (covering only).
type Set []Interval

// Sort orders the set by lower bound, breaking ties by upper bound.
func (s Set) Sort() {
	sort.Slice(s, func(a, b int) bool {
		if s[a].Lo != s[b].Lo {
			return s[a].Lo < s[b].Lo
		}
		return s[a].Hi < s[b].Hi
	})
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Covers reports whether the union of the set's intervals contains every
// point of dom (Definition 2's covering requirement).
func (s Set) Covers(dom Interval) bool {
	c := s.Clone()
	c.Sort()
	next := dom.Lo
	for _, iv := range c {
		if iv.Lo > next {
			return false
		}
		if iv.Hi >= next {
			next = iv.Hi + 1
		}
		if next > dom.Hi {
			return true
		}
	}
	return next > dom.Hi
}

// Disjoint reports whether no two intervals in the set share a point.
func (s Set) Disjoint() bool {
	c := s.Clone()
	c.Sort()
	for k := 1; k < len(c); k++ {
		if c[k].Lo <= c[k-1].Hi {
			return false
		}
	}
	return true
}

// IsHorizontalPartition reports whether the set is a horizontal partition
// of dom per Definition 1: disjoint and covering.
func (s Set) IsHorizontalPartition(dom Interval) bool {
	return s.Disjoint() && s.Covers(dom)
}

// IsOverlappingPartitioning reports whether the set covers dom
// (Definition 2); overlap is permitted.
func (s Set) IsOverlappingPartitioning(dom Interval) bool {
	return s.Covers(dom)
}

// Gaps returns the maximal subintervals of want that are not covered by
// any interval in the set, in increasing order. It is the remainder
// computation used when the pool holds only a partial cover of a query's
// selection range.
func (s Set) Gaps(want Interval) []Interval {
	c := s.Clone()
	c.Sort()
	var gaps []Interval
	next := want.Lo
	for _, iv := range c {
		if next > want.Hi {
			break
		}
		if iv.Hi < next {
			continue
		}
		if iv.Lo > next {
			hi := min64(iv.Lo-1, want.Hi)
			if next <= hi {
				gaps = append(gaps, Interval{Lo: next, Hi: hi})
			}
		}
		if iv.Hi >= next {
			next = iv.Hi + 1
		}
	}
	if next <= want.Hi {
		gaps = append(gaps, Interval{Lo: next, Hi: want.Hi})
	}
	return gaps
}

// EquiDepth splits dom into n consecutive intervals whose lengths differ
// by at most one point. It is the non-adaptive baseline partitioning
// ("E-n" in the paper's evaluation). n must be >= 1 and is clamped to the
// number of points in dom.
func EquiDepth(dom Interval, n int) Set {
	if n < 1 {
		n = 1
	}
	if int64(n) > dom.Len() {
		n = int(dom.Len())
	}
	out := make(Set, 0, n)
	total := dom.Len()
	lo := dom.Lo
	for k := 0; k < n; k++ {
		size := total / int64(n)
		if int64(k) < total%int64(n) {
			size++
		}
		out = append(out, Interval{Lo: lo, Hi: lo + size - 1})
		lo += size
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
